// Source-constrained acquisition chain (the Sec 4.4 variant).
//
// An ADC samples strictly periodically at 48 kHz and pushes data through
// filter → compressor → writer.  The compressor's production quantum is
// data dependent and may be zero (nothing worth emitting for a block) —
// the mirrored zero-rate rule of Sec 4.4.  Downstream tasks must keep up
// with the source; capacities guarantee the ADC is never blocked on a full
// buffer.  Also demonstrates the plain-text model serialization.
//
// Build & run:  ./build/examples/sensor_acquisition
#include <iostream>

#include "analysis/buffer_sizing.hpp"
#include "io/table.hpp"
#include "io/text_format.hpp"
#include "models/synthetic.hpp"
#include "sim/verify.hpp"

int main() {
  using namespace vrdf;

  models::SyntheticChain chain = models::make_sensor_acquisition();

  const analysis::GraphAnalysis result =
      analysis::compute_buffer_capacities(chain.graph, chain.constraint);
  if (!result.admissible) {
    std::cerr << "analysis failed:\n";
    for (const auto& d : result.diagnostics) {
      std::cerr << "  " << d << '\n';
    }
    return 1;
  }
  std::cout << "Constraint side: "
            << (result.side == analysis::ConstraintSide::Source ? "source"
                                                                : "sink")
            << " (ADC strictly periodic at 48 kHz)\n\n";

  io::Table table({"buffer", "pi / gamma", "capacity", "raw bound"});
  for (const auto& pair : result.pairs) {
    const auto& data = chain.graph.edge(pair.buffer.data);
    table.add_row({chain.graph.actor(pair.producer).name + "->" +
                       chain.graph.actor(pair.consumer).name,
                   data.production.to_string() + " / " +
                       data.consumption.to_string(),
                   std::to_string(pair.capacity), pair.raw_tokens.to_string()});
  }
  std::cout << table.to_string() << '\n';

  analysis::apply_capacities(chain.graph, result);

  sim::VerifyOptions options;
  options.observe_firings = 48000;  // one second of samples
  const sim::VerifyResult verdict =
      sim::verify_throughput(chain.graph, chain.constraint, {}, options);
  std::cout << "verify [random compressor output]: "
            << (verdict.ok ? "OK" : "FAILED") << " — " << verdict.detail
            << "\n\n";

  std::cout << "Serialized model (vrdf-chain v1):\n"
            << io::write_chain(chain.graph, chain.constraint);
  return verdict.ok ? 0 : 1;
}
