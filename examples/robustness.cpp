// Robustness showcase (PR 6): how much can each task overrun its declared
// worst-case response time before the installed buffers stop covering it?
//
// Sizes the interior-pinned media pipeline, computes the analysis-derived
// robustness margins, then exercises them both ways with the fault
// injector and the conformance monitor:
//  - a fault at the exact margin boundary keeps the two-phase verification
//    green while the monitor still names the broken ρ contract;
//  - starving the pinned core's feed buffer outright (a producer slowed
//    past what token conservation lets the buffer hide) is detected and
//    attributed, never a silent hang.
#include <iostream>

#include "analysis/buffer_sizing.hpp"
#include "analysis/robustness.hpp"
#include "io/report.hpp"
#include "io/trace.hpp"
#include "models/synthetic.hpp"
#include "sim/fault_injection.hpp"
#include "sim/verify.hpp"

int main() {
  using namespace vrdf;

  models::InteriorPinnedPipeline app = models::make_interior_pinned_pipeline();
  const analysis::GraphAnalysis sized =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  if (!sized.admissible) {
    for (const auto& d : sized.diagnostics) {
      std::cerr << d << '\n';
    }
    return 1;
  }
  analysis::apply_capacities(app.graph, sized);

  const analysis::RobustnessReport margins =
      analysis::robustness_margins(app.graph, app.constraint);
  if (!margins.ok) {
    for (const auto& d : margins.diagnostics) {
      std::cerr << d << '\n';
    }
    return 1;
  }
  std::cout << io::analysis_report(app.graph, app.constraint, sized) << '\n';
  std::cout << io::margins_to_csv(margins, app.graph) << '\n';

  // The actor with the widest tolerable overrun.
  const analysis::ActorMargin* target = &margins.actors.front();
  for (const analysis::ActorMargin& m : margins.actors) {
    if (target->margin < m.margin) {
      target = &m;
    }
  }
  std::cout << "widest margin: '" << app.graph.actor(target->actor).name
            << "' may overrun by " << target->margin.seconds().to_string()
            << " s per firing\n\n";

  sim::VerifyOptions options;
  options.observe_firings = 200;
  options.monitor = true;

  // 1) Stress the boundary: the whole margin on every firing.
  sim::FaultPlan boundary(1);
  boundary.rho_overrun(target->actor, target->margin);
  std::cout << "-- within margin --\n" << boundary.describe(app.graph) << '\n';
  const sim::VerifyResult within = sim::verify_throughput(
      app.graph, app.constraint,
      [&](sim::Simulator& sim) { boundary.apply(sim); }, options);
  std::cout << "verify: " << (within.ok ? "OK" : "FAILED") << " — "
            << within.detail << '\n';
  if (within.monitor.has_value()) {
    std::cout << "monitor: " << within.monitor->summary << "\n\n";
  }

  // 2) Break it: slow the pin's feeding producer until the buffer's
  //    conservation bound (installed capacity / rho') undercuts demand.
  const analysis::BufferHeadroom* feed = nullptr;
  for (const analysis::BufferHeadroom& buffer : margins.buffers) {
    if (buffer.consumer == app.constraint.actor) {
      feed = &buffer;
      break;
    }
  }
  if (feed == nullptr) {
    std::cerr << "pin has no feed buffer\n";
    return 1;
  }
  sim::FaultPlan starving(2);
  starving.rho_overrun(feed->producer,
                       app.constraint.period *
                           Rational(4 * (feed->installed + 1)));
  std::cout << "-- beyond margin --\n" << starving.describe(app.graph) << '\n';
  const sim::VerifyResult beyond = sim::verify_throughput(
      app.graph, app.constraint,
      [&](sim::Simulator& sim) { starving.apply(sim); }, options);
  std::cout << "verify: " << (beyond.ok ? "OK" : "FAILED") << " — "
            << beyond.detail << '\n';
  if (beyond.monitor.has_value()) {
    std::cout << "monitor: " << beyond.monitor->summary << '\n';
    std::cout << io::conformance_to_csv(*beyond.monitor, app.graph);
  }

  // The demo succeeded iff the boundary held and the starvation was caught.
  return (within.ok && !beyond.ok) ? 0 : 1;
}
