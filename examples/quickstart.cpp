// Quickstart: the complete workflow on the paper's running example (Fig 1).
//
//  1. describe the application as a task graph (tasks + FIFO buffers),
//  2. convert it to the VRDF analysis model (Sec 3.3),
//  3. compute buffer capacities for a throughput constraint (Sec 4),
//  4. back-annotate the capacities and verify them in simulation.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "analysis/buffer_sizing.hpp"
#include "dataflow/rate_set.hpp"
#include "sim/verify.hpp"
#include "taskgraph/task_graph.hpp"

int main() {
  using namespace vrdf;

  // Step 1: the task graph of Fig 1.  Task wa produces 3 containers per
  // execution; wb consumes 2 or 3 depending on the processed data.  Both
  // tasks have a worst-case response time of 3 ms under their arbiters.
  taskgraph::TaskGraph app;
  const auto wa = app.add_task("wa", milliseconds(Rational(3)));
  const auto wb = app.add_task("wb", milliseconds(Rational(3)));
  const auto buffer = app.add_buffer(wa, wb, dataflow::RateSet::singleton(3),
                                     dataflow::RateSet::of({2, 3}));

  // Step 2: construct the VRDF model: one actor per task, one pair of
  // anti-parallel edges per buffer.
  taskgraph::VrdfConstruction model = app.to_vrdf();

  // Step 3: wb must run strictly periodically every 3 ms.
  const analysis::ThroughputConstraint constraint{
      model.actor_of_task[wb.index()], milliseconds(Rational(3))};
  const analysis::GraphAnalysis result =
      analysis::compute_buffer_capacities(model.graph, constraint);
  if (!result.admissible) {
    std::cerr << "constraint not satisfiable:\n";
    for (const auto& d : result.diagnostics) {
      std::cerr << "  " << d << '\n';
    }
    return 1;
  }
  for (const auto& pair : result.pairs) {
    std::cout << "buffer " << model.graph.actor(pair.producer).name << " -> "
              << model.graph.actor(pair.consumer).name
              << ": capacity " << pair.capacity << " containers (raw bound "
              << pair.raw_tokens.to_string() << " tokens)\n";
  }

  // Step 4: install the capacities and check them with the two-phase
  // simulation (self-timed offset measurement, then enforced periodic wb).
  analysis::apply_capacities(model.graph, result);
  app.set_capacity(buffer, result.pairs[0].capacity);

  sim::VerifyOptions options;
  options.observe_firings = 10000;
  const sim::VerifyResult verdict =
      sim::verify_throughput(model.graph, constraint, {}, options);
  std::cout << "simulation: " << (verdict.ok ? "OK" : "FAILED") << " — "
            << verdict.detail << '\n';
  return verdict.ok ? 0 : 1;
}
