// Shared-platform deployment walkthrough (PR 10): two streams contending
// for two TDM processors, end-to-end from bindings to certified buffer
// capacities.
//
// The paper's capacity analysis consumes worst-case response times κ(w)
// that "the arbiter provides".  This example closes that loop: tasks are
// bound to TDM wheels, κ is *derived* from each (slot, wheel, WCET)
// allocation, the task graph is instantiated as a VRDF model with
// ρ(v) = κ(w), and the Sec 4 analysis sizes the buffers.  Allocation
// what-ifs (slot retunes, stream admissions) then run through the
// DeploymentController, which routes every κ change through the
// incremental engine and rolls platform + analysis back together on
// rejection.
#include <iostream>

#include "analysis/deployment.hpp"
#include "io/report.hpp"
#include "sched/platform.hpp"
#include "taskgraph/task_graph.hpp"

int main() {
  using namespace vrdf;

  // One acquisition source fanning out to two streams: audio (via a DSP
  // stage) and control (direct to the actuator) — a fork graph, so both
  // sinks share the source's pacing.
  taskgraph::TaskGraph tasks;
  const Duration placeholder = milliseconds(Rational(1));  // κ derived below
  const auto src = tasks.add_task("audio-src", placeholder);
  const auto dsp = tasks.add_task("audio-dsp", placeholder);
  const auto out = tasks.add_task("audio-out", placeholder);
  const auto act = tasks.add_task("ctl-act", placeholder);
  (void)tasks.add_buffer(src, dsp, dataflow::RateSet::singleton(4),
                         dataflow::RateSet::singleton(4));
  (void)tasks.add_buffer(dsp, out, dataflow::RateSet::singleton(1),
                         dataflow::RateSet::singleton(1));
  // The actuator runs at half the source rate (consumes 2 per firing),
  // so its 8 ms period is flow-consistent with the 4 ms audio sink.
  (void)tasks.add_buffer(src, act, dataflow::RateSet::singleton(1),
                         dataflow::RateSet::singleton(2));

  // A 1 ms TDM wheel on each processor; slots are fractions of it.
  sched::Platform platform;
  const Duration wheel = milliseconds(Rational(1));
  const auto cpu0 = platform.add_processor("cpu0", wheel);
  const auto cpu1 = platform.add_processor("cpu1", wheel);
  const auto us = [](std::int64_t n) {
    return milliseconds(Rational(n, 1000));
  };
  platform.bind_task("audio-src", cpu0, /*slot=*/us(250), /*wcet=*/us(120));
  platform.bind_task("audio-dsp", cpu1, /*slot=*/us(500), /*wcet=*/us(400));
  platform.bind_task("audio-out", cpu0, /*slot=*/us(250), /*wcet=*/us(100));
  platform.bind_task("ctl-act", cpu1, /*slot=*/us(250), /*wcet=*/us(80));

  // Streams: the audio sink every 4 ms, the control actuator every 8 ms.
  const std::vector<analysis::DeploymentConstraint> streams{
      {"audio-out", milliseconds(Rational(4))},
      {"ctl-act", milliseconds(Rational(8))},
  };

  analysis::DeploymentOptions options;
  options.certify = true;  // platform-claused certificate, checker-validated
  const analysis::DeploymentResult result =
      analysis::analyze_deployment(tasks, platform, streams, options);
  std::cout << io::deployment_report(tasks, platform, result) << "\n";

  // Run-time allocation questions against the serviced state.
  analysis::DeploymentController controller(tasks, platform, streams, options);
  controller.set_require_certificate(true);

  const auto show = [](const char* question,
                       const analysis::DeploymentDecision& decision) {
    std::cout << question << "\n  -> "
              << (decision.accepted ? "ACCEPTED" : "REJECTED");
    if (decision.accepted) {
      std::cout << " (capacity delta " << decision.capacity_delta
                << " containers, total " << decision.total_capacity << ")";
    } else {
      std::cout << (decision.wheel_binding ? " (wheel binding: "
                                           : " (binding: ")
                << decision.binding_constraint << ")";
    }
    std::cout << "\n\n";
  };

  // 1. Shrink the DSP slot — κ(audio-dsp) grows; still admissible?
  show("May audio-dsp's slot shrink to 450 us?",
       controller.set_slot("audio-dsp", us(450)));

  // 2. Shrink it to a sliver — the derived κ (5 chunks · 920 us gap +
  //    400 us = 5 ms) blows the 4 ms budget, the throughput constraint
  //    is binding, and the retune rolls back.
  show("May audio-dsp's slot shrink to 80 us?",
       controller.set_slot("audio-dsp", us(80)));

  // 3. Grow ctl-act's slot past cpu1's remaining wheel — rejected
  //    *before* any analysis runs; the wheel itself is binding.
  show("May ctl-act's slot grow to 600 us?",
       controller.set_slot("ctl-act", us(600)));

  // 4. Admit a third stream at the DSP — a monitor tapping its native
  //    4 ms cadence — granting it back its original slot in the same
  //    decision (slot grant + admission gate together).
  show("May a monitoring stream pin audio-dsp at 4 ms (slot back to "
       "500 us)?",
       controller.admit("audio-dsp", milliseconds(Rational(4)), us(500)));

  std::cout << "Serviced state: total capacity "
            << controller.analysis().total_capacity
            << " containers; certificate has "
            << controller.certificate().platform.size()
            << " platform facts.\n";
  return 0;
}
