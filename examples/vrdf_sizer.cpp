// vrdf_sizer — command-line buffer sizing for `vrdf-chain v1` model files.
//
// Usage:
//   vrdf_sizer <model-file> [--rounding=published|literal|ceil]
//              [--verify[=FIRINGS]] [--seed=N] [--dot=FILE]
//              [--trace-csv=FILE] [--annotate=FILE]
//
// Reads a chain model (see io/text_format.hpp for the format; the file
// must contain at least one `constraint` line — several lines declare a
// simultaneous constraint set), computes buffer capacities, prints a
// report, and optionally:
//   --verify        runs the two-phase simulation check,
// and always reports the fastest admissible period ("rate headroom") the
// computed capacities support.
//   --dot           writes the sized graph as Graphviz DOT,
//   --trace-csv     writes a buffer-occupancy trace of the verify run,
//   --annotate      writes the model back with computed capacities,
//   --report        writes a markdown analysis report.
//
// Exit code: 0 on success (and verification pass, if requested).
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/buffer_sizing.hpp"
#include "analysis/deadlock.hpp"
#include "analysis/period.hpp"
#include "io/dot.hpp"
#include "io/report.hpp"
#include "io/table.hpp"
#include "io/text_format.hpp"
#include "io/trace.hpp"
#include "sim/verify.hpp"
#include "util/error.hpp"

namespace {

using namespace vrdf;

struct Options {
  std::string model_path;
  analysis::RoundingMode rounding = analysis::RoundingMode::PaperPublished;
  bool verify = false;
  std::int64_t verify_firings = 10000;
  std::uint64_t seed = 1;
  std::string dot_path;
  std::string trace_path;
  std::string annotate_path;
  std::string report_path;
};

bool parse_args(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& prefix) -> std::string {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--rounding=", 0) == 0) {
      const std::string mode = value_of("--rounding=");
      if (mode == "published") {
        options.rounding = analysis::RoundingMode::PaperPublished;
      } else if (mode == "literal") {
        options.rounding = analysis::RoundingMode::PaperLiteral;
      } else if (mode == "ceil") {
        options.rounding = analysis::RoundingMode::Ceil;
      } else {
        std::cerr << "unknown rounding mode '" << mode << "'\n";
        return false;
      }
    } else if (arg == "--verify") {
      options.verify = true;
    } else if (arg.rfind("--verify=", 0) == 0) {
      options.verify = true;
      options.verify_firings = std::stoll(value_of("--verify="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::stoull(value_of("--seed="));
    } else if (arg.rfind("--dot=", 0) == 0) {
      options.dot_path = value_of("--dot=");
    } else if (arg.rfind("--trace-csv=", 0) == 0) {
      options.trace_path = value_of("--trace-csv=");
    } else if (arg.rfind("--annotate=", 0) == 0) {
      options.annotate_path = value_of("--annotate=");
    } else if (arg.rfind("--report=", 0) == 0) {
      options.report_path = value_of("--report=");
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag '" << arg << "'\n";
      return false;
    } else if (options.model_path.empty()) {
      options.model_path = arg;
    } else {
      std::cerr << "unexpected argument '" << arg << "'\n";
      return false;
    }
  }
  if (options.model_path.empty()) {
    std::cerr << "usage: vrdf_sizer <model-file> [--rounding=...] [--verify]"
                 " [--dot=FILE] [--trace-csv=FILE] [--annotate=FILE]\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) {
    return 2;
  }

  std::ifstream in(options.model_path);
  if (!in) {
    std::cerr << "cannot open '" << options.model_path << "'\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  io::ChainDocument doc;
  try {
    doc = io::read_chain(buffer.str());
  } catch (const vrdf::Error& err) {
    std::cerr << options.model_path << ": " << err.what() << '\n';
    return 2;
  }
  if (doc.constraints.empty()) {
    std::cerr << options.model_path << ": no 'constraint' line\n";
    return 2;
  }

  analysis::AnalysisOptions analysis_options;
  analysis_options.rounding = options.rounding;
  analysis::GraphAnalysis result = analysis::compute_buffer_capacities(
      doc.graph, doc.constraints, analysis_options);
  if (!result.admissible) {
    std::cerr << "constraint not satisfiable:\n";
    for (const auto& d : result.diagnostics) {
      std::cerr << "  " << d << '\n';
    }
    return 1;
  }

  const std::vector<std::int64_t> deadlock_minima =
      analysis::min_deadlock_free_capacities(doc.graph);
  io::Table table({"buffer", "pi / gamma", "capacity", "deadlock-free min",
                   "phi(rate actor) ms"});
  for (std::size_t i = 0; i < result.pairs.size(); ++i) {
    const auto& pair = result.pairs[i];
    const auto& data = doc.graph.edge(pair.buffer.data);
    table.add_row(
        {doc.graph.actor(pair.producer).name + "->" +
             doc.graph.actor(pair.consumer).name,
         data.production.to_string() + " / " + data.consumption.to_string(),
         std::to_string(pair.capacity), std::to_string(deadlock_minima[i]),
         std::to_string(pair.pacing_basis.to_millis_double())});
  }
  std::cout << table.to_string();
  std::cout << "total capacity: " << result.total_capacity << " containers\n";

  analysis::apply_capacities(doc.graph, result);

  // Rate headroom: the fastest period the just-computed capacities (and
  // the given response times) can sustain — for a constraint set, the
  // first constraint is scaled with the others held fixed.
  const analysis::MinPeriodResult headroom =
      doc.constraints.size() > 1
          ? analysis::min_admissible_period(doc.graph, doc.constraints,
                                            doc.constraints.front().actor,
                                            analysis_options)
          : analysis::min_admissible_period(
                doc.graph, doc.constraints.front().actor, analysis_options);
  if (headroom.ok) {
    std::cout << "fastest admissible period with these capacities: "
              << headroom.min_period.seconds().to_string() << " s (binding: "
              << headroom.binding_constraint << ")\n";
  }

  bool ok = true;
  if (options.verify) {
    sim::VerifyOptions verify_options;
    verify_options.observe_firings = options.verify_firings;
    verify_options.default_seed = options.seed;
    const sim::VerifyResult verdict =
        sim::verify_throughput(doc.graph, doc.constraints, {}, verify_options);
    std::cout << "verify: " << (verdict.ok ? "OK" : "FAILED") << " — "
              << verdict.detail << '\n';
    ok = verdict.ok;

    if (!options.trace_path.empty()) {
      // Re-run with recording to capture an occupancy trace of the
      // periodic phase (the first constraint's grid; the others run
      // self-timed here, which monotonicity makes a valid occupancy
      // envelope).
      sim::Simulator sim(doc.graph);
      sim.set_default_sources(options.seed);
      sim.set_actor_mode(doc.constraint->actor,
                         sim::ActorMode::strictly_periodic(
                             verdict.offset_used, doc.constraint->period));
      for (const dataflow::EdgeId e : doc.graph.edges()) {
        sim.record_transfers(e);
      }
      sim::StopCondition stop;
      stop.firing_target = sim::StopCondition::FiringTarget{
          doc.constraint->actor, std::min<std::int64_t>(options.verify_firings,
                                                        2000)};
      (void)sim.run(stop);
      std::ofstream trace(options.trace_path);
      trace << io::occupancy_to_csv(sim, doc.graph, doc.graph.edges());
      std::cout << "wrote " << options.trace_path << '\n';
    }
  }

  if (!options.dot_path.empty()) {
    std::ofstream dot(options.dot_path);
    dot << io::to_dot(doc.graph, doc.constraints, result);
    std::cout << "wrote " << options.dot_path << '\n';
  }
  if (!options.report_path.empty()) {
    std::ofstream report(options.report_path);
    report << io::analysis_report(doc.graph, doc.constraints, result);
    std::cout << "wrote " << options.report_path << '\n';
  }
  if (!options.annotate_path.empty()) {
    std::ofstream annotated(options.annotate_path);
    annotated << io::write_chain(doc.graph, doc.constraints);
    std::cout << "wrote " << options.annotate_path << '\n';
  }
  return ok ? 0 : 1;
}
