// Interior-pin showcase (PR 5): a fixed-rate DSP core strictly periodic
// in the *middle* of a media chain (source → dec → dsp → render → sink).
// Sizes the buffers — the upstream half paced like a sink-constrained
// chain, the downstream half like a source-constrained one — verifies by
// two-phase simulation with the pin enforced periodic, and prints the
// report plus a DOT rendering with the pin double-bordered.
#include <iostream>

#include "analysis/buffer_sizing.hpp"
#include "analysis/period.hpp"
#include "io/dot.hpp"
#include "io/report.hpp"
#include "models/synthetic.hpp"
#include "sim/verify.hpp"

int main() {
  using namespace vrdf;

  models::InteriorPinnedPipeline app = models::make_interior_pinned_pipeline();
  const analysis::GraphAnalysis sized =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  if (!sized.admissible) {
    for (const auto& d : sized.diagnostics) {
      std::cerr << d << '\n';
    }
    return 1;
  }
  analysis::apply_capacities(app.graph, sized);

  std::cout << io::analysis_report(app.graph, app.constraint, sized) << '\n';

  for (const analysis::PairAnalysis& pair : sized.pairs) {
    std::cout << "buffer " << app.graph.actor(pair.producer).name << " -> "
              << app.graph.actor(pair.consumer).name << ": "
              << (pair.determined_by == analysis::ConstraintSide::Sink
                      ? "consumer-paced (upstream of the pin)"
                      : "producer-paced (downstream of the pin)")
              << ", capacity " << pair.capacity << "\n";
  }

  const analysis::MinPeriodResult headroom =
      analysis::min_admissible_period(app.graph, app.dsp);
  if (headroom.ok) {
    std::cout << "fastest admissible DSP period: "
              << headroom.min_period.seconds().to_string()
              << " s (binding: " << headroom.binding_constraint << ")\n\n";
  }

  const sim::VerifyResult verdict =
      sim::verify_throughput(app.graph, app.constraint);
  std::cout << "verify: " << (verdict.ok ? "OK" : "FAILED") << " — "
            << verdict.detail << "\n\n";

  std::cout << io::to_dot(app.graph, analysis::ConstraintSet{app.constraint},
                          sized);
  return verdict.ok ? 0 : 1;
}
