// The paper's Sec 5 case study, end to end: MP3 playback of a variable
// bit-rate stream with a 44.1 kHz DAC.
//
// Prints the derived response-time budget, the capacity table (ours vs the
// traditional technique), verifies the capacities in simulation for
// several bit-rate profiles, and writes the VRDF graph as Graphviz DOT.
//
// Build & run:  ./build/examples/mp3_playback [out.dot]
#include <fstream>
#include <iostream>

#include "analysis/buffer_sizing.hpp"
#include "baseline/traditional.hpp"
#include "io/dot.hpp"
#include "io/table.hpp"
#include "models/mp3.hpp"
#include "sim/verify.hpp"

int main(int argc, char** argv) {
  using namespace vrdf;

  models::Mp3Playback app = models::make_mp3_playback();

  // Response times that "just allow" the throughput constraint (Sec 5).
  const auto budget =
      analysis::max_admissible_response_times(app.graph, app.constraint);
  std::cout << "Maximal admissible response times (phi propagation):\n";
  for (std::size_t i = 0; i < budget.actors_in_order.size(); ++i) {
    std::cout << "  " << app.graph.actor(budget.actors_in_order[i]).name
              << ": " << budget.max_response_times[i].to_millis_double()
              << " ms\n";
  }

  const analysis::GraphAnalysis ours =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  const baseline::TraditionalResult trad =
      baseline::traditional_chain_capacities(app.graph);
  if (!ours.admissible || !trad.ok) {
    std::cerr << "analysis failed\n";
    return 1;
  }

  io::Table table({"buffer", "pi / gamma", "VRDF (this paper)",
                   "traditional [10], n=960", "paper reports"});
  const char* const paper_vrdf[] = {"6015", "3263", "882"};
  const char* const paper_trad[] = {"5888", "3072", "882"};
  for (std::size_t i = 0; i < ours.pairs.size(); ++i) {
    const auto& data = app.graph.edge(ours.pairs[i].buffer.data);
    table.add_row({"d" + std::to_string(i + 1),
                   data.production.to_string() + " / " +
                       data.consumption.to_string(),
                   std::to_string(ours.pairs[i].capacity),
                   std::to_string(trad.pairs[i].capacity),
                   std::string(paper_vrdf[i]) + " / " + paper_trad[i]});
  }
  std::cout << '\n' << table.to_string() << '\n';

  // Verify in simulation, as the paper did.
  analysis::apply_capacities(app.graph, ours);
  sim::VerifyOptions options;
  options.observe_firings = 100000;  // ~2.3 s of audio per profile
  bool all_ok = true;
  struct Profile {
    const char* name;
    sim::SimulatorConfigurer configure;
  };
  const Profile profiles[] = {
      {"uniform random n in [0,960]", {}},
      {"constant n = 96 (low bit-rate)",
       [&](sim::Simulator& s) {
         s.set_quantum_source(app.mp3, app.b1.data, sim::constant_source(96));
       }},
      {"constant n = 960 (max bit-rate)",
       [&](sim::Simulator& s) {
         s.set_quantum_source(app.mp3, app.b1.data, sim::constant_source(960));
       }},
      {"min/max alternation",
       [&](sim::Simulator& s) {
         s.set_quantum_source(
             app.mp3, app.b1.data,
             sim::min_max_alternating_source(
                 app.graph.edge(app.b1.data).consumption));
       }},
      {"random walk over [0,960]",
       [&](sim::Simulator& s) {
         s.set_quantum_source(
             app.mp3, app.b1.data,
             sim::random_walk_source(app.graph.edge(app.b1.data).consumption,
                                     7, 40));
       }},
  };
  for (const Profile& profile : profiles) {
    const sim::VerifyResult verdict = sim::verify_throughput(
        app.graph, app.constraint, profile.configure, options);
    std::cout << "verify [" << profile.name
              << "]: " << (verdict.ok ? "OK" : "FAILED") << " — "
              << verdict.detail << '\n';
    all_ok = all_ok && verdict.ok;
  }

  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << io::to_dot(app.graph);
    std::cout << "wrote " << argv[1] << '\n';
  }
  return all_ok ? 0 : 1;
}
