// Sink-constrained variable-rate video decoding pipeline.
//
// A 5-stage chain (reader → demux → vld → idct → display) where the
// variable-length decoder consumes a data-dependent number of bytes per
// firing, possibly zero (a skipped macroblock row), and the display is
// strictly periodic at 25 Hz.  Demonstrates:
//  * capacity computation for a longer chain with multiple variable pairs,
//  * the response-time budget per stage,
//  * how much the data dependence costs over a constant-rate lower bound.
//
// Build & run:  ./build/examples/video_pipeline
#include <iostream>

#include "analysis/buffer_sizing.hpp"
#include "baseline/traditional.hpp"
#include "io/table.hpp"
#include "models/synthetic.hpp"
#include "sim/verify.hpp"

int main() {
  using namespace vrdf;

  models::SyntheticChain chain = models::make_video_pipeline();

  const analysis::GraphAnalysis ours =
      analysis::compute_buffer_capacities(chain.graph, chain.constraint);
  const baseline::TraditionalResult trad =
      baseline::traditional_chain_capacities(chain.graph);
  if (!ours.admissible || !trad.ok) {
    std::cerr << "analysis failed\n";
    return 1;
  }

  std::cout << "Stage pacing (max admissible response times):\n";
  for (std::size_t i = 0; i < ours.actors_in_order.size(); ++i) {
    std::cout << "  " << chain.graph.actor(ours.actors_in_order[i]).name
              << ": " << ours.pacing[i].to_millis_double() << " ms\n";
  }

  io::Table table({"buffer", "pi / gamma", "VRDF capacity",
                   "traditional (max rates)", "overhead"});
  for (std::size_t i = 0; i < ours.pairs.size(); ++i) {
    const auto& data = chain.graph.edge(ours.pairs[i].buffer.data);
    const double overhead =
        trad.pairs[i].capacity == 0
            ? 0.0
            : 100.0 *
                  (static_cast<double>(ours.pairs[i].capacity) /
                       static_cast<double>(trad.pairs[i].capacity) -
                   1.0);
    table.add_row(
        {chain.graph.actor(ours.pairs[i].producer).name + "->" +
             chain.graph.actor(ours.pairs[i].consumer).name,
         data.production.to_string() + " / " + data.consumption.to_string(),
         std::to_string(ours.pairs[i].capacity),
         std::to_string(trad.pairs[i].capacity),
         std::to_string(overhead).substr(0, 5) + " %"});
  }
  std::cout << '\n' << table.to_string() << '\n';

  analysis::apply_capacities(chain.graph, ours);
  sim::VerifyOptions options;
  options.observe_firings = 2000;  // 80 s of video at 25 fps
  const sim::VerifyResult verdict =
      sim::verify_throughput(chain.graph, chain.constraint, {}, options);
  std::cout << "verify [random rates]: " << (verdict.ok ? "OK" : "FAILED")
            << " — " << verdict.detail << '\n';
  return verdict.ok ? 0 : 1;
}
