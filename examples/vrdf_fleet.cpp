// Fleet-scale parallel verification (PR 8): expand a sweep spec into
// independent generate → analyze → two-phase-verify pipelines, run them
// on a thread pool, and print the aggregated report.
//
// With no arguments a small default sweep runs (all five model classes,
// 8 seeds each, 2 workers) — suitable for CI smoke runs.  Flags:
//
//   --classes chain,fork_join,...   model classes swept (default: all)
//   --seeds N                       seed ordinals per class cell
//   --threads N                     pool workers (1 = inline, no pool)
//   --headroom A,B,...              capacity headroom levels swept
//   --modes sink,source             constraint placements swept
//   --observe N                     firings observed per verify phase
//   --base-seed N                   RNG base (items derive via splitmix64)
//   --faulted                       inject within-margin faults + monitor
//   --certify                       emit + independently check a capacity
//                                   certificate for every analysis
//   --journal PATH                  resumable journal (rerun to resume)
//   --items                         print every item line, not just tallies
//
// The canonical report section is bit-identical for any --threads value
// and across interrupt + resume; only the trailing wall-clock lines vary.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "io/fleet_journal.hpp"
#include "models/synthetic.hpp"
#include "sim/fleet.hpp"
#include "util/error.hpp"

namespace {

using vrdf::models::ModelClass;
using vrdf::sim::ConstraintMode;

[[noreturn]] void usage_error(const std::string& detail) {
  std::cerr << "vrdf_fleet: " << detail << "\n"
            << "usage: vrdf_fleet [--classes LIST] [--seeds N] [--threads N]\n"
            << "                  [--headroom LIST] [--modes LIST]\n"
            << "                  [--observe N] [--base-seed N] [--faulted]\n"
            << "                  [--certify] [--journal PATH] [--items]\n";
  std::exit(2);
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    parts.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return parts;
}

std::int64_t parse_count(const std::string& flag, const std::string& text) {
  try {
    const long long value = std::stoll(text);
    if (value <= 0) {
      usage_error(flag + " wants a positive integer, got '" + text + "'");
    }
    return value;
  } catch (const std::exception&) {
    usage_error(flag + " wants a positive integer, got '" + text + "'");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vrdf;

  sim::SweepSpec spec;
  // The no-argument default is a small smoke sweep: every class, both
  // placements, a handful of seeds — a few seconds of work.
  spec.seeds_per_class = 8;
  spec.modes = {ConstraintMode::Sink, ConstraintMode::Source};
  spec.observe_firings = 200;
  std::size_t threads = 2;
  std::optional<std::string> journal_path;
  bool print_items = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage_error(flag + " wants a value");
      }
      return argv[++i];
    };
    if (flag == "--classes") {
      spec.classes.clear();
      for (const std::string& name : split_list(value())) {
        const auto model_class = models::parse_model_class(name);
        if (!model_class.has_value()) {
          usage_error("unknown model class '" + name + "'");
        }
        spec.classes.push_back(*model_class);
      }
    } else if (flag == "--seeds") {
      spec.seeds_per_class = parse_count(flag, value());
    } else if (flag == "--threads") {
      threads = static_cast<std::size_t>(parse_count(flag, value()));
    } else if (flag == "--headroom") {
      spec.headroom_levels.clear();
      for (const std::string& level : split_list(value())) {
        try {
          spec.headroom_levels.push_back(std::stoll(level));
        } catch (const std::exception&) {
          usage_error("--headroom wants integers, got '" + level + "'");
        }
      }
    } else if (flag == "--modes") {
      spec.modes.clear();
      for (const std::string& name : split_list(value())) {
        if (name == "sink") {
          spec.modes.push_back(ConstraintMode::Sink);
        } else if (name == "source") {
          spec.modes.push_back(ConstraintMode::Source);
        } else {
          usage_error("unknown mode '" + name + "' (want sink or source)");
        }
      }
    } else if (flag == "--observe") {
      spec.observe_firings = parse_count(flag, value());
    } else if (flag == "--base-seed") {
      spec.base_seed = static_cast<std::uint64_t>(parse_count(flag, value()));
    } else if (flag == "--faulted") {
      spec.faulted = true;
    } else if (flag == "--certify") {
      spec.certify = true;
    } else if (flag == "--journal") {
      journal_path = value();
    } else if (flag == "--items") {
      print_items = true;
    } else {
      usage_error("unknown flag '" + flag + "'");
    }
  }

  try {
    const sim::FleetSweep sweep(spec);
    std::optional<io::FleetJournal> journal;
    if (journal_path.has_value()) {
      journal.emplace(*journal_path, sweep.fingerprint(), sweep.items().size());
      std::cout << "journal '" << *journal_path << "': "
                << journal->completed() << "/" << sweep.items().size()
                << " items already recorded\n";
    }
    const sim::FleetReport report =
        sweep.run(threads, journal.has_value() ? &*journal : nullptr);
    if (print_items) {
      std::cout << sim::canonical_text(report, /*include_items=*/true);
      std::cout << "threads " << report.threads_used << "\n"
                << "resumed " << report.items_resumed << " items\n"
                << "elapsed " << report.elapsed_seconds << " s ("
                << report.firings_per_second << " firings/s aggregate)\n";
    } else {
      std::cout << sim::summary_text(report);
    }
    return report.failed == 0 && report.rejected == 0 ? 0 : 1;
  } catch (const Error& error) {
    std::cerr << "vrdf_fleet: " << error.what() << "\n";
    return 1;
  }
}
