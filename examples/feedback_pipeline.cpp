// Cyclic showcase: sizes the decoder + rate-control credit loop, shows
// the back-edge's required circulating tokens and the max-cycle-ratio
// headroom, verifies the capacities by two-phase simulation, and prints
// the report plus a DOT rendering with the back-edge dashed.
#include <iostream>

#include "analysis/buffer_sizing.hpp"
#include "analysis/period.hpp"
#include "io/dot.hpp"
#include "io/report.hpp"
#include "models/synthetic.hpp"
#include "sim/verify.hpp"

int main() {
  using namespace vrdf;

  models::FeedbackPipeline app = models::make_feedback_pipeline();
  const analysis::GraphAnalysis sized =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  if (!sized.admissible) {
    for (const auto& d : sized.diagnostics) {
      std::cerr << d << '\n';
    }
    return 1;
  }
  analysis::apply_capacities(app.graph, sized);

  std::cout << io::analysis_report(app.graph, app.constraint, sized) << '\n';

  for (const analysis::PairAnalysis& pair : sized.pairs) {
    if (pair.is_feedback) {
      std::cout << "back-edge " << app.graph.actor(pair.producer).name
                << " -> " << app.graph.actor(pair.consumer).name
                << ": circulating tokens delta=" << pair.initial_tokens
                << " (required " << pair.required_initial_tokens
                << "), capacity " << pair.capacity << "\n";
    }
  }

  const analysis::MinPeriodResult headroom =
      analysis::min_admissible_period(app.graph, app.constraint.actor);
  if (headroom.ok) {
    std::cout << "fastest admissible period: "
              << headroom.min_period.seconds().to_string()
              << " s (binding: " << headroom.binding_constraint << ")\n\n";
  }

  const sim::VerifyResult verdict =
      sim::verify_throughput(app.graph, app.constraint);
  std::cout << "verify: " << (verdict.ok ? "OK" : "FAILED") << " — "
            << verdict.detail << "\n\n";

  std::cout << io::to_dot(app.graph, app.constraint, sized);
  return verdict.ok ? 0 : 1;
}
