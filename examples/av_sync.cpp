// Fork-join showcase: sizes the audio/video demux-decode-sync pipeline,
// verifies the capacities by two-phase simulation, and prints the report
// plus an annotated DOT rendering of the sized graph.
#include <iostream>

#include "analysis/buffer_sizing.hpp"
#include "baseline/traditional.hpp"
#include "io/dot.hpp"
#include "io/report.hpp"
#include "models/synthetic.hpp"
#include "sim/verify.hpp"

int main() {
  using namespace vrdf;

  models::AvSyncPipeline app = models::make_av_sync_pipeline();
  const analysis::GraphAnalysis sized =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  if (!sized.admissible) {
    for (const auto& d : sized.diagnostics) {
      std::cerr << d << '\n';
    }
    return 1;
  }
  analysis::apply_capacities(app.graph, sized);

  std::cout << io::analysis_report(app.graph, app.constraint, sized) << '\n';

  const baseline::TraditionalResult traditional =
      baseline::traditional_capacities(app.graph);
  if (traditional.ok) {
    std::cout << "Traditional (all-max quanta) total: "
              << traditional.total_capacity << " containers vs VRDF "
              << sized.total_capacity << ".\n\n";
  }

  const sim::VerifyResult verdict =
      sim::verify_throughput(app.graph, app.constraint);
  std::cout << "verify: " << (verdict.ok ? "OK" : "FAILED") << " — "
            << verdict.detail << "\n\n";

  std::cout << io::to_dot(app.graph, app.constraint, sized);
  return verdict.ok ? 0 : 1;
}
