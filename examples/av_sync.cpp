// Fork-join showcase: sizes the audio/video demux-decode-sync pipeline,
// verifies the capacities by two-phase simulation, and prints the report
// plus an annotated DOT rendering of the sized graph.  A second section
// runs the dual-presenter variant — two simultaneous throughput
// constraints (15 ms audio, 40 ms video) through the multi-constraint
// analysis and harness.
#include <iostream>

#include "analysis/buffer_sizing.hpp"
#include "baseline/traditional.hpp"
#include "io/dot.hpp"
#include "io/report.hpp"
#include "models/synthetic.hpp"
#include "sim/verify.hpp"

int main() {
  using namespace vrdf;

  models::AvSyncPipeline app = models::make_av_sync_pipeline();
  const analysis::GraphAnalysis sized =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  if (!sized.admissible) {
    for (const auto& d : sized.diagnostics) {
      std::cerr << d << '\n';
    }
    return 1;
  }
  analysis::apply_capacities(app.graph, sized);

  std::cout << io::analysis_report(app.graph, app.constraint, sized) << '\n';

  const baseline::TraditionalResult traditional =
      baseline::traditional_capacities(app.graph);
  if (traditional.ok) {
    std::cout << "Traditional (all-max quanta) total: "
              << traditional.total_capacity << " containers vs VRDF "
              << sized.total_capacity << ".\n\n";
  }

  const sim::VerifyResult verdict =
      sim::verify_throughput(app.graph, app.constraint);
  std::cout << "verify: " << (verdict.ok ? "OK" : "FAILED") << " — "
            << verdict.detail << "\n\n";

  std::cout << io::to_dot(app.graph, app.constraint, sized);

  // Dual-presenter variant: audio and video pinned at once.
  models::AvDualSinkPipeline dual = models::make_av_dual_sink_pipeline();
  const analysis::GraphAnalysis dual_sized =
      analysis::compute_buffer_capacities(dual.graph, dual.constraints);
  if (!dual_sized.admissible) {
    for (const auto& d : dual_sized.diagnostics) {
      std::cerr << d << '\n';
    }
    return 1;
  }
  analysis::apply_capacities(dual.graph, dual_sized);
  std::cout << '\n'
            << io::analysis_report(dual.graph, dual.constraints, dual_sized)
            << '\n';
  const baseline::TraditionalResult dual_traditional =
      baseline::traditional_capacities(dual.graph);
  if (dual_traditional.ok) {
    std::cout << "Traditional (all-max quanta) total: "
              << dual_traditional.total_capacity << " containers vs VRDF "
              << dual_sized.total_capacity << ".\n\n";
  }
  const sim::VerifyResult dual_verdict =
      sim::verify_throughput(dual.graph, dual.constraints);
  std::cout << "verify (dual presenter): "
            << (dual_verdict.ok ? "OK" : "FAILED") << " — "
            << dual_verdict.detail << "\n\n";
  std::cout << io::to_dot(dual.graph, dual.constraints, dual_sized);
  return (verdict.ok && dual_verdict.ok) ? 0 : 1;
}
