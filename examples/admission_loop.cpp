// Admission-control service loop (PR 7): the MP3 player of Sec 5 run as
// a long-lived service that answers run-time capacity questions without
// re-running the full analysis.
//
// The TopologySnapshot is captured once; every question — may the
// decoder move to a slower core? may a second stream start at the
// sample-rate converter? may the DAC clock change? — is answered by the
// AdmissionController as an incremental what-if: apply, read
// admissibility, roll back on rejection.  Rejections name the binding
// constraint (the diagnostic that blocked the change); acceptances
// report the buffer-capacity delta the change costs or releases.
#include <iostream>

#include "analysis/admission.hpp"
#include "analysis/snapshot.hpp"
#include "io/report.hpp"
#include "models/mp3.hpp"

int main() {
  using namespace vrdf;

  const models::Mp3Playback app = models::make_mp3_playback();
  const analysis::TopologySnapshot snapshot(app.graph);
  analysis::AdmissionController controller(
      snapshot, analysis::ConstraintSet{app.constraint});

  const auto show = [](const char* question,
                       const analysis::AdmissionDecision& decision) {
    std::cout << question << "\n  -> "
              << (decision.accepted ? "ACCEPTED" : "REJECTED");
    if (decision.accepted) {
      std::cout << " (capacity delta " << decision.capacity_delta
                << " containers, total " << decision.total_capacity << ")";
    } else {
      std::cout << " (binding: " << decision.binding_constraint << ")";
    }
    std::cout << "\n\n";
  };

  // 1. The decoder is moved to a slower core: ρ(vMP3) doubles.  The
  //    paper's response times are maximal, so this must be rejected —
  //    and the rejection names the violated pacing budget.
  const Duration rho_mp3 = app.graph.actor(app.mp3).response_time;
  show("May vMP3 run with doubled response time?",
       controller.retune(app.mp3, Duration(rho_mp3.seconds() * Rational(2))));

  // 2. A faster core instead: ρ(vMP3) halves.  Accepted, and the tighter
  //    schedule releases buffer containers.
  show("May vMP3 run with halved response time?",
       controller.retune(app.mp3,
                         Duration(rho_mp3.seconds() * Rational(1, 2))));

  // 3. A second client taps the 48 kHz stream at the converter's own
  //    rate — flow-consistent with the DAC constraint, so admissible.
  const analysis::GraphAnalysis& current = controller.analysis();
  Duration phi_src;
  for (std::size_t i = 0; i < current.actors_in_order.size(); ++i) {
    if (current.actors_in_order[i] == app.src) {
      phi_src = current.pacing[i];
    }
  }
  show("May a second stream start at vSRC (at its own rate)?",
       controller.admit(analysis::ThroughputConstraint{app.src, phi_src}));

  // 4. The same client asks for 10% more throughput: flow-inconsistent
  //    with the DAC's fixed clock — rejected, state rolled back.
  show("May the vSRC stream speed up by 10%?",
       controller.set_period(
           app.src, Duration(phi_src.seconds() * Rational(10, 11))));

  // 5. The second stream stops again.
  show("May the vSRC stream stop?", controller.remove(app.src));

  // 6. The decoder moves back to its original core.
  show("May vMP3 return to its original response time?",
       controller.retune(app.mp3, rho_mp3));

  std::cout << io::admission_summary(app.graph, controller);

  // The serviced state must end exactly where the paper starts: the
  // published capacities {6015, 3263, 882}.
  const analysis::GraphAnalysis& final_state = controller.analysis();
  for (std::size_t i = 0; i < final_state.pairs.size(); ++i) {
    if (final_state.pairs[i].capacity !=
        models::Mp3PaperNumbers::kVrdfCapacities[i]) {
      std::cerr << "capacity mismatch on pair " << i << "\n";
      return 1;
    }
  }
  return 0;
}
