#include "sim/steady_state.hpp"

#include <sstream>
#include <unordered_map>

#include "util/error.hpp"

namespace vrdf::sim {

namespace {

/// Canonical text encoding of a snapshot (exact: token counts and rational
/// remainders).
std::string encode(const Simulator::StateSnapshot& snap) {
  std::ostringstream os;
  for (const std::int64_t t : snap.tokens) {
    os << t << ',';
  }
  os << '|';
  for (const auto& r : snap.remaining) {
    if (r.has_value()) {
      os << r->to_string();
    } else {
      os << '.';
    }
    os << ',';
  }
  return os.str();
}

}  // namespace

SteadyStateResult detect_steady_state(const dataflow::VrdfGraph& graph,
                                      dataflow::ActorId observed,
                                      std::int64_t max_observed_firings) {
  for (const dataflow::EdgeId e : graph.edges()) {
    const dataflow::Edge& edge = graph.edge(e);
    VRDF_REQUIRE(edge.production.is_singleton() &&
                     edge.consumption.is_singleton(),
                 "steady-state detection requires a data-independent graph "
                 "(all rate sets singletons)");
  }
  VRDF_REQUIRE(max_observed_firings > 0, "firing budget must be positive");

  SteadyStateResult result;
  Simulator sim(graph);
  sim.set_default_sources(0);  // singletons -> constant sources

  struct Occurrence {
    std::int64_t firings;
    Rational time_seconds;
  };
  // Keyed by the canonical snapshot encoding; hashing keeps the per-firing
  // recurrence check O(1) in the number of observed states.  No up-front
  // reserve: recurrences usually appear after a handful of snapshots, and
  // the firing budget can be large.
  std::unordered_map<std::string, Occurrence> seen;

  for (std::int64_t k = 1; k <= max_observed_firings; ++k) {
    StopCondition stop;
    stop.firing_target = StopCondition::FiringTarget{observed, k};
    const RunResult run = sim.run(stop);
    if (run.reason == StopReason::Deadlock) {
      result.deadlocked = true;
      return result;
    }
    if (run.reason != StopReason::ReachedFiringTarget) {
      return result;  // budget exhausted inside the engine
    }
    const std::string key = encode(sim.snapshot());
    const auto [it, inserted] =
        seen.emplace(key, Occurrence{k, sim.now().seconds()});
    if (!inserted) {
      result.found = true;
      result.transient_firings = it->second.firings;
      result.cycle_firings = k - it->second.firings;
      result.cycle_length =
          Duration(sim.now().seconds() - it->second.time_seconds);
      VRDF_REQUIRE(result.cycle_length.is_positive(),
                   "steady-state cycle must advance time (engine bug)");
      result.throughput = Rational(result.cycle_firings) /
                          result.cycle_length.seconds();
      return result;
    }
  }
  return result;  // no recurrence within the budget
}

}  // namespace vrdf::sim
