// Exact steady-state throughput by state recurrence.
//
// A self-timed, data-independent (all rate sets singleton) VRDF graph is a
// deterministic dynamical system over a finite state space of token
// vectors and in-flight remainders, so its execution is eventually
// periodic.  Observing the full state each time a designated actor
// finishes a firing, the first recurrence closes the cycle, and the exact
// long-run throughput is (firings per cycle) / (cycle length) — the
// max-cycle-ratio result classical SDF analysis computes, obtained here by
// executing the semantics directly.  This makes sufficiency checks for
// constant-rate graphs *conclusive* rather than horizon-limited: a sized
// graph sustains a period τ iff the detected throughput ≥ 1/τ.
//
// Restriction: self-timed actors and constant quanta only (with
// data-dependent sources the state space includes the stream, and a
// finite recurrence argument no longer applies).
#pragma once

#include <optional>

#include "dataflow/vrdf_graph.hpp"
#include "sim/simulator.hpp"

namespace vrdf::sim {

struct SteadyStateResult {
  /// False when the graph deadlocked or no recurrence appeared within the
  /// firing budget.
  bool found = false;
  bool deadlocked = false;
  /// Exact long-run firings/second of the observed actor.
  Rational throughput;
  /// Observed-actor firings before the recurring cycle was first entered.
  std::int64_t transient_firings = 0;
  /// Observed-actor firings per cycle.
  std::int64_t cycle_firings = 0;
  /// Exact cycle length.
  Duration cycle_length;
};

/// Runs the graph self-timed and detects the periodic steady state of
/// `observed`.  Requires every rate set to be a singleton (throws
/// ContractError otherwise).  `max_observed_firings` bounds the search.
[[nodiscard]] SteadyStateResult detect_steady_state(
    const dataflow::VrdfGraph& graph, dataflow::ActorId observed,
    std::int64_t max_observed_firings = 1 << 20);

}  // namespace vrdf::sim
