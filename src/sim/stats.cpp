#include "sim/stats.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vrdf::sim {

namespace {

/// Production time of the token with 1-based index `k`: initial tokens
/// count as produced at t = 0; afterwards walk the recorded events.
class ProductionTimeline {
public:
  ProductionTimeline(const std::vector<EdgeTransfer>& events,
                     std::int64_t initial_tokens)
      : events_(events), initial_(initial_tokens) {}

  [[nodiscard]] std::optional<TimePoint> time_of(std::int64_t k) {
    if (k <= initial_) {
      return TimePoint();
    }
    const std::int64_t produced_index = k - initial_;
    while (cursor_ < events_.size() &&
           events_[cursor_].cumulative < produced_index) {
      ++cursor_;
    }
    if (cursor_ >= events_.size()) {
      return std::nullopt;  // recording cap reached
    }
    return events_[cursor_].time;
  }

private:
  const std::vector<EdgeTransfer>& events_;
  std::int64_t initial_;
  std::size_t cursor_ = 0;
};

}  // namespace

std::optional<ResidencyStats> token_residency(const Simulator& sim,
                                              const dataflow::VrdfGraph& graph,
                                              dataflow::EdgeId edge) {
  const auto& consumptions = sim.consumption_events(edge);
  if (consumptions.empty()) {
    return std::nullopt;
  }
  ProductionTimeline productions(sim.production_events(edge),
                                 graph.edge(edge).initial_tokens);
  ResidencyStats stats;
  Rational total;
  bool first = true;
  for (const EdgeTransfer& c : consumptions) {
    // Residency of an atomic consumption is bounded by its *oldest* token
    // (FIFO): token index cumulative − count + 1 .. cumulative; use each
    // token for the mean, the oldest for max and the newest for min.
    for (std::int64_t k = c.cumulative - c.count + 1; k <= c.cumulative; ++k) {
      const auto produced = productions.time_of(k);
      if (!produced.has_value()) {
        break;  // beyond the recording cap; stop cleanly
      }
      const Duration residency = c.time - *produced;
      VRDF_REQUIRE(!residency.is_negative(),
                   "token consumed before production (engine bug)");
      if (first || residency > stats.max_residency) {
        stats.max_residency = residency;
      }
      if (first || residency < stats.min_residency) {
        stats.min_residency = residency;
      }
      first = false;
      total += residency.seconds();
      ++stats.tokens;
    }
  }
  if (stats.tokens == 0) {
    return std::nullopt;
  }
  stats.mean_seconds = total / Rational(stats.tokens);
  return stats;
}

std::int64_t peak_occupancy(const Simulator& sim,
                            const dataflow::VrdfGraph& graph,
                            dataflow::EdgeId edge) {
  // Merge the two event streams by time (production first on ties: a token
  // produced at t is consumable at t, so occupancy momentarily includes it).
  const auto& productions = sim.production_events(edge);
  const auto& consumptions = sim.consumption_events(edge);
  std::int64_t occupancy = graph.edge(edge).initial_tokens;
  std::int64_t peak = occupancy;
  std::size_t pi = 0;
  std::size_t ci = 0;
  while (pi < productions.size() || ci < consumptions.size()) {
    const bool take_production =
        ci >= consumptions.size() ||
        (pi < productions.size() &&
         productions[pi].time <= consumptions[ci].time);
    if (take_production) {
      occupancy += productions[pi].count;
      peak = std::max(peak, occupancy);
      ++pi;
    } else {
      occupancy -= consumptions[ci].count;
      ++ci;
    }
  }
  return peak;
}

}  // namespace vrdf::sim
