// Capacity-vs-allocation frontier sweep: the fleet harness applied to
// deployments (ISSUE 10 / ROADMAP "N streams contending for M cores").
//
// A FrontierSpec expands slot budgets × stream counts × seed ordinals
// into independent items.  Each item builds N stream chains, binds their
// tasks round-robin across M TDM processors at the cell's slot budget,
// derives κ through analysis/deployment, runs the capacity analysis and
// — for admissible deployments — installs the computed capacities and
// verifies them end-to-end with the two-phase harness (actors run at
// their arbiter-delayed response times; zero starvations expected).
// Items that fail before analysis are classified: the TDM wheel was
// binding (rejected_wheel) or a throughput constraint was
// (rejected_analysis).  The per-cell tallies ARE the frontier: how much
// total buffer capacity each (streams, slot) allocation point costs, and
// where the feasible region ends on either side.
//
// Determinism rules are inherited from sim/fleet.hpp: stateless per-item
// seeds (util::derive_seed(base_seed, index)), items write only their
// own pre-allocated slot, results merge in item-index order, wall-clock
// metrics are excluded from canonical_text().  The canonical report is
// bit-identical at any thread count (tools/lint_determinism.py rules
// R1–R3 apply to this file).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/deployment.hpp"
#include "util/time.hpp"

namespace vrdf::sim {

/// One independent deployment item, fully determined by the spec and its
/// index.
struct FrontierItem {
  /// Position in the spec's expansion order.
  std::size_t index = 0;
  /// Number of stream chains deployed.
  std::int64_t streams = 1;
  /// The cell's slot budget, in sixteenths of the wheel period.
  std::int64_t slot_sixteenths = 4;
  /// 1-based ordinal within the (streams, slot) cell.
  std::uint64_t seed_ordinal = 1;
  /// util::derive_seed(base_seed, index) — the item's RNG stream.
  std::uint64_t rng_seed = 0;
};

/// How one deployment item resolved.
enum class FrontierOutcome {
  /// Analysis admissible; capacities computed (and verified when
  /// FrontierSpec::verify is set).
  Admitted,
  /// The TDM wheel could not hold the cell's slot budget for every bound
  /// task — the *platform* was binding.
  RejectedWheel,
  /// The capacity analysis rejected — a throughput constraint was
  /// binding (derived κ exceeds the pacing budget).
  RejectedAnalysis,
};

[[nodiscard]] const char* frontier_outcome_name(FrontierOutcome outcome);

struct FrontierSpec {
  /// TDM processors the streams contend for.
  std::size_t processors = 2;
  /// Tasks per stream chain.
  std::int64_t tasks_per_stream = 3;
  /// Stream counts swept (cells, major axis).
  std::vector<std::int64_t> stream_counts{1, 2, 3};
  /// Slot budgets swept, in sixteenths of the wheel (cells, minor axis).
  /// The default range straddles the feasible region: 1/16 slots starve
  /// the derived κ past the stream period (analysis-bound), 6/16 and up
  /// oversubscribe the wheel at higher stream counts (wheel-bound).
  std::vector<std::int64_t> slot_sixteenths{1, 2, 4, 6, 8};
  /// Randomized WCET draws per cell.
  std::int64_t seeds_per_cell = 4;
  std::uint64_t base_seed = 1;
  /// TDM wheel period of every processor.
  Duration wheel = milliseconds(Rational(1));
  /// Demanded period of every stream's sink — fixed across allocations,
  /// so the sweep shows which allocations can honour it.
  Duration stream_period = milliseconds(Rational(2));
  /// Per-task WCET draw range, in sixty-fourths of the wheel period.
  std::int64_t wcet_min_64ths = 2;
  std::int64_t wcet_max_64ths = 12;
  /// Firings of the leading constrained actor simulated per phase.
  std::int64_t observe_firings = 200;
  /// Run the two-phase harness on every admissible item.
  bool verify = true;
  /// Emit + independently check a platform-claused certificate per
  /// admissible item.
  bool certify = true;
  analysis::KappaDerivation derivation =
      analysis::KappaDerivation::PolicyExact;
};

/// Deterministic verdict of one item; every field participates in the
/// canonical serialization.
struct FrontierItemResult {
  FrontierItem item;
  FrontierOutcome outcome = FrontierOutcome::RejectedAnalysis;
  /// Admitted + two-phase check passed (false when verify is off).
  bool verified = false;
  std::int64_t starvation_count = 0;
  /// Σζ of the admissible analysis; 0 on rejection.
  std::int64_t total_capacity = 0;
  /// Firings simulated across both verify phases.
  std::int64_t firings = 0;
  /// Certify mode: clauses validated / verdict for this item.
  std::int64_t certificate_clauses = 0;
  bool certificate_ok = false;
  /// Empty for verified admissions; diagnostics otherwise.
  std::string detail;
};

/// One (streams, slot) allocation point of the frontier.
struct FrontierCellTally {
  std::int64_t streams = 0;
  std::int64_t slot_sixteenths = 0;
  std::int64_t items = 0;
  std::int64_t admitted = 0;
  std::int64_t rejected_wheel = 0;
  std::int64_t rejected_analysis = 0;
  std::int64_t verified = 0;
  std::int64_t starvations = 0;
  /// Σ total_capacity over the cell's admitted items — the frontier's
  /// capacity cost at this allocation point.
  std::int64_t total_capacity = 0;
  std::int64_t firings = 0;
  std::int64_t certified = 0;
  std::int64_t certificate_clauses = 0;
  std::int64_t certificate_failures = 0;
};

struct FrontierReport {
  /// Canonical one-line summary of the spec that produced this report.
  std::string spec_summary;
  /// Cells in spec order: stream-count major, slot minor.
  std::vector<FrontierCellTally> cells;
  /// Every item verdict, in item-index order.
  std::vector<FrontierItemResult> items;
  // Grand totals over `cells`.
  std::int64_t total_items = 0;
  std::int64_t admitted = 0;
  std::int64_t rejected_wheel = 0;
  std::int64_t rejected_analysis = 0;
  std::int64_t verified = 0;
  std::int64_t starvations = 0;
  std::int64_t total_capacity = 0;
  std::int64_t firings = 0;
  std::int64_t certified = 0;
  std::int64_t certificate_clauses = 0;
  std::int64_t certificate_failures = 0;
  // ---- wall-clock section: excluded from canonical_text() ----
  double elapsed_seconds = 0.0;
  std::size_t threads_used = 1;
};

/// One-line codec for an item result (newlines in `detail` escaped).
[[nodiscard]] std::string encode_frontier_line(
    const FrontierItemResult& result);

/// The deterministic serialization: spec summary, per-cell tallies,
/// totals and (when `include_items`) every item line.  Bit-identical
/// across thread counts.
[[nodiscard]] std::string canonical_text(const FrontierReport& report,
                                         bool include_items = true);

/// Human summary for CLIs: canonical tallies plus the wall-clock section.
[[nodiscard]] std::string summary_text(const FrontierReport& report);

class FrontierSweep {
 public:
  explicit FrontierSweep(FrontierSpec spec);

  [[nodiscard]] const std::vector<FrontierItem>& items() const {
    return items_;
  }
  [[nodiscard]] const std::string& spec_summary() const {
    return spec_summary_;
  }

  /// Runs every item and aggregates.  `threads` <= 1 runs inline on the
  /// caller; larger values run on a util::ThreadPool of that many
  /// workers.  The canonical report bytes are identical either way.
  [[nodiscard]] FrontierReport run(std::size_t threads = 1) const;

  /// Runs one item's pipeline — public for tests and benchmarks.
  [[nodiscard]] FrontierItemResult run_item(const FrontierItem& item) const;

 private:
  FrontierSpec spec_;
  std::vector<FrontierItem> items_;
  std::string spec_summary_;
};

}  // namespace vrdf::sim
