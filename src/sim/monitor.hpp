// Runtime conformance monitoring — the observability counterpart of the
// fault-injection layer (sim/fault_injection.hpp).
//
// The analysis promises "zero starvations forever" under two assumptions
// it cannot enforce at run time: every actor respects its declared
// worst-case response time ρ(v), and the installed capacities are the
// analysed ones.  The ConformanceMonitor checks the first assumption and
// names the consequences when it fails:
//
//  * ρ-contract violations — a firing whose observed duration exceeded
//    the declared ρ(v), recorded as a named event (actor, firing index,
//    declared vs observed);
//  * per-constraint lateness — each constrained actor's starts measured
//    against its periodic grid (starvation-based when the actor runs
//    strictly periodically, i.e. the phase-2 grid of sim/verify.cpp;
//    anchored at the first start for self-timed runs);
//  * a stall watchdog — when a run deadlocks, diagnose_blockage walks the
//    wait-for relation of RunResult::blocked and reports the blocked
//    cycle (which actor waits on which buffer, space vs tokens) instead
//    of a bare deadlock flag.
//
// Events are routed through util/log.hpp at Debug (violations, watchdog)
// and Trace (per-constraint summaries); nothing here runs on the engine's
// firing hot path — the monitor reads the simulator's firing records
// after (segments of) a run.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/types.hpp"
#include "dataflow/vrdf_graph.hpp"
#include "sim/simulator.hpp"

namespace vrdf::sim {

/// One firing that exceeded its actor's declared worst-case response time.
struct RhoViolation {
  dataflow::ActorId actor;
  std::int64_t firing = 0;  // 0-based firing index
  Duration declared;        // ρ(v) from the graph
  Duration observed;        // finish − start of the recorded firing
};

/// Lateness of one constrained actor versus its periodic grid.
struct ConstraintConformance {
  dataflow::ActorId actor;
  Duration period;
  /// Firings observed (recorded) so far.
  std::int64_t firings_observed = 0;
  /// Activations that missed their grid slot (starvations for strictly
  /// periodic actors; positive-lateness starts otherwise).
  std::int64_t late_firings = 0;
  /// Worst start lateness versus the grid (zero when none was late).
  Duration max_lateness;
  /// First late firing index, if any.
  std::optional<std::int64_t> first_late_firing;
};

/// The watchdog's diagnosis of a deadlocked run.
struct BlockageReport {
  bool blocked = false;
  /// The raw wait-for relation (RunResult::blocked).
  std::vector<BlockedWait> waits;
  /// A wait-for cycle among the blocked actors (each waits for tokens
  /// whose producer is the next), when one exists.
  std::vector<dataflow::ActorId> cycle;
  /// Human-readable summary naming actors and buffers.
  std::string message;
};

/// Walks the wait-for relation of a deadlocked run: actor a waits for
/// actor b when a's missing tokens arrive on an edge produced by b.  At a
/// true deadlock every chain of waits closes into a cycle; the report
/// names it (and each actor's missing buffer, space vs data).  Also the
/// backend of the verify_throughput early-stop messages.
[[nodiscard]] BlockageReport diagnose_blockage(
    const dataflow::VrdfGraph& graph, const std::vector<BlockedWait>& blocked);

struct MonitorOptions {
  /// Cap on stored RhoViolation events (the total count keeps counting).
  std::size_t max_events = 256;
  /// Firing-record cap installed per actor by attach().
  std::size_t record_cap = 1 << 18;
  /// Starts later than this past their grid slot count as late for
  /// non-periodic (anchored-grid) lateness tracking.
  Duration lateness_tolerance;
};

/// Flat, copyable summary of everything a monitor observed; returned by
/// ConformanceMonitor::report and embedded in VerifyResult.
struct MonitorReport {
  /// No firing exceeded its declared ρ.
  bool rho_conformant = true;
  /// Total ρ-contract violations (may exceed events.size()).
  std::int64_t rho_violation_total = 0;
  std::vector<RhoViolation> rho_violations;
  std::vector<ConstraintConformance> constraints;
  BlockageReport blockage;
  /// One-line verdict naming the violated constraint and the offending
  /// actor(s), or "conformant".
  std::string summary;
};

/// Online conformance monitor for one simulator lifetime.  Usage:
///
///   ConformanceMonitor monitor(graph, constraints);
///   Simulator sim(graph);
///   ...configure...
///   monitor.attach(sim);            // before the first run
///   const RunResult run = sim.run(stop);
///   monitor.observe(sim, run);      // repeatable per run() segment
///   if (!monitor.report().rho_conformant) ...
///
/// observe() is incremental (per-actor cursors), so interleaving run
/// segments and observations tracks a long-lived simulation online.
class ConformanceMonitor {
public:
  ConformanceMonitor(const dataflow::VrdfGraph& graph,
                     analysis::ConstraintSet constraints,
                     MonitorOptions options = {});

  /// Enables firing records on every actor of the simulator (capped at
  /// MonitorOptions::record_cap).  Call before the first run.
  void attach(Simulator& sim) const;

  /// Ingests all firing records new since the previous observe() call,
  /// plus the run's starvations and (on deadlock) its blocked waits.
  void observe(const Simulator& sim, const RunResult& run);

  [[nodiscard]] const MonitorReport& report() const { return report_; }

private:
  void observe_rho(const Simulator& sim);
  void observe_constraints(const Simulator& sim, const RunResult& run);
  void refresh_summary();

  const dataflow::VrdfGraph* graph_;
  analysis::ConstraintSet constraints_;
  MonitorOptions options_;
  MonitorReport report_;
  /// Per actor id: firing records already ingested.
  std::vector<std::size_t> rho_cursor_;
  /// Per constraint index: firing records already graded, grid anchor.
  std::vector<std::size_t> grid_cursor_;
  std::vector<std::optional<TimePoint>> grid_anchor_;
  /// Per constraint index: starvations already counted.
  std::vector<std::size_t> starvation_cursor_;
};

}  // namespace vrdf::sim
