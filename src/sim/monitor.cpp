#include "sim/monitor.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "util/error.hpp"
#include "util/log.hpp"

namespace vrdf::sim {

using dataflow::ActorId;
using dataflow::EdgeId;

namespace {

/// "producer->consumer" of the buffer the edge belongs to (bare edges name
/// themselves); space halves are labelled in the buffer's data direction.
[[nodiscard]] std::string buffer_label(const dataflow::VrdfGraph& graph,
                                       EdgeId edge, bool space) {
  EdgeId data = edge;
  if (space) {
    data = graph.edge(edge).paired;
  }
  const dataflow::Edge& e = graph.edge(data);
  return graph.actor(e.source).name + "->" + graph.actor(e.target).name;
}

[[nodiscard]] std::string wait_phrase(const dataflow::VrdfGraph& graph,
                                      const BlockedWait& wait) {
  std::ostringstream os;
  os << "'" << graph.actor(wait.actor).name << "' waits for " << wait.needed
     << (wait.waiting_for_space ? " free containers" : " tokens")
     << " on buffer " << buffer_label(graph, wait.edge, wait.waiting_for_space)
     << " (has " << wait.available << ")";
  return os.str();
}

}  // namespace

BlockageReport diagnose_blockage(const dataflow::VrdfGraph& graph,
                                 const std::vector<BlockedWait>& blocked) {
  BlockageReport report;
  report.waits = blocked;
  if (blocked.empty()) {
    return report;
  }
  report.blocked = true;

  // Wait-for relation: the waiter waits for the producer of its missing
  // edge (for a space edge that is the buffer's consumer — back-pressure).
  // One representative wait per actor (the first listed) keeps the walk
  // deterministic.
  std::unordered_map<std::uint32_t, std::size_t> first_wait;
  for (std::size_t i = 0; i < blocked.size(); ++i) {
    first_wait.emplace(blocked[i].actor.value(), i);
  }
  // Follow the relation until it revisits an actor: at a true deadlock
  // every wait chain closes into a cycle.  rank = position in the current
  // walk; a revisit inside the walk yields the cycle suffix.
  std::unordered_map<std::uint32_t, std::size_t> rank;
  std::vector<ActorId> walk;
  ActorId at = blocked.front().actor;
  while (true) {
    const auto wait_it = first_wait.find(at.value());
    if (wait_it == first_wait.end()) {
      break;  // chain leaves the blocked set (defensive; see header)
    }
    const auto rank_it = rank.find(at.value());
    if (rank_it != rank.end()) {
      report.cycle.assign(walk.begin() +
                              static_cast<std::ptrdiff_t>(rank_it->second),
                          walk.end());
      break;
    }
    rank.emplace(at.value(), walk.size());
    walk.push_back(at);
    at = graph.edge(blocked[wait_it->second].edge).source;
  }

  std::ostringstream os;
  if (!report.cycle.empty()) {
    os << "blocked cycle: ";
    for (std::size_t i = 0; i < report.cycle.size(); ++i) {
      if (i > 0) {
        os << " -> ";
      }
      os << wait_phrase(graph, blocked[first_wait.at(report.cycle[i].value())]);
    }
    os << " -> back to '" << graph.actor(report.cycle.front()).name << "'";
  } else {
    os << "blocked actors: ";
    for (std::size_t i = 0; i < blocked.size(); ++i) {
      if (i > 0) {
        os << "; ";
      }
      os << wait_phrase(graph, blocked[i]);
    }
  }
  report.message = os.str();
  VRDF_LOG(Debug) << "watchdog: " << report.message;
  return report;
}

ConformanceMonitor::ConformanceMonitor(const dataflow::VrdfGraph& graph,
                                       analysis::ConstraintSet constraints,
                                       MonitorOptions options)
    : graph_(&graph),
      constraints_(std::move(constraints)),
      options_(options),
      rho_cursor_(graph.actor_count(), 0),
      grid_cursor_(constraints_.size(), 0),
      grid_anchor_(constraints_.size()),
      starvation_cursor_(constraints_.size(), 0) {
  report_.constraints.reserve(constraints_.size());
  for (const analysis::ThroughputConstraint& c : constraints_) {
    VRDF_REQUIRE(c.actor.is_valid() && c.actor.index() < graph.actor_count(),
                 "constrained actor does not exist in the monitored graph");
    ConstraintConformance conformance;
    conformance.actor = c.actor;
    conformance.period = c.period;
    report_.constraints.push_back(conformance);
  }
  refresh_summary();
}

void ConformanceMonitor::attach(Simulator& sim) const {
  for (const ActorId a : graph_->actors()) {
    sim.record_firings(a, options_.record_cap);
  }
}

void ConformanceMonitor::observe(const Simulator& sim, const RunResult& run) {
  observe_rho(sim);
  observe_constraints(sim, run);
  if (run.deadlocked()) {
    report_.blockage = diagnose_blockage(*graph_, run.blocked);
  }
  refresh_summary();
}

void ConformanceMonitor::observe_rho(const Simulator& sim) {
  for (const ActorId a : graph_->actors()) {
    const Duration declared = graph_->actor(a).response_time;
    const auto& records = sim.firings(a);
    for (std::size_t k = rho_cursor_[a.index()]; k < records.size(); ++k) {
      const Duration observed = records[k].finish - records[k].start;
      if (observed <= declared) {
        continue;
      }
      ++report_.rho_violation_total;
      report_.rho_conformant = false;
      if (report_.rho_violations.size() < options_.max_events) {
        report_.rho_violations.push_back(
            RhoViolation{a, records[k].index, declared, observed});
        VRDF_LOG(Debug) << "conformance: actor '" << graph_->actor(a).name
                        << "' firing " << records[k].index
                        << " violated its rho contract (declared "
                        << declared.to_string() << ", observed "
                        << observed.to_string() << ")";
      }
    }
    rho_cursor_[a.index()] = records.size();
  }
}

void ConformanceMonitor::observe_constraints(const Simulator& sim,
                                             const RunResult& run) {
  for (std::size_t c = 0; c < constraints_.size(); ++c) {
    ConstraintConformance& conformance = report_.constraints[c];
    const Duration tau = conformance.period;

    // Starvation-based grading: the engine's own periodic grid (the
    // phase-2 machinery of sim/verify.cpp) — authoritative whenever the
    // actor runs strictly periodically.
    std::int64_t starved = 0;
    for (std::size_t s = starvation_cursor_[c]; s < run.starvations.size();
         ++s) {
      const Starvation& starvation = run.starvations[s];
      if (starvation.actor != conformance.actor) {
        continue;
      }
      ++starved;
      const TimePoint started = starvation.actual_start.has_value()
                                    ? *starvation.actual_start
                                    : run.end_time;
      const Duration lateness = started - starvation.scheduled;
      conformance.max_lateness = std::max(conformance.max_lateness, lateness);
      if (!conformance.first_late_firing.has_value() ||
          starvation.firing < *conformance.first_late_firing) {
        conformance.first_late_firing = starvation.firing;
      }
    }
    starvation_cursor_[c] = run.starvations.size();

    // Anchored-grid grading for self-timed monitoring: lateness of start
    // k versus first_start + k·τ.  For a strictly periodic actor with an
    // on-time first start this coincides with the enforced grid.
    const auto& records = sim.firings(conformance.actor);
    std::int64_t anchored_late = 0;
    for (std::size_t k = grid_cursor_[c]; k < records.size(); ++k) {
      if (!grid_anchor_[c].has_value()) {
        grid_anchor_[c] = records[k].start - tau * Rational(records[k].index);
      }
      const Duration lateness =
          records[k].start -
          (*grid_anchor_[c] + tau * Rational(records[k].index));
      conformance.max_lateness = std::max(conformance.max_lateness, lateness);
      if (lateness > options_.lateness_tolerance) {
        ++anchored_late;
        if (!conformance.first_late_firing.has_value()) {
          conformance.first_late_firing = records[k].index;
        }
      }
    }
    grid_cursor_[c] = records.size();
    conformance.firings_observed =
        static_cast<std::int64_t>(records.size());

    // A starving periodic actor shows up through both lenses; count each
    // late activation once, preferring the engine's starvation record.
    conformance.late_firings += std::max(starved, anchored_late);

    VRDF_LOG(Trace) << "conformance: constraint '"
                    << graph_->actor(conformance.actor).name << "' period "
                    << tau.to_string() << ": " << conformance.firings_observed
                    << " firings, " << conformance.late_firings
                    << " late, max lateness "
                    << conformance.max_lateness.to_string();
  }
}

void ConformanceMonitor::refresh_summary() {
  std::ostringstream os;
  if (report_.blockage.blocked) {
    os << report_.blockage.message;
  } else {
    const ConstraintConformance* worst = nullptr;
    for (const ConstraintConformance& c : report_.constraints) {
      if (c.late_firings > 0 &&
          (worst == nullptr || c.late_firings > worst->late_firings)) {
        worst = &c;
      }
    }
    if (worst != nullptr) {
      os << "constraint on '" << graph_->actor(worst->actor).name
         << "' (period " << worst->period.to_string() << ") violated: "
         << worst->late_firings << " late activations, max lateness "
         << worst->max_lateness.to_string();
    } else {
      os << "all constraints conformant";
    }
  }
  if (!report_.rho_conformant) {
    // Name the worst offender: the actor with the most violations.
    std::unordered_map<std::uint32_t, std::int64_t> by_actor;
    const RhoViolation* worst = nullptr;
    std::int64_t worst_count = 0;
    for (const RhoViolation& v : report_.rho_violations) {
      const std::int64_t count = ++by_actor[v.actor.value()];
      if (count > worst_count) {
        worst_count = count;
        worst = &v;
      }
    }
    os << "; rho contract violated " << report_.rho_violation_total
       << " times";
    if (worst != nullptr) {
      os << ", worst offender '" << graph_->actor(worst->actor).name
         << "' (declared " << worst->declared.to_string()
         << ", observed up to ";
      Duration max_observed;
      for (const RhoViolation& v : report_.rho_violations) {
        if (v.actor == worst->actor) {
          max_observed = std::max(max_observed, v.observed);
        }
      }
      os << max_observed.to_string() << ")";
    }
  }
  report_.summary = os.str();
}

}  // namespace vrdf::sim
