#include "sim/quantum_source.hpp"

#include <random>

#include "util/error.hpp"

namespace vrdf::sim {

namespace {

class ConstantSource final : public QuantumSource {
public:
  explicit ConstantSource(std::int64_t value) : value_(value) {}
  std::int64_t next(std::int64_t) override { return value_; }
  std::unique_ptr<QuantumSource> clone() const override {
    return std::make_unique<ConstantSource>(value_);
  }
  std::string describe() const override {
    return "constant(" + std::to_string(value_) + ")";
  }

private:
  std::int64_t value_;
};

class CyclicSource final : public QuantumSource {
public:
  explicit CyclicSource(std::vector<std::int64_t> values)
      : values_(std::move(values)) {
    VRDF_REQUIRE(!values_.empty(), "cyclic source needs at least one value");
  }
  std::int64_t next(std::int64_t firing_index) override {
    const auto n = static_cast<std::int64_t>(values_.size());
    return values_[static_cast<std::size_t>(firing_index % n)];
  }
  std::unique_ptr<QuantumSource> clone() const override {
    return std::make_unique<CyclicSource>(values_);
  }
  std::string describe() const override {
    return "cyclic(" + std::to_string(values_.size()) + " values)";
  }

private:
  std::vector<std::int64_t> values_;
};

class ScriptedSource final : public QuantumSource {
public:
  ScriptedSource(std::vector<std::int64_t> prefix, std::int64_t tail)
      : prefix_(std::move(prefix)), tail_(tail) {}
  std::int64_t next(std::int64_t firing_index) override {
    const auto i = static_cast<std::size_t>(firing_index);
    return i < prefix_.size() ? prefix_[i] : tail_;
  }
  std::unique_ptr<QuantumSource> clone() const override {
    return std::make_unique<ScriptedSource>(prefix_, tail_);
  }
  std::string describe() const override {
    return "scripted(" + std::to_string(prefix_.size()) + " prefix, tail " +
           std::to_string(tail_) + ")";
  }

private:
  std::vector<std::int64_t> prefix_;
  std::int64_t tail_;
};

class UniformRandomSource final : public QuantumSource {
public:
  UniformRandomSource(dataflow::RateSet set, std::uint64_t seed)
      : set_(std::move(set)), seed_(seed), rng_(seed) {}
  std::int64_t next(std::int64_t) override {
    std::uniform_int_distribution<std::size_t> dist(0, set_.size() - 1);
    return set_.nth(dist(rng_));
  }
  std::unique_ptr<QuantumSource> clone() const override {
    return std::make_unique<UniformRandomSource>(set_, seed_);
  }
  std::string describe() const override {
    return "uniform_random(" + set_.to_string() + ", seed " +
           std::to_string(seed_) + ")";
  }

private:
  dataflow::RateSet set_;
  std::uint64_t seed_;
  std::mt19937_64 rng_;
};

class RandomWalkSource final : public QuantumSource {
public:
  RandomWalkSource(dataflow::RateSet set, std::uint64_t seed, std::size_t max_step)
      : set_(std::move(set)), seed_(seed), max_step_(max_step), rng_(seed) {
    VRDF_REQUIRE(max_step_ >= 1, "random walk needs a positive step");
    std::uniform_int_distribution<std::size_t> dist(0, set_.size() - 1);
    position_ = dist(rng_);
  }
  std::int64_t next(std::int64_t) override {
    const auto step_range = static_cast<std::int64_t>(max_step_);
    std::uniform_int_distribution<std::int64_t> dist(-step_range, step_range);
    const std::int64_t moved = static_cast<std::int64_t>(position_) + dist(rng_);
    const std::int64_t clamped = std::max<std::int64_t>(
        0, std::min<std::int64_t>(moved, static_cast<std::int64_t>(set_.size()) - 1));
    position_ = static_cast<std::size_t>(clamped);
    return set_.nth(position_);
  }
  std::unique_ptr<QuantumSource> clone() const override {
    return std::make_unique<RandomWalkSource>(set_, seed_, max_step_);
  }
  std::string describe() const override {
    return "random_walk(" + set_.to_string() + ", seed " +
           std::to_string(seed_) + ")";
  }

private:
  dataflow::RateSet set_;
  std::uint64_t seed_;
  std::size_t max_step_;
  std::mt19937_64 rng_;
  std::size_t position_ = 0;
};

}  // namespace

std::unique_ptr<QuantumSource> constant_source(std::int64_t value) {
  VRDF_REQUIRE(value >= 0, "quanta must be non-negative");
  return std::make_unique<ConstantSource>(value);
}

std::unique_ptr<QuantumSource> cyclic_source(std::vector<std::int64_t> values) {
  return std::make_unique<CyclicSource>(std::move(values));
}

std::unique_ptr<QuantumSource> scripted_source(std::vector<std::int64_t> prefix,
                                               std::int64_t tail_value) {
  return std::make_unique<ScriptedSource>(std::move(prefix), tail_value);
}

std::unique_ptr<QuantumSource> uniform_random_source(dataflow::RateSet set,
                                                     std::uint64_t seed) {
  return std::make_unique<UniformRandomSource>(std::move(set), seed);
}

std::unique_ptr<QuantumSource> always_min_source(const dataflow::RateSet& set) {
  return std::make_unique<ConstantSource>(set.min());
}

std::unique_ptr<QuantumSource> always_max_source(const dataflow::RateSet& set) {
  return std::make_unique<ConstantSource>(set.max());
}

std::unique_ptr<QuantumSource> random_walk_source(dataflow::RateSet set,
                                                  std::uint64_t seed,
                                                  std::size_t max_step) {
  return std::make_unique<RandomWalkSource>(std::move(set), seed, max_step);
}

std::unique_ptr<QuantumSource> min_max_alternating_source(
    const dataflow::RateSet& set) {
  return std::make_unique<CyclicSource>(
      std::vector<std::int64_t>{set.min(), set.max()});
}

}  // namespace vrdf::sim
