// Post-run statistics derived from recorded transfer events.
//
// FIFO buffers deliver tokens in production order, so the k-th token
// consumed from an edge is the k-th token produced onto it (counting the
// initial tokens as produced at t = 0).  Token residency — the time a
// token spends in the buffer — is therefore well defined per edge and is
// the buffer-level latency metric of a sized chain.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/simulator.hpp"

namespace vrdf::sim {

struct ResidencyStats {
  /// Number of consumed tokens the statistics cover.
  std::int64_t tokens = 0;
  Duration max_residency;
  Duration min_residency;
  /// Mean residency in seconds (exact).
  Rational mean_seconds;
};

/// Residency statistics for an edge; requires record_transfers(edge) to
/// have been enabled before the run.  Returns nullopt when no token was
/// consumed.
[[nodiscard]] std::optional<ResidencyStats> token_residency(
    const Simulator& sim, const dataflow::VrdfGraph& graph,
    dataflow::EdgeId edge);

/// Maximum number of tokens simultaneously in the buffer (data edge view):
/// initial + produced − consumed, maximized over the recorded event
/// sequence.  Requires record_transfers(edge).
[[nodiscard]] std::int64_t peak_occupancy(const Simulator& sim,
                                          const dataflow::VrdfGraph& graph,
                                          dataflow::EdgeId edge);

}  // namespace vrdf::sim
