// Shared simulator types: actor execution modes, stop conditions, metrics
// and run results.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dataflow/vrdf_graph.hpp"
#include "util/time.hpp"

namespace vrdf::sim {

/// Which internal time representation the simulator uses.  Both are exact
/// and produce identical results; the tick clock is the fast path (see
/// docs/performance.md).
enum class ClockMode {
  /// Tick clock when a scale exists, exact Rational otherwise (default).
  Auto,
  /// Require the tick clock; throws ContractError when no scale exists.
  ForceTickClock,
  /// Always use exact Rational time (reference path for equivalence tests).
  ForceExactRational,
};

/// How an actor decides when to fire.
struct ActorMode {
  enum class Kind {
    /// Fires as soon as enabled (maximal progress).  Sound reference
    /// behaviour by monotonicity (Def 1).
    SelfTimed,
    /// Fires at offset + k·period; if tokens are missing at an activation
    /// the simulator records a starvation and the firing happens as soon
    /// as it becomes enabled (late).  Activation k+1 stays at
    /// offset + (k+1)·period — the schedule does not drift.
    StrictlyPeriodic,
    /// Fires as soon as enabled but never starts two firings closer than
    /// `period` apart — the "minimal difference between subsequent starts"
    /// φ(v) of the analysis.
    RateLimited,
  };

  Kind kind = Kind::SelfTimed;
  TimePoint offset;  // StrictlyPeriodic only
  Duration period;   // StrictlyPeriodic / RateLimited

  [[nodiscard]] static ActorMode self_timed() { return ActorMode{}; }
  [[nodiscard]] static ActorMode strictly_periodic(TimePoint offset,
                                                   Duration period) {
    return ActorMode{Kind::StrictlyPeriodic, offset, period};
  }
  [[nodiscard]] static ActorMode rate_limited(Duration period) {
    return ActorMode{Kind::RateLimited, TimePoint(), period};
  }
};

/// A periodic activation that could not start on time.
struct Starvation {
  dataflow::ActorId actor;
  std::int64_t firing = 0;      // 0-based firing index
  TimePoint scheduled;          // offset + firing·period
  std::optional<TimePoint> actual_start;  // unset if never started
};

/// Why a run stopped.
enum class StopReason {
  ReachedTimeLimit,
  ReachedFiringTarget,
  /// No event pending and no actor can ever fire again.
  Deadlock,
  /// Event budget exhausted (safety valve against misconfiguration).
  EventBudgetExhausted,
};

struct StopCondition {
  /// Process events up to and including this time.
  std::optional<TimePoint> until_time;
  /// Stop once `actor` finished `count` firings.
  struct FiringTarget {
    dataflow::ActorId actor;
    std::int64_t count = 0;
  };
  std::optional<FiringTarget> firing_target;
  /// Hard cap on processed firings (all actors).
  std::int64_t max_firings = 10'000'000;
};

struct EdgeMetrics {
  std::int64_t tokens = 0;          // current
  std::int64_t max_tokens = 0;      // high-water mark
  std::int64_t min_tokens = 0;      // low-water mark
  std::int64_t produced_total = 0;  // tokens ever produced onto the edge
  std::int64_t consumed_total = 0;  // tokens ever consumed from the edge
};

struct ActorMetrics {
  std::int64_t firings_started = 0;
  std::int64_t firings_finished = 0;
  std::optional<TimePoint> first_start;
  std::optional<TimePoint> last_start;
  /// StrictlyPeriodic actors: number of activations that started late.
  std::int64_t starvation_count = 0;
  /// Max over recorded firings k of start_k − k·period (self-timed /
  /// rate-limited actors; the offset a periodic schedule would need).
  std::optional<Duration> max_lateness_vs_period;
};

/// One unsatisfied token demand of an idle actor at a deadlock: the
/// actor's next firing needs `needed` tokens on `edge` but only
/// `available` are present.  The set of these waits is the wait-for
/// relation the stall watchdog (sim/monitor.hpp) walks to name the
/// blocked cycle.
struct BlockedWait {
  /// The waiting actor (the edge's consumer).
  dataflow::ActorId actor;
  /// The edge whose tokens are missing.
  dataflow::EdgeId edge;
  /// The firing's pending consumption quantum on that edge.
  std::int64_t needed = 0;
  /// Tokens currently on the edge (< needed).
  std::int64_t available = 0;
  /// True when `edge` is the space half of a buffer: the actor waits for
  /// free containers (back-pressure), not for data.
  bool waiting_for_space = false;
};

struct RunResult {
  StopReason reason = StopReason::ReachedTimeLimit;
  TimePoint end_time;
  std::int64_t total_firings = 0;
  std::vector<Starvation> starvations;
  /// Populated on every deadlocked run: one entry per missing input of
  /// each permanently blocked actor (empty for other stop reasons).
  std::vector<BlockedWait> blocked;
  [[nodiscard]] bool deadlocked() const { return reason == StopReason::Deadlock; }
};

}  // namespace vrdf::sim
