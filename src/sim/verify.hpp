// Simulation-based verification that computed buffer capacities satisfy
// the throughput constraint — the library's equivalent of the paper's
// "with our dataflow simulator we have verified that these buffer
// capacities are indeed sufficient" (Sec 5).
//
// Two-phase check:
//  1. Self-timed run.  By monotonicity (Def 1) self-timed execution is the
//     earliest possible schedule; from the constrained actor's start times
//     we take the smallest offset o with start_k <= o + k·τ for all k.
//  2. Enforced run.  The constrained actor is re-run strictly periodically
//     at offset o with *identical* quantum sequences (sources are
//     re-created by the configurer).  The capacities pass when not a
//     single activation starves.  This phase is the actual theorem check:
//     the periodic sink delays its token returns relative to phase 1, and
//     the capacities must absorb that back-pressure (the linearity
//     argument of Sec 4.2, "Consumer Schedule").
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "analysis/types.hpp"
#include "dataflow/vrdf_graph.hpp"
#include "sim/monitor.hpp"
#include "sim/simulator.hpp"

namespace vrdf::sim {

/// Installs quantum sources (and anything else) on a fresh simulator.  The
/// callback is invoked once per phase and must install deterministic
/// sources so both phases see identical data-dependent behaviour.
using SimulatorConfigurer = std::function<void(Simulator&)>;

struct VerifyOptions {
  /// Firings of the constrained actor simulated per phase.
  std::int64_t observe_firings = 1000;
  /// Seed for set_default_sources (ports the configurer leaves open).
  std::uint64_t default_seed = 1;
  /// Attach a ConformanceMonitor to phase 2 and return its report in
  /// VerifyResult::monitor (ρ-contract violations, per-constraint
  /// lateness, blockage diagnosis).  Off by default: monitoring records
  /// every actor's firings, which costs memory on long runs.
  bool monitor = false;
};

struct VerifyResult {
  bool ok = false;
  std::string detail;
  /// Offset of the periodic schedule used in phase 2.
  TimePoint offset_used;
  /// Starvations seen in phase 2 (0 when ok).
  std::int64_t starvation_count = 0;
  /// Phase-1 maximum lateness of the constrained actor versus the periodic
  /// reference anchored at its first start.
  Duration max_lateness_phase1;
  /// Total firings simulated across both phases (including phase-2 offset
  /// retries) — the work metric aggregated by fleet sweeps.
  std::int64_t firings_simulated = 0;
  /// Phase-2 conformance report when VerifyOptions::monitor is set.
  std::optional<MonitorReport> monitor;
};

/// Runs the two-phase check.  `graph` must already carry the capacities
/// under test (e.g. via analysis::apply_capacities).
[[nodiscard]] VerifyResult verify_throughput(
    const dataflow::VrdfGraph& graph,
    const analysis::ThroughputConstraint& constraint,
    const SimulatorConfigurer& configure = {}, const VerifyOptions& options = {});

/// Constraint-set overload: phase 1 measures one periodic offset per
/// constrained actor from the same self-timed run — the grids then keep
/// phase 1's causally consistent relative alignment (a pinned sink
/// naturally lags a pinned source by the realized pipeline latency), and
/// every enforced activation is no earlier than its self-timed start
/// (sound by monotonicity).  Phase 2 enforces *every* constrained actor
/// strictly periodically at once and passes only when not a single
/// activation of any of them starves.  The stop target counts firings of
/// the first constraint's actor; VerifyResult reports that actor's offset
/// and the worst phase-1 lateness across the set.
[[nodiscard]] VerifyResult verify_throughput(
    const dataflow::VrdfGraph& graph,
    const analysis::ConstraintSet& constraints,
    const SimulatorConfigurer& configure = {}, const VerifyOptions& options = {});

/// Long-run average throughput (finished firings per second) of an actor
/// under self-timed execution; 0 when the graph deadlocks before
/// `observe_firings` completes.
[[nodiscard]] Rational measure_self_timed_throughput(
    const dataflow::VrdfGraph& graph, dataflow::ActorId actor,
    std::int64_t observe_firings, const SimulatorConfigurer& configure = {},
    std::uint64_t default_seed = 1);

}  // namespace vrdf::sim
