// Internal simulation engine, templated over the time representation.
//
// The engine logic (enabling, firing, event heap, metrics, records) is
// written once against a Clock policy:
//
//  * TickClock     — time is an int64 number of ticks at a TimeScale whose
//                    resolution is the LCM of every denominator the run can
//                    produce.  The hot path (heap ordering, now + rho,
//                    periodic schedules) is plain integer arithmetic.
//  * RationalClock — time is an exact Rational of seconds; the fallback
//                    when no int64 tick scale exists.
//
// Both representations are exact, so a run produces bit-for-bit identical
// firing records, metrics and end times under either clock (the
// tick/Rational equivalence test in tests/test_tick_clock.cpp asserts
// this).  Rational values only appear at recording and reporting
// boundaries (records, starvations, snapshots, metrics accessors).
//
// Enabling is incremental: instead of re-scanning all actors to a fixed
// point after every event (O(actors^2) per event on chains), a dirty-actor
// worklist is seeded by the consumers of edges whose token counts grew, by
// finishing actors, and by woken actors.  Starting a firing consumes
// tokens but produces none (production happens at the firing's finish), so
// a start can never enable another actor at the same instant and one pass
// over the worklist reaches the same fixed point the full scan did.
//
// This header is an implementation detail of simulator.cpp.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "util/checked_int.hpp"
#include "util/error.hpp"
#include "util/time_scale.hpp"

namespace vrdf::sim::detail {

struct RationalClock {
  using Time = Rational;
  static constexpr bool kIsTick = false;

  [[nodiscard]] Rational to_rational(const Time& t) const { return t; }
  [[nodiscard]] Time from_rational(const Rational& r) const { return r; }
  [[nodiscard]] static Time add(const Time& a, const Time& b) { return a + b; }
  [[nodiscard]] static Time sub(const Time& a, const Time& b) { return a - b; }
  [[nodiscard]] static Time mul_int(const Time& a, std::int64_t k) {
    return a * Rational(k);
  }
};

struct TickClock {
  using Time = std::int64_t;
  static constexpr bool kIsTick = true;

  TimeScale scale;

  [[nodiscard]] Rational to_rational(Time t) const { return scale.to_rational(t); }
  [[nodiscard]] Time from_rational(const Rational& r) const {
    return scale.to_ticks(r);
  }
  [[nodiscard]] static Time add(Time a, Time b) { return checked_add(a, b); }
  [[nodiscard]] static Time sub(Time a, Time b) { return checked_sub(a, b); }
  [[nodiscard]] static Time mul_int(Time a, std::int64_t k) {
    return checked_mul(a, k);
  }
};

/// A live port: the staged PortConfig with its installed quantum stream.
/// Shared across clock instantiations so an engine conversion can move
/// ports (and their stream positions) wholesale.
struct Port {
  dataflow::EdgeId in_edge;   // consumed from at start (may be invalid)
  dataflow::EdgeId out_edge;  // produced onto at finish (may be invalid)
  std::unique_ptr<QuantumSource> source;
  /// The rate set governing this port: production set of the out edge
  /// (equals the consumption set of the in edge for buffer ports).  Cached
  /// so the per-firing quantum validation skips the graph lookup.
  const dataflow::RateSet* rate_set = nullptr;
  /// Set when fill_default_sources installed a constant source for a
  /// singleton rate set: the draw can skip the virtual stream call (a
  /// constant source is stateless and its value is in-set by construction).
  bool constant = false;
  /// Set for any default-installed source: it samples the governing rate
  /// set directly, so its values are in-set by construction and the
  /// per-draw validation can be skipped.
  bool trusted = false;
  std::int64_t constant_quantum = 0;
};

enum class EventKind : std::uint8_t { FiringFinish, Wakeup };

/// The response-time jitter grid of set_response_time_jitter expressed as
/// base + step * s for s in [0, 1024]:  base = rho * min_fraction and
/// step = rho * (1 - min_fraction) / 1024, so that every grid point is a
/// linear combination with integer coefficients (which a tick scale can
/// represent exactly).
struct JitterGrid {
  Rational base;
  Rational step;
};

[[nodiscard]] inline JitterGrid jitter_grid(const Rational& rho_seconds,
                                            const Rational& min_fraction) {
  return JitterGrid{rho_seconds * min_fraction,
                    rho_seconds * (Rational(1) - min_fraction) / Rational(1024)};
}

template <class Clock>
class Engine {
public:
  using Time = typename Clock::Time;

  template <class>
  friend class Engine;

  Engine(const dataflow::VrdfGraph& graph, SimConfig&& config, Clock clock)
      : graph_(&graph), clock_(std::move(clock)) {
    const std::size_t n_actors = graph.actor_count();
    const std::size_t n_edges = graph.edge_count();
    actors_.resize(n_actors);
    edges_.resize(n_edges);
    edge_target_.resize(n_edges);
    actor_metrics_.resize(n_actors);
    actor_times_.resize(n_actors);
    firing_records_.resize(n_actors);
    production_records_.resize(n_edges);
    consumption_records_.resize(n_edges);
    transfer_recording_ = std::move(config.transfer_recording);
    transfer_caps_ = std::move(config.transfer_caps);
    worklist_.reserve(n_actors);
    heap_.reserve(2 * n_actors + 64);

    for (const dataflow::EdgeId e : graph.edges()) {
      edges_[e.index()].tokens = graph.edge(e).initial_tokens;
      edges_[e.index()].max_tokens = edges_[e.index()].tokens;
      edges_[e.index()].min_tokens = edges_[e.index()].tokens;
      edge_target_[e.index()] = graph.edge(e).target;
    }

    for (std::size_t i = 0; i < n_actors; ++i) {
      ActorConfig& cfg = config.actors[i];
      ActorState& state = actors_[i];
      state.ports.reserve(cfg.ports.size());
      for (PortConfig& p : cfg.ports) {
        const dataflow::RateSet* set =
            p.out_edge.is_valid() ? &graph.edge(p.out_edge).production
                                  : &graph.edge(p.in_edge).consumption;
        state.ports.push_back(Port{p.in_edge, p.out_edge, std::move(p.source),
                                   set, p.constant, p.trusted,
                                   p.constant ? set->max() : 0});
      }
      state.pending_quanta.resize(state.ports.size());
      state.active_quanta.resize(state.ports.size());
      const dataflow::ActorId id(
          static_cast<dataflow::ActorId::underlying_type>(i));
      state.rho = clock_.from_rational(graph.actor(id).response_time.seconds());
      apply_mode(state, cfg.mode);
      if (cfg.jitter_enabled) {
        apply_jitter(state, id, cfg.jitter_min_fraction, cfg.jitter_seed_state);
      }
      for (const auto& [index, delay] : cfg.release_delays) {
        state.release_delays.emplace(index, clock_.from_rational(delay));
      }
      state.has_release_delays = !state.release_delays.empty();
      for (const ResponseTimeFault& fault : cfg.faults) {
        add_response_time_fault(id, fault);
      }
      state.record = cfg.record;
      state.record_cap = cfg.record_cap;
    }
  }

  /// Exact conversion from an engine running under another clock; used to
  /// fall back from ticks to rationals mid-life.  Sources are moved, so
  /// `other` must be discarded afterwards.
  template <class FromClock>
  Engine(Engine<FromClock>&& other, Clock clock)
      : graph_(other.graph_), clock_(std::move(clock)) {
    const auto cv = [&](const typename FromClock::Time& t) {
      return clock_.from_rational(other.clock_.to_rational(t));
    };
    const auto cv_opt = [&](const std::optional<typename FromClock::Time>& t) {
      return t.has_value() ? std::optional<Time>(cv(*t)) : std::nullopt;
    };

    now_ = cv(other.now_);
    next_seq_ = other.next_seq_;
    total_firings_ = other.total_firings_;
    heap_.reserve(other.heap_.capacity());
    for (const auto& e : other.heap_) {
      heap_.push_back(Event{cv(e.time), e.seq, e.kind, e.actor});
    }
    // The heap property is preserved: cv is strictly monotone.
    edges_ = other.edges_;
    edge_target_ = other.edge_target_;
    actor_metrics_ = other.actor_metrics_;
    firing_records_ = std::move(other.firing_records_);
    production_records_ = std::move(other.production_records_);
    consumption_records_ = std::move(other.consumption_records_);
    transfer_recording_ = std::move(other.transfer_recording_);
    transfer_caps_ = std::move(other.transfer_caps_);
    starvations_ = std::move(other.starvations_);

    actor_times_.resize(other.actor_times_.size());
    for (std::size_t i = 0; i < other.actor_times_.size(); ++i) {
      actor_times_[i].first_start = cv_opt(other.actor_times_[i].first_start);
      actor_times_[i].last_start = cv_opt(other.actor_times_[i].last_start);
      actor_times_[i].max_lateness = cv_opt(other.actor_times_[i].max_lateness);
    }

    actors_.resize(other.actors_.size());
    worklist_.reserve(actors_.size());
    for (std::size_t i = 0; i < other.actors_.size(); ++i) {
      auto& src = other.actors_[i];
      ActorState& dst = actors_[i];
      dst.ports = std::move(src.ports);
      dst.mode_kind = src.mode_kind;
      dst.mode_offset = cv(src.mode_offset);
      dst.mode_period = cv(src.mode_period);
      dst.rho = cv(src.rho);
      dst.jitter_enabled = src.jitter_enabled;
      if (src.jitter_enabled) {
        dst.jitter_base = cv(src.jitter_base);
        dst.jitter_step = cv(src.jitter_step);
      }
      dst.jitter_state = src.jitter_state;
      dst.jitter_min_fraction = src.jitter_min_fraction;
      for (const auto& [index, delay] : src.release_delays) {
        dst.release_delays.emplace(index, cv(delay));
      }
      dst.has_release_delays = src.has_release_delays;
      dst.has_faults = src.has_faults;
      dst.faults.reserve(src.faults.size());
      for (const auto& f : src.faults) {
        dst.faults.push_back(FaultEntry{cv(f.base), cv(f.step), f.rng_seed,
                                        f.from, f.until, f.burst_length,
                                        f.burst_period});
      }
      dst.record = src.record;
      dst.record_cap = src.record_cap;
      dst.busy = src.busy;
      dst.quanta_drawn = src.quanta_drawn;
      dst.started = src.started;
      dst.finished = src.finished;
      dst.pending_quanta = std::move(src.pending_quanta);
      dst.active_quanta = std::move(src.active_quanta);
      dst.active_start = cv(src.active_start);
      dst.active_finish = cv(src.active_finish);
      dst.last_start = cv_opt(src.last_start);
      dst.release_not_before = cv_opt(src.release_not_before);
      dst.scheduled_wakeup = cv_opt(src.scheduled_wakeup);
      dst.open_starvation = src.open_starvation;
    }
  }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  Engine(Engine&&) = default;

  [[nodiscard]] const Clock& clock() const { return clock_; }

  // ------------------------------------------------------------- config
  void set_actor_mode(dataflow::ActorId actor, const ActorMode& mode) {
    ActorState& state = actors_[actor.index()];
    apply_mode(state, mode);
    if (mode.kind == ActorMode::Kind::RateLimited) {
      // The gate measures against the previous start even when the mode is
      // switched on mid-life; start_firing only maintains last_start while
      // rate-limited, so seed it from the metrics copy.
      state.last_start = actor_times_[actor.index()].last_start;
    }
  }

  void set_quantum_source(dataflow::ActorId actor, dataflow::EdgeId edge,
                          std::unique_ptr<QuantumSource> source) {
    // An invalid id must not match a bare port's unused EdgeId::invalid()
    // half below.
    VRDF_REQUIRE(edge.is_valid() && edge.index() < edges_.size(),
                 "edge id out of range");
    for (Port& port : actors_[actor.index()].ports) {
      if (port.in_edge == edge || port.out_edge == edge) {
        port.source = std::move(source);
        port.constant = false;
        port.trusted = false;
        return;
      }
    }
    const dataflow::Edge& named = graph_->edge(edge);
    std::ostringstream os;
    os << "actor '" << graph_->actor(actor).name << "' has no port on edge "
       << graph_->actor(named.source).name << " -> "
       << graph_->actor(named.target).name;
    throw ContractError(os.str());
  }

  void fill_default_sources(std::uint64_t seed) {
    std::uint64_t salt = 0;
    for (ActorState& state : actors_) {
      for (Port& port : state.ports) {
        ++salt;
        if (port.source != nullptr) {
          continue;
        }
        const dataflow::RateSet& set = *port.rate_set;
        if (set.is_singleton()) {
          port.source = constant_source(set.max());
          port.constant = true;
          port.constant_quantum = set.max();
        } else {
          port.source =
              uniform_random_source(set, seed * 0x9E3779B97F4A7C15ULL + salt);
        }
        port.trusted = true;
      }
    }
  }

  void inject_release_delay(dataflow::ActorId actor, std::int64_t firing_index,
                            const Rational& delay_seconds) {
    ActorState& state = actors_[actor.index()];
    state.release_delays[firing_index] = clock_.from_rational(delay_seconds);
    state.has_release_delays = true;
  }

  void set_response_time_jitter(dataflow::ActorId actor,
                                const Rational& min_fraction,
                                std::uint64_t seed_state) {
    apply_jitter(actors_[actor.index()], actor, min_fraction, seed_state);
  }

  void add_response_time_fault(dataflow::ActorId actor,
                               const ResponseTimeFault& fault) {
    ActorState& state = actors_[actor.index()];
    state.faults.push_back(FaultEntry{clock_.from_rational(fault.base.seconds()),
                                      clock_.from_rational(fault.step.seconds()),
                                      fault.rng_seed, fault.from, fault.until,
                                      fault.burst_length, fault.burst_period});
    state.has_faults = true;
  }

  void record_firings(dataflow::ActorId actor, std::size_t max_records) {
    actors_[actor.index()].record = true;
    actors_[actor.index()].record_cap = max_records;
  }

  void record_transfers(dataflow::EdgeId edge, std::size_t max_records) {
    transfer_recording_[edge.index()] = 1;
    transfer_caps_[edge.index()] = max_records;
  }

  // --------------------------------------------------------------- run
  RunResult run(const StopCondition& stop) {
    std::optional<Time> until;
    if (stop.until_time.has_value()) {
      until = clock_.from_rational(stop.until_time->seconds());
    }
    // Config may have changed since the last run; rescan everything once.
    for (std::size_t i = 0; i < actors_.size(); ++i) {
      mark_dirty(dataflow::ActorId(
          static_cast<dataflow::ActorId::underlying_type>(i)));
    }

    RunResult result;
    const ActorState* target_state = nullptr;
    std::int64_t target_count = 0;
    if (stop.firing_target.has_value()) {
      target_state = &actors_[stop.firing_target->actor.index()];
      target_count = stop.firing_target->count;
    }
    const auto target_reached = [&]() {
      return target_state != nullptr && target_state->finished >= target_count;
    };

    while (true) {
      // Check the firing target before the enabling pass so that the run
      // stops at the moment the target actor's firing *finishes*, without
      // starting fresh firings at the same instant.
      if (target_reached()) {
        result.reason = StopReason::ReachedFiringTarget;
        break;
      }
      process_dirty();
      if (total_firings_ >= stop.max_firings) {
        result.reason = StopReason::EventBudgetExhausted;
        break;
      }
      if (heap_.empty()) {
        result.reason = StopReason::Deadlock;
        collect_blocked_waits(result.blocked);
        break;
      }
      const Time next_time = heap_.front().time;
      if (until.has_value() && *until < next_time) {
        now_ = *until;
        result.reason = StopReason::ReachedTimeLimit;
        break;
      }
      now_ = next_time;
      // Drain all events at this instant before the enabling pass so that
      // simultaneous productions are all visible to it (a token produced
      // at t is consumable at t).
      while (!heap_.empty() && heap_.front().time == now_) {
        std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
        const Event event = heap_.back();
        heap_.pop_back();
        ActorState& state = actors_[event.actor.index()];
        if (event.kind == EventKind::FiringFinish) {
          finish_firing(event.actor, state);
        } else {
          if (state.scheduled_wakeup.has_value() &&
              *state.scheduled_wakeup == now_) {
            state.scheduled_wakeup.reset();
          }
          mark_dirty(event.actor);
        }
      }
    }

    result.end_time = to_time_point(now_);
    result.total_firings = total_firings_;
    result.starvations = starvations_;
    return result;
  }

  // --------------------------------------------------------- observers
  [[nodiscard]] TimePoint now() const { return to_time_point(now_); }

  [[nodiscard]] Simulator::StateSnapshot snapshot() const {
    Simulator::StateSnapshot snap;
    snap.tokens.reserve(edges_.size());
    for (const EdgeMetrics& m : edges_) {
      snap.tokens.push_back(m.tokens);
    }
    snap.remaining.reserve(actors_.size());
    for (const ActorState& state : actors_) {
      if (state.busy) {
        snap.remaining.push_back(
            clock_.to_rational(Clock::sub(state.active_finish, now_)));
      } else {
        snap.remaining.push_back(std::nullopt);
      }
    }
    return snap;
  }

  [[nodiscard]] const EdgeMetrics& edge_metrics(dataflow::EdgeId edge) const {
    return edges_[edge.index()];
  }

  [[nodiscard]] const ActorMetrics& actor_metrics(dataflow::ActorId actor) const {
    // Time-valued fields are materialized on access; integer counters are
    // maintained in place.
    ActorMetrics& m = actor_metrics_[actor.index()];
    const ActorTimes& t = actor_times_[actor.index()];
    m.first_start = to_opt_time_point(t.first_start);
    m.last_start = to_opt_time_point(t.last_start);
    m.max_lateness_vs_period =
        t.max_lateness.has_value()
            ? std::optional<Duration>(Duration(clock_.to_rational(*t.max_lateness)))
            : std::nullopt;
    return m;
  }

  [[nodiscard]] const std::vector<FiringRecord>& firings(
      dataflow::ActorId actor) const {
    return firing_records_[actor.index()];
  }

  [[nodiscard]] const std::vector<EdgeTransfer>& production_events(
      dataflow::EdgeId edge) const {
    return production_records_[edge.index()];
  }

  [[nodiscard]] const std::vector<EdgeTransfer>& consumption_events(
      dataflow::EdgeId edge) const {
    return consumption_records_[edge.index()];
  }

private:
  /// Clock-typed form of one ResponseTimeFault (see simulator.hpp for the
  /// field semantics).
  struct FaultEntry {
    Time base{};
    Time step{};
    std::uint64_t rng_seed = 0;
    std::int64_t from = 0;
    std::int64_t until = 0;
    std::int64_t burst_length = 0;
    std::int64_t burst_period = 0;
  };

  struct ActorState {
    // Static (per configuration).
    std::vector<Port> ports;
    ActorMode::Kind mode_kind = ActorMode::Kind::SelfTimed;
    Time mode_offset{};
    Time mode_period{};
    Time rho{};
    bool jitter_enabled = false;
    Time jitter_base{};
    Time jitter_step{};
    std::uint64_t jitter_state = 0;
    Rational jitter_min_fraction;  // kept for exact clock conversion
    bool has_faults = false;
    std::vector<FaultEntry> faults;
    bool has_release_delays = false;
    std::unordered_map<std::int64_t, Time> release_delays;
    bool record = false;
    std::size_t record_cap = 0;
    // Runtime.
    bool busy = false;
    bool quanta_drawn = false;
    bool dirty = false;
    std::int64_t started = 0;
    std::int64_t finished = 0;
    std::vector<std::int64_t> pending_quanta;
    std::vector<std::int64_t> active_quanta;
    Time active_start{};
    Time active_finish{};
    std::optional<Time> last_start;
    std::optional<Time> release_not_before;
    std::optional<Time> scheduled_wakeup;
    std::optional<std::size_t> open_starvation;
  };

  struct ActorTimes {
    std::optional<Time> first_start;
    std::optional<Time> last_start;
    std::optional<Time> max_lateness;
  };

  struct Event {
    Time time;
    std::uint64_t seq;
    EventKind kind;
    dataflow::ActorId actor;
  };

  /// std::push_heap builds a max-heap; "after" ordering yields a min-heap
  /// on (time, seq).
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return b.time < a.time;
      }
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] TimePoint to_time_point(const Time& t) const {
    return TimePoint(clock_.to_rational(t));
  }

  [[nodiscard]] std::optional<TimePoint> to_opt_time_point(
      const std::optional<Time>& t) const {
    return t.has_value() ? std::optional<TimePoint>(to_time_point(*t))
                         : std::nullopt;
  }

  void apply_mode(ActorState& state, const ActorMode& mode) {
    state.mode_kind = mode.kind;
    if (mode.kind != ActorMode::Kind::SelfTimed) {
      state.mode_offset = clock_.from_rational(mode.offset.seconds());
      state.mode_period = clock_.from_rational(mode.period.seconds());
    } else {
      state.mode_offset = Time{};
      state.mode_period = Time{};
    }
  }

  void apply_jitter(ActorState& state, dataflow::ActorId actor,
                    const Rational& min_fraction, std::uint64_t seed_state) {
    const JitterGrid grid =
        jitter_grid(graph_->actor(actor).response_time.seconds(), min_fraction);
    state.jitter_enabled = true;
    state.jitter_state = seed_state;
    state.jitter_min_fraction = min_fraction;
    state.jitter_base = clock_.from_rational(grid.base);
    state.jitter_step = clock_.from_rational(grid.step);
  }

  void push_event(const Time& time, EventKind kind,
                  dataflow::ActorId actor) {
    heap_.push_back(Event{time, next_seq_++, kind, actor});
    std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
  }

  void mark_dirty(dataflow::ActorId actor) {
    ActorState& state = actors_[actor.index()];
    if (!state.dirty && !state.busy) {
      state.dirty = true;
      worklist_.push_back(actor);
    }
  }

  void process_dirty() {
    while (!worklist_.empty()) {
      const dataflow::ActorId actor = worklist_.back();
      worklist_.pop_back();
      ActorState& state = actors_[actor.index()];
      state.dirty = false;
      try_start(actor, state);
    }
  }

  void draw_quanta(dataflow::ActorId actor, ActorState& state) {
    if (state.quanta_drawn) {
      return;
    }
    for (std::size_t i = 0; i < state.ports.size(); ++i) {
      Port& port = state.ports[i];
      if (port.source == nullptr) {
        std::ostringstream os;
        os << "actor '" << graph_->actor(actor).name << "' port " << i
           << " has no quantum source; call set_quantum_source or "
              "set_default_sources";
        throw ContractError(os.str());
      }
      if (port.constant) {
        state.pending_quanta[i] = port.constant_quantum;
        continue;
      }
      const std::int64_t q = port.source->next(state.started);
      if (!port.trusted && !port.rate_set->contains(q)) {
        std::ostringstream os;
        os << "quantum source " << port.source->describe() << " of actor '"
           << graph_->actor(actor).name << "' produced " << q
           << " which is outside the rate set " << port.rate_set->to_string();
        throw ModelError(os.str());
      }
      state.pending_quanta[i] = q;
    }
    state.quanta_drawn = true;
  }

  [[nodiscard]] bool tokens_available(const ActorState& state) const {
    for (std::size_t i = 0; i < state.ports.size(); ++i) {
      const Port& port = state.ports[i];
      if (port.in_edge.is_valid() &&
          edges_[port.in_edge.index()].tokens < state.pending_quanta[i]) {
        return false;
      }
    }
    return true;
  }

  void schedule_wakeup(dataflow::ActorId actor, ActorState& state,
                       const Time& at) {
    if (!state.scheduled_wakeup.has_value() || *state.scheduled_wakeup != at) {
      state.scheduled_wakeup = at;
      push_event(at, EventKind::Wakeup, actor);
    }
  }

  void try_start(dataflow::ActorId actor, ActorState& state) {
    if (state.busy) {
      return;
    }
    draw_quanta(actor, state);
    const bool have_tokens = tokens_available(state);

    // Mode gating.
    if (state.mode_kind == ActorMode::Kind::StrictlyPeriodic) {
      const Time scheduled = Clock::add(
          state.mode_offset, Clock::mul_int(state.mode_period, state.started));
      if (now_ < scheduled) {
        // Guarantee a wakeup at the activation so a miss is noticed.
        schedule_wakeup(actor, state, scheduled);
        return;
      }
      if (!have_tokens) {
        if (!state.open_starvation.has_value()) {
          open_starvation(actor, state, scheduled);
        }
        return;
      }
      if (scheduled < now_ && !state.open_starvation.has_value()) {
        // Enabled only now although the activation was earlier (e.g. the
        // previous firing finished late); count it as a late start too.
        open_starvation(actor, state, scheduled);
      }
    } else {
      if (!have_tokens) {
        return;
      }
      if (state.mode_kind == ActorMode::Kind::RateLimited &&
          state.last_start.has_value()) {
        const Time earliest = Clock::add(*state.last_start, state.mode_period);
        if (now_ < earliest) {
          schedule_wakeup(actor, state, earliest);
          return;
        }
      }
    }

    // Injected release delays (property checks).
    if (state.has_release_delays) {
      const auto delay_it = state.release_delays.find(state.started);
      if (delay_it != state.release_delays.end() && Time{} < delay_it->second) {
        if (!state.release_not_before.has_value()) {
          state.release_not_before = Clock::add(now_, delay_it->second);
          push_event(*state.release_not_before, EventKind::Wakeup, actor);
          return;
        }
        if (now_ < *state.release_not_before) {
          return;
        }
      }
    }

    start_firing(actor, state);
  }

  void open_starvation(dataflow::ActorId actor, ActorState& state,
                       const Time& scheduled) {
    state.open_starvation = starvations_.size();
    starvations_.push_back(Starvation{actor, state.started,
                                      to_time_point(scheduled), std::nullopt});
    ++actor_metrics_[actor.index()].starvation_count;
  }

  void start_firing(dataflow::ActorId actor, ActorState& state) {
    ActorMetrics& metrics = actor_metrics_[actor.index()];
    ActorTimes& times = actor_times_[actor.index()];

    for (std::size_t i = 0; i < state.ports.size(); ++i) {
      const Port& port = state.ports[i];
      if (port.in_edge.is_valid() && state.pending_quanta[i] > 0) {
        remove_tokens(port.in_edge, state.pending_quanta[i]);
      }
    }
    // The previous firing's quanta are dead; reuse its buffer for the next
    // draw instead of copying.
    std::swap(state.active_quanta, state.pending_quanta);
    state.active_start = now_;
    state.quanta_drawn = false;
    if (state.has_release_delays) {
      state.release_not_before.reset();
    }
    state.busy = true;

    if (state.mode_kind == ActorMode::Kind::StrictlyPeriodic &&
        state.open_starvation.has_value()) {
      starvations_[*state.open_starvation].actual_start = to_time_point(now_);
      state.open_starvation.reset();
    }

    ++state.started;
    ++total_firings_;
    if (!times.first_start.has_value()) {
      times.first_start = now_;
    }
    times.last_start = now_;
    ++metrics.firings_started;
    if (state.mode_kind == ActorMode::Kind::RateLimited) {
      // Only the rate-limit gate reads ActorState::last_start; metrics use
      // the ActorTimes copy above.
      state.last_start = now_;
      // Lateness of firing k versus a periodic schedule anchored at the
      // first start: start_k − (first + k·period).
      const Time lateness = Clock::sub(
          now_, Clock::add(*times.first_start,
                           Clock::mul_int(state.mode_period, state.started - 1)));
      if (!times.max_lateness.has_value() || *times.max_lateness < lateness) {
        times.max_lateness = lateness;
      }
    }

    Time rho = state.rho;
    if (state.jitter_enabled) {
      // splitmix64 step; map to a 1024-step grid over [min_fraction, 1]·ρ.
      std::uint64_t z = (state.jitter_state += 0x9E3779B97F4A7C15ULL);
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      z ^= z >> 31;
      const std::int64_t step = static_cast<std::int64_t>(z % 1025);
      rho = Clock::add(state.jitter_base, Clock::mul_int(state.jitter_step, step));
    }
    if (state.has_faults) {
      rho = Clock::add(rho, fault_extra(state));
    }
    state.active_finish = Clock::add(now_, rho);
    push_event(state.active_finish, EventKind::FiringFinish, actor);
  }

  /// Injected extra duration for the firing just counted by start_firing
  /// (index started − 1): the sum over the actor's fault entries whose
  /// window and burst pattern cover it.  The random part is a *stateless*
  /// hash of (rng_seed, firing index), so replay is exact regardless of
  /// how the run is segmented across run() calls or clock conversions.
  [[nodiscard]] Time fault_extra(const ActorState& state) const {
    Time extra{};
    const std::int64_t k = state.started - 1;
    for (const FaultEntry& f : state.faults) {
      if (k < f.from || k >= f.until) {
        continue;
      }
      if (f.burst_period > 0 && (k - f.from) % f.burst_period >= f.burst_length) {
        continue;
      }
      extra = Clock::add(extra, f.base);
      if (!(f.step == Time{})) {
        std::uint64_t z =
            f.rng_seed + static_cast<std::uint64_t>(k) * 0x9E3779B97F4A7C15ULL;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        z ^= z >> 31;
        extra = Clock::add(
            extra, Clock::mul_int(f.step, static_cast<std::int64_t>(z % 1025)));
      }
    }
    return extra;
  }

  /// At a deadlock (empty heap) no actor is busy and every actor has had
  /// its quanta drawn by the final enabling pass, so each idle actor's
  /// unsatisfied input edges are exactly known: record one BlockedWait per
  /// missing input.  Reporting only — no draws, no mutation.
  void collect_blocked_waits(std::vector<BlockedWait>& out) const {
    for (std::size_t i = 0; i < actors_.size(); ++i) {
      const ActorState& state = actors_[i];
      if (state.busy || !state.quanta_drawn) {
        continue;
      }
      const dataflow::ActorId id(
          static_cast<dataflow::ActorId::underlying_type>(i));
      for (std::size_t p = 0; p < state.ports.size(); ++p) {
        const Port& port = state.ports[p];
        if (!port.in_edge.is_valid()) {
          continue;
        }
        const std::int64_t needed = state.pending_quanta[p];
        const std::int64_t available = edges_[port.in_edge.index()].tokens;
        if (available >= needed) {
          continue;
        }
        const dataflow::Edge& edge = graph_->edge(port.in_edge);
        // Buffers add the data edge first, so the space half has the
        // larger id of the pair.
        const bool space = edge.paired.is_valid() &&
                           edge.paired.value() < port.in_edge.value();
        out.push_back(BlockedWait{id, port.in_edge, needed, available, space});
      }
    }
  }

  void finish_firing(dataflow::ActorId actor, ActorState& state) {
    for (std::size_t i = 0; i < state.ports.size(); ++i) {
      const Port& port = state.ports[i];
      if (port.out_edge.is_valid() && state.active_quanta[i] > 0) {
        add_tokens(port.out_edge, state.active_quanta[i]);
      }
    }
    state.busy = false;
    ++state.finished;
    ++actor_metrics_[actor.index()].firings_finished;
    if (state.record &&
        firing_records_[actor.index()].size() < state.record_cap) {
      firing_records_[actor.index()].push_back(
          FiringRecord{actor, state.finished - 1,
                       to_time_point(state.active_start), to_time_point(now_)});
    }
    mark_dirty(actor);
  }

  void add_tokens(dataflow::EdgeId edge, std::int64_t count) {
    EdgeMetrics& m = edges_[edge.index()];
    m.tokens = checked_add(m.tokens, count);
    m.produced_total = checked_add(m.produced_total, count);
    m.max_tokens = std::max(m.max_tokens, m.tokens);
    if (transfer_recording_[edge.index()] != 0 &&
        production_records_[edge.index()].size() < transfer_caps_[edge.index()]) {
      production_records_[edge.index()].push_back(
          EdgeTransfer{m.produced_total, count, to_time_point(now_)});
    }
    mark_dirty(edge_target_[edge.index()]);
  }

  void remove_tokens(dataflow::EdgeId edge, std::int64_t count) {
    EdgeMetrics& m = edges_[edge.index()];
    m.tokens = checked_sub(m.tokens, count);
    VRDF_REQUIRE(m.tokens >= 0, "edge token count went negative (engine bug)");
    m.consumed_total = checked_add(m.consumed_total, count);
    m.min_tokens = std::min(m.min_tokens, m.tokens);
    if (transfer_recording_[edge.index()] != 0 &&
        consumption_records_[edge.index()].size() < transfer_caps_[edge.index()]) {
      consumption_records_[edge.index()].push_back(
          EdgeTransfer{m.consumed_total, count, to_time_point(now_)});
    }
  }

  const dataflow::VrdfGraph* graph_;
  Clock clock_;
  Time now_{};
  std::uint64_t next_seq_ = 0;
  std::vector<Event> heap_;  // binary heap via std::push_heap (min-heap)
  std::vector<ActorState> actors_;
  std::vector<dataflow::ActorId> worklist_;
  std::vector<EdgeMetrics> edges_;
  std::vector<dataflow::ActorId> edge_target_;
  mutable std::vector<ActorMetrics> actor_metrics_;
  std::vector<ActorTimes> actor_times_;
  std::vector<std::vector<FiringRecord>> firing_records_;
  std::vector<std::vector<EdgeTransfer>> production_records_;
  std::vector<std::vector<EdgeTransfer>> consumption_records_;
  std::vector<char> transfer_recording_;
  std::vector<std::size_t> transfer_caps_;
  std::vector<Starvation> starvations_;
  std::int64_t total_firings_ = 0;
};

}  // namespace vrdf::sim::detail
