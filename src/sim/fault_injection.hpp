// Deterministic fault injection — the adversarial counterpart of the
// model-conformant jitter hook.
//
// Every guarantee of the analysis holds only while actors respect their
// declared worst-case response times ρ(v).  A FaultPlan perturbs firings
// at the engine's response-time scheduling point (the instant start_firing
// fixes the firing's finish) so that affected firings take *longer* than
// ρ(v) — i.e. the actor violates its contract.  Four fault kinds, all
// lowering to per-firing extra durations:
//
//  * rho_overrun     — every firing in a window runs ρ·factor + extra;
//  * transient_stall — one firing is frozen for a window of `outage`
//                      before it produces (the actor is unresponsive for
//                      that long);
//  * bursty_jitter   — firings in periodic bursts each gain a random
//                      extra drawn from a 1024-step grid over [0, max];
//  * source_dropout  — one firing out of every `every_firings` is frozen
//                      for `outage` (a source with periodic losses).
//
// Plans are composable per actor (extras add up per firing) and fully
// replayable from their seed: the only randomness is a stateless
// splitmix64 hash of (seed, actor, spec index, firing index), so the two
// phases of the verification harness — and any clock representation —
// see bit-for-bit identical perturbations.
//
// Within-margin faults (extra per firing ≤ the actor's
// analysis::robustness_margins tolerable overrun) provably keep the
// installed capacities sufficient; beyond-margin faults are what the
// ConformanceMonitor (sim/monitor.hpp) exists to detect and name.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataflow/vrdf_graph.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace vrdf::sim {

/// One declared fault on one actor (the user-facing form; see FaultPlan).
struct FaultSpec {
  enum class Kind {
    /// Firings in [from_firing, from_firing+firings) run
    /// ρ·factor + extra instead of ρ.
    RhoOverrun,
    /// Firing `from_firing` is frozen for `extra` before producing.
    TransientStall,
    /// Firings in the first `burst_length` of every `burst_period`
    /// positions of the window gain a random extra from a 1024-step grid
    /// over [0, extra].
    BurstyJitter,
    /// One firing out of every `burst_period` in the window is frozen for
    /// `extra` — a source with periodic drop-outs.
    SourceDropout,
  };

  Kind kind = Kind::RhoOverrun;
  dataflow::ActorId actor;
  /// Additive extra duration (RhoOverrun), stall/outage length
  /// (TransientStall, SourceDropout), or random-grid maximum (BurstyJitter).
  Duration extra;
  /// RhoOverrun only: multiplicative factor on ρ (>= 1).
  Rational factor{1};
  /// First affected firing (0-based).
  std::int64_t from_firing = 0;
  /// Affected firing count from from_firing; < 0 means "to the end".
  /// TransientStall always affects exactly one firing.
  std::int64_t firings = -1;
  /// BurstyJitter / SourceDropout burst pattern.
  std::int64_t burst_length = 1;
  std::int64_t burst_period = 1;
};

/// A deterministic, seeded, composable set of faults.  Build with the
/// fluent helpers, then `apply` to every simulator of a run (both phases
/// of verify_throughput via its configurer): identical plans replay
/// identically.
class FaultPlan {
public:
  explicit FaultPlan(std::uint64_t seed = 1) : seed_(seed) {}

  /// Firings [from, from+firings) of `actor` take ρ·factor + extra.
  FaultPlan& rho_overrun(dataflow::ActorId actor, Duration extra,
                         Rational factor = Rational(1),
                         std::int64_t from_firing = 0,
                         std::int64_t firings = -1);

  /// Firing `at_firing` of `actor` freezes for `outage` before producing.
  FaultPlan& transient_stall(dataflow::ActorId actor, std::int64_t at_firing,
                             Duration outage);

  /// Firings of `actor` in the first `burst_length` of every
  /// `burst_period` window positions gain a random extra in [0, max_extra]
  /// (1024-step grid, hashed from the plan seed — replayable).
  FaultPlan& bursty_jitter(dataflow::ActorId actor, Duration max_extra,
                           std::int64_t burst_length, std::int64_t burst_period,
                           std::int64_t from_firing = 0,
                           std::int64_t firings = -1);

  /// One firing of `actor` out of every `every_firings` freezes for
  /// `outage` — periodic source drop-outs.
  FaultPlan& source_dropout(dataflow::ActorId actor, Duration outage,
                            std::int64_t every_firings,
                            std::int64_t from_firing = 0);

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] const std::vector<FaultSpec>& specs() const { return specs_; }
  [[nodiscard]] bool empty() const { return specs_.empty(); }

  /// Installs the plan on a simulator (resolves ρ factors against the
  /// simulator's graph).  Must be called before the first run if the
  /// simulator should use the tick clock; calling later falls back to
  /// exact Rational time when the grid does not fit the chosen scale.
  void apply(Simulator& sim) const;

  /// One line per spec, e.g. "rho_overrun on 'dec': +1/2 ms from firing 0".
  [[nodiscard]] std::string describe(const dataflow::VrdfGraph& graph) const;

private:
  std::uint64_t seed_;
  std::vector<FaultSpec> specs_;
};

}  // namespace vrdf::sim
