// Canonical-serialization file: tools/lint_determinism.py rules R1–R3
// apply (no unordered containers, no ambient randomness, no float
// formatting on the canonical byte path).
#include "sim/deployment_frontier.hpp"

#include <chrono>
#include <future>
#include <random>
#include <sstream>
#include <utility>

#include "analysis/buffer_sizing.hpp"
#include "dataflow/rate_set.hpp"
#include "sim/verify.hpp"
#include "util/error.hpp"
#include "util/seed_stream.hpp"
#include "util/thread_pool.hpp"

namespace vrdf::sim {

namespace {

[[nodiscard]] std::string escape_detail(const std::string& detail) {
  std::string out;
  out.reserve(detail.size());
  for (const char c : detail) {
    if (c == '\n') {
      out += "\\n";
    } else if (c == '\\') {
      out += "\\\\";
    } else {
      out += c;
    }
  }
  return out;
}

[[nodiscard]] std::string join_counts(const std::vector<std::int64_t>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    out += std::to_string(values[i]);
  }
  return out;
}

void write_cell_fields(std::ostringstream& os, const FrontierCellTally& t) {
  os << "items=" << t.items << " admitted=" << t.admitted
     << " rejected_wheel=" << t.rejected_wheel
     << " rejected_analysis=" << t.rejected_analysis
     << " verified=" << t.verified << " starvations=" << t.starvations
     << " capacity=" << t.total_capacity << " firings=" << t.firings
     << " certified=" << t.certified
     << " cert_clauses=" << t.certificate_clauses
     << " cert_failures=" << t.certificate_failures;
}

void tally_item(FrontierCellTally& tally, const FrontierItemResult& result) {
  ++tally.items;
  switch (result.outcome) {
    case FrontierOutcome::Admitted:
      ++tally.admitted;
      break;
    case FrontierOutcome::RejectedWheel:
      ++tally.rejected_wheel;
      break;
    case FrontierOutcome::RejectedAnalysis:
      ++tally.rejected_analysis;
      break;
  }
  if (result.verified) {
    ++tally.verified;
  }
  tally.starvations += result.starvation_count;
  tally.total_capacity += result.total_capacity;
  tally.firings += result.firings;
  if (result.certificate_clauses > 0) {
    if (result.certificate_ok) {
      ++tally.certified;
    } else {
      ++tally.certificate_failures;
    }
  }
  tally.certificate_clauses += result.certificate_clauses;
}

}  // namespace

const char* frontier_outcome_name(FrontierOutcome outcome) {
  switch (outcome) {
    case FrontierOutcome::Admitted: return "admitted";
    case FrontierOutcome::RejectedWheel: return "rejected-wheel";
    case FrontierOutcome::RejectedAnalysis: return "rejected-analysis";
  }
  return "unknown";
}

FrontierSweep::FrontierSweep(FrontierSpec spec) : spec_(std::move(spec)) {
  VRDF_REQUIRE(spec_.processors >= 1, "frontier needs at least one processor");
  VRDF_REQUIRE(spec_.tasks_per_stream >= 1,
               "frontier streams need at least one task");
  VRDF_REQUIRE(!spec_.stream_counts.empty(),
               "frontier needs at least one stream count");
  VRDF_REQUIRE(!spec_.slot_sixteenths.empty(),
               "frontier needs at least one slot budget");
  VRDF_REQUIRE(spec_.seeds_per_cell >= 1,
               "frontier needs at least one seed per cell");
  VRDF_REQUIRE(spec_.wheel.is_positive(), "wheel period must be positive");
  VRDF_REQUIRE(spec_.stream_period.is_positive(),
               "stream period must be positive");
  VRDF_REQUIRE(spec_.wcet_min_64ths >= 1 &&
                   spec_.wcet_min_64ths <= spec_.wcet_max_64ths,
               "WCET draw range must satisfy 1 <= min <= max");
  for (const std::int64_t streams : spec_.stream_counts) {
    VRDF_REQUIRE(streams >= 1, "stream counts must be positive");
  }
  for (const std::int64_t slot : spec_.slot_sixteenths) {
    VRDF_REQUIRE(slot >= 1 && slot <= 16,
                 "slot budgets are sixteenths of the wheel (1..16)");
  }

  std::size_t index = 0;
  for (const std::int64_t streams : spec_.stream_counts) {
    for (const std::int64_t slot : spec_.slot_sixteenths) {
      for (std::int64_t seed = 1; seed <= spec_.seeds_per_cell; ++seed) {
        FrontierItem item;
        item.index = index;
        item.streams = streams;
        item.slot_sixteenths = slot;
        item.seed_ordinal = static_cast<std::uint64_t>(seed);
        item.rng_seed = util::derive_seed(spec_.base_seed, index);
        items_.push_back(item);
        ++index;
      }
    }
  }

  std::ostringstream os;
  os << "procs=" << spec_.processors << " tasks=" << spec_.tasks_per_stream
     << " streams=" << join_counts(spec_.stream_counts)
     << " slots=" << join_counts(spec_.slot_sixteenths)
     << " seeds=" << spec_.seeds_per_cell << " base=" << spec_.base_seed
     << " wheel=" << spec_.wheel.seconds().to_string()
     << " period=" << spec_.stream_period.seconds().to_string()
     << " wcet=" << spec_.wcet_min_64ths << ".." << spec_.wcet_max_64ths
     << " observe=" << spec_.observe_firings
     << " verify=" << (spec_.verify ? 1 : 0)
     << " certify=" << (spec_.certify ? 1 : 0) << " derivation="
     << analysis::kappa_derivation_name(spec_.derivation);
  spec_summary_ = os.str();
}

FrontierItemResult FrontierSweep::run_item(const FrontierItem& item) const {
  FrontierItemResult result;
  result.item = item;
  try {
    // A shared root task fans out to every stream chain (the analysis
    // needs one weakly connected graph), so each item binds
    // 1 + streams * tasks_per_stream tasks.
    const std::int64_t total_tasks =
        1 + item.streams * spec_.tasks_per_stream;

    // Platform feasibility first: slots are wheel-sixteenths, so a
    // processor serving n tasks needs n * slot <= 16 sixteenths.  A
    // shortfall classifies the item as wheel-bound without building
    // anything.
    std::vector<std::int64_t> tasks_on(spec_.processors, 0);
    for (std::int64_t t = 0; t < total_tasks; ++t) {
      ++tasks_on[static_cast<std::size_t>(t) % spec_.processors];
    }
    for (std::size_t p = 0; p < spec_.processors; ++p) {
      if (tasks_on[p] * item.slot_sixteenths > 16) {
        result.outcome = FrontierOutcome::RejectedWheel;
        result.detail = "TDM wheel of processor cpu" + std::to_string(p) +
                        " cannot hold " + std::to_string(tasks_on[p]) +
                        " slots of " + std::to_string(item.slot_sixteenths) +
                        "/16";
        return result;
      }
    }

    // Deterministic model: N chains of static-rate tasks with randomized
    // WCETs, bound round-robin across the processors at the cell's slot.
    std::mt19937_64 rng(item.rng_seed);
    std::uniform_int_distribution<std::int64_t> wcet_draw(
        spec_.wcet_min_64ths, spec_.wcet_max_64ths);
    const Duration slot(spec_.wheel.seconds() *
                        Rational(item.slot_sixteenths, 16));

    sched::Platform platform;
    for (std::size_t p = 0; p < spec_.processors; ++p) {
      (void)platform.add_processor("cpu" + std::to_string(p), spec_.wheel);
    }

    taskgraph::TaskGraph tasks;
    std::vector<analysis::DeploymentConstraint> streams;
    std::int64_t task_index = 0;
    const auto add_bound_task = [&](const std::string& name) {
      // Placeholder κ: the deployment analysis replaces it with the
      // derived bound.
      const taskgraph::TaskId id = tasks.add_task(name, spec_.wheel);
      const Duration wcet(spec_.wheel.seconds() *
                          Rational(wcet_draw(rng), 64));
      platform.bind_task(
          name, static_cast<std::size_t>(task_index) % spec_.processors, slot,
          wcet);
      ++task_index;
      return id;
    };
    const taskgraph::TaskId root = add_bound_task("root");
    for (std::int64_t s = 0; s < item.streams; ++s) {
      taskgraph::TaskId previous = root;
      for (std::int64_t t = 0; t < spec_.tasks_per_stream; ++t) {
        const taskgraph::TaskId id = add_bound_task(
            "s" + std::to_string(s) + "t" + std::to_string(t));
        (void)tasks.add_buffer(previous, id, dataflow::RateSet::singleton(1),
                               dataflow::RateSet::singleton(1));
        previous = id;
      }
      streams.push_back(analysis::DeploymentConstraint{
          "s" + std::to_string(s) + "t" +
              std::to_string(spec_.tasks_per_stream - 1),
          spec_.stream_period});
    }

    analysis::DeploymentOptions options;
    options.derivation = spec_.derivation;
    options.certify = spec_.certify;
    analysis::DeploymentResult deployed =
        analyze_deployment(tasks, platform, streams, options);

    if (deployed.certificate_check.has_value()) {
      result.certificate_clauses = static_cast<std::int64_t>(
          deployed.certificate_check->clauses_checked);
      result.certificate_ok = deployed.certificate_check->ok;
    }
    if (!deployed.admissible) {
      result.outcome = FrontierOutcome::RejectedAnalysis;
      result.detail = deployed.diagnostics.empty()
                          ? "analysis rejected"
                          : deployed.diagnostics.front();
      return result;
    }
    result.outcome = FrontierOutcome::Admitted;
    result.total_capacity = deployed.analysis.total_capacity;

    if (spec_.verify) {
      analysis::apply_capacities(deployed.construction.graph,
                                 deployed.analysis);
      VerifyOptions verify_options;
      verify_options.observe_firings = spec_.observe_firings;
      verify_options.default_seed = item.rng_seed;
      const VerifyResult verdict =
          verify_throughput(deployed.construction.graph, deployed.constraints,
                            {}, verify_options);
      result.verified = verdict.ok;
      result.starvation_count = verdict.starvation_count;
      result.firings = verdict.firings_simulated;
      if (!verdict.ok) {
        result.detail = verdict.detail;
      }
    }
  } catch (const Error& error) {
    result.outcome = FrontierOutcome::RejectedAnalysis;
    result.verified = false;
    result.detail = error.what();
  }
  return result;
}

FrontierReport FrontierSweep::run(std::size_t threads) const {
  const auto started = std::chrono::steady_clock::now();
  std::vector<FrontierItemResult> results(items_.size());

  const auto work = [&](std::size_t i) { results[i] = run_item(items_[i]); };
  if (threads <= 1) {
    for (std::size_t i = 0; i < items_.size(); ++i) {
      work(i);
    }
  } else {
    util::ThreadPool pool(threads);
    std::vector<std::future<void>> futures;
    futures.reserve(items_.size());
    for (std::size_t i = 0; i < items_.size(); ++i) {
      futures.push_back(pool.submit([&work, i] { work(i); }));
    }
    for (std::future<void>& future : futures) {
      future.get();  // propagate the first worker exception, if any
    }
  }

  // Merge in item order — the aggregation is independent of which worker
  // finished when, so the report bytes match across thread counts.
  FrontierReport report;
  report.spec_summary = spec_summary_;
  report.cells.reserve(spec_.stream_counts.size() *
                       spec_.slot_sixteenths.size());
  for (const std::int64_t streams : spec_.stream_counts) {
    for (const std::int64_t slot : spec_.slot_sixteenths) {
      FrontierCellTally tally;
      tally.streams = streams;
      tally.slot_sixteenths = slot;
      report.cells.push_back(tally);
    }
  }
  for (const FrontierItemResult& result : results) {
    for (FrontierCellTally& tally : report.cells) {
      if (tally.streams == result.item.streams &&
          tally.slot_sixteenths == result.item.slot_sixteenths) {
        tally_item(tally, result);
        break;
      }
    }
  }
  for (const FrontierCellTally& tally : report.cells) {
    report.total_items += tally.items;
    report.admitted += tally.admitted;
    report.rejected_wheel += tally.rejected_wheel;
    report.rejected_analysis += tally.rejected_analysis;
    report.verified += tally.verified;
    report.starvations += tally.starvations;
    report.total_capacity += tally.total_capacity;
    report.firings += tally.firings;
    report.certified += tally.certified;
    report.certificate_clauses += tally.certificate_clauses;
    report.certificate_failures += tally.certificate_failures;
  }
  report.items = std::move(results);

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - started;
  report.elapsed_seconds = elapsed.count();
  report.threads_used = threads < 1 ? 1 : threads;
  return report;
}

std::string encode_frontier_line(const FrontierItemResult& result) {
  std::ostringstream os;
  os << "item index=" << result.item.index
     << " streams=" << result.item.streams
     << " slot=" << result.item.slot_sixteenths
     << " seed=" << result.item.seed_ordinal
     << " rng=" << result.item.rng_seed
     << " outcome=" << frontier_outcome_name(result.outcome)
     << " verified=" << (result.verified ? 1 : 0)
     << " starvations=" << result.starvation_count
     << " capacity=" << result.total_capacity
     << " firings=" << result.firings
     << " cert_clauses=" << result.certificate_clauses
     << " cert_ok=" << (result.certificate_ok ? 1 : 0)
     << " detail=" << escape_detail(result.detail);
  return os.str();
}

std::string canonical_text(const FrontierReport& report, bool include_items) {
  std::ostringstream os;
  os << "vrdf-frontier-report v1\n";
  os << "spec " << report.spec_summary << '\n';
  for (const FrontierCellTally& tally : report.cells) {
    os << "cell streams=" << tally.streams
       << " slot=" << tally.slot_sixteenths << ' ';
    write_cell_fields(os, tally);
    os << '\n';
  }
  FrontierCellTally totals;
  totals.items = report.total_items;
  totals.admitted = report.admitted;
  totals.rejected_wheel = report.rejected_wheel;
  totals.rejected_analysis = report.rejected_analysis;
  totals.verified = report.verified;
  totals.starvations = report.starvations;
  totals.total_capacity = report.total_capacity;
  totals.firings = report.firings;
  totals.certified = report.certified;
  totals.certificate_clauses = report.certificate_clauses;
  totals.certificate_failures = report.certificate_failures;
  os << "total ";
  write_cell_fields(os, totals);
  os << '\n';
  if (include_items) {
    for (const FrontierItemResult& item : report.items) {
      os << encode_frontier_line(item) << '\n';
    }
  }
  return os.str();
}

std::string summary_text(const FrontierReport& report) {
  std::ostringstream os;
  os << canonical_text(report, /*include_items=*/false);
  os << "threads " << report.threads_used << '\n';
  os << "elapsed " << report.elapsed_seconds << " s\n";
  return os.str();
}

}  // namespace vrdf::sim
