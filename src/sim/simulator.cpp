#include "sim/simulator.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "sim/engine.hpp"
#include "util/checked_int.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace vrdf::sim {

using dataflow::ActorId;
using dataflow::BufferEdges;
using dataflow::Edge;
using dataflow::EdgeId;

Simulator::Simulator(const dataflow::VrdfGraph& graph) : graph_(graph) {
  const std::size_t n_actors = graph.actor_count();
  const std::size_t n_edges = graph.edge_count();
  config_.actors.resize(n_actors);
  config_.transfer_recording.assign(n_edges, 0);
  config_.transfer_caps.assign(n_edges, 0);
  initial_actor_metrics_.resize(n_actors);
  initial_edge_metrics_.resize(n_edges);
  for (const EdgeId e : graph.edges()) {
    initial_edge_metrics_[e.index()].tokens = graph.edge(e).initial_tokens;
    initial_edge_metrics_[e.index()].max_tokens = graph.edge(e).initial_tokens;
    initial_edge_metrics_[e.index()].min_tokens = graph.edge(e).initial_tokens;
  }

  // Build ports.  Buffer pairs give each endpoint one port covering both
  // half-edges; bare edges give one single-sided port per endpoint.
  std::vector<char> edge_covered(n_edges, 0);
  for (const BufferEdges& b : graph.buffers()) {
    const Edge& data = graph.edge(b.data);
    config_.actors[data.source.index()].ports.push_back(
        detail::PortConfig{b.space, b.data, nullptr});
    config_.actors[data.target.index()].ports.push_back(
        detail::PortConfig{b.data, b.space, nullptr});
    edge_covered[b.data.index()] = 1;
    edge_covered[b.space.index()] = 1;
  }
  for (const EdgeId e : graph.edges()) {
    if (edge_covered[e.index()] != 0) {
      continue;
    }
    const Edge& edge = graph.edge(e);
    config_.actors[edge.source.index()].ports.push_back(
        detail::PortConfig{EdgeId::invalid(), e, nullptr});
    config_.actors[edge.target.index()].ports.push_back(
        detail::PortConfig{e, EdgeId::invalid(), nullptr});
  }
}

Simulator::~Simulator() = default;

template <typename Fn>
bool Simulator::forward_config(Fn&& fn) {
  if (tick_ != nullptr) {
    fn(*tick_);
    return true;
  }
  if (rational_ != nullptr) {
    fn(*rational_);
    return true;
  }
  return false;
}

template <typename Fn, typename Fallback>
decltype(auto) Simulator::dispatch(Fn&& fn, Fallback&& fallback) const {
  if (tick_ != nullptr) {
    return fn(*tick_);
  }
  if (rational_ != nullptr) {
    return fn(*rational_);
  }
  return fallback();
}

void Simulator::check_actor(ActorId actor) const {
  VRDF_REQUIRE(actor.is_valid() && actor.index() < initial_actor_metrics_.size(),
               "actor id out of range");
}

void Simulator::check_edge(EdgeId edge) const {
  VRDF_REQUIRE(edge.is_valid() && edge.index() < initial_edge_metrics_.size(),
               "edge id out of range");
}

void Simulator::set_clock_mode(ClockMode mode) {
  VRDF_REQUIRE(!has_engine(),
               "set_clock_mode must be called before the first run");
  clock_mode_ = mode;
}

bool Simulator::using_tick_clock() const { return tick_ != nullptr; }

std::optional<std::int64_t> Simulator::tick_resolution() const {
  if (tick_ == nullptr) {
    return std::nullopt;
  }
  return tick_->clock().scale.ticks_per_second();
}

void Simulator::set_actor_mode(ActorId actor, ActorMode mode) {
  check_actor(actor);
  if (mode.kind != ActorMode::Kind::SelfTimed) {
    VRDF_REQUIRE(mode.period.is_positive(), "mode period must be positive");
  }
  if (tick_ != nullptr && mode.kind != ActorMode::Kind::SelfTimed &&
      !(tick_->clock().scale.fits(mode.offset.seconds()) &&
        tick_->clock().scale.fits(mode.period.seconds()))) {
    fall_back_to_rational("actor mode not representable at the tick scale");
  }
  if (forward_config([&](auto& e) { e.set_actor_mode(actor, mode); })) {
    return;
  }
  config_.actors[actor.index()].mode = mode;
}

void Simulator::set_quantum_source(ActorId actor, EdgeId edge,
                                   std::unique_ptr<QuantumSource> source) {
  check_actor(actor);
  check_edge(edge);
  VRDF_REQUIRE(source != nullptr, "quantum source must not be null");
  // The lambda runs at most once, so moving `source` into it is safe.
  if (forward_config([&](auto& e) {
        e.set_quantum_source(actor, edge, std::move(source));
      })) {
    return;
  }
  // Normalize a space edge to its data edge: ports store buffer edges as
  // (in, out) pairs, so matching either half works, but bare-edge matching
  // needs the concrete edge.
  for (detail::PortConfig& port : config_.actors[actor.index()].ports) {
    if (port.in_edge == edge || port.out_edge == edge) {
      port.source = std::move(source);
      port.constant = false;
      port.trusted = false;
      return;
    }
  }
  const Edge& named = graph_.edge(edge);
  std::ostringstream os;
  os << "actor '" << graph_.actor(actor).name << "' has no port on edge "
     << graph_.actor(named.source).name << " -> "
     << graph_.actor(named.target).name;
  throw ContractError(os.str());
}

void Simulator::set_default_sources(std::uint64_t seed) {
  if (forward_config([&](auto& e) { e.fill_default_sources(seed); })) {
    return;
  }
  std::uint64_t salt = 0;
  for (detail::ActorConfig& actor : config_.actors) {
    for (detail::PortConfig& port : actor.ports) {
      ++salt;
      if (port.source != nullptr) {
        continue;
      }
      // The rate set governing this port: production set of the out edge
      // (equals the consumption set of the in edge for buffer ports).
      const dataflow::RateSet& set =
          port.out_edge.is_valid() ? graph_.edge(port.out_edge).production
                                   : graph_.edge(port.in_edge).consumption;
      if (set.is_singleton()) {
        port.source = constant_source(set.max());
        port.constant = true;
      } else {
        port.source = uniform_random_source(set, seed * 0x9E3779B97F4A7C15ULL + salt);
      }
      port.trusted = true;
    }
  }
}

void Simulator::inject_release_delay(ActorId actor, std::int64_t firing_index,
                                     Duration delay) {
  check_actor(actor);
  VRDF_REQUIRE(firing_index >= 0, "firing index must be non-negative");
  VRDF_REQUIRE(!delay.is_negative(), "release delay must be non-negative");
  if (tick_ != nullptr && !tick_->clock().scale.fits(delay.seconds())) {
    fall_back_to_rational("release delay not representable at the tick scale");
  }
  if (forward_config([&](auto& e) {
        e.inject_release_delay(actor, firing_index, delay.seconds());
      })) {
    return;
  }
  config_.actors[actor.index()].release_delays[firing_index] = delay.seconds();
}

void Simulator::set_response_time_jitter(ActorId actor, std::uint64_t seed,
                                         Rational min_fraction) {
  check_actor(actor);
  VRDF_REQUIRE(min_fraction.is_positive() && min_fraction <= Rational(1),
               "jitter fraction must be in (0, 1]");
  // splitmix-style seeding keeps streams independent across actors.
  const std::uint64_t seed_state =
      seed * 0x9E3779B97F4A7C15ULL + actor.value() + 1;
  if (tick_ != nullptr) {
    bool ok = true;
    try {
      const detail::JitterGrid grid = detail::jitter_grid(
          graph_.actor(actor).response_time.seconds(), min_fraction);
      ok = tick_->clock().scale.fits(grid.base) &&
           tick_->clock().scale.fits(grid.step);
    } catch (const OverflowError&) {
      ok = false;
    }
    if (!ok) {
      fall_back_to_rational("jitter grid not representable at the tick scale");
    }
  }
  if (forward_config([&](auto& e) {
        e.set_response_time_jitter(actor, min_fraction, seed_state);
      })) {
    return;
  }
  detail::ActorConfig& cfg = config_.actors[actor.index()];
  cfg.jitter_enabled = true;
  cfg.jitter_seed_state = seed_state;
  cfg.jitter_min_fraction = min_fraction;
}

void Simulator::add_response_time_fault(ActorId actor,
                                        const ResponseTimeFault& fault) {
  check_actor(actor);
  VRDF_REQUIRE(!fault.base.is_negative() && !fault.step.is_negative(),
               "fault base/step must be non-negative");
  VRDF_REQUIRE(fault.from >= 0 && fault.from <= fault.until,
               "fault firing window must be non-negative and ordered");
  VRDF_REQUIRE(fault.burst_period >= 0 && fault.burst_length >= 0 &&
                   fault.burst_length <= fault.burst_period,
               "fault burst pattern must satisfy 0 <= length <= period");
  if (tick_ != nullptr && !(tick_->clock().scale.fits(fault.base.seconds()) &&
                            tick_->clock().scale.fits(fault.step.seconds()))) {
    fall_back_to_rational("fault grid not representable at the tick scale");
  }
  if (forward_config([&](auto& e) { e.add_response_time_fault(actor, fault); })) {
    return;
  }
  config_.actors[actor.index()].faults.push_back(fault);
}

void Simulator::record_firings(ActorId actor, std::size_t max_records) {
  check_actor(actor);
  if (forward_config([&](auto& e) { e.record_firings(actor, max_records); })) {
    return;
  }
  config_.actors[actor.index()].record = true;
  config_.actors[actor.index()].record_cap = max_records;
}

void Simulator::record_transfers(EdgeId edge, std::size_t max_records) {
  check_edge(edge);
  if (forward_config([&](auto& e) { e.record_transfers(edge, max_records); })) {
    return;
  }
  config_.transfer_recording[edge.index()] = 1;
  config_.transfer_caps[edge.index()] = max_records;
}

std::optional<TimeScale> Simulator::compute_scale(
    const StopCondition& stop) const {
  TimeScale::Builder builder;
  std::vector<Rational> constants;
  const auto fold = [&](const Rational& r) {
    builder.fold(r);
    constants.push_back(r);
  };
  try {
    for (const ActorId a : graph_.actors()) {
      fold(graph_.actor(a).response_time.seconds());
    }
    for (std::size_t i = 0; i < config_.actors.size(); ++i) {
      const detail::ActorConfig& cfg = config_.actors[i];
      if (cfg.mode.kind != ActorMode::Kind::SelfTimed) {
        fold(cfg.mode.offset.seconds());
        fold(cfg.mode.period.seconds());
      }
      for (const auto& [index, delay] : cfg.release_delays) {
        fold(delay);
      }
      if (cfg.jitter_enabled) {
        const ActorId id(static_cast<ActorId::underlying_type>(i));
        const detail::JitterGrid grid = detail::jitter_grid(
            graph_.actor(id).response_time.seconds(), cfg.jitter_min_fraction);
        fold(grid.base);
        fold(grid.step);
      }
      for (const ResponseTimeFault& fault : cfg.faults) {
        fold(fault.base.seconds());
        fold(fault.step.seconds());
      }
    }
    if (stop.until_time.has_value()) {
      fold(stop.until_time->seconds());
    }
  } catch (const OverflowError&) {
    return std::nullopt;
  }
  std::optional<TimeScale> scale = builder.build();
  if (!scale.has_value()) {
    return std::nullopt;
  }
  // The LCM can be in range while an individual constant's tick count is
  // not (huge numerator at a fine scale); such models stay on Rational.
  for (const Rational& r : constants) {
    if (!scale->fits(r)) {
      return std::nullopt;
    }
  }
  return scale;
}

void Simulator::create_engine(const StopCondition& stop) {
  std::optional<TimeScale> scale;
  if (clock_mode_ != ClockMode::ForceExactRational) {
    scale = compute_scale(stop);
  }
  if (clock_mode_ == ClockMode::ForceTickClock && !scale.has_value()) {
    throw ContractError(
        "tick clock forced but no int64 tick scale exists for this "
        "configuration (denominator LCM overflow)");
  }
  if (scale.has_value()) {
    tick_ = std::make_unique<detail::Engine<detail::TickClock>>(
        graph_, std::move(config_), detail::TickClock{*scale});
  } else {
    if (clock_mode_ == ClockMode::Auto) {
      VRDF_LOG(Info) << "simulator: no int64 tick scale for this model "
                        "(denominator LCM overflow); using exact Rational "
                        "time";
    }
    rational_ = std::make_unique<detail::Engine<detail::RationalClock>>(
        graph_, std::move(config_), detail::RationalClock{});
  }
}

void Simulator::fall_back_to_rational(const char* why) {
  VRDF_REQUIRE(tick_ != nullptr, "no tick engine to fall back from");
  VRDF_REQUIRE(clock_mode_ != ClockMode::ForceTickClock, why);
  VRDF_LOG(Info) << "simulator: " << why << "; falling back to exact "
                    "Rational time";
  rational_ = std::make_unique<detail::Engine<detail::RationalClock>>(
      std::move(*tick_), detail::RationalClock{});
  tick_.reset();
}

RunResult Simulator::run(const StopCondition& stop) {
  if (!has_engine()) {
    create_engine(stop);
  }
  if (tick_ != nullptr && stop.until_time.has_value() &&
      !tick_->clock().scale.fits(stop.until_time->seconds())) {
    fall_back_to_rational("stop horizon not representable at the tick scale");
  }
  return tick_ != nullptr ? tick_->run(stop) : rational_->run(stop);
}

Simulator::StateSnapshot Simulator::snapshot() const {
  return dispatch([](const auto& e) { return e.snapshot(); },
                  [&]() {
                    StateSnapshot snap;
                    snap.tokens.reserve(initial_edge_metrics_.size());
                    for (const EdgeMetrics& m : initial_edge_metrics_) {
                      snap.tokens.push_back(m.tokens);
                    }
                    snap.remaining.assign(config_.actors.size(), std::nullopt);
                    return snap;
                  });
}

const EdgeMetrics& Simulator::edge_metrics(EdgeId edge) const {
  check_edge(edge);
  return dispatch(
      [&](const auto& e) -> const EdgeMetrics& { return e.edge_metrics(edge); },
      [&]() -> const EdgeMetrics& { return initial_edge_metrics_[edge.index()]; });
}

const ActorMetrics& Simulator::actor_metrics(ActorId actor) const {
  check_actor(actor);
  return dispatch(
      [&](const auto& e) -> const ActorMetrics& {
        return e.actor_metrics(actor);
      },
      [&]() -> const ActorMetrics& {
        return initial_actor_metrics_[actor.index()];
      });
}

namespace {
template <typename T>
const std::vector<T>& empty_records() {
  static const std::vector<T> kEmpty;
  return kEmpty;
}
}  // namespace

const std::vector<FiringRecord>& Simulator::firings(ActorId actor) const {
  check_actor(actor);
  return dispatch(
      [&](const auto& e) -> const std::vector<FiringRecord>& {
        return e.firings(actor);
      },
      []() -> const std::vector<FiringRecord>& {
        return empty_records<FiringRecord>();
      });
}

const std::vector<EdgeTransfer>& Simulator::production_events(EdgeId edge) const {
  check_edge(edge);
  return dispatch(
      [&](const auto& e) -> const std::vector<EdgeTransfer>& {
        return e.production_events(edge);
      },
      []() -> const std::vector<EdgeTransfer>& {
        return empty_records<EdgeTransfer>();
      });
}

const std::vector<EdgeTransfer>& Simulator::consumption_events(EdgeId edge) const {
  check_edge(edge);
  return dispatch(
      [&](const auto& e) -> const std::vector<EdgeTransfer>& {
        return e.consumption_events(edge);
      },
      []() -> const std::vector<EdgeTransfer>& {
        return empty_records<EdgeTransfer>();
      });
}

TimePoint Simulator::now() const {
  return dispatch([](const auto& e) { return e.now(); },
                  []() { return TimePoint(); });
}

}  // namespace vrdf::sim
