#include "sim/simulator.hpp"

#include <algorithm>
#include <sstream>

#include "util/checked_int.hpp"
#include "util/error.hpp"

namespace vrdf::sim {

using dataflow::ActorId;
using dataflow::BufferEdges;
using dataflow::Edge;
using dataflow::EdgeId;

Simulator::Simulator(const dataflow::VrdfGraph& graph) : graph_(graph) {
  const std::size_t n_actors = graph.actor_count();
  const std::size_t n_edges = graph.edge_count();
  actors_.resize(n_actors);
  edges_.resize(n_edges);
  actor_metrics_.resize(n_actors);
  firing_records_.resize(n_actors);
  production_records_.resize(n_edges);
  consumption_records_.resize(n_edges);
  transfer_recording_.assign(n_edges, 0);
  transfer_caps_.assign(n_edges, 0);
  scheduled_wakeup_.resize(n_actors);

  for (const EdgeId e : graph.edges()) {
    edges_[e.index()].tokens = graph.edge(e).initial_tokens;
    edges_[e.index()].max_tokens = edges_[e.index()].tokens;
    edges_[e.index()].min_tokens = edges_[e.index()].tokens;
  }

  // Build ports.  Buffer pairs give each endpoint one port covering both
  // half-edges; bare edges give one single-sided port per endpoint.
  std::vector<char> edge_covered(n_edges, 0);
  for (const BufferEdges& b : graph.buffers()) {
    const Edge& data = graph.edge(b.data);
    actors_[data.source.index()].ports.push_back(Port{b.space, b.data, nullptr});
    actors_[data.target.index()].ports.push_back(Port{b.data, b.space, nullptr});
    edge_covered[b.data.index()] = 1;
    edge_covered[b.space.index()] = 1;
  }
  for (const EdgeId e : graph.edges()) {
    if (edge_covered[e.index()] != 0) {
      continue;
    }
    const Edge& edge = graph.edge(e);
    actors_[edge.source.index()].ports.push_back(
        Port{EdgeId::invalid(), e, nullptr});
    actors_[edge.target.index()].ports.push_back(
        Port{e, EdgeId::invalid(), nullptr});
  }
}

void Simulator::set_actor_mode(ActorId actor, ActorMode mode) {
  VRDF_REQUIRE(actor.is_valid() && actor.index() < actors_.size(),
               "actor id out of range");
  if (mode.kind != ActorMode::Kind::SelfTimed) {
    VRDF_REQUIRE(mode.period.is_positive(), "mode period must be positive");
  }
  actors_[actor.index()].mode = mode;
  if (mode.kind == ActorMode::Kind::StrictlyPeriodic) {
    push_event(Event{mode.offset, next_seq_++, Event::Kind::Wakeup, actor});
  }
}

void Simulator::set_quantum_source(ActorId actor, EdgeId edge,
                                   std::unique_ptr<QuantumSource> source) {
  VRDF_REQUIRE(actor.is_valid() && actor.index() < actors_.size(),
               "actor id out of range");
  VRDF_REQUIRE(source != nullptr, "quantum source must not be null");
  const Edge& named = graph_.edge(edge);
  // Normalize a space edge to its data edge: ports store buffer edges as
  // (in, out) pairs, so matching either half works, but bare-edge matching
  // needs the concrete edge.
  for (Port& port : actors_[actor.index()].ports) {
    if (port.in_edge == edge || port.out_edge == edge) {
      port.source = std::move(source);
      return;
    }
  }
  std::ostringstream os;
  os << "actor '" << graph_.actor(actor).name << "' has no port on edge "
     << graph_.actor(named.source).name << " -> "
     << graph_.actor(named.target).name;
  throw ContractError(os.str());
}

void Simulator::set_default_sources(std::uint64_t seed) {
  std::uint64_t salt = 0;
  for (ActorState& state : actors_) {
    for (Port& port : state.ports) {
      ++salt;
      if (port.source != nullptr) {
        continue;
      }
      // The rate set governing this port: production set of the out edge
      // (equals the consumption set of the in edge for buffer ports).
      const dataflow::RateSet& set =
          port.out_edge.is_valid() ? graph_.edge(port.out_edge).production
                                   : graph_.edge(port.in_edge).consumption;
      if (set.is_singleton()) {
        port.source = constant_source(set.max());
      } else {
        port.source = uniform_random_source(set, seed * 0x9E3779B97F4A7C15ULL + salt);
      }
    }
  }
}

void Simulator::inject_release_delay(ActorId actor, std::int64_t firing_index,
                                     Duration delay) {
  VRDF_REQUIRE(actor.is_valid() && actor.index() < actors_.size(),
               "actor id out of range");
  VRDF_REQUIRE(firing_index >= 0, "firing index must be non-negative");
  VRDF_REQUIRE(!delay.is_negative(), "release delay must be non-negative");
  actors_[actor.index()].release_delays[firing_index] = delay;
}

void Simulator::set_response_time_jitter(ActorId actor, std::uint64_t seed,
                                         Rational min_fraction) {
  VRDF_REQUIRE(actor.is_valid() && actor.index() < actors_.size(),
               "actor id out of range");
  VRDF_REQUIRE(min_fraction.is_positive() && min_fraction <= Rational(1),
               "jitter fraction must be in (0, 1]");
  ActorState& state = actors_[actor.index()];
  state.jitter_enabled = true;
  // splitmix-style seeding keeps streams independent across actors.
  state.jitter_state = seed * 0x9E3779B97F4A7C15ULL + actor.value() + 1;
  state.jitter_min_fraction = min_fraction;
}

void Simulator::record_firings(ActorId actor, std::size_t max_records) {
  VRDF_REQUIRE(actor.is_valid() && actor.index() < actors_.size(),
               "actor id out of range");
  actors_[actor.index()].record = true;
  actors_[actor.index()].record_cap = max_records;
}

void Simulator::record_transfers(EdgeId edge, std::size_t max_records) {
  VRDF_REQUIRE(edge.is_valid() && edge.index() < edges_.size(),
               "edge id out of range");
  transfer_recording_[edge.index()] = 1;
  transfer_caps_[edge.index()] = max_records;
}

void Simulator::push_event(Event e) {
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), [](const Event& a, const Event& b) {
    // std::push_heap builds a max-heap; invert for min-heap semantics.
    if (a.time != b.time) {
      return a.time > b.time;
    }
    return a.seq > b.seq;
  });
}

void Simulator::draw_quanta(ActorId actor) {
  ActorState& state = actors_[actor.index()];
  if (state.quanta_drawn) {
    return;
  }
  state.pending_quanta.resize(state.ports.size());
  for (std::size_t i = 0; i < state.ports.size(); ++i) {
    Port& port = state.ports[i];
    if (port.source == nullptr) {
      std::ostringstream os;
      os << "actor '" << graph_.actor(actor).name
         << "' port " << i
         << " has no quantum source; call set_quantum_source or "
            "set_default_sources";
      throw ContractError(os.str());
    }
    const std::int64_t q = port.source->next(state.started);
    const dataflow::RateSet& set =
        port.out_edge.is_valid() ? graph_.edge(port.out_edge).production
                                 : graph_.edge(port.in_edge).consumption;
    if (!set.contains(q)) {
      std::ostringstream os;
      os << "quantum source " << port.source->describe() << " of actor '"
         << graph_.actor(actor).name << "' produced " << q
         << " which is outside the rate set " << set.to_string();
      throw ModelError(os.str());
    }
    state.pending_quanta[i] = q;
  }
  state.quanta_drawn = true;
}

bool Simulator::tokens_available(const ActorState& state) const {
  for (std::size_t i = 0; i < state.ports.size(); ++i) {
    const Port& port = state.ports[i];
    if (port.in_edge.is_valid() &&
        edges_[port.in_edge.index()].tokens < state.pending_quanta[i]) {
      return false;
    }
  }
  return true;
}

void Simulator::add_tokens(EdgeId edge, std::int64_t count) {
  EdgeMetrics& m = edges_[edge.index()];
  m.tokens = checked_add(m.tokens, count);
  m.produced_total = checked_add(m.produced_total, count);
  m.max_tokens = std::max(m.max_tokens, m.tokens);
  if (transfer_recording_[edge.index()] != 0 &&
      production_records_[edge.index()].size() < transfer_caps_[edge.index()]) {
    production_records_[edge.index()].push_back(
        EdgeTransfer{m.produced_total, count, now_});
  }
}

void Simulator::remove_tokens(EdgeId edge, std::int64_t count) {
  EdgeMetrics& m = edges_[edge.index()];
  m.tokens -= count;
  VRDF_REQUIRE(m.tokens >= 0, "edge token count went negative (engine bug)");
  m.consumed_total = checked_add(m.consumed_total, count);
  m.min_tokens = std::min(m.min_tokens, m.tokens);
  if (transfer_recording_[edge.index()] != 0 &&
      consumption_records_[edge.index()].size() < transfer_caps_[edge.index()]) {
    consumption_records_[edge.index()].push_back(
        EdgeTransfer{m.consumed_total, count, now_});
  }
}

void Simulator::start_firing(ActorId actor) {
  ActorState& state = actors_[actor.index()];
  ActorMetrics& metrics = actor_metrics_[actor.index()];

  for (std::size_t i = 0; i < state.ports.size(); ++i) {
    const Port& port = state.ports[i];
    if (port.in_edge.is_valid() && state.pending_quanta[i] > 0) {
      remove_tokens(port.in_edge, state.pending_quanta[i]);
    }
  }
  state.active_quanta = state.pending_quanta;
  state.active_start = now_;
  state.quanta_drawn = false;
  state.release_not_before.reset();
  state.busy = true;

  // Starvation bookkeeping for periodic actors.
  if (state.mode.kind == ActorMode::Kind::StrictlyPeriodic) {
    if (state.open_starvation.has_value()) {
      starvations_[*state.open_starvation].actual_start = now_;
      state.open_starvation.reset();
    }
    // Guarantee a wakeup at the next activation so a miss is noticed.
    const TimePoint next_activation =
        state.mode.offset + state.mode.period * Rational(state.started + 1);
    push_event(Event{next_activation, next_seq_++, Event::Kind::Wakeup, actor});
  }

  ++state.started;
  ++total_firings_;
  state.last_start = now_;
  if (!metrics.first_start.has_value()) {
    metrics.first_start = now_;
  }
  metrics.last_start = now_;
  ++metrics.firings_started;
  if (state.mode.kind == ActorMode::Kind::RateLimited) {
    // Lateness of firing k versus a periodic schedule anchored at the
    // first start: start_k − (first + k·period).
    const Duration lateness =
        now_ - (*metrics.first_start +
                state.mode.period * Rational(state.started - 1));
    if (!metrics.max_lateness_vs_period.has_value() ||
        lateness > *metrics.max_lateness_vs_period) {
      metrics.max_lateness_vs_period = lateness;
    }
  }

  Duration rho = graph_.actor(actor).response_time;
  if (state.jitter_enabled) {
    // splitmix64 step; map to a 1024-step grid over [min_fraction, 1]·ρ.
    std::uint64_t z = (state.jitter_state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    const std::int64_t step = static_cast<std::int64_t>(z % 1025);
    const Rational fraction =
        state.jitter_min_fraction +
        (Rational(1) - state.jitter_min_fraction) * Rational(step, 1024);
    rho = rho * fraction;
  }
  state.active_finish = now_ + rho;
  push_event(Event{now_ + rho, next_seq_++, Event::Kind::FiringFinish, actor});
}

void Simulator::finish_firing(ActorId actor) {
  ActorState& state = actors_[actor.index()];
  for (std::size_t i = 0; i < state.ports.size(); ++i) {
    const Port& port = state.ports[i];
    if (port.out_edge.is_valid() && state.active_quanta[i] > 0) {
      add_tokens(port.out_edge, state.active_quanta[i]);
    }
  }
  state.busy = false;
  ++state.finished;
  ++actor_metrics_[actor.index()].firings_finished;
  if (state.record &&
      firing_records_[actor.index()].size() < state.record_cap) {
    firing_records_[actor.index()].push_back(
        FiringRecord{actor, state.finished - 1, state.active_start, now_});
  }
}

void Simulator::enabling_scan() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < actors_.size(); ++i) {
      const ActorId actor(static_cast<ActorId::underlying_type>(i));
      ActorState& state = actors_[i];
      if (state.busy) {
        continue;
      }
      draw_quanta(actor);
      const bool have_tokens = tokens_available(state);

      // Mode gating.
      if (state.mode.kind == ActorMode::Kind::StrictlyPeriodic) {
        const TimePoint scheduled =
            state.mode.offset + state.mode.period * Rational(state.started);
        if (now_ < scheduled) {
          continue;  // wakeup already scheduled at activation time
        }
        if (!have_tokens) {
          if (!state.open_starvation.has_value()) {
            state.open_starvation = starvations_.size();
            starvations_.push_back(
                Starvation{actor, state.started, scheduled, std::nullopt});
            ++actor_metrics_[i].starvation_count;
          }
          continue;
        }
        if (now_ > scheduled && !state.open_starvation.has_value()) {
          // Enabled only now although the activation was earlier (e.g. the
          // previous firing finished late); count it as a late start too.
          state.open_starvation = starvations_.size();
          starvations_.push_back(
              Starvation{actor, state.started, scheduled, std::nullopt});
          ++actor_metrics_[i].starvation_count;
        }
      } else {
        if (!have_tokens) {
          continue;
        }
        if (state.mode.kind == ActorMode::Kind::RateLimited &&
            state.last_start.has_value()) {
          const TimePoint earliest = *state.last_start + state.mode.period;
          if (now_ < earliest) {
            if (!scheduled_wakeup_[i].has_value() || *scheduled_wakeup_[i] != earliest) {
              scheduled_wakeup_[i] = earliest;
              push_event(Event{earliest, next_seq_++, Event::Kind::Wakeup, actor});
            }
            continue;
          }
        }
      }

      // Injected release delays (property checks).
      const auto delay_it = state.release_delays.find(state.started);
      if (delay_it != state.release_delays.end() &&
          delay_it->second.is_positive()) {
        if (!state.release_not_before.has_value()) {
          state.release_not_before = now_ + delay_it->second;
          push_event(Event{*state.release_not_before, next_seq_++,
                           Event::Kind::Wakeup, actor});
          continue;
        }
        if (now_ < *state.release_not_before) {
          continue;
        }
      }

      start_firing(actor);
      progress = true;
    }
  }
}

RunResult Simulator::run(const StopCondition& stop) {
  RunResult result;
  const auto target_reached = [&]() {
    if (!stop.firing_target.has_value()) {
      return false;
    }
    const auto& t = *stop.firing_target;
    return actors_[t.actor.index()].finished >= t.count;
  };

  while (true) {
    // Check the firing target before the enabling scan so that the run
    // stops at the moment the target actor's firing *finishes*, without
    // starting fresh firings at the same instant.
    if (target_reached()) {
      result.reason = StopReason::ReachedFiringTarget;
      break;
    }
    enabling_scan();
    if (total_firings_ >= stop.max_firings) {
      result.reason = StopReason::EventBudgetExhausted;
      break;
    }
    if (heap_.empty()) {
      result.reason = StopReason::Deadlock;
      break;
    }
    const TimePoint next_time = heap_.front().time;
    if (stop.until_time.has_value() && next_time > *stop.until_time) {
      now_ = *stop.until_time;
      result.reason = StopReason::ReachedTimeLimit;
      break;
    }
    now_ = next_time;
    // Drain all events at this instant before rescanning so that
    // simultaneous productions are all visible to the enabling scan
    // (a token produced at t is consumable at t).
    while (!heap_.empty() && heap_.front().time == now_) {
      std::pop_heap(heap_.begin(), heap_.end(),
                    [](const Event& a, const Event& b) {
                      if (a.time != b.time) {
                        return a.time > b.time;
                      }
                      return a.seq > b.seq;
                    });
      const Event event = heap_.back();
      heap_.pop_back();
      if (event.kind == Event::Kind::FiringFinish) {
        finish_firing(event.actor);
      } else if (scheduled_wakeup_[event.actor.index()].has_value() &&
                 *scheduled_wakeup_[event.actor.index()] == now_) {
        scheduled_wakeup_[event.actor.index()].reset();
      }
    }
  }

  result.end_time = now_;
  result.total_firings = total_firings_;
  result.starvations = starvations_;
  return result;
}

Simulator::StateSnapshot Simulator::snapshot() const {
  StateSnapshot snap;
  snap.tokens.reserve(edges_.size());
  for (const EdgeMetrics& m : edges_) {
    snap.tokens.push_back(m.tokens);
  }
  snap.remaining.reserve(actors_.size());
  for (const ActorState& state : actors_) {
    if (state.busy) {
      snap.remaining.push_back((state.active_finish - now_).seconds());
    } else {
      snap.remaining.push_back(std::nullopt);
    }
  }
  return snap;
}

const EdgeMetrics& Simulator::edge_metrics(EdgeId edge) const {
  VRDF_REQUIRE(edge.is_valid() && edge.index() < edges_.size(),
               "edge id out of range");
  return edges_[edge.index()];
}

const ActorMetrics& Simulator::actor_metrics(ActorId actor) const {
  VRDF_REQUIRE(actor.is_valid() && actor.index() < actor_metrics_.size(),
               "actor id out of range");
  return actor_metrics_[actor.index()];
}

const std::vector<FiringRecord>& Simulator::firings(ActorId actor) const {
  VRDF_REQUIRE(actor.is_valid() && actor.index() < firing_records_.size(),
               "actor id out of range");
  return firing_records_[actor.index()];
}

const std::vector<EdgeTransfer>& Simulator::production_events(EdgeId edge) const {
  VRDF_REQUIRE(edge.is_valid() && edge.index() < production_records_.size(),
               "edge id out of range");
  return production_records_[edge.index()];
}

const std::vector<EdgeTransfer>& Simulator::consumption_events(EdgeId edge) const {
  VRDF_REQUIRE(edge.is_valid() && edge.index() < consumption_records_.size(),
               "edge id out of range");
  return consumption_records_[edge.index()];
}

bool Simulator::event_earlier(const Event& a, const Event& b) const {
  if (a.time != b.time) {
    return a.time < b.time;
  }
  return a.seq < b.seq;
}

}  // namespace vrdf::sim
