// Fleet-scale parallel verification: a sharded sweep harness that runs
// thousands of generate → analyze → two-phase-verify pipelines on a
// thread pool and aggregates the verdicts into one report.
//
// The randomized sweeps of PRs 2–7 validate the paper's analysis on
// 40–60 graphs per model class — a coverage ceiling set by one core, not
// a confidence target.  FleetSweep lifts that ceiling: a SweepSpec
// expands into independent work items (model classes × seed ordinals ×
// headroom levels × sink/source modes), each item runs its whole
// pipeline in isolation on a util::ThreadPool worker, and the results
// merge into a FleetReport.
//
// Determinism rules — the report's canonical serialization is
// bit-identical regardless of thread count and across interrupt+resume:
//  * Every item derives its RNG stream statelessly:
//    rng_seed = util::derive_seed(base_seed, item index).  No item reads
//    another item's state, a worker-local counter, or a thread id.
//  * Items write only their own pre-allocated result slot; results merge
//    in item-index order after the pool drains.
//  * Wall-clock metrics (elapsed seconds, firings/s, threads, resumed
//    count) live in FleetReport but are excluded from canonical_text().
//
// Resumability: pass an io::FleetJournal and every finished item is
// appended to it; on restart, journaled items are merged back without
// recompute, so an interrupted 10k-model sweep continues where it left
// off and still produces the canonical bytes of an uninterrupted run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "models/synthetic.hpp"
#include "sim/verify.hpp"
#include "util/rational.hpp"
#include "util/time.hpp"

namespace vrdf::io {
class FleetJournal;
}  // namespace vrdf::io

namespace vrdf::sim {

/// Which end of the generated model carries the throughput constraint.
enum class ConstraintMode { Sink, Source };

[[nodiscard]] const char* constraint_mode_name(ConstraintMode mode);

/// One independent unit of fleet work, fully determined by the spec and
/// its index — workers receive items by value and share nothing.
struct FleetItem {
  /// Position in the spec's expansion order; also the journal key.
  std::size_t index = 0;
  models::ModelClass model_class = models::ModelClass::Chain;
  /// 1-based ordinal within (class, mode, headroom) — the "seed" a human
  /// reads in the report.  Custom generators may use it to reproduce a
  /// published per-seed shape schedule.
  std::uint64_t seed_ordinal = 1;
  std::int64_t headroom = 0;
  ConstraintMode mode = ConstraintMode::Sink;
  /// splitmix64(base_seed, index) — the item's actual RNG stream.
  std::uint64_t rng_seed = 0;
};

struct SweepSpec {
  /// Classes swept, in report order.  Defaults to all five.
  std::vector<models::ModelClass> classes{
      models::ModelClass::Chain,           models::ModelClass::ForkJoin,
      models::ModelClass::Cyclic,          models::ModelClass::MultiConstraint,
      models::ModelClass::InteriorPinned};
  std::uint64_t base_seed = 1;
  /// Seed ordinals 1..seeds_per_class per (class, mode, headroom) cell.
  std::int64_t seeds_per_class = 40;
  /// Capacity headroom levels swept (containers added per buffer).
  std::vector<std::int64_t> headroom_levels{0};
  /// Constraint placements swept.  Source mode is skipped for
  /// MultiConstraint and InteriorPinned — those classes have no
  /// source-constrained form.
  std::vector<ConstraintMode> modes{ConstraintMode::Sink};
  /// Generator knobs forwarded to models::make_random_model.
  Rational response_fraction = Rational(1, 2);
  int variable_percent = 50;
  int zero_percent = 20;
  /// Firings of the leading constrained actor simulated per phase.
  std::int64_t observe_firings = 300;
  /// Faulted sweep: each item additionally computes its robustness
  /// margins, injects the maximal within-margin ρ overrun on the actor
  /// with the largest margin (FaultPlan seeded from the item's stream),
  /// and verifies under the ConformanceMonitor — the constraint must
  /// still hold while the monitor names the breach.
  bool faulted = false;
  /// Certify sweep: each admissible analysis is transcribed into a
  /// capacity certificate and re-validated by the independent checker
  /// (analysis/checker.hpp) before capacities are installed.  A clause
  /// violation fails the item with the violated clause in `detail`
  /// (checker/analyzer disagreement — a bug, not an input property).
  bool certify = false;
  /// Optional custom generator (e.g. to preserve a published per-seed
  /// shape schedule).  Must be a *pure* function of the item — it is
  /// called concurrently from pool workers.  Return the bare model
  /// (scaled response times, no capacities installed); the fleet
  /// analyzes, installs capacities plus the item's headroom, and
  /// verifies.  When unset, models::make_random_model(item.rng_seed)
  /// generates.
  std::function<models::SyntheticModel(const FleetItem&)> generator;
  /// Mixed into the journal fingerprint so callers with a custom
  /// generator can version their journals (the function itself cannot be
  /// fingerprinted).
  std::uint64_t journal_tag = 0;
};

/// Deterministic verdict of one item.  Every field participates in the
/// canonical serialization and the journal round-trip.
struct FleetItemResult {
  FleetItem item;
  bool pass = false;
  /// The pipeline refused before simulating: inadmissible analysis,
  /// margins not ok (faulted mode), or a generator/contract error —
  /// `detail` says which.
  bool rejected = false;
  std::int64_t starvation_count = 0;
  /// Analysed total capacity (Σζ, headroom excluded); 0 when rejected.
  std::int64_t total_capacity = 0;
  /// Firings simulated across both verify phases; 0 when rejected.
  std::int64_t firings = 0;
  /// Phase-1 max lateness of the leading constrained actor.
  Duration max_lateness;
  /// Faulted mode: the injected margin was positive, and the monitor
  /// attributed the ρ breach to the faulted actor.
  bool fault_margin_positive = false;
  bool fault_named = false;
  /// Certify mode: clauses the checker validated for this item's
  /// certificate (0 when uncertified or rejected before analysis), and
  /// whether the certificate passed.
  std::int64_t certificate_clauses = 0;
  bool certificate_ok = false;
  /// Empty on pass; diagnostics otherwise (newlines preserved).
  std::string detail;
};

/// Journal/report line codec for one item result (single line, newlines
/// in `detail` escaped).  decode returns false on a malformed line.
[[nodiscard]] std::string encode_item_line(const FleetItemResult& result);
[[nodiscard]] bool decode_item_line(const std::string& line,
                                    FleetItemResult* result);

/// Per-class aggregation, in SweepSpec::classes order.
struct FleetClassTally {
  models::ModelClass model_class = models::ModelClass::Chain;
  std::int64_t items = 0;
  std::int64_t passed = 0;
  std::int64_t failed = 0;
  std::int64_t rejected = 0;
  std::int64_t starvations = 0;
  std::int64_t total_capacity = 0;
  std::int64_t firings = 0;
  Duration worst_lateness;
  /// Faulted mode: items whose injected margin was positive / whose
  /// breach the monitor named.
  std::int64_t faults_expected = 0;
  std::int64_t faults_named = 0;
  /// Certify mode: items whose certificate passed the checker, clauses
  /// validated in total, and items whose certificate was rejected.
  std::int64_t certified = 0;
  std::int64_t certificate_clauses = 0;
  std::int64_t certificate_failures = 0;
};

struct FleetReport {
  /// Canonical one-line summary of the spec that produced this report.
  std::string spec_summary;
  std::vector<FleetClassTally> classes;
  /// Every item verdict, in item-index order.
  std::vector<FleetItemResult> items;
  // Grand totals (sums/maxima over `classes`).
  std::int64_t total_items = 0;
  std::int64_t passed = 0;
  std::int64_t failed = 0;
  std::int64_t rejected = 0;
  std::int64_t starvations = 0;
  std::int64_t total_capacity = 0;
  std::int64_t firings = 0;
  Duration worst_lateness;
  std::int64_t faults_expected = 0;
  std::int64_t faults_named = 0;
  std::int64_t certified = 0;
  std::int64_t certificate_clauses = 0;
  std::int64_t certificate_failures = 0;
  // ---- wall-clock section: excluded from canonical_text() ----
  double elapsed_seconds = 0.0;
  double firings_per_second = 0.0;
  std::size_t threads_used = 1;
  /// Items merged from the journal instead of recomputed.
  std::size_t items_resumed = 0;
};

/// The deterministic serialization: spec summary, per-class tallies,
/// totals and (when `include_items`) every item line.  Bit-identical
/// across thread counts and across interrupt+resume.
[[nodiscard]] std::string canonical_text(const FleetReport& report,
                                         bool include_items = true);

/// Human summary for CLIs: canonical tallies plus the wall-clock section.
[[nodiscard]] std::string summary_text(const FleetReport& report);

class FleetSweep {
 public:
  explicit FleetSweep(SweepSpec spec);

  /// The spec's expansion, in item-index order.
  [[nodiscard]] const std::vector<FleetItem>& items() const { return items_; }

  /// Canonical spec summary line (also FleetReport::spec_summary).
  [[nodiscard]] const std::string& spec_summary() const {
    return spec_summary_;
  }

  /// Fingerprint binding a journal to this spec (classes, counts, knobs,
  /// journal_tag — not the custom generator, see SweepSpec::journal_tag).
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }

  /// Runs every item and aggregates.  `threads` <= 1 runs inline on the
  /// caller (no pool, byte-identical to the pre-fleet loops); larger
  /// values run on a pool of that many workers.  With a journal,
  /// already-recorded items are merged without recompute and new results
  /// are appended as they finish.
  [[nodiscard]] FleetReport run(std::size_t threads = 1,
                                io::FleetJournal* journal = nullptr) const;

  /// Runs one item's pipeline — the unit the pool executes, public for
  /// per-item overhead benchmarking and tests.
  [[nodiscard]] FleetItemResult run_item(const FleetItem& item) const;

 private:
  SweepSpec spec_;
  std::vector<FleetItem> items_;
  std::string spec_summary_;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace vrdf::sim
