#include "sim/fault_injection.hpp"

#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/seed_stream.hpp"

namespace vrdf::sim {

namespace {

constexpr std::int64_t kNoEnd = std::numeric_limits<std::int64_t>::max();

[[nodiscard]] std::int64_t window_end(std::int64_t from, std::int64_t firings) {
  if (firings < 0) {
    return kNoEnd;
  }
  return from > kNoEnd - firings ? kNoEnd : from + firings;
}

/// Per-spec hash seed: independent streams per (plan seed, actor, spec
/// position) so composed faults never correlate.  The stream index packs
/// (actor, spec position) into the shared splitmix64 derivation —
/// bit-identical to the inline arithmetic this replaced, so published
/// fault-plan seeds keep replaying the same faults.
[[nodiscard]] std::uint64_t spec_seed(std::uint64_t plan_seed,
                                      dataflow::ActorId actor,
                                      std::size_t spec_index) {
  return util::derive_seed(plan_seed,
                           (static_cast<std::uint64_t>(actor.value()) << 32) +
                               spec_index + 1);
}

}  // namespace

FaultPlan& FaultPlan::rho_overrun(dataflow::ActorId actor, Duration extra,
                                  Rational factor, std::int64_t from_firing,
                                  std::int64_t firings) {
  VRDF_REQUIRE(actor.is_valid(), "fault actor must be valid");
  VRDF_REQUIRE(!extra.is_negative(), "overrun extra must be non-negative");
  VRDF_REQUIRE(factor >= Rational(1), "overrun factor must be >= 1");
  VRDF_REQUIRE(from_firing >= 0, "fault window start must be non-negative");
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::RhoOverrun;
  spec.actor = actor;
  spec.extra = extra;
  spec.factor = factor;
  spec.from_firing = from_firing;
  spec.firings = firings;
  specs_.push_back(spec);
  return *this;
}

FaultPlan& FaultPlan::transient_stall(dataflow::ActorId actor,
                                      std::int64_t at_firing, Duration outage) {
  VRDF_REQUIRE(actor.is_valid(), "fault actor must be valid");
  VRDF_REQUIRE(at_firing >= 0, "stalled firing index must be non-negative");
  VRDF_REQUIRE(outage.is_positive(), "stall outage must be positive");
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::TransientStall;
  spec.actor = actor;
  spec.extra = outage;
  spec.from_firing = at_firing;
  spec.firings = 1;
  specs_.push_back(spec);
  return *this;
}

FaultPlan& FaultPlan::bursty_jitter(dataflow::ActorId actor, Duration max_extra,
                                    std::int64_t burst_length,
                                    std::int64_t burst_period,
                                    std::int64_t from_firing,
                                    std::int64_t firings) {
  VRDF_REQUIRE(actor.is_valid(), "fault actor must be valid");
  VRDF_REQUIRE(max_extra.is_positive(), "jitter maximum must be positive");
  VRDF_REQUIRE(burst_period > 0 && burst_length > 0 &&
                   burst_length <= burst_period,
               "burst pattern must satisfy 0 < length <= period");
  VRDF_REQUIRE(from_firing >= 0, "fault window start must be non-negative");
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::BurstyJitter;
  spec.actor = actor;
  spec.extra = max_extra;
  spec.from_firing = from_firing;
  spec.firings = firings;
  spec.burst_length = burst_length;
  spec.burst_period = burst_period;
  specs_.push_back(spec);
  return *this;
}

FaultPlan& FaultPlan::source_dropout(dataflow::ActorId actor, Duration outage,
                                     std::int64_t every_firings,
                                     std::int64_t from_firing) {
  VRDF_REQUIRE(actor.is_valid(), "fault actor must be valid");
  VRDF_REQUIRE(outage.is_positive(), "drop-out outage must be positive");
  VRDF_REQUIRE(every_firings > 0, "drop-out spacing must be positive");
  VRDF_REQUIRE(from_firing >= 0, "fault window start must be non-negative");
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::SourceDropout;
  spec.actor = actor;
  spec.extra = outage;
  spec.from_firing = from_firing;
  spec.firings = -1;
  spec.burst_length = 1;
  spec.burst_period = every_firings;
  specs_.push_back(spec);
  return *this;
}

void FaultPlan::apply(Simulator& sim) const {
  const dataflow::VrdfGraph& graph = sim.graph();
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const FaultSpec& spec = specs_[i];
    VRDF_REQUIRE(spec.actor.index() < graph.actor_count(),
                 "fault actor does not exist in the simulated graph");
    ResponseTimeFault fault;
    fault.from = spec.from_firing;
    fault.until = window_end(spec.from_firing, spec.firings);
    switch (spec.kind) {
      case FaultSpec::Kind::RhoOverrun:
        // ρ·factor + extra  ==  ρ + (factor − 1)·ρ + extra, folded into
        // one additive constant the tick scale can represent.
        fault.base = spec.extra + graph.actor(spec.actor).response_time *
                                      (spec.factor - Rational(1));
        break;
      case FaultSpec::Kind::TransientStall:
        fault.base = spec.extra;
        break;
      case FaultSpec::Kind::BurstyJitter:
        fault.step = spec.extra / Rational(1024);
        fault.rng_seed = spec_seed(seed_, spec.actor, i);
        fault.burst_length = spec.burst_length;
        fault.burst_period = spec.burst_period;
        break;
      case FaultSpec::Kind::SourceDropout:
        fault.base = spec.extra;
        fault.burst_length = spec.burst_length;
        fault.burst_period = spec.burst_period;
        break;
    }
    if (fault.base.is_zero() && fault.step.is_zero()) {
      continue;  // a zero-extra overrun is a no-op
    }
    sim.add_response_time_fault(spec.actor, fault);
  }
}

std::string FaultPlan::describe(const dataflow::VrdfGraph& graph) const {
  std::ostringstream os;
  os << "fault plan (seed " << seed_ << ")";
  for (const FaultSpec& spec : specs_) {
    os << "\n  ";
    const std::string& name = graph.actor(spec.actor).name;
    switch (spec.kind) {
      case FaultSpec::Kind::RhoOverrun:
        os << "rho_overrun on '" << name << "': rho*"
           << spec.factor.to_string() << " + " << spec.extra.to_string()
           << " from firing " << spec.from_firing;
        if (spec.firings >= 0) {
          os << " for " << spec.firings << " firings";
        }
        break;
      case FaultSpec::Kind::TransientStall:
        os << "transient_stall on '" << name << "': firing "
           << spec.from_firing << " frozen for " << spec.extra.to_string();
        break;
      case FaultSpec::Kind::BurstyJitter:
        os << "bursty_jitter on '" << name << "': up to "
           << spec.extra.to_string() << " on " << spec.burst_length
           << " of every " << spec.burst_period << " firings";
        break;
      case FaultSpec::Kind::SourceDropout:
        os << "source_dropout on '" << name << "': " << spec.extra.to_string()
           << " outage every " << spec.burst_period << " firings";
        break;
    }
  }
  return os.str();
}

}  // namespace vrdf::sim
