// Discrete-event simulator for VRDF graphs.
//
// Implements the model semantics of Sec 3.2 exactly:
//  * a firing is enabled when every input edge of the actor holds at least
//    the firing's consumption quantum;
//  * tokens are consumed atomically at the start of a firing and produced
//    atomically ρ(v) later;
//  * an actor never starts a firing before its previous firing finished;
//  * a token produced at time t is consumable at time t (ties are resolved
//    by processing all productions at t before the enabling scan).
//
// Time is exact (rational seconds); runs are fully deterministic: events
// are ordered by (time, sequence number), the enabling scan visits actors
// in id order, and quantum sources are deterministic streams.
//
// Buffer-paired edges share one quantum stream per endpoint: the producer
// of a buffer draws one value q per firing and uses it both as the space
// consumption (from e_ba) and the data production (onto e_ab); the
// consumer symmetrically.  This is the task-level rule "a task requires as
// many empty containers as it produces and returns as many as it
// consumed" (Sec 3.3).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "dataflow/vrdf_graph.hpp"
#include "sim/quantum_source.hpp"
#include "sim/sim_types.hpp"

namespace vrdf::sim {

/// One recorded firing (optional, see Simulator::record_firings).
struct FiringRecord {
  dataflow::ActorId actor;
  std::int64_t index = 0;  // 0-based per-actor firing index
  TimePoint start;
  TimePoint finish;
};

/// One recorded token transfer on an edge (optional, see
/// Simulator::record_transfers).  `cumulative` counts from 1.
struct EdgeTransfer {
  std::int64_t cumulative = 0;
  std::int64_t count = 0;
  TimePoint time;
};

class Simulator {
public:
  /// The graph is copied conceptually: the simulator snapshots rates,
  /// response times and initial tokens at construction.  The graph object
  /// must outlive the simulator (rate sets are referenced for validation).
  explicit Simulator(const dataflow::VrdfGraph& graph);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Sets the execution mode of an actor (default: self-timed).
  void set_actor_mode(dataflow::ActorId actor, ActorMode mode);

  /// Installs the quantum stream for `actor`'s side of the buffer that
  /// `edge` belongs to (either the data or the space edge may be named).
  /// For bare edges, installs the production stream when `actor` is the
  /// edge's source and the consumption stream when it is the target.
  /// Values outside the edge's rate set cause a ModelError during run().
  void set_quantum_source(dataflow::ActorId actor, dataflow::EdgeId edge,
                          std::unique_ptr<QuantumSource> source);

  /// Fills every port that has no explicit source: singleton rate sets get
  /// a constant source; non-singleton sets get a uniformly random source
  /// seeded from `seed` and the port's position (deterministic).
  void set_default_sources(std::uint64_t seed);

  /// Adds an artificial release delay to one firing of one actor: the
  /// firing may not start before its enabling time plus `delay`.  Used by
  /// the monotonicity/linearity property checks (Defs 1 and 2).
  void inject_release_delay(dataflow::ActorId actor, std::int64_t firing_index,
                            Duration delay);

  /// Makes the actor's firings finish early at random: each firing's
  /// duration is drawn uniformly from a 1024-step grid over
  /// [min_fraction·ρ(v), ρ(v)].  ρ(v) is a *worst-case* response time in
  /// the model, so capacities must tolerate any such run (monotonicity,
  /// Def 1); this is the engine's failure-injection hook for testing that
  /// claim end to end.  min_fraction must be in (0, 1].
  void set_response_time_jitter(dataflow::ActorId actor, std::uint64_t seed,
                                Rational min_fraction);

  /// Enables per-firing records for an actor (capped at `max_records`).
  void record_firings(dataflow::ActorId actor, std::size_t max_records = 1 << 20);
  /// Enables production/consumption transfer records for an edge.
  void record_transfers(dataflow::EdgeId edge, std::size_t max_records = 1 << 20);

  /// Runs until the stop condition triggers; may be called repeatedly with
  /// new conditions to continue a run.
  RunResult run(const StopCondition& stop);

  /// The simulator's full timing-relevant state at the current instant:
  /// token counts per edge plus, for each busy actor, the remaining time
  /// to its firing's finish.  Two runs of a data-independent graph that
  /// reach equal snapshots evolve identically from there on (used by the
  /// steady-state detector).
  struct StateSnapshot {
    std::vector<std::int64_t> tokens;            // per edge id
    std::vector<std::optional<Rational>> remaining;  // per actor id, seconds

    friend bool operator==(const StateSnapshot&, const StateSnapshot&) = default;
  };
  [[nodiscard]] StateSnapshot snapshot() const;

  [[nodiscard]] const EdgeMetrics& edge_metrics(dataflow::EdgeId edge) const;
  [[nodiscard]] const ActorMetrics& actor_metrics(dataflow::ActorId actor) const;
  [[nodiscard]] const std::vector<FiringRecord>& firings(dataflow::ActorId actor) const;
  /// Token productions onto `edge`, in time order (requires record_transfers).
  [[nodiscard]] const std::vector<EdgeTransfer>& production_events(
      dataflow::EdgeId edge) const;
  /// Token consumptions from `edge`, in time order.
  [[nodiscard]] const std::vector<EdgeTransfer>& consumption_events(
      dataflow::EdgeId edge) const;
  [[nodiscard]] TimePoint now() const { return now_; }

private:
  struct Port {
    dataflow::EdgeId in_edge;   // consumed from at start (may be invalid)
    dataflow::EdgeId out_edge;  // produced onto at finish (may be invalid)
    std::unique_ptr<QuantumSource> source;
  };

  struct ActorState {
    ActorMode mode;
    bool busy = false;
    std::int64_t started = 0;
    std::int64_t finished = 0;
    std::vector<Port> ports;
    /// Quanta drawn for the next firing (aligned with ports); valid when
    /// quanta_drawn.
    std::vector<std::int64_t> pending_quanta;
    bool quanta_drawn = false;
    /// Quanta, start and finish time of the in-flight firing.
    std::vector<std::int64_t> active_quanta;
    TimePoint active_start;
    TimePoint active_finish;
    /// Pending starvation record index (periodic actors that missed an
    /// activation and have not started it yet).
    std::optional<std::size_t> open_starvation;
    std::optional<TimePoint> last_start;
    /// Release gate for the pending firing once its delay elapsed.
    std::optional<TimePoint> release_not_before;
    std::unordered_map<std::int64_t, Duration> release_delays;
    /// Response-time jitter (failure injection); 0 numerator == disabled.
    std::uint64_t jitter_state = 0;
    bool jitter_enabled = false;
    Rational jitter_min_fraction;
    bool record = false;
    std::size_t record_cap = 0;
  };

  struct Event {
    TimePoint time;
    std::uint64_t seq;
    enum class Kind { FiringFinish, Wakeup } kind;
    dataflow::ActorId actor;  // FiringFinish: the actor finishing
  };

  void push_event(Event e);
  [[nodiscard]] bool event_earlier(const Event& a, const Event& b) const;
  void draw_quanta(dataflow::ActorId actor);
  /// Earliest time >= now at which `actor` may start per its mode and
  /// release delays; nullopt when the mode forbids starting yet and no
  /// wakeup is needed (already scheduled).
  [[nodiscard]] bool tokens_available(const ActorState& s) const;
  void start_firing(dataflow::ActorId actor);
  void finish_firing(dataflow::ActorId actor);
  /// Scans for startable actors at `now_` until a fixed point; schedules
  /// wakeups for time-gated actors.
  void enabling_scan();
  void add_tokens(dataflow::EdgeId edge, std::int64_t count);
  void remove_tokens(dataflow::EdgeId edge, std::int64_t count);

  const dataflow::VrdfGraph& graph_;
  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::vector<Event> heap_;  // binary heap via std::push_heap (min-heap)
  std::vector<ActorState> actors_;
  std::vector<EdgeMetrics> edges_;
  std::vector<ActorMetrics> actor_metrics_;
  std::vector<std::vector<FiringRecord>> firing_records_;
  std::vector<std::vector<EdgeTransfer>> production_records_;
  std::vector<std::vector<EdgeTransfer>> consumption_records_;
  std::vector<char> transfer_recording_;
  std::vector<std::size_t> transfer_caps_;
  std::vector<Starvation> starvations_;
  std::int64_t total_firings_ = 0;
  /// Wakeups already scheduled per actor (avoid duplicates).
  std::vector<std::optional<TimePoint>> scheduled_wakeup_;
};

}  // namespace vrdf::sim
