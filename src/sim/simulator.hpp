// Discrete-event simulator for VRDF graphs.
//
// Implements the model semantics of Sec 3.2 exactly:
//  * a firing is enabled when every input edge of the actor holds at least
//    the firing's consumption quantum;
//  * tokens are consumed atomically at the start of a firing and produced
//    atomically ρ(v) later;
//  * an actor never starts a firing before its previous firing finished;
//  * a token produced at time t is consumable at time t (ties are resolved
//    by processing all productions at t before the enabling pass).
//
// Time is exact; runs are fully deterministic: events are ordered by
// (time, sequence number) and quantum sources are deterministic streams.
//
// Internally the engine runs on an integer tick clock whenever possible:
// before the first run it collects every rational time constant the
// simulation can produce (response times, periods, offsets, injected
// delays, the 1/1024 jitter grid, the stop horizon) and sets the tick
// resolution to the LCM of their denominators, so the hot path is int64
// arithmetic instead of rational gcd normalization.  When no such scale
// exists (denominator LCM overflow) it falls back to exact Rational time
// with a diagnostic; both paths produce bit-for-bit identical results.
// See docs/performance.md.
//
// Buffer-paired edges share one quantum stream per endpoint: the producer
// of a buffer draws one value q per firing and uses it both as the space
// consumption (from e_ba) and the data production (onto e_ab); the
// consumer symmetrically.  This is the task-level rule "a task requires as
// many empty containers as it produces and returns as many as it
// consumed" (Sec 3.3).
#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dataflow/vrdf_graph.hpp"
#include "sim/quantum_source.hpp"
#include "sim/sim_types.hpp"
#include "util/time_scale.hpp"

namespace vrdf::sim {

/// One recorded firing (optional, see Simulator::record_firings).
struct FiringRecord {
  dataflow::ActorId actor;
  std::int64_t index = 0;  // 0-based per-actor firing index
  TimePoint start;
  TimePoint finish;
};

/// One recorded token transfer on an edge (optional, see
/// Simulator::record_transfers).  `cumulative` counts from 1.
struct EdgeTransfer {
  std::int64_t cumulative = 0;
  std::int64_t count = 0;
  TimePoint time;
};

/// One compiled response-time perturbation of one actor — the low-level
/// form every fault kind of sim/fault_injection.hpp lowers to.  On each
/// affected firing k (from <= k < until and, when burst_period > 0, with
/// (k − from) mod burst_period < burst_length) the firing's duration
/// becomes ρ + base + step·u_k, where u_k ∈ [0, 1024] is a stateless
/// splitmix64 hash of (rng_seed, k) — replayable regardless of run
/// segmentation, and exactly representable by a tick clock because every
/// grid point is base + step·integer (the same trick as the jitter grid).
struct ResponseTimeFault {
  /// Additive extra duration per affected firing (>= 0).
  Duration base;
  /// Grid step of the random extra (zero disables the random part).
  Duration step;
  /// Seed of the per-firing hash (only read when step > 0).
  std::uint64_t rng_seed = 0;
  /// Affected firing window [from, until) in 0-based firing indices.
  std::int64_t from = 0;
  std::int64_t until = std::numeric_limits<std::int64_t>::max();
  /// Burst pattern within the window: the first `burst_length` of every
  /// `burst_period` firings are affected; 0/0 affects every firing.
  std::int64_t burst_length = 0;
  std::int64_t burst_period = 0;
};

namespace detail {

/// Staged per-port configuration (before the engine is instantiated).
struct PortConfig {
  dataflow::EdgeId in_edge;   // consumed from at start (may be invalid)
  dataflow::EdgeId out_edge;  // produced onto at finish (may be invalid)
  std::unique_ptr<QuantumSource> source;
  /// Source was installed by set_default_sources for a singleton rate set
  /// (lets the engine skip the virtual stream call on the draw hot path).
  bool constant = false;
  /// Source was installed by set_default_sources (samples the governing
  /// rate set, so per-draw validation is redundant).
  bool trusted = false;
};

struct ActorConfig {
  ActorMode mode;
  std::vector<PortConfig> ports;
  std::unordered_map<std::int64_t, Rational> release_delays;  // seconds
  bool jitter_enabled = false;
  std::uint64_t jitter_seed_state = 0;
  Rational jitter_min_fraction;
  std::vector<ResponseTimeFault> faults;
  bool record = false;
  std::size_t record_cap = 0;
};

/// Everything configured on a Simulator before its first run; consumed by
/// the engine when the clock is chosen.
struct SimConfig {
  std::vector<ActorConfig> actors;
  std::vector<char> transfer_recording;
  std::vector<std::size_t> transfer_caps;
};

struct TickClock;
struct RationalClock;
template <class Clock>
class Engine;

}  // namespace detail

class Simulator {
public:
  /// The graph is copied conceptually: the simulator snapshots rates,
  /// response times and initial tokens at construction.  The graph object
  /// must outlive the simulator (rate sets are referenced for validation).
  explicit Simulator(const dataflow::VrdfGraph& graph);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Selects the internal time representation.  Auto (the default) uses
  /// the integer tick clock when a scale exists and exact rationals
  /// otherwise; the Force modes pin one path (ForceTickClock throws
  /// ContractError when no scale exists).  Must be called before the
  /// first run.
  void set_clock_mode(ClockMode mode);
  /// True once the engine runs on the integer tick clock (false before
  /// the first run and in the Rational fallback).
  [[nodiscard]] bool using_tick_clock() const;
  /// Ticks per second of the active tick clock, if any.
  [[nodiscard]] std::optional<std::int64_t> tick_resolution() const;

  /// Sets the execution mode of an actor (default: self-timed).
  void set_actor_mode(dataflow::ActorId actor, ActorMode mode);

  /// Installs the quantum stream for `actor`'s side of the buffer that
  /// `edge` belongs to (either the data or the space edge may be named).
  /// For bare edges, installs the production stream when `actor` is the
  /// edge's source and the consumption stream when it is the target.
  /// Values outside the edge's rate set cause a ModelError during run().
  void set_quantum_source(dataflow::ActorId actor, dataflow::EdgeId edge,
                          std::unique_ptr<QuantumSource> source);

  /// Fills every port that has no explicit source: singleton rate sets get
  /// a constant source; non-singleton sets get a uniformly random source
  /// seeded from `seed` and the port's position (deterministic).
  void set_default_sources(std::uint64_t seed);

  /// Adds an artificial release delay to one firing of one actor: the
  /// firing may not start before its enabling time plus `delay`.  Used by
  /// the monotonicity/linearity property checks (Defs 1 and 2).
  void inject_release_delay(dataflow::ActorId actor, std::int64_t firing_index,
                            Duration delay);

  /// Makes the actor's firings finish early at random: each firing's
  /// duration is drawn uniformly from a 1024-step grid over
  /// [min_fraction·ρ(v), ρ(v)].  ρ(v) is a *worst-case* response time in
  /// the model, so capacities must tolerate any such run (monotonicity,
  /// Def 1); this is the engine's failure-injection hook for testing that
  /// claim end to end.  min_fraction must be in (0, 1].
  void set_response_time_jitter(dataflow::ActorId actor, std::uint64_t seed,
                                Rational min_fraction);

  /// Low-level fault-injection hook: appends one response-time
  /// perturbation to `actor` — affected firings take ρ + extra instead of
  /// ρ, i.e. the actor *violates* its declared worst case (unlike jitter,
  /// which stays within it).  Faults on one actor compose additively per
  /// firing.  The friendly, seeded front-end is sim::FaultPlan
  /// (sim/fault_injection.hpp).  base/step must be non-negative.
  void add_response_time_fault(dataflow::ActorId actor,
                               const ResponseTimeFault& fault);

  /// The graph this simulator was built from.
  [[nodiscard]] const dataflow::VrdfGraph& graph() const { return graph_; }

  /// Enables per-firing records for an actor (capped at `max_records`).
  void record_firings(dataflow::ActorId actor, std::size_t max_records = 1 << 20);
  /// Enables production/consumption transfer records for an edge.
  void record_transfers(dataflow::EdgeId edge, std::size_t max_records = 1 << 20);

  /// Runs until the stop condition triggers; may be called repeatedly with
  /// new conditions to continue a run.
  RunResult run(const StopCondition& stop);

  /// The simulator's full timing-relevant state at the current instant:
  /// token counts per edge plus, for each busy actor, the remaining time
  /// to its firing's finish.  Two runs of a data-independent graph that
  /// reach equal snapshots evolve identically from there on (used by the
  /// steady-state detector).
  struct StateSnapshot {
    std::vector<std::int64_t> tokens;            // per edge id
    std::vector<std::optional<Rational>> remaining;  // per actor id, seconds

    friend bool operator==(const StateSnapshot&, const StateSnapshot&) = default;
  };
  [[nodiscard]] StateSnapshot snapshot() const;

  [[nodiscard]] const EdgeMetrics& edge_metrics(dataflow::EdgeId edge) const;
  [[nodiscard]] const ActorMetrics& actor_metrics(dataflow::ActorId actor) const;
  [[nodiscard]] const std::vector<FiringRecord>& firings(dataflow::ActorId actor) const;
  /// Token productions onto `edge`, in time order (requires record_transfers).
  [[nodiscard]] const std::vector<EdgeTransfer>& production_events(
      dataflow::EdgeId edge) const;
  /// Token consumptions from `edge`, in time order.
  [[nodiscard]] const std::vector<EdgeTransfer>& consumption_events(
      dataflow::EdgeId edge) const;
  [[nodiscard]] TimePoint now() const;

private:
  [[nodiscard]] bool has_engine() const {
    return tick_ != nullptr || rational_ != nullptr;
  }
  /// Applies `fn` to the live engine; false when none exists yet (the
  /// caller then updates the staged config instead).  Defined in
  /// simulator.cpp (all uses live there).
  template <typename Fn>
  bool forward_config(Fn&& fn);
  /// Reads through the live engine, or `fallback` before the first run.
  template <typename Fn, typename Fallback>
  decltype(auto) dispatch(Fn&& fn, Fallback&& fallback) const;
  /// Chooses the clock for the first run and instantiates the engine.
  void create_engine(const StopCondition& stop);
  /// LCM tick scale over every denominator the configuration can produce,
  /// or nullopt when it overflows the cap (Rational fallback).
  [[nodiscard]] std::optional<TimeScale> compute_scale(
      const StopCondition& stop) const;
  /// Moves a live tick engine onto the exact Rational clock (used when a
  /// later stop horizon is not representable at the chosen scale).
  void fall_back_to_rational(const char* why);
  void check_actor(dataflow::ActorId actor) const;
  void check_edge(dataflow::EdgeId edge) const;

  const dataflow::VrdfGraph& graph_;
  ClockMode clock_mode_ = ClockMode::Auto;
  detail::SimConfig config_;  // staged until the engine exists
  std::unique_ptr<detail::Engine<detail::TickClock>> tick_;
  std::unique_ptr<detail::Engine<detail::RationalClock>> rational_;
  // Pre-run answers for the metric accessors (initial token counts, zeroed
  // actor metrics, empty record vectors).
  std::vector<EdgeMetrics> initial_edge_metrics_;
  std::vector<ActorMetrics> initial_actor_metrics_;
};

}  // namespace vrdf::sim
