// Quantum sources — where the "data dependence" of data-dependent
// inter-task communication comes from.
//
// In the task model the amount of data a task moves per execution depends
// on the processed stream (e.g. the byte count of a variable-bit-rate MP3
// frame).  The analysis only knows the *set* of possible quanta; a
// simulation run needs a concrete sequence.  A QuantumSource produces that
// sequence: one value per firing index, deterministically (sources are
// cloneable so that a verification re-run sees the identical stream).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dataflow/rate_set.hpp"

namespace vrdf::sim {

class QuantumSource {
public:
  virtual ~QuantumSource() = default;

  /// Quantum for the given 0-based firing index.  Called exactly once per
  /// index, in increasing order.
  [[nodiscard]] virtual std::int64_t next(std::int64_t firing_index) = 0;

  /// A fresh source that will reproduce the same sequence from index 0.
  [[nodiscard]] virtual std::unique_ptr<QuantumSource> clone() const = 0;

  /// Human-readable description for diagnostics.
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Always `value`.
[[nodiscard]] std::unique_ptr<QuantumSource> constant_source(std::int64_t value);

/// Cycles through `values` (v0, v1, ..., vk-1, v0, ...).
[[nodiscard]] std::unique_ptr<QuantumSource> cyclic_source(
    std::vector<std::int64_t> values);

/// Plays `prefix` once, then repeats `tail_value` forever.
[[nodiscard]] std::unique_ptr<QuantumSource> scripted_source(
    std::vector<std::int64_t> prefix, std::int64_t tail_value);

/// Uniformly random element of `set` (mt19937_64 with `seed`).
[[nodiscard]] std::unique_ptr<QuantumSource> uniform_random_source(
    dataflow::RateSet set, std::uint64_t seed);

/// The set's minimum forever — the adversarial case of Fig 1 (a consumer
/// that always takes its minimum quantum maximises the required capacity).
[[nodiscard]] std::unique_ptr<QuantumSource> always_min_source(
    const dataflow::RateSet& set);

/// The set's maximum forever.
[[nodiscard]] std::unique_ptr<QuantumSource> always_max_source(
    const dataflow::RateSet& set);

/// Random walk over the set's sorted elements: moves at most `max_step`
/// positions per firing — models smoothly varying bit-rates.
[[nodiscard]] std::unique_ptr<QuantumSource> random_walk_source(
    dataflow::RateSet set, std::uint64_t seed, std::size_t max_step = 1);

/// Alternates min, max, min, max, ... — maximal per-firing variation.
[[nodiscard]] std::unique_ptr<QuantumSource> min_max_alternating_source(
    const dataflow::RateSet& set);

}  // namespace vrdf::sim
