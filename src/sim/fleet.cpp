#include "sim/fleet.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <future>
#include <sstream>

#include "analysis/buffer_sizing.hpp"
#include "analysis/certificate.hpp"
#include "analysis/checker.hpp"
#include "analysis/robustness.hpp"
#include "io/fleet_journal.hpp"
#include "sim/fault_injection.hpp"
#include "util/error.hpp"
#include "util/seed_stream.hpp"
#include "util/thread_pool.hpp"

namespace vrdf::sim {

namespace {

using models::ModelClass;

[[nodiscard]] bool class_has_source_mode(ModelClass model_class) {
  return model_class == ModelClass::Chain ||
         model_class == ModelClass::ForkJoin ||
         model_class == ModelClass::Cyclic;
}

[[nodiscard]] std::string escape_detail(const std::string& detail) {
  std::string out;
  out.reserve(detail.size());
  for (const char c : detail) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

[[nodiscard]] std::string unescape_detail(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '\\' && i + 1 < escaped.size()) {
      ++i;
      out += escaped[i] == 'n' ? '\n' : escaped[i];
    } else {
      out += escaped[i];
    }
  }
  return out;
}

/// `key=value` token reader over one encoded line.
class FieldReader {
 public:
  explicit FieldReader(std::istringstream& in) : in_(in) {}

  bool next(const char* key, std::string* value) {
    std::string token;
    if (!(in_ >> token)) {
      return false;
    }
    const std::string prefix = std::string(key) + "=";
    if (token.rfind(prefix, 0) != 0) {
      return false;
    }
    *value = token.substr(prefix.size());
    return true;
  }

  bool next_int(const char* key, std::int64_t* value) {
    std::string text;
    if (!next(key, &text) || text.empty()) {
      return false;
    }
    errno = 0;
    char* end = nullptr;
    const long long parsed = std::strtoll(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size()) {
      return false;
    }
    *value = parsed;
    return true;
  }

  bool next_bool(const char* key, bool* value) {
    std::int64_t raw = 0;
    if (!next_int(key, &raw) || (raw != 0 && raw != 1)) {
      return false;
    }
    *value = raw == 1;
    return true;
  }

 private:
  std::istringstream& in_;
};

void tally_item(FleetClassTally& tally, const FleetItemResult& result) {
  ++tally.items;
  if (result.rejected) {
    ++tally.rejected;
  } else if (result.pass) {
    ++tally.passed;
  } else {
    ++tally.failed;
  }
  tally.starvations += result.starvation_count;
  tally.total_capacity += result.total_capacity;
  tally.firings += result.firings;
  if (result.max_lateness > tally.worst_lateness) {
    tally.worst_lateness = result.max_lateness;
  }
  tally.faults_expected += result.fault_margin_positive ? 1 : 0;
  tally.faults_named += result.fault_named ? 1 : 0;
  tally.certified += result.certificate_ok ? 1 : 0;
  tally.certificate_clauses += result.certificate_clauses;
  tally.certificate_failures +=
      (result.certificate_clauses > 0 && !result.certificate_ok) ? 1 : 0;
}

void write_tally_fields(std::ostringstream& os, const FleetClassTally& t) {
  os << "items=" << t.items << " passed=" << t.passed << " failed=" << t.failed
     << " rejected=" << t.rejected << " starvations=" << t.starvations
     << " capacity=" << t.total_capacity << " firings=" << t.firings
     << " worst_lateness=" << t.worst_lateness.seconds().to_string()
     << " faults_expected=" << t.faults_expected
     << " faults_named=" << t.faults_named
     << " certified=" << t.certified
     << " cert_clauses=" << t.certificate_clauses
     << " cert_failures=" << t.certificate_failures;
}

[[nodiscard]] std::uint64_t fingerprint_text(const std::string& text,
                                             std::uint64_t tag) {
  // FNV-1a over the canonical spec summary, finalized through the shared
  // splitmix64 mixer with the caller's journal tag.
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const unsigned char c : text) {
    hash = (hash ^ c) * 0x100000001B3ULL;
  }
  return util::derive_seed(hash, tag);
}

}  // namespace

const char* constraint_mode_name(ConstraintMode mode) {
  return mode == ConstraintMode::Sink ? "sink" : "source";
}

std::string encode_item_line(const FleetItemResult& result) {
  std::ostringstream os;
  os << "item " << result.item.index
     << " class=" << models::class_name(result.item.model_class)
     << " seed=" << result.item.seed_ordinal
     << " headroom=" << result.item.headroom
     << " mode=" << constraint_mode_name(result.item.mode)
     << " pass=" << (result.pass ? 1 : 0)
     << " rejected=" << (result.rejected ? 1 : 0)
     << " starvations=" << result.starvation_count
     << " capacity=" << result.total_capacity << " firings=" << result.firings
     << " lateness=" << result.max_lateness.seconds().to_string()
     << " fault_expected=" << (result.fault_margin_positive ? 1 : 0)
     << " fault_named=" << (result.fault_named ? 1 : 0)
     << " cert_clauses=" << result.certificate_clauses
     << " cert_ok=" << (result.certificate_ok ? 1 : 0)
     << " detail=" << escape_detail(result.detail);
  return os.str();
}

bool decode_item_line(const std::string& line, FleetItemResult* result) {
  if (line.rfind("item ", 0) != 0) {
    return false;
  }
  // `detail=` takes the rest of the line (it may contain spaces); split it
  // off before tokenizing the fixed-shape fields.
  const std::size_t detail_pos = line.find(" detail=");
  if (detail_pos == std::string::npos) {
    return false;
  }
  FleetItemResult decoded;
  decoded.detail = unescape_detail(line.substr(detail_pos + 8));
  std::istringstream in(line.substr(5, detail_pos - 5));
  std::int64_t index = 0;
  if (!(in >> index) || index < 0) {
    return false;
  }
  decoded.item.index = static_cast<std::size_t>(index);
  FieldReader fields(in);
  std::string class_text;
  std::string mode_text;
  std::string lateness_text;
  std::int64_t seed = 0;
  if (!fields.next("class", &class_text) || !fields.next_int("seed", &seed) ||
      seed < 0 || !fields.next_int("headroom", &decoded.item.headroom) ||
      !fields.next("mode", &mode_text) ||
      !fields.next_bool("pass", &decoded.pass) ||
      !fields.next_bool("rejected", &decoded.rejected) ||
      !fields.next_int("starvations", &decoded.starvation_count) ||
      !fields.next_int("capacity", &decoded.total_capacity) ||
      !fields.next_int("firings", &decoded.firings) ||
      !fields.next("lateness", &lateness_text) ||
      !fields.next_bool("fault_expected", &decoded.fault_margin_positive) ||
      !fields.next_bool("fault_named", &decoded.fault_named) ||
      !fields.next_int("cert_clauses", &decoded.certificate_clauses) ||
      !fields.next_bool("cert_ok", &decoded.certificate_ok)) {
    return false;
  }
  const auto model_class = models::parse_model_class(class_text);
  if (!model_class.has_value()) {
    return false;
  }
  decoded.item.model_class = *model_class;
  decoded.item.seed_ordinal = static_cast<std::uint64_t>(seed);
  if (mode_text == "sink") {
    decoded.item.mode = ConstraintMode::Sink;
  } else if (mode_text == "source") {
    decoded.item.mode = ConstraintMode::Source;
  } else {
    return false;
  }
  try {
    decoded.max_lateness = Duration(Rational::from_string(lateness_text));
  } catch (const Error&) {
    return false;
  }
  *result = decoded;
  return true;
}

FleetSweep::FleetSweep(SweepSpec spec) : spec_(std::move(spec)) {
  VRDF_REQUIRE(!spec_.classes.empty(), "sweep needs at least one model class");
  VRDF_REQUIRE(spec_.seeds_per_class > 0, "sweep needs at least one seed");
  VRDF_REQUIRE(!spec_.headroom_levels.empty(),
               "sweep needs at least one headroom level");
  VRDF_REQUIRE(!spec_.modes.empty(), "sweep needs at least one mode");
  VRDF_REQUIRE(spec_.observe_firings > 0, "need at least one observed firing");

  for (const ModelClass model_class : spec_.classes) {
    for (const ConstraintMode mode : spec_.modes) {
      if (mode == ConstraintMode::Source &&
          !class_has_source_mode(model_class)) {
        continue;
      }
      for (const std::int64_t headroom : spec_.headroom_levels) {
        VRDF_REQUIRE(headroom >= 0, "headroom levels must be non-negative");
        for (std::int64_t ordinal = 1; ordinal <= spec_.seeds_per_class;
             ++ordinal) {
          FleetItem item;
          item.index = items_.size();
          item.model_class = model_class;
          item.seed_ordinal = static_cast<std::uint64_t>(ordinal);
          item.headroom = headroom;
          item.mode = mode;
          item.rng_seed = util::derive_seed(spec_.base_seed, item.index);
          items_.push_back(item);
        }
      }
    }
  }

  std::ostringstream os;
  os << "classes=";
  for (std::size_t i = 0; i < spec_.classes.size(); ++i) {
    os << (i == 0 ? "" : ",") << models::class_name(spec_.classes[i]);
  }
  os << " modes=";
  for (std::size_t i = 0; i < spec_.modes.size(); ++i) {
    os << (i == 0 ? "" : ",") << constraint_mode_name(spec_.modes[i]);
  }
  os << " headrooms=";
  for (std::size_t i = 0; i < spec_.headroom_levels.size(); ++i) {
    os << (i == 0 ? "" : ",") << spec_.headroom_levels[i];
  }
  os << " seeds_per_class=" << spec_.seeds_per_class
     << " base_seed=" << spec_.base_seed
     << " response_fraction=" << spec_.response_fraction.to_string()
     << " variable=" << spec_.variable_percent
     << " zero=" << spec_.zero_percent
     << " observe=" << spec_.observe_firings
     << " faulted=" << (spec_.faulted ? 1 : 0)
     << " certify=" << (spec_.certify ? 1 : 0)
     << " generator=" << (spec_.generator ? "custom" : "default")
     << " items=" << items_.size();
  spec_summary_ = os.str();
  fingerprint_ = fingerprint_text(spec_summary_, spec_.journal_tag);
}

FleetItemResult FleetSweep::run_item(const FleetItem& item) const {
  FleetItemResult result;
  result.item = item;
  try {
    models::SyntheticModel model;
    if (spec_.generator) {
      model = spec_.generator(item);
    } else {
      models::RandomModelSpec random;
      random.model_class = item.model_class;
      random.seed = item.rng_seed;
      random.response_fraction = spec_.response_fraction;
      random.variable_percent = spec_.variable_percent;
      random.zero_percent = spec_.zero_percent;
      random.source_constrained = item.mode == ConstraintMode::Source;
      model = models::make_random_model(random);
    }

    const analysis::GraphAnalysis sized =
        analysis::compute_buffer_capacities(model.graph, model.constraints);
    if (!sized.admissible) {
      result.rejected = true;
      result.detail = sized.diagnostics.empty() ? "analysis rejected the model"
                                                : sized.diagnostics.front();
      return result;
    }
    result.total_capacity = sized.total_capacity;
    if (spec_.certify) {
      // Certify before capacities/headroom install: the certificate's
      // parameter binding (ρ/δ) is against the analysed graph.
      const analysis::Certificate cert =
          analysis::make_certificate(model.graph, sized);
      const analysis::CertificateCheck check =
          analysis::check_certificate(model.graph, cert);
      result.certificate_clauses =
          static_cast<std::int64_t>(check.clauses_checked);
      result.certificate_ok = check.ok;
      if (!check.ok) {
        result.detail = "certificate: " + check.first_violation();
        return result;
      }
    }
    analysis::apply_capacities(model.graph, sized);
    if (item.headroom > 0) {
      for (const analysis::PairAnalysis& pair : sized.pairs) {
        const dataflow::EdgeId space = pair.buffer.space;
        model.graph.set_initial_tokens(
            space, model.graph.edge(space).initial_tokens + item.headroom);
      }
    }

    VerifyOptions options;
    options.observe_firings = spec_.observe_firings;
    options.default_seed = util::derive_seed(item.rng_seed, 1);
    options.monitor = spec_.faulted;

    SimulatorConfigurer configure;
    FaultPlan plan(item.rng_seed);
    dataflow::ActorId faulted_actor;
    if (spec_.faulted) {
      const analysis::RobustnessReport margins =
          analysis::robustness_margins(model.graph, model.constraints);
      if (!margins.ok) {
        result.rejected = true;
        result.detail = margins.diagnostics.empty()
                            ? "robustness margins unavailable"
                            : margins.diagnostics.front();
        return result;
      }
      // Inject the strongest within-margin stress: the whole tolerable
      // overrun of the largest-margin actor, on every firing.
      const analysis::ActorMargin* target = &margins.actors.front();
      for (const analysis::ActorMargin& margin : margins.actors) {
        if (margin.margin > target->margin) {
          target = &margin;
        }
      }
      faulted_actor = target->actor;
      result.fault_margin_positive = target->margin.is_positive();
      plan.rho_overrun(target->actor, target->margin);
      configure = [&plan](Simulator& sim) { plan.apply(sim); };
    }

    const VerifyResult verdict =
        verify_throughput(model.graph, model.constraints, configure, options);
    result.pass = verdict.ok;
    result.starvation_count = verdict.starvation_count;
    result.firings = verdict.firings_simulated;
    result.max_lateness = verdict.max_lateness_phase1;
    if (!verdict.ok) {
      result.detail = verdict.detail;
    }
    if (spec_.faulted && verdict.monitor.has_value() &&
        !verdict.monitor->rho_conformant) {
      for (const RhoViolation& violation : verdict.monitor->rho_violations) {
        if (violation.actor == faulted_actor) {
          result.fault_named = true;
          break;
        }
      }
    }
  } catch (const Error& error) {
    result.pass = false;
    result.rejected = true;
    result.detail = error.what();
  }
  return result;
}

FleetReport FleetSweep::run(std::size_t threads,
                            io::FleetJournal* journal) const {
  const auto started = std::chrono::steady_clock::now();
  std::vector<FleetItemResult> results(items_.size());
  std::vector<char> done(items_.size(), 0);
  std::size_t resumed = 0;
  if (journal != nullptr) {
    VRDF_REQUIRE(journal->fingerprint() == fingerprint_,
                 "journal was written for a different sweep spec");
    for (std::size_t i = 0; i < items_.size(); ++i) {
      if (journal->lookup(i, &results[i])) {
        done[i] = 1;
        ++resumed;
      }
    }
  }

  std::int64_t fresh_firings = 0;
  const auto work = [&](std::size_t i) {
    results[i] = run_item(items_[i]);
    if (journal != nullptr) {
      journal->record(results[i]);  // thread-safe append + flush
    }
  };
  if (threads <= 1) {
    for (std::size_t i = 0; i < items_.size(); ++i) {
      if (!done[i]) {
        work(i);
      }
    }
  } else {
    util::ThreadPool pool(threads);
    std::vector<std::future<void>> futures;
    futures.reserve(items_.size());
    for (std::size_t i = 0; i < items_.size(); ++i) {
      if (!done[i]) {
        futures.push_back(pool.submit([&work, i] { work(i); }));
      }
    }
    for (std::future<void>& future : futures) {
      future.get();  // propagate the first worker exception, if any
    }
  }
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (!done[i]) {
      fresh_firings += results[i].firings;
    }
  }

  // Merge in item order — the aggregation is independent of which worker
  // finished when, so the report bytes match across thread counts.
  FleetReport report;
  report.spec_summary = spec_summary_;
  report.classes.reserve(spec_.classes.size());
  for (const ModelClass model_class : spec_.classes) {
    FleetClassTally tally;
    tally.model_class = model_class;
    report.classes.push_back(tally);
  }
  for (const FleetItemResult& result : results) {
    for (FleetClassTally& tally : report.classes) {
      if (tally.model_class == result.item.model_class) {
        tally_item(tally, result);
        break;
      }
    }
  }
  for (const FleetClassTally& tally : report.classes) {
    report.total_items += tally.items;
    report.passed += tally.passed;
    report.failed += tally.failed;
    report.rejected += tally.rejected;
    report.starvations += tally.starvations;
    report.total_capacity += tally.total_capacity;
    report.firings += tally.firings;
    if (tally.worst_lateness > report.worst_lateness) {
      report.worst_lateness = tally.worst_lateness;
    }
    report.faults_expected += tally.faults_expected;
    report.faults_named += tally.faults_named;
    report.certified += tally.certified;
    report.certificate_clauses += tally.certificate_clauses;
    report.certificate_failures += tally.certificate_failures;
  }
  report.items = std::move(results);

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - started;
  report.elapsed_seconds = elapsed.count();
  report.firings_per_second = report.elapsed_seconds > 0.0
                                  ? static_cast<double>(fresh_firings) /
                                        report.elapsed_seconds
                                  : 0.0;
  report.threads_used = std::max<std::size_t>(threads, 1);
  report.items_resumed = resumed;
  return report;
}

std::string canonical_text(const FleetReport& report, bool include_items) {
  std::ostringstream os;
  os << "vrdf-fleet-report v1\n";
  os << "spec " << report.spec_summary << '\n';
  for (const FleetClassTally& tally : report.classes) {
    os << "class " << models::class_name(tally.model_class) << ' ';
    write_tally_fields(os, tally);
    os << '\n';
  }
  FleetClassTally totals;
  totals.items = report.total_items;
  totals.passed = report.passed;
  totals.failed = report.failed;
  totals.rejected = report.rejected;
  totals.starvations = report.starvations;
  totals.total_capacity = report.total_capacity;
  totals.firings = report.firings;
  totals.worst_lateness = report.worst_lateness;
  totals.faults_expected = report.faults_expected;
  totals.faults_named = report.faults_named;
  totals.certified = report.certified;
  totals.certificate_clauses = report.certificate_clauses;
  totals.certificate_failures = report.certificate_failures;
  os << "total ";
  write_tally_fields(os, totals);
  os << '\n';
  if (include_items) {
    for (const FleetItemResult& item : report.items) {
      os << encode_item_line(item) << '\n';
    }
  }
  return os.str();
}

std::string summary_text(const FleetReport& report) {
  std::ostringstream os;
  os << canonical_text(report, /*include_items=*/false);
  os << "threads " << report.threads_used << "\n";
  os << "resumed " << report.items_resumed << " items\n";
  os << "elapsed " << report.elapsed_seconds << " s ("
     << report.firings_per_second << " firings/s aggregate)\n";
  return os.str();
}

}  // namespace vrdf::sim
