#include "sim/verify.hpp"

#include <sstream>

#include "util/error.hpp"

namespace vrdf::sim {

using dataflow::ActorId;

VerifyResult verify_throughput(const dataflow::VrdfGraph& graph,
                               const analysis::ThroughputConstraint& constraint,
                               const SimulatorConfigurer& configure,
                               const VerifyOptions& options) {
  VRDF_REQUIRE(options.observe_firings > 0, "need at least one observed firing");
  VerifyResult result;
  const Duration tau = constraint.period;

  // Phase 1: self-timed, find the periodic offset.
  Simulator phase1(graph);
  if (configure) {
    configure(phase1);
  }
  phase1.set_default_sources(options.default_seed);
  phase1.record_firings(constraint.actor,
                        static_cast<std::size_t>(options.observe_firings));
  StopCondition stop;
  stop.firing_target =
      StopCondition::FiringTarget{constraint.actor, options.observe_firings};
  const RunResult run1 = phase1.run(stop);
  if (run1.reason != StopReason::ReachedFiringTarget) {
    std::ostringstream os;
    os << "phase 1 (self-timed) stopped early: "
       << (run1.deadlocked() ? "deadlock" : "budget/time limit") << " at t="
       << run1.end_time.seconds().to_string() << " s after "
       << run1.total_firings << " firings";
    result.detail = os.str();
    return result;
  }
  // Smallest o with start_k <= o + k·τ  ==>  o = max_k(start_k − k·τ).
  const auto& records = phase1.firings(constraint.actor);
  VRDF_REQUIRE(!records.empty(), "phase 1 recorded no firings");
  Duration offset = records[0].start.seconds().is_zero()
                        ? Duration()
                        : (records[0].start - TimePoint());
  Duration max_lateness;
  for (std::size_t k = 0; k < records.size(); ++k) {
    const Duration lateness =
        records[k].start - (TimePoint() + tau * Rational(static_cast<std::int64_t>(k)));
    if (lateness > offset) {
      offset = lateness;
    }
    const Duration vs_first =
        records[k].start -
        (records[0].start + tau * Rational(static_cast<std::int64_t>(k)));
    if (vs_first > max_lateness) {
      max_lateness = vs_first;
    }
  }
  result.max_lateness_phase1 = max_lateness;
  result.offset_used = TimePoint() + offset;

  // Phase 2: enforce the periodic schedule at the measured offset.
  Simulator phase2(graph);
  if (configure) {
    configure(phase2);
  }
  phase2.set_default_sources(options.default_seed);
  phase2.set_actor_mode(constraint.actor,
                        ActorMode::strictly_periodic(result.offset_used, tau));
  const RunResult run2 = phase2.run(stop);
  result.starvation_count = static_cast<std::int64_t>(run2.starvations.size());
  if (run2.reason != StopReason::ReachedFiringTarget) {
    std::ostringstream os;
    os << "phase 2 (periodic) stopped early: "
       << (run2.deadlocked() ? "deadlock" : "budget/time limit") << " after "
       << run2.total_firings << " firings, " << result.starvation_count
       << " starvations";
    result.detail = os.str();
    return result;
  }
  if (result.starvation_count != 0) {
    std::ostringstream os;
    os << result.starvation_count << " starved activations; first at t="
       << run2.starvations.front().scheduled.seconds().to_string()
       << " s (firing " << run2.starvations.front().firing << ")";
    result.detail = os.str();
    return result;
  }
  result.ok = true;
  result.detail = "periodic execution sustained for " +
                  std::to_string(options.observe_firings) + " firings";
  return result;
}

Rational measure_self_timed_throughput(const dataflow::VrdfGraph& graph,
                                       ActorId actor,
                                       std::int64_t observe_firings,
                                       const SimulatorConfigurer& configure,
                                       std::uint64_t default_seed) {
  VRDF_REQUIRE(observe_firings > 1, "need at least two observed firings");
  Simulator sim(graph);
  if (configure) {
    configure(sim);
  }
  sim.set_default_sources(default_seed);
  sim.record_firings(actor, static_cast<std::size_t>(observe_firings));
  StopCondition stop;
  stop.firing_target = StopCondition::FiringTarget{actor, observe_firings};
  const RunResult run = sim.run(stop);
  if (run.reason != StopReason::ReachedFiringTarget) {
    return Rational(0);
  }
  const auto& records = sim.firings(actor);
  const Duration span = records.back().start - records.front().start;
  if (!span.is_positive()) {
    return Rational(0);
  }
  return Rational(static_cast<std::int64_t>(records.size()) - 1) /
         span.seconds();
}

}  // namespace vrdf::sim
