#include "sim/verify.hpp"

#include <sstream>

#include "util/error.hpp"

namespace vrdf::sim {

using dataflow::ActorId;

VerifyResult verify_throughput(const dataflow::VrdfGraph& graph,
                               const analysis::ThroughputConstraint& constraint,
                               const SimulatorConfigurer& configure,
                               const VerifyOptions& options) {
  return verify_throughput(graph, analysis::ConstraintSet{constraint},
                           configure, options);
}

VerifyResult verify_throughput(const dataflow::VrdfGraph& graph,
                               const analysis::ConstraintSet& constraints,
                               const SimulatorConfigurer& configure,
                               const VerifyOptions& options) {
  VRDF_REQUIRE(options.observe_firings > 0, "need at least one observed firing");
  VRDF_REQUIRE(!constraints.empty(), "need at least one constraint to verify");
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    for (std::size_t j = i + 1; j < constraints.size(); ++j) {
      // A silent overwrite in set_actor_mode would enforce only the last
      // period while the verdict claimed the whole set was verified.
      VRDF_REQUIRE(constraints[i].actor != constraints[j].actor,
                   "duplicate constrained actor in the verified set");
    }
  }
  VerifyResult result;

  // Phase 1: self-timed; find one periodic offset per constrained actor.
  // All offsets come from the same run, so the enforced grids of phase 2
  // keep their phase-1 relative alignment.
  Simulator phase1(graph);
  if (configure) {
    configure(phase1);
  }
  phase1.set_default_sources(options.default_seed);
  for (const analysis::ThroughputConstraint& c : constraints) {
    // The run horizon is governed by the FIRST constraint's actor, so a
    // faster secondary actor fires ~(tau_front / tau_c) times as often;
    // cap its records accordingly or the offset fit would only see a
    // truncated prefix of its lateness history.
    const Rational ratio =
        constraints.front().period.seconds() / c.period.seconds();
    const std::int64_t per_front = std::max<std::int64_t>(ratio.ceil(), 1);
    phase1.record_firings(
        c.actor,
        static_cast<std::size_t>(options.observe_firings) *
                static_cast<std::size_t>(per_front) +
            16);
  }
  StopCondition stop;
  stop.firing_target = StopCondition::FiringTarget{constraints.front().actor,
                                                   options.observe_firings};
  const RunResult run1 = phase1.run(stop);
  result.firings_simulated += run1.total_firings;
  if (run1.reason != StopReason::ReachedFiringTarget) {
    std::ostringstream os;
    os << "phase 1 (self-timed) stopped early: "
       << (run1.deadlocked() ? "deadlock" : "budget/time limit") << " at t="
       << run1.end_time.seconds().to_string() << " s after "
       << run1.total_firings << " firings";
    if (run1.deadlocked()) {
      os << "; " << diagnose_blockage(graph, run1.blocked).message;
    }
    result.detail = os.str();
    return result;
  }
  // One offset per constrained actor, all measured from the same
  // self-timed run: the grids then keep phase 1's causally consistent
  // relative alignment (a pinned sink naturally lags a pinned source by
  // the realized pipeline latency; an interior pin's grid likewise lags
  // its upstream by the realized latency of its demand cone), and every
  // enforced activation is no earlier than its self-timed start — sound
  // by monotonicity.
  std::vector<TimePoint> offsets;
  offsets.reserve(constraints.size());
  Duration max_lateness;
  for (const analysis::ThroughputConstraint& c : constraints) {
    const Duration tau = c.period;
    // Smallest o with start_k <= o + k·τ  ==>  o = max_k(start_k − k·τ).
    const auto& records = phase1.firings(c.actor);
    if (records.empty()) {
      result.detail = "phase 1 recorded no firings of constrained actor '" +
                      graph.actor(c.actor).name + "'";
      return result;
    }
    Duration offset = records[0].start.seconds().is_zero()
                          ? Duration()
                          : (records[0].start - TimePoint());
    for (std::size_t k = 0; k < records.size(); ++k) {
      const Duration lateness =
          records[k].start -
          (TimePoint() + tau * Rational(static_cast<std::int64_t>(k)));
      if (lateness > offset) {
        offset = lateness;
      }
      const Duration vs_first =
          records[k].start -
          (records[0].start + tau * Rational(static_cast<std::int64_t>(k)));
      if (vs_first > max_lateness) {
        max_lateness = vs_first;
      }
    }
    offsets.push_back(TimePoint() + offset);
  }
  result.max_lateness_phase1 = max_lateness;
  result.offset_used = offsets.front();

  // Phase 2: enforce every constrained actor's periodic schedule at its
  // measured offset, simultaneously.  With a constraint *set* the
  // independently measured offsets are only a heuristic relative
  // alignment: enforcing one grid delays the others' supplies through
  // back-pressure, so a sufficient capacity set can still starve at the
  // first alignment tried.  A throughput constraint fixes the period, not
  // the offset — so on starvation each starving grid is shifted by its
  // observed lateness and the phase is re-run (bounded retries).  This
  // cannot mask genuine insufficiency: buffers bound the head start a
  // later grid can accumulate to their capacity, so a rate-deficient
  // system starves again within ~capacity tokens no matter the offset.
  RunResult run2;
  const int max_attempts = constraints.size() > 1 ? 5 : 1;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Simulator phase2(graph);
    if (configure) {
      configure(phase2);
    }
    phase2.set_default_sources(options.default_seed);
    for (std::size_t c = 0; c < constraints.size(); ++c) {
      phase2.set_actor_mode(
          constraints[c].actor,
          ActorMode::strictly_periodic(offsets[c], constraints[c].period));
    }
    std::optional<ConformanceMonitor> monitor;
    if (options.monitor) {
      monitor.emplace(graph, constraints);
      monitor->attach(phase2);
    }
    run2 = phase2.run(stop);
    result.firings_simulated += run2.total_firings;
    if (monitor.has_value()) {
      monitor->observe(phase2, run2);
      result.monitor = monitor->report();
    }
    if (run2.starvations.empty() ||
        run2.reason != StopReason::ReachedFiringTarget ||
        attempt + 1 == max_attempts) {
      break;
    }
    bool shifted = false;
    for (std::size_t c = 0; c < constraints.size(); ++c) {
      Duration worst;
      for (const Starvation& starvation : run2.starvations) {
        if (starvation.actor != constraints[c].actor) {
          continue;
        }
        const TimePoint started = starvation.actual_start.has_value()
                                      ? *starvation.actual_start
                                      : run2.end_time;
        worst = std::max(worst, started - starvation.scheduled);
      }
      if (worst.is_positive()) {
        offsets[c] = offsets[c] + worst;
        shifted = true;
      }
    }
    if (!shifted) {
      break;
    }
  }
  result.offset_used = offsets.front();
  result.starvation_count = static_cast<std::int64_t>(run2.starvations.size());
  if (run2.reason != StopReason::ReachedFiringTarget) {
    std::ostringstream os;
    os << "phase 2 (periodic) stopped early: "
       << (run2.deadlocked() ? "deadlock" : "budget/time limit") << " after "
       << run2.total_firings << " firings, " << result.starvation_count
       << " starvations";
    if (run2.deadlocked()) {
      os << "; " << diagnose_blockage(graph, run2.blocked).message;
    }
    result.detail = os.str();
    return result;
  }
  if (result.starvation_count != 0) {
    const Starvation& first = run2.starvations.front();
    std::ostringstream os;
    os << result.starvation_count << " starved activations; first on '"
       << graph.actor(first.actor).name << "' at t="
       << first.scheduled.seconds().to_string() << " s (firing "
       << first.firing << ")";
    result.detail = os.str();
    return result;
  }
  result.ok = true;
  result.detail = "periodic execution sustained for " +
                  std::to_string(options.observe_firings) + " firings";
  return result;
}

Rational measure_self_timed_throughput(const dataflow::VrdfGraph& graph,
                                       ActorId actor,
                                       std::int64_t observe_firings,
                                       const SimulatorConfigurer& configure,
                                       std::uint64_t default_seed) {
  VRDF_REQUIRE(observe_firings > 1, "need at least two observed firings");
  Simulator sim(graph);
  if (configure) {
    configure(sim);
  }
  sim.set_default_sources(default_seed);
  sim.record_firings(actor, static_cast<std::size_t>(observe_firings));
  StopCondition stop;
  stop.firing_target = StopCondition::FiringTarget{actor, observe_firings};
  const RunResult run = sim.run(stop);
  if (run.reason != StopReason::ReachedFiringTarget) {
    return Rational(0);
  }
  const auto& records = sim.firings(actor);
  const Duration span = records.back().start - records.front().start;
  if (!span.is_positive()) {
    return Rational(0);
  }
  return Rational(static_cast<std::int64_t>(records.size()) - 1) /
         span.seconds();
}

}  // namespace vrdf::sim
