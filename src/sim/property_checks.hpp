// Experimental validation of the model properties the correctness proof
// rests on (Sec 3.2):
//
//  * Definition 1 (monotonic execution in the start times): delaying one
//    firing can never make any other firing start *earlier*;
//  * Definition 2 (linear execution in the start times): a delay of Δ on
//    one firing delays every firing by at most Δ.
//
// These are theorems of the model, not of a particular run — the checkers
// here falsify implementation bugs (a simulator whose semantics
// accidentally violate them would invalidate every sufficiency result)
// and serve as executable documentation.
#pragma once

#include <string>

#include "dataflow/vrdf_graph.hpp"
#include "sim/fault_injection.hpp"
#include "sim/verify.hpp"

namespace vrdf::sim {

struct TemporalBehaviourReport {
  bool monotonic = false;  // no firing started earlier than in the baseline
  bool linear = false;     // no firing delayed by more than the injected Δ
  std::string detail;
};

/// Runs the graph self-timed twice with identical quantum sequences — once
/// as-is, once with `delay` injected before firing `firing_index` of
/// `delayed_actor` — and compares every actor's start times over the
/// common prefix of both runs (up to `horizon` time).
[[nodiscard]] TemporalBehaviourReport check_monotonic_linear(
    const dataflow::VrdfGraph& graph, dataflow::ActorId delayed_actor,
    std::int64_t firing_index, Duration delay, TimePoint horizon,
    const SimulatorConfigurer& configure = {}, std::uint64_t default_seed = 1);

/// Fault-plan generalisation of check_monotonic_linear: runs the graph
/// self-timed under `lighter` and under `heavier` (with identical quantum
/// sequences) and checks that the heavier plan's start times stay within
/// [lighter, lighter + max_extra] for every firing of every actor over
/// the common prefix.  `max_extra` must bound the extra duration the
/// heavier plan injects beyond the lighter one on any single firing;
/// `lighter` may be an empty plan (pure baseline).  Note a per-every-
/// firing overrun accumulates across firings — linearity in Δ only holds
/// for single-firing faults such as FaultPlan::transient_stall.
[[nodiscard]] TemporalBehaviourReport check_fault_monotonic_linear(
    const dataflow::VrdfGraph& graph, const FaultPlan& lighter,
    const FaultPlan& heavier, Duration max_extra, TimePoint horizon,
    const SimulatorConfigurer& configure = {}, std::uint64_t default_seed = 1);

}  // namespace vrdf::sim
