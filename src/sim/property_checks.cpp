#include "sim/property_checks.hpp"

#include <algorithm>
#include <sstream>

namespace vrdf::sim {

TemporalBehaviourReport check_monotonic_linear(
    const dataflow::VrdfGraph& graph, dataflow::ActorId delayed_actor,
    std::int64_t firing_index, Duration delay, TimePoint horizon,
    const SimulatorConfigurer& configure, std::uint64_t default_seed) {
  TemporalBehaviourReport report;

  const auto run_once = [&](bool inject) {
    auto sim = std::make_unique<Simulator>(graph);
    if (configure) {
      configure(*sim);
    }
    sim->set_default_sources(default_seed);
    for (const dataflow::ActorId a : graph.actors()) {
      sim->record_firings(a);
    }
    if (inject) {
      sim->inject_release_delay(delayed_actor, firing_index, delay);
    }
    StopCondition stop;
    stop.until_time = horizon;
    (void)sim->run(stop);
    return sim;
  };

  const auto baseline = run_once(false);
  const auto delayed = run_once(true);

  report.monotonic = true;
  report.linear = true;
  std::ostringstream detail;
  for (const dataflow::ActorId a : graph.actors()) {
    const auto& base = baseline->firings(a);
    const auto& del = delayed->firings(a);
    const std::size_t common = std::min(base.size(), del.size());
    for (std::size_t k = 0; k < common; ++k) {
      if (del[k].start < base[k].start) {
        report.monotonic = false;
        detail << "actor '" << graph.actor(a).name << "' firing " << k
               << " started earlier under delay ("
               << del[k].start.seconds().to_string() << " < "
               << base[k].start.seconds().to_string() << "); ";
      }
      if (del[k].start - base[k].start > delay) {
        report.linear = false;
        detail << "actor '" << graph.actor(a).name << "' firing " << k
               << " delayed by more than the injected delta ("
               << (del[k].start - base[k].start).seconds().to_string() << " > "
               << delay.seconds().to_string() << "); ";
      }
    }
  }
  report.detail = detail.str();
  if (report.detail.empty()) {
    report.detail = "all start times within [baseline, baseline + delta]";
  }
  return report;
}

TemporalBehaviourReport check_fault_monotonic_linear(
    const dataflow::VrdfGraph& graph, const FaultPlan& lighter,
    const FaultPlan& heavier, Duration max_extra, TimePoint horizon,
    const SimulatorConfigurer& configure, std::uint64_t default_seed) {
  TemporalBehaviourReport report;

  const auto run_once = [&](const FaultPlan& plan) {
    auto sim = std::make_unique<Simulator>(graph);
    if (configure) {
      configure(*sim);
    }
    sim->set_default_sources(default_seed);
    for (const dataflow::ActorId a : graph.actors()) {
      sim->record_firings(a);
    }
    plan.apply(*sim);
    StopCondition stop;
    stop.until_time = horizon;
    (void)sim->run(stop);
    return sim;
  };

  const auto light = run_once(lighter);
  const auto heavy = run_once(heavier);

  report.monotonic = true;
  report.linear = true;
  std::ostringstream detail;
  for (const dataflow::ActorId a : graph.actors()) {
    const auto& base = light->firings(a);
    const auto& del = heavy->firings(a);
    const std::size_t common = std::min(base.size(), del.size());
    for (std::size_t k = 0; k < common; ++k) {
      if (del[k].start < base[k].start) {
        report.monotonic = false;
        detail << "actor '" << graph.actor(a).name << "' firing " << k
               << " started earlier under the heavier plan ("
               << del[k].start.seconds().to_string() << " < "
               << base[k].start.seconds().to_string() << "); ";
      }
      if (del[k].start - base[k].start > max_extra) {
        report.linear = false;
        detail << "actor '" << graph.actor(a).name << "' firing " << k
               << " delayed by more than the plans' extra delta ("
               << (del[k].start - base[k].start).seconds().to_string() << " > "
               << max_extra.seconds().to_string() << "); ";
      }
    }
  }
  report.detail = detail.str();
  if (report.detail.empty()) {
    report.detail = "all start times within [lighter, lighter + delta]";
  }
  return report;
}

}  // namespace vrdf::sim
