// Deterministic seed derivation shared by every component that fans a
// published base seed out into independent RNG streams.
//
// The library's reproducibility story rests on *stateless* derivation: a
// stream seed is a pure function of (base seed, stream index), so any
// worker — on any thread, in any order, after any interrupt/resume — can
// reconstruct exactly the stream it is responsible for.  The mixer is the
// splitmix64 finalizer over a golden-ratio keyed input, the same
// construction the fault injector has used since PR 6; it is extracted
// here so FleetSweep item streams, synthetic-model generators and fault
// plans all share one audited formula.
//
// Stability contract: the functions below are *published*.  Identical
// (base, index) inputs must keep producing identical outputs across PRs —
// recorded seeds in tests, docs and fleet journals depend on it.  A
// golden-value regression test (tests/test_fleet.cpp) locks the bits.
#pragma once

#include <cstdint>

namespace vrdf::util {

/// 2^64 / φ — the splitmix64 increment ("golden gamma").
inline constexpr std::uint64_t kGoldenGamma = 0x9E3779B97F4A7C15ULL;

/// The splitmix64 output mixer: a bijective avalanche over 64 bits.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stream seed for `index` under `base`: splitmix64 over the golden-keyed
/// pair.  Consecutive indices yield statistically independent streams;
/// distinct bases never collide on overlapping index ranges in practice
/// (the mixer is bijective in base for fixed index and vice versa).
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t base,
                                                  std::uint64_t index) {
  return mix64(base * kGoldenGamma + index);
}

/// Legacy decorrelation kept bit-compatible with the PR 3 cyclic
/// generator: make_random_cyclic perturbs its base seed so a cyclic model
/// and the fork-join model of the same published seed draw different
/// streams.  New call sites should prefer derive_seed; this exists so the
/// published cyclic seeds keep producing identical models.
[[nodiscard]] constexpr std::uint64_t decorrelate(std::uint64_t base) {
  return base ^ kGoldenGamma;
}

}  // namespace vrdf::util
