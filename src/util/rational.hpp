// Exact rational arithmetic.
//
// Every time quantity in this library (periods, response times, linear
// bound offsets) is an exact rational number of seconds.  The MP3 case
// study mixes 1/44100 s with 1/48000 s and millisecond response times;
// floating point would turn the paper's exact integral capacity values
// (6014, 3262, 882 before rounding) into 6013.999... artefacts.
//
// Representation: normalized num/den with den > 0, gcd(|num|, den) == 1.
// Intermediate products use __int128; results that do not fit int64 throw
// OverflowError.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace vrdf {

class Rational {
public:
  /// Zero.
  constexpr Rational() = default;

  /// Integer value n/1.
  constexpr Rational(std::int64_t n) : num_(n), den_(1) {}  // NOLINT: implicit by design

  /// num/den, normalized; den must be non-zero.
  Rational(std::int64_t num, std::int64_t den);

  [[nodiscard]] constexpr std::int64_t num() const { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const { return den_; }

  [[nodiscard]] constexpr bool is_zero() const { return num_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return num_ < 0; }
  [[nodiscard]] constexpr bool is_positive() const { return num_ > 0; }
  [[nodiscard]] constexpr bool is_integer() const { return den_ == 1; }

  /// Largest integer <= value.
  [[nodiscard]] std::int64_t floor() const;
  /// Smallest integer >= value.
  [[nodiscard]] std::int64_t ceil() const;
  /// Truncation towards zero.
  [[nodiscard]] std::int64_t trunc() const;

  /// Lossy conversion for reporting only; never used in analysis decisions.
  [[nodiscard]] double to_double() const;

  /// "p/q" for non-integers, "p" for integers.
  [[nodiscard]] std::string to_string() const;

  /// Parses "p", "p/q", or a simple decimal literal like "51.2".
  /// Throws ContractError on malformed input.
  [[nodiscard]] static Rational from_string(const std::string& text);

  [[nodiscard]] Rational operator-() const;
  [[nodiscard]] Rational reciprocal() const;
  [[nodiscard]] Rational abs() const;

  Rational& operator+=(const Rational& rhs);
  Rational& operator-=(const Rational& rhs);
  Rational& operator*=(const Rational& rhs);
  Rational& operator/=(const Rational& rhs);

  friend Rational operator+(Rational lhs, const Rational& rhs) { return lhs += rhs; }
  friend Rational operator-(Rational lhs, const Rational& rhs) { return lhs -= rhs; }
  friend Rational operator*(Rational lhs, const Rational& rhs) { return lhs *= rhs; }
  friend Rational operator/(Rational lhs, const Rational& rhs) { return lhs /= rhs; }

  friend bool operator==(const Rational& a, const Rational& b) {
    // Normalized representation makes equality structural.
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a, const Rational& b);

private:
  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

/// min/max by value.
[[nodiscard]] Rational min(const Rational& a, const Rational& b);
[[nodiscard]] Rational max(const Rational& a, const Rational& b);

namespace rational_literals {
/// 1_r style integer rationals in tests.
inline Rational operator""_r(unsigned long long v) {
  return Rational(static_cast<std::int64_t>(v));
}
}  // namespace rational_literals

}  // namespace vrdf
