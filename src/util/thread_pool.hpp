// A small fixed-size task pool for embarrassingly parallel passes.
//
// Design point: this is deliberately *not* a work-stealing scheduler.
// The parallel passes in this library (fleet verification sweeps, future
// frontier sweeps) consist of many independent, similarly sized items, so
// a single FIFO queue guarded by one mutex is contention-free in practice
// (items run for ~100 µs, dequeues take ~100 ns) and keeps the pool small
// enough to audit for the determinism rules of sim/fleet.hpp.
//
//  * submit() enqueues one task and returns a future; an exception thrown
//    by the task is captured and rethrown from future::get().
//  * wait_idle() blocks until every submitted task has finished.
//  * The destructor is a deterministic shutdown: it finishes every task
//    already in the queue, then joins all workers — no task is dropped,
//    no future is left broken.
//
// The pool never touches vrdf::log or any other global; workers run
// exactly the closures they are given.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace vrdf::util {

class ThreadPool {
 public:
  /// Spawns exactly `threads` workers (>= 1).
  explicit ThreadPool(std::size_t threads);

  /// Finishes all queued tasks, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues one task (FIFO).  The returned future completes when the
  /// task finishes and carries the task's exception, if it threw.
  /// Submitting to a pool whose destructor has started is a contract
  /// error.
  std::future<void> submit(std::function<void()> task);

  /// Blocks until the queue is empty and no worker is running a task.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::packaged_task<void()>> queue_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace vrdf::util
