#include "util/rational.hpp"

#include <cctype>
#include <cstdlib>
#include <limits>
#include <ostream>

#include "util/checked_int.hpp"
#include "util/error.hpp"

namespace vrdf {

namespace {

__extension__ typedef __int128 Int128;

constexpr std::int64_t kInt64Max = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kInt64Min = std::numeric_limits<std::int64_t>::min();

std::int64_t narrow_128(Int128 v, const char* what) {
  if (v > static_cast<Int128>(kInt64Max) || v < static_cast<Int128>(kInt64Min)) {
    throw OverflowError(std::string("rational overflow in ") + what);
  }
  return static_cast<std::int64_t>(v);
}

Int128 gcd_128(Int128 a, Int128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const Int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

Rational::Rational(std::int64_t num, std::int64_t den) {
  VRDF_REQUIRE(den != 0, "rational denominator must be non-zero");
  if (num == 0) {
    num_ = 0;
    den_ = 1;
    return;
  }
  Int128 n = static_cast<Int128>(num);
  Int128 d = static_cast<Int128>(den);
  if (d < 0) {
    n = -n;
    d = -d;
  }
  const Int128 g = gcd_128(n, d);
  num_ = narrow_128(n / g, "construction");
  den_ = narrow_128(d / g, "construction");
}

std::int64_t Rational::floor() const {
  return floor_div(num_, den_);
}

std::int64_t Rational::ceil() const {
  return ceil_div(num_, den_);
}

std::int64_t Rational::trunc() const {
  return num_ / den_;
}

double Rational::to_double() const {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::string Rational::to_string() const {
  if (den_ == 1) {
    return std::to_string(num_);
  }
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational Rational::from_string(const std::string& text) {
  VRDF_REQUIRE(!text.empty(), "cannot parse rational from empty string");
  const auto slash = text.find('/');
  const auto dot = text.find('.');
  // Checked std::stoll over a component: the whole substring must be one
  // integer.  std::stoll alone stops at the first non-digit, silently
  // truncating trailing garbage — "3/4x" parsed as 3/4, "1e3" as 1,
  // "3/4/5" as 3/4 — and accepts leading whitespace; both are rejected
  // here with the full literal named.
  const auto component = [&text](const std::string& part) {
    if (part.empty() ||
        std::isspace(static_cast<unsigned char>(part.front())) != 0) {
      throw ContractError("malformed rational literal: '" + text + "'");
    }
    std::size_t consumed = 0;
    const std::int64_t value = std::stoll(part, &consumed);
    if (consumed != part.size()) {
      throw ContractError("malformed rational literal: '" + text +
                          "' (trailing characters)");
    }
    return value;
  };
  try {
    if (slash != std::string::npos) {
      const std::int64_t n = component(text.substr(0, slash));
      const std::int64_t d = component(text.substr(slash + 1));
      return Rational(n, d);
    }
    if (dot != std::string::npos) {
      const std::string whole = text.substr(0, dot);
      const std::string frac = text.substr(dot + 1);
      VRDF_REQUIRE(!frac.empty(), "decimal literal needs digits after '.'");
      for (const char c : frac) {
        VRDF_REQUIRE(std::isdigit(static_cast<unsigned char>(c)) != 0,
                     "decimal fraction must be digits");
      }
      std::int64_t scale = 1;
      for (std::size_t i = 0; i < frac.size(); ++i) {
        scale = checked_mul(scale, 10);
      }
      const bool negative = !whole.empty() && whole[0] == '-';
      const std::int64_t w =
          (whole.empty() || whole == "-" || whole == "+") ? 0
                                                          : component(whole);
      const std::int64_t f = component(frac);
      const std::int64_t mag = checked_add(checked_mul(w < 0 ? -w : w, scale), f);
      return Rational(negative ? checked_neg(mag) : mag, scale);
    }
    return Rational(component(text));
  } catch (const std::invalid_argument&) {
    throw ContractError("malformed rational literal: '" + text + "'");
  } catch (const std::out_of_range&) {
    throw OverflowError("rational literal out of range: '" + text + "'");
  }
}

Rational Rational::operator-() const {
  Rational r;
  r.num_ = checked_neg(num_);
  r.den_ = den_;
  return r;
}

Rational Rational::reciprocal() const {
  VRDF_REQUIRE(num_ != 0, "reciprocal of zero");
  return Rational(den_, num_);
}

Rational Rational::abs() const {
  return num_ < 0 ? -*this : *this;
}

Rational& Rational::operator+=(const Rational& rhs) {
  // Fast path: equal denominators need no cross products, and the gcd runs
  // on the 64-bit sum instead of 128-bit products.  Integers (den == 1)
  // reduce to a plain add.
  if (den_ == rhs.den_) {
    std::int64_t n = 0;
    if (!__builtin_add_overflow(num_, rhs.num_, &n)) {
      if (n == 0) {
        num_ = 0;
        den_ = 1;
        return *this;
      }
      if (den_ == 1) {
        num_ = n;
        return *this;
      }
      if (n != kInt64Min) {
        const std::int64_t g = gcd64(n, den_);
        num_ = n / g;
        den_ = den_ / g;
        return *this;
      }
    }
    // Raw sum overflowed int64: the general path may still normalize into
    // range via the gcd.
  }
  // a/b + c/d = (a*d + c*b) / (b*d); normalize via 128-bit intermediates.
  const Int128 n = static_cast<Int128>(num_) * rhs.den_ +
                   static_cast<Int128>(rhs.num_) * den_;
  const Int128 d = static_cast<Int128>(den_) * rhs.den_;
  const Int128 g = n == 0 ? d : gcd_128(n, d);
  num_ = narrow_128(n / g, "addition");
  den_ = narrow_128(d / g, "addition");
  return *this;
}

Rational& Rational::operator-=(const Rational& rhs) {
  if (den_ == rhs.den_) {
    std::int64_t n = 0;
    if (!__builtin_sub_overflow(num_, rhs.num_, &n)) {
      if (n == 0) {
        num_ = 0;
        den_ = 1;
        return *this;
      }
      if (den_ == 1) {
        num_ = n;
        return *this;
      }
      if (n != kInt64Min) {
        const std::int64_t g = gcd64(n, den_);
        num_ = n / g;
        den_ = den_ / g;
        return *this;
      }
    }
  }
  const Int128 n = static_cast<Int128>(num_) * rhs.den_ -
                   static_cast<Int128>(rhs.num_) * den_;
  const Int128 d = static_cast<Int128>(den_) * rhs.den_;
  const Int128 g = n == 0 ? d : gcd_128(n, d);
  num_ = narrow_128(n / g, "subtraction");
  den_ = narrow_128(d / g, "subtraction");
  return *this;
}

Rational& Rational::operator*=(const Rational& rhs) {
  if (num_ == 0 || rhs.num_ == 0) {
    num_ = 0;
    den_ = 1;
    return *this;
  }
  // Cross-reduce before multiplying: gcd(a, d) and gcd(c, b) cancel all
  // common factors up front, so the products are already normalized and no
  // 128-bit gcd is needed.  Denominators are positive and numerators are
  // non-zero here; INT64_MIN is excluded because |INT64_MIN| has no int64
  // magnitude for gcd64.
  if (num_ != kInt64Min && rhs.num_ != kInt64Min) {
    const std::int64_t g1 = gcd64(num_, rhs.den_);
    const std::int64_t g2 = gcd64(rhs.num_, den_);
    const Int128 n =
        static_cast<Int128>(num_ / g1) * static_cast<Int128>(rhs.num_ / g2);
    const Int128 d =
        static_cast<Int128>(den_ / g2) * static_cast<Int128>(rhs.den_ / g1);
    num_ = narrow_128(n, "multiplication");
    den_ = narrow_128(d, "multiplication");
    return *this;
  }
  const Int128 n = static_cast<Int128>(num_) * rhs.num_;
  const Int128 d = static_cast<Int128>(den_) * rhs.den_;
  const Int128 g = n == 0 ? d : gcd_128(n, d);
  num_ = narrow_128(n / g, "multiplication");
  den_ = narrow_128(d / g, "multiplication");
  return *this;
}

Rational& Rational::operator/=(const Rational& rhs) {
  VRDF_REQUIRE(rhs.num_ != 0, "rational division by zero");
  if (num_ == 0) {
    return *this;  // already the normalized zero
  }
  // a/b / (c/d) = (a*d) / (b*c); cross-reduce gcd(a, c) and gcd(d, b) so the
  // products are coprime and need no 128-bit gcd.
  if (num_ != kInt64Min && rhs.num_ != kInt64Min) {
    const std::int64_t g1 = gcd64(num_, rhs.num_);
    const std::int64_t g2 = gcd64(rhs.den_, den_);
    Int128 n =
        static_cast<Int128>(num_ / g1) * static_cast<Int128>(rhs.den_ / g2);
    Int128 d =
        static_cast<Int128>(den_ / g2) * static_cast<Int128>(rhs.num_ / g1);
    if (d < 0) {
      n = -n;
      d = -d;
    }
    num_ = narrow_128(n, "division");
    den_ = narrow_128(d, "division");
    return *this;
  }
  Int128 n = static_cast<Int128>(num_) * rhs.den_;
  Int128 d = static_cast<Int128>(den_) * rhs.num_;
  if (d < 0) {
    n = -n;
    d = -d;
  }
  const Int128 g = n == 0 ? d : gcd_128(n, d);
  num_ = narrow_128(n / g, "division");
  den_ = narrow_128(d / g, "division");
  return *this;
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
  // Cross multiplication: denominators are positive, so the sign of
  // a.num*b.den - b.num*a.den orders the values.  int64 * int64 fits int128.
  const Int128 lhs = static_cast<Int128>(a.num_) * b.den_;
  const Int128 rhs = static_cast<Int128>(b.num_) * a.den_;
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.to_string();
}

Rational min(const Rational& a, const Rational& b) { return a < b ? a : b; }
Rational max(const Rational& a, const Rational& b) { return a > b ? a : b; }

}  // namespace vrdf
