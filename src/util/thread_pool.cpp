#include "util/thread_pool.hpp"

#include "util/error.hpp"

namespace vrdf::util {

ThreadPool::ThreadPool(std::size_t threads) {
  VRDF_REQUIRE(threads >= 1, "a thread pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  VRDF_REQUIRE(static_cast<bool>(task), "cannot submit an empty task");
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    VRDF_REQUIRE(!stopping_, "cannot submit to a stopping thread pool");
    queue_.push_back(std::move(packaged));
  }
  work_ready_.notify_one();
  return future;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and fully drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();  // exceptions land in the task's future
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

}  // namespace vrdf::util
