#include "util/log.hpp"

#include <atomic>
#include <iostream>

namespace vrdf::log {

namespace {
std::atomic<Level> g_level{Level::Warning};
}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO";
    case Level::Warning: return "WARN";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF";
  }
  return "?";
}

void emit(Level lvl, const std::string& message) {
  if (lvl < level()) {
    return;
  }
  std::cerr << "[vrdf " << level_name(lvl) << "] " << message << '\n';
}

}  // namespace vrdf::log
