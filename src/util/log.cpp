#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace vrdf::log {

namespace {
std::atomic<Level> g_level{Level::Warning};

// Serializes the final write only.  Each LineBuilder accumulates its line
// in a thread-local ostringstream, so pool workers never contend while
// formatting; the mutex guards the single flush to stderr per event and
// keeps concurrent lines from interleaving mid-line.  Single-threaded
// output is byte-identical to the pre-lock implementation.
std::mutex g_emit_mutex;
}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO";
    case Level::Warning: return "WARN";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF";
  }
  return "?";
}

void emit(Level lvl, const std::string& message) {
  if (lvl < level()) {
    return;
  }
  // Assemble the whole line first so the locked region is one write.
  std::string line;
  line.reserve(message.size() + 16);
  line += "[vrdf ";
  line += level_name(lvl);
  line += "] ";
  line += message;
  line += '\n';
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::cerr << line;
}

}  // namespace vrdf::log
