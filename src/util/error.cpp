#include "util/error.hpp"

#include <sstream>

namespace vrdf::detail {

void throw_contract_violation(const char* expr, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << "contract violation: " << msg << " [" << expr << " at " << file << ':'
     << line << ']';
  throw ContractError(os.str());
}

}  // namespace vrdf::detail
