// Minimal leveled logger.
//
// The library is a set of analysis algorithms, so logging is sparse and
// opt-in: default level is Warning, benches raise it to Info for progress
// lines.  No timestamps/threads — output must be diffable in tests.
//
// Thread-safety: each VRDF_LOG statement buffers its whole line privately
// (the LineBuilder's stream lives on the emitting thread's stack) and
// emit() flushes it atomically as one write, so lines from concurrent
// pool workers never interleave mid-line.  Line *order* across threads is
// whatever the race produced — deterministic passes that need diffable
// output must log from one thread, as the single-threaded paths do.
#pragma once

#include <sstream>
#include <string>

namespace vrdf::log {

enum class Level { Trace = 0, Debug = 1, Info = 2, Warning = 3, Error = 4, Off = 5 };

/// Global threshold; messages below it are discarded.
void set_level(Level level);
[[nodiscard]] Level level();

/// Emits one line to stderr when `level >= level()`.
void emit(Level level, const std::string& message);

[[nodiscard]] const char* level_name(Level level);

namespace detail {
class LineBuilder {
public:
  explicit LineBuilder(Level level) : level_(level) {}
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;
  ~LineBuilder() { emit(level_, os_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

private:
  Level level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace vrdf::log

#define VRDF_LOG(lvl)                                    \
  if (::vrdf::log::Level::lvl < ::vrdf::log::level()) {  \
  } else                                                 \
    ::vrdf::log::detail::LineBuilder(::vrdf::log::Level::lvl)
