// Error handling for the vrdf library.
//
// The library throws exceptions derived from vrdf::Error for violated
// preconditions and model-validation failures.  Analysis routines that can
// "fail" as a normal outcome (e.g. an inadmissible throughput constraint)
// return result objects instead; exceptions are reserved for contract
// violations and malformed models.
#pragma once

#include <stdexcept>
#include <string>

namespace vrdf {

/// Base class of every exception thrown by the library.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// A numeric operation left the representable range (int64 overflow).
class OverflowError : public Error {
public:
  explicit OverflowError(const std::string& what_arg) : Error(what_arg) {}
};

/// A model (task graph / dataflow graph) violates a structural rule.
class ModelError : public Error {
public:
  explicit ModelError(const std::string& what_arg) : Error(what_arg) {}
};

/// A function argument violates the documented contract.
class ContractError : public Error {
public:
  explicit ContractError(const std::string& what_arg) : Error(what_arg) {}
};

namespace detail {
[[noreturn]] void throw_contract_violation(const char* expr, const char* file,
                                           int line, const std::string& msg);
}  // namespace detail

}  // namespace vrdf

/// Precondition check that is always active (analysis code is not hot enough
/// to justify compiling checks out, and silent contract violations in an
/// EDA tool produce silently wrong silicon-facing numbers).
#define VRDF_REQUIRE(expr, msg)                                              \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::vrdf::detail::throw_contract_violation(#expr, __FILE__, __LINE__,    \
                                               (msg));                       \
    }                                                                        \
  } while (false)
