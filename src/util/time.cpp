#include "util/time.hpp"

#include <ostream>

#include "util/error.hpp"

namespace vrdf {

std::ostream& operator<<(std::ostream& os, const Duration& d) {
  return os << d.to_string();
}

std::ostream& operator<<(std::ostream& os, const TimePoint& t) {
  return os << t.to_string();
}

Duration seconds(Rational s) { return Duration(s); }

Duration milliseconds(Rational ms) { return Duration(ms / Rational(1000)); }

Duration microseconds(Rational us) { return Duration(us / Rational(1000000)); }

Duration period_of_hz(Rational hz) {
  VRDF_REQUIRE(hz.is_positive(), "frequency must be positive");
  return Duration(hz.reciprocal());
}

}  // namespace vrdf
