// Time quantities.
//
// All model time is an exact rational number of SECONDS.  TimePoint and
// Duration are distinct wrapper types so that "point + point" is a compile
// error while "point + duration" is not — response times and linear-bound
// offsets are durations, event times are points.
#pragma once

#include <iosfwd>
#include <string>

#include "util/rational.hpp"

namespace vrdf {

/// A span of model time in seconds (may be negative in intermediate
/// bound-distance arithmetic, e.g. Eq (1)-(3) slack terms).
class Duration {
public:
  constexpr Duration() = default;
  explicit Duration(Rational seconds) : seconds_(seconds) {}

  [[nodiscard]] const Rational& seconds() const { return seconds_; }
  [[nodiscard]] bool is_zero() const { return seconds_.is_zero(); }
  [[nodiscard]] bool is_negative() const { return seconds_.is_negative(); }
  [[nodiscard]] bool is_positive() const { return seconds_.is_positive(); }
  [[nodiscard]] double to_seconds_double() const { return seconds_.to_double(); }
  [[nodiscard]] double to_millis_double() const { return seconds_.to_double() * 1e3; }
  [[nodiscard]] std::string to_string() const { return seconds_.to_string() + " s"; }

  Duration& operator+=(const Duration& rhs) {
    seconds_ += rhs.seconds_;
    return *this;
  }
  Duration& operator-=(const Duration& rhs) {
    seconds_ -= rhs.seconds_;
    return *this;
  }
  Duration& operator*=(const Rational& k) {
    seconds_ *= k;
    return *this;
  }
  Duration& operator/=(const Rational& k) {
    seconds_ /= k;
    return *this;
  }

  friend Duration operator+(Duration a, const Duration& b) { return a += b; }
  friend Duration operator-(Duration a, const Duration& b) { return a -= b; }
  friend Duration operator*(Duration a, const Rational& k) { return a *= k; }
  friend Duration operator*(const Rational& k, Duration a) { return a *= k; }
  friend Duration operator/(Duration a, const Rational& k) { return a /= k; }
  friend Duration operator-(const Duration& a) { return Duration(-a.seconds()); }
  /// Ratio of two durations (dimensionless), e.g. Δ / (φ/π̂) token counts.
  friend Rational operator/(const Duration& a, const Duration& b) {
    return a.seconds() / b.seconds();
  }

  friend bool operator==(const Duration&, const Duration&) = default;
  friend auto operator<=>(const Duration& a, const Duration& b) {
    return a.seconds_ <=> b.seconds_;
  }

private:
  Rational seconds_;
};

/// An absolute point on the model timeline (seconds since simulation start).
class TimePoint {
public:
  constexpr TimePoint() = default;
  explicit TimePoint(Rational seconds) : seconds_(seconds) {}

  [[nodiscard]] const Rational& seconds() const { return seconds_; }
  [[nodiscard]] double to_seconds_double() const { return seconds_.to_double(); }
  [[nodiscard]] std::string to_string() const { return seconds_.to_string() + " s"; }

  TimePoint& operator+=(const Duration& d) {
    seconds_ += d.seconds();
    return *this;
  }
  TimePoint& operator-=(const Duration& d) {
    seconds_ -= d.seconds();
    return *this;
  }

  friend TimePoint operator+(TimePoint t, const Duration& d) { return t += d; }
  friend TimePoint operator+(const Duration& d, TimePoint t) { return t += d; }
  friend TimePoint operator-(TimePoint t, const Duration& d) { return t -= d; }
  friend Duration operator-(const TimePoint& a, const TimePoint& b) {
    return Duration(a.seconds() - b.seconds());
  }

  friend bool operator==(const TimePoint&, const TimePoint&) = default;
  friend auto operator<=>(const TimePoint& a, const TimePoint& b) {
    return a.seconds_ <=> b.seconds_;
  }

private:
  Rational seconds_;
};

std::ostream& operator<<(std::ostream& os, const Duration& d);
std::ostream& operator<<(std::ostream& os, const TimePoint& t);

/// Duration construction helpers.
[[nodiscard]] Duration seconds(Rational s);
[[nodiscard]] Duration milliseconds(Rational ms);
[[nodiscard]] Duration microseconds(Rational us);
/// Period of a frequency given in hertz: period_of_hz(44100) == 1/44100 s.
[[nodiscard]] Duration period_of_hz(Rational hz);

}  // namespace vrdf
