#include "util/checked_int.hpp"

#include <limits>

namespace vrdf {

namespace {
constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
}  // namespace

namespace detail {
void throw_overflow(const char* op) {
  throw OverflowError(std::string("int64 overflow in ") + op);
}
}  // namespace detail

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  // std::gcd on int64 is fine except for INT64_MIN whose magnitude is not
  // representable; map it to its largest power-of-two divisor's behaviour by
  // rejecting it (no caller produces it legitimately).
  if (a == kMin || b == kMin) {
    throw OverflowError("gcd of INT64_MIN is not representable");
  }
  return std::gcd(a, b);
}

std::int64_t checked_lcm(std::int64_t a, std::int64_t b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  const std::int64_t g = gcd64(a, b);
  const std::int64_t a_abs = a < 0 ? checked_neg(a) : a;
  const std::int64_t b_abs = b < 0 ? checked_neg(b) : b;
  return checked_mul(a_abs / g, b_abs);
}

std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  VRDF_REQUIRE(b > 0, "floor_div requires a positive divisor");
  std::int64_t q = a / b;
  if (a % b != 0 && a < 0) {
    --q;
  }
  return q;
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  VRDF_REQUIRE(b > 0, "ceil_div requires a positive divisor");
  std::int64_t q = a / b;
  if (a % b != 0 && a > 0) {
    ++q;
  }
  return q;
}

}  // namespace vrdf
