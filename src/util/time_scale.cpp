#include "util/time_scale.hpp"

#include "util/checked_int.hpp"
#include "util/error.hpp"

namespace vrdf {

std::int64_t TimeScale::to_ticks(const Rational& r) const {
  VRDF_REQUIRE(representable(r), "rational not representable at this scale");
  // den divides scale, so num * (scale / den) is the exact tick count.
  return checked_mul(r.num(), scale_ / r.den());
}

void TimeScale::Builder::fold(const Rational& r) {
  fold_denominator(r.den());
}

void TimeScale::Builder::fold_denominator(std::int64_t den) {
  if (!valid_) {
    return;
  }
  const std::int64_t g = gcd64(scale_, den);
  // lcm = scale / g * den, with the division first so the only overflow
  // site is the final multiplication.
  const std::int64_t reduced = scale_ / g;
  if (den != 0 && reduced > kMaxTicksPerSecond / den) {
    valid_ = false;
    return;
  }
  scale_ = reduced * den;
}

std::optional<TimeScale> TimeScale::Builder::build() const {
  if (!valid_) {
    return std::nullopt;
  }
  return TimeScale(scale_);
}

}  // namespace vrdf
