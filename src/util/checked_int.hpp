// Overflow-checked 64-bit integer helpers.
//
// Buffer-capacity formulas multiply token quanta (up to a few thousand) by
// rate numerators; chains of such products can overflow int64 for synthetic
// stress inputs.  All arithmetic feeding a reported capacity goes through
// these helpers so that overflow is an exception, never a wrong number.
#pragma once

#include <cstdint>
#include <limits>
#include <numeric>

#include "util/error.hpp"

namespace vrdf {

namespace detail {
[[noreturn]] void throw_overflow(const char* op);
}  // namespace detail

// The checked arithmetic helpers are inline: the tick-clock simulator runs
// every event-time addition and comparison through them, so a function call
// per operation would dominate the hot loop.  The overflow branch itself
// compiles to a single flag test.

/// Adds two int64 values; throws OverflowError when the sum is not
/// representable.
[[nodiscard]] inline std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    detail::throw_overflow("addition");
  }
  return out;
}

/// Subtracts b from a; throws OverflowError when the difference is not
/// representable.
[[nodiscard]] inline std::int64_t checked_sub(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_sub_overflow(a, b, &out)) {
    detail::throw_overflow("subtraction");
  }
  return out;
}

/// Multiplies two int64 values; throws OverflowError when the product is not
/// representable.
[[nodiscard]] inline std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    detail::throw_overflow("multiplication");
  }
  return out;
}

/// Negates a; throws OverflowError for INT64_MIN.
[[nodiscard]] inline std::int64_t checked_neg(std::int64_t a) {
  if (a == std::numeric_limits<std::int64_t>::min()) {
    detail::throw_overflow("negation");
  }
  return -a;
}

/// Greatest common divisor of |a| and |b|; gcd(0, 0) == 0.
[[nodiscard]] std::int64_t gcd64(std::int64_t a, std::int64_t b);

/// Least common multiple of |a| and |b|; throws OverflowError when the
/// result is not representable.  lcm(0, x) == 0.
[[nodiscard]] std::int64_t checked_lcm(std::int64_t a, std::int64_t b);

/// Floor division a / b for b > 0 (rounds towards negative infinity).
[[nodiscard]] std::int64_t floor_div(std::int64_t a, std::int64_t b);

/// Ceiling division a / b for b > 0 (rounds towards positive infinity).
[[nodiscard]] std::int64_t ceil_div(std::int64_t a, std::int64_t b);

}  // namespace vrdf
