// Integer tick clock for the simulator hot path.
//
// A TimeScale is a resolution S (ticks per second) chosen as the LCM of
// the denominators of every rational time constant a simulation can
// produce.  With that choice every event time is an integral number of
// ticks, so the event loop can order and add times with plain int64
// arithmetic instead of cross-multiplying __int128 rationals and running
// gcd normalizations.  Conversions back to Rational are exact; the scale
// is capped so that tick values stay far from int64 saturation.
#pragma once

#include <cstdint>
#include <optional>

#include "util/rational.hpp"

namespace vrdf {

class TimeScale {
public:
  /// Largest accepted resolution.  Beyond this, tick values for moderate
  /// horizons would approach int64 saturation and the exact Rational path
  /// is the better representation.
  static constexpr std::int64_t kMaxTicksPerSecond = std::int64_t{1} << 40;

  /// The identity scale (1 tick == 1 second); useful as a default.
  constexpr TimeScale() = default;

  [[nodiscard]] std::int64_t ticks_per_second() const { return scale_; }

  /// True when `r` is an integral number of ticks at this scale.
  [[nodiscard]] bool representable(const Rational& r) const {
    return scale_ % r.den() == 0;
  }

  /// True when `r` is an integral number of ticks AND that tick count fits
  /// int64 — the condition for staying on the tick clock (representable
  /// alone admits values whose conversion would overflow).
  [[nodiscard]] bool fits(const Rational& r) const {
    if (scale_ % r.den() != 0) {
      return false;
    }
    std::int64_t out = 0;
    return !__builtin_mul_overflow(r.num(), scale_ / r.den(), &out);
  }

  /// Exact conversion; requires representable(r), throws OverflowError when
  /// the tick count does not fit int64.
  [[nodiscard]] std::int64_t to_ticks(const Rational& r) const;

  /// Exact conversion back to seconds.
  [[nodiscard]] Rational to_rational(std::int64_t ticks) const {
    return Rational(ticks, scale_);
  }

  /// Accumulates denominators and produces the LCM scale.  Folding a value
  /// never throws: when the LCM leaves [1, kMaxTicksPerSecond] the builder
  /// becomes invalid and build() returns nullopt (callers then fall back to
  /// exact Rational time).
  class Builder {
  public:
    void fold(const Rational& r);
    void fold_denominator(std::int64_t den);

    [[nodiscard]] bool valid() const { return valid_; }
    /// The scale, or nullopt when any fold overflowed the cap.
    [[nodiscard]] std::optional<TimeScale> build() const;

  private:
    bool valid_ = true;
    std::int64_t scale_ = 1;
  };

private:
  explicit constexpr TimeScale(std::int64_t scale) : scale_(scale) {}

  std::int64_t scale_ = 1;
};

}  // namespace vrdf
