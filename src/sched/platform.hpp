// Multiprocessor platform with TDM arbitration — the deployment substrate
// the paper assumes (Sec 3.1: "all shared resources have run-time
// arbiters" whose worst-case response time is independent of activation
// rates, per [15]).
//
// A Platform is a set of processors, each running a TDM wheel.  Tasks are
// bound to a processor with a slot budget and a worst-case execution
// time; the platform derives each task's worst-case response time
// κ = ceil(C/slot)·(wheel − slot) + C, which feeds the task graph and
// from there the buffer-capacity analysis.  Validation guarantees the
// wheel is not oversubscribed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sched/arbiter.hpp"
#include "util/time.hpp"

namespace vrdf::sched {

class Platform {
public:
  struct Binding {
    std::string task;
    std::size_t processor = 0;
    Duration slot;
    Duration wcet;
  };

  /// Adds a processor with the given TDM wheel period; returns its index.
  std::size_t add_processor(std::string name, Duration wheel_period);

  /// Binds a task to a processor with a slot budget and WCET.  Throws when
  /// the processor's wheel would be oversubscribed (Σ slots > period), the
  /// slot is not positive, or the task name is already bound.
  void bind_task(const std::string& task, std::size_t processor, Duration slot,
                 Duration wcet);

  [[nodiscard]] std::size_t processor_count() const { return processors_.size(); }
  [[nodiscard]] const std::string& processor_name(std::size_t index) const;

  /// Remaining unallocated wheel time of a processor.
  [[nodiscard]] Duration slack(std::size_t processor) const;

  /// Worst-case response time of a bound task (slot-granular TDM bound).
  [[nodiscard]] Duration response_time(const std::string& task) const;

  /// All bindings in insertion order.
  [[nodiscard]] const std::vector<Binding>& bindings() const { return bindings_; }

  /// Utilization of a processor: Σ slots / wheel period.
  [[nodiscard]] Rational utilization(std::size_t processor) const;

private:
  struct Processor {
    std::string name;
    Duration wheel_period;
    Duration allocated;
  };

  [[nodiscard]] const Binding* find_binding(const std::string& task) const;

  std::vector<Processor> processors_;
  std::vector<Binding> bindings_;
};

}  // namespace vrdf::sched
