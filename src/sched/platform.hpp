// Multiprocessor platform with per-processor arbitration — the deployment
// substrate the paper assumes (Sec 3.1: "all shared resources have
// run-time arbiters" whose worst-case response time is independent of
// activation rates, per [15]).
//
// A Platform is a set of processors, each running either a TDM wheel or a
// run-to-completion round-robin arbiter.  Tasks are bound to a processor
// with a worst-case execution time (TDM bindings additionally carry a
// slot budget); the platform derives each task's uniform ServiceModel,
// from which the deployment analysis takes the worst-case response time
// κ that feeds the task graph and from there the buffer-capacity
// analysis.  Validation guarantees a TDM wheel is never oversubscribed
// (Σ slots ≤ period) and a round-robin processor's served load never
// exceeds its budget (Σ WCET ≤ period).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sched/arbiter.hpp"
#include "util/time.hpp"

namespace vrdf::sched {

class Platform {
public:
  struct Binding {
    std::string task;
    std::size_t processor = 0;
    /// TDM: the slot budget.  Round-robin: equals the WCET (the load the
    /// processor's budget accounts).
    Duration slot;
    Duration wcet;
  };

  /// Adds a processor with the given arbiter policy; returns its index.
  /// For TDM, `wheel_period` is the wheel; for round-robin it is the
  /// served-load budget (Σ WCET of bound tasks may not exceed it).
  std::size_t add_processor(std::string name, Duration wheel_period,
                            ArbiterPolicy policy = ArbiterPolicy::Tdm);

  /// Binds a task to a TDM processor with a slot budget and WCET.  Throws
  /// a line-attributable ContractError when the processor index is out of
  /// range, the processor is not TDM, the wheel would be oversubscribed
  /// (Σ slots > period), the slot is not positive, or the task name is
  /// already bound.
  void bind_task(const std::string& task, std::size_t processor, Duration slot,
                 Duration wcet);

  /// Binds a task to a round-robin processor with its WCET (the WCET is
  /// the load the processor's budget accounts).  Same error contract as
  /// the TDM overload.
  void bind_task(const std::string& task, std::size_t processor,
                 Duration wcet);

  /// Retunes the slot budget of a TDM-bound task in place.  Throws when
  /// the task is unknown, its processor is not TDM, the slot is not
  /// positive, or the new slot would oversubscribe the wheel.
  void set_slot(const std::string& task, Duration slot);

  [[nodiscard]] std::size_t processor_count() const { return processors_.size(); }
  [[nodiscard]] const std::string& processor_name(std::size_t index) const;
  [[nodiscard]] ArbiterPolicy policy(std::size_t index) const;
  [[nodiscard]] Duration wheel_period(std::size_t index) const;

  /// Remaining unallocated wheel time (TDM) or load budget (round-robin).
  [[nodiscard]] Duration slack(std::size_t processor) const;

  /// The uniform service derivation of a bound task's allocation.  For
  /// round-robin bindings the Σ-WCET term reflects the processor's
  /// *current* task set, so it changes as peers bind.
  [[nodiscard]] ServiceModel service_model(const std::string& task) const;

  /// Worst-case response time of a bound task (policy-exact bound:
  /// slot-granular TDM or round-robin sum).
  [[nodiscard]] Duration response_time(const std::string& task) const;

  /// Processor index a bound task runs on.
  [[nodiscard]] std::size_t processor_of(const std::string& task) const;

  [[nodiscard]] bool is_bound(const std::string& task) const;

  /// All bindings in insertion order.
  [[nodiscard]] const std::vector<Binding>& bindings() const { return bindings_; }

  /// Utilization of a processor: allocated slot time (TDM) or served load
  /// (round-robin) over the wheel period.
  [[nodiscard]] Rational utilization(std::size_t processor) const;

private:
  struct Processor {
    std::string name;
    Duration wheel_period;
    Duration allocated;
    ArbiterPolicy policy = ArbiterPolicy::Tdm;
  };

  /// Bounds-checked processor access; the error names the index and the
  /// processor count (PR 4 error conventions).
  [[nodiscard]] const Processor& checked_processor_(std::size_t index) const;
  [[nodiscard]] const Binding* find_binding(const std::string& task) const;
  void bind_(const std::string& task, std::size_t processor, Duration slot,
             Duration wcet, ArbiterPolicy expected_policy);

  std::vector<Processor> processors_;
  std::vector<Binding> bindings_;
};

}  // namespace vrdf::sched
