#include "sched/platform.hpp"

#include "util/error.hpp"

namespace vrdf::sched {

std::size_t Platform::add_processor(std::string name, Duration wheel_period,
                                    ArbiterPolicy policy) {
  VRDF_REQUIRE(!name.empty(), "processor name must be non-empty");
  VRDF_REQUIRE(wheel_period.is_positive(), "wheel period must be positive");
  for (const Processor& p : processors_) {
    VRDF_REQUIRE(p.name != name, "processor name '" + name + "' already used");
  }
  processors_.push_back(
      Processor{std::move(name), wheel_period, Duration(), policy});
  return processors_.size() - 1;
}

void Platform::bind_task(const std::string& task, std::size_t processor,
                         Duration slot, Duration wcet) {
  bind_(task, processor, slot, wcet, ArbiterPolicy::Tdm);
}

void Platform::bind_task(const std::string& task, std::size_t processor,
                         Duration wcet) {
  // A round-robin binding's "slot" is the WCET itself: the load the
  // processor's budget accounts.
  bind_(task, processor, wcet, wcet, ArbiterPolicy::RoundRobin);
}

void Platform::bind_(const std::string& task, std::size_t processor,
                     Duration slot, Duration wcet,
                     ArbiterPolicy expected_policy) {
  const Processor& checked = checked_processor_(processor);
  VRDF_REQUIRE(checked.policy == expected_policy,
               "processor '" + checked.name + "' runs a " +
                   arbiter_policy_name(checked.policy) +
                   " arbiter; use the matching bind_task overload for task '" +
                   task + "'");
  VRDF_REQUIRE(slot.is_positive(), "slot budget of task '" + task +
                                       "' must be positive");
  VRDF_REQUIRE(wcet.is_positive(),
               "WCET of task '" + task + "' must be positive");
  VRDF_REQUIRE(find_binding(task) == nullptr,
               "task '" + task + "' is already bound");
  Processor& proc = processors_[processor];
  const Duration after = proc.allocated + slot;
  VRDF_REQUIRE(after <= proc.wheel_period,
               std::string(proc.policy == ArbiterPolicy::Tdm
                               ? "TDM wheel of processor '"
                               : "round-robin load budget of processor '") +
                   proc.name + "' oversubscribed by binding task '" + task +
                   "'");
  proc.allocated = after;
  bindings_.push_back(Binding{task, processor, slot, wcet});
}

void Platform::set_slot(const std::string& task, Duration slot) {
  VRDF_REQUIRE(slot.is_positive(), "slot budget of task '" + task +
                                       "' must be positive");
  Binding* binding = nullptr;
  for (Binding& b : bindings_) {
    if (b.task == task) {
      binding = &b;
      break;
    }
  }
  VRDF_REQUIRE(binding != nullptr, "task '" + task + "' is not bound");
  Processor& proc = processors_[binding->processor];
  VRDF_REQUIRE(proc.policy == ArbiterPolicy::Tdm,
               "task '" + task + "' runs under " +
                   arbiter_policy_name(proc.policy) + " on processor '" +
                   proc.name + "'; only TDM slots can be retuned");
  const Duration after = proc.allocated - binding->slot + slot;
  VRDF_REQUIRE(after <= proc.wheel_period,
               "TDM wheel of processor '" + proc.name +
                   "' oversubscribed by retuning the slot of task '" + task +
                   "'");
  proc.allocated = after;
  binding->slot = slot;
}

const std::string& Platform::processor_name(std::size_t index) const {
  return checked_processor_(index).name;
}

ArbiterPolicy Platform::policy(std::size_t index) const {
  return checked_processor_(index).policy;
}

Duration Platform::wheel_period(std::size_t index) const {
  return checked_processor_(index).wheel_period;
}

Duration Platform::slack(std::size_t processor) const {
  const Processor& proc = checked_processor_(processor);
  return proc.wheel_period - proc.allocated;
}

ServiceModel Platform::service_model(const std::string& task) const {
  const Binding* binding = find_binding(task);
  VRDF_REQUIRE(binding != nullptr, "task '" + task + "' is not bound");
  const Processor& proc = processors_[binding->processor];
  ServiceModel model;
  model.policy = proc.policy;
  model.wcet = binding->wcet;
  if (proc.policy == ArbiterPolicy::Tdm) {
    model.slot = binding->slot;
    model.wheel = proc.wheel_period;
  } else {
    for (const Binding& peer : bindings_) {
      if (peer.processor == binding->processor) {
        model.total_wcet += peer.wcet;
      }
    }
  }
  return model;
}

Duration Platform::response_time(const std::string& task) const {
  return service_model(task).response_time();
}

std::size_t Platform::processor_of(const std::string& task) const {
  const Binding* binding = find_binding(task);
  VRDF_REQUIRE(binding != nullptr, "task '" + task + "' is not bound");
  return binding->processor;
}

bool Platform::is_bound(const std::string& task) const {
  return find_binding(task) != nullptr;
}

Rational Platform::utilization(std::size_t processor) const {
  const Processor& proc = checked_processor_(processor);
  return proc.allocated.seconds() / proc.wheel_period.seconds();
}

const Platform::Processor& Platform::checked_processor_(
    std::size_t index) const {
  VRDF_REQUIRE(index < processors_.size(),
               "processor index " + std::to_string(index) +
                   " out of range (platform has " +
                   std::to_string(processors_.size()) + " processors)");
  return processors_[index];
}

const Platform::Binding* Platform::find_binding(const std::string& task) const {
  for (const Binding& b : bindings_) {
    if (b.task == task) {
      return &b;
    }
  }
  return nullptr;
}

}  // namespace vrdf::sched
