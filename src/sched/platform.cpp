#include "sched/platform.hpp"

#include "util/error.hpp"

namespace vrdf::sched {

std::size_t Platform::add_processor(std::string name, Duration wheel_period) {
  VRDF_REQUIRE(!name.empty(), "processor name must be non-empty");
  VRDF_REQUIRE(wheel_period.is_positive(), "wheel period must be positive");
  for (const Processor& p : processors_) {
    VRDF_REQUIRE(p.name != name, "processor name '" + name + "' already used");
  }
  processors_.push_back(Processor{std::move(name), wheel_period, Duration()});
  return processors_.size() - 1;
}

void Platform::bind_task(const std::string& task, std::size_t processor,
                         Duration slot, Duration wcet) {
  VRDF_REQUIRE(processor < processors_.size(), "processor index out of range");
  VRDF_REQUIRE(slot.is_positive(), "slot budget must be positive");
  VRDF_REQUIRE(wcet.is_positive(), "WCET must be positive");
  VRDF_REQUIRE(find_binding(task) == nullptr,
               "task '" + task + "' is already bound");
  Processor& proc = processors_[processor];
  const Duration after = proc.allocated + slot;
  VRDF_REQUIRE(after <= proc.wheel_period,
               "TDM wheel of processor '" + proc.name +
                   "' oversubscribed by binding task '" + task + "'");
  proc.allocated = after;
  bindings_.push_back(Binding{task, processor, slot, wcet});
}

const std::string& Platform::processor_name(std::size_t index) const {
  VRDF_REQUIRE(index < processors_.size(), "processor index out of range");
  return processors_[index].name;
}

Duration Platform::slack(std::size_t processor) const {
  VRDF_REQUIRE(processor < processors_.size(), "processor index out of range");
  return processors_[processor].wheel_period - processors_[processor].allocated;
}

Duration Platform::response_time(const std::string& task) const {
  const Binding* binding = find_binding(task);
  VRDF_REQUIRE(binding != nullptr, "task '" + task + "' is not bound");
  const TdmAllocation tdm{binding->slot,
                          processors_[binding->processor].wheel_period};
  return tdm.response_time(binding->wcet);
}

Rational Platform::utilization(std::size_t processor) const {
  VRDF_REQUIRE(processor < processors_.size(), "processor index out of range");
  return processors_[processor].allocated.seconds() /
         processors_[processor].wheel_period.seconds();
}

const Platform::Binding* Platform::find_binding(const std::string& task) const {
  for (const Binding& b : bindings_) {
    if (b.task == task) {
      return &b;
    }
  }
  return nullptr;
}

}  // namespace vrdf::sched
