// Run-time arbiters with rate-independent worst-case response times.
//
// The paper (Sec 3.1, citing [15]) assumes every shared resource has a
// run-time arbiter that guarantees a worst-case response time κ(w) given
// the task's worst-case execution time and the scheduler settings — a
// guarantee that must hold regardless of how often the task is enabled.
// Time-division multiplex (TDM) and round-robin are the named examples;
// this module computes κ for both, plus the generic latency-rate server
// abstraction that covers them.
#pragma once

#include <vector>

#include "util/time.hpp"

namespace vrdf::sched {

/// A latency-rate server: a task receives service at least at `rate`
/// (fraction of the processor, 0 < rate <= 1) after an initial latency.
/// κ(C) = latency + C/rate.
struct LatencyRateServer {
  Duration latency;
  Rational rate;

  [[nodiscard]] Duration response_time(Duration wcet) const;
};

/// TDM wheel allocation: the task owns `slot` contiguous time out of every
/// `period` of wheel time.
struct TdmAllocation {
  Duration slot;
  Duration period;

  /// Slot-granular bound: each chunk of `slot` service can be preceded by a
  /// gap of (period - slot); κ = ceil(C/slot)·(period - slot) + C.
  [[nodiscard]] Duration response_time(Duration wcet) const;

  /// The latency-rate abstraction of this allocation
  /// (latency = period - slot, rate = slot/period); its κ is
  /// (period - slot) + C·period/slot, never smaller than response_time().
  [[nodiscard]] LatencyRateServer as_latency_rate() const;
};

/// Run-to-completion round-robin among tasks with the given WCETs: a task's
/// activation can wait for one full execution of every other task plus its
/// own execution; κ_i = Σ_j wcet_j.
[[nodiscard]] Duration round_robin_response_time(
    const std::vector<Duration>& all_wcets, std::size_t task_index);

}  // namespace vrdf::sched
