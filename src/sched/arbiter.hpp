// Run-time arbiters with rate-independent worst-case response times.
//
// The paper (Sec 3.1, citing [15]) assumes every shared resource has a
// run-time arbiter that guarantees a worst-case response time κ(w) given
// the task's worst-case execution time and the scheduler settings — a
// guarantee that must hold regardless of how often the task is enabled.
// Time-division multiplex (TDM) and round-robin are the named examples;
// this module computes κ for both, plus the generic latency-rate server
// abstraction that covers them.
#pragma once

#include <cstdint>
#include <vector>

#include "util/time.hpp"

namespace vrdf::sched {

/// Per-processor arbiter policy — the two run-time arbiters the paper
/// names (Sec 3.1).
enum class ArbiterPolicy {
  /// TDM wheel: each task owns a slot budget out of every wheel period.
  Tdm,
  /// Run-to-completion round-robin: an activation waits at most one full
  /// execution of every peer task plus its own execution.
  RoundRobin,
};

[[nodiscard]] const char* arbiter_policy_name(ArbiterPolicy policy);

/// A latency-rate server: a task receives service at least at `rate`
/// (fraction of the processor, 0 < rate <= 1) after an initial latency.
/// κ(C) = latency + C/rate.
struct LatencyRateServer {
  Duration latency;
  Rational rate;

  [[nodiscard]] Duration response_time(Duration wcet) const;
};

/// TDM wheel allocation: the task owns `slot` contiguous time out of every
/// `period` of wheel time.
struct TdmAllocation {
  Duration slot;
  Duration period;

  /// Slot-granular bound: each chunk of `slot` service can be preceded by a
  /// gap of (period - slot); κ = ceil(C/slot)·(period - slot) + C.
  [[nodiscard]] Duration response_time(Duration wcet) const;

  /// The latency-rate abstraction of this allocation
  /// (latency = period - slot, rate = slot/period); its κ is
  /// (period - slot) + C·period/slot, never smaller than response_time().
  [[nodiscard]] LatencyRateServer as_latency_rate() const;
};

/// Run-to-completion round-robin among tasks with the given WCETs: a task's
/// activation can wait for one full execution of every other task plus its
/// own execution; κ_i = Σ_j wcet_j.
[[nodiscard]] Duration round_robin_response_time(
    const std::vector<Duration>& all_wcets, std::size_t task_index);

/// The uniform service derivation of one binding.  Every (policy, terms)
/// combination yields both the policy-exact response-time bound and a
/// latency-rate abstraction of the allocation, so downstream layers
/// (analysis/deployment, certificates) treat heterogeneous arbiters
/// uniformly.  TDM bindings carry (slot, wheel); round-robin bindings
/// carry the processor's Σ-WCET.
struct ServiceModel {
  ArbiterPolicy policy = ArbiterPolicy::Tdm;
  /// The task's own worst-case execution time C.
  Duration wcet;
  /// TDM terms (zero for round-robin).
  Duration slot;
  Duration wheel;
  /// Round-robin term: Σ WCET over the processor's tasks, this one
  /// included (zero for TDM).
  Duration total_wcet;

  /// Policy-exact κ: the slot-granular TDM bound or the round-robin sum.
  [[nodiscard]] Duration response_time() const;

  /// TDM: ⌈C/slot⌉, the number of slot chunks the execution spans — the
  /// witness term recorded in certificate platform clauses.  0 for
  /// round-robin (its bound has no rounding).
  [[nodiscard]] std::int64_t ceil_term() const;

  /// The latency-rate abstraction of the allocation: TDM is
  /// (wheel − slot, slot/wheel); round-robin is (Σ − C, C/Σ).  Its κ is
  /// never smaller than response_time() — see the property test in
  /// tests/test_sched_io.cpp.
  [[nodiscard]] LatencyRateServer as_latency_rate() const;
};

}  // namespace vrdf::sched
