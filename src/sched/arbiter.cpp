#include "sched/arbiter.hpp"

#include "util/error.hpp"

namespace vrdf::sched {

const char* arbiter_policy_name(ArbiterPolicy policy) {
  switch (policy) {
    case ArbiterPolicy::Tdm: return "tdm";
    case ArbiterPolicy::RoundRobin: return "round-robin";
  }
  return "unknown";
}

Duration LatencyRateServer::response_time(Duration wcet) const {
  VRDF_REQUIRE(!latency.is_negative(), "latency must be non-negative");
  VRDF_REQUIRE(rate.is_positive() && rate <= Rational(1),
               "rate must be in (0, 1]");
  VRDF_REQUIRE(wcet.is_positive(), "WCET must be positive");
  return latency + wcet / rate;
}

Duration TdmAllocation::response_time(Duration wcet) const {
  VRDF_REQUIRE(slot.is_positive(), "TDM slot must be positive");
  VRDF_REQUIRE(period >= slot, "TDM period must be at least the slot");
  VRDF_REQUIRE(wcet.is_positive(), "WCET must be positive");
  const Rational chunks_needed = wcet.seconds() / slot.seconds();
  const Rational gaps = Rational(chunks_needed.ceil());
  return Duration((period - slot).seconds() * gaps + wcet.seconds());
}

LatencyRateServer TdmAllocation::as_latency_rate() const {
  VRDF_REQUIRE(slot.is_positive(), "TDM slot must be positive");
  VRDF_REQUIRE(period >= slot, "TDM period must be at least the slot");
  return LatencyRateServer{period - slot, slot.seconds() / period.seconds()};
}

Duration round_robin_response_time(const std::vector<Duration>& all_wcets,
                                   std::size_t task_index) {
  VRDF_REQUIRE(task_index < all_wcets.size(), "task index out of range");
  Duration total;
  for (const Duration& c : all_wcets) {
    VRDF_REQUIRE(c.is_positive(), "WCET must be positive");
    total += c;
  }
  return total;
}

Duration ServiceModel::response_time() const {
  VRDF_REQUIRE(wcet.is_positive(), "WCET must be positive");
  if (policy == ArbiterPolicy::Tdm) {
    return TdmAllocation{slot, wheel}.response_time(wcet);
  }
  VRDF_REQUIRE(total_wcet >= wcet,
               "round-robin total WCET must cover the task's own WCET");
  return total_wcet;
}

std::int64_t ServiceModel::ceil_term() const {
  if (policy != ArbiterPolicy::Tdm) {
    return 0;
  }
  VRDF_REQUIRE(slot.is_positive(), "TDM slot must be positive");
  VRDF_REQUIRE(wcet.is_positive(), "WCET must be positive");
  return (wcet.seconds() / slot.seconds()).ceil();
}

LatencyRateServer ServiceModel::as_latency_rate() const {
  VRDF_REQUIRE(wcet.is_positive(), "WCET must be positive");
  if (policy == ArbiterPolicy::Tdm) {
    return TdmAllocation{slot, wheel}.as_latency_rate();
  }
  VRDF_REQUIRE(total_wcet >= wcet,
               "round-robin total WCET must cover the task's own WCET");
  return LatencyRateServer{total_wcet - wcet,
                           wcet.seconds() / total_wcet.seconds()};
}

}  // namespace vrdf::sched
