// Exact minimal buffer capacity for one producer-consumer pair, by search.
//
// For small pairs the true minimum capacity that sustains a periodic
// consumer can be found by binary search over the capacity, using the
// two-phase simulation check as the feasibility oracle (feasibility is
// monotone in the capacity by Def 1: more initial space can only make
// every start earlier).  This is the SDF3/Stuijk-style throughput-buffer
// trade-off oracle and serves two roles:
//  * grounding the Fig 1 discussion (minimum capacity 3 when n ≡ 3 but 4
//    when n ≡ 2 — maximising quanta is not conservative);
//  * quantifying how tight Eq (4) is against the per-sequence optimum.
//
// The oracle simulates a finite horizon, so the result is exact for the
// supplied quantum sequences over that horizon (for constant rates the
// behaviour is eventually periodic and a modest horizon is conclusive).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "dataflow/rate_set.hpp"
#include "sim/quantum_source.hpp"
#include "sim/verify.hpp"
#include "util/time.hpp"

namespace vrdf::baseline {

struct PairSearchSpec {
  dataflow::RateSet production = dataflow::RateSet::singleton(1);   // π
  dataflow::RateSet consumption = dataflow::RateSet::singleton(1);  // γ
  Duration producer_response;
  Duration consumer_response;
  /// The consumer must execute strictly periodically with this period.
  Duration consumer_period;
  /// Quantum sequence factories (nullptr → set maximum, constant).
  /// Factories are invoked once per simulation so each run sees a fresh,
  /// identical stream.
  std::function<std::unique_ptr<sim::QuantumSource>()> producer_sequence;
  std::function<std::unique_ptr<sim::QuantumSource>()> consumer_sequence;
  /// Consumer firings simulated per feasibility probe.
  std::int64_t observe_firings = 512;
};

/// Smallest capacity in [1, upper_bound] that passes the two-phase check,
/// or nullopt when even upper_bound fails.
[[nodiscard]] std::optional<std::int64_t> exact_minimal_pair_capacity(
    const PairSearchSpec& spec, std::int64_t upper_bound);

}  // namespace vrdf::baseline
