#include "baseline/exact_minimal.hpp"

#include "analysis/types.hpp"
#include "dataflow/vrdf_graph.hpp"
#include "util/error.hpp"

namespace vrdf::baseline {

namespace {

bool capacity_feasible(const PairSearchSpec& spec, std::int64_t capacity) {
  dataflow::VrdfGraph graph;
  const dataflow::ActorId producer =
      graph.add_actor("producer", spec.producer_response);
  const dataflow::ActorId consumer =
      graph.add_actor("consumer", spec.consumer_response);
  const dataflow::BufferEdges buffer = graph.add_buffer(
      producer, consumer, spec.production, spec.consumption, capacity);

  const analysis::ThroughputConstraint constraint{consumer,
                                                  spec.consumer_period};
  sim::VerifyOptions options;
  options.observe_firings = spec.observe_firings;
  const sim::VerifyResult result = sim::verify_throughput(
      graph, constraint,
      [&](sim::Simulator& s) {
        if (spec.producer_sequence) {
          s.set_quantum_source(producer, buffer.data, spec.producer_sequence());
        } else {
          s.set_quantum_source(producer, buffer.data,
                               sim::always_max_source(spec.production));
        }
        if (spec.consumer_sequence) {
          s.set_quantum_source(consumer, buffer.data, spec.consumer_sequence());
        } else {
          s.set_quantum_source(consumer, buffer.data,
                               sim::always_max_source(spec.consumption));
        }
      },
      options);
  return result.ok;
}

}  // namespace

std::optional<std::int64_t> exact_minimal_pair_capacity(
    const PairSearchSpec& spec, std::int64_t upper_bound) {
  VRDF_REQUIRE(upper_bound >= 1, "upper bound must be positive");
  if (!capacity_feasible(spec, upper_bound)) {
    return std::nullopt;
  }
  std::int64_t lo = 1;         // smallest conceivable capacity
  std::int64_t hi = upper_bound;  // known feasible
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (capacity_feasible(spec, mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi;
}

}  // namespace vrdf::baseline
