// "Traditional analysis techniques [10]" — the paper's comparison baseline
// (Sriram & Bhattacharyya, Embedded Multiprocessors: Scheduling and
// Synchronization).
//
// These techniques assume data-independent (constant) rates.  For a
// rate-matched producer-consumer pair with production quantum p and
// consumption quantum c the classical sufficient buffer capacity is
//     2·(p + c − gcd(p, c)),
// one (p + c − gcd) window for the producer's in-flight data and one for
// the consumer's working set.  This formula reproduces the paper's
// published baseline numbers for the MP3 application exactly:
// 2·(2048+960−64) = 5888, 2·(1152+480−96) = 3072, 2·(441+1−1) = 882.
//
// To apply it to a variable-rate graph the variability must be fixed to a
// single value first; the paper fixes the MP3 decoder's consumption to its
// maximum (n = 960) and notes the result is only a *lower bound* for the
// data-dependent problem — all-maximum quanta is not the worst case
// (Fig 1's point).
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/types.hpp"
#include "dataflow/vrdf_graph.hpp"

namespace vrdf::baseline {

/// 2·(p + c − gcd(p, c)).
[[nodiscard]] std::int64_t sriram_pair_capacity(std::int64_t production,
                                                std::int64_t consumption);

struct TraditionalPair {
  dataflow::ActorId producer;
  dataflow::ActorId consumer;
  dataflow::BufferEdges buffer;
  std::int64_t production = 0;   // fixed-rate value used (max of the set)
  std::int64_t consumption = 0;  // fixed-rate value used (max of the set)
  std::int64_t capacity = 0;
};

struct TraditionalResult {
  bool ok = false;
  std::vector<std::string> diagnostics;
  std::vector<TraditionalPair> pairs;
  std::int64_t total_capacity = 0;
};

/// Applies the classical bound per buffer of a graph (chain, fork-join,
/// or cyclic with tokened back-edges), fixing every rate set to its
/// maximum (the paper's lower-bound construction for the MP3 case
/// study).  Pairs are ordered like GraphAnalysis::pairs (chain order on
/// chains).  The bound is per-buffer and throughput-constraint-free, so
/// it applies unchanged as the comparison baseline for graphs sized
/// under a multi-constraint set — it has no notion of the per-pair
/// rate-determining side and simply under-approximates every buffer.
[[nodiscard]] TraditionalResult traditional_capacities(
    const dataflow::VrdfGraph& graph);

/// traditional_capacities() restricted to chains (rejects anything the
/// Sec 3.1 shape check rejects) — the pre-refactor entry point.
[[nodiscard]] TraditionalResult traditional_chain_capacities(
    const dataflow::VrdfGraph& graph);

}  // namespace vrdf::baseline
