#include "baseline/traditional.hpp"

#include "dataflow/validation.hpp"
#include "util/checked_int.hpp"
#include "util/error.hpp"

namespace vrdf::baseline {

std::int64_t sriram_pair_capacity(std::int64_t production,
                                  std::int64_t consumption) {
  VRDF_REQUIRE(production > 0, "production quantum must be positive");
  VRDF_REQUIRE(consumption > 0, "consumption quantum must be positive");
  const std::int64_t window =
      checked_sub(checked_add(production, consumption),
                  gcd64(production, consumption));
  return checked_mul(2, window);
}

TraditionalResult traditional_capacities(const dataflow::VrdfGraph& graph) {
  TraditionalResult result;
  const dataflow::ValidationReport validation =
      dataflow::validate_cyclic_model(graph);
  if (!validation.ok()) {
    result.diagnostics = validation.errors;
    return result;
  }
  const auto view = graph.buffer_view();
  for (const dataflow::BufferEdges& b : view->buffers) {
    const dataflow::Edge& data = graph.edge(b.data);
    TraditionalPair pair;
    pair.producer = data.source;
    pair.consumer = data.target;
    pair.buffer = b;
    pair.production = data.production.max();
    pair.consumption = data.consumption.max();
    // Initial tokens (back-edges of cyclic models) occupy containers on
    // top of the classical window.
    pair.capacity =
        checked_add(sriram_pair_capacity(pair.production, pair.consumption),
                    data.initial_tokens);
    result.total_capacity = checked_add(result.total_capacity, pair.capacity);
    result.pairs.push_back(pair);
  }
  result.ok = true;
  return result;
}

TraditionalResult traditional_chain_capacities(const dataflow::VrdfGraph& graph) {
  const dataflow::ValidationReport validation =
      dataflow::validate_chain_model(graph);
  if (!validation.ok()) {
    TraditionalResult result;
    result.diagnostics = validation.errors;
    return result;
  }
  return traditional_capacities(graph);
}

}  // namespace vrdf::baseline
