// Task graphs — the paper's implementation model (Sec 3.1).
//
// T = (W, B, ξ, λ, κ, ζ): tasks W communicate over circular FIFO buffers B.
// A task execution starts only when its input buffer holds enough full
// containers (a value from λ(b)) *and* its output buffer holds enough empty
// containers (a value from ξ(b), the amount it will produce), so the
// execution runs to completion without blocking.  κ(w) is the worst-case
// response time guaranteed by the run-time arbiter; ζ(b) is the buffer
// capacity in containers — the quantity this library computes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dataflow/rate_set.hpp"
#include "dataflow/vrdf_graph.hpp"
#include "graph/digraph.hpp"
#include "util/time.hpp"

namespace vrdf::taskgraph {

using TaskId = graph::NodeId;

struct BufferTag {};
using BufferId = graph::Id<BufferTag>;

struct Task {
  std::string name;
  Duration worst_case_response_time;  // κ(w) > 0
};

struct Buffer {
  TaskId producer;
  TaskId consumer;
  dataflow::RateSet production;   // ξ(b): containers produced per execution
  dataflow::RateSet consumption;  // λ(b): containers consumed per execution
  /// ζ(b): capacity in containers; nullopt until computed/assigned.
  std::optional<std::int64_t> capacity;
};

/// Result of the Sec 3.3 model construction: the VRDF graph plus the
/// task→actor and buffer→edge-pair correspondences.
struct VrdfConstruction {
  dataflow::VrdfGraph graph;
  std::vector<dataflow::ActorId> actor_of_task;      // indexed by TaskId
  std::vector<dataflow::BufferEdges> edges_of_buffer;  // indexed by BufferId
};

class TaskGraph {
public:
  /// Adds a task; names must be unique, κ must be positive.
  TaskId add_task(std::string name, Duration worst_case_response_time);

  /// Adds a buffer b_ab from producer to consumer with production set ξ and
  /// consumption set λ.  Capacity starts unset (buffers are initially
  /// empty; ζ is what the analysis computes).
  BufferId add_buffer(TaskId producer, TaskId consumer,
                      dataflow::RateSet production, dataflow::RateSet consumption);

  [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }
  [[nodiscard]] std::size_t buffer_count() const { return buffers_.size(); }
  [[nodiscard]] const Task& task(TaskId id) const;
  [[nodiscard]] const Buffer& buffer(BufferId id) const;
  [[nodiscard]] std::optional<TaskId> find_task(const std::string& name) const;
  [[nodiscard]] const graph::Digraph& topology() const { return topology_; }

  /// Sets ζ(b).
  void set_capacity(BufferId id, std::int64_t capacity);

  /// True when every task has at most one input and one output buffer and
  /// the graph is a weakly connected chain (Sec 3.1 restriction).
  [[nodiscard]] bool is_chain() const;

  /// Tasks ordered from the chain's source to its sink; nullopt when the
  /// graph is not a chain.  buffers_in_order[i] connects tasks[i] to
  /// tasks[i+1].
  struct ChainOrder {
    std::vector<TaskId> tasks;
    std::vector<BufferId> buffers_in_order;
  };
  [[nodiscard]] std::optional<ChainOrder> chain_order() const;

  /// Sec 3.3 construction: one actor per task with ρ(v) = κ(w); one buffer
  /// pair of anti-parallel edges per buffer with δ(space edge) = ζ(b).
  /// Buffers with unset capacity get δ = 0 (analysis will fill them in).
  [[nodiscard]] VrdfConstruction to_vrdf() const;

  /// As to_vrdf(), but with ρ(v) taken from `response_times` (indexed by
  /// TaskId) instead of the stored κ — the deployment path derives κ from
  /// the platform's arbiters and injects it here.  The vector must have
  /// one positive entry per task.
  [[nodiscard]] VrdfConstruction to_vrdf(
      const std::vector<Duration>& response_times) const;

private:
  graph::Digraph topology_;  // one node per task, one edge per buffer
  std::vector<Task> tasks_;
  std::vector<Buffer> buffers_;
};

}  // namespace vrdf::taskgraph
