#include "taskgraph/task_graph.hpp"

#include "graph/algorithms.hpp"
#include "util/error.hpp"

namespace vrdf::taskgraph {

TaskId TaskGraph::add_task(std::string name, Duration worst_case_response_time) {
  VRDF_REQUIRE(!name.empty(), "task name must be non-empty");
  VRDF_REQUIRE(worst_case_response_time.is_positive(),
               "task worst-case response time must be positive");
  VRDF_REQUIRE(!find_task(name).has_value(),
               "task name '" + name + "' is already in use");
  const TaskId id = topology_.add_node();
  tasks_.push_back(Task{std::move(name), worst_case_response_time});
  return id;
}

BufferId TaskGraph::add_buffer(TaskId producer, TaskId consumer,
                               dataflow::RateSet production,
                               dataflow::RateSet consumption) {
  VRDF_REQUIRE(topology_.contains(producer), "buffer producer does not exist");
  VRDF_REQUIRE(topology_.contains(consumer), "buffer consumer does not exist");
  VRDF_REQUIRE(producer != consumer, "a task cannot buffer to itself");
  (void)topology_.add_edge(producer, consumer);
  const BufferId id(static_cast<BufferId::underlying_type>(buffers_.size()));
  buffers_.push_back(Buffer{producer, consumer, std::move(production),
                            std::move(consumption), std::nullopt});
  return id;
}

const Task& TaskGraph::task(TaskId id) const {
  VRDF_REQUIRE(topology_.contains(id), "task id out of range");
  return tasks_[id.index()];
}

const Buffer& TaskGraph::buffer(BufferId id) const {
  VRDF_REQUIRE(id.is_valid() && id.index() < buffers_.size(),
               "buffer id out of range");
  return buffers_[id.index()];
}

std::optional<TaskId> TaskGraph::find_task(const std::string& name) const {
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].name == name) {
      return TaskId(static_cast<TaskId::underlying_type>(i));
    }
  }
  return std::nullopt;
}

void TaskGraph::set_capacity(BufferId id, std::int64_t capacity) {
  VRDF_REQUIRE(id.is_valid() && id.index() < buffers_.size(),
               "buffer id out of range");
  VRDF_REQUIRE(capacity > 0, "buffer capacity must be positive");
  buffers_[id.index()].capacity = capacity;
}

bool TaskGraph::is_chain() const {
  return chain_order().has_value();
}

std::optional<TaskGraph::ChainOrder> TaskGraph::chain_order() const {
  const auto order = graph::chain_order(topology_);
  if (!order.has_value()) {
    return std::nullopt;
  }
  // Sec 3.1: at most one input and one output buffer per task.  chain_order
  // already enforces exactly one forward edge per adjacent pair and the
  // task graph has no anti-parallel edges, so back edges must be absent.
  for (const auto& back : order->back_edges) {
    if (!back.empty()) {
      return std::nullopt;
    }
  }
  ChainOrder out;
  out.tasks = order->nodes;
  out.buffers_in_order.reserve(order->forward_edges.size());
  for (const graph::EdgeId e : order->forward_edges) {
    // Buffers are added to the topology in buffers_ order.
    out.buffers_in_order.push_back(
        BufferId(static_cast<BufferId::underlying_type>(e.index())));
  }
  return out;
}

VrdfConstruction TaskGraph::to_vrdf() const {
  std::vector<Duration> response_times;
  response_times.reserve(tasks_.size());
  for (const Task& t : tasks_) {
    response_times.push_back(t.worst_case_response_time);
  }
  return to_vrdf(response_times);
}

VrdfConstruction TaskGraph::to_vrdf(
    const std::vector<Duration>& response_times) const {
  VRDF_REQUIRE(response_times.size() == tasks_.size(),
               "response-time vector must have one entry per task (" +
                   std::to_string(response_times.size()) + " given, " +
                   std::to_string(tasks_.size()) + " tasks)");
  VrdfConstruction out;
  out.actor_of_task.reserve(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    VRDF_REQUIRE(response_times[i].is_positive(),
                 "response time of task '" + tasks_[i].name +
                     "' must be positive");
    out.actor_of_task.push_back(
        out.graph.add_actor(tasks_[i].name, response_times[i]));
  }
  out.edges_of_buffer.reserve(buffers_.size());
  for (const Buffer& b : buffers_) {
    // δ(e_ba) = ζ(b_ab): the buffer capacity becomes the initial tokens on
    // the space edge (Sec 3.3); unset capacities contribute zero tokens.
    const std::int64_t capacity = b.capacity.value_or(0);
    out.edges_of_buffer.push_back(out.graph.add_buffer(
        out.actor_of_task[b.producer.index()],
        out.actor_of_task[b.consumer.index()], b.production, b.consumption,
        capacity));
  }
  return out;
}

}  // namespace vrdf::taskgraph
