#include "io/report.hpp"

#include <sstream>

#include "analysis/buffer_sizing.hpp"
#include "analysis/certificate.hpp"
#include "analysis/checker.hpp"
#include "analysis/deadlock.hpp"
#include "analysis/period.hpp"
#include "analysis/robustness.hpp"
#include "io/table.hpp"
#include "util/error.hpp"

namespace vrdf::io {

namespace {

std::string render_report(const dataflow::VrdfGraph& graph,
                          const analysis::ConstraintSet& constraints,
                          const analysis::GraphAnalysis& analysis) {
  VRDF_REQUIRE(analysis.admissible, "cannot report an inadmissible analysis");
  VRDF_REQUIRE(!constraints.empty(), "report needs at least one constraint");
  const bool multi = constraints.size() > 1;
  std::ostringstream os;

  std::size_t feedback_count = 0;
  for (const analysis::PairAnalysis& pair : analysis.pairs) {
    feedback_count += pair.is_feedback ? 1 : 0;
  }
  const char* const shape_word =
      analysis.is_chain ? "chain"
                        : (analysis.is_cyclic ? "cyclic graph"
                                              : "fork-join graph");
  // An interior pin anchors both a sink-kind (upstream) and a source-kind
  // (downstream) region; an end anchors exactly one.
  const auto is_interior = [&](std::size_t c) {
    return c < analysis.constraint_is_sink_kind.size() &&
           analysis.constraint_is_sink_kind[c] &&
           analysis.constraint_is_source_kind[c];
  };
  os << "# Buffer-capacity analysis report\n\n";
  if (!multi) {
    const analysis::ThroughputConstraint& constraint = constraints.front();
    os << "Throughput constraint: actor `"
       << graph.actor(constraint.actor).name << "` strictly periodic, period "
       << constraint.period.seconds().to_string() << " s ("
       << constraint.period.seconds().reciprocal().to_double() << " Hz), "
       << (is_interior(0)
               ? "interior-pinned"
               : (analysis.side == analysis::ConstraintSide::Sink
                      ? "sink-constrained"
                      : "source-constrained"))
       << " " << shape_word << " of "
       << analysis.actors_in_order.size() << " tasks";
  } else {
    os << "Throughput constraints (" << constraints.size() << "): ";
    for (std::size_t c = 0; c < constraints.size(); ++c) {
      if (c != 0) {
        os << "; ";
      }
      os << "actor `" << graph.actor(constraints[c].actor).name
         << "` strictly periodic, period "
         << constraints[c].period.seconds().to_string() << " s ("
         << constraints[c].period.seconds().reciprocal().to_double() << " Hz"
         << (is_interior(c) ? ", interior" : "") << ")";
    }
    os << " — multi-constrained " << shape_word << " of "
       << analysis.actors_in_order.size() << " tasks";
  }
  if (analysis.is_cyclic) {
    os << " (" << feedback_count << " feedback back-edge"
       << (feedback_count == 1 ? "" : "s")
       << "; capacities cover the circulating initial tokens)";
  }
  os << ".\n\n";

  os << "## Pacing budget (max admissible response times)\n\n";
  Table pacing({"task", "rho (s)", "phi (s)", "slack"});
  for (std::size_t i = 0; i < analysis.actors_in_order.size(); ++i) {
    const dataflow::Actor& actor = graph.actor(analysis.actors_in_order[i]);
    const Duration slack = analysis.pacing[i] - actor.response_time;
    pacing.add_row({actor.name, actor.response_time.seconds().to_string(),
                    analysis.pacing[i].seconds().to_string(),
                    slack.is_zero() ? "tight" : slack.seconds().to_string()});
  }
  os << pacing.to_string() << '\n';

  os << "## Buffer capacities\n\n";
  Table caps({"buffer", "pi / gamma", "capacity", "installed",
              "raw bound x", "deadlock-free min"});
  bool mismatch = false;
  for (const analysis::PairAnalysis& pair : analysis.pairs) {
    const dataflow::Edge& data = graph.edge(pair.buffer.data);
    const std::int64_t installed = graph.buffer_capacity(pair.buffer);
    mismatch = mismatch || installed != pair.capacity;
    std::string name = graph.actor(pair.producer).name + "->" +
                       graph.actor(pair.consumer).name;
    if (pair.is_feedback) {
      name += " (feedback, delta=" + std::to_string(pair.initial_tokens) + ")";
    }
    // Mark the pairs whose side differs from the report's headline mode:
    // source-determined pairs of a multi-constraint set, and the
    // downstream region of an interior pin (whose headline side is Sink).
    if (pair.determined_by == analysis::ConstraintSide::Source &&
        (multi || analysis.side == analysis::ConstraintSide::Sink)) {
      name += " (producer-paced)";
    }
    caps.add_row(
        {std::move(name),
         data.production.to_string() + " / " + data.consumption.to_string(),
         std::to_string(pair.capacity),
         std::to_string(installed) + (installed == pair.capacity ? "" : " (!)"),
         pair.raw_tokens.to_string(),
         std::to_string(analysis::min_deadlock_free_pair_capacity(
             data.production, data.consumption))});
  }
  os << caps.to_string() << '\n';
  os << "Total: " << analysis.total_capacity << " containers";
  if (mismatch) {
    os << " — WARNING: installed capacities differ from the analysis";
  }
  os << ".\n";
  os << "Deadlock-free floor: " << analysis::min_deadlock_free_total(graph)
     << " containers.\n\n";

  const analysis::MinPeriodResult headroom =
      multi ? analysis::min_admissible_period(graph, constraints,
                                              constraints.front().actor)
            : analysis::min_admissible_period(graph, constraints.front().actor);
  if (headroom.ok) {
    os << "## Rate headroom\n\n"
       << "Fastest admissible period ";
    if (multi) {
      os << "of `" << graph.actor(constraints.front().actor).name
         << "` (other constraints held fixed) ";
    }
    os << "with the installed capacities: "
       << headroom.min_period.seconds().to_string() << " s (binding: "
       << headroom.binding_constraint << "; exact feasibility infimum "
       << headroom.infimum_period.seconds().to_string() << " s, "
       << (headroom.infimum_attained ? "attained" : "open") << ").\n";
  }

  const analysis::RobustnessReport robustness =
      analysis::robustness_margins(graph, constraints);
  if (robustness.ok) {
    os << "\n## Robustness margins\n\n"
       << "Largest response-time overrun each task can sustain (installed"
          " capacities and all other tasks held fixed):\n\n";
    Table margins({"task", "rho (s)", "phi (s)", "tolerable overrun (s)"});
    for (const analysis::ActorMargin& m : robustness.actors) {
      margins.add_row({graph.actor(m.actor).name,
                       m.response_time.seconds().to_string(),
                       m.max_response_time.seconds().to_string(),
                       m.margin.is_zero() ? "none"
                                          : m.margin.seconds().to_string()});
    }
    os << margins.to_string() << '\n';
    Table buffers({"buffer", "required", "installed", "headroom"});
    for (const analysis::BufferHeadroom& b : robustness.buffers) {
      buffers.add_row({graph.actor(b.producer).name + "->" +
                           graph.actor(b.consumer).name,
                       std::to_string(b.required), std::to_string(b.installed),
                       std::to_string(b.headroom)});
    }
    os << buffers.to_string() << '\n';
    os << "Jointly, every task may consume "
       << robustness.joint_safe_fraction.to_string()
       << " of its individual slack phi - rho at once.\n";
  }

  // Translation validation: transcribe the analysis into its capacity
  // certificate and re-validate every clause with the independent
  // checker.  Analyses from pre-certificate result shapes (no alignment
  // leads) simply skip the section.
  if (analysis.leads.size() == analysis.actors_in_order.size() &&
      !analysis.actors_in_order.empty()) {
    const analysis::Certificate cert =
        analysis::make_certificate(graph, analysis);
    const analysis::CertificateCheck check =
        analysis::check_certificate(graph, cert);
    os << "\n## Certificate\n\n"
       << "Proof-carrying facts: " << cert.actors.size()
       << " actor witnesses (phi, omega, rho), " << cert.pairs.size()
       << " pair inequalities, " << cert.constraints.size()
       << " constraint anchor" << (cert.constraints.size() == 1 ? "" : "s")
       << ".\n";
    if (check.ok) {
      os << "Independent checker: all " << check.clauses_checked
         << " clauses hold (phi/omega/zeta/delta/coverage) — the "
            "capacities above are certified, not trusted.\n";
    } else {
      os << "Independent checker: " << check.violations.size()
         << " of " << check.clauses_checked
         << " clauses VIOLATED — the analysis and the checker disagree:\n";
      for (const analysis::ClauseViolation& violation : check.violations) {
        os << "  - " << analysis::describe(violation) << "\n";
      }
    }
  }
  return os.str();
}

}  // namespace

std::string analysis_report(const dataflow::VrdfGraph& graph,
                            const analysis::ThroughputConstraint& constraint,
                            const analysis::GraphAnalysis& analysis) {
  return render_report(graph, analysis::ConstraintSet{constraint}, analysis);
}

std::string analysis_report(const dataflow::VrdfGraph& graph,
                            const analysis::ConstraintSet& constraints,
                            const analysis::GraphAnalysis& analysis) {
  return render_report(graph, constraints, analysis);
}

std::string admission_summary(const dataflow::VrdfGraph& graph,
                              const analysis::AdmissionController& controller) {
  const analysis::GraphAnalysis& analysis = controller.analysis();
  const analysis::InvalidationStats& stats = controller.engine().stats();
  std::ostringstream os;
  os << "# Admission-control service summary\n\n";
  os << "Serviced streams (" << controller.streams().size() << "):\n";
  for (const analysis::ThroughputConstraint& c : controller.streams()) {
    os << "  - actor `" << graph.actor(c.actor).name << "`, period "
       << c.period.seconds().to_string() << " s ("
       << c.period.seconds().reciprocal().to_double() << " Hz)\n";
  }
  os << "\nTotal buffer capacity: " << analysis.total_capacity
     << " containers across " << analysis.pairs.size() << " pairs\n";
  os << "\nIncremental engine counters:\n";
  os << "  - queries served: " << stats.queries << "\n";
  os << "  - pacing recomputes: " << stats.pacing_recomputes
     << ", pacing cache hits: " << stats.pacing_cache_hits << "\n";
  os << "  - leads recomputed: " << stats.leads_recomputed
     << ", reused: " << stats.leads_reused << "\n";
  os << "  - pairs recomputed: " << stats.pairs_recomputed
     << ", reused: " << stats.pairs_reused << "\n";
  os << "  - last invalidation cone: " << stats.last_cone_actors
     << " actors, " << stats.last_cone_pairs << " pairs\n";
  if (controller.require_certificate()) {
    os << "  - certificates checked: " << stats.certificates_checked << " ("
       << stats.certificate_clauses << " clauses, "
       << stats.certificate_violations << " violations)\n";
  }
  return os.str();
}

std::string deployment_report(const taskgraph::TaskGraph& tasks,
                              const sched::Platform& platform,
                              const analysis::DeploymentResult& result) {
  std::ostringstream os;
  os << "# Shared-platform deployment report\n\n";

  os << "## Platform\n\n";
  Table procs({"processor", "arbiter", "wheel (s)", "utilization", "slack (s)"});
  for (std::size_t p = 0; p < platform.processor_count(); ++p) {
    procs.add_row({platform.processor_name(p),
                   sched::arbiter_policy_name(platform.policy(p)),
                   platform.wheel_period(p).seconds().to_string(),
                   platform.utilization(p).to_string(),
                   platform.slack(p).seconds().to_string()});
  }
  os << procs.to_string() << '\n';

  os << "## Derived response times\n\n";
  Table kappas({"task", "processor", "policy", "wcet (s)", "allocation",
                "derivation", "kappa (s)"});
  for (const analysis::DerivedKappa& derived : result.kappas) {
    const sched::ServiceModel& service = derived.service;
    const std::string allocation =
        service.policy == sched::ArbiterPolicy::Tdm
            ? service.slot.seconds().to_string() + " / " +
                  service.wheel.seconds().to_string()
            : "sum " + service.total_wcet.seconds().to_string();
    kappas.add_row({derived.task_name,
                    platform.processor_name(derived.processor),
                    sched::arbiter_policy_name(service.policy),
                    service.wcet.seconds().to_string(), allocation,
                    analysis::kappa_derivation_name(derived.derivation),
                    derived.kappa.seconds().to_string()});
  }
  os << kappas.to_string() << '\n';
  os << "Task graph: " << tasks.task_count() << " tasks, "
     << tasks.buffer_count() << " buffers.\n\n";

  if (!result.admissible) {
    os << "## Verdict\n\nDeployment INADMISSIBLE:\n";
    for (const std::string& diagnostic : result.diagnostics) {
      os << "  - " << diagnostic << "\n";
    }
    return os.str();
  }

  if (result.certificate_check.has_value()) {
    os << "## Platform certificate\n\n";
    if (result.certificate_check->ok) {
      os << "Independent checker: all "
         << result.certificate_check->clauses_checked
         << " clauses hold, including the kappa clauses re-deriving each "
            "task's bound from its arbiter terms.\n\n";
    } else {
      os << "Independent checker: "
         << result.certificate_check->violations.size() << " of "
         << result.certificate_check->clauses_checked
         << " clauses VIOLATED:\n";
      for (const analysis::ClauseViolation& violation :
           result.certificate_check->violations) {
        os << "  - " << analysis::describe(violation) << "\n";
      }
      os << '\n';
    }
  }

  // Render against a copy with the computed capacities installed — the
  // deployment result itself leaves ζ unset on the constructed graph.
  dataflow::VrdfGraph sized = result.construction.graph;
  analysis::apply_capacities(sized, result.analysis);
  os << render_report(sized, result.constraints, result.analysis);
  return os.str();
}

}  // namespace vrdf::io
