#include "io/dot.hpp"

#include <sstream>
#include <unordered_map>

#include "util/error.hpp"

namespace vrdf::io {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

/// Shared emitter for every VrdfGraph overload; the annotation inputs are
/// empty/null for the plain rendering.  Every constrained actor renders
/// double-bordered with its own period.
std::string render_vrdf_dot(const dataflow::VrdfGraph& graph,
                            const analysis::ConstraintSet& constraints,
                            const analysis::GraphAnalysis* analysis) {
  std::unordered_map<dataflow::EdgeId, std::int64_t> capacity_of_space;
  if (analysis != nullptr) {
    for (const analysis::PairAnalysis& pair : analysis->pairs) {
      capacity_of_space.emplace(pair.buffer.space, pair.capacity);
    }
  }
  // Back-edges render dashed and token-annotated so feedback loops are
  // visually distinct from the forward pipeline.  The classification is
  // the buffer view's own (single source of truth); graphs without a
  // view (unpaired edges, token-free cycles) render without feedback
  // annotations.
  std::unordered_map<dataflow::EdgeId, bool> data_edge_feedback;
  if (const auto view = graph.buffer_view(); view.has_value()) {
    for (std::size_t pos = 0; pos < view->buffers.size(); ++pos) {
      data_edge_feedback.emplace(view->buffers[pos].data,
                                 view->is_feedback[pos]);
    }
  }
  std::ostringstream os;
  os << "digraph vrdf {\n  rankdir=LR;\n  node [shape=box];\n";
  for (const dataflow::ActorId a : graph.actors()) {
    const dataflow::Actor& actor = graph.actor(a);
    os << "  n" << a.value() << " [label=\"" << escape(actor.name)
       << "\\nrho=" << actor.response_time.seconds().to_string() << " s";
    const analysis::ThroughputConstraint* pinned = nullptr;
    for (const analysis::ThroughputConstraint& c : constraints) {
      if (c.actor == a) {
        pinned = &c;
        break;
      }
    }
    if (pinned != nullptr) {
      os << "\\ntau=" << pinned->period.seconds().to_string()
         << " s\" peripheries=2];\n";
    } else {
      os << "\"];\n";
    }
  }
  for (const dataflow::EdgeId e : graph.edges()) {
    const dataflow::Edge& edge = graph.edge(e);
    const bool is_space_edge =
        edge.paired.is_valid() && edge.paired.value() < e.value();
    os << "  n" << edge.source.value() << " -> n" << edge.target.value()
       << " [label=\"";
    if (is_space_edge) {
      os << "space d=" << edge.initial_tokens;
      const auto it = capacity_of_space.find(e);
      if (it != capacity_of_space.end()) {
        os << " zeta=" << it->second;
        // ζ is the *total* capacity: free containers here plus the ones
        // the paired data edge's initial tokens occupy.
        const std::int64_t installed =
            edge.initial_tokens + graph.edge(edge.paired).initial_tokens;
        if (it->second != installed) {
          os << " (!)";
        }
      }
      os << "\" style=dashed";
    } else {
      os << escape(edge.production.to_string()) << " / "
         << escape(edge.consumption.to_string());
      if (edge.initial_tokens != 0) {
        os << " d=" << edge.initial_tokens;
      }
      const auto feedback = data_edge_feedback.find(e);
      if (feedback != data_edge_feedback.end() && feedback->second) {
        os << " [feedback]\" style=dashed constraint=false";
      } else {
        os << '"';
      }
    }
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace

std::string to_dot(const dataflow::VrdfGraph& graph) {
  return render_vrdf_dot(graph, {}, nullptr);
}

std::string to_dot(const dataflow::VrdfGraph& graph,
                   const analysis::ThroughputConstraint& constraint,
                   const analysis::GraphAnalysis& analysis) {
  return to_dot(graph, analysis::ConstraintSet{constraint}, analysis);
}

std::string to_dot(const dataflow::VrdfGraph& graph,
                   const analysis::ConstraintSet& constraints,
                   const analysis::GraphAnalysis& analysis) {
  VRDF_REQUIRE(analysis.admissible,
               "cannot render an inadmissible analysis");
  return render_vrdf_dot(graph, constraints, &analysis);
}

std::string to_dot(const taskgraph::TaskGraph& graph) {
  std::ostringstream os;
  os << "digraph taskgraph {\n  rankdir=LR;\n  node [shape=box];\n";
  for (std::size_t i = 0; i < graph.task_count(); ++i) {
    const auto id =
        taskgraph::TaskId(static_cast<taskgraph::TaskId::underlying_type>(i));
    const taskgraph::Task& task = graph.task(id);
    os << "  n" << i << " [label=\"" << escape(task.name) << "\\nkappa="
       << task.worst_case_response_time.seconds().to_string() << " s\"];\n";
  }
  for (std::size_t i = 0; i < graph.buffer_count(); ++i) {
    const auto id = taskgraph::BufferId(
        static_cast<taskgraph::BufferId::underlying_type>(i));
    const taskgraph::Buffer& buffer = graph.buffer(id);
    os << "  n" << buffer.producer.value() << " -> n" << buffer.consumer.value()
       << " [label=\"" << escape(buffer.production.to_string()) << " / "
       << escape(buffer.consumption.to_string());
    if (buffer.capacity.has_value()) {
      os << " zeta=" << *buffer.capacity;
    }
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace vrdf::io
