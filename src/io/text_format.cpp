#include "io/text_format.hpp"

#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace vrdf::io {

namespace {

using dataflow::RateSet;

[[noreturn]] void parse_error(std::size_t line_no, const std::string& message) {
  throw ModelError("line " + std::to_string(line_no) + ": " + message);
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    out.push_back(token);
  }
  return out;
}

std::string rate_set_to_text(const RateSet& set) { return set.to_string(); }

RateSet parse_rate_set(const std::string& text, std::size_t line_no) {
  if (text.size() < 3) {
    parse_error(line_no, "malformed rate set '" + text + "'");
  }
  const char open = text.front();
  const char close = text.back();
  const std::string body = text.substr(1, text.size() - 2);
  std::vector<std::int64_t> values;
  std::istringstream is(body);
  std::string item;
  while (std::getline(is, item, ',')) {
    try {
      values.push_back(std::stoll(item));
    } catch (const std::exception&) {
      parse_error(line_no, "malformed rate value '" + item + "'");
    }
  }
  if (open == '{' && close == '}') {
    if (values.empty()) {
      parse_error(line_no, "empty rate set");
    }
    return RateSet::of(values);
  }
  if (open == '[' && close == ']') {
    if (values.size() != 2) {
      parse_error(line_no, "an interval needs exactly two bounds");
    }
    return RateSet::interval(values[0], values[1]);
  }
  parse_error(line_no, "rate sets are '{...}' or '[lo,hi]'");
}

/// "key=value" accessor; returns empty when the token has another key.
std::optional<std::string> key_value(const std::string& token,
                                     const std::string& key) {
  const std::string prefix = key + "=";
  if (token.rfind(prefix, 0) == 0) {
    return token.substr(prefix.size());
  }
  return std::nullopt;
}

}  // namespace

std::string write_chain(
    const dataflow::VrdfGraph& graph,
    const std::optional<analysis::ThroughputConstraint>& constraint) {
  for (const dataflow::EdgeId e : graph.edges()) {
    VRDF_REQUIRE(graph.edge(e).paired.is_valid(),
                 "write_chain only serializes buffer-paired graphs");
  }
  std::ostringstream os;
  os << "vrdf-chain v1\n";
  for (const dataflow::ActorId a : graph.actors()) {
    const dataflow::Actor& actor = graph.actor(a);
    os << "actor " << actor.name
       << " rho=" << actor.response_time.seconds().to_string() << '\n';
  }
  for (const dataflow::BufferEdges& b : graph.buffers()) {
    const dataflow::Edge& data = graph.edge(b.data);
    os << "buffer " << graph.actor(data.source).name << " -> "
       << graph.actor(data.target).name
       << " pi=" << rate_set_to_text(data.production)
       << " gamma=" << rate_set_to_text(data.consumption);
    // capacity= is the *total* container count (free + occupied by
    // initial data tokens); delta= carries the initial tokens of cyclic
    // back-edges so cyclic models round-trip.
    if (const std::int64_t capacity = graph.buffer_capacity(b);
        capacity != 0) {
      os << " capacity=" << capacity;
    }
    if (data.initial_tokens != 0) {
      os << " delta=" << data.initial_tokens;
    }
    os << '\n';
  }
  if (constraint.has_value()) {
    os << "constraint " << graph.actor(constraint->actor).name
       << " period=" << constraint->period.seconds().to_string() << '\n';
  }
  return os.str();
}

ChainDocument read_chain(const std::string& text) {
  ChainDocument doc;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  bool header_seen = false;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.erase(hash);
    }
    const std::vector<std::string> tokens = split_ws(line);
    if (tokens.empty()) {
      continue;
    }
    if (!header_seen) {
      if (tokens.size() != 2 || tokens[0] != "vrdf-chain" || tokens[1] != "v1") {
        parse_error(line_no, "expected header 'vrdf-chain v1'");
      }
      header_seen = true;
      continue;
    }
    if (tokens[0] == "actor") {
      if (tokens.size() != 3) {
        parse_error(line_no, "expected 'actor <name> rho=<seconds>'");
      }
      const auto rho = key_value(tokens[2], "rho");
      if (!rho.has_value()) {
        parse_error(line_no, "missing rho=");
      }
      (void)doc.graph.add_actor(tokens[1],
                                Duration(Rational::from_string(*rho)));
    } else if (tokens[0] == "buffer") {
      if (tokens.size() < 6 || tokens[2] != "->") {
        parse_error(line_no,
                    "expected 'buffer <p> -> <c> pi=<set> gamma=<set> "
                    "[capacity=<n>] [delta=<n>]'");
      }
      const auto producer = doc.graph.find_actor(tokens[1]);
      const auto consumer = doc.graph.find_actor(tokens[3]);
      if (!producer.has_value() || !consumer.has_value()) {
        parse_error(line_no, "buffer references an unknown actor");
      }
      std::optional<RateSet> pi;
      std::optional<RateSet> gamma;
      std::int64_t capacity = 0;
      std::int64_t delta = 0;
      for (std::size_t i = 4; i < tokens.size(); ++i) {
        if (const auto v = key_value(tokens[i], "pi")) {
          pi = parse_rate_set(*v, line_no);
        } else if (const auto g = key_value(tokens[i], "gamma")) {
          gamma = parse_rate_set(*g, line_no);
        } else if (const auto c = key_value(tokens[i], "capacity")) {
          try {
            capacity = std::stoll(*c);
          } catch (const std::exception&) {
            parse_error(line_no, "malformed capacity '" + *c + "'");
          }
        } else if (const auto d = key_value(tokens[i], "delta")) {
          try {
            delta = std::stoll(*d);
          } catch (const std::exception&) {
            parse_error(line_no, "malformed delta '" + *d + "'");
          }
        } else {
          parse_error(line_no, "unknown attribute '" + tokens[i] + "'");
        }
      }
      if (!pi.has_value() || !gamma.has_value()) {
        parse_error(line_no, "buffer needs pi= and gamma=");
      }
      if (delta < 0 || capacity < 0 || (capacity != 0 && capacity < delta)) {
        parse_error(line_no, "capacity must cover delta (initial tokens)");
      }
      (void)doc.graph.add_buffer(*producer, *consumer, *pi, *gamma, capacity,
                                 delta);
    } else if (tokens[0] == "constraint") {
      if (tokens.size() != 3) {
        parse_error(line_no, "expected 'constraint <actor> period=<seconds>'");
      }
      const auto actor = doc.graph.find_actor(tokens[1]);
      if (!actor.has_value()) {
        parse_error(line_no, "constraint references an unknown actor");
      }
      const auto period = key_value(tokens[2], "period");
      if (!period.has_value()) {
        parse_error(line_no, "missing period=");
      }
      doc.constraint = analysis::ThroughputConstraint{
          *actor, Duration(Rational::from_string(*period))};
    } else {
      parse_error(line_no, "unknown directive '" + tokens[0] + "'");
    }
  }
  if (!header_seen) {
    throw ModelError("empty document: expected header 'vrdf-chain v1'");
  }
  return doc;
}

}  // namespace vrdf::io
