#include "io/text_format.hpp"

#include <cctype>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace vrdf::io {

namespace {

using dataflow::RateSet;

[[noreturn]] void parse_error(std::size_t line_no, const std::string& message) {
  throw ModelError("line " + std::to_string(line_no) + ": " + message);
}

/// Checked std::stoll: rejects non-numeric text, trailing garbage
/// ("12abc") and values outside int64 with a line-numbered diagnostic
/// instead of letting std::invalid_argument / std::out_of_range escape
/// (or silently truncating the garbage suffix).
std::int64_t parse_int64(const std::string& text, std::size_t line_no,
                         const char* what) {
  std::size_t consumed = 0;
  try {
    const std::int64_t value = std::stoll(text, &consumed);
    if (consumed != text.size()) {
      parse_error(line_no, std::string("malformed ") + what + " '" + text +
                               "' (trailing characters)");
    }
    return value;
  } catch (const std::invalid_argument&) {
    parse_error(line_no, std::string("malformed ") + what + " '" + text + "'");
  } catch (const std::out_of_range&) {
    parse_error(line_no,
                std::string(what) + " '" + text + "' is out of range");
  }
}

/// Checked Rational::from_string: converts its ContractError /
/// OverflowError into a line-numbered parse diagnostic.
Rational parse_rational(const std::string& text, std::size_t line_no,
                        const char* what) {
  try {
    return Rational::from_string(text);
  } catch (const OverflowError&) {
    parse_error(line_no,
                std::string(what) + " '" + text + "' is out of range");
  } catch (const Error&) {
    parse_error(line_no, std::string("malformed ") + what + " '" + text + "'");
  }
}

std::string rate_set_to_text(const RateSet& set) { return set.to_string(); }

RateSet parse_rate_set(const std::string& text, std::size_t line_no) {
  if (text.size() < 3) {
    parse_error(line_no, "malformed rate set '" + text + "'");
  }
  const char open = text.front();
  const char close = text.back();
  const std::string body = text.substr(1, text.size() - 2);
  std::vector<std::int64_t> values;
  std::istringstream is(body);
  std::string item;
  while (std::getline(is, item, ',')) {
    values.push_back(parse_int64(item, line_no, "rate value"));
  }
  if (open == '{' && close == '}') {
    if (values.empty()) {
      parse_error(line_no, "empty rate set");
    }
    return RateSet::of(values);
  }
  if (open == '[' && close == ']') {
    if (values.size() != 2) {
      parse_error(line_no, "an interval needs exactly two bounds");
    }
    return RateSet::interval(values[0], values[1]);
  }
  parse_error(line_no, "rate sets are '{...}' or '[lo,hi]'");
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    out.push_back(token);
  }
  return out;
}

/// "key=value" accessor; returns empty when the token has another key.
std::optional<std::string> key_value(const std::string& token,
                                     const std::string& key) {
  const std::string prefix = key + "=";
  if (token.rfind(prefix, 0) == 0) {
    return token.substr(prefix.size());
  }
  return std::nullopt;
}

}  // namespace

std::string write_chain(
    const dataflow::VrdfGraph& graph,
    const std::optional<analysis::ThroughputConstraint>& constraint) {
  analysis::ConstraintSet constraints;
  if (constraint.has_value()) {
    constraints.push_back(*constraint);
  }
  return write_chain(graph, constraints);
}

std::string write_chain(const dataflow::VrdfGraph& graph,
                        const analysis::ConstraintSet& constraints) {
  for (const dataflow::EdgeId e : graph.edges()) {
    VRDF_REQUIRE(graph.edge(e).paired.is_valid(),
                 "write_chain only serializes buffer-paired graphs");
  }
  // The format tokenizes on whitespace, strips '#' comments and keys
  // buffer endpoints on the literal "->" token, so a name containing any
  // of those would serialize into a document that reparses wrong (or off
  // by one token).  Reject at write time instead of emitting garbage.
  for (const dataflow::ActorId a : graph.actors()) {
    const std::string& name = graph.actor(a).name;
    bool bad = name.empty() || name == "->" ||
               name.find('#') != std::string::npos ||
               name.find('=') != std::string::npos;
    for (const char c : name) {
      bad = bad || std::isspace(static_cast<unsigned char>(c)) != 0;
    }
    VRDF_REQUIRE(!bad, "write_chain: actor name '" + name +
                           "' cannot be serialized (empty, \"->\", or "
                           "containing whitespace, '=' or '#')");
  }
  std::ostringstream os;
  os << "vrdf-chain v1\n";
  for (const dataflow::ActorId a : graph.actors()) {
    const dataflow::Actor& actor = graph.actor(a);
    os << "actor " << actor.name
       << " rho=" << actor.response_time.seconds().to_string() << '\n';
  }
  for (const dataflow::BufferEdges& b : graph.buffers()) {
    const dataflow::Edge& data = graph.edge(b.data);
    os << "buffer " << graph.actor(data.source).name << " -> "
       << graph.actor(data.target).name
       << " pi=" << rate_set_to_text(data.production)
       << " gamma=" << rate_set_to_text(data.consumption);
    // capacity= is the *total* container count (free + occupied by
    // initial data tokens); delta= carries the initial tokens of cyclic
    // back-edges so cyclic models round-trip.
    if (const std::int64_t capacity = graph.buffer_capacity(b);
        capacity != 0) {
      os << " capacity=" << capacity;
    }
    if (data.initial_tokens != 0) {
      os << " delta=" << data.initial_tokens;
    }
    os << '\n';
  }
  for (const analysis::ThroughputConstraint& c : constraints) {
    os << "constraint " << graph.actor(c.actor).name
       << " period=" << c.period.seconds().to_string() << '\n';
  }
  return os.str();
}

ChainDocument read_chain(const std::string& text) {
  ChainDocument doc;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  bool header_seen = false;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.erase(hash);
    }
    const std::vector<std::string> tokens = split_ws(line);
    if (tokens.empty()) {
      continue;
    }
    if (!header_seen) {
      if (tokens.size() != 2 || tokens[0] != "vrdf-chain" || tokens[1] != "v1") {
        parse_error(line_no, "expected header 'vrdf-chain v1'");
      }
      header_seen = true;
      continue;
    }
    if (tokens[0] == "actor") {
      if (tokens.size() != 3) {
        parse_error(line_no, "expected 'actor <name> rho=<seconds>'");
      }
      const auto rho = key_value(tokens[2], "rho");
      if (!rho.has_value()) {
        parse_error(line_no, "missing rho=");
      }
      (void)doc.graph.add_actor(tokens[1],
                                Duration(parse_rational(*rho, line_no, "rho")));
    } else if (tokens[0] == "buffer") {
      if (tokens.size() < 6 || tokens[2] != "->") {
        parse_error(line_no,
                    "expected 'buffer <p> -> <c> pi=<set> gamma=<set> "
                    "[capacity=<n>] [delta=<n>]'");
      }
      const auto producer = doc.graph.find_actor(tokens[1]);
      const auto consumer = doc.graph.find_actor(tokens[3]);
      if (!producer.has_value() || !consumer.has_value()) {
        parse_error(line_no, "buffer references an unknown actor");
      }
      std::optional<RateSet> pi;
      std::optional<RateSet> gamma;
      std::int64_t capacity = 0;
      std::int64_t delta = 0;
      for (std::size_t i = 4; i < tokens.size(); ++i) {
        if (const auto v = key_value(tokens[i], "pi")) {
          pi = parse_rate_set(*v, line_no);
        } else if (const auto g = key_value(tokens[i], "gamma")) {
          gamma = parse_rate_set(*g, line_no);
        } else if (const auto c = key_value(tokens[i], "capacity")) {
          capacity = parse_int64(*c, line_no, "capacity");
        } else if (const auto d = key_value(tokens[i], "delta")) {
          delta = parse_int64(*d, line_no, "delta");
        } else {
          parse_error(line_no, "unknown attribute '" + tokens[i] + "'");
        }
      }
      if (!pi.has_value() || !gamma.has_value()) {
        parse_error(line_no, "buffer needs pi= and gamma=");
      }
      if (delta < 0 || capacity < 0 || (capacity != 0 && capacity < delta)) {
        parse_error(line_no, "capacity must cover delta (initial tokens)");
      }
      (void)doc.graph.add_buffer(*producer, *consumer, *pi, *gamma, capacity,
                                 delta);
    } else if (tokens[0] == "constraint") {
      if (tokens.size() != 3) {
        parse_error(line_no, "expected 'constraint <actor> period=<seconds>'");
      }
      const auto actor = doc.graph.find_actor(tokens[1]);
      if (!actor.has_value()) {
        parse_error(line_no, "constraint references an unknown actor");
      }
      for (const analysis::ThroughputConstraint& existing : doc.constraints) {
        if (existing.actor == *actor) {
          parse_error(line_no,
                      "duplicate constraint for actor '" + tokens[1] + "'");
        }
      }
      const auto period = key_value(tokens[2], "period");
      if (!period.has_value()) {
        parse_error(line_no, "missing period=");
      }
      doc.constraints.push_back(analysis::ThroughputConstraint{
          *actor, Duration(parse_rational(*period, line_no, "period"))});
      if (!doc.constraint.has_value()) {
        doc.constraint = doc.constraints.front();
      }
    } else {
      parse_error(line_no, "unknown directive '" + tokens[0] + "'");
    }
  }
  if (!header_seen) {
    throw ModelError("empty document: expected header 'vrdf-chain v1'");
  }
  return doc;
}

}  // namespace vrdf::io
