#include "io/trace.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/error.hpp"

namespace vrdf::io {

namespace {

std::string edge_label(const dataflow::VrdfGraph& graph, dataflow::EdgeId e) {
  const dataflow::Edge& edge = graph.edge(e);
  // A space edge is the half of a buffer pair that was added second; label
  // it with the *buffer's* data direction so both halves of one buffer
  // line up in the trace.
  if (edge.paired.is_valid() && edge.paired.value() < e.value()) {
    const dataflow::Edge& data = graph.edge(edge.paired);
    return graph.actor(data.source).name + "->" +
           graph.actor(data.target).name + "/space";
  }
  return graph.actor(edge.source).name + "->" + graph.actor(edge.target).name;
}

/// Merged (time, token-count) steps for one edge.
std::vector<std::pair<TimePoint, std::int64_t>> occupancy_steps(
    const sim::Simulator& sim, const dataflow::VrdfGraph& graph,
    dataflow::EdgeId e) {
  const auto& productions = sim.production_events(e);
  const auto& consumptions = sim.consumption_events(e);
  std::vector<std::pair<TimePoint, std::int64_t>> steps;
  std::int64_t tokens = graph.edge(e).initial_tokens;
  steps.emplace_back(TimePoint(), tokens);
  std::size_t pi = 0;
  std::size_t ci = 0;
  while (pi < productions.size() || ci < consumptions.size()) {
    const bool take_production =
        ci >= consumptions.size() ||
        (pi < productions.size() &&
         productions[pi].time <= consumptions[ci].time);
    TimePoint t;
    if (take_production) {
      t = productions[pi].time;
      tokens += productions[pi].count;
      ++pi;
    } else {
      t = consumptions[ci].time;
      tokens -= consumptions[ci].count;
      ++ci;
    }
    if (!steps.empty() && steps.back().first == t) {
      steps.back().second = tokens;  // coalesce simultaneous changes
    } else {
      steps.emplace_back(t, tokens);
    }
  }
  return steps;
}

std::int64_t to_nanoseconds(const TimePoint& t) {
  // Floor to nanoseconds; see header note.
  return (t.seconds() * Rational(1'000'000'000)).floor();
}

std::string to_binary(std::int64_t value) {
  VRDF_REQUIRE(value >= 0, "token counts are non-negative");
  if (value == 0) {
    return "0";
  }
  std::string bits;
  for (std::int64_t v = value; v > 0; v >>= 1) {
    bits.push_back((v & 1) != 0 ? '1' : '0');
  }
  std::reverse(bits.begin(), bits.end());
  return bits;
}

std::string sanitize(std::string label) {
  // "a->b/space" becomes "a_to_b_space".
  std::string out;
  for (std::size_t i = 0; i < label.size(); ++i) {
    if (label[i] == '-' && i + 1 < label.size() && label[i + 1] == '>') {
      out += "_to_";
      ++i;
    } else if (label[i] == '/' || label[i] == ' ' || label[i] == '-' ||
               label[i] == '>') {
      out += '_';
    } else {
      out += label[i];
    }
  }
  return out;
}

}  // namespace

std::string firings_to_csv(const sim::Simulator& sim,
                           const dataflow::VrdfGraph& graph,
                           const std::vector<dataflow::ActorId>& actors) {
  std::ostringstream os;
  os << "actor,firing,start_s,finish_s\n";
  for (const dataflow::ActorId a : actors) {
    for (const sim::FiringRecord& r : sim.firings(a)) {
      os << graph.actor(a).name << ',' << r.index << ','
         << r.start.seconds().to_string() << ','
         << r.finish.seconds().to_string() << '\n';
    }
  }
  return os.str();
}

std::string occupancy_to_csv(const sim::Simulator& sim,
                             const dataflow::VrdfGraph& graph,
                             const std::vector<dataflow::EdgeId>& edges) {
  std::ostringstream os;
  os << "time_s,edge,tokens\n";
  for (const dataflow::EdgeId e : edges) {
    const std::string label = edge_label(graph, e);
    for (const auto& [time, tokens] : occupancy_steps(sim, graph, e)) {
      os << time.seconds().to_string() << ',' << label << ',' << tokens << '\n';
    }
  }
  return os.str();
}

std::string occupancy_to_vcd(const sim::Simulator& sim,
                             const dataflow::VrdfGraph& graph,
                             const std::vector<dataflow::EdgeId>& edges) {
  VRDF_REQUIRE(!edges.empty(), "VCD export needs at least one edge");
  VRDF_REQUIRE(edges.size() < 94, "VCD export supports at most 93 signals");
  std::ostringstream os;
  os << "$timescale 1ns $end\n$scope module vrdf $end\n";
  std::vector<char> ids;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const char id = static_cast<char>('!' + i);
    ids.push_back(id);
    os << "$var integer 64 " << id << ' '
       << sanitize(edge_label(graph, edges[i])) << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";

  // Merge all edges' steps into one global timeline.
  std::map<std::int64_t, std::vector<std::pair<char, std::int64_t>>> timeline;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    for (const auto& [time, tokens] : occupancy_steps(sim, graph, edges[i])) {
      timeline[to_nanoseconds(time)].emplace_back(ids[i], tokens);
    }
  }
  for (const auto& [ns, changes] : timeline) {
    os << '#' << ns << '\n';
    // Simultaneous changes to the same signal: the last one wins.
    std::map<char, std::int64_t> final_values;
    for (const auto& [id, tokens] : changes) {
      final_values[id] = tokens;
    }
    for (const auto& [id, tokens] : final_values) {
      os << 'b' << to_binary(tokens) << ' ' << id << '\n';
    }
  }
  return os.str();
}

std::string rho_violations_to_csv(const sim::MonitorReport& report,
                                  const dataflow::VrdfGraph& graph) {
  std::ostringstream os;
  os << "actor,firing,declared_s,observed_s\n";
  for (const sim::RhoViolation& v : report.rho_violations) {
    os << graph.actor(v.actor).name << ',' << v.firing << ','
       << v.declared.seconds().to_string() << ','
       << v.observed.seconds().to_string() << '\n';
  }
  return os.str();
}

std::string conformance_to_csv(const sim::MonitorReport& report,
                               const dataflow::VrdfGraph& graph) {
  std::ostringstream os;
  os << "actor,period_s,firings,late_firings,max_lateness_s\n";
  for (const sim::ConstraintConformance& c : report.constraints) {
    os << graph.actor(c.actor).name << ',' << c.period.seconds().to_string()
       << ',' << c.firings_observed << ',' << c.late_firings << ','
       << c.max_lateness.seconds().to_string() << '\n';
  }
  return os.str();
}

std::string margins_to_csv(const analysis::RobustnessReport& report,
                           const dataflow::VrdfGraph& graph) {
  std::ostringstream os;
  os << "actor,rho_s,phi_s,margin_s\n";
  for (const analysis::ActorMargin& m : report.actors) {
    os << graph.actor(m.actor).name << ','
       << m.response_time.seconds().to_string() << ','
       << m.max_response_time.seconds().to_string() << ','
       << m.margin.seconds().to_string() << '\n';
  }
  os << "buffer,required,installed,headroom\n";
  for (const analysis::BufferHeadroom& b : report.buffers) {
    os << graph.actor(b.producer).name << "->" << graph.actor(b.consumer).name
       << ',' << b.required << ',' << b.installed << ',' << b.headroom << '\n';
  }
  return os.str();
}

}  // namespace vrdf::io
