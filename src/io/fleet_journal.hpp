// Resumable shard state for fleet sweeps: a compact done-marker journal.
//
// One line per completed work item (the same codec as the fleet report's
// item lines), appended and flushed as items finish, so an interrupted
// 10k-model sweep restarts where it left off: FleetSweep::run merges the
// journaled results back in and recomputes only the missing items — the
// resumed report is byte-identical to an uninterrupted run.
//
// Format (text, diffable):
//   vrdf-fleet-journal v1
//   spec fingerprint=<hex> items=<n>
//   item <index> class=... seed=... ... detail=...
//
// The fingerprint binds the journal to the sweep spec that wrote it
// (FleetSweep::fingerprint); opening a journal recorded for a different
// spec is refused — silently mixing results of two different sweeps is
// exactly the corruption a done-marker file invites.  A torn trailing
// line (interrupt mid-write) is dropped on load; its item simply reruns.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sim/fleet.hpp"

namespace vrdf::io {

class FleetJournal {
 public:
  /// Opens `path`: absent/empty files are initialized with a fresh
  /// header; existing files are loaded and validated against
  /// (fingerprint, items).  Throws ModelError on a foreign or corrupt
  /// header, and on an unwritable path.
  FleetJournal(std::string path, std::uint64_t fingerprint,
               std::size_t items);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }

  /// Number of items already recorded (after load: completed before the
  /// interrupt; during a run: monotonically growing).
  [[nodiscard]] std::size_t completed() const;

  /// Copies the recorded result for `index` into `*result`; false when
  /// the item has not been recorded.  Only results loaded at open time
  /// are visible — FleetSweep queries before dispatching, so in-run
  /// records never race with lookups.
  [[nodiscard]] bool lookup(std::size_t index,
                            sim::FleetItemResult* result) const;

  /// Appends one finished item and flushes.  Thread-safe: pool workers
  /// call this concurrently.  Recording an out-of-range index is a
  /// contract error; re-recording an index is idempotent (first write
  /// wins on the next load).
  void record(const sim::FleetItemResult& result);

 private:
  std::string path_;
  std::uint64_t fingerprint_ = 0;
  std::vector<std::optional<sim::FleetItemResult>> loaded_;
  std::size_t loaded_count_ = 0;
  mutable std::mutex mutex_;
  std::ofstream out_;
  std::size_t appended_ = 0;
};

}  // namespace vrdf::io
