// Markdown analysis report: everything the library can say about a sized
// graph (chain or fork-join) in one human-readable document (model
// summary, pacing budget, capacity table with deadlock minima, rate
// headroom).  Used by `vrdf_sizer --report=FILE` and handy as an artefact
// for design reviews.
#pragma once

#include <string>

#include "analysis/admission.hpp"
#include "analysis/deployment.hpp"
#include "analysis/types.hpp"
#include "dataflow/vrdf_graph.hpp"
#include "sched/platform.hpp"
#include "taskgraph/task_graph.hpp"

namespace vrdf::io {

/// Renders a full report for an *admissible* analysis of `graph`.
/// `graph` should already carry the computed capacities (the report reads
/// δ(space) as the installed value and flags mismatches with the
/// analysis).  Throws ContractError when the analysis is inadmissible.
[[nodiscard]] std::string analysis_report(
    const dataflow::VrdfGraph& graph,
    const analysis::ThroughputConstraint& constraint,
    const analysis::GraphAnalysis& analysis);

/// Constraint-set overload: the header lists every constraint, the buffer
/// table marks producer-paced pairs, and the rate-headroom section scales
/// the first constraint with the others held fixed.
[[nodiscard]] std::string analysis_report(
    const dataflow::VrdfGraph& graph,
    const analysis::ConstraintSet& constraints,
    const analysis::GraphAnalysis& analysis);

/// One-page service summary of a live admission controller: the serviced
/// streams with their periods, the current total capacity, and the
/// incremental engine's cache counters (queries served, pacing
/// recomputes vs cache hits, leads/pairs recomputed vs reused).  Used by
/// the admission-loop example and handy for operational dashboards.
[[nodiscard]] std::string admission_summary(
    const dataflow::VrdfGraph& graph,
    const analysis::AdmissionController& controller);

/// Deployment report: the platform table (per-processor arbiter policy,
/// wheel, utilization, slack), the derived-κ table (each task's binding
/// terms and the response-time bound the analysis ran with), then — for
/// admissible deployments — the full analysis report of the constructed
/// graph.  Inadmissible deployments render the diagnostics instead.
[[nodiscard]] std::string deployment_report(
    const taskgraph::TaskGraph& tasks, const sched::Platform& platform,
    const analysis::DeploymentResult& result);

}  // namespace vrdf::io
