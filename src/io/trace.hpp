// Trace export: CSV for analysis scripts, VCD for waveform viewers.
//
// CSV: one row per recorded firing (actor, index, start, finish) or per
// token-count change (time, edge, tokens).
//
// VCD: each selected edge becomes an integer signal holding its current
// token count — load the file in GTKWave and the back-pressure patterns of
// a chain are directly visible.  VCD timestamps are integers; we emit a
// 1 ns timescale and round rational times down to the nanosecond (model
// times in this library are exact rationals; sub-nanosecond structure is
// below any real arbiter's resolution).
#pragma once

#include <string>
#include <vector>

#include "dataflow/vrdf_graph.hpp"
#include "sim/simulator.hpp"

namespace vrdf::io {

/// "actor,firing,start_s,finish_s" rows for every recorded firing of the
/// given actors (record_firings must have been enabled).
[[nodiscard]] std::string firings_to_csv(
    const sim::Simulator& sim, const dataflow::VrdfGraph& graph,
    const std::vector<dataflow::ActorId>& actors);

/// "time_s,edge,tokens" rows tracking each edge's token count over time
/// (record_transfers must have been enabled).  Edges are labelled
/// "producer->consumer[/space]".
[[nodiscard]] std::string occupancy_to_csv(
    const sim::Simulator& sim, const dataflow::VrdfGraph& graph,
    const std::vector<dataflow::EdgeId>& edges);

/// A VCD document with one integer signal per edge (token count).
[[nodiscard]] std::string occupancy_to_vcd(
    const sim::Simulator& sim, const dataflow::VrdfGraph& graph,
    const std::vector<dataflow::EdgeId>& edges);

}  // namespace vrdf::io
