// Trace export: CSV for analysis scripts, VCD for waveform viewers.
//
// CSV: one row per recorded firing (actor, index, start, finish) or per
// token-count change (time, edge, tokens).
//
// VCD: each selected edge becomes an integer signal holding its current
// token count — load the file in GTKWave and the back-pressure patterns of
// a chain are directly visible.  VCD timestamps are integers; we emit a
// 1 ns timescale and round rational times down to the nanosecond (model
// times in this library are exact rationals; sub-nanosecond structure is
// below any real arbiter's resolution).
#pragma once

#include <string>
#include <vector>

#include "analysis/robustness.hpp"
#include "dataflow/vrdf_graph.hpp"
#include "sim/monitor.hpp"
#include "sim/simulator.hpp"

namespace vrdf::io {

/// "actor,firing,start_s,finish_s" rows for every recorded firing of the
/// given actors (record_firings must have been enabled).
[[nodiscard]] std::string firings_to_csv(
    const sim::Simulator& sim, const dataflow::VrdfGraph& graph,
    const std::vector<dataflow::ActorId>& actors);

/// "time_s,edge,tokens" rows tracking each edge's token count over time
/// (record_transfers must have been enabled).  Edges are labelled
/// "producer->consumer[/space]".
[[nodiscard]] std::string occupancy_to_csv(
    const sim::Simulator& sim, const dataflow::VrdfGraph& graph,
    const std::vector<dataflow::EdgeId>& edges);

/// A VCD document with one integer signal per edge (token count).
[[nodiscard]] std::string occupancy_to_vcd(
    const sim::Simulator& sim, const dataflow::VrdfGraph& graph,
    const std::vector<dataflow::EdgeId>& edges);

/// "actor,firing,declared_s,observed_s" rows — one per recorded ρ-contract
/// violation of a conformance monitor run.
[[nodiscard]] std::string rho_violations_to_csv(
    const sim::MonitorReport& report, const dataflow::VrdfGraph& graph);

/// "actor,period_s,firings,late_firings,max_lateness_s" rows — one per
/// monitored throughput constraint.
[[nodiscard]] std::string conformance_to_csv(const sim::MonitorReport& report,
                                             const dataflow::VrdfGraph& graph);

/// "actor,rho_s,phi_s,margin_s" rows followed by
/// "buffer,required,installed,headroom" rows — the analysis-derived
/// robustness margins as machine-readable events.
[[nodiscard]] std::string margins_to_csv(
    const analysis::RobustnessReport& report, const dataflow::VrdfGraph& graph);

}  // namespace vrdf::io
