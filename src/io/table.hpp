// Fixed-width ASCII table writer used by the benchmark binaries to print
// paper-versus-measured rows.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace vrdf::io {

class Table {
public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders with column separators and a header rule.
  [[nodiscard]] std::string to_string() const;

  void print(std::ostream& os) const;

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vrdf::io
