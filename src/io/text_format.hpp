// Plain-text serialization of VRDF chain models.
//
// A deliberately small line-oriented format so that models can be kept in
// version control, diffed, and loaded by the example binaries without an
// external parser dependency:
//
//   # comment
//   vrdf-chain v1
//   actor <name> rho=<rational seconds>
//   buffer <producer> -> <consumer> pi=<rateset> gamma=<rateset>
//          [capacity=<n>] [delta=<n>]
//   constraint <actor> period=<rational seconds>
//
// Rate sets are "{a,b,c}" or "[lo,hi]"; rationals are "p", "p/q" or simple
// decimals ("51.2").  capacity= is the buffer's *total* container count;
// delta= is the data edge's initial tokens (the back-edges of cyclic
// models), occupying delta of the capacity containers at t=0.  Several
// `constraint` lines declare a simultaneous constraint set (one line per
// constrained actor; repeating an actor is an error).  All integers and
// rationals are parsed through checked helpers: malformed or overflowing
// values produce a ModelError naming the line instead of aborting.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/types.hpp"
#include "dataflow/vrdf_graph.hpp"

namespace vrdf::io {

struct ChainDocument {
  dataflow::VrdfGraph graph;
  /// The first declared constraint (kept for single-constraint call
  /// sites); unset when the document declares none.
  std::optional<analysis::ThroughputConstraint> constraint;
  /// Every declared constraint, in document order.
  analysis::ConstraintSet constraints;
};

/// Serializes a chain model (buffers only; bare edges are rejected).
/// Actor names that cannot round-trip through the whitespace-tokenized
/// format — empty, the "->" token, or containing whitespace, '=' or
/// '#' — are a ContractError at write time, never a silently-wrong
/// document.
[[nodiscard]] std::string write_chain(
    const dataflow::VrdfGraph& graph,
    const std::optional<analysis::ThroughputConstraint>& constraint);

/// Constraint-set overload: one `constraint` line per entry.
[[nodiscard]] std::string write_chain(
    const dataflow::VrdfGraph& graph,
    const analysis::ConstraintSet& constraints);

/// Parses the format above; throws ModelError with a line number on
/// malformed input (unknown directives/attributes, bad or overflowing
/// numbers, duplicate constraint actors).
[[nodiscard]] ChainDocument read_chain(const std::string& text);

}  // namespace vrdf::io
