// Plain-text serialization of VRDF chain models.
//
// A deliberately small line-oriented format so that models can be kept in
// version control, diffed, and loaded by the example binaries without an
// external parser dependency:
//
//   # comment
//   vrdf-chain v1
//   actor <name> rho=<rational seconds>
//   buffer <producer> -> <consumer> pi=<rateset> gamma=<rateset>
//          [capacity=<n>] [delta=<n>]
//   constraint <actor> period=<rational seconds>
//
// Rate sets are "{a,b,c}" or "[lo,hi]"; rationals are "p", "p/q" or simple
// decimals ("51.2").  capacity= is the buffer's *total* container count;
// delta= is the data edge's initial tokens (the back-edges of cyclic
// models), occupying delta of the capacity containers at t=0.
#pragma once

#include <optional>
#include <string>

#include "analysis/types.hpp"
#include "dataflow/vrdf_graph.hpp"

namespace vrdf::io {

struct ChainDocument {
  dataflow::VrdfGraph graph;
  std::optional<analysis::ThroughputConstraint> constraint;
};

/// Serializes a chain model (buffers only; bare edges are rejected).
[[nodiscard]] std::string write_chain(
    const dataflow::VrdfGraph& graph,
    const std::optional<analysis::ThroughputConstraint>& constraint);

/// Parses the format above; throws ModelError with a line number on
/// malformed input.
[[nodiscard]] ChainDocument read_chain(const std::string& text);

}  // namespace vrdf::io
