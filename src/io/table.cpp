#include "io/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace vrdf::io {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  VRDF_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  VRDF_REQUIRE(cells.size() == headers_.size(),
               "row width must match the header");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << '|';
  for (const std::size_t w : widths) {
    os << std::string(w + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace vrdf::io
