// Graphviz DOT export for task graphs and VRDF graphs.
#pragma once

#include <string>

#include "dataflow/vrdf_graph.hpp"
#include "taskgraph/task_graph.hpp"

namespace vrdf::io {

/// DOT digraph: actors as boxes (name, ρ), data edges solid with
/// "π / γ" labels, space edges dashed with their initial-token count.
[[nodiscard]] std::string to_dot(const dataflow::VrdfGraph& graph);

/// DOT digraph: tasks as boxes (name, κ), buffers as edges labelled
/// "ξ / λ [ζ]".
[[nodiscard]] std::string to_dot(const taskgraph::TaskGraph& graph);

}  // namespace vrdf::io
