// Graphviz DOT export for task graphs and VRDF graphs.
#pragma once

#include <string>

#include "analysis/types.hpp"
#include "dataflow/vrdf_graph.hpp"
#include "taskgraph/task_graph.hpp"

namespace vrdf::io {

/// DOT digraph: actors as boxes (name, ρ), data edges solid with
/// "π / γ" labels, space edges dashed with their initial-token count.
/// Back-edges of cyclic topologies (tokened data edges on a directed
/// cycle) render dashed with a "[feedback]" tag and their token count.
[[nodiscard]] std::string to_dot(const dataflow::VrdfGraph& graph);

/// Annotated variant: space edges of analysed buffers additionally carry
/// the computed capacity ζ (flagged when the installed δ differs), and the
/// constrained actor is double-bordered with its period τ — so fork-join
/// sizings can be checked visually.  Requires an admissible analysis.
[[nodiscard]] std::string to_dot(const dataflow::VrdfGraph& graph,
                                 const analysis::ThroughputConstraint& constraint,
                                 const analysis::GraphAnalysis& analysis);

/// Constraint-set variant: every constrained actor of the set is
/// double-bordered with its own period.
[[nodiscard]] std::string to_dot(const dataflow::VrdfGraph& graph,
                                 const analysis::ConstraintSet& constraints,
                                 const analysis::GraphAnalysis& analysis);

/// DOT digraph: tasks as boxes (name, κ), buffers as edges labelled
/// "ξ / λ [ζ]".
[[nodiscard]] std::string to_dot(const taskgraph::TaskGraph& graph);

}  // namespace vrdf::io
