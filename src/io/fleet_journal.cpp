#include "io/fleet_journal.hpp"

#include <sstream>

#include "util/error.hpp"

namespace vrdf::io {

namespace {

[[nodiscard]] std::string hex64(std::uint64_t value) {
  std::ostringstream os;
  os << std::hex << value;
  return os.str();
}

}  // namespace

FleetJournal::FleetJournal(std::string path, std::uint64_t fingerprint,
                           std::size_t items)
    : path_(std::move(path)), fingerprint_(fingerprint), loaded_(items) {
  const std::string header_line = "vrdf-fleet-journal v1";
  const std::string spec_line =
      "spec fingerprint=" + hex64(fingerprint_) +
      " items=" + std::to_string(items);

  std::string content;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      content = buffer.str();
    }
  }

  if (!content.empty()) {
    // A line is committed only once its newline hit the file: drop the
    // torn tail of an interrupted write, its item simply reruns.
    const std::size_t last_newline = content.rfind('\n');
    content = last_newline == std::string::npos
                  ? std::string()
                  : content.substr(0, last_newline + 1);
  }

  if (!content.empty()) {
    std::istringstream in(content);
    std::string line;
    if (!std::getline(in, line) || line != header_line) {
      throw ModelError("fleet journal '" + path_ +
                       "': missing or foreign header (expected '" +
                       header_line + "')");
    }
    if (!std::getline(in, line) || line != spec_line) {
      throw ModelError(
          "fleet journal '" + path_ +
          "' was written for a different sweep spec (expected '" + spec_line +
          "', found '" + line + "'); use a fresh journal path");
    }
    std::size_t line_number = 2;
    while (std::getline(in, line)) {
      ++line_number;
      if (line.empty()) {
        continue;
      }
      sim::FleetItemResult result;
      if (!sim::decode_item_line(line, &result) ||
          result.item.index >= loaded_.size()) {
        throw ModelError("fleet journal '" + path_ + "' line " +
                         std::to_string(line_number) +
                         ": malformed item record");
      }
      if (!loaded_[result.item.index].has_value()) {
        loaded_[result.item.index] = std::move(result);
        ++loaded_count_;
      }
    }
    out_.open(path_, std::ios::binary | std::ios::app);
  } else {
    out_.open(path_, std::ios::binary | std::ios::trunc);
    if (out_) {
      out_ << header_line << '\n' << spec_line << '\n';
      out_.flush();
    }
  }
  if (!out_) {
    throw ModelError("fleet journal '" + path_ + "' cannot be opened for writing");
  }
}

std::size_t FleetJournal::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return loaded_count_ + appended_;
}

bool FleetJournal::lookup(std::size_t index,
                          sim::FleetItemResult* result) const {
  VRDF_REQUIRE(index < loaded_.size(), "journal lookup index out of range");
  if (!loaded_[index].has_value()) {
    return false;
  }
  *result = *loaded_[index];
  return true;
}

void FleetJournal::record(const sim::FleetItemResult& result) {
  VRDF_REQUIRE(result.item.index < loaded_.size(),
               "journal record index out of range");
  const std::string line = sim::encode_item_line(result);
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << line << '\n';
  out_.flush();
  ++appended_;
}

}  // namespace vrdf::io
