// Synchronous Dataflow (SDF) graphs.
//
// SDF is the data-independent special case of VRDF: every edge carries one
// fixed production and one fixed consumption quantum.  The baselines
// ("traditional analysis techniques [10]" and the data-independent
// technique [14]) operate on this model, and the paper's lower-bound
// comparison fixes the MP3 decoder's variable rate n to its maximum 960 to
// obtain an SDF graph.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "util/rational.hpp"
#include "util/time.hpp"

namespace vrdf::dataflow {

class VrdfGraph;

struct SdfActor {
  std::string name;
  Duration response_time;
};

struct SdfEdge {
  graph::NodeId source;
  graph::NodeId target;
  std::int64_t production;   // tokens produced per source firing, > 0
  std::int64_t consumption;  // tokens consumed per target firing, > 0
  std::int64_t initial_tokens = 0;
};

class SdfGraph {
public:
  graph::NodeId add_actor(std::string name, Duration response_time);
  graph::EdgeId add_edge(graph::NodeId source, graph::NodeId target,
                         std::int64_t production, std::int64_t consumption,
                         std::int64_t initial_tokens = 0);

  [[nodiscard]] std::size_t actor_count() const { return actors_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }
  [[nodiscard]] const SdfActor& actor(graph::NodeId id) const;
  [[nodiscard]] const SdfEdge& edge(graph::EdgeId id) const;
  [[nodiscard]] const graph::Digraph& topology() const { return topology_; }
  [[nodiscard]] std::optional<graph::NodeId> find_actor(const std::string& name) const;

  /// Smallest positive integer repetition vector q with
  /// q[src]·production == q[dst]·consumption on every edge, or nullopt when
  /// the balance equations only admit the zero solution (inconsistent
  /// graph).  Disconnected graphs are normalized per weak component.
  [[nodiscard]] std::optional<std::vector<std::int64_t>> repetition_vector() const;

  [[nodiscard]] bool is_consistent() const { return repetition_vector().has_value(); }

  /// Lifts the SDF graph into the VRDF model (singleton rate sets, bare
  /// edges; buffer pairing is a task-layer notion).
  [[nodiscard]] VrdfGraph to_vrdf() const;

private:
  graph::Digraph topology_;
  std::vector<SdfActor> actors_;
  std::vector<SdfEdge> edges_;
};

}  // namespace vrdf::dataflow
