// Finite sets of token-transfer quanta.
//
// The paper types production/consumption quanta as values from Pf(N): a
// finite, non-empty subset of the naturals that is not {0} (Sec 3.1/3.2).
// Zero *may* be an element alongside positive values — a variable-length
// decoder is allowed firings that consume nothing (Sec 4.2, "Consumer
// Schedule").
//
// Two representations share one interface:
//  * Explicit — an enumerated set such as {2, 3} from Fig 1;
//  * Interval — a dense range such as the MP3 decoder's bytes-per-frame
//    n in [0, 960], which would be wasteful to enumerate.
// The analysis only reads min/max; the simulator also samples members.
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace vrdf::dataflow {

class RateSet {
public:
  /// The singleton set {value}; value must be positive (a {0} set is
  /// excluded by Pf(N)).
  [[nodiscard]] static RateSet singleton(std::int64_t value);

  /// An enumerated set; values are deduplicated and sorted.  Must contain at
  /// least one positive value.
  [[nodiscard]] static RateSet of(std::initializer_list<std::int64_t> values);
  [[nodiscard]] static RateSet of(std::vector<std::int64_t> values);

  /// The dense integer interval [lo, hi]; hi must be positive and >= lo >= 0.
  [[nodiscard]] static RateSet interval(std::int64_t lo, std::int64_t hi);

  /// Minimum element (the paper's checked quantity γ̌ / π̌).
  [[nodiscard]] std::int64_t min() const { return min_; }
  /// Maximum element (the paper's hatted quantity γ̂ / π̂).
  [[nodiscard]] std::int64_t max() const { return max_; }

  [[nodiscard]] bool is_singleton() const { return min_ == max_; }
  [[nodiscard]] bool contains_zero() const { return min_ == 0; }
  /// Inline: the simulator validates every drawn quantum against its rate
  /// set, so this sits on the per-firing hot path.
  [[nodiscard]] bool contains(std::int64_t value) const {
    if (value < min_ || value > max_) {
      return false;
    }
    if (kind_ == Kind::Interval) {
      return true;
    }
    return std::binary_search(values_.begin(), values_.end(), value);
  }

  /// Number of elements.  Inline: random quantum sources sample per firing.
  [[nodiscard]] std::size_t size() const {
    if (kind_ == Kind::Interval) {
      return static_cast<std::size_t>(max_ - min_ + 1);
    }
    return values_.size();
  }

  /// All elements in ascending order (intervals are enumerated).
  [[nodiscard]] std::vector<std::int64_t> values() const;

  /// The i-th smallest element, 0-based; used for uniform sampling.
  [[nodiscard]] std::int64_t nth(std::size_t i) const;

  /// "{3}", "{2,3}" or "[0,960]".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const RateSet& a, const RateSet& b);

private:
  enum class Kind { Explicit, Interval };

  RateSet(Kind kind, std::vector<std::int64_t> values, std::int64_t lo,
          std::int64_t hi);

  Kind kind_;
  std::vector<std::int64_t> values_;  // Explicit only: sorted, unique
  std::int64_t min_;
  std::int64_t max_;
};

std::ostream& operator<<(std::ostream& os, const RateSet& s);

}  // namespace vrdf::dataflow
