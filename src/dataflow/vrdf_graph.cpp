#include "dataflow/vrdf_graph.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vrdf::dataflow {

ActorId VrdfGraph::add_actor(std::string name, Duration response_time) {
  VRDF_REQUIRE(!name.empty(), "actor name must be non-empty");
  VRDF_REQUIRE(response_time.is_positive(), "actor response time must be positive");
  VRDF_REQUIRE(!find_actor(name).has_value(),
               "actor name '" + name + "' is already in use");
  const ActorId id = topology_.add_node();
  actors_.push_back(Actor{std::move(name), response_time});
  return id;
}

EdgeId VrdfGraph::add_edge(ActorId source, ActorId target, RateSet production,
                           RateSet consumption, std::int64_t initial_tokens) {
  VRDF_REQUIRE(topology_.contains(source), "edge source actor does not exist");
  VRDF_REQUIRE(topology_.contains(target), "edge target actor does not exist");
  VRDF_REQUIRE(initial_tokens >= 0, "initial tokens must be non-negative");
  const EdgeId id = topology_.add_edge(source, target);
  edges_.push_back(Edge{source, target, std::move(production),
                        std::move(consumption), initial_tokens,
                        EdgeId::invalid()});
  return id;
}

BufferEdges VrdfGraph::add_buffer(ActorId producer, ActorId consumer,
                                  RateSet production, RateSet consumption,
                                  std::int64_t capacity) {
  const EdgeId data = add_edge(producer, consumer, production, consumption, 0);
  const EdgeId space =
      add_edge(consumer, producer, consumption, production, capacity);
  edges_[data.index()].paired = space;
  edges_[space.index()].paired = data;
  const BufferEdges pair{data, space};
  buffers_.push_back(pair);
  return pair;
}

const Actor& VrdfGraph::actor(ActorId id) const {
  VRDF_REQUIRE(topology_.contains(id), "actor id out of range");
  return actors_[id.index()];
}

const Edge& VrdfGraph::edge(EdgeId id) const {
  VRDF_REQUIRE(topology_.contains(id), "edge id out of range");
  return edges_[id.index()];
}

std::optional<ActorId> VrdfGraph::find_actor(const std::string& name) const {
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    if (actors_[i].name == name) {
      return ActorId(static_cast<ActorId::underlying_type>(i));
    }
  }
  return std::nullopt;
}

std::optional<VrdfGraph::ChainView> VrdfGraph::chain_view() const {
  // Every edge must belong to a buffer pair; chain recognition then runs on
  // the reduced digraph that has one edge per buffer, in data direction.
  for (const Edge& e : edges_) {
    if (!e.paired.is_valid()) {
      return std::nullopt;
    }
  }
  graph::Digraph data_only;
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    (void)data_only.add_node();
  }
  for (const BufferEdges& b : buffers_) {
    const Edge& data = edges_[b.data.index()];
    (void)data_only.add_edge(data.source, data.target);
  }
  const auto order = graph::chain_order(data_only);
  if (!order.has_value()) {
    return std::nullopt;
  }
  // Reject orders that require reversed buffers: every consecutive pair must
  // be connected by a buffer whose data edge points forward.
  ChainView view;
  view.actors = order->nodes;
  view.buffers.reserve(order->forward_edges.size());
  for (std::size_t pos = 0; pos < order->forward_edges.size(); ++pos) {
    // Buffers were added to `data_only` in buffers_ order, so the reduced
    // edge index is the buffer index.
    const BufferEdges& b = buffers_[order->forward_edges[pos].index()];
    const Edge& data = edges_[b.data.index()];
    if (data.source != view.actors[pos] || data.target != view.actors[pos + 1]) {
      return std::nullopt;
    }
    view.buffers.push_back(b);
  }
  return view;
}

std::optional<VrdfGraph::BufferView> VrdfGraph::buffer_view() const {
  for (const Edge& e : edges_) {
    if (!e.paired.is_valid()) {
      return std::nullopt;
    }
  }
  // Reduced digraph with one edge per buffer, in data direction; the
  // reduced edge index is the buffer index.
  graph::Digraph data_only;
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    (void)data_only.add_node();
  }
  for (const BufferEdges& b : buffers_) {
    const Edge& data = edges_[b.data.index()];
    (void)data_only.add_edge(data.source, data.target);
  }
  const auto order = graph::topological_order(data_only);
  if (!order.has_value()) {
    return std::nullopt;  // directed cycle among data edges
  }

  BufferView view;
  view.actors = *order;
  std::vector<std::size_t> position(actors_.size());
  for (std::size_t i = 0; i < view.actors.size(); ++i) {
    position[view.actors[i].index()] = i;
  }
  // Stable sort keeps insertion order among buffers sharing a producer.
  std::vector<std::size_t> by_producer(buffers_.size());
  for (std::size_t i = 0; i < by_producer.size(); ++i) {
    by_producer[i] = i;
  }
  std::stable_sort(by_producer.begin(), by_producer.end(),
                   [&](std::size_t a, std::size_t b) {
                     const Edge& ea = edges_[buffers_[a].data.index()];
                     const Edge& eb = edges_[buffers_[b].data.index()];
                     return position[ea.source.index()] <
                            position[eb.source.index()];
                   });
  view.buffers.reserve(buffers_.size());
  view.in_buffers.resize(actors_.size());
  view.out_buffers.resize(actors_.size());
  const std::vector<bool> bridge = graph::undirected_bridges(data_only);
  view.on_reconvergent_path.reserve(buffers_.size());
  for (std::size_t pos = 0; pos < by_producer.size(); ++pos) {
    const BufferEdges& b = buffers_[by_producer[pos]];
    const Edge& data = edges_[b.data.index()];
    view.buffers.push_back(b);
    view.out_buffers[data.source.index()].push_back(pos);
    view.in_buffers[data.target.index()].push_back(pos);
    // Buffers were added to `data_only` in buffers_ order.
    view.on_reconvergent_path.push_back(!bridge[by_producer[pos]]);
  }
  bool degrees_chain_like = true;
  for (const ActorId a : view.actors) {
    if (view.in_buffers[a.index()].empty()) {
      view.data_sources.push_back(a);
    }
    if (view.out_buffers[a.index()].empty()) {
      view.data_sinks.push_back(a);
    }
    degrees_chain_like = degrees_chain_like &&
                         view.in_buffers[a.index()].size() <= 1 &&
                         view.out_buffers[a.index()].size() <= 1;
  }
  view.is_chain =
      degrees_chain_like && graph::is_weakly_connected(data_only);
  return view;
}

void VrdfGraph::set_initial_tokens(EdgeId id, std::int64_t tokens) {
  VRDF_REQUIRE(topology_.contains(id), "edge id out of range");
  VRDF_REQUIRE(tokens >= 0, "initial tokens must be non-negative");
  edges_[id.index()].initial_tokens = tokens;
}

}  // namespace vrdf::dataflow
