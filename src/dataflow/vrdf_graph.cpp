#include "dataflow/vrdf_graph.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vrdf::dataflow {

void VrdfGraph::record_mutation(std::string what) {
  ++revision_;
  last_mutation_ = std::move(what);
}

ActorId VrdfGraph::add_actor(std::string name, Duration response_time) {
  VRDF_REQUIRE(!name.empty(), "actor name must be non-empty");
  VRDF_REQUIRE(response_time.is_positive(), "actor response time must be positive");
  VRDF_REQUIRE(!find_actor(name).has_value(),
               "actor name '" + name + "' is already in use");
  const ActorId id = topology_.add_node();
  actors_.push_back(Actor{std::move(name), response_time});
  record_mutation("add_actor '" + actors_.back().name + "'");
  return id;
}

EdgeId VrdfGraph::add_edge(ActorId source, ActorId target, RateSet production,
                           RateSet consumption, std::int64_t initial_tokens) {
  VRDF_REQUIRE(topology_.contains(source), "edge source actor does not exist");
  VRDF_REQUIRE(topology_.contains(target), "edge target actor does not exist");
  VRDF_REQUIRE(initial_tokens >= 0, "initial tokens must be non-negative");
  const EdgeId id = topology_.add_edge(source, target);
  edges_.push_back(Edge{source, target, std::move(production),
                        std::move(consumption), initial_tokens,
                        EdgeId::invalid()});
  record_mutation("add_edge " + actors_[source.index()].name + " -> " +
                  actors_[target.index()].name);
  return id;
}

BufferEdges VrdfGraph::add_buffer(ActorId producer, ActorId consumer,
                                  RateSet production, RateSet consumption,
                                  std::int64_t capacity,
                                  std::int64_t initial_tokens) {
  VRDF_REQUIRE(initial_tokens >= 0, "initial tokens must be non-negative");
  VRDF_REQUIRE(capacity == 0 || capacity >= initial_tokens,
               "buffer capacity must cover its initial tokens");
  const EdgeId data =
      add_edge(producer, consumer, production, consumption, initial_tokens);
  const EdgeId space =
      add_edge(consumer, producer, consumption, production,
               capacity == 0 ? 0 : capacity - initial_tokens);
  edges_[data.index()].paired = space;
  edges_[space.index()].paired = data;
  const BufferEdges pair{data, space};
  buffers_.push_back(pair);
  return pair;
}

const Actor& VrdfGraph::actor(ActorId id) const {
  VRDF_REQUIRE(topology_.contains(id), "actor id out of range");
  return actors_[id.index()];
}

const Edge& VrdfGraph::edge(EdgeId id) const {
  VRDF_REQUIRE(topology_.contains(id), "edge id out of range");
  return edges_[id.index()];
}

std::int64_t VrdfGraph::buffer_capacity(const BufferEdges& buffer) const {
  return edge(buffer.space).initial_tokens + edge(buffer.data).initial_tokens;
}

std::optional<ActorId> VrdfGraph::find_actor(const std::string& name) const {
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    if (actors_[i].name == name) {
      return ActorId(static_cast<ActorId::underlying_type>(i));
    }
  }
  return std::nullopt;
}

std::optional<VrdfGraph::ChainView> VrdfGraph::chain_view() const {
  // Every edge must belong to a buffer pair; chain recognition then runs on
  // the reduced digraph that has one edge per buffer, in data direction.
  for (const Edge& e : edges_) {
    if (!e.paired.is_valid()) {
      return std::nullopt;
    }
  }
  graph::Digraph data_only;
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    (void)data_only.add_node();
  }
  for (const BufferEdges& b : buffers_) {
    const Edge& data = edges_[b.data.index()];
    (void)data_only.add_edge(data.source, data.target);
  }
  const auto order = graph::chain_order(data_only);
  if (!order.has_value()) {
    return std::nullopt;
  }
  // Reject orders that require reversed buffers: every consecutive pair must
  // be connected by a buffer whose data edge points forward.
  ChainView view;
  view.actors = order->nodes;
  view.buffers.reserve(order->forward_edges.size());
  for (std::size_t pos = 0; pos < order->forward_edges.size(); ++pos) {
    // Buffers were added to `data_only` in buffers_ order, so the reduced
    // edge index is the buffer index.
    const BufferEdges& b = buffers_[order->forward_edges[pos].index()];
    const Edge& data = edges_[b.data.index()];
    if (data.source != view.actors[pos] || data.target != view.actors[pos + 1]) {
      return std::nullopt;
    }
    view.buffers.push_back(b);
  }
  return view;
}

std::optional<VrdfGraph::BufferView> VrdfGraph::buffer_view() const {
  for (const Edge& e : edges_) {
    if (!e.paired.is_valid()) {
      return std::nullopt;
    }
  }
  // Reduced digraph with one edge per buffer, in data direction; the
  // reduced edge index is the buffer index.
  graph::Digraph data_only;
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    (void)data_only.add_node();
  }
  for (const BufferEdges& b : buffers_) {
    const Edge& data = edges_[b.data.index()];
    (void)data_only.add_edge(data.source, data.target);
  }
  // Feedback classification: a *minimal* set of tokened on-cycle data
  // edges whose removal leaves the skeleton acyclic.  Token-free edges
  // always belong to the skeleton — a cycle whose edges are all
  // token-free keeps it cyclic and is rejected (deadlock at t=0).
  // Tokened on-cycle edges are then re-admitted greedily in insertion
  // order: an edge stays in the skeleton unless it would close a
  // directed cycle, in which case it is the cycle's back-edge.  (A cycle
  // carrying several tokened edges thus breaks at the last-inserted one
  // — deterministic — and the others keep ordering the skeleton instead
  // of orphaning their endpoints.)
  const graph::FeedbackArcView arcs = graph::feedback_arc_view(data_only);
  std::vector<bool> feedback(buffers_.size(), false);
  graph::Digraph skeleton;
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    (void)skeleton.add_node();
  }
  for (std::size_t i = 0; i < buffers_.size(); ++i) {
    const Edge& data = edges_[buffers_[i].data.index()];
    if (!arcs.edge_on_cycle[i] || data.initial_tokens == 0) {
      (void)skeleton.add_edge(data.source, data.target);
    }
  }
  if (graph::has_directed_cycle(skeleton)) {
    return std::nullopt;  // directed cycle with no initial token on any edge
  }
  for (std::size_t i = 0; i < buffers_.size(); ++i) {
    const Edge& data = edges_[buffers_[i].data.index()];
    if (!arcs.edge_on_cycle[i] || data.initial_tokens == 0) {
      continue;
    }
    feedback[i] = data.source == data.target ||
                  graph::has_path(skeleton, data.target, data.source);
    if (!feedback[i]) {
      (void)skeleton.add_edge(data.source, data.target);
    }
  }
  const auto order = graph::topological_order(skeleton);
  // The greedy pass only admitted cycle-free insertions.
  VRDF_REQUIRE(order.has_value(), "feedback classification left a cycle");

  BufferView view;
  view.actors = *order;
  std::vector<std::size_t> position(actors_.size());
  for (std::size_t i = 0; i < view.actors.size(); ++i) {
    position[view.actors[i].index()] = i;
  }
  // Stable sort keeps insertion order among buffers sharing a producer.
  std::vector<std::size_t> by_producer(buffers_.size());
  for (std::size_t i = 0; i < by_producer.size(); ++i) {
    by_producer[i] = i;
  }
  std::stable_sort(by_producer.begin(), by_producer.end(),
                   [&](std::size_t a, std::size_t b) {
                     const Edge& ea = edges_[buffers_[a].data.index()];
                     const Edge& eb = edges_[buffers_[b].data.index()];
                     return position[ea.source.index()] <
                            position[eb.source.index()];
                   });
  view.buffers.reserve(buffers_.size());
  view.in_buffers.resize(actors_.size());
  view.out_buffers.resize(actors_.size());
  const std::vector<bool> bridge = graph::undirected_bridges(data_only);
  view.on_reconvergent_path.reserve(buffers_.size());
  view.on_cycle.reserve(buffers_.size());
  view.is_feedback.reserve(buffers_.size());
  for (std::size_t pos = 0; pos < by_producer.size(); ++pos) {
    const std::size_t index = by_producer[pos];
    const BufferEdges& b = buffers_[index];
    const Edge& data = edges_[b.data.index()];
    view.buffers.push_back(b);
    if (feedback[index]) {
      view.feedback_buffers.push_back(pos);
    } else {
      view.out_buffers[data.source.index()].push_back(pos);
      view.in_buffers[data.target.index()].push_back(pos);
    }
    // Buffers were added to `data_only` in buffers_ order.
    view.on_reconvergent_path.push_back(!bridge[index]);
    view.on_cycle.push_back(arcs.edge_on_cycle[index]);
    view.is_feedback.push_back(feedback[index]);
  }
  view.is_cyclic = !view.feedback_buffers.empty();
  bool degrees_chain_like = true;
  for (const ActorId a : view.actors) {
    if (view.in_buffers[a.index()].empty()) {
      view.data_sources.push_back(a);
    }
    if (view.out_buffers[a.index()].empty()) {
      view.data_sinks.push_back(a);
    }
    degrees_chain_like = degrees_chain_like &&
                         view.in_buffers[a.index()].size() <= 1 &&
                         view.out_buffers[a.index()].size() <= 1;
  }
  view.is_chain = degrees_chain_like && !view.is_cyclic &&
                  graph::is_weakly_connected(data_only);
  return view;
}

void VrdfGraph::set_initial_tokens(EdgeId id, std::int64_t tokens) {
  VRDF_REQUIRE(topology_.contains(id), "edge id out of range");
  VRDF_REQUIRE(tokens >= 0, "initial tokens must be non-negative");
  edges_[id.index()].initial_tokens = tokens;
  record_mutation("set_initial_tokens on edge " +
                  actors_[edges_[id.index()].source.index()].name + " -> " +
                  actors_[edges_[id.index()].target.index()].name);
}

void VrdfGraph::set_response_time(ActorId id, Duration response_time) {
  VRDF_REQUIRE(topology_.contains(id), "actor id out of range");
  VRDF_REQUIRE(response_time.is_positive(),
               "actor response time must be positive");
  actors_[id.index()].response_time = response_time;
  record_mutation("set_response_time on actor '" + actors_[id.index()].name +
                  "'");
}

}  // namespace vrdf::dataflow
