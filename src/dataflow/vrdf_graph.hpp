// Variable-Rate Dataflow (VRDF) graphs — the paper's analysis model
// (Sec 3.2).
//
// A VRDF graph G = (V, E, π, γ, δ, ρ):
//  * actors V fire with response time ρ(v); tokens are consumed atomically
//    at the start of a firing and produced atomically ρ(v) later;
//  * per edge e, each firing's production quantum is some element of π(e)
//    and its consumption quantum some element of γ(e);
//  * δ(e) initial tokens.
//
// A FIFO buffer of the task layer maps to a pair of anti-parallel edges
// (data edge + space edge); such pairs are recorded so that analysis and
// simulation can enforce the task-level coupling "space returned equals
// data consumed" that makes chains strongly consistent (Sec 3.3).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dataflow/rate_set.hpp"
#include "graph/algorithms.hpp"
#include "graph/digraph.hpp"
#include "util/time.hpp"

namespace vrdf::dataflow {

using ActorId = graph::NodeId;
using EdgeId = graph::EdgeId;

struct Actor {
  std::string name;
  Duration response_time;  // ρ(v) > 0
};

struct Edge {
  ActorId source;
  ActorId target;
  RateSet production;          // π(e), quanta produced per source firing
  RateSet consumption;         // γ(e), quanta consumed per target firing
  std::int64_t initial_tokens = 0;  // δ(e)
  /// The anti-parallel partner edge when this edge is half of a buffer,
  /// invalid otherwise.
  EdgeId paired = EdgeId::invalid();
};

/// The two edges modelling one task-level buffer: `data` carries full
/// containers producer→consumer, `space` carries empty containers back.
struct BufferEdges {
  EdgeId data;
  EdgeId space;
};

class VrdfGraph {
public:
  /// Adds an actor; names must be unique and non-empty, ρ must be positive.
  ActorId add_actor(std::string name, Duration response_time);

  /// Adds a bare edge (no buffer pairing).
  EdgeId add_edge(ActorId source, ActorId target, RateSet production,
                  RateSet consumption, std::int64_t initial_tokens = 0);

  /// Adds a buffer from `producer` to `consumer` as an anti-parallel edge
  /// pair (Sec 3.3): data edge with (π=production, γ=consumption,
  /// δ=initial_tokens) and space edge with (π=consumption, γ=production,
  /// δ=capacity − initial_tokens).  `capacity` is the buffer's *total*
  /// container count; the containers holding initial data are occupied at
  /// t=0.  capacity == 0 leaves the buffer unsized (no free space) until
  /// apply_capacities installs one.  Non-zero `initial_tokens` is how
  /// back-edges of cyclic topologies carry their circulating tokens.
  BufferEdges add_buffer(ActorId producer, ActorId consumer, RateSet production,
                         RateSet consumption, std::int64_t capacity = 0,
                         std::int64_t initial_tokens = 0);

  [[nodiscard]] std::size_t actor_count() const { return actors_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  [[nodiscard]] const Actor& actor(ActorId id) const;
  [[nodiscard]] const Edge& edge(EdgeId id) const;

  [[nodiscard]] std::vector<ActorId> actors() const { return topology_.nodes(); }
  [[nodiscard]] std::vector<EdgeId> edges() const { return topology_.edges(); }

  /// Actor lookup by unique name.
  [[nodiscard]] std::optional<ActorId> find_actor(const std::string& name) const;

  /// Edges entering/leaving an actor.
  [[nodiscard]] std::span<const EdgeId> in_edges(ActorId id) const {
    return topology_.in_edges(id);
  }
  [[nodiscard]] std::span<const EdgeId> out_edges(ActorId id) const {
    return topology_.out_edges(id);
  }

  /// Replaces δ(e); used to install computed buffer capacities.
  void set_initial_tokens(EdgeId id, std::int64_t tokens);

  /// Replaces ρ(v) (must stay positive); used by what-if probes such as
  /// the robustness-margin search, which re-analyses a copy of the graph
  /// with one actor's response time inflated.
  void set_response_time(ActorId id, Duration response_time);

  /// All buffers (each anti-parallel pair reported once, as it was added).
  [[nodiscard]] std::vector<BufferEdges> buffers() const { return buffers_; }

  /// Total installed container count of a buffer: δ(space edge) free
  /// containers plus δ(data edge) containers occupied by initial tokens.
  [[nodiscard]] std::int64_t buffer_capacity(const BufferEdges& buffer) const;

  /// Underlying topology (for the generic graph algorithms).
  [[nodiscard]] const graph::Digraph& topology() const { return topology_; }

  /// Monotonic mutation counter: bumped by every mutator (add_actor,
  /// add_edge/add_buffer, set_initial_tokens, set_response_time).  Captured
  /// by analysis::TopologySnapshot so that a query against a snapshot of a
  /// since-mutated graph fails loudly instead of answering from stale
  /// memoized structure.
  [[nodiscard]] std::uint64_t revision() const { return revision_; }
  /// Human-readable description of the mutation that produced the current
  /// revision (names the actor or edge), empty on a freshly constructed
  /// graph.  Used by the stale-snapshot diagnostic.
  [[nodiscard]] const std::string& last_mutation() const {
    return last_mutation_;
  }

  /// A VRDF graph seen as a chain of buffers: actors ordered from the data
  /// source to the data sink, with buffers[i] connecting actors[i] to
  /// actors[i+1] in data direction.
  struct ChainView {
    std::vector<ActorId> actors;
    std::vector<BufferEdges> buffers;
  };

  /// Chain recognition over *data* edges (space edges are the anti-parallel
  /// buffer partners and do not count towards the topology restriction of
  /// Sec 3.1).  Returns nullopt when the graph is not a chain of buffers or
  /// contains unpaired edges.
  [[nodiscard]] std::optional<ChainView> chain_view() const;

  /// A VRDF graph seen as a network of buffers — the general view the
  /// analysis pipeline runs on.  Buffers are keyed per data edge; chains
  /// are the degenerate case with every fan-in/fan-out equal to one.
  ///
  /// Cyclic topologies are admitted when every directed cycle of the data
  /// edges carries at least one initial token: a minimal set of tokened
  /// intra-SCC data edges — one per cycle, chosen deterministically by
  /// insertion order when a cycle carries several — are the *feedback*
  /// (back) edges, and removing them leaves the acyclic skeleton the
  /// topological structure is built on.  A cycle without initial tokens
  /// can never fire (deadlock at t=0) and makes buffer_view() fail.
  struct BufferView {
    /// Actors in a topological order of the skeleton DAG — the data edges
    /// minus the feedback edges (for a chain this is exactly the chain
    /// order, data source first).
    std::vector<ActorId> actors;
    /// Buffers ordered by (topological position of the producer, insertion
    /// index) — deterministic, and equal to chain order on chains.
    /// Feedback buffers are included.
    std::vector<BufferEdges> buffers;
    /// Per actor (indexed by ActorId::index()): positions in `buffers` of
    /// the *skeleton* buffers the actor consumes from / produces into.
    /// Feedback buffers are listed separately in `feedback_buffers` so the
    /// topological propagations never walk a back-edge.
    std::vector<std::vector<std::size_t>> in_buffers;
    std::vector<std::vector<std::size_t>> out_buffers;
    /// Actors with no incoming / no outgoing *skeleton* data edge, in
    /// topological order.  A single unconnected actor is both.
    std::vector<ActorId> data_sources;
    std::vector<ActorId> data_sinks;
    /// Per position in `buffers`: true when the buffer's data edge lies on
    /// an undirected cycle of the data graph — i.e. inside a reconvergent
    /// fork-join region, where sibling branches must stay flow-balanced.
    /// False exactly on the bridge (chain-segment) edges.
    std::vector<bool> on_reconvergent_path;
    /// Per position in `buffers`: true when the buffer's data edge lies on
    /// a *directed* cycle of the data graph (self-loop or intra-SCC edge).
    /// Cycle edges must carry static rates.
    std::vector<bool> on_cycle;
    /// Per position in `buffers`: true for feedback (back) edges — data
    /// edges on a directed cycle that carry the cycle's initial tokens and
    /// are excluded from the skeleton order.
    std::vector<bool> is_feedback;
    /// Positions in `buffers` of the feedback buffers, in `buffers` order.
    std::vector<std::size_t> feedback_buffers;
    /// True when the data edges contain a directed cycle (equivalently:
    /// feedback_buffers is non-empty).
    bool is_cyclic = false;
    /// True when the data edges form a chain (every fan-in and fan-out at
    /// most one, weakly connected, acyclic) — the Sec 3.1 shape.
    bool is_chain = false;
  };

  /// Buffer-network recognition over data edges.  Returns nullopt when the
  /// graph contains unpaired edges or a directed data cycle with no
  /// initial token on any of its edges (a token-free cycle deadlocks).
  [[nodiscard]] std::optional<BufferView> buffer_view() const;

private:
  void record_mutation(std::string what);

  graph::Digraph topology_;
  std::vector<Actor> actors_;
  std::vector<Edge> edges_;
  std::vector<BufferEdges> buffers_;
  std::uint64_t revision_ = 0;
  std::string last_mutation_;
};

}  // namespace vrdf::dataflow
