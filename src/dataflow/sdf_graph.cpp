#include "dataflow/sdf_graph.hpp"

#include <queue>

#include "dataflow/vrdf_graph.hpp"
#include "util/checked_int.hpp"
#include "util/error.hpp"

namespace vrdf::dataflow {

graph::NodeId SdfGraph::add_actor(std::string name, Duration response_time) {
  VRDF_REQUIRE(!name.empty(), "actor name must be non-empty");
  VRDF_REQUIRE(response_time.is_positive(), "actor response time must be positive");
  VRDF_REQUIRE(!find_actor(name).has_value(),
               "actor name '" + name + "' is already in use");
  const graph::NodeId id = topology_.add_node();
  actors_.push_back(SdfActor{std::move(name), response_time});
  return id;
}

graph::EdgeId SdfGraph::add_edge(graph::NodeId source, graph::NodeId target,
                                 std::int64_t production, std::int64_t consumption,
                                 std::int64_t initial_tokens) {
  VRDF_REQUIRE(production > 0, "SDF production quantum must be positive");
  VRDF_REQUIRE(consumption > 0, "SDF consumption quantum must be positive");
  VRDF_REQUIRE(initial_tokens >= 0, "initial tokens must be non-negative");
  const graph::EdgeId id = topology_.add_edge(source, target);
  edges_.push_back(SdfEdge{source, target, production, consumption, initial_tokens});
  return id;
}

const SdfActor& SdfGraph::actor(graph::NodeId id) const {
  VRDF_REQUIRE(topology_.contains(id), "actor id out of range");
  return actors_[id.index()];
}

const SdfEdge& SdfGraph::edge(graph::EdgeId id) const {
  VRDF_REQUIRE(topology_.contains(id), "edge id out of range");
  return edges_[id.index()];
}

std::optional<graph::NodeId> SdfGraph::find_actor(const std::string& name) const {
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    if (actors_[i].name == name) {
      return graph::NodeId(static_cast<graph::NodeId::underlying_type>(i));
    }
  }
  return std::nullopt;
}

std::optional<std::vector<std::int64_t>> SdfGraph::repetition_vector() const {
  const std::size_t n = actor_count();
  if (n == 0) {
    return std::vector<std::int64_t>{};
  }
  // Assign fractional firing counts by BFS over the undirected structure,
  // then verify every edge and scale to the least integer solution.
  std::vector<std::optional<Rational>> frac(n);
  for (std::size_t root = 0; root < n; ++root) {
    if (frac[root].has_value()) {
      continue;
    }
    frac[root] = Rational(1);
    std::queue<graph::NodeId> queue;
    queue.push(graph::NodeId(static_cast<graph::NodeId::underlying_type>(root)));
    while (!queue.empty()) {
      const graph::NodeId a = queue.front();
      queue.pop();
      const Rational qa = *frac[a.index()];
      const auto relax = [&](graph::NodeId b, const Rational& qb) -> bool {
        if (!frac[b.index()].has_value()) {
          frac[b.index()] = qb;
          queue.push(b);
          return true;
        }
        return *frac[b.index()] == qb;
      };
      for (const graph::EdgeId e : topology_.out_edges(a)) {
        const SdfEdge& ed = edges_[e.index()];
        // q[src]·p == q[dst]·c  =>  q[dst] = q[src]·p/c.
        const Rational qb = qa * Rational(ed.production, ed.consumption);
        if (!relax(ed.target, qb)) {
          return std::nullopt;
        }
      }
      for (const graph::EdgeId e : topology_.in_edges(a)) {
        const SdfEdge& ed = edges_[e.index()];
        const Rational qb = qa * Rational(ed.consumption, ed.production);
        if (!relax(ed.source, qb)) {
          return std::nullopt;
        }
      }
    }
  }
  // Scale: multiply by lcm of denominators, then divide by gcd.
  std::int64_t denominator_lcm = 1;
  for (const auto& q : frac) {
    denominator_lcm = checked_lcm(denominator_lcm, q->den());
  }
  std::vector<std::int64_t> reps(n);
  std::int64_t common = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Rational scaled = *frac[i] * Rational(denominator_lcm);
    VRDF_REQUIRE(scaled.is_integer(), "repetition scaling must be integral");
    reps[i] = scaled.num();
    common = gcd64(common, reps[i]);
  }
  if (common > 1) {
    for (auto& r : reps) {
      r /= common;
    }
  }
  return reps;
}

VrdfGraph SdfGraph::to_vrdf() const {
  VrdfGraph out;
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    (void)out.add_actor(actors_[i].name, actors_[i].response_time);
  }
  for (const SdfEdge& e : edges_) {
    (void)out.add_edge(e.source, e.target, RateSet::singleton(e.production),
                       RateSet::singleton(e.consumption), e.initial_tokens);
  }
  return out;
}

}  // namespace vrdf::dataflow
