#include "dataflow/validation.hpp"

#include <sstream>

#include "graph/algorithms.hpp"

namespace vrdf::dataflow {

std::string ValidationReport::summary() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (i != 0) {
      os << "; ";
    }
    os << errors[i];
  }
  return os.str();
}

namespace {

/// The per-buffer invariants shared by every model class: connectivity,
/// pairing, strong consistency of the buffer protocol.
ValidationReport validate_buffer_network(const VrdfGraph& graph) {
  ValidationReport report;
  if (graph.actor_count() == 0) {
    report.errors.push_back("graph has no actors");
    return report;
  }
  if (!graph::is_weakly_connected(graph.topology())) {
    report.errors.push_back("graph is not weakly connected");
  }
  for (const EdgeId e : graph.edges()) {
    const Edge& edge = graph.edge(e);
    if (!edge.paired.is_valid()) {
      std::ostringstream os;
      os << "edge " << graph.actor(edge.source).name << " -> "
         << graph.actor(edge.target).name
         << " is not part of a buffer pair";
      report.errors.push_back(os.str());
    }
  }
  for (const BufferEdges& b : graph.buffers()) {
    const Edge& data = graph.edge(b.data);
    const Edge& space = graph.edge(b.space);
    if (!(data.production == space.consumption) ||
        !(data.consumption == space.production)) {
      std::ostringstream os;
      os << "buffer " << graph.actor(data.source).name << " -> "
         << graph.actor(data.target).name
         << " violates strong consistency: data(pi=" << data.production
         << ", gamma=" << data.consumption << ") vs space(pi="
         << space.production << ", gamma=" << space.consumption << ')';
      report.errors.push_back(os.str());
    }
  }
  return report;
}

/// The reduced data-edge digraph (one edge per buffer, in data direction),
/// optionally restricted to token-free edges.
graph::Digraph data_digraph(const VrdfGraph& graph, bool token_free_only) {
  graph::Digraph data_only;
  for (std::size_t i = 0; i < graph.actor_count(); ++i) {
    (void)data_only.add_node();
  }
  for (const BufferEdges& b : graph.buffers()) {
    const Edge& data = graph.edge(b.data);
    if (!token_free_only || data.initial_tokens == 0) {
      (void)data_only.add_edge(data.source, data.target);
    }
  }
  return data_only;
}

}  // namespace

ValidationReport validate_cyclic_model(const VrdfGraph& graph) {
  ValidationReport report = validate_buffer_network(graph);
  if (!report.ok()) {
    return report;
  }
  // Every directed cycle must carry an initial token: equivalently, the
  // token-free data edges alone must be acyclic (any cycle of the full
  // data graph either is entirely token-free — rejected here — or breaks
  // at a tokened back-edge).
  const auto cycle =
      graph::find_directed_cycle(data_digraph(graph, /*token_free_only=*/true));
  if (cycle.has_value()) {
    std::ostringstream os;
    os << "data cycle without initial tokens (deadlocks at t=0): ";
    for (const graph::NodeId n : *cycle) {
      os << graph.actor(n).name << " -> ";
    }
    os << graph.actor(cycle->front()).name
       << "; every cycle must carry at least one initial token on a data "
          "edge";
    report.errors.push_back(os.str());
    return report;
  }
  // Cycle edges must have static, positive rates: the circulating token
  // count of a cycle is conserved, so a variable realized rate on any of
  // its edges lets the loop's flow balance drift unboundedly.
  const graph::FeedbackArcView arcs =
      graph::feedback_arc_view(data_digraph(graph, /*token_free_only=*/false));
  const std::vector<BufferEdges> buffers = graph.buffers();
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    if (!arcs.edge_on_cycle[i]) {
      continue;
    }
    const Edge& data = graph.edge(buffers[i].data);
    const bool is_static =
        data.production.is_singleton() && data.consumption.is_singleton();
    if (!is_static || data.production.min() == 0 ||
        data.consumption.min() == 0) {
      std::ostringstream os;
      os << "buffer " << graph.actor(data.source).name << " -> "
         << graph.actor(data.target).name << ": rates (pi=" << data.production
         << ", gamma=" << data.consumption
         << ") on a directed data cycle must be static and positive; a "
            "variable or zero quantum would make the cycle's circulating "
            "flow drift";
      report.errors.push_back(os.str());
    }
  }
  return report;
}

ValidationReport validate_dag_model(const VrdfGraph& graph) {
  ValidationReport report = validate_buffer_network(graph);
  if (report.ok() &&
      graph::has_directed_cycle(data_digraph(graph, /*token_free_only=*/false))) {
    report.errors.push_back("data edges contain a directed cycle");
  }
  return report;
}

ValidationReport validate_chain_model(const VrdfGraph& graph) {
  ValidationReport report = validate_dag_model(graph);
  if (report.ok() && !graph.chain_view().has_value()) {
    report.errors.push_back("data edges do not form a chain (Sec 3.1)");
  }
  return report;
}

}  // namespace vrdf::dataflow
