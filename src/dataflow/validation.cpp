#include "dataflow/validation.hpp"

#include <sstream>

#include "graph/algorithms.hpp"

namespace vrdf::dataflow {

std::string ValidationReport::summary() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (i != 0) {
      os << "; ";
    }
    os << errors[i];
  }
  return os.str();
}

ValidationReport validate_dag_model(const VrdfGraph& graph) {
  ValidationReport report;
  if (graph.actor_count() == 0) {
    report.errors.push_back("graph has no actors");
    return report;
  }
  if (!graph::is_weakly_connected(graph.topology())) {
    report.errors.push_back("graph is not weakly connected");
  }
  for (const EdgeId e : graph.edges()) {
    const Edge& edge = graph.edge(e);
    if (!edge.paired.is_valid()) {
      std::ostringstream os;
      os << "edge " << graph.actor(edge.source).name << " -> "
         << graph.actor(edge.target).name
         << " is not part of a buffer pair";
      report.errors.push_back(os.str());
    }
  }
  for (const BufferEdges& b : graph.buffers()) {
    const Edge& data = graph.edge(b.data);
    const Edge& space = graph.edge(b.space);
    if (!(data.production == space.consumption) ||
        !(data.consumption == space.production)) {
      std::ostringstream os;
      os << "buffer " << graph.actor(data.source).name << " -> "
         << graph.actor(data.target).name
         << " violates strong consistency: data(pi=" << data.production
         << ", gamma=" << data.consumption << ") vs space(pi="
         << space.production << ", gamma=" << space.consumption << ')';
      report.errors.push_back(os.str());
    }
  }
  if (report.ok() && !graph.buffer_view().has_value()) {
    report.errors.push_back("data edges contain a directed cycle");
  }
  return report;
}

ValidationReport validate_chain_model(const VrdfGraph& graph) {
  ValidationReport report = validate_dag_model(graph);
  if (report.ok() && !graph.chain_view().has_value()) {
    report.errors.push_back("data edges do not form a chain (Sec 3.1)");
  }
  return report;
}

}  // namespace vrdf::dataflow
