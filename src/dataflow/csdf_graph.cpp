#include "dataflow/csdf_graph.hpp"

#include <numeric>
#include <queue>

#include "dataflow/sdf_graph.hpp"
#include "dataflow/vrdf_graph.hpp"
#include "util/checked_int.hpp"
#include "util/error.hpp"

namespace vrdf::dataflow {

namespace {

std::int64_t sum_checked(const std::vector<std::int64_t>& values) {
  std::int64_t total = 0;
  for (const std::int64_t v : values) {
    total = checked_add(total, v);
  }
  return total;
}

}  // namespace

std::int64_t CsdfEdge::production_per_cycle() const { return sum_checked(production); }

std::int64_t CsdfEdge::consumption_per_cycle() const {
  return sum_checked(consumption);
}

graph::NodeId CsdfGraph::add_actor(std::string name,
                                   std::vector<Duration> response_times) {
  VRDF_REQUIRE(!name.empty(), "actor name must be non-empty");
  VRDF_REQUIRE(!response_times.empty(), "a CSDF actor needs at least one phase");
  for (const Duration& d : response_times) {
    VRDF_REQUIRE(d.is_positive(), "phase response times must be positive");
  }
  const graph::NodeId id = topology_.add_node();
  actors_.push_back(CsdfActor{std::move(name), std::move(response_times)});
  return id;
}

graph::EdgeId CsdfGraph::add_edge(graph::NodeId source, graph::NodeId target,
                                  std::vector<std::int64_t> production,
                                  std::vector<std::int64_t> consumption,
                                  std::int64_t initial_tokens) {
  VRDF_REQUIRE(topology_.contains(source), "edge source actor does not exist");
  VRDF_REQUIRE(topology_.contains(target), "edge target actor does not exist");
  VRDF_REQUIRE(production.size() == actors_[source.index()].phase_count(),
               "production sequence length must match source phase count");
  VRDF_REQUIRE(consumption.size() == actors_[target.index()].phase_count(),
               "consumption sequence length must match target phase count");
  for (const std::int64_t v : production) {
    VRDF_REQUIRE(v >= 0, "phase production must be non-negative");
  }
  for (const std::int64_t v : consumption) {
    VRDF_REQUIRE(v >= 0, "phase consumption must be non-negative");
  }
  VRDF_REQUIRE(sum_checked(production) > 0,
               "an edge must transfer tokens in at least one producer phase");
  VRDF_REQUIRE(sum_checked(consumption) > 0,
               "an edge must transfer tokens in at least one consumer phase");
  VRDF_REQUIRE(initial_tokens >= 0, "initial tokens must be non-negative");
  const graph::EdgeId id = topology_.add_edge(source, target);
  edges_.push_back(CsdfEdge{source, target, std::move(production),
                            std::move(consumption), initial_tokens});
  return id;
}

const CsdfActor& CsdfGraph::actor(graph::NodeId id) const {
  VRDF_REQUIRE(topology_.contains(id), "actor id out of range");
  return actors_[id.index()];
}

const CsdfEdge& CsdfGraph::edge(graph::EdgeId id) const {
  VRDF_REQUIRE(topology_.contains(id), "edge id out of range");
  return edges_[id.index()];
}

std::optional<std::vector<std::int64_t>> CsdfGraph::repetition_vector() const {
  const std::size_t n = actor_count();
  if (n == 0) {
    return std::vector<std::int64_t>{};
  }
  // Balance in cycle counts, then multiply by phase counts.
  std::vector<std::optional<Rational>> cycles(n);
  for (std::size_t root = 0; root < n; ++root) {
    if (cycles[root].has_value()) {
      continue;
    }
    cycles[root] = Rational(1);
    std::queue<graph::NodeId> queue;
    queue.push(graph::NodeId(static_cast<graph::NodeId::underlying_type>(root)));
    while (!queue.empty()) {
      const graph::NodeId a = queue.front();
      queue.pop();
      const Rational qa = *cycles[a.index()];
      const auto relax = [&](graph::NodeId b, const Rational& qb) -> bool {
        if (!cycles[b.index()].has_value()) {
          cycles[b.index()] = qb;
          queue.push(b);
          return true;
        }
        return *cycles[b.index()] == qb;
      };
      for (const graph::EdgeId e : topology_.out_edges(a)) {
        const CsdfEdge& ed = edges_[e.index()];
        const Rational qb =
            qa * Rational(ed.production_per_cycle(), ed.consumption_per_cycle());
        if (!relax(ed.target, qb)) {
          return std::nullopt;
        }
      }
      for (const graph::EdgeId e : topology_.in_edges(a)) {
        const CsdfEdge& ed = edges_[e.index()];
        const Rational qb =
            qa * Rational(ed.consumption_per_cycle(), ed.production_per_cycle());
        if (!relax(ed.source, qb)) {
          return std::nullopt;
        }
      }
    }
  }
  std::int64_t denominator_lcm = 1;
  for (const auto& q : cycles) {
    denominator_lcm = checked_lcm(denominator_lcm, q->den());
  }
  std::vector<std::int64_t> reps(n);
  std::int64_t common = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Rational scaled = *cycles[i] * Rational(denominator_lcm);
    VRDF_REQUIRE(scaled.is_integer(), "repetition scaling must be integral");
    reps[i] = checked_mul(scaled.num(),
                          static_cast<std::int64_t>(actors_[i].phase_count()));
    common = gcd64(common, reps[i]);
  }
  // Reduce by the largest divisor of gcd(reps) that keeps every q[a] a
  // multiple of a's phase count.
  const auto keeps_phase_multiples = [&](std::int64_t divisor) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t phases =
          static_cast<std::int64_t>(actors_[i].phase_count());
      if ((reps[i] / divisor) % phases != 0) {
        return false;
      }
    }
    return true;
  };
  if (common > 1) {
    std::int64_t best = 1;
    for (std::int64_t d = 1; d * d <= common; ++d) {
      if (common % d != 0) {
        continue;
      }
      for (const std::int64_t candidate : {d, common / d}) {
        if (candidate > best && keeps_phase_multiples(candidate)) {
          best = candidate;
        }
      }
    }
    if (best > 1) {
      for (auto& r : reps) {
        r /= best;
      }
    }
  }
  return reps;
}

SdfGraph CsdfGraph::to_sdf() const {
  SdfGraph out;
  for (const CsdfActor& a : actors_) {
    Duration total;
    for (const Duration& d : a.response_times) {
      total += d;
    }
    (void)out.add_actor(a.name, total);
  }
  for (const CsdfEdge& e : edges_) {
    (void)out.add_edge(e.source, e.target, e.production_per_cycle(),
                       e.consumption_per_cycle(), e.initial_tokens);
  }
  return out;
}

VrdfGraph CsdfGraph::to_vrdf() const {
  VrdfGraph out;
  for (const CsdfActor& a : actors_) {
    Duration worst = a.response_times.front();
    for (const Duration& d : a.response_times) {
      worst = std::max(worst, d);
    }
    (void)out.add_actor(a.name, worst);
  }
  for (const CsdfEdge& e : edges_) {
    (void)out.add_edge(e.source, e.target, RateSet::of(e.production),
                       RateSet::of(e.consumption), e.initial_tokens);
  }
  return out;
}

}  // namespace vrdf::dataflow
