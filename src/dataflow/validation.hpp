// Structural validation of VRDF graphs against the paper's model rules.
//
// Sec 3.1 restricts task graphs to weakly connected chains; Sec 3.3 notes
// that graphs constructed from such task graphs are inherently strongly
// consistent because a task returns exactly the space it consumed and
// requires exactly the space it produces.  validate() re-checks those
// invariants on an arbitrary VRDF graph so that hand-built models get the
// same guarantees as converted task graphs.
//
// The analysis itself only needs the per-buffer invariants plus a data
// topology whose cycles all break at initial tokens — the per-pair bound
// of Eqs (1)-(4) propagates along each buffer edge, not along a global
// chain index.  validate_cyclic_model() admits weakly connected cyclic
// topologies whose back-edges carry initial tokens (rate-control loops,
// predictive decoders), validate_dag_model() restricts to acyclic
// fork-join topologies, and validate_chain_model() adds the Sec 3.1 chain
// restriction on top.
#pragma once

#include <string>
#include <vector>

#include "dataflow/vrdf_graph.hpp"

namespace vrdf::dataflow {

struct ValidationReport {
  std::vector<std::string> errors;

  [[nodiscard]] bool ok() const { return errors.empty(); }
  /// All messages joined with "; " (empty string when ok).
  [[nodiscard]] std::string summary() const;
};

/// The widest model class the analysis accepts.  Checks, in order:
///  * the graph has at least one actor and is weakly connected;
///  * every edge belongs to an anti-parallel buffer pair;
///  * each pair satisfies π(data) == γ(space) and γ(data) == π(space)
///    (strong consistency of the buffer protocol);
///  * every directed cycle of the data edges carries at least one initial
///    token (a token-free cycle can never fire — deadlock at t=0 — and is
///    reported with the cycle's actors);
///  * every data edge on a directed cycle has static, positive rates
///    (singleton π and γ): a variable realized rate around a cycle makes
///    the circulating token count drift, so no finite capacity satisfies
///    a throughput constraint for every admissible sequence.
[[nodiscard]] ValidationReport validate_cyclic_model(const VrdfGraph& graph);

/// validate_cyclic_model() minus cycles: the data edges must form an
/// acyclic graph (fork-join generalisation of the Sec 3.1 restriction;
/// parallel buffers between one actor pair are allowed, directed data
/// cycles — with or without initial tokens — are not).
[[nodiscard]] ValidationReport validate_dag_model(const VrdfGraph& graph);

/// validate_dag_model() plus the Sec 3.1 chain restriction: the data edges
/// must form a single directed chain.
[[nodiscard]] ValidationReport validate_chain_model(const VrdfGraph& graph);

}  // namespace vrdf::dataflow
