// Structural validation of VRDF graphs against the paper's model rules.
//
// Sec 3.1 restricts task graphs to weakly connected chains; Sec 3.3 notes
// that graphs constructed from such task graphs are inherently strongly
// consistent because a task returns exactly the space it consumed and
// requires exactly the space it produces.  validate() re-checks those
// invariants on an arbitrary VRDF graph so that hand-built models get the
// same guarantees as converted task graphs.
//
// The analysis itself only needs the per-buffer invariants plus an acyclic
// data topology — the per-pair bound of Eqs (1)-(4) propagates along each
// buffer edge, not along a global chain index — so validate_dag_model()
// admits weakly connected fork-join (DAG) topologies and
// validate_chain_model() adds the Sec 3.1 chain restriction on top.
#pragma once

#include <string>
#include <vector>

#include "dataflow/vrdf_graph.hpp"

namespace vrdf::dataflow {

struct ValidationReport {
  std::vector<std::string> errors;

  [[nodiscard]] bool ok() const { return errors.empty(); }
  /// All messages joined with "; " (empty string when ok).
  [[nodiscard]] std::string summary() const;
};

/// Checks, in order:
///  * the graph has at least one actor and is weakly connected;
///  * every edge belongs to an anti-parallel buffer pair;
///  * each pair satisfies π(data) == γ(space) and γ(data) == π(space)
///    (strong consistency of the buffer protocol);
///  * the data edges form an acyclic graph (fork-join generalisation of
///    the Sec 3.1 restriction; parallel buffers between one actor pair
///    are allowed, directed data cycles are not).
[[nodiscard]] ValidationReport validate_dag_model(const VrdfGraph& graph);

/// validate_dag_model() plus the Sec 3.1 chain restriction: the data edges
/// must form a single directed chain.
[[nodiscard]] ValidationReport validate_chain_model(const VrdfGraph& graph);

}  // namespace vrdf::dataflow
