// Structural validation of VRDF graphs against the paper's model rules.
//
// Sec 3.1 restricts task graphs to weakly connected chains; Sec 3.3 notes
// that graphs constructed from such task graphs are inherently strongly
// consistent because a task returns exactly the space it consumed and
// requires exactly the space it produces.  validate() re-checks those
// invariants on an arbitrary VRDF graph so that hand-built models get the
// same guarantees as converted task graphs.
#pragma once

#include <string>
#include <vector>

#include "dataflow/vrdf_graph.hpp"

namespace vrdf::dataflow {

struct ValidationReport {
  std::vector<std::string> errors;

  [[nodiscard]] bool ok() const { return errors.empty(); }
  /// All messages joined with "; " (empty string when ok).
  [[nodiscard]] std::string summary() const;
};

/// Checks, in order:
///  * the graph has at least one actor and is weakly connected;
///  * every edge belongs to an anti-parallel buffer pair;
///  * each pair satisfies π(data) == γ(space) and γ(data) == π(space)
///    (strong consistency of the buffer protocol);
///  * the data edges form a chain (Sec 3.1 topology restriction).
[[nodiscard]] ValidationReport validate_chain_model(const VrdfGraph& graph);

}  // namespace vrdf::dataflow
