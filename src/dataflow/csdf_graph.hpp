// Cyclo-Static Dataflow (CSDF) graphs.
//
// CSDF actors cycle deterministically through a fixed sequence of phases;
// rates may differ per phase but the *sequence* is data-independent.  CSDF
// sits between SDF and VRDF: the buffer-sizing technique of [15] targets
// it, and abstracting a CSDF edge's phase sequence to the *set* of its
// values yields a VRDF edge whose analysis is conservative for the CSDF
// behaviour (any phase order is one admissible quantum sequence).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "util/time.hpp"

namespace vrdf::dataflow {

class VrdfGraph;
class SdfGraph;

struct CsdfActor {
  std::string name;
  /// Response time per phase; the number of phases is phase_count().
  std::vector<Duration> response_times;

  [[nodiscard]] std::size_t phase_count() const { return response_times.size(); }
};

struct CsdfEdge {
  graph::NodeId source;
  graph::NodeId target;
  /// production[k]: tokens produced by source phase k; length must equal
  /// the source actor's phase count.  Sum over a cycle must be positive.
  std::vector<std::int64_t> production;
  /// consumption[k]: tokens consumed by target phase k.
  std::vector<std::int64_t> consumption;
  std::int64_t initial_tokens = 0;

  [[nodiscard]] std::int64_t production_per_cycle() const;
  [[nodiscard]] std::int64_t consumption_per_cycle() const;
};

class CsdfGraph {
public:
  graph::NodeId add_actor(std::string name, std::vector<Duration> response_times);
  graph::EdgeId add_edge(graph::NodeId source, graph::NodeId target,
                         std::vector<std::int64_t> production,
                         std::vector<std::int64_t> consumption,
                         std::int64_t initial_tokens = 0);

  [[nodiscard]] std::size_t actor_count() const { return actors_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }
  [[nodiscard]] const CsdfActor& actor(graph::NodeId id) const;
  [[nodiscard]] const CsdfEdge& edge(graph::EdgeId id) const;
  [[nodiscard]] const graph::Digraph& topology() const { return topology_; }

  /// Smallest positive integer repetition vector in *firings*: q[a] is a
  /// multiple of a's phase count and q[src]/phases(src)·prod_per_cycle ==
  /// q[dst]/phases(dst)·cons_per_cycle on every edge.
  [[nodiscard]] std::optional<std::vector<std::int64_t>> repetition_vector() const;

  [[nodiscard]] bool is_consistent() const { return repetition_vector().has_value(); }

  /// Aggregates each actor's full phase cycle into one SDF firing
  /// (rates summed, response times summed).  Conservative for buffer
  /// sizing at cycle granularity.
  [[nodiscard]] SdfGraph to_sdf() const;

  /// Abstracts each edge's phase sequence to the set of its per-phase
  /// values and each actor's response time to the per-phase maximum.  The
  /// resulting VRDF graph admits every phase order the CSDF graph can
  /// exhibit, so VRDF buffer capacities are sufficient for the CSDF graph.
  [[nodiscard]] VrdfGraph to_vrdf() const;

private:
  graph::Digraph topology_;
  std::vector<CsdfActor> actors_;
  std::vector<CsdfEdge> edges_;
};

}  // namespace vrdf::dataflow
