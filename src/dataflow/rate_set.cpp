#include "dataflow/rate_set.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace vrdf::dataflow {

RateSet::RateSet(Kind kind, std::vector<std::int64_t> values, std::int64_t lo,
                 std::int64_t hi)
    : kind_(kind), values_(std::move(values)), min_(lo), max_(hi) {}

RateSet RateSet::singleton(std::int64_t value) {
  VRDF_REQUIRE(value > 0, "a singleton rate set must hold a positive quantum");
  return RateSet(Kind::Explicit, {value}, value, value);
}

RateSet RateSet::of(std::initializer_list<std::int64_t> values) {
  return of(std::vector<std::int64_t>(values));
}

RateSet RateSet::of(std::vector<std::int64_t> values) {
  VRDF_REQUIRE(!values.empty(), "a rate set must be non-empty");
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  VRDF_REQUIRE(values.front() >= 0, "rate quanta must be non-negative");
  VRDF_REQUIRE(values.back() > 0,
               "a rate set must contain a positive quantum (Pf(N) excludes {0})");
  const std::int64_t lo = values.front();
  const std::int64_t hi = values.back();
  return RateSet(Kind::Explicit, std::move(values), lo, hi);
}

RateSet RateSet::interval(std::int64_t lo, std::int64_t hi) {
  VRDF_REQUIRE(lo >= 0, "rate quanta must be non-negative");
  VRDF_REQUIRE(hi >= lo, "rate interval must satisfy hi >= lo");
  VRDF_REQUIRE(hi > 0, "a rate set must contain a positive quantum");
  if (lo == hi) {
    return singleton(hi);
  }
  return RateSet(Kind::Interval, {}, lo, hi);
}

std::vector<std::int64_t> RateSet::values() const {
  if (kind_ == Kind::Explicit) {
    return values_;
  }
  std::vector<std::int64_t> out;
  out.reserve(size());
  for (std::int64_t v = min_; v <= max_; ++v) {
    out.push_back(v);
  }
  return out;
}

std::int64_t RateSet::nth(std::size_t i) const {
  VRDF_REQUIRE(i < size(), "rate set index out of range");
  if (kind_ == Kind::Interval) {
    return min_ + static_cast<std::int64_t>(i);
  }
  return values_[i];
}

std::string RateSet::to_string() const {
  std::ostringstream os;
  if (kind_ == Kind::Interval) {
    os << '[' << min_ << ',' << max_ << ']';
    return os.str();
  }
  os << '{';
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i != 0) {
      os << ',';
    }
    os << values_[i];
  }
  os << '}';
  return os.str();
}

bool operator==(const RateSet& a, const RateSet& b) {
  if (a.min_ != b.min_ || a.max_ != b.max_) {
    return false;
  }
  if (a.kind_ == b.kind_) {
    return a.kind_ == RateSet::Kind::Interval || a.values_ == b.values_;
  }
  // Mixed representations are equal iff the explicit one is the full range.
  const RateSet& explicit_set = a.kind_ == RateSet::Kind::Explicit ? a : b;
  return explicit_set.values_.size() ==
         static_cast<std::size_t>(explicit_set.max_ - explicit_set.min_ + 1);
}

std::ostream& operator<<(std::ostream& os, const RateSet& s) {
  return os << s.to_string();
}

}  // namespace vrdf::dataflow
