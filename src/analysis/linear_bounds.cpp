#include "analysis/linear_bounds.hpp"

#include "util/error.hpp"

namespace vrdf::analysis {

TimePoint LinearBound::at(std::int64_t k) const {
  VRDF_REQUIRE(k >= 1, "token indices are 1-based");
  return TimePoint(offset_.seconds() + per_token_.seconds() * Rational(k));
}

PairBounds derive_pair_bounds(const PairAnalysis& pair, TimePoint anchor) {
  const Duration s = pair.bound_rate;
  const LinearBound data_bound(Duration(anchor.seconds()), s);
  return PairBounds{
      /*data_production_upper=*/data_bound,
      /*data_consumption_lower=*/data_bound,
      /*space_production_upper=*/data_bound.shifted(pair.delta_consumer),
      /*space_consumption_lower=*/data_bound.shifted(-pair.delta_producer),
  };
}

bool production_conservative(const LinearBound& upper,
                             const std::vector<TransferEvent>& events) {
  for (const TransferEvent& e : events) {
    if (e.count == 0) {
      continue;
    }
    // Binding token of an atomic production is the firing's first token:
    // the bound is increasing, so bound(first) is the tightest.
    const std::int64_t first = e.cumulative - e.count + 1;
    if (e.time > upper.at(first)) {
      return false;
    }
  }
  return true;
}

bool consumption_conservative(const LinearBound& lower,
                              const std::vector<TransferEvent>& events) {
  for (const TransferEvent& e : events) {
    if (e.count == 0) {
      continue;
    }
    // Binding token of an atomic consumption is the firing's last token.
    if (e.time < lower.at(e.cumulative)) {
      return false;
    }
  }
  return true;
}

std::vector<TransferEvent> just_conservative_producer_schedule(
    const LinearBound& production_upper, const std::vector<std::int64_t>& quanta) {
  std::vector<TransferEvent> events;
  events.reserve(quanta.size());
  std::int64_t cumulative = 0;
  TimePoint previous = production_upper.at(1);
  for (const std::int64_t q : quanta) {
    VRDF_REQUIRE(q >= 0, "quanta must be non-negative");
    TransferEvent e;
    e.count = q;
    e.cumulative = cumulative + q;
    if (q > 0) {
      e.time = production_upper.at(cumulative + 1);
      previous = e.time;
    } else {
      e.time = previous;  // zero-quantum firing carries no binding token
    }
    cumulative += q;
    events.push_back(e);
  }
  return events;
}

std::vector<TransferEvent> just_conservative_consumer_schedule(
    const LinearBound& consumption_lower, const std::vector<std::int64_t>& quanta) {
  std::vector<TransferEvent> events;
  events.reserve(quanta.size());
  std::int64_t cumulative = 0;
  TimePoint previous = consumption_lower.at(1);
  for (const std::int64_t q : quanta) {
    VRDF_REQUIRE(q >= 0, "quanta must be non-negative");
    TransferEvent e;
    e.count = q;
    e.cumulative = cumulative + q;
    if (q > 0) {
      e.time = consumption_lower.at(cumulative + q);
      previous = e.time;
    } else {
      e.time = previous;
    }
    cumulative += q;
    events.push_back(e);
  }
  return events;
}

Rational bound_token_distance(const PairBounds& bounds) {
  // α̂p(space)(k−d) ≤ α̌c(space)(k) for all k reduces, with the shared
  // slope s, to d·s ≥ offset(α̂p) − offset(α̌c).
  const Duration delta = bounds.space_production_upper.offset() -
                         bounds.space_consumption_lower.offset();
  return delta / bounds.space_production_upper.per_token();
}

}  // namespace vrdf::analysis
