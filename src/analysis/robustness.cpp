#include "analysis/robustness.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/log.hpp"

namespace vrdf::analysis {

using dataflow::ActorId;

namespace {

/// True when the analysis of `probe` is admissible and every pair fits
/// the capacities installed in `probe` (only response times differ from
/// the caller's graph, so these are the original installed capacities).
[[nodiscard]] bool fits_installed(const dataflow::VrdfGraph& probe,
                                  const ConstraintSet& constraints,
                                  const AnalysisOptions& options) {
  const GraphAnalysis analysis =
      compute_buffer_capacities(probe, constraints, options);
  if (!analysis.admissible) {
    return false;
  }
  for (const PairAnalysis& pair : analysis.pairs) {
    if (pair.capacity > probe.buffer_capacity(pair.buffer)) {
      return false;
    }
  }
  return true;
}

/// Largest k in [0, grid] such that predicate(k) holds, assuming the
/// predicate is monotone (true at 0, and once false stays false) — the
/// capacity of every pair is monotone nondecreasing in every ρ(v).
template <typename Predicate>
[[nodiscard]] std::int64_t max_true(std::int64_t grid, Predicate&& holds) {
  if (holds(grid)) {
    return grid;
  }
  std::int64_t lo = 0;  // known true (caller checks the baseline)
  std::int64_t hi = grid;  // known false
  while (hi - lo > 1) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    (holds(mid) ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace

RobustnessReport robustness_margins(const dataflow::VrdfGraph& graph,
                                    const ConstraintSet& constraints,
                                    const RobustnessOptions& options) {
  VRDF_REQUIRE(options.grid_steps > 0, "margin grid needs at least one step");
  RobustnessReport report;
  report.constraints = constraints;

  const GraphAnalysis baseline =
      compute_buffer_capacities(graph, constraints, options.analysis);
  if (!baseline.admissible) {
    report.diagnostics = baseline.diagnostics;
    report.diagnostics.push_back(
        "robustness margins undefined: baseline analysis inadmissible");
    return report;
  }

  // Buffer headroom, and the precondition for every margin below: the
  // graph's installed capacities must cover the baseline requirement.
  bool installed_ok = true;
  report.buffers.reserve(baseline.pairs.size());
  for (const PairAnalysis& pair : baseline.pairs) {
    BufferHeadroom headroom;
    headroom.buffer = pair.buffer;
    headroom.producer = pair.producer;
    headroom.consumer = pair.consumer;
    headroom.required = pair.capacity;
    headroom.installed = graph.buffer_capacity(pair.buffer);
    headroom.headroom = headroom.installed - headroom.required;
    if (headroom.headroom < 0) {
      installed_ok = false;
      std::ostringstream os;
      os << "installed capacity of buffer "
         << graph.actor(pair.producer).name << "->"
         << graph.actor(pair.consumer).name << " (" << headroom.installed
         << ") is below the analysed requirement (" << headroom.required
         << ")";
      report.diagnostics.push_back(os.str());
    }
    report.buffers.push_back(headroom);
  }

  const ResponseTimeBudget budget =
      max_admissible_response_times(graph, constraints);
  if (!budget.ok) {
    report.diagnostics.insert(report.diagnostics.end(),
                              budget.diagnostics.begin(),
                              budget.diagnostics.end());
    return report;
  }
  if (!installed_ok) {
    // Report zero margins (honest: nothing extra is tolerable) but keep
    // ok=false so callers do not inject "within-margin" faults.
    for (std::size_t i = 0; i < budget.actors_in_order.size(); ++i) {
      report.actors.push_back(ActorMargin{
          budget.actors_in_order[i],
          graph.actor(budget.actors_in_order[i]).response_time,
          budget.max_response_times[i], Duration()});
    }
    return report;
  }

  const std::int64_t grid = options.grid_steps;
  report.actors.reserve(budget.actors_in_order.size());
  for (std::size_t i = 0; i < budget.actors_in_order.size(); ++i) {
    const ActorId v = budget.actors_in_order[i];
    ActorMargin margin;
    margin.actor = v;
    margin.response_time = graph.actor(v).response_time;
    margin.max_response_time = budget.max_response_times[i];
    const Duration slack = margin.max_response_time - margin.response_time;
    if (slack.is_positive()) {
      dataflow::VrdfGraph probe = graph;
      const std::int64_t best = max_true(grid, [&](std::int64_t k) {
        probe.set_response_time(
            v, margin.response_time + slack * Rational(k, grid));
        return fits_installed(probe, constraints, options.analysis);
      });
      margin.margin = slack * Rational(best, grid);
    }
    VRDF_LOG(Trace) << "robustness: actor '" << graph.actor(v).name
                    << "' rho=" << margin.response_time.to_string()
                    << " phi=" << margin.max_response_time.to_string()
                    << " margin=" << margin.margin.to_string();
    report.actors.push_back(margin);
  }

  // Per-actor margins hold the *other* actors at their declared ρ and do
  // not compose; the joint fraction is what all actors may take at once.
  const std::int64_t joint = max_true(grid, [&](std::int64_t k) {
    dataflow::VrdfGraph probe = graph;
    for (const ActorMargin& m : report.actors) {
      const Duration slack = m.max_response_time - m.response_time;
      if (slack.is_positive()) {
        probe.set_response_time(m.actor,
                                m.response_time + slack * Rational(k, grid));
      }
    }
    return fits_installed(probe, constraints, options.analysis);
  });
  report.joint_safe_fraction = Rational(joint, grid);

  report.ok = true;
  return report;
}

RobustnessReport robustness_margins(const dataflow::VrdfGraph& graph,
                                    const ThroughputConstraint& constraint,
                                    const RobustnessOptions& options) {
  return robustness_margins(graph, ConstraintSet{constraint}, options);
}

}  // namespace vrdf::analysis
