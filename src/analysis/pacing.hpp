// Pacing propagation over the buffer graph (Sec 4.3 / 4.4, generalised
// from chains to fork-join DAGs, to cyclic graphs whose back-edges carry
// initial tokens, and to *sets* of simultaneous throughput constraints).
//
// A throughput constraint fixes the pacing of one end of the graph:
// φ(constrained actor) = τ.  Pacing then propagates per buffer edge, in
// the direction of the edge's rate-determining side:
//
//  * Sink-determined (Sec 4.3): the data-consuming task determines the
//    rate; the producer must be able to match the maximum consumption
//    rate even when producing its minimum quantum, so edge e_xy demands
//    φ(v_x) ≤ (φ(v_y)/γ̂(e_xy)) · π̌(e_xy).  Propagation walks the
//    reverse topological order of the data DAG; an actor with several
//    such out-edges must sustain the fastest demand, so its φ is the
//    *minimum* over its out-edges' demands (on a chain there is one
//    out-edge and this is exactly the paper's recurrence).
//  * Source-determined (Sec 4.4): mirrored — consumption is minimised and
//    production maximised: e_xy demands φ(v_y) ≤ (φ(v_x)/π̂(e_xy)) ·
//    γ̌(e_xy), moving downstream in topological order, minimum over
//    in-edges.
//
// With a single *end* constraint every edge inherits the constraint's
// side (the pre-PR-4 behaviour, reproduced bit for bit).  With a
// constraint *set* — or a constraint on an *interior* actor — the side
// is assigned per edge: a constrained actor may sit anywhere in the
// skeleton; it anchors a sink-kind region through its input buffers
// (everything with a skeleton path into it is paced upstream, exactly as
// if the pin were a data sink) and a source-kind region through its
// output buffers (everything it reaches is paced downstream, as if it
// were a data source) — a data sink anchors only the former, a data
// source only the latter, an interior pin both.  An edge whose consumer
// lies on a path into a sink-kind anchor is sink-determined, every other
// edge whose producer is reachable from a source-kind anchor is
// source-determined, and an edge paced by neither is rejected (no
// demand would relate its endpoints' rates).  Seeds propagate
// bidirectionally over the skeleton topological order — upstream through
// the sink-anchored region, downstream through the rest — taking the
// per-actor minimum over all demands, which flow consistency (below)
// collapses to the unique common value: a demand that differs is
// rejected, never silently minimised over.
//
// Flow consistency: because every actor runs ONE schedule, two demands
// that disagree at any actor describe realized flows that cannot balance:
// the branch toward the slower constraint receives tokens at a strictly
// higher rate than that constraint can ever drain (the demand already
// uses the producer's *minimum* and the consumer's *maximum* quanta), so
// some buffer on it fills at any finite capacity, back-pressure stalls
// the shared actor, and the faster constraint starves.  Disagreeing
// demands are therefore rejected with a diagnostic naming the binding
// constraint and the path it propagated along; in particular a
// constrained actor whose seeded period exceeds the φ another constraint
// propagates onto it (too slow — the other constraint starves), or
// undercuts it (too fast — tokens pile up until the actor itself blocks
// and misses its own deadline).
//
// φ(v) is simultaneously the minimal required difference between
// subsequent starts of v and the maximal admissible worst-case response
// time κ(w) (the paper derives the MP3 response times this way).
//
// Cyclic graphs: the propagation runs on the acyclic *skeleton* (the data
// edges minus the tokened back-edges) — equivalently, over the
// condensation DAG, since every SCC's cycles break at back-edges.  A
// back-edge imposes no propagation demand of its own (its endpoints are
// both paced through the skeleton), but its static rates must agree with
// the propagated pacing: π/φ(producer) = γ/φ(consumer), i.e. the
// circulating flow around every cycle must balance.  Inconsistent
// back-edges are rejected with diagnostics, mirroring the fork-join
// reconvergent-path rejection.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/snapshot.hpp"
#include "analysis/types.hpp"
#include "dataflow/vrdf_graph.hpp"
#include "util/error.hpp"

namespace vrdf::analysis {

struct PacingResult {
  bool ok = false;
  std::vector<std::string> diagnostics;
  /// Side of the primary (first) constraint — kept for single-constraint
  /// call sites; per-buffer sides live in `determined_by`.
  ConstraintSide side = ConstraintSide::Sink;
  /// The constraint set the propagation ran with (size 1 for the
  /// single-constraint entry point).
  ConstraintSet constraints;
  /// True when the data edges form a chain (Sec 3.1 shape).
  bool is_chain = false;
  /// True when the data edges contain directed cycles (broken at tokened
  /// back-edges).
  bool is_cyclic = false;
  /// The buffer network the propagation ran on (valid whenever the graph
  /// passed validate_cyclic_model, even if pacing itself failed) — shared
  /// with the capacity and min-period computations so the topological
  /// structure is built once.  Aliases the TopologySnapshot's view when
  /// the snapshot entry point was used (no per-query copy).
  std::shared_ptr<const dataflow::VrdfGraph::BufferView> view;
  /// Actors in topological order of the data edges (chain order on
  /// chains, data source first).
  std::vector<dataflow::ActorId> actors_in_order;
  /// Buffers ordered by the producer's topological position (chain order
  /// on chains: buffers[i] connects actors[i] → actors[i+1]).
  std::vector<dataflow::BufferEdges> buffers_in_order;
  /// Per position in buffers_in_order: the pair's rate-determining side.
  std::vector<ConstraintSide> determined_by;
  /// Per actor index: true when the actor lies on a skeleton path into a
  /// sink-kind constrained actor — the region whose propagations (pacing
  /// and schedule alignment) run in reverse topological order; the rest
  /// of the graph propagates forward from source-kind constraints.
  std::vector<bool> sink_anchored;
  /// Per actor index: index into `constraints` when the actor is
  /// constrained, npos otherwise.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::vector<std::size_t> constraint_of_actor;
  /// Per constraint index: true when the constrained actor anchors a
  /// sink-kind region, i.e. it has skeleton input buffers (data sinks and
  /// interior pins) / a source-kind region, i.e. it has skeleton output
  /// buffers (data sources and interior pins).  Exactly one holds at an
  /// end; both hold for an interior pin.
  std::vector<bool> constraint_is_sink_kind;
  std::vector<bool> constraint_is_source_kind;
  /// φ per position in actors_in_order.
  std::vector<Duration> pacing;
  /// φ indexed by ActorId::index() — the per-edge lookup the capacity
  /// computation uses.
  std::vector<Duration> pacing_by_actor;

  /// φ(actor).  Fails loudly (ContractError) on an out-of-range id or an
  /// actor the propagation never paced, instead of silently reading a
  /// default-constructed zero Duration.
  [[nodiscard]] const Duration& pacing_of(dataflow::ActorId actor) const {
    VRDF_REQUIRE(actor.index() < pacing_by_actor.size(),
                 "pacing_of: actor id out of range for this graph");
    const Duration& phi = pacing_by_actor[actor.index()];
    VRDF_REQUIRE(phi.is_positive(),
                 "pacing_of: actor was never paced by the propagation");
    return phi;
  }
};

/// Validates that the graph is a consistent buffer network whose cycles
/// break at tokened back-edges, and propagates pacing from the
/// constrained actor.  A constrained end must be the graph's unique data
/// sink (sink mode) or unique data source (source mode); an *interior*
/// pin needs no uniqueness — it paces its whole upstream cone like a
/// sink and its whole downstream cone like a source, and the coverage
/// checks reject any actor or edge left unpaced.  Produces diagnostics
/// instead of throwing for model-level infeasibility:
///  * a zero minimum quantum on the rate-determining side (would require
///    an infinite rate);
///  * data-dependent rate sets on a reconvergent fork-join edge — the
///    join drains sibling branches in lockstep, so variable realized
///    flows would diverge unboundedly and no finite capacity suffices;
///  * conflicting per-edge pacing demands at a fork (sink mode) or join
///    (source mode) — with static reconvergent rates this is exactly
///    rate inconsistency around an undirected cycle of the data graph,
///    which no capacities can buffer away;
///  * a back-edge whose static rates disagree with the skeleton-propagated
///    pacing of its endpoints — flow around the directed cycle would not
///    balance, so the circulating token count drifts and either the loop
///    starves or its buffer fills regardless of capacity.
[[nodiscard]] PacingResult compute_pacing(const dataflow::VrdfGraph& graph,
                                          const ThroughputConstraint& constraint);

/// Constraint-set overload: constrained actors may be ends or interior
/// pins, every actor must be paced by at least one constraint, and all
/// demands must agree per actor (flow consistency — see the header
/// comment).  With exactly one end constraint this is bit-for-bit the
/// single-constraint analysis, including its uniqueness requirement and
/// diagnostics.
[[nodiscard]] PacingResult compute_pacing(const dataflow::VrdfGraph& graph,
                                          const ConstraintSet& constraints);

/// Snapshot entry points: identical semantics and diagnostics, but the
/// model validation and buffer-network view come from the captured
/// TopologySnapshot instead of being rebuilt per call — the memoization
/// tier every incremental query sits on.  The graph overloads above are
/// exactly `compute_pacing(TopologySnapshot(graph), ...)`.
[[nodiscard]] PacingResult compute_pacing(const TopologySnapshot& snapshot,
                                          const ThroughputConstraint& constraint);
[[nodiscard]] PacingResult compute_pacing(const TopologySnapshot& snapshot,
                                          const ConstraintSet& constraints);

/// Pacing restricted to the actors a constraint subset reaches, used by
/// the multi-constraint min-period solver: actors outside the subset's
/// demand cone keep no pacing instead of failing the propagation, and no
/// end-uniqueness / full-coverage checks are applied.  Conflicting
/// demands, zero rate-determining quanta and seed violations still
/// reject.
struct PartialPacing {
  bool ok = false;
  std::vector<std::string> diagnostics;
  /// φ by ActorId::index(); unset for actors the subset does not pace.
  std::vector<std::optional<Duration>> phi_by_actor;
};
[[nodiscard]] PartialPacing compute_partial_pacing(
    const dataflow::VrdfGraph& graph, const ConstraintSet& constraints);
[[nodiscard]] PartialPacing compute_partial_pacing(
    const TopologySnapshot& snapshot, const ConstraintSet& constraints);

}  // namespace vrdf::analysis
