// Pacing propagation over the buffer graph (Sec 4.3 / 4.4, generalised
// from chains to fork-join DAGs and to cyclic graphs whose back-edges
// carry initial tokens).
//
// The throughput constraint fixes the pacing of one end of the graph:
// φ(constrained actor) = τ.  Pacing then propagates per buffer edge:
//
//  * Sink-constrained (Sec 4.3): on every buffer the data-consuming task
//    determines the rate; the producer must be able to match the maximum
//    consumption rate even when producing its minimum quantum, so edge
//    e_xy demands φ(v_x) ≤ (φ(v_y)/γ̂(e_xy)) · π̌(e_xy).  Propagation
//    walks the reverse topological order of the data DAG; an actor with
//    several output buffers must sustain the fastest demand, so its φ is
//    the *minimum* over its out-edges' demands (on a chain there is one
//    out-edge and this is exactly the paper's recurrence).
//  * Source-constrained (Sec 4.4): mirrored — consumption is minimised and
//    production maximised: e_xy demands φ(v_y) ≤ (φ(v_x)/π̂(e_xy)) ·
//    γ̌(e_xy), moving downstream in topological order, minimum over
//    in-edges.
//
// φ(v) is simultaneously the minimal required difference between
// subsequent starts of v and the maximal admissible worst-case response
// time κ(w) (the paper derives the MP3 response times this way).
//
// Cyclic graphs: the propagation runs on the acyclic *skeleton* (the data
// edges minus the tokened back-edges) — equivalently, over the
// condensation DAG, since every SCC's cycles break at back-edges.  A
// back-edge imposes no propagation demand of its own (its endpoints are
// both paced through the skeleton), but its static rates must agree with
// the propagated pacing: π/φ(producer) = γ/φ(consumer), i.e. the
// circulating flow around every cycle must balance.  Inconsistent
// back-edges are rejected with diagnostics, mirroring the fork-join
// reconvergent-path rejection.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/types.hpp"
#include "dataflow/vrdf_graph.hpp"

namespace vrdf::analysis {

struct PacingResult {
  bool ok = false;
  std::vector<std::string> diagnostics;
  ConstraintSide side = ConstraintSide::Sink;
  /// True when the data edges form a chain (Sec 3.1 shape).
  bool is_chain = false;
  /// True when the data edges contain directed cycles (broken at tokened
  /// back-edges).
  bool is_cyclic = false;
  /// The buffer network the propagation ran on (valid whenever the graph
  /// passed validate_cyclic_model, even if pacing itself failed) — shared
  /// with the capacity and min-period computations so the topological
  /// structure is built once.
  dataflow::VrdfGraph::BufferView view;
  /// Actors in topological order of the data edges (chain order on
  /// chains, data source first).
  std::vector<dataflow::ActorId> actors_in_order;
  /// Buffers ordered by the producer's topological position (chain order
  /// on chains: buffers[i] connects actors[i] → actors[i+1]).
  std::vector<dataflow::BufferEdges> buffers_in_order;
  /// φ per position in actors_in_order.
  std::vector<Duration> pacing;
  /// φ indexed by ActorId::index() — the per-edge lookup the capacity
  /// computation uses.
  std::vector<Duration> pacing_by_actor;

  [[nodiscard]] const Duration& pacing_of(dataflow::ActorId actor) const {
    return pacing_by_actor[actor.index()];
  }
};

/// Validates that the graph is a consistent acyclic buffer network, that
/// the constrained actor is its unique data sink (sink mode) or unique
/// data source (source mode), and propagates pacing.  Produces diagnostics
/// instead of throwing for model-level infeasibility:
///  * a zero minimum quantum on the rate-determining side (would require
///    an infinite rate);
///  * data-dependent rate sets on a reconvergent fork-join edge — the
///    join drains sibling branches in lockstep, so variable realized
///    flows would diverge unboundedly and no finite capacity suffices;
///  * conflicting per-edge pacing demands at a fork (sink mode) or join
///    (source mode) — with static reconvergent rates this is exactly
///    rate inconsistency around an undirected cycle of the data graph,
///    which no capacities can buffer away;
///  * a back-edge whose static rates disagree with the skeleton-propagated
///    pacing of its endpoints — flow around the directed cycle would not
///    balance, so the circulating token count drifts and either the loop
///    starves or its buffer fills regardless of capacity.
[[nodiscard]] PacingResult compute_pacing(const dataflow::VrdfGraph& graph,
                                          const ThroughputConstraint& constraint);

}  // namespace vrdf::analysis
