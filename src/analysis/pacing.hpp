// Pacing propagation along a chain (Sec 4.3 / 4.4).
//
// The throughput constraint fixes the pacing of one chain end:
// φ(constrained actor) = τ.  Pacing then propagates pair-by-pair:
//
//  * Sink-constrained (Sec 4.3): on every buffer the data-consuming task
//    determines the rate; the producer must be able to match the maximum
//    consumption rate even when producing its minimum quantum, so
//    φ(v_x) = (φ(v_y)/γ̂(e_xy)) · π̌(e_xy), moving upstream.
//  * Source-constrained (Sec 4.4): mirrored — consumption is minimised and
//    production maximised: φ(v_y) = (φ(v_x)/π̂(e_xy)) · γ̌(e_xy), moving
//    downstream.
//
// φ(v) is simultaneously the minimal required difference between
// subsequent starts of v and the maximal admissible worst-case response
// time κ(w) (the paper derives the MP3 response times this way).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/types.hpp"
#include "dataflow/vrdf_graph.hpp"

namespace vrdf::analysis {

struct PacingResult {
  bool ok = false;
  std::vector<std::string> diagnostics;
  ConstraintSide side = ConstraintSide::Sink;
  /// Actors source→sink.
  std::vector<dataflow::ActorId> actors_in_order;
  /// Buffers in chain order (buffers[i] connects actors[i] → actors[i+1]).
  std::vector<dataflow::BufferEdges> buffers_in_order;
  /// φ per chain position.
  std::vector<Duration> pacing;
};

/// Validates that the graph is a consistent chain, that the constrained
/// actor is one of its ends, and propagates pacing.  Produces diagnostics
/// instead of throwing for model-level infeasibility (e.g. a zero minimum
/// production quantum upstream of a sink constraint, which would require
/// an infinite rate).
[[nodiscard]] PacingResult compute_pacing(const dataflow::VrdfGraph& graph,
                                          const ThroughputConstraint& constraint);

}  // namespace vrdf::analysis
