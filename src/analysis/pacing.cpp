#include "analysis/pacing.hpp"

#include <sstream>

#include "dataflow/validation.hpp"

namespace vrdf::analysis {

using dataflow::ActorId;
using dataflow::BufferEdges;
using dataflow::Edge;
using dataflow::VrdfGraph;

PacingResult compute_pacing(const VrdfGraph& graph,
                            const ThroughputConstraint& constraint) {
  PacingResult result;

  const dataflow::ValidationReport validation =
      dataflow::validate_chain_model(graph);
  if (!validation.ok()) {
    result.diagnostics = validation.errors;
    return result;
  }
  if (!constraint.period.is_positive()) {
    result.diagnostics.push_back("throughput period must be positive");
    return result;
  }

  const auto chain = graph.chain_view();
  // validate_chain_model already guaranteed a chain.
  result.actors_in_order = chain->actors;
  result.buffers_in_order = chain->buffers;

  const std::size_t n = result.actors_in_order.size();
  if (constraint.actor == result.actors_in_order.back()) {
    result.side = ConstraintSide::Sink;
  } else if (constraint.actor == result.actors_in_order.front()) {
    result.side = ConstraintSide::Source;
  } else {
    std::ostringstream os;
    os << "throughput constraint must be on the chain's source or sink; '"
       << graph.actor(constraint.actor).name << "' is interior";
    result.diagnostics.push_back(os.str());
    return result;
  }
  // A single-actor chain is both source and sink; treat it as a sink
  // constraint with no pairs.
  if (n == 1) {
    result.side = ConstraintSide::Sink;
  }

  result.pacing.assign(n, Duration());
  if (result.side == ConstraintSide::Sink) {
    result.pacing[n - 1] = constraint.period;
    for (std::size_t i = n - 1; i > 0; --i) {
      const Edge& data = graph.edge(result.buffers_in_order[i - 1].data);
      const std::int64_t gamma_max = data.consumption.max();
      const std::int64_t pi_min = data.production.min();
      if (pi_min == 0) {
        std::ostringstream os;
        os << "buffer " << graph.actor(data.source).name << " -> "
           << graph.actor(data.target).name
           << ": minimum production quantum is zero; the producer cannot "
              "sustain the consumer's maximum rate (sink-constrained chains "
              "only tolerate zero *consumption* quanta)";
        result.diagnostics.push_back(os.str());
        return result;
      }
      // φ(v_x) = (φ(v_y)/γ̂(e_xy)) · π̌(e_xy)
      result.pacing[i - 1] =
          result.pacing[i] * Rational(pi_min, gamma_max);
    }
  } else {
    result.pacing[0] = constraint.period;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const Edge& data = graph.edge(result.buffers_in_order[i].data);
      const std::int64_t pi_max = data.production.max();
      const std::int64_t gamma_min = data.consumption.min();
      if (gamma_min == 0) {
        std::ostringstream os;
        os << "buffer " << graph.actor(data.source).name << " -> "
           << graph.actor(data.target).name
           << ": minimum consumption quantum is zero; the consumer cannot "
              "keep up with the source's maximum rate (source-constrained "
              "chains only tolerate zero *production* quanta)";
        result.diagnostics.push_back(os.str());
        return result;
      }
      // φ(v_y) = (φ(v_x)/π̂(e_xy)) · γ̌(e_xy)
      result.pacing[i + 1] =
          result.pacing[i] * Rational(gamma_min, pi_max);
    }
  }

  result.ok = true;
  return result;
}

}  // namespace vrdf::analysis
