#include "analysis/pacing.hpp"

#include <sstream>

#include "dataflow/validation.hpp"
#include "util/error.hpp"

namespace vrdf::analysis {

using dataflow::ActorId;
using dataflow::BufferEdges;
using dataflow::Edge;
using dataflow::VrdfGraph;

PacingResult compute_pacing(const VrdfGraph& graph,
                            const ThroughputConstraint& constraint) {
  PacingResult result;

  const dataflow::ValidationReport validation =
      dataflow::validate_cyclic_model(graph);
  if (!validation.ok()) {
    result.diagnostics = validation.errors;
    return result;
  }
  if (!constraint.period.is_positive()) {
    result.diagnostics.push_back("throughput period must be positive");
    return result;
  }

  auto view = graph.buffer_view();
  // validate_cyclic_model already guaranteed a buffer network whose
  // cycles all break at tokened back-edges, so the skeleton is acyclic.
  result.view = std::move(*view);
  result.is_chain = result.view.is_chain;
  result.is_cyclic = result.view.is_cyclic;
  result.actors_in_order = result.view.actors;
  result.buffers_in_order = result.view.buffers;
  const char* const shape = result.is_chain ? "chains" : "graphs";

  const bool no_out =
      result.view.out_buffers[constraint.actor.index()].empty();
  const bool no_in = result.view.in_buffers[constraint.actor.index()].empty();
  if (no_out) {
    result.side = ConstraintSide::Sink;
  } else if (no_in) {
    result.side = ConstraintSide::Source;
  } else {
    std::ostringstream os;
    if (result.is_chain) {
      os << "throughput constraint must be on the chain's source or sink; '"
         << graph.actor(constraint.actor).name << "' is interior";
    } else {
      os << "throughput constraint must be on the graph's unique data source "
            "or sink; '"
         << graph.actor(constraint.actor).name << "' is interior";
    }
    result.diagnostics.push_back(os.str());
    return result;
  }
  // Every unconstrained actor must receive a pacing demand, so the
  // constrained end must be the *only* end of its kind: a second data sink
  // (sink mode) or data source (source mode) would be left unpaced.
  const auto& ends = result.side == ConstraintSide::Sink
                         ? result.view.data_sinks
                         : result.view.data_sources;
  for (const ActorId end : ends) {
    if (end != constraint.actor) {
      std::ostringstream os;
      os << (result.side == ConstraintSide::Sink
                 ? "sink-constrained analysis requires a unique data sink; '"
                 : "source-constrained analysis requires a unique data source; '")
         << graph.actor(end).name << "' has no "
         << (result.side == ConstraintSide::Sink ? "output" : "input")
         << " buffers either";
      result.diagnostics.push_back(os.str());
      return result;
    }
  }

  // Data-dependent rates are only sound on chain-segment (bridge) edges:
  // a reconvergent region's join drains its sibling branches in lockstep,
  // so a variable realized flow on any internal edge lets the branches'
  // cumulative flows diverge — the surplus branch's buffer then fills
  // without bound and no finite capacity satisfies the constraint for
  // every admissible sequence.
  for (std::size_t pos = 0; pos < result.buffers_in_order.size(); ++pos) {
    if (!result.view.on_reconvergent_path[pos]) {
      continue;
    }
    const Edge& data = graph.edge(result.buffers_in_order[pos].data);
    if (!data.production.is_singleton() || !data.consumption.is_singleton()) {
      std::ostringstream os;
      os << "buffer " << graph.actor(data.source).name << " -> "
         << graph.actor(data.target).name
         << ": data-dependent rates (pi=" << data.production
         << ", gamma=" << data.consumption
         << ") on a reconvergent fork-join path; sibling branch flows "
            "could diverge unboundedly, so variable quanta are only "
            "supported on chain-segment edges";
      result.diagnostics.push_back(os.str());
      return result;
    }
  }

  result.pacing_by_actor.assign(graph.actor_count(), Duration());
  result.pacing_by_actor[constraint.actor.index()] = constraint.period;
  // A fork (sink mode) / join (source mode) whose edges impose *different*
  // demands is rate-inconsistent around an undirected cycle (all branches
  // reconverge on the way to the constrained actor): the realized flows
  // cannot balance, so taking the min would silently produce capacities
  // for an unsatisfiable model.  Report the conflict instead.
  const auto demand_conflict = [&](ActorId v, const Duration& phi,
                                   const Duration& demand) {
    std::ostringstream os;
    os << "actor '" << graph.actor(v).name
       << "': conflicting pacing demands from its "
       << (result.side == ConstraintSide::Sink ? "output" : "input")
       << " buffers (" << phi.seconds().to_string() << " s vs "
       << demand.seconds().to_string()
       << " s); the reconvergent branches impose inconsistent rates and "
          "no finite capacities can satisfy the constraint";
    result.diagnostics.push_back(os.str());
  };
  if (result.side == ConstraintSide::Sink) {
    // Walk upstream: every successor's φ is final before its producers.
    for (auto it = result.actors_in_order.rbegin();
         it != result.actors_in_order.rend(); ++it) {
      const ActorId v = *it;
      if (v == constraint.actor) {
        continue;
      }
      Duration phi;
      for (const std::size_t pos : result.view.out_buffers[v.index()]) {
        const Edge& data = graph.edge(result.buffers_in_order[pos].data);
        const std::int64_t gamma_max = data.consumption.max();
        const std::int64_t pi_min = data.production.min();
        if (pi_min == 0) {
          std::ostringstream os;
          os << "buffer " << graph.actor(data.source).name << " -> "
             << graph.actor(data.target).name
             << ": minimum production quantum is zero; the producer cannot "
                "sustain the consumer's maximum rate (sink-constrained "
             << shape << " only tolerate zero *consumption* quanta)";
          result.diagnostics.push_back(os.str());
          return result;
        }
        // Demand of e_xy: φ(v_x) ≤ (φ(v_y)/γ̂(e_xy)) · π̌(e_xy).
        const Duration demand = result.pacing_by_actor[data.target.index()] *
                                Rational(pi_min, gamma_max);
        if (!phi.is_positive()) {
          phi = demand;
        } else if (demand != phi) {
          demand_conflict(v, phi, demand);
          return result;
        }
      }
      VRDF_REQUIRE(phi.is_positive(), "unpaced actor in sink propagation");
      result.pacing_by_actor[v.index()] = phi;
    }
  } else {
    // Walk downstream: every producer's φ is final before its consumers.
    for (const ActorId v : result.actors_in_order) {
      if (v == constraint.actor) {
        continue;
      }
      Duration phi;
      for (const std::size_t pos : result.view.in_buffers[v.index()]) {
        const Edge& data = graph.edge(result.buffers_in_order[pos].data);
        const std::int64_t pi_max = data.production.max();
        const std::int64_t gamma_min = data.consumption.min();
        if (gamma_min == 0) {
          std::ostringstream os;
          os << "buffer " << graph.actor(data.source).name << " -> "
             << graph.actor(data.target).name
             << ": minimum consumption quantum is zero; the consumer cannot "
                "keep up with the source's maximum rate (source-constrained "
             << shape << " only tolerate zero *production* quanta)";
          result.diagnostics.push_back(os.str());
          return result;
        }
        // Demand of e_xy: φ(v_y) ≤ (φ(v_x)/π̂(e_xy)) · γ̌(e_xy).
        const Duration demand = result.pacing_by_actor[data.source.index()] *
                                Rational(gamma_min, pi_max);
        if (!phi.is_positive()) {
          phi = demand;
        } else if (demand != phi) {
          demand_conflict(v, phi, demand);
          return result;
        }
      }
      VRDF_REQUIRE(phi.is_positive(), "unpaced actor in source propagation");
      result.pacing_by_actor[v.index()] = phi;
    }
  }

  // Back-edge flow consistency: a tokened back-edge adds no propagation
  // demand (both endpoints are paced through the skeleton), but the
  // circulating flow around its cycle must balance: tokens produced per
  // second (π/φ(producer)) must equal tokens consumed per second
  // (γ/φ(consumer)).  Rates on cycle edges are static (validated), so an
  // imbalance is a modeling error no capacity can absorb.
  for (const std::size_t pos : result.view.feedback_buffers) {
    const Edge& data = graph.edge(result.buffers_in_order[pos].data);
    const Duration produced_side =
        result.pacing_by_actor[data.target.index()] *
        Rational(data.production.min());
    const Duration consumed_side =
        result.pacing_by_actor[data.source.index()] *
        Rational(data.consumption.min());
    if (produced_side != consumed_side) {
      std::ostringstream os;
      os << "back-edge " << graph.actor(data.source).name << " -> "
         << graph.actor(data.target).name << ": static rates (pi="
         << data.production << ", gamma=" << data.consumption
         << ") are flow-inconsistent with the propagated pacing ("
         << result.pacing_by_actor[data.source.index()].seconds().to_string()
         << " s vs "
         << result.pacing_by_actor[data.target.index()].seconds().to_string()
         << " s); the cycle's circulating token count would drift";
      result.diagnostics.push_back(os.str());
      return result;
    }
  }

  result.pacing.reserve(result.actors_in_order.size());
  for (const ActorId v : result.actors_in_order) {
    result.pacing.push_back(result.pacing_by_actor[v.index()]);
  }
  result.ok = true;
  return result;
}

}  // namespace vrdf::analysis
