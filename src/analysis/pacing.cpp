#include "analysis/pacing.hpp"

#include <algorithm>
#include <sstream>

#include "dataflow/validation.hpp"
#include "util/error.hpp"

namespace vrdf::analysis {

using dataflow::ActorId;
using dataflow::BufferEdges;
using dataflow::Edge;
using dataflow::VrdfGraph;

namespace {

constexpr std::size_t kNone = PacingResult::npos;

/// Everything the shared propagation computes; compute_pacing and
/// compute_partial_pacing wrap it with their respective coverage rules.
struct CoreResult {
  bool ok = false;
  std::vector<std::string> diagnostics;
  ConstraintSide primary_side = ConstraintSide::Sink;
  bool primary_side_known = false;
  /// φ by actor index (meaningful where `paced`).
  std::vector<Duration> phi;
  std::vector<bool> paced;
  /// Per buffer position: rate-determining side (where `edge_paced`).
  std::vector<ConstraintSide> edge_side;
  std::vector<bool> edge_paced;
  std::vector<bool> sink_anchored;
  std::vector<std::size_t> constraint_of;       // by actor index
  std::vector<bool> constraint_is_sink_kind;    // by constraint index
  std::vector<bool> constraint_is_source_kind;  // by constraint index
};

/// The bidirectional demand propagation over the skeleton topological
/// order.  `partial` relaxes the coverage rules (actors outside the
/// constraint subset's demand cone stay unpaced); with a single
/// constraint and !partial this reproduces the pre-PR-4 single-constraint
/// behaviour — checks, diagnostics and values — bit for bit.
CoreResult propagate_core(const VrdfGraph& graph,
                          const VrdfGraph::BufferView& view,
                          const ConstraintSet& constraints, bool partial) {
  CoreResult core;
  const bool single = !partial && constraints.size() == 1;
  const char* const shape = view.is_chain ? "chains" : "graphs";

  // Constraint kinds: a constrained actor may sit anywhere in the
  // skeleton.  Nothing in the sufficiency argument of Sec 4 requires the
  // strictly periodic actor to be an end — pinning an interior actor
  // splits the graph at an exactly periodic schedule: everything with a
  // skeleton path *into* the pin is paced upstream exactly like a
  // sink-constrained graph (the pin anchors a sink-kind region), and
  // everything the pin reaches is paced downstream like a
  // source-constrained graph (a source-kind region).  A data sink
  // anchors only the former, a data source only the latter, an interior
  // pin both.
  core.constraint_of.assign(graph.actor_count(), kNone);
  core.constraint_is_sink_kind.assign(constraints.size(), false);
  core.constraint_is_source_kind.assign(constraints.size(), false);
  for (std::size_t c = 0; c < constraints.size(); ++c) {
    const ActorId actor = constraints[c].actor;
    if (core.constraint_of[actor.index()] != kNone) {
      core.diagnostics.push_back("duplicate throughput constraint on actor '" +
                                 graph.actor(actor).name + "'");
      return core;
    }
    core.constraint_of[actor.index()] = c;
    // A buffer-less actor (single-actor graph) counts as a data sink so
    // its cone — itself — still receives the seed.
    core.constraint_is_sink_kind[c] =
        !view.in_buffers[actor.index()].empty() ||
        view.out_buffers[actor.index()].empty();
    core.constraint_is_source_kind[c] =
        !view.out_buffers[actor.index()].empty();
  }
  core.primary_side = core.constraint_is_sink_kind[0] ? ConstraintSide::Sink
                                                      : ConstraintSide::Source;
  core.primary_side_known = true;

  const bool single_end =
      single && (!core.constraint_is_sink_kind[0] ||
                 !core.constraint_is_source_kind[0]);
  if (single_end) {
    // Every unconstrained actor must receive a pacing demand, so the
    // constrained end must be the *only* end of its kind: a second data
    // sink (sink mode) or data source (source mode) would be left unpaced.
    const bool sink_mode = core.constraint_is_sink_kind[0];
    const auto& ends = sink_mode ? view.data_sinks : view.data_sources;
    for (const ActorId end : ends) {
      if (end != constraints[0].actor) {
        std::ostringstream os;
        os << (sink_mode
                   ? "sink-constrained analysis requires a unique data sink; '"
                   : "source-constrained analysis requires a unique data "
                     "source; '")
           << graph.actor(end).name << "' has no "
           << (sink_mode ? "output" : "input") << " buffers either";
        core.diagnostics.push_back(os.str());
        return core;
      }
    }
  }

  if (!partial) {
    // Data-dependent rates are only sound on chain-segment (bridge) edges:
    // a reconvergent region's join drains its sibling branches in
    // lockstep, so a variable realized flow on any internal edge lets the
    // branches' cumulative flows diverge — the surplus branch's buffer
    // then fills without bound and no finite capacity satisfies the
    // constraint for every admissible sequence.
    for (std::size_t pos = 0; pos < view.buffers.size(); ++pos) {
      if (!view.on_reconvergent_path[pos]) {
        continue;
      }
      const Edge& data = graph.edge(view.buffers[pos].data);
      if (!data.production.is_singleton() || !data.consumption.is_singleton()) {
        std::ostringstream os;
        os << "buffer " << graph.actor(data.source).name << " -> "
           << graph.actor(data.target).name
           << ": data-dependent rates (pi=" << data.production
           << ", gamma=" << data.consumption
           << ") on a reconvergent fork-join path; sibling branch flows "
              "could diverge unboundedly, so variable quanta are only "
              "supported on chain-segment edges";
        core.diagnostics.push_back(os.str());
        return core;
      }
    }
  }

  // Sink-anchored region S: actors with a skeleton path into a sink-kind
  // anchor (a constrained data sink, or an interior pin seen from
  // upstream).  Closed under predecessors, so sink-determined edges
  // (consumer in S) live entirely inside it; the complement is closed
  // under successors and paces forward from source-kind anchors
  // (constrained data sources, or an interior pin seen from downstream).
  // The split makes the bidirectional propagation a plain two-pass walk:
  // reverse topological order over S, then forward over the rest — no
  // demand is read before it is final.  Counting the *distinct*
  // constraints per actor (not just membership) also feeds the
  // constraint-coupling rule below; an interior pin counts on BOTH sides
  // (for its downstream it is exactly a pinned source, for its upstream a
  // pinned sink).
  std::vector<std::size_t> sink_count(graph.actor_count(), 0);
  std::vector<std::size_t> src_count(graph.actor_count(), 0);
  const auto walk_cone = [&](std::size_t c, bool sink_kind) {
    std::vector<bool> seen(graph.actor_count(), false);
    std::vector<ActorId> stack{constraints[c].actor};
    seen[constraints[c].actor.index()] = true;
    while (!stack.empty()) {
      const ActorId v = stack.back();
      stack.pop_back();
      (sink_kind ? sink_count : src_count)[v.index()] += 1;
      const auto& ports =
          sink_kind ? view.in_buffers[v.index()] : view.out_buffers[v.index()];
      for (const std::size_t pos : ports) {
        const Edge& data = graph.edge(view.buffers[pos].data);
        const ActorId next = sink_kind ? data.source : data.target;
        if (!seen[next.index()]) {
          seen[next.index()] = true;
          stack.push_back(next);
        }
      }
    }
  };
  for (std::size_t c = 0; c < constraints.size(); ++c) {
    if (core.constraint_is_sink_kind[c]) {
      walk_cone(c, /*sink_kind=*/true);
    }
    if (core.constraint_is_source_kind[c]) {
      walk_cone(c, /*sink_kind=*/false);
    }
  }
  core.sink_anchored.assign(graph.actor_count(), false);
  std::vector<bool> source_reached(graph.actor_count(), false);
  for (const ActorId v : view.actors) {
    core.sink_anchored[v.index()] = sink_count[v.index()] > 0;
    source_reached[v.index()] = src_count[v.index()] > 0;
  }

  // Per-pair rate-determining side: sink-anchored consumers pace upstream;
  // everything else paces downstream from a source-kind constraint.
  core.edge_side.assign(view.buffers.size(), ConstraintSide::Sink);
  core.edge_paced.assign(view.buffers.size(), false);
  for (std::size_t pos = 0; pos < view.buffers.size(); ++pos) {
    const Edge& data = graph.edge(view.buffers[pos].data);
    if (core.sink_anchored[data.target.index()]) {
      core.edge_side[pos] = ConstraintSide::Sink;
      core.edge_paced[pos] = true;
    } else if (source_reached[data.source.index()]) {
      core.edge_side[pos] = ConstraintSide::Source;
      core.edge_paced[pos] = true;
    }
  }
  if (!partial) {
    // Full coverage: every actor must be paced by some constraint.  With
    // one end constraint the uniqueness check above already guarantees
    // this; with an interior pin this is the active guard (an actor that
    // neither reaches the pin nor hangs off it — e.g. a sibling branch
    // bypassing the pin — receives no demand).
    for (const ActorId v : view.actors) {
      if (!core.sink_anchored[v.index()] && !source_reached[v.index()]) {
        std::ostringstream os;
        os << "actor '" << graph.actor(v).name
           << "' receives no pacing demand from any throughput constraint "
              "(it neither reaches a constrained data sink nor is fed by a "
              "constrained data source); pin the graph end it hangs off";
        core.diagnostics.push_back(os.str());
        return core;
      }
    }
    // Per-edge coverage: actor coverage alone is not enough — a skeleton
    // edge can connect a sink-anchored producer to a source-reached
    // consumer (each covered through *other* edges) and then no demand
    // relates their rates across this very buffer, leaving its realized
    // flow unconstrained.  Feedback edges are exempt: both endpoints are
    // skeleton-paced and the back-edge flow-consistency check below pins
    // their rates (static + balanced, so either side gives the same
    // bound rate).
    for (std::size_t pos = 0; pos < view.buffers.size(); ++pos) {
      if (core.edge_paced[pos] || view.is_feedback[pos]) {
        continue;
      }
      const Edge& data = graph.edge(view.buffers[pos].data);
      std::ostringstream os;
      os << "buffer " << graph.actor(data.source).name << " -> "
         << graph.actor(data.target).name
         << " is paced by no throughput constraint (its consumer reaches "
            "no constrained data sink and its producer is fed by no "
            "constrained data source), so no demand relates its endpoints' "
            "rates; pin an end whose pacing covers it";
      core.diagnostics.push_back(os.str());
      return core;
    }
    for (const std::size_t pos : view.feedback_buffers) {
      // Covered but direction-less back-edges size with the consumer as
      // the rate-determining side; flow balance makes the choice
      // immaterial (φ(cons)/γ = φ(prod)/π).
      core.edge_paced[pos] = true;
    }

    // Constraint coupling: with several constraints, variable quanta are
    // only sound on *shared* chain segments — stretches whose flow feeds
    // every coupled constraint through the same buffers.  Anywhere else a
    // data-dependent realized flow can fill a buffer whose back-pressure
    // blocks an actor that another constraint depends on (a fork serving
    // two sinks, or the chain up to a pinned source), and the worst-case
    // sequence then starves that constraint at ANY finite capacity:
    //  * a sink-determined edge must be static when its producer reaches
    //    more constrained sinks than its consumer (the fork's own
    //    out-edges), when some ancestor does (a fill deeper in the branch
    //    back-pressures its way up to the fork), or when a pinned source
    //    lies upstream (the fill would space-starve its periodic grid);
    //  * mirrored for source-determined edges and joins of several
    //    constrained sources.
    // With one constraint every count is 1 on its side and 0 on the
    // other, so no rule fires and the single-constraint behaviour is
    // untouched.
    std::vector<std::size_t> anc_max_sink(graph.actor_count(), 0);
    std::vector<std::size_t> desc_max_src(graph.actor_count(), 0);
    for (const ActorId v : view.actors) {
      std::size_t best = sink_count[v.index()];
      for (const std::size_t pos : view.in_buffers[v.index()]) {
        best = std::max(
            best, anc_max_sink[graph.edge(view.buffers[pos].data).source.index()]);
      }
      anc_max_sink[v.index()] = best;
    }
    for (auto it = view.actors.rbegin(); it != view.actors.rend(); ++it) {
      const ActorId v = *it;
      std::size_t best = src_count[v.index()];
      for (const std::size_t pos : view.out_buffers[v.index()]) {
        best = std::max(
            best, desc_max_src[graph.edge(view.buffers[pos].data).target.index()]);
      }
      desc_max_src[v.index()] = best;
    }
    for (std::size_t pos = 0; pos < view.buffers.size(); ++pos) {
      if (view.is_feedback[pos] || !core.edge_paced[pos]) {
        continue;  // cycle edges are already static (validate_cyclic_model)
      }
      const Edge& data = graph.edge(view.buffers[pos].data);
      if (data.production.is_singleton() && data.consumption.is_singleton()) {
        continue;
      }
      const std::size_t x = data.source.index();
      const std::size_t y = data.target.index();
      const bool coupled =
          core.edge_side[pos] == ConstraintSide::Sink
              ? (sink_count[x] > sink_count[y] ||
                 anc_max_sink[x] > sink_count[x] || src_count[x] > 0)
              : (src_count[y] > src_count[x] ||
                 desc_max_src[y] > src_count[y]);
      if (coupled) {
        std::ostringstream os;
        os << "buffer " << graph.actor(data.source).name << " -> "
           << graph.actor(data.target).name
           << ": data-dependent rates (pi=" << data.production
           << ", gamma=" << data.consumption
           << ") on a constraint-coupled path; a variable realized flow "
              "could back-pressure an actor another throughput constraint "
              "depends on and starve it, so multi-constraint sets only "
              "support variable quanta on shared chain segments";
        core.diagnostics.push_back(os.str());
        return core;
      }
    }
  }

  core.phi.assign(graph.actor_count(), Duration());
  core.paced.assign(graph.actor_count(), false);
  // Per actor: the buffer position its binding demand propagated through
  // (kNone at seeds), for path reconstruction in diagnostics.
  std::vector<std::size_t> binding_pred(graph.actor_count(), kNone);
  for (const ThroughputConstraint& c : constraints) {
    core.phi[c.actor.index()] = c.period;
    core.paced[c.actor.index()] = true;
  }

  // Path from `v` towards the constraint whose demand arrived via buffer
  // `via_pos`, rendered as actor names in propagation-hop order; returns
  // the anchoring constraint index through `anchor`.
  const auto demand_path = [&](ActorId v, std::size_t via_pos,
                               std::size_t& anchor) {
    std::string path = graph.actor(v).name;
    std::size_t pos = via_pos;
    ActorId at = v;
    while (true) {
      const Edge& data = graph.edge(view.buffers[pos].data);
      at = core.sink_anchored[at.index()] ? data.target : data.source;
      path += " -> " + graph.actor(at).name;
      if (core.constraint_of[at.index()] != kNone &&
          binding_pred[at.index()] == kNone) {
        anchor = core.constraint_of[at.index()];
        return path;
      }
      pos = binding_pred[at.index()];
      VRDF_REQUIRE(pos != kNone, "binding chain must end at a constraint");
    }
  };

  // A seeded actor must pace exactly as fast as every demand arriving at
  // it: slower and the demanding constraint starves; faster and tokens
  // pile up on the slower path until the actor blocks on space and misses
  // its own periodic deadline.  Either way no finite capacities help.
  const auto check_seed = [&](ActorId v, const Duration& demand,
                              std::size_t via_pos) {
    const Duration& tau = core.phi[v.index()];
    if (demand == tau) {
      return true;
    }
    std::size_t anchor = kNone;
    const std::string path = demand_path(v, via_pos, anchor);
    const ThroughputConstraint& other = constraints[anchor];
    std::ostringstream os;
    os << "throughput constraint on '" << graph.actor(v).name << "' (period "
       << tau.seconds().to_string() << " s) "
       << (tau > demand ? "exceeds" : "undercuts") << " the pacing phi="
       << demand.seconds().to_string() << " s that the constraint on '"
       << graph.actor(other.actor).name << "' (period "
       << other.period.seconds().to_string() << " s) propagates onto it via "
       << path << "; "
       << (tau > demand
               ? "'" + graph.actor(other.actor).name + "' would starve"
               : "tokens would accumulate without bound — the constraint set "
                 "is not flow-consistent");
    core.diagnostics.push_back(os.str());
    return false;
  };

  // Demands that disagree at an unconstrained actor: the realized flows of
  // the two paths cannot balance (the demand already pairs the producer's
  // minimum quantum with the consumer's maximum), so the slower path's
  // buffer fills at any finite capacity and back-pressure starves the
  // faster constraint.
  const auto demand_conflict = [&](ActorId v, const Duration& phi,
                                   std::size_t phi_pos, const Duration& demand,
                                   std::size_t via_pos) {
    if (single) {
      std::ostringstream os;
      os << "actor '" << graph.actor(v).name
         << "': conflicting pacing demands from its "
         << (core.sink_anchored[v.index()] ? "output" : "input")
         << " buffers (" << phi.seconds().to_string() << " s vs "
         << demand.seconds().to_string()
         << " s); the reconvergent branches impose inconsistent rates and "
            "no finite capacity can satisfy the constraint";
      core.diagnostics.push_back(os.str());
      return;
    }
    std::size_t anchor_a = kNone;
    std::size_t anchor_b = kNone;
    const std::string path_a = demand_path(v, phi_pos, anchor_a);
    const std::string path_b = demand_path(v, via_pos, anchor_b);
    std::ostringstream os;
    os << "actor '" << graph.actor(v).name << "': conflicting pacing demands ("
       << phi.seconds().to_string() << " s via the constraint on '"
       << graph.actor(constraints[anchor_a].actor).name << "' along "
       << path_a << " vs " << demand.seconds().to_string()
       << " s via the constraint on '"
       << graph.actor(constraints[anchor_b].actor).name << "' along "
       << path_b
       << "); the constraint set is not flow-consistent and no finite "
          "capacities can satisfy it";
    core.diagnostics.push_back(os.str());
  };

  // Pass A — sink-anchored region, reverse topological order: every
  // consumer's φ is final before its producers.
  for (auto it = view.actors.rbegin(); it != view.actors.rend(); ++it) {
    const ActorId v = *it;
    if (!core.sink_anchored[v.index()]) {
      continue;
    }
    const bool seeded = core.constraint_of[v.index()] != kNone;
    Duration phi;
    std::size_t phi_pos = kNone;
    for (const std::size_t pos : view.out_buffers[v.index()]) {
      if (!core.edge_paced[pos] ||
          core.edge_side[pos] != ConstraintSide::Sink) {
        continue;
      }
      const Edge& data = graph.edge(view.buffers[pos].data);
      const std::int64_t gamma_max = data.consumption.max();
      const std::int64_t pi_min = data.production.min();
      if (pi_min == 0) {
        std::ostringstream os;
        os << "buffer " << graph.actor(data.source).name << " -> "
           << graph.actor(data.target).name
           << ": minimum production quantum is zero; the producer cannot "
              "sustain the consumer's maximum rate (sink-constrained "
           << shape << " only tolerate zero *consumption* quanta)";
        core.diagnostics.push_back(os.str());
        return core;
      }
      // Demand of e_xy: φ(v_x) ≤ (φ(v_y)/γ̂(e_xy)) · π̌(e_xy).
      const Duration demand =
          core.phi[data.target.index()] * Rational(pi_min, gamma_max);
      if (seeded) {
        if (!check_seed(v, demand, pos)) {
          return core;
        }
      } else if (!phi.is_positive()) {
        // The per-actor minimum over all demands degenerates to the
        // unique common value: flow consistency rejects any demand that
        // differs, so the first demand *is* the minimum.
        phi = demand;
        phi_pos = pos;
      } else if (demand != phi) {
        demand_conflict(v, phi, phi_pos, demand, pos);
        return core;
      }
    }
    if (!seeded) {
      VRDF_REQUIRE(phi.is_positive(), "unpaced actor in sink propagation");
      core.phi[v.index()] = phi;
      core.paced[v.index()] = true;
      binding_pred[v.index()] = phi_pos;
    }
  }

  // Pass B — the rest of the graph, forward topological order: every
  // producer's φ is final before its consumers.
  for (const ActorId v : view.actors) {
    if (core.sink_anchored[v.index()]) {
      continue;
    }
    if (partial && !source_reached[v.index()]) {
      continue;  // outside the subset's demand cone
    }
    const bool seeded = core.constraint_of[v.index()] != kNone;
    Duration phi;
    std::size_t phi_pos = kNone;
    for (const std::size_t pos : view.in_buffers[v.index()]) {
      if (!core.edge_paced[pos] ||
          core.edge_side[pos] != ConstraintSide::Source) {
        continue;
      }
      const Edge& data = graph.edge(view.buffers[pos].data);
      const std::int64_t pi_max = data.production.max();
      const std::int64_t gamma_min = data.consumption.min();
      if (gamma_min == 0) {
        std::ostringstream os;
        os << "buffer " << graph.actor(data.source).name << " -> "
           << graph.actor(data.target).name
           << ": minimum consumption quantum is zero; the consumer cannot "
              "keep up with the source's maximum rate (source-constrained "
           << shape << " only tolerate zero *production* quanta)";
        core.diagnostics.push_back(os.str());
        return core;
      }
      // Demand of e_xy: φ(v_y) ≤ (φ(v_x)/π̂(e_xy)) · γ̌(e_xy).
      const Duration demand =
          core.phi[data.source.index()] * Rational(gamma_min, pi_max);
      if (seeded) {
        if (!check_seed(v, demand, pos)) {
          return core;
        }
      } else if (!phi.is_positive()) {
        // See the sink pass: flow consistency makes the first demand the
        // per-actor minimum.
        phi = demand;
        phi_pos = pos;
      } else if (demand != phi) {
        demand_conflict(v, phi, phi_pos, demand, pos);
        return core;
      }
    }
    if (!seeded) {
      VRDF_REQUIRE(phi.is_positive(), "unpaced actor in source propagation");
      core.phi[v.index()] = phi;
      core.paced[v.index()] = true;
      binding_pred[v.index()] = phi_pos;
    }
  }

  // Back-edge flow consistency: a tokened back-edge adds no propagation
  // demand (both endpoints are paced through the skeleton), but the
  // circulating flow around its cycle must balance: tokens produced per
  // second (π/φ(producer)) must equal tokens consumed per second
  // (γ/φ(consumer)).  Rates on cycle edges are static (validated), so an
  // imbalance is a modeling error no capacity can absorb.
  for (const std::size_t pos : view.feedback_buffers) {
    const Edge& data = graph.edge(view.buffers[pos].data);
    if (partial && (!core.paced[data.source.index()] ||
                    !core.paced[data.target.index()])) {
      continue;
    }
    const Duration produced_side =
        core.phi[data.target.index()] * Rational(data.production.min());
    const Duration consumed_side =
        core.phi[data.source.index()] * Rational(data.consumption.min());
    if (produced_side != consumed_side) {
      std::ostringstream os;
      os << "back-edge " << graph.actor(data.source).name << " -> "
         << graph.actor(data.target).name << ": static rates (pi="
         << data.production << ", gamma=" << data.consumption
         << ") are flow-inconsistent with the propagated pacing ("
         << core.phi[data.source.index()].seconds().to_string() << " s vs "
         << core.phi[data.target.index()].seconds().to_string()
         << " s); the cycle's circulating token count would drift";
      core.diagnostics.push_back(os.str());
      return core;
    }
  }

  core.ok = true;
  return core;
}

/// Constraint-set sanity checks shared by every entry point; the model
/// validation itself lives in TopologySnapshot.
bool validate_constraints(const ConstraintSet& constraints,
                          std::vector<std::string>& diagnostics) {
  if (constraints.empty()) {
    diagnostics.push_back("throughput constraint set must not be empty");
    return false;
  }
  for (const ThroughputConstraint& c : constraints) {
    if (!c.period.is_positive()) {
      diagnostics.push_back("throughput period must be positive");
      return false;
    }
  }
  return true;
}

}  // namespace

PacingResult compute_pacing(const VrdfGraph& graph,
                            const ThroughputConstraint& constraint) {
  return compute_pacing(graph, ConstraintSet{constraint});
}

PacingResult compute_pacing(const VrdfGraph& graph,
                            const ConstraintSet& constraints) {
  return compute_pacing(TopologySnapshot(graph), constraints);
}

PacingResult compute_pacing(const TopologySnapshot& snapshot,
                            const ThroughputConstraint& constraint) {
  return compute_pacing(snapshot, ConstraintSet{constraint});
}

PacingResult compute_pacing(const TopologySnapshot& snapshot,
                            const ConstraintSet& constraints) {
  PacingResult result;
  if (!snapshot.ok()) {
    result.diagnostics = snapshot.diagnostics();
    return result;
  }
  if (!validate_constraints(constraints, result.diagnostics)) {
    return result;
  }
  const VrdfGraph& graph = snapshot.graph();

  // The snapshot already guaranteed a buffer network whose cycles all
  // break at tokened back-edges, so the skeleton is acyclic.
  result.view = snapshot.view_ptr();
  result.is_chain = result.view->is_chain;
  result.is_cyclic = result.view->is_cyclic;
  result.actors_in_order = result.view->actors;
  result.buffers_in_order = result.view->buffers;
  result.constraints = constraints;

  CoreResult core =
      propagate_core(graph, *result.view, constraints, /*partial=*/false);
  for (std::string& d : core.diagnostics) {
    result.diagnostics.push_back(std::move(d));
  }
  if (core.primary_side_known) {
    result.side = core.primary_side;
  }
  result.determined_by = std::move(core.edge_side);
  result.sink_anchored = std::move(core.sink_anchored);
  result.constraint_of_actor = std::move(core.constraint_of);
  result.constraint_is_sink_kind = std::move(core.constraint_is_sink_kind);
  result.constraint_is_source_kind = std::move(core.constraint_is_source_kind);
  if (!core.ok) {
    return result;
  }

  result.pacing_by_actor = std::move(core.phi);
  result.pacing.reserve(result.actors_in_order.size());
  for (const ActorId v : result.actors_in_order) {
    result.pacing.push_back(result.pacing_by_actor[v.index()]);
  }
  result.ok = true;
  return result;
}

PartialPacing compute_partial_pacing(const VrdfGraph& graph,
                                     const ConstraintSet& constraints) {
  return compute_partial_pacing(TopologySnapshot(graph), constraints);
}

PartialPacing compute_partial_pacing(const TopologySnapshot& snapshot,
                                     const ConstraintSet& constraints) {
  PartialPacing partial;
  if (!snapshot.ok()) {
    partial.diagnostics = snapshot.diagnostics();
    return partial;
  }
  if (!validate_constraints(constraints, partial.diagnostics)) {
    return partial;
  }
  const VrdfGraph& graph = snapshot.graph();
  CoreResult core =
      propagate_core(graph, snapshot.view(), constraints, /*partial=*/true);
  for (std::string& d : core.diagnostics) {
    partial.diagnostics.push_back(std::move(d));
  }
  if (!core.ok) {
    return partial;
  }
  partial.phi_by_actor.assign(graph.actor_count(), std::nullopt);
  for (std::size_t i = 0; i < core.paced.size(); ++i) {
    if (core.paced[i]) {
      partial.phi_by_actor[i] = core.phi[i];
    }
  }
  partial.ok = true;
  return partial;
}

}  // namespace vrdf::analysis
