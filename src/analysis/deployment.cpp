#include "analysis/deployment.hpp"

#include <utility>

#include "analysis/buffer_sizing.hpp"
#include "util/error.hpp"

namespace vrdf::analysis {

namespace {

[[nodiscard]] Duration derive_kappa(const sched::ServiceModel& service,
                                    KappaDerivation derivation) {
  if (derivation == KappaDerivation::PolicyExact) {
    return service.response_time();
  }
  return service.as_latency_rate().response_time(service.wcet);
}

[[nodiscard]] ConstraintSet resolve_constraints(
    const taskgraph::TaskGraph& tasks,
    const std::vector<dataflow::ActorId>& actor_of_task,
    const std::vector<DeploymentConstraint>& streams) {
  VRDF_REQUIRE(!streams.empty(),
               "deployment analysis needs at least one stream constraint");
  ConstraintSet constraints;
  constraints.reserve(streams.size());
  for (const DeploymentConstraint& stream : streams) {
    const auto task = tasks.find_task(stream.task);
    VRDF_REQUIRE(task.has_value(), "stream constraint names unknown task '" +
                                       stream.task + "'");
    constraints.push_back(
        ThroughputConstraint{actor_of_task[task->index()], stream.period});
  }
  return constraints;
}

}  // namespace

const char* kappa_derivation_name(KappaDerivation derivation) {
  switch (derivation) {
    case KappaDerivation::PolicyExact: return "policy-exact";
    case KappaDerivation::LatencyRate: return "latency-rate";
  }
  return "unknown";
}

std::vector<DerivedKappa> derive_response_times(
    const taskgraph::TaskGraph& tasks, const sched::Platform& platform,
    KappaDerivation derivation) {
  std::vector<DerivedKappa> out;
  out.reserve(tasks.task_count());
  for (std::size_t i = 0; i < tasks.task_count(); ++i) {
    const taskgraph::TaskId id(
        static_cast<taskgraph::TaskId::underlying_type>(i));
    const std::string& name = tasks.task(id).name;
    VRDF_REQUIRE(platform.is_bound(name),
                 "task '" + name +
                     "' is not bound to any processor; bind every task "
                     "before deployment analysis");
    DerivedKappa derived;
    derived.task = id;
    derived.task_name = name;
    derived.processor = platform.processor_of(name);
    derived.service = platform.service_model(name);
    derived.derivation = derivation;
    derived.kappa = derive_kappa(derived.service, derivation);
    out.push_back(std::move(derived));
  }
  return out;
}

PlatformFact to_platform_fact(const DerivedKappa& derived,
                              dataflow::ActorId actor) {
  const sched::ServiceModel& service = derived.service;
  const bool exact = derived.derivation == KappaDerivation::PolicyExact;
  PlatformFact fact;
  fact.actor = actor;
  fact.wcet = service.wcet;
  fact.kappa = derived.kappa;
  if (service.policy == sched::ArbiterPolicy::Tdm) {
    fact.policy = exact ? ServicePolicy::TdmSlotGranular
                        : ServicePolicy::TdmLatencyRate;
    fact.slot = service.slot;
    fact.wheel = service.wheel;
    fact.ceil_term = exact ? service.ceil_term() : 0;
  } else {
    fact.policy = exact ? ServicePolicy::RoundRobin
                        : ServicePolicy::RoundRobinLatencyRate;
    fact.total_wcet = service.total_wcet;
  }
  return fact;
}

void attach_platform_clause(
    Certificate& cert, const std::vector<DerivedKappa>& kappas,
    const std::vector<dataflow::ActorId>& actor_of_task) {
  cert.platform.clear();
  cert.platform.reserve(kappas.size());
  for (const DerivedKappa& derived : kappas) {
    cert.platform.push_back(
        to_platform_fact(derived, actor_of_task[derived.task.index()]));
  }
}

DeploymentResult analyze_deployment(
    const taskgraph::TaskGraph& tasks, const sched::Platform& platform,
    const std::vector<DeploymentConstraint>& streams,
    const DeploymentOptions& options) {
  DeploymentResult result;
  result.kappas = derive_response_times(tasks, platform, options.derivation);

  std::vector<Duration> response_times;
  response_times.reserve(result.kappas.size());
  for (const DerivedKappa& derived : result.kappas) {
    response_times.push_back(derived.kappa);
  }
  result.construction = tasks.to_vrdf(response_times);
  result.constraints =
      resolve_constraints(tasks, result.construction.actor_of_task, streams);

  result.analysis = compute_buffer_capacities(
      result.construction.graph, result.constraints, options.analysis);
  result.admissible = result.analysis.admissible;
  result.diagnostics = result.analysis.diagnostics;

  if (result.admissible && options.certify) {
    Certificate cert =
        make_certificate(result.construction.graph, result.analysis);
    attach_platform_clause(cert, result.kappas,
                           result.construction.actor_of_task);
    result.certificate_check =
        check_certificate(result.construction.graph, cert);
    result.certificate = std::move(cert);
  }
  return result;
}

// ------------------------------------------------------------ controller

DeploymentController::DeploymentController(
    const taskgraph::TaskGraph& tasks, sched::Platform platform,
    std::vector<DeploymentConstraint> streams, DeploymentOptions options)
    : tasks_(tasks), platform_(std::move(platform)),
      options_(std::move(options)) {
  kappas_ = derive_response_times(tasks_, platform_, options_.derivation);
  std::vector<Duration> response_times;
  response_times.reserve(kappas_.size());
  for (const DerivedKappa& derived : kappas_) {
    response_times.push_back(derived.kappa);
  }
  construction_ = tasks_.to_vrdf(response_times);
  snapshot_ = std::make_unique<TopologySnapshot>(construction_.graph);
  controller_ = std::make_unique<AdmissionController>(
      *snapshot_,
      resolve_constraints(tasks_, construction_.actor_of_task, streams),
      options_.analysis);
}

dataflow::ActorId DeploymentController::actor_of(
    const std::string& task) const {
  const auto id = tasks_.find_task(task);
  VRDF_REQUIRE(id.has_value(), "unknown task '" + task + "'");
  return construction_.actor_of_task[id->index()];
}

Duration DeploymentController::kappa(const std::string& task) const {
  for (const DerivedKappa& derived : kappas_) {
    if (derived.task_name == task) {
      return derived.kappa;
    }
  }
  VRDF_REQUIRE(false, "unknown task '" + task + "'");
  return Duration();  // unreachable
}

Certificate DeploymentController::certificate() const {
  Certificate cert = make_certificate(construction_.graph,
                                      controller_->analysis(),
                                      controller_->engine().overlay());
  attach_platform_clause(cert, kappas_, construction_.actor_of_task);
  return cert;
}

void DeploymentController::set_require_certificate(bool require) {
  require_certificate_ = require;
}

DeploymentDecision DeploymentController::from_inner_(
    const AdmissionDecision& inner) {
  DeploymentDecision out;
  out.accepted = inner.accepted;
  out.binding_constraint = inner.binding_constraint;
  out.diagnostics = inner.diagnostics;
  out.capacity_delta = inner.capacity_delta;
  out.total_capacity = inner.total_capacity;
  return out;
}

std::optional<std::string> DeploymentController::certificate_gate_() {
  if (!require_certificate_) {
    return std::nullopt;
  }
  // The controller's retuned ρ live in the engine overlay, not the graph.
  CheckerOptions checker_options;
  checker_options.bind_parameters_to_graph = false;
  const CertificateCheck check =
      check_certificate(construction_.graph, certificate(), checker_options);
  if (check.ok) {
    return std::nullopt;
  }
  return "certificate: " + check.first_violation();
}

DeploymentDecision DeploymentController::set_slot(const std::string& task,
                                                  Duration slot) {
  VRDF_REQUIRE(slot.is_positive(),
               "slot budget of task '" + task + "' must be positive");
  const sched::ServiceModel before = platform_.service_model(task);
  VRDF_REQUIRE(before.policy == sched::ArbiterPolicy::Tdm,
               "task '" + task +
                   "' runs under round-robin; only TDM slots can be retuned");
  const std::size_t proc = platform_.processor_of(task);
  const Duration old_slot = before.slot;
  const Duration old_kappa = kappa(task);

  // Platform feasibility first: the wheel must hold the new slot.  A
  // shortfall is a *decision*, not an error — the wheel was binding.
  if (platform_.slack(proc) + old_slot < slot) {
    DeploymentDecision out;
    out.wheel_binding = true;
    out.binding_constraint =
        "TDM wheel of processor '" + platform_.processor_name(proc) +
        "': slot " + slot.seconds().to_string() + " s exceeds the " +
        (platform_.slack(proc) + old_slot).seconds().to_string() +
        " s available to task '" + task + "'";
    out.diagnostics.push_back(out.binding_constraint);
    out.total_capacity = analysis().total_capacity;
    return out;
  }

  platform_.set_slot(task, slot);
  const sched::ServiceModel service = platform_.service_model(task);
  const Duration new_kappa = derive_kappa(service, options_.derivation);
  AdmissionDecision inner = controller_->retune(actor_of(task), new_kappa);
  if (!inner.accepted) {
    platform_.set_slot(task, old_slot);
    return from_inner_(inner);
  }
  update_kappa_(task, service, new_kappa);
  if (auto violation = certificate_gate_()) {
    // Roll the accepted retune back (returning to the previously
    // admissible state always succeeds) together with the platform slot.
    (void)controller_->retune(actor_of(task), old_kappa);
    platform_.set_slot(task, old_slot);
    update_kappa_(task, before, old_kappa);
    DeploymentDecision out;
    out.binding_constraint = *violation;
    out.diagnostics.push_back(*violation);
    out.total_capacity = analysis().total_capacity;
    return out;
  }
  return from_inner_(inner);
}

DeploymentDecision DeploymentController::admit(const std::string& task,
                                               Duration period,
                                               std::optional<Duration> slot) {
  const dataflow::ActorId actor = actor_of(task);
  std::optional<Duration> old_slot;
  std::optional<Duration> old_kappa;
  std::optional<sched::ServiceModel> old_service;
  if (slot.has_value()) {
    old_service = platform_.service_model(task);
    old_slot = old_service->slot;
    old_kappa = kappa(task);
    DeploymentDecision granted = set_slot_ungated_(task, *slot);
    if (!granted.accepted) {
      return granted;
    }
  }
  AdmissionDecision inner =
      controller_->admit(ThroughputConstraint{actor, period});
  std::optional<std::string> violation;
  if (inner.accepted) {
    violation = certificate_gate_();
    if (violation.has_value()) {
      (void)controller_->remove(actor);
    }
  }
  if (!inner.accepted || violation.has_value()) {
    if (slot.has_value()) {
      (void)controller_->retune(actor, *old_kappa);
      platform_.set_slot(task, *old_slot);
      update_kappa_(task, *old_service, *old_kappa);
    }
    if (violation.has_value()) {
      DeploymentDecision out;
      out.binding_constraint = *violation;
      out.diagnostics.push_back(*violation);
      out.total_capacity = analysis().total_capacity;
      return out;
    }
    return from_inner_(inner);
  }
  DeploymentDecision out = from_inner_(inner);
  out.total_capacity = analysis().total_capacity;
  return out;
}

DeploymentDecision DeploymentController::remove(const std::string& task) {
  const dataflow::ActorId actor = actor_of(task);
  // Remember the stream's period for the certificate-gate rollback.
  Duration old_period;
  for (const ThroughputConstraint& stream : controller_->streams()) {
    if (stream.actor == actor) {
      old_period = stream.period;
    }
  }
  AdmissionDecision inner = controller_->remove(actor);
  if (inner.accepted) {
    if (auto violation = certificate_gate_()) {
      (void)controller_->admit(ThroughputConstraint{actor, old_period});
      DeploymentDecision out;
      out.binding_constraint = *violation;
      out.diagnostics.push_back(*violation);
      out.total_capacity = analysis().total_capacity;
      return out;
    }
  }
  return from_inner_(inner);
}

DeploymentDecision DeploymentController::set_period(const std::string& task,
                                                    Duration period) {
  const dataflow::ActorId actor = actor_of(task);
  Duration old_period;
  for (const ThroughputConstraint& stream : controller_->streams()) {
    if (stream.actor == actor) {
      old_period = stream.period;
    }
  }
  AdmissionDecision inner = controller_->set_period(actor, period);
  if (inner.accepted) {
    if (auto violation = certificate_gate_()) {
      (void)controller_->set_period(actor, old_period);
      DeploymentDecision out;
      out.binding_constraint = *violation;
      out.diagnostics.push_back(*violation);
      out.total_capacity = analysis().total_capacity;
      return out;
    }
  }
  return from_inner_(inner);
}

void DeploymentController::update_kappa_(const std::string& task,
                                         const sched::ServiceModel& service,
                                         Duration new_kappa) {
  for (DerivedKappa& derived : kappas_) {
    if (derived.task_name == task) {
      derived.service = service;
      derived.kappa = new_kappa;
      return;
    }
  }
}

DeploymentDecision DeploymentController::set_slot_ungated_(
    const std::string& task, Duration slot) {
  const bool gated = require_certificate_;
  require_certificate_ = false;
  DeploymentDecision out = set_slot(task, slot);
  require_certificate_ = gated;
  return out;
}

}  // namespace vrdf::analysis
