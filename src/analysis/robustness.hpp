// Analysis-derived robustness margins — how far the run time may stray
// from the declared model before the installed buffer capacities stop
// being sufficient.
//
// The buffer-sizing theorem is conditional: capacities computed for
// response times ρ(v) are sufficient only while every firing of v
// finishes within ρ(v).  This module turns that condition into
// quantitative slack, against the capacities *installed in the graph*
// (which may exceed the analysed minimum):
//
//  * per-actor margin — the largest extra response time δ such that
//    re-analysing the graph with ρ(v)+δ (all other actors unchanged)
//    still fits the installed capacities.  Any fault plan whose
//    per-firing extra on v stays ≤ margin(v) provably keeps phase-2
//    verification starvation-free — the faulted run is dominated by the
//    self-timed run of the inflated model, which the installed
//    capacities cover (monotonicity, Sec 3.2).
//  * per-buffer headroom — installed capacity minus the analysed
//    requirement, in containers.
//  * joint safe fraction — per-actor margins do NOT compose (each is
//    measured with the others at their declared ρ), so we also report
//    the largest fraction f of its individual slack φ(v) − ρ(v) that
//    *every* actor may consume simultaneously.
//
// Both searches exploit that computed capacities are monotone
// nondecreasing in every ρ(v), so a binary search over a 64-step grid of
// the slack finds the margin exactly to grid resolution.
#pragma once

#include <string>
#include <vector>

#include "analysis/buffer_sizing.hpp"
#include "analysis/types.hpp"
#include "dataflow/vrdf_graph.hpp"

namespace vrdf::analysis {

/// Tolerable response-time overrun of one actor, installed capacities and
/// all other actors' declared ρ held fixed.
struct ActorMargin {
  dataflow::ActorId actor;
  /// Declared worst-case response time ρ(v).
  Duration response_time;
  /// Maximal admissible response time φ(v) (max_admissible_response_times).
  Duration max_response_time;
  /// Largest grid-resolved extra δ with capacities(ρ(v)+δ) ≤ installed.
  /// Zero when the actor has no slack (ρ = φ) or the baseline already
  /// exactly fills the installed capacities.
  Duration margin;
};

/// Installed-vs-required container count of one buffer.
struct BufferHeadroom {
  dataflow::BufferEdges buffer;
  dataflow::ActorId producer;
  dataflow::ActorId consumer;
  /// Analysed capacity requirement at the declared response times.
  std::int64_t required = 0;
  /// Capacity actually installed in the graph.
  std::int64_t installed = 0;
  /// installed − required (never negative when the report is ok).
  std::int64_t headroom = 0;
};

struct RobustnessOptions {
  AnalysisOptions analysis;
  /// Margin search resolution: margins are multiples of slack/grid_steps.
  std::int64_t grid_steps = 64;
};

struct RobustnessReport {
  /// True when the baseline analysis is admissible and the installed
  /// capacities cover it; margins are only meaningful when true.
  bool ok = false;
  std::vector<std::string> diagnostics;
  ConstraintSet constraints;
  /// One entry per actor, in the analysis' topological order.
  std::vector<ActorMargin> actors;
  /// One entry per buffer, in the analysis' pair order.
  std::vector<BufferHeadroom> buffers;
  /// Largest fraction of its individual slack φ(v) − ρ(v) that every
  /// actor may consume at once (grid-resolved, in [0, 1]).
  Rational joint_safe_fraction;
};

/// Computes robustness margins of `graph` (which must already carry the
/// installed capacities, e.g. via apply_capacities — possibly with extra
/// headroom) against `constraints`.  Never throws on model-level
/// infeasibility; inspect ok/diagnostics.
[[nodiscard]] RobustnessReport robustness_margins(
    const dataflow::VrdfGraph& graph, const ConstraintSet& constraints,
    const RobustnessOptions& options = {});

/// Single-constraint convenience overload.
[[nodiscard]] RobustnessReport robustness_margins(
    const dataflow::VrdfGraph& graph, const ThroughputConstraint& constraint,
    const RobustnessOptions& options = {});

}  // namespace vrdf::analysis
