// Minimal deadlock-free buffer capacities (no throughput requirement).
//
// The introduction's Fig 1 discussion is about deadlock-freedom: with
// ξ = {3} the minimum capacity is 3 when λ ≡ 3 but 4 when λ ≡ 2.  For a
// single producer-consumer pair with *constant* quanta p and c the
// classical minimum capacity for unbounded progress is
//     p + c − gcd(p, c),
// (Sriram & Bhattacharyya): the producer must fit one production while
// the consumer may be holding back up to c − gcd tokens it cannot yet
// use.  With data-dependent quanta every value combination can persist
// indefinitely, so the sufficient-and-necessary capacity is the maximum
// of the formula over all positive quantum pairs; zero quanta never block
// (a zero-consumption firing is always enabled on that edge, a
// zero-production firing needs no space).
//
// For *data-dependent* quanta the worst case is NOT a constant sequence:
// with ξ = {3}, λ = {2,3} and capacity 4 the mixed sequence 2,3,2 parks
// the buffer at (data 2, space 2) where a pending quantum 3 on each side
// deadlocks — even though both constant sequences survive at 4.  The
// sound generalization is
//     π̂ + γ̂ − g,   g = gcd of every positive quantum of both sets:
// every transfer is a multiple of g, so the data level is always a
// multiple of g; if data < γ_next ≤ γ̂ then data ≤ γ̂ − g and
// space = d − data ≥ π̂, so the producer can always advance.  (For
// singleton sets this degenerates to the classical formula.)
//
// This capacity guarantees progress only — satisfying a throughput
// constraint generally needs more (see compute_buffer_capacities and the
// E1 bench, where the throughput minimum is 6 versus the deadlock-free
// constant-sequence minima 3 and 4).
#pragma once

#include <cstdint>

#include "dataflow/rate_set.hpp"
#include "dataflow/vrdf_graph.hpp"

namespace vrdf::analysis {

/// p + c − gcd(p, c): minimal deadlock-free capacity for *constant*
/// positive quanta (the per-sequence minima of the Fig 1 discussion:
/// 3 for n ≡ 3, 4 for n ≡ 2).
[[nodiscard]] std::int64_t min_deadlock_free_capacity(std::int64_t production,
                                                      std::int64_t consumption);

/// π̂ + γ̂ − gcd(all positive quanta of both sets): the smallest capacity
/// that is deadlock-free for *every* admissible quantum sequence (sound by
/// the argument above; matched by adversarial simulation search in the
/// tests).
[[nodiscard]] std::int64_t min_deadlock_free_pair_capacity(
    const dataflow::RateSet& production, const dataflow::RateSet& consumption);

/// The per-buffer minima for a whole graph (acyclic or cyclic with
/// tokened back-edges), ordered like GraphAnalysis::pairs
/// (producer-topological order; chain order on chains).  On a DAG the
/// per-pair formula is the whole story — deadlock is a pair-local
/// phenomenon there.  With cycles, deadlock becomes reachable through the
/// loop itself: a back-edge's capacity must hold its δ circulating tokens
/// *in addition to* the pair slack (a capacity that pinches the loop's
/// tokens strangles the cycle), so feedback buffers report
/// δ + π̂ + γ̂ − g.  Whether δ itself is large enough for the cycle to
/// complete an iteration is a model property this function cannot repair;
/// validate_cyclic_model rejects the always-dead case δ = 0 and the
/// simulation harness detects insufficient δ as a phase-1 deadlock.
/// Throws ModelError when the graph is not a consistent network of
/// buffers (token-free cycles included).
[[nodiscard]] std::vector<std::int64_t> min_deadlock_free_capacities(
    const dataflow::VrdfGraph& graph);

/// Sum of min_deadlock_free_capacities over every buffer — the graph-wide
/// container floor no sizing may dip under.  The deadlock minima are
/// throughput-constraint-independent, so the floor applies unchanged to
/// multi-constraint sizings; the analysis report prints it as a sanity
/// anchor next to the computed totals.
[[nodiscard]] std::int64_t min_deadlock_free_total(
    const dataflow::VrdfGraph& graph);

/// The per-buffer minima for a whole chain, in chain order.  Throws
/// ModelError when the graph is not a chain of buffers.
[[nodiscard]] std::vector<std::int64_t> min_deadlock_free_chain_capacities(
    const dataflow::VrdfGraph& graph);

}  // namespace vrdf::analysis
