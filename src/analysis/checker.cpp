// Independence contract: this file validates certificates from the graph
// structure and the certificate's own witnesses alone.  It must not
// include analyzer internals — analysis/pacing.hpp,
// analysis/buffer_sizing.hpp, analysis/sizing_core.hpp,
// analysis/incremental.hpp, analysis/period.hpp — a rule
// tools/lint_determinism.py enforces on every run.  Topological-order
// verification, anchor reachability, bridge finding and the coupling
// scan below are deliberate re-implementations.
#include "analysis/checker.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/checked_int.hpp"
#include "util/error.hpp"
#include "util/rational.hpp"
#include "util/time.hpp"

namespace vrdf::analysis {

namespace {

using dataflow::ActorId;
using dataflow::Edge;
using dataflow::VrdfGraph;

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

[[nodiscard]] std::string dur(const Duration& d) {
  return d.seconds().to_string() + " s";
}

[[nodiscard]] std::string num(std::int64_t v) { return std::to_string(v); }

/// Undirected bridges of the data multigraph: edge p (by pair position)
/// connects its endpoints; parallel edges and self-loops are never
/// bridges.  Iterative low-link DFS — no recursion, so deep chains are
/// safe.
[[nodiscard]] std::vector<char> undirected_data_bridges(
    std::size_t actor_count, const std::vector<PairFact>& pairs) {
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> adj(
      actor_count);  // actor -> (neighbor, pair position)
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    const std::size_t a = pairs[p].producer.index();
    const std::size_t b = pairs[p].consumer.index();
    adj[a].emplace_back(b, p);
    adj[b].emplace_back(a, p);
  }
  std::vector<char> bridge(pairs.size(), 0);
  std::vector<std::size_t> disc(actor_count, kNone);
  std::vector<std::size_t> low(actor_count, 0);
  std::size_t timer = 0;
  struct Frame {
    std::size_t v;
    std::size_t via;  // pair position of the entering edge (kNone at roots)
    std::size_t next;
  };
  std::vector<Frame> stack;
  for (std::size_t root = 0; root < actor_count; ++root) {
    if (disc[root] != kNone) {
      continue;
    }
    disc[root] = low[root] = timer++;
    stack.push_back({root, kNone, 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next < adj[frame.v].size()) {
        const auto [to, via] = adj[frame.v][frame.next++];
        if (via == frame.via) {
          continue;  // the reverse traversal of the entering edge
        }
        if (disc[to] == kNone) {
          disc[to] = low[to] = timer++;
          stack.push_back({to, via, 0});
        } else {
          low[frame.v] = std::min(low[frame.v], disc[to]);
        }
      } else {
        const Frame done = frame;
        stack.pop_back();
        if (done.via != kNone) {
          Frame& parent = stack.back();
          low[parent.v] = std::min(low[parent.v], low[done.v]);
          if (low[done.v] > disc[parent.v]) {
            bridge[done.via] = 1;
          }
        }
      }
    }
  }
  return bridge;
}

/// One full validation run; holds the derived structure between phases.
class Checker {
 public:
  Checker(const VrdfGraph& graph, const Certificate& cert,
          const CheckerOptions& options)
      : graph_(graph), cert_(cert), options_(options) {}

  CertificateCheck run() {
    try {
      if (check_structure_()) {
        derive_coverage_();
        check_parameters_();
        check_platform_();
        check_phi_();
        check_omega_();
        check_pairs_();
      }
    } catch (const Error& error) {
      // Exact arithmetic on a hostile certificate can overflow; a
      // certificate whose numbers do that is invalid, not a crash.
      expect_(false, ClauseKind::Coverage, "certificate", "", "",
              std::string("arithmetic failure while checking: ") +
                  error.what());
    }
    out_.ok = out_.violations.empty();
    return std::move(out_);
  }

 private:
  bool expect_(bool condition, ClauseKind kind, std::string subject,
               std::string lhs, std::string rhs, std::string message) {
    ++out_.clauses_checked;
    if (!condition) {
      out_.violations.push_back({kind, std::move(subject), std::move(lhs),
                                 std::move(rhs), std::move(message)});
    }
    return condition;
  }

  [[nodiscard]] std::string actor_subject_(ActorId v) const {
    return "actor '" + graph_.actor(v).name + "'";
  }

  [[nodiscard]] std::string pair_subject_(const PairFact& fact) const {
    return "buffer '" + graph_.actor(fact.producer).name + " -> " +
           graph_.actor(fact.consumer).name + "'";
  }

  [[nodiscard]] const ActorFact& fact_(ActorId v) const {
    return cert_.actors[fact_of_[v.index()]];
  }

  // ---------------------------------------------------------- structure

  /// Bijections, index ranges and the recorded topological order.  A
  /// failure here is fatal for the later phases (their lookups would be
  /// meaningless), so the caller stops on false.
  bool check_structure_() {
    const std::size_t n = graph_.actor_count();
    if (!expect_(cert_.actors.size() == n, ClauseKind::Coverage, "certificate",
                 num(static_cast<std::int64_t>(cert_.actors.size())),
                 num(static_cast<std::int64_t>(n)),
                 "certificate must carry exactly one fact per actor")) {
      return false;
    }
    fact_of_.assign(n, kNone);
    for (std::size_t i = 0; i < cert_.actors.size(); ++i) {
      const std::size_t idx = cert_.actors[i].actor.index();
      if (!expect_(idx < n, ClauseKind::Coverage, "certificate",
                   num(static_cast<std::int64_t>(idx)),
                   num(static_cast<std::int64_t>(n)),
                   "actor fact references an actor outside the graph")) {
        return false;
      }
      if (!expect_(fact_of_[idx] == kNone, ClauseKind::Coverage,
                   actor_subject_(cert_.actors[i].actor), "", "",
                   "duplicate actor fact")) {
        return false;
      }
      fact_of_[idx] = i;
    }

    if (!expect_(!cert_.constraints.empty(), ClauseKind::Coverage,
                 "certificate", "0", ">= 1",
                 "certificate must carry at least one throughput "
                 "constraint")) {
      return false;
    }
    if (!expect_(cert_.constraint_is_sink_kind.size() ==
                         cert_.constraints.size() &&
                     cert_.constraint_is_source_kind.size() ==
                         cert_.constraints.size(),
                 ClauseKind::Coverage, "certificate",
                 num(static_cast<std::int64_t>(
                     cert_.constraint_is_sink_kind.size())),
                 num(static_cast<std::int64_t>(cert_.constraints.size())),
                 "anchor-kind vectors must match the constraint count")) {
      return false;
    }
    constraint_of_.assign(n, kNone);
    for (std::size_t c = 0; c < cert_.constraints.size(); ++c) {
      const ActorId actor = cert_.constraints[c].actor;
      if (!expect_(actor.index() < n, ClauseKind::Coverage, "certificate",
                   num(static_cast<std::int64_t>(actor.index())),
                   num(static_cast<std::int64_t>(n)),
                   "constraint references an actor outside the graph")) {
        return false;
      }
      if (!expect_(constraint_of_[actor.index()] == kNone,
                   ClauseKind::Coverage, actor_subject_(actor), "", "",
                   "duplicate throughput constraint on one actor")) {
        return false;
      }
      constraint_of_[actor.index()] = c;
      expect_(cert_.constraints[c].period.is_positive(), ClauseKind::Phi,
              actor_subject_(actor), dur(cert_.constraints[c].period),
              "> 0 s", "throughput period must be positive");
    }

    const std::vector<dataflow::BufferEdges> buffers = graph_.buffers();
    if (!expect_(cert_.pairs.size() == buffers.size(), ClauseKind::Coverage,
                 "certificate",
                 num(static_cast<std::int64_t>(cert_.pairs.size())),
                 num(static_cast<std::int64_t>(buffers.size())),
                 "certificate must carry exactly one fact per buffer")) {
      return false;
    }
    std::vector<std::size_t> pair_at_data(graph_.edge_count(), kNone);
    for (std::size_t p = 0; p < cert_.pairs.size(); ++p) {
      const PairFact& fact = cert_.pairs[p];
      if (!expect_(fact.buffer.data.index() < graph_.edge_count(),
                   ClauseKind::Coverage, "certificate",
                   num(static_cast<std::int64_t>(fact.buffer.data.index())),
                   num(static_cast<std::int64_t>(graph_.edge_count())),
                   "pair fact references an edge outside the graph")) {
        return false;
      }
      const Edge& data = graph_.edge(fact.buffer.data);
      if (!expect_(data.source == fact.producer && data.target == fact.consumer,
                   ClauseKind::Coverage, pair_subject_(fact), "", "",
                   "pair fact endpoints do not match the recorded data "
                   "edge")) {
        return false;
      }
      if (!expect_(pair_at_data[fact.buffer.data.index()] == kNone,
                   ClauseKind::Coverage, pair_subject_(fact), "", "",
                   "duplicate pair fact for one data edge")) {
        return false;
      }
      pair_at_data[fact.buffer.data.index()] = p;
    }
    for (const dataflow::BufferEdges& buffer : buffers) {
      const std::size_t p = pair_at_data[buffer.data.index()];
      if (!expect_(p != kNone, ClauseKind::Coverage, "certificate", "", "",
                   "buffer " + graph_.actor(graph_.edge(buffer.data).source)
                           .name + " -> " +
                       graph_.actor(graph_.edge(buffer.data).target).name +
                       " has no pair fact")) {
        return false;
      }
      expect_(cert_.pairs[p].buffer.space == buffer.space,
              ClauseKind::Coverage, pair_subject_(cert_.pairs[p]), "", "",
              "pair fact records a different space edge than the graph's "
              "buffer pairing");
    }

    // Static claims are structural: all rate sets singletons.
    for (const PairFact& fact : cert_.pairs) {
      const Edge& data = graph_.edge(fact.buffer.data);
      const bool is_static =
          data.production.is_singleton() && data.consumption.is_singleton();
      expect_(fact.is_static == is_static, ClauseKind::Coverage,
              pair_subject_(fact), fact.is_static ? "static" : "variable",
              is_static ? "static" : "variable",
              "recorded staticness does not match the edge's rate sets "
              "(pi=" + data.production.to_string() +
                  ", gamma=" + data.consumption.to_string() + ")");
    }

    // Skeleton adjacency and the recorded topological order.  Every
    // skeleton (non-feedback) data edge must go forward in the recorded
    // actor order — which simultaneously proves the skeleton acyclic.
    order_pos_.assign(n, kNone);
    for (std::size_t i = 0; i < cert_.actors.size(); ++i) {
      order_pos_[cert_.actors[i].actor.index()] = i;
    }
    in_pairs_.assign(n, {});
    out_pairs_.assign(n, {});
    bool order_ok = true;
    for (std::size_t p = 0; p < cert_.pairs.size(); ++p) {
      const PairFact& fact = cert_.pairs[p];
      if (fact.is_feedback) {
        continue;
      }
      out_pairs_[fact.producer.index()].push_back(p);
      in_pairs_[fact.consumer.index()].push_back(p);
      order_ok &= expect_(
          order_pos_[fact.producer.index()] < order_pos_[fact.consumer.index()],
          ClauseKind::Coverage, pair_subject_(fact),
          num(static_cast<std::int64_t>(order_pos_[fact.producer.index()])),
          num(static_cast<std::int64_t>(order_pos_[fact.consumer.index()])),
          "skeleton data edge goes backward in the recorded topological "
          "order (the claimed skeleton is not acyclic in this order)");
    }
    if (!order_ok) {
      return false;  // the coupling DP below needs a valid order
    }

    // Feedback classification: a claimed back-edge must actually lie on
    // a directed cycle of the data edges and must carry a circulating
    // token (a token-free cycle deadlocks at t=0).
    std::vector<std::vector<std::size_t>> out_all(n);
    for (const PairFact& fact : cert_.pairs) {
      out_all[fact.producer.index()].push_back(fact.consumer.index());
    }
    for (const PairFact& fact : cert_.pairs) {
      if (!fact.is_feedback) {
        continue;
      }
      std::vector<char> seen(n, 0);
      std::vector<std::size_t> stack{fact.consumer.index()};
      seen[fact.consumer.index()] = 1;
      bool reaches = false;
      while (!stack.empty() && !reaches) {
        const std::size_t v = stack.back();
        stack.pop_back();
        for (const std::size_t next : out_all[v]) {
          if (next == fact.producer.index()) {
            reaches = true;
            break;
          }
          if (!seen[next]) {
            seen[next] = 1;
            stack.push_back(next);
          }
        }
      }
      expect_(reaches || fact.producer == fact.consumer, ClauseKind::Coverage,
              pair_subject_(fact), "", "",
              "pair is recorded as a feedback back-edge but lies on no "
              "directed cycle of the data edges");
      expect_(fact.initial_tokens >= 1, ClauseKind::Coverage,
              pair_subject_(fact), num(fact.initial_tokens), ">= 1",
              "a feedback back-edge must carry at least one circulating "
              "initial token");
    }
    return true;
  }

  // ----------------------------------------------------------- coverage

  /// Anchor kinds, per-constraint demand cones, per-edge pacing sides,
  /// variable-rate placement and the constraint-coupling rule.  Derived
  /// values are kept for the φ/ω/ζ phases (recorded claims are checked
  /// against them, then the derived values are used onward so one
  /// mutation yields one precise violation, not a cascade).
  void derive_coverage_() {
    const std::size_t n = graph_.actor_count();

    sink_kind_.assign(cert_.constraints.size(), false);
    source_kind_.assign(cert_.constraints.size(), false);
    for (std::size_t c = 0; c < cert_.constraints.size(); ++c) {
      const std::size_t idx = cert_.constraints[c].actor.index();
      // A buffer-less actor counts as a data sink (its cone is itself).
      sink_kind_[c] = !in_pairs_[idx].empty() || out_pairs_[idx].empty();
      source_kind_[c] = !out_pairs_[idx].empty();
      expect_(cert_.constraint_is_sink_kind[c] == sink_kind_[c],
              ClauseKind::Coverage,
              actor_subject_(cert_.constraints[c].actor),
              cert_.constraint_is_sink_kind[c] ? "sink-kind" : "not sink-kind",
              sink_kind_[c] ? "sink-kind" : "not sink-kind",
              "recorded anchor kind does not match the skeleton structure");
      expect_(cert_.constraint_is_source_kind[c] == source_kind_[c],
              ClauseKind::Coverage,
              actor_subject_(cert_.constraints[c].actor),
              cert_.constraint_is_source_kind[c] ? "source-kind"
                                                 : "not source-kind",
              source_kind_[c] ? "source-kind" : "not source-kind",
              "recorded anchor kind does not match the skeleton structure");
    }

    // Per-constraint demand cones over the skeleton: upstream of every
    // sink-kind anchor, downstream of every source-kind anchor.  The
    // *counts* (distinct constraints per actor and side) feed the
    // coupling rule below.
    sink_count_.assign(n, 0);
    src_count_.assign(n, 0);
    for (std::size_t c = 0; c < cert_.constraints.size(); ++c) {
      for (const bool sink : {true, false}) {
        if (sink ? !sink_kind_[c] : !source_kind_[c]) {
          continue;
        }
        std::vector<char> seen(n, 0);
        std::vector<std::size_t> stack{cert_.constraints[c].actor.index()};
        seen[cert_.constraints[c].actor.index()] = 1;
        while (!stack.empty()) {
          const std::size_t v = stack.back();
          stack.pop_back();
          (sink ? sink_count_ : src_count_)[v] += 1;
          for (const std::size_t p : sink ? in_pairs_[v] : out_pairs_[v]) {
            const std::size_t next = sink ? cert_.pairs[p].producer.index()
                                          : cert_.pairs[p].consumer.index();
            if (!seen[next]) {
              seen[next] = 1;
              stack.push_back(next);
            }
          }
        }
      }
    }
    sink_anchored_.assign(n, 0);
    source_reached_.assign(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      sink_anchored_[v] = sink_count_[v] > 0 ? 1 : 0;
      source_reached_[v] = src_count_[v] > 0 ? 1 : 0;
    }

    // Actor coverage: every actor must receive a pacing demand.
    for (const ActorFact& fact : cert_.actors) {
      const std::size_t v = fact.actor.index();
      expect_(sink_anchored_[v] || source_reached_[v], ClauseKind::Coverage,
              actor_subject_(fact.actor), "", "",
              "actor receives no pacing demand from any throughput "
              "constraint (it neither reaches a sink-kind anchor nor hangs "
              "off a source-kind anchor)");
    }

    // Per-edge pacing side, exactly the analyzer's assignment rule:
    // sink-anchored consumers pace upstream, else source-reached
    // producers pace downstream; back-edges default to the consumer side.
    side_.assign(cert_.pairs.size(), ConstraintSide::Sink);
    for (std::size_t p = 0; p < cert_.pairs.size(); ++p) {
      const PairFact& fact = cert_.pairs[p];
      ConstraintSide expected = ConstraintSide::Sink;
      if (sink_anchored_[fact.consumer.index()]) {
        expected = ConstraintSide::Sink;
      } else if (source_reached_[fact.producer.index()]) {
        expected = ConstraintSide::Source;
      } else if (!fact.is_feedback) {
        expect_(false, ClauseKind::Coverage, pair_subject_(fact), "", "",
                "skeleton edge is paced by no throughput constraint (its "
                "consumer reaches no sink-kind anchor and its producer "
                "hangs off no source-kind anchor)");
        side_[p] = fact.side;  // keep the later phases deterministic
        continue;
      }
      side_[p] = expected;
      expect_(fact.side == expected, ClauseKind::Coverage, pair_subject_(fact),
              fact.side == ConstraintSide::Sink ? "Sink" : "Source",
              expected == ConstraintSide::Sink ? "Sink" : "Source",
              "recorded rate-determining side does not match the anchor "
              "reachability of the edge's endpoints");
    }

    // Variable-rate placement: data-dependent rates are only sound on
    // undirected-bridge (chain-segment) data edges — anywhere on an
    // undirected cycle (a reconvergent fork-join region or a directed
    // feedback cycle), sibling flows could diverge unboundedly.
    const std::vector<char> bridge =
        undirected_data_bridges(n, cert_.pairs);
    for (std::size_t p = 0; p < cert_.pairs.size(); ++p) {
      const PairFact& fact = cert_.pairs[p];
      const Edge& data = graph_.edge(fact.buffer.data);
      const bool is_static =
          data.production.is_singleton() && data.consumption.is_singleton();
      if (is_static) {
        continue;
      }
      expect_(bridge[p] != 0, ClauseKind::Coverage, pair_subject_(fact), "",
              "",
              "data-dependent rates (pi=" + data.production.to_string() +
                  ", gamma=" + data.consumption.to_string() +
                  ") off a chain-segment (bridge) edge; sibling branch "
                  "flows could diverge unboundedly");
    }

    // Constraint coupling: variable quanta must stay on *shared* chain
    // segments.  anc_max_sink = the largest sink-cone count among an
    // actor's skeleton ancestors (itself included); desc_max_src
    // mirrored for descendants and source cones.
    std::vector<std::size_t> anc_max_sink(n, 0);
    std::vector<std::size_t> desc_max_src(n, 0);
    for (const ActorFact& fact : cert_.actors) {
      const std::size_t v = fact.actor.index();
      std::size_t best = sink_count_[v];
      for (const std::size_t p : in_pairs_[v]) {
        best = std::max(best, anc_max_sink[cert_.pairs[p].producer.index()]);
      }
      anc_max_sink[v] = best;
    }
    for (auto it = cert_.actors.rbegin(); it != cert_.actors.rend(); ++it) {
      const std::size_t v = it->actor.index();
      std::size_t best = src_count_[v];
      for (const std::size_t p : out_pairs_[v]) {
        best = std::max(best, desc_max_src[cert_.pairs[p].consumer.index()]);
      }
      desc_max_src[v] = best;
    }
    for (std::size_t p = 0; p < cert_.pairs.size(); ++p) {
      const PairFact& fact = cert_.pairs[p];
      if (fact.is_feedback) {
        continue;
      }
      const Edge& data = graph_.edge(fact.buffer.data);
      if (data.production.is_singleton() && data.consumption.is_singleton()) {
        continue;
      }
      const std::size_t x = fact.producer.index();
      const std::size_t y = fact.consumer.index();
      const bool coupled =
          side_[p] == ConstraintSide::Sink
              ? (sink_count_[x] > sink_count_[y] ||
                 anc_max_sink[x] > sink_count_[x] || src_count_[x] > 0)
              : (src_count_[y] > src_count_[x] ||
                 desc_max_src[y] > src_count_[y]);
      expect_(!coupled, ClauseKind::Coverage, pair_subject_(fact), "", "",
              "data-dependent rates on a constraint-coupled path; a "
              "variable realized flow could back-pressure an actor another "
              "constraint depends on and starve it");
    }
  }

  // --------------------------------------------------------- parameters

  /// Binding of the recorded ρ/δ to the graph's own values (plain
  /// analyses only — the incremental engine's parameters live in its
  /// overlay and are validated against the recorded facts instead).
  void check_parameters_() {
    if (!options_.bind_parameters_to_graph) {
      return;
    }
    for (const ActorFact& fact : cert_.actors) {
      expect_(fact.rho == graph_.actor(fact.actor).response_time,
              ClauseKind::Coverage, actor_subject_(fact.actor),
              dur(fact.rho), dur(graph_.actor(fact.actor).response_time),
              "recorded response time does not match the graph's rho");
    }
    for (const PairFact& fact : cert_.pairs) {
      expect_(fact.initial_tokens ==
                  graph_.edge(fact.buffer.data).initial_tokens,
              ClauseKind::Coverage, pair_subject_(fact),
              num(fact.initial_tokens),
              num(graph_.edge(fact.buffer.data).initial_tokens),
              "recorded initial tokens do not match the graph's delta");
    }
  }

  // ------------------------------------------------------------------ κ

  /// Platform clause of deployed analyses: re-derives each recorded κ
  /// from the arbiter terms alone (no sched includes — the clause is
  /// self-contained) and links it to the ρ the capacity clauses used.
  /// Vacuously valid for undeployed certificates (no platform facts).
  void check_platform_() {
    std::vector<char> seen(graph_.actor_count(), 0);
    for (const PlatformFact& fact : cert_.platform) {
      if (!expect_(fact.actor.index() < graph_.actor_count(),
                   ClauseKind::Kappa, "certificate", "", "",
                   "platform fact references an actor outside the graph")) {
        continue;
      }
      const std::string subject = actor_subject_(fact.actor);
      if (!expect_(seen[fact.actor.index()] == 0, ClauseKind::Kappa, subject,
                   "", "", "duplicate platform fact for one actor")) {
        continue;
      }
      seen[fact.actor.index()] = 1;
      if (!expect_(fact.wcet.is_positive(), ClauseKind::Kappa, subject,
                   dur(fact.wcet), "> 0 s",
                   "platform WCET must be positive")) {
        continue;
      }
      const bool tdm = fact.policy == ServicePolicy::TdmSlotGranular ||
                       fact.policy == ServicePolicy::TdmLatencyRate;
      Duration kappa;
      if (tdm) {
        if (!expect_(fact.slot.is_positive() && fact.slot <= fact.wheel,
                     ClauseKind::Kappa, subject, dur(fact.slot),
                     dur(fact.wheel),
                     "TDM slot must be positive and no larger than the "
                     "wheel period")) {
          continue;
        }
        if (fact.policy == ServicePolicy::TdmSlotGranular) {
          // ⌈C/slot⌉ witness: ceil_term − 1 < C/slot ≤ ceil_term, checked
          // as pure inequalities so the checker needs no ceiling code.
          const Rational chunks = fact.wcet.seconds() / fact.slot.seconds();
          const bool witness = Rational(fact.ceil_term) >= chunks &&
                               Rational(fact.ceil_term) - Rational(1) < chunks;
          if (!expect_(witness, ClauseKind::Kappa, subject,
                       num(fact.ceil_term), chunks.to_string(),
                       "ceil term is not the ceiling of WCET/slot")) {
            continue;
          }
          kappa = (fact.wheel - fact.slot) * Rational(fact.ceil_term) +
                  fact.wcet;
        } else {
          // Latency-rate abstraction of the wheel:
          // κ = (wheel − slot) + C·wheel/slot.
          kappa = (fact.wheel - fact.slot) +
                  fact.wcet * (fact.wheel.seconds() / fact.slot.seconds());
        }
      } else {
        if (!expect_(fact.total_wcet >= fact.wcet, ClauseKind::Kappa,
                     subject, dur(fact.total_wcet), dur(fact.wcet),
                     "round-robin total WCET must cover the task's own "
                     "WCET")) {
          continue;
        }
        if (fact.policy == ServicePolicy::RoundRobin) {
          kappa = fact.total_wcet;
        } else {
          // Latency-rate abstraction of the round: latency = Σ − C,
          // rate = C/Σ, so κ = (Σ − C) + C·Σ/C = 2Σ − C.
          kappa = fact.total_wcet * Rational(2) - fact.wcet;
        }
      }
      expect_(fact.kappa == kappa, ClauseKind::Kappa, subject,
              dur(fact.kappa), dur(kappa),
              std::string("recorded kappa does not equal the ") +
                  service_policy_name(fact.policy) +
                  " bound re-derived from the arbiter terms");
      expect_(fact.kappa == fact_(fact.actor).rho, ClauseKind::Kappa,
              subject, dur(fact.kappa), dur(fact_(fact.actor).rho),
              "platform kappa does not equal the response time the "
              "capacity clauses ran with");
    }
  }

  // ----------------------------------------------------------------- φ

  void check_phi_() {
    for (const ActorFact& fact : cert_.actors) {
      expect_(fact.phi.is_positive(), ClauseKind::Phi,
              actor_subject_(fact.actor), dur(fact.phi), "> 0 s",
              "pacing witness must be positive");
      expect_(fact.rho <= fact.phi, ClauseKind::Phi,
              actor_subject_(fact.actor), dur(fact.rho), dur(fact.phi),
              "response time exceeds the pacing witness; no valid schedule "
              "exists at the required rate");
    }
    for (const ThroughputConstraint& c : cert_.constraints) {
      expect_(fact_(c.actor).phi == c.period, ClauseKind::Phi,
              actor_subject_(c.actor), dur(fact_(c.actor).phi),
              dur(c.period),
              "a constrained actor's pacing witness must equal its period");
    }
    for (std::size_t p = 0; p < cert_.pairs.size(); ++p) {
      const PairFact& fact = cert_.pairs[p];
      const Edge& data = graph_.edge(fact.buffer.data);
      const Duration& phi_p = fact_(fact.producer).phi;
      const Duration& phi_c = fact_(fact.consumer).phi;
      if (fact.is_feedback) {
        // Cycle flow balance: tokens produced per second must equal
        // tokens consumed per second (rates on cycle edges are static).
        expect_(phi_c * Rational(data.production.min()) ==
                    phi_p * Rational(data.consumption.min()),
                ClauseKind::Phi, pair_subject_(fact),
                dur(phi_c * Rational(data.production.min())),
                dur(phi_p * Rational(data.consumption.min())),
                "back-edge rates are flow-inconsistent with the pacing "
                "witnesses; the cycle's circulating token count would "
                "drift");
        continue;
      }
      if (side_[p] == ConstraintSide::Sink) {
        if (!expect_(data.production.min() >= 1, ClauseKind::Phi,
                     pair_subject_(fact), num(data.production.min()), ">= 1",
                     "minimum production quantum is zero on a "
                     "sink-determined edge; the producer cannot sustain "
                     "the consumer's maximum rate")) {
          continue;
        }
        const Duration demand =
            phi_c * Rational(data.production.min(), data.consumption.max());
        expect_(phi_p == demand, ClauseKind::Phi, pair_subject_(fact),
                dur(phi_p), dur(demand),
                "producer pacing witness does not equal the sink-side "
                "demand phi(consumer) * pi_min / gamma_max");
      } else {
        if (!expect_(data.consumption.min() >= 1, ClauseKind::Phi,
                     pair_subject_(fact), num(data.consumption.min()),
                     ">= 1",
                     "minimum consumption quantum is zero on a "
                     "source-determined edge; the consumer cannot keep up "
                     "with the source's maximum rate")) {
          continue;
        }
        const Duration demand =
            phi_p * Rational(data.consumption.min(), data.production.max());
        expect_(phi_c == demand, ClauseKind::Phi, pair_subject_(fact),
                dur(phi_c), dur(demand),
                "consumer pacing witness does not equal the source-side "
                "demand phi(producer) * gamma_min / pi_max");
      }
    }
  }

  // ----------------------------------------------------------------- ω

  /// The alignment leads are longest-path fixed points; with the
  /// recorded witnesses in hand each actor's equation is checked
  /// locally, so the whole pass is O(E) with no propagation.
  void check_omega_() {
    for (const ActorFact& fact : cert_.actors) {
      const std::size_t v = fact.actor.index();
      const std::size_t c = constraint_of_[v];
      if (sink_anchored_[v]) {
        if (c != kNone && sink_kind_[c]) {
          expect_(fact.lead.is_zero(), ClauseKind::Omega,
                  actor_subject_(fact.actor), dur(fact.lead), "0 s",
                  "a sink-kind anchor's alignment lead must be zero");
          continue;
        }
        Duration longest;
        for (const std::size_t p : out_pairs_[v]) {
          if (side_[p] != ConstraintSide::Sink) {
            continue;
          }
          const PairFact& pair = cert_.pairs[p];
          const Edge& data = graph_.edge(pair.buffer.data);
          const Duration rate =
              fact_(pair.consumer).phi / Rational(data.consumption.max());
          const Duration candidate =
              fact_(pair.consumer).lead +
              rate * Rational(data.production.max() - 1);
          longest = std::max(longest, candidate);
        }
        const Duration expected = fact.rho + longest;
        expect_(fact.lead == expected, ClauseKind::Omega,
                actor_subject_(fact.actor), dur(fact.lead), dur(expected),
                "alignment lead does not satisfy the sink-region "
                "longest-path equation omega = rho + max(omega(consumer) + "
                "s*(pi_max-1))");
      } else {
        if (c != kNone && source_kind_[c]) {
          expect_(fact.lead.is_zero(), ClauseKind::Omega,
                  actor_subject_(fact.actor), dur(fact.lead), "0 s",
                  "a source-kind anchor's alignment lead must be zero");
          continue;
        }
        Duration longest;
        for (const std::size_t p : in_pairs_[v]) {
          if (side_[p] != ConstraintSide::Source) {
            continue;
          }
          const PairFact& pair = cert_.pairs[p];
          const Edge& data = graph_.edge(pair.buffer.data);
          const Duration rate =
              fact_(pair.producer).phi / Rational(data.production.max());
          const Duration candidate =
              fact_(pair.producer).lead + fact_(pair.producer).rho +
              rate * Rational(data.production.max() - 1);
          longest = std::max(longest, candidate);
        }
        expect_(fact.lead == longest, ClauseKind::Omega,
                actor_subject_(fact.actor), dur(fact.lead), dur(longest),
                "alignment lead does not satisfy the source-region "
                "longest-path equation omega = max(omega(producer) + "
                "rho(producer) + s*(pi_max-1))");
      }
    }
  }

  // ------------------------------------------------------------- ζ / δ

  void check_pairs_() {
    std::int64_t total = 0;
    for (std::size_t p = 0; p < cert_.pairs.size(); ++p) {
      const PairFact& fact = cert_.pairs[p];
      const Edge& data = graph_.edge(fact.buffer.data);
      const std::int64_t pi_max = data.production.max();
      const std::int64_t gamma_max = data.consumption.max();
      const Duration& lead_p = fact_(fact.producer).lead;
      const Duration& lead_c = fact_(fact.consumer).lead;
      const bool sink_side = side_[p] == ConstraintSide::Sink;

      const Duration basis =
          sink_side ? fact_(fact.consumer).phi : fact_(fact.producer).phi;
      const Duration rate =
          basis / Rational(sink_side ? gamma_max : pi_max);
      if (!expect_(rate.is_positive(), ClauseKind::Zeta, pair_subject_(fact),
                   dur(rate), "> 0 s",
                   "non-positive bound rate; the per-token linear bounds "
                   "are degenerate")) {
        continue;  // the divisions below would be meaningless
      }

      const Duration gap = sink_side ? lead_p - lead_c : lead_c - lead_p;
      const Duration chain_local =
          fact_(fact.producer).rho + rate * Rational(pi_max - 1);
      const Duration delta_producer = std::max(gap, chain_local);
      expect_(fact.delta_producer == delta_producer, ClauseKind::Zeta,
              pair_subject_(fact), dur(fact.delta_producer),
              dur(delta_producer),
              "producer slack does not equal max(alignment gap, rho + "
              "s*(pi_max-1))");
      const Duration delta_consumer =
          fact_(fact.consumer).rho + rate * Rational(gamma_max - 1);
      expect_(fact.delta_consumer == delta_consumer, ClauseKind::Zeta,
              pair_subject_(fact), dur(fact.delta_consumer),
              dur(delta_consumer),
              "consumer slack does not equal rho + s*(gamma_max-1)");
      const Rational raw = (delta_producer + delta_consumer) / rate;
      expect_(fact.raw_tokens == raw, ClauseKind::Zeta, pair_subject_(fact),
              fact.raw_tokens.to_string(), raw.to_string(),
              "raw token count does not equal (delta_producer + "
              "delta_consumer) / s");

      // Tight-rounding adjacency: static, directly at its constrained
      // anchor on the rate-determining side, never a back-edge.
      const ActorId anchor = sink_side ? fact.consumer : fact.producer;
      const std::size_t c = constraint_of_[anchor.index()];
      const bool is_static =
          data.production.is_singleton() && data.consumption.is_singleton();
      const bool tight =
          is_static && !fact.is_feedback && c != kNone &&
          (sink_side ? sink_kind_[c] : source_kind_[c]);
      expect_(fact.tight_rounding == tight, ClauseKind::Zeta,
              pair_subject_(fact), fact.tight_rounding ? "tight" : "padded",
              tight ? "tight" : "padded",
              "recorded tight-rounding claim does not match the "
              "static-and-adjacent-to-anchor predicate");

      std::int64_t rounded = 0;
      switch (cert_.rounding) {
        case RoundingMode::PaperLiteral:
          rounded = checked_add(raw.floor(), 1);
          break;
        case RoundingMode::Ceil:
          rounded = raw.ceil();
          break;
        case RoundingMode::PaperPublished:
          rounded = tight ? raw.ceil() : checked_add(raw.floor(), 1);
          break;
      }

      if (fact.is_feedback) {
        // Max-cycle-ratio bound: the consumer's schedule leads the
        // producer's by the reversed gap and consumes from the delta
        // circulating tokens that far ahead of replenishment.
        const Duration reverse_gap =
            sink_side ? lead_c - lead_p : lead_p - lead_c;
        const std::int64_t required =
            ((reverse_gap + chain_local + rate * Rational(gamma_max - 1)) /
             rate)
                .ceil();
        expect_(fact.required_initial_tokens == required, ClauseKind::Delta,
                pair_subject_(fact), num(fact.required_initial_tokens),
                num(required),
                "recorded cycle token requirement does not equal the "
                "schedule-aligned max-cycle-ratio bound");
        expect_(fact.initial_tokens >= required, ClauseKind::Delta,
                pair_subject_(fact), num(fact.initial_tokens), num(required),
                "circulating initial tokens fall short of the cycle's "
                "max-cycle-ratio requirement; the period cannot be "
                "sustained");
      } else {
        expect_(fact.required_initial_tokens == 0, ClauseKind::Delta,
                pair_subject_(fact), num(fact.required_initial_tokens), "0",
                "skeleton pairs have no cycle token requirement");
      }

      const std::int64_t capacity = checked_add(rounded, fact.initial_tokens);
      expect_(fact.capacity == capacity, ClauseKind::Zeta,
              pair_subject_(fact), num(fact.capacity), num(capacity),
              "capacity does not equal the rounded slack plus the initial "
              "tokens");
      total = checked_add(total, fact.capacity);
    }
    expect_(cert_.total_capacity == total, ClauseKind::Zeta, "certificate",
            num(cert_.total_capacity), num(total),
            "total capacity does not equal the sum of the pair "
            "capacities");
  }

  const VrdfGraph& graph_;
  const Certificate& cert_;
  const CheckerOptions& options_;
  CertificateCheck out_;

  // Derived structure (filled by the structure/coverage phases).
  std::vector<std::size_t> fact_of_;       // actor index -> cert.actors pos
  std::vector<std::size_t> order_pos_;     // actor index -> topological pos
  std::vector<std::size_t> constraint_of_; // actor index -> constraint
  std::vector<std::vector<std::size_t>> in_pairs_;   // skeleton only
  std::vector<std::vector<std::size_t>> out_pairs_;  // skeleton only
  std::vector<bool> sink_kind_;
  std::vector<bool> source_kind_;
  std::vector<std::size_t> sink_count_;
  std::vector<std::size_t> src_count_;
  std::vector<char> sink_anchored_;
  std::vector<char> source_reached_;
  std::vector<ConstraintSide> side_;
};

}  // namespace

const char* clause_kind_name(ClauseKind kind) {
  switch (kind) {
    case ClauseKind::Phi: return "phi";
    case ClauseKind::Omega: return "omega";
    case ClauseKind::Zeta: return "zeta";
    case ClauseKind::Delta: return "delta";
    case ClauseKind::Coverage: return "coverage";
    case ClauseKind::Kappa: return "kappa";
  }
  return "unknown";
}

std::string describe(const ClauseViolation& violation) {
  std::ostringstream os;
  os << clause_kind_name(violation.kind) << " clause violated at "
     << violation.subject << ": " << violation.message;
  if (!violation.lhs.empty() || !violation.rhs.empty()) {
    os << " (" << violation.lhs << " vs " << violation.rhs << ")";
  }
  return os.str();
}

std::string CertificateCheck::first_violation() const {
  return violations.empty() ? std::string() : describe(violations.front());
}

CertificateCheck check_certificate(const VrdfGraph& graph,
                                   const Certificate& cert,
                                   const CheckerOptions& options) {
  return Checker(graph, cert, options).run();
}

}  // namespace vrdf::analysis
