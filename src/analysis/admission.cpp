#include "analysis/admission.hpp"

#include "util/error.hpp"

namespace vrdf::analysis {

namespace {

AdmissionDecision accept(const GraphAnalysis& analysis,
                         std::int64_t total_before) {
  AdmissionDecision decision;
  decision.accepted = true;
  decision.capacity_delta = analysis.total_capacity - total_before;
  decision.total_capacity = analysis.total_capacity;
  return decision;
}

AdmissionDecision reject(const GraphAnalysis& candidate) {
  AdmissionDecision decision;
  decision.diagnostics = candidate.diagnostics;
  decision.binding_constraint =
      candidate.diagnostics.empty() ? std::string("(no diagnostic)")
                                    : candidate.diagnostics.front();
  return decision;
}

/// An admissible candidate whose certificate failed the independent
/// checker: the violated clause is the binding constraint.
AdmissionDecision reject_uncertified(const ClauseViolation& violation) {
  AdmissionDecision decision;
  decision.binding_constraint = "certificate: " + describe(violation);
  decision.diagnostics.push_back(decision.binding_constraint);
  return decision;
}

/// accept/reject dispatch shared by the four decision paths.
AdmissionDecision decide(const IncrementalAnalysis& engine,
                         std::int64_t total_before, bool* accepted) {
  const GraphAnalysis& candidate = engine.analysis();
  if (candidate.admissible &&
      !engine.last_certificate_violation().has_value()) {
    *accepted = true;
    return accept(candidate, total_before);
  }
  *accepted = false;
  return engine.last_certificate_violation().has_value()
             ? reject_uncertified(*engine.last_certificate_violation())
             : reject(candidate);
}

}  // namespace

AdmissionController::AdmissionController(const TopologySnapshot& snapshot,
                                         ConstraintSet initial_streams,
                                         AnalysisOptions options)
    : engine_(snapshot, std::move(initial_streams), options) {
  const GraphAnalysis& initial = engine_.analysis();
  VRDF_REQUIRE(
      initial.admissible,
      "admission controller requires an admissible initial state; got: " +
          (initial.diagnostics.empty() ? std::string("(no diagnostics)")
                                       : initial.diagnostics.front()));
}

AdmissionDecision AdmissionController::admit(
    const ThroughputConstraint& stream) {
  for (const ThroughputConstraint& c : engine_.constraints()) {
    VRDF_REQUIRE(!(c.actor == stream.actor),
                 "admit: actor already carries a stream constraint "
                 "(use set_period to change its rate)");
  }
  const std::int64_t before = engine_.analysis().total_capacity;
  engine_.admit(stream);
  bool accepted = false;
  AdmissionDecision decision = decide(engine_, before, &accepted);
  if (accepted) {
    return decision;
  }
  engine_.remove(stream.actor);
  decision.total_capacity = engine_.analysis().total_capacity;
  return decision;
}

AdmissionDecision AdmissionController::remove(dataflow::ActorId actor) {
  VRDF_REQUIRE(engine_.constraints().size() > 1,
               "remove: cannot stop the last stream — an unconstrained "
               "graph has no analysis");
  ThroughputConstraint removed{};
  bool found = false;
  for (const ThroughputConstraint& c : engine_.constraints()) {
    if (c.actor == actor) {
      removed = c;
      found = true;
      break;
    }
  }
  VRDF_REQUIRE(found, "remove: actor carries no stream constraint");
  const std::int64_t before = engine_.analysis().total_capacity;
  engine_.remove(actor);
  bool accepted = false;
  AdmissionDecision decision = decide(engine_, before, &accepted);
  if (accepted) {
    return decision;
  }
  engine_.admit(removed);
  decision.total_capacity = engine_.analysis().total_capacity;
  return decision;
}

AdmissionDecision AdmissionController::retune(dataflow::ActorId actor,
                                              Duration rho) {
  std::optional<Duration> previous;
  if (actor.index() < engine_.overlay().response_time.size()) {
    previous = engine_.overlay().response_time[actor.index()];
  }
  const std::int64_t before = engine_.analysis().total_capacity;
  engine_.retune(actor, rho);
  bool accepted = false;
  AdmissionDecision decision = decide(engine_, before, &accepted);
  if (accepted) {
    return decision;
  }
  if (previous.has_value()) {
    engine_.retune(actor, *previous);
  } else {
    engine_.clear_retune(actor);
  }
  decision.total_capacity = engine_.analysis().total_capacity;
  return decision;
}

AdmissionDecision AdmissionController::set_period(dataflow::ActorId actor,
                                                  Duration tau) {
  std::optional<Duration> previous;
  for (const ThroughputConstraint& c : engine_.constraints()) {
    if (c.actor == actor) {
      previous = c.period;
      break;
    }
  }
  VRDF_REQUIRE(previous.has_value(),
               "set_period: actor carries no stream constraint");
  const std::int64_t before = engine_.analysis().total_capacity;
  engine_.set_period(actor, tau);
  bool accepted = false;
  AdmissionDecision decision = decide(engine_, before, &accepted);
  if (accepted) {
    return decision;
  }
  engine_.set_period(actor, *previous);
  decision.total_capacity = engine_.analysis().total_capacity;
  return decision;
}

void AdmissionController::set_require_certificate(bool require) {
  require_certificate_ = require;
  engine_.set_certify(require);
}

}  // namespace vrdf::analysis
