#include "analysis/buffer_sizing.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/pacing.hpp"
#include "analysis/sizing_core.hpp"
#include "util/checked_int.hpp"
#include "util/error.hpp"

namespace vrdf::analysis {

using dataflow::Edge;
using dataflow::VrdfGraph;

namespace {

std::int64_t round_capacity(const Rational& raw, bool tight_pair,
                            RoundingMode mode) {
  switch (mode) {
    case RoundingMode::PaperLiteral:
      return checked_add(raw.floor(), 1);
    case RoundingMode::Ceil:
      return raw.ceil();
    case RoundingMode::PaperPublished:
      return tight_pair ? raw.ceil() : checked_add(raw.floor(), 1);
  }
  throw ContractError("unknown rounding mode");
}

// Bound rate s: time per token of the pair's linear bounds.
Duration bound_rate_of(const PacingResult& pacing, std::size_t pos,
                       const Edge& data) {
  return pacing.determined_by[pos] == ConstraintSide::Sink
             ? pacing.pacing_of(data.target) / Rational(data.consumption.max())
             : pacing.pacing_of(data.source) / Rational(data.production.max());
}

}  // namespace

namespace detail {

bool constrained_kind(const PacingResult& pacing, dataflow::ActorId v,
                      bool sink_kind) {
  const std::size_t c = pacing.constraint_of_actor[v.index()];
  return c != PacingResult::npos &&
         (sink_kind ? pacing.constraint_is_sink_kind[c]
                    : pacing.constraint_is_source_kind[c]);
}

bool check_schedule_validity(const VrdfGraph& graph,
                             const ParameterOverlay& overlay,
                             const PacingResult& pacing,
                             std::vector<std::string>& diagnostics) {
  // Producer/consumer schedule validity (Sec 4.2): every actor must finish
  // a firing within its pacing, ρ(v) <= φ(v).  For constrained actors
  // φ = τ; for the others φ is the propagated value.
  bool admissible = true;
  for (std::size_t i = 0; i < pacing.actors_in_order.size(); ++i) {
    const dataflow::ActorId v = pacing.actors_in_order[i];
    const Duration& rho = overlay.response_time_of(graph, v);
    if (rho > pacing.pacing[i]) {
      std::ostringstream os;
      os << "actor '" << graph.actor(v).name << "': response time "
         << rho.seconds() << " s exceeds pacing " << pacing.pacing[i].seconds()
         << " s; no valid schedule exists at the required rate";
      diagnostics.push_back(os.str());
      admissible = false;
    }
  }
  return admissible;
}

Duration lead_pass_a_of(const VrdfGraph& graph, const ParameterOverlay& overlay,
                        const PacingResult& pacing,
                        const std::vector<Duration>& lead,
                        dataflow::ActorId v) {
  const dataflow::VrdfGraph::BufferView& view = *pacing.view;
  Duration longest;
  for (const std::size_t pos : view.out_buffers[v.index()]) {
    if (pacing.determined_by[pos] != ConstraintSide::Sink) {
      continue;
    }
    const Edge& data = graph.edge(view.buffers[pos].data);
    const Duration candidate =
        lead[data.target.index()] +
        bound_rate_of(pacing, pos, data) * Rational(data.production.max() - 1);
    if (candidate > longest) {
      longest = candidate;
    }
  }
  return overlay.response_time_of(graph, v) + longest;
}

Duration lead_pass_b_of(const VrdfGraph& graph, const ParameterOverlay& overlay,
                        const PacingResult& pacing,
                        const std::vector<Duration>& lead,
                        dataflow::ActorId v) {
  const dataflow::VrdfGraph::BufferView& view = *pacing.view;
  Duration longest;
  for (const std::size_t pos : view.in_buffers[v.index()]) {
    if (pacing.determined_by[pos] != ConstraintSide::Source) {
      continue;
    }
    const Edge& data = graph.edge(view.buffers[pos].data);
    const Duration candidate =
        lead[data.source.index()] +
        overlay.response_time_of(graph, data.source) +
        bound_rate_of(pacing, pos, data) * Rational(data.production.max() - 1);
    if (candidate > longest) {
      longest = candidate;
    }
  }
  return longest;
}

std::vector<Duration> compute_alignment_leads(const VrdfGraph& graph,
                                              const ParameterOverlay& overlay,
                                              const PacingResult& pacing) {
  // Schedule alignment ω(v): the worst-case lead (sink-determined region)
  // or lag (source-determined region) of v's constructed schedule
  // relative to its anchoring constrained actor.  An actor shared by
  // several paths — a fork's producer, a join's consumer — runs ONE
  // schedule, pinned to its most demanding path; on every other incident
  // edge the buffer must absorb the gap.  Propagated as a longest path
  // over the data DAG, following each edge's rate-determining side:
  //   sink-determined:   ω(a) = ρ(a) + max over such out-edges e
  //                      (ω(cons(e)) + s_e·(π̂(e) − 1)),
  //                      ω(sink-kind constrained actor) = 0;
  //   source-determined: ω(y) = max over such in-edges e (ω(prod(e)) +
  //                      ρ(prod(e)) + s_e·(π̂(e) − 1)),
  //                      ω(source-kind constrained actor) = 0.
  // On a chain the max ranges over the single incident edge and
  // ω(far) − ω(near) collapses to Eq (1)'s ρ + s·(π̂ − 1) exactly.  On
  // mixed constraint sets the source-determined region hangs off the
  // sink-anchored one: a boundary producer enters pass B with the pass-A
  // lead it already carries, so the dangling region's buffers absorb its
  // misalignment on top of their own (the fork sibling-slack argument,
  // composed across the two passes).  An interior pin anchors BOTH
  // passes at ω = 0 — its enforced schedule is the exact periodic grid
  // its upstream (pass A) and downstream (pass B) regions each align to,
  // which is what decouples the two sides.
  std::vector<Duration> lead(graph.actor_count());
  // Pass A — sink-anchored region, reverse topological order.
  for (auto it = pacing.actors_in_order.rbegin();
       it != pacing.actors_in_order.rend(); ++it) {
    const dataflow::ActorId v = *it;
    if (!pacing.sink_anchored[v.index()] || constrained_kind(pacing, v, true)) {
      continue;
    }
    lead[v.index()] = lead_pass_a_of(graph, overlay, pacing, lead, v);
  }
  // Pass B — the rest, forward topological order.
  for (const dataflow::ActorId v : pacing.actors_in_order) {
    if (pacing.sink_anchored[v.index()] || constrained_kind(pacing, v, false)) {
      continue;
    }
    lead[v.index()] = lead_pass_b_of(graph, overlay, pacing, lead, v);
  }
  return lead;
}

PairAnalysis analyse_pair(const VrdfGraph& graph,
                          const ParameterOverlay& overlay,
                          const PacingResult& pacing,
                          const std::vector<Duration>& lead, std::size_t pos,
                          const AnalysisOptions& options,
                          std::vector<std::string>& diagnostics,
                          bool& admissible) {
  const dataflow::VrdfGraph::BufferView& view = *pacing.view;
  const dataflow::BufferEdges buffer = pacing.buffers_in_order[pos];
  const Edge& data = graph.edge(buffer.data);
  const ConstraintSide pair_side = pacing.determined_by[pos];

  PairAnalysis pair;
  pair.producer = data.source;
  pair.consumer = data.target;
  pair.buffer = buffer;
  pair.determined_by = pair_side;
  pair.is_static =
      data.production.is_singleton() && data.consumption.is_singleton();

  const std::int64_t pi_max = data.production.max();
  const std::int64_t gamma_max = data.consumption.max();

  if (pair_side == ConstraintSide::Sink) {
    pair.pacing_basis = pacing.pacing_of(data.target);  // φ(consumer)
    pair.bound_rate = pair.pacing_basis / Rational(gamma_max);
  } else {
    pair.pacing_basis = pacing.pacing_of(data.source);  // φ(producer)
    pair.bound_rate = pair.pacing_basis / Rational(pi_max);
  }

  pair.is_feedback = view.is_feedback[pos];
  pair.initial_tokens = overlay.initial_tokens_of(graph, buffer.data);

  const Duration& rho_b = overlay.response_time_of(graph, pair.consumer);
  // Eq (1): the upper bound on data production must cover token x while
  // the lower bound on space consumption covers token x + π̂ - 1 of the
  // same firing, consumed ρ(v_a) earlier than the production — plus, on
  // fork-join graphs, the alignment gap to the far endpoint's actual
  // schedule.  On a chain this is exactly ρ(v_a) + s·(π̂ − 1); on a
  // skeleton edge the alignment gap is always ≥ that chain-local value,
  // so the max below reproduces the acyclic analysis bit-for-bit.  On a
  // back-edge the consumer *leads* the producer (the gap is ≤ 0) and
  // the chain-local term is the binding one.
  const Duration alignment_gap =
      pair_side == ConstraintSide::Sink
          ? lead[pair.producer.index()] - lead[pair.consumer.index()]
          : lead[pair.consumer.index()] - lead[pair.producer.index()];
  const Duration chain_local =
      overlay.response_time_of(graph, pair.producer) +
      pair.bound_rate * Rational(pi_max - 1);
  pair.delta_producer = std::max(alignment_gap, chain_local);
  // Eq (2): symmetric for the consumer with its maximum quantum γ̂.
  pair.delta_consumer = rho_b + pair.bound_rate * Rational(gamma_max - 1);
  // Eq (3).
  pair.delta_total = pair.delta_producer + pair.delta_consumer;
  // Eq (4): horizontal distance between the space-edge bounds in tokens.
  pair.raw_tokens = pair.delta_total / pair.bound_rate;
  // The tight value x (without the +1) is sound exactly when the pair is
  // static and sits at a constrained end of the graph on its
  // rate-determining side: the constrained actor's transfer times are
  // exactly periodic, so the delay slack the +1 provides cannot be
  // needed.  Back-edges never qualify — their consumer's schedule is
  // pinned to the whole loop, not to the constrained actor alone.
  const bool adjacent_to_constrained =
      pair_side == ConstraintSide::Sink
          ? constrained_kind(pacing, data.target, /*sink_kind=*/true)
          : constrained_kind(pacing, data.source, /*sink_kind=*/false);
  pair.capacity = round_capacity(
      pair.raw_tokens,
      pair.is_static && adjacent_to_constrained && !pair.is_feedback,
      options.rounding);
  // Cycle throughput bound (the max-cycle-ratio constraint, period ≥
  // cycle latency / initial tokens, in its schedule-aligned form).  On
  // a back-edge the consumer's constructed schedule *leads* the
  // producer's by the reversed alignment gap, consuming from the δ
  // circulating tokens that far ahead of replenishment; the tokens must
  // also cover the producer's transfer slack ρ(p) + s·(π̂−1) (its
  // production lands that late against its linear bound) and the
  // consumer's per-firing jump s·(γ̂−1).  δ below ⌈that credit⌉ cannot
  // sustain the period — diagnose instead of emitting starving
  // capacities (the leads are δ-independent, so the requirement can be
  // used to size a loop's tokens).
  if (pair.is_feedback) {
    const Duration reverse_gap =
        pair_side == ConstraintSide::Sink
            ? lead[pair.consumer.index()] - lead[pair.producer.index()]
            : lead[pair.producer.index()] - lead[pair.consumer.index()];
    pair.required_initial_tokens =
        ((reverse_gap + chain_local + pair.bound_rate * Rational(gamma_max - 1)) /
         pair.bound_rate)
            .ceil();
    if (pair.initial_tokens < pair.required_initial_tokens) {
      std::ostringstream os;
      os << "cycle through back-edge " << graph.actor(pair.producer).name
         << " -> " << graph.actor(pair.consumer).name << ": delta="
         << pair.initial_tokens
         << " initial tokens cannot sustain the period; the cycle's "
            "schedule-alignment credit requires at least "
         << pair.required_initial_tokens
         << " (the max-cycle-ratio bound period >= cycle latency / "
            "initial tokens) — add initial tokens or relax the period";
      diagnostics.push_back(os.str());
      admissible = false;
    }
  }
  // The containers holding the initial tokens come on top of the
  // schedule slack: a back-edge's capacity covers its circulating
  // tokens plus the cycle's alignment slack.
  pair.capacity = checked_add(pair.capacity, pair.initial_tokens);
  return pair;
}

}  // namespace detail

GraphAnalysis compute_buffer_capacities(const VrdfGraph& graph,
                                        const ThroughputConstraint& constraint,
                                        const AnalysisOptions& options) {
  return compute_buffer_capacities(graph, ConstraintSet{constraint}, options);
}

GraphAnalysis compute_buffer_capacities(const VrdfGraph& graph,
                                        const ConstraintSet& constraints,
                                        const AnalysisOptions& options) {
  return compute_buffer_capacities(TopologySnapshot(graph), constraints,
                                   options);
}

GraphAnalysis compute_buffer_capacities(const TopologySnapshot& snapshot,
                                        const ConstraintSet& constraints,
                                        const AnalysisOptions& options,
                                        const ParameterOverlay& overlay) {
  GraphAnalysis analysis;
  analysis.rounding = options.rounding;

  PacingResult pacing = compute_pacing(snapshot, constraints);
  analysis.diagnostics = pacing.diagnostics;
  if (!pacing.ok) {
    return analysis;
  }
  const VrdfGraph& graph = snapshot.graph();
  analysis.side = pacing.side;
  analysis.constraints = pacing.constraints;
  analysis.constraint_is_sink_kind = pacing.constraint_is_sink_kind;
  analysis.constraint_is_source_kind = pacing.constraint_is_source_kind;
  analysis.is_chain = pacing.is_chain;
  analysis.is_cyclic = pacing.is_cyclic;
  analysis.actors_in_order = pacing.actors_in_order;
  analysis.pacing = pacing.pacing;

  if (!detail::check_schedule_validity(graph, overlay, pacing,
                                       analysis.diagnostics)) {
    return analysis;
  }

  const std::vector<Duration> lead =
      detail::compute_alignment_leads(graph, overlay, pacing);
  analysis.leads.reserve(pacing.actors_in_order.size());
  for (const dataflow::ActorId v : pacing.actors_in_order) {
    analysis.leads.push_back(lead[v.index()]);
  }

  bool admissible = true;
  analysis.pairs.reserve(pacing.buffers_in_order.size());
  for (std::size_t i = 0; i < pacing.buffers_in_order.size(); ++i) {
    PairAnalysis pair =
        detail::analyse_pair(graph, overlay, pacing, lead, i, options,
                             analysis.diagnostics, admissible);
    analysis.total_capacity =
        checked_add(analysis.total_capacity, pair.capacity);
    analysis.pairs.push_back(pair);
  }

  analysis.admissible = admissible;
  return analysis;
}

void apply_capacities(VrdfGraph& graph, const GraphAnalysis& analysis) {
  VRDF_REQUIRE(analysis.admissible,
               "cannot apply capacities of an inadmissible analysis");
  for (const PairAnalysis& pair : analysis.pairs) {
    // δ(space) holds the *free* containers: the ones occupied by initial
    // data tokens (back-edges) are already in circulation.
    graph.set_initial_tokens(
        pair.buffer.space,
        checked_sub(pair.capacity,
                    graph.edge(pair.buffer.data).initial_tokens));
  }
}

ResponseTimeBudget max_admissible_response_times(
    const VrdfGraph& graph, const ThroughputConstraint& constraint) {
  return max_admissible_response_times(graph, ConstraintSet{constraint});
}

ResponseTimeBudget max_admissible_response_times(
    const VrdfGraph& graph, const ConstraintSet& constraints) {
  ResponseTimeBudget budget;
  PacingResult pacing = compute_pacing(graph, constraints);
  budget.diagnostics = pacing.diagnostics;
  if (!pacing.ok) {
    return budget;
  }
  budget.ok = true;
  budget.actors_in_order = std::move(pacing.actors_in_order);
  budget.max_response_times = std::move(pacing.pacing);
  return budget;
}

}  // namespace vrdf::analysis
