#include "analysis/snapshot.hpp"

#include "dataflow/validation.hpp"

namespace vrdf::analysis {

using dataflow::VrdfGraph;

TopologySnapshot::TopologySnapshot(const VrdfGraph& graph)
    : graph_(&graph), revision_(graph.revision()) {
  const dataflow::ValidationReport validation =
      dataflow::validate_cyclic_model(graph);
  if (!validation.ok()) {
    diagnostics_ = validation.errors;
    return;
  }
  auto view = graph.buffer_view();
  // validate_cyclic_model guarantees a buffer network whose cycles all
  // break at tokened back-edges, so the view always materialises.
  VRDF_REQUIRE(view.has_value(), "validated model yielded no buffer view");
  view_ = std::make_shared<const VrdfGraph::BufferView>(std::move(*view));
  ok_ = true;
}

const std::vector<std::vector<std::size_t>>& TopologySnapshot::incident_pairs()
    const {
  if (!incident_pairs_built_) {
    VRDF_REQUIRE(ok_, "snapshot of an invalid model has no pair index");
    incident_pairs_.resize(graph_->actor_count());
    for (std::size_t pos = 0; pos < view_->buffers.size(); ++pos) {
      const dataflow::Edge& data = graph_->edge(view_->buffers[pos].data);
      incident_pairs_[data.source.index()].push_back(pos);
      if (data.target != data.source) {
        incident_pairs_[data.target.index()].push_back(pos);
      }
    }
    incident_pairs_built_ = true;
  }
  return incident_pairs_;
}

void TopologySnapshot::require_fresh() const {
  if (!stale()) {
    return;
  }
  throw ContractError(
      "topology snapshot is stale: the underlying graph was mutated (" +
      graph_->last_mutation() +
      ") after capture; re-capture the snapshot instead of querying "
      "memoized structure that no longer matches the graph");
}

bool ParameterOverlay::empty() const {
  for (const auto& rho : response_time) {
    if (rho.has_value()) {
      return false;
    }
  }
  for (const auto& tokens : initial_tokens) {
    if (tokens.has_value()) {
      return false;
    }
  }
  return true;
}

const Duration& ParameterOverlay::response_time_of(
    const dataflow::VrdfGraph& graph, dataflow::ActorId actor) const {
  if (actor.index() < response_time.size() &&
      response_time[actor.index()].has_value()) {
    return *response_time[actor.index()];
  }
  return graph.actor(actor).response_time;
}

std::int64_t ParameterOverlay::initial_tokens_of(
    const dataflow::VrdfGraph& graph, dataflow::EdgeId edge) const {
  if (edge.index() < initial_tokens.size() &&
      initial_tokens[edge.index()].has_value()) {
    return *initial_tokens[edge.index()];
  }
  return graph.edge(edge).initial_tokens;
}

std::int64_t ParameterOverlay::buffer_capacity_of(
    const dataflow::VrdfGraph& graph,
    const dataflow::BufferEdges& buffer) const {
  return initial_tokens_of(graph, buffer.space) +
         initial_tokens_of(graph, buffer.data);
}

void ParameterOverlay::set_response_time(dataflow::ActorId actor,
                                         Duration rho) {
  VRDF_REQUIRE(rho.is_positive(), "overlay response time must be positive");
  if (actor.index() >= response_time.size()) {
    response_time.resize(actor.index() + 1);
  }
  response_time[actor.index()] = rho;
}

void ParameterOverlay::set_initial_tokens(dataflow::EdgeId edge,
                                          std::int64_t tokens) {
  VRDF_REQUIRE(tokens >= 0, "overlay initial tokens must be non-negative");
  if (edge.index() >= initial_tokens.size()) {
    initial_tokens.resize(edge.index() + 1);
  }
  initial_tokens[edge.index()] = tokens;
}

void ParameterOverlay::clear_response_time(dataflow::ActorId actor) {
  if (actor.index() < response_time.size()) {
    response_time[actor.index()].reset();
  }
}

}  // namespace vrdf::analysis
