// Linear bounds on token transfer times (Sec 4.1/4.2, Figures 3 and 4).
//
// A LinearBound maps a cumulative token count k (1-based) to a time
//    bound(k) = offset + k·per_token.
// An *upper* bound on production times is conservative for a schedule when
// the k-th token is produced no later than bound(k); a *lower* bound on
// consumption times is conservative when the k-th token is consumed no
// earlier than bound(k).
//
// For a buffer pair the four bounds are anchored so that
//   α̂p(data) == α̌c(data)                  (tokens arrive exactly in time),
//   α̌c(space) == α̂p(data) − Δ₁            (Eq 1),
//   α̂p(space) == α̌c(data) + Δ₂            (Eq 2),
// which gives α̂p(space) − α̌c(space) = Δ₁ + Δ₂ = Δ (Eq 3).  A capacity of
// d space tokens is sufficient iff α̂p(space)(k−d) ≤ α̌c(space)(k) for all
// k > d, i.e. d ≥ Δ/s — the quantity Eq (4) rounds.
//
// just_conservative_*_schedule() build the witness schedules of Fig 4: the
// producer finishes each firing exactly when the upper bound crosses the
// firing's *first* token (the binding index of an increasing bound), the
// consumer starts each firing exactly when the lower bound crosses the
// firing's *last* token.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/types.hpp"
#include "util/time.hpp"

namespace vrdf::analysis {

class LinearBound {
public:
  LinearBound(Duration offset, Duration per_token)
      : offset_(offset), per_token_(per_token) {}

  /// Bound value for the k-th cumulative token, k >= 1.
  [[nodiscard]] TimePoint at(std::int64_t k) const;

  [[nodiscard]] const Duration& offset() const { return offset_; }
  [[nodiscard]] const Duration& per_token() const { return per_token_; }

  /// Shifts the whole bound by delta (used to anchor pair bounds).
  [[nodiscard]] LinearBound shifted(Duration delta) const {
    return LinearBound(offset_ + delta, per_token_);
  }

private:
  Duration offset_;
  Duration per_token_;
};

/// One atomic token transfer of a schedule: `count` tokens moved at `time`,
/// bringing the cumulative count to `cumulative`.
struct TransferEvent {
  std::int64_t cumulative = 0;  // 1-based cumulative count *after* the event
  std::int64_t count = 0;       // tokens moved in this event (may be 0)
  TimePoint time;
};

/// The four anchored bounds of one buffer pair.
struct PairBounds {
  LinearBound data_production_upper;   // α̂p(e_ab)
  LinearBound data_consumption_lower;  // α̌c(e_ab)
  LinearBound space_production_upper;  // α̂p(e_ba)
  LinearBound space_consumption_lower; // α̌c(e_ba)
};

/// Anchors the bounds of an analysed pair at `anchor` (the data bounds pass
/// through anchor + k·s).
[[nodiscard]] PairBounds derive_pair_bounds(const PairAnalysis& pair,
                                            TimePoint anchor);

/// True when every event's time is <= bound(cumulative) — the upper-bound
/// conservativeness of production times.  Events with count == 0 are
/// ignored (a zero-quantum firing transfers nothing).
[[nodiscard]] bool production_conservative(const LinearBound& upper,
                                           const std::vector<TransferEvent>& events);

/// True when every event's time is >= bound(cumulative - count + 1) — the
/// lower-bound conservativeness of consumption times (binding token of an
/// atomic consumption is its first one; all tokens of the event share one
/// time, and the bound is increasing, so checking k - count + 1..k reduces
/// to nothing stronger than k itself; we check the *last* token k).
[[nodiscard]] bool consumption_conservative(const LinearBound& lower,
                                            const std::vector<TransferEvent>& events);

/// Fig 4 producer witness: firing j (quantum q_j, q_j >= 0) produces its
/// tokens at the time the upper bound assigns to the firing's first token;
/// zero-quantum firings are pinned between their neighbours.  Returns one
/// TransferEvent per firing.
[[nodiscard]] std::vector<TransferEvent> just_conservative_producer_schedule(
    const LinearBound& production_upper, const std::vector<std::int64_t>& quanta);

/// Fig 3 consumer witness: firing j consumes its tokens at the time the
/// lower bound assigns to the firing's last token.
[[nodiscard]] std::vector<TransferEvent> just_conservative_consumer_schedule(
    const LinearBound& consumption_lower, const std::vector<std::int64_t>& quanta);

/// Smallest d (>= 0) with α̂p(space)(k − d) ≤ α̌c(space)(k) for all k — the
/// exact token distance Δ/s of the pair's bounds, before the Eq (4)
/// rounding policy.
[[nodiscard]] Rational bound_token_distance(const PairBounds& bounds);

}  // namespace vrdf::analysis
