// The inverse problem: fastest admissible period for *given* capacities.
//
// The paper computes capacities from a period; deployed systems often face
// the converse — buffers are already sized (silicon, legacy firmware) and
// the question is the fastest strictly periodic rate they support.  Within
// the paper's framework this has a closed form, because pacing is linear
// in the period: φ(v) = c_v·τ with a rate-only coefficient c_v from the
// Sec 4.3/4.4 propagation.  Per pair, sufficiency of capacity d (in the
// conservative Eq (4) sense x ≤ d − 1, or x ≤ d on the tight pair) turns
// into a lower bound on the pair's bound rate s = c·τ/γ̂ and hence on τ:
//
//     x = (ρ_a + ρ_b)/s + (π̂ − 1) + (γ̂ − 1) ≤ d − 1
//  ⇔  τ ≥ γ̂·(ρ_a + ρ_b) / (c · (d + 1 − π̂ − γ̂))        [literal form]
//
// plus the schedule-validity constraints ρ(v) ≤ φ(v) = c_v·τ.  The
// minimum admissible period is the maximum of all these bounds; a pair
// with d + 1 ≤ π̂ + γ̂ (d + 2 on the tight pair ≤ ...) cannot sustain any
// rate.
//
// Note on tightness: the forward rounding ⌊x⌋+1 ≤ d is the *open*
// condition x < d, which has no attained minimum period; this analysis
// uses the closed condition x ≤ d − 1 instead, so the returned period is
// attained, sound, and conservative by strictly less than one token's
// worth of rate.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/snapshot.hpp"
#include "analysis/types.hpp"
#include "dataflow/vrdf_graph.hpp"

namespace vrdf::analysis {

struct MinPeriodResult {
  bool ok = false;
  std::vector<std::string> diagnostics;
  /// Attained safe period: at min_period the conservative sufficiency
  /// criterion (x ≤ d − 1 on pairs that keep the Eq (4) +1; x ≤ d on the
  /// tight pair) holds with equality somewhere.  Always feasible.
  Duration min_period;
  /// Exact feasibility infimum of the *forward* analysis: for every
  /// τ > infimum_period, compute_buffer_capacities at τ yields capacities
  /// that fit the installed ones.  τ = infimum_period itself fits iff
  /// infimum_attained (the binding constraint is closed: a response time
  /// or a tight pair).  infimum_period ≤ min_period, with equality when x
  /// is integral at the binding pair (e.g. the MP3 chain).
  Duration infimum_period;
  bool infimum_attained = false;
  /// Which constraint was binding for min_period: actor name (response
  /// time) or "buffer producer->consumer" (capacity).
  std::string binding_constraint;
};

/// Reads each buffer's installed free-container count from δ(space edge)
/// and returns the fastest admissible strictly periodic rate of `actor`
/// (which must be the graph's unique data source or sink).  On cyclic
/// graphs the result additionally honours the max-cycle-ratio bound:
/// period ≥ cycle latency / initial-token credit for every directed cycle
/// (the binding_constraint then names the back-edge).  Inadmissible
/// situations (zero capacity, capacity below the structural minimum
/// π̂+γ̂−1, rate-side zero quanta) yield ok == false with diagnostics.
[[nodiscard]] MinPeriodResult min_admissible_period(
    const dataflow::VrdfGraph& graph, dataflow::ActorId actor,
    const AnalysisOptions& options = {});

/// Multi-constraint variant: scales the period of the constraint on
/// `designated` while every other constraint in the set is held fixed.
/// Because constraint sets must be flow-consistent (demands have to agree
/// at every shared actor, see analysis/pacing.hpp), a designated
/// constraint that shares pacing with a fixed one has exactly one
/// admissible period — the flow-coupled value; the function derives it
/// from the overlap of the two demand cones, forward-verifies it against
/// the installed capacities, and reports infeasibility (with diagnostics)
/// when the coupled value violates a response time, a capacity, or a
/// cycle bound.  `designated` must carry a constraint in `constraints`
/// (its period in the set is ignored); with no other constraints this is
/// exactly the single-constraint solver.
[[nodiscard]] MinPeriodResult min_admissible_period(
    const dataflow::VrdfGraph& graph, const ConstraintSet& constraints,
    dataflow::ActorId designated, const AnalysisOptions& options = {});

/// Snapshot entry points: identical semantics and bit-identical results,
/// with the structural artifact taken from the captured TopologySnapshot
/// and every ρ / δ / installed-capacity read going through the
/// ParameterOverlay (empty overlay = the graph's own values).  These are
/// what the admission controller queries between topology changes.
[[nodiscard]] MinPeriodResult min_admissible_period(
    const TopologySnapshot& snapshot, dataflow::ActorId actor,
    const AnalysisOptions& options = {}, const ParameterOverlay& overlay = {});
[[nodiscard]] MinPeriodResult min_admissible_period(
    const TopologySnapshot& snapshot, const ConstraintSet& constraints,
    dataflow::ActorId designated, const AnalysisOptions& options = {},
    const ParameterOverlay& overlay = {});

}  // namespace vrdf::analysis
