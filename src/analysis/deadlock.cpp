#include "analysis/deadlock.hpp"

#include "dataflow/validation.hpp"
#include "util/checked_int.hpp"
#include "util/error.hpp"

namespace vrdf::analysis {

std::int64_t min_deadlock_free_capacity(std::int64_t production,
                                        std::int64_t consumption) {
  VRDF_REQUIRE(production > 0, "production quantum must be positive");
  VRDF_REQUIRE(consumption > 0, "consumption quantum must be positive");
  return checked_sub(checked_add(production, consumption),
                     gcd64(production, consumption));
}

std::int64_t min_deadlock_free_pair_capacity(
    const dataflow::RateSet& production, const dataflow::RateSet& consumption) {
  // g = gcd of every positive quantum; zero quanta transfer nothing and
  // never block (a zero consumption is always enabled, a zero production
  // needs no space), so they do not constrain g.
  std::int64_t g = 0;
  for (const std::int64_t p : production.values()) {
    if (p > 0) {
      g = gcd64(g, p);
    }
  }
  for (const std::int64_t c : consumption.values()) {
    if (c > 0) {
      g = gcd64(g, c);
    }
  }
  VRDF_REQUIRE(g > 0, "rate sets must contain positive quanta");
  return checked_sub(checked_add(production.max(), consumption.max()), g);
}

std::vector<std::int64_t> min_deadlock_free_capacities(
    const dataflow::VrdfGraph& graph) {
  const dataflow::ValidationReport validation =
      dataflow::validate_cyclic_model(graph);
  if (!validation.ok()) {
    throw ModelError("not a consistent network of buffers: " +
                     validation.summary());
  }
  const auto view = graph.buffer_view();
  std::vector<std::int64_t> minima;
  minima.reserve(view->buffers.size());
  for (const dataflow::BufferEdges& b : view->buffers) {
    const dataflow::Edge& data = graph.edge(b.data);
    // Initial tokens occupy containers from t=0 on: the pair slack must
    // exist on top of them or the capacity itself deadlocks the loop.
    minima.push_back(checked_add(
        min_deadlock_free_pair_capacity(data.production, data.consumption),
        data.initial_tokens));
  }
  return minima;
}

std::int64_t min_deadlock_free_total(const dataflow::VrdfGraph& graph) {
  std::int64_t total = 0;
  for (const std::int64_t minimum : min_deadlock_free_capacities(graph)) {
    total = checked_add(total, minimum);
  }
  return total;
}

std::vector<std::int64_t> min_deadlock_free_chain_capacities(
    const dataflow::VrdfGraph& graph) {
  const dataflow::ValidationReport validation =
      dataflow::validate_chain_model(graph);
  if (!validation.ok()) {
    throw ModelError("not a chain of buffers: " + validation.summary());
  }
  return min_deadlock_free_capacities(graph);
}

}  // namespace vrdf::analysis
