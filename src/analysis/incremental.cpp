#include "analysis/incremental.hpp"

#include "analysis/certificate.hpp"
#include "analysis/sizing_core.hpp"
#include "util/checked_int.hpp"
#include "util/error.hpp"

namespace vrdf::analysis {

using dataflow::VrdfGraph;

namespace {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

}  // namespace

IncrementalAnalysis::IncrementalAnalysis(const TopologySnapshot& snapshot,
                                         ConstraintSet constraints,
                                         AnalysisOptions options)
    : snapshot_(snapshot),
      constraints_(std::move(constraints)),
      options_(options) {
  snapshot_.require_fresh();
  if (snapshot_.ok()) {
    const VrdfGraph& graph = snapshot_.graph();
    pair_of_edge_.assign(graph.edge_count(), npos);
    const dataflow::VrdfGraph::BufferView& view = snapshot_.view();
    for (std::size_t pos = 0; pos < view.buffers.size(); ++pos) {
      pair_of_edge_[view.buffers[pos].data.index()] = pos;
      pair_of_edge_[view.buffers[pos].space.index()] = pos;
    }
  }
  repropagate_();
}

const GraphAnalysis& IncrementalAnalysis::analysis() const {
  snapshot_.require_fresh();
  return analysis_;
}

void IncrementalAnalysis::set_certify(bool enabled) {
  certify_enabled_ = enabled;
  if (!enabled) {
    last_violation_.reset();
  }
}

void IncrementalAnalysis::run_certification_() {
  last_violation_.reset();
  if (!certify_enabled_ || !analysis_.admissible) {
    return;
  }
  const Certificate cert =
      make_certificate(snapshot_.graph(), analysis_, overlay_);
  CheckerOptions checker_options;
  // The engine's ρ/δ live in its overlay, not in the graph; the
  // certificate records the overlay-resolved values.
  checker_options.bind_parameters_to_graph = false;
  const CertificateCheck check =
      check_certificate(snapshot_.graph(), cert, checker_options);
  ++stats_.certificates_checked;
  stats_.certificate_clauses += check.clauses_checked;
  if (!check.ok) {
    stats_.certificate_violations += check.violations.size();
    last_violation_ = check.violations.front();
  }
}

void IncrementalAnalysis::retune(dataflow::ActorId actor, Duration rho) {
  snapshot_.require_fresh();
  (void)snapshot_.graph().actor(actor);  // range check before caching
  ++stats_.queries;
  overlay_.set_response_time(actor, rho);
  apply_rho_change_(actor);
  run_certification_();
}

void IncrementalAnalysis::clear_retune(dataflow::ActorId actor) {
  snapshot_.require_fresh();
  (void)snapshot_.graph().actor(actor);
  ++stats_.queries;
  overlay_.clear_response_time(actor);
  apply_rho_change_(actor);
  run_certification_();
}

void IncrementalAnalysis::set_period(dataflow::ActorId actor, Duration tau) {
  snapshot_.require_fresh();
  ++stats_.queries;
  std::size_t index = npos;
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (constraints_[i].actor == actor) {
      index = i;
      break;
    }
  }
  VRDF_REQUIRE(index != npos,
               "set_period: actor carries no constraint in the set");
  const Duration old = constraints_[index].period;
  constraints_[index].period = tau;
  if (constraints_.size() == 1 && pacing_.ok && tau.is_positive()) {
    // φ is linear in τ, so the cached propagation rescales exactly: every
    // φ is a product of τ with rate ratios and Rational arithmetic
    // canonicalises, making the rescaled values bit-identical to a fresh
    // propagation.  All demands scale by the same positive factor, so
    // which edge binds each minimum cannot change; with one constraint
    // there are no cross-seed checks that could flip either.
    const Rational factor = tau.seconds() / old.seconds();
    for (Duration& phi : pacing_.pacing) {
      phi = Duration(phi.seconds() * factor);
    }
    for (Duration& phi : pacing_.pacing_by_actor) {
      phi = Duration(phi.seconds() * factor);
    }
    pacing_.constraints[index].period = tau;
    ++stats_.pacing_cache_hits;
    resize_from_pacing_();
    run_certification_();
    return;
  }
  repropagate_();
  run_certification_();
}

void IncrementalAnalysis::admit(const ThroughputConstraint& stream) {
  snapshot_.require_fresh();
  ++stats_.queries;
  constraints_.push_back(stream);
  repropagate_();
  run_certification_();
}

void IncrementalAnalysis::remove(dataflow::ActorId actor) {
  snapshot_.require_fresh();
  ++stats_.queries;
  std::size_t index = npos;
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (constraints_[i].actor == actor) {
      index = i;
      break;
    }
  }
  VRDF_REQUIRE(index != npos,
               "remove: actor carries no constraint in the set");
  constraints_.erase(constraints_.begin() +
                     static_cast<std::ptrdiff_t>(index));
  repropagate_();
  run_certification_();
}

void IncrementalAnalysis::set_initial_tokens(dataflow::EdgeId edge,
                                             std::int64_t tokens) {
  snapshot_.require_fresh();
  const VrdfGraph& graph = snapshot_.graph();
  const dataflow::Edge& e = graph.edge(edge);  // range check
  ++stats_.queries;
  std::size_t pos = npos;
  bool is_data_edge = false;
  if (snapshot_.ok() && edge.index() < pair_of_edge_.size()) {
    pos = pair_of_edge_[edge.index()];
    if (pos != npos) {
      is_data_edge = snapshot_.view().buffers[pos].data == edge;
      if (is_data_edge && snapshot_.view().on_cycle[pos]) {
        // The snapshot's feedback classification keyed on which on-cycle
        // data edges carried tokens at capture; an override that crosses
        // zero would describe a differently-classified graph.
        VRDF_REQUIRE(
            (tokens > 0) == (e.initial_tokens > 0),
            "set_initial_tokens: overriding delta across zero on the "
            "on-cycle data edge " +
                graph.actor(e.source).name + " -> " +
                graph.actor(e.target).name +
                " would change the snapshot's feedback classification; "
                "mutate the graph and re-capture the snapshot instead");
      }
    }
  }
  overlay_.set_initial_tokens(edge, tokens);
  ++stats_.pacing_cache_hits;
  if (!pacing_.ok || !rho_ok_) {
    // δ enters neither pacing nor the ρ checks; the failed shape stands.
    render_();
    run_certification_();
    return;
  }
  if (!sized_valid_) {
    lead_ = detail::compute_alignment_leads(graph, overlay_, pacing_);
    stats_.leads_recomputed += graph.actor_count();
    recompute_all_pairs_();
    sized_valid_ = true;
    render_();
    run_certification_();
    return;
  }
  // Pacing and leads are δ-independent; only the pair whose circulating
  // credit moved re-analyses.  A space-edge override affects nothing in
  // the sized analysis (only min_admissible_period reads installed
  // space).
  stats_.leads_reused += graph.actor_count();
  stats_.last_cone_actors = 0;
  if (is_data_edge) {
    const std::optional<std::string> old = std::move(pair_diag_[pos]);
    recompute_pair_(pos);
    ++stats_.pairs_recomputed;
    stats_.pairs_reused += pairs_.size() - 1;
    stats_.last_cone_pairs = 1;
    render_patch_({pos}, pair_diag_[pos] != old);
  } else {
    // Space-edge override: nothing in the sized analysis reads installed
    // space, so the rendered result stands as-is.
    stats_.pairs_reused += pairs_.size();
    stats_.last_cone_pairs = 0;
  }
  run_certification_();
}

void IncrementalAnalysis::apply_rho_change_(dataflow::ActorId actor) {
  const VrdfGraph& graph = snapshot_.graph();
  ++stats_.pacing_cache_hits;  // ρ never enters pacing propagation
  if (!pacing_.ok) {
    render_();
    return;
  }
  if (!rho_ok_ || !sized_valid_) {
    // Coming out of a ρ-blocked or unsized state: full ρ re-check (the
    // diagnostics list in actor order has to be rebuilt from scratch)
    // and, if it passes, a full lead/pair rebuild.
    rho_diags_.clear();
    rho_ok_ = detail::check_schedule_validity(graph, overlay_, pacing_,
                                              rho_diags_);
    if (!rho_ok_) {
      sized_valid_ = false;
      render_();
      return;
    }
    lead_ = detail::compute_alignment_leads(graph, overlay_, pacing_);
    stats_.leads_recomputed += graph.actor_count();
    recompute_all_pairs_();
    sized_valid_ = true;
    render_();
    return;
  }
  // ρ-admissibility is per actor (ρ(v) <= φ(v)) and only this actor's ρ
  // moved, so one comparison decides the whole check.
  if (overlay_.response_time_of(graph, actor) >
      pacing_.pacing_by_actor[actor.index()]) {
    rho_diags_.clear();
    rho_ok_ = detail::check_schedule_validity(graph, overlay_, pacing_,
                                              rho_diags_);
    sized_valid_ = false;
    render_();
    return;
  }
  std::vector<char>& changed_lead = scratch_changed_lead_;
  changed_lead.assign(graph.actor_count(), 0);
  update_lead_cone_(actor, changed_lead);
  // Pair invalidation: pairs touching the retuned actor (its ρ enters
  // their chain-local and consumer slack terms) plus pairs touching any
  // actor whose ω moved (their alignment gap reads both endpoint leads).
  std::vector<char>& dirty_pair = scratch_dirty_pair_;
  dirty_pair.assign(pairs_.size(), 0);
  for (const std::size_t pos : snapshot_.incident_pairs()[actor.index()]) {
    dirty_pair[pos] = 1;
  }
  for (std::size_t i = 0; i < changed_lead.size(); ++i) {
    if (!changed_lead[i]) {
      continue;
    }
    for (const std::size_t pos : snapshot_.incident_pairs()[i]) {
      dirty_pair[pos] = 1;
    }
  }
  std::vector<std::size_t>& dirty = scratch_dirty_;
  dirty.clear();
  bool diag_moved = false;
  for (std::size_t pos = 0; pos < pairs_.size(); ++pos) {
    if (!dirty_pair[pos]) {
      continue;
    }
    const std::optional<std::string> old = std::move(pair_diag_[pos]);
    recompute_pair_(pos);
    diag_moved = diag_moved || pair_diag_[pos] != old;
    dirty.push_back(pos);
  }
  stats_.pairs_recomputed += dirty.size();
  stats_.pairs_reused += pairs_.size() - dirty.size();
  stats_.last_cone_pairs = dirty.size();
  render_patch_(dirty, diag_moved);
}

void IncrementalAnalysis::update_lead_cone_(dataflow::ActorId seed,
                                            std::vector<char>& changed_lead) {
  const VrdfGraph& graph = snapshot_.graph();
  const dataflow::VrdfGraph::BufferView& view = *pacing_.view;
  const std::size_t n = graph.actor_count();

  const auto processed_in_a = [&](dataflow::ActorId v) {
    return pacing_.sink_anchored[v.index()] &&
           !detail::constrained_kind(pacing_, v, /*sink_kind=*/true);
  };
  const auto processed_in_b = [&](dataflow::ActorId v) {
    return !pacing_.sink_anchored[v.index()] &&
           !detail::constrained_kind(pacing_, v, /*sink_kind=*/false);
  };

  std::vector<char>& dirty_a = scratch_dirty_a_;
  std::vector<char>& dirty_b = scratch_dirty_b_;
  dirty_a.assign(n, 0);
  dirty_b.assign(n, 0);
  // ρ(seed) enters the seed's own pass-A formula and — as ρ(source) —
  // the pass-B formula of every consumer behind a source-determined
  // out-edge.
  dirty_a[seed.index()] = 1;
  for (const std::size_t pos : view.out_buffers[seed.index()]) {
    if (pacing_.determined_by[pos] == ConstraintSide::Source) {
      dirty_b[graph.edge(view.buffers[pos].data).target.index()] = 1;
    }
  }

  std::uint64_t recomputed = 0;
  // Pass A — reverse topological order over the dirty sink-anchored
  // actors; a changed ω wakes its pass-A producers (sink-determined
  // in-edges point at actors earlier in the order, visited later in this
  // sweep) and hands off to pass B through source-determined out-edges.
  for (std::size_t i = pacing_.actors_in_order.size(); i-- > 0;) {
    const dataflow::ActorId v = pacing_.actors_in_order[i];
    if (!dirty_a[v.index()] || !processed_in_a(v)) {
      continue;
    }
    const Duration fresh =
        detail::lead_pass_a_of(graph, overlay_, pacing_, lead_, v);
    ++recomputed;
    if (fresh == lead_[v.index()]) {
      continue;  // early stop: the cone ends where ω is unchanged
    }
    lead_[v.index()] = fresh;
    changed_lead[v.index()] = 1;
    for (const std::size_t pos : view.in_buffers[v.index()]) {
      if (pacing_.determined_by[pos] == ConstraintSide::Sink) {
        dirty_a[graph.edge(view.buffers[pos].data).source.index()] = 1;
      }
    }
    for (const std::size_t pos : view.out_buffers[v.index()]) {
      if (pacing_.determined_by[pos] == ConstraintSide::Source) {
        dirty_b[graph.edge(view.buffers[pos].data).target.index()] = 1;
      }
    }
  }
  // Pass B — forward order over the rest; a changed ω wakes the
  // consumers behind source-determined out-edges (pass A never reads a
  // pass-B lead: sink-determined targets are always sink-anchored).
  for (const dataflow::ActorId v : pacing_.actors_in_order) {
    if (!dirty_b[v.index()] || !processed_in_b(v)) {
      continue;
    }
    const Duration fresh =
        detail::lead_pass_b_of(graph, overlay_, pacing_, lead_, v);
    ++recomputed;
    if (fresh == lead_[v.index()]) {
      continue;
    }
    lead_[v.index()] = fresh;
    changed_lead[v.index()] = 1;
    for (const std::size_t pos : view.out_buffers[v.index()]) {
      if (pacing_.determined_by[pos] == ConstraintSide::Source) {
        dirty_b[graph.edge(view.buffers[pos].data).target.index()] = 1;
      }
    }
  }
  stats_.leads_recomputed += recomputed;
  stats_.leads_reused += n - recomputed;
  stats_.last_cone_actors = recomputed;
}

void IncrementalAnalysis::repropagate_() {
  ++stats_.pacing_recomputes;
  pacing_ = compute_pacing(snapshot_, constraints_);
  if (!pacing_.ok) {
    rho_ok_ = false;
    sized_valid_ = false;
    render_();
    return;
  }
  resize_from_pacing_();
}

void IncrementalAnalysis::resize_from_pacing_() {
  const VrdfGraph& graph = snapshot_.graph();
  rho_diags_.clear();
  rho_ok_ = detail::check_schedule_validity(graph, overlay_, pacing_,
                                            rho_diags_);
  if (!rho_ok_) {
    sized_valid_ = false;
    render_();
    return;
  }
  lead_ = detail::compute_alignment_leads(graph, overlay_, pacing_);
  stats_.leads_recomputed += graph.actor_count();
  stats_.last_cone_actors = graph.actor_count();
  recompute_all_pairs_();
  sized_valid_ = true;
  render_();
}

void IncrementalAnalysis::recompute_all_pairs_() {
  pairs_.resize(pacing_.buffers_in_order.size());
  pair_diag_.assign(pacing_.buffers_in_order.size(), std::nullopt);
  for (std::size_t pos = 0; pos < pairs_.size(); ++pos) {
    recompute_pair_(pos);
  }
  stats_.pairs_recomputed += pairs_.size();
  stats_.last_cone_pairs = pairs_.size();
}

void IncrementalAnalysis::recompute_pair_(std::size_t pos) {
  const VrdfGraph& graph = snapshot_.graph();
  std::vector<std::string> diags;
  bool admissible = true;
  pairs_[pos] = detail::analyse_pair(graph, overlay_, pacing_, lead_, pos,
                                     options_, diags, admissible);
  pair_diag_[pos] =
      diags.empty() ? std::nullopt : std::optional<std::string>(diags.front());
}

void IncrementalAnalysis::render_patch_(const std::vector<std::size_t>& dirty,
                                        bool diag_moved) {
  if (!analysis_sized_ || diag_moved) {
    render_();
    return;
  }
  // The lead cone may have moved some ω values; refresh the rendered
  // leads (trivially copyable, O(V), no allocation in steady state).
  for (std::size_t i = 0; i < pacing_.actors_in_order.size(); ++i) {
    analysis_.leads[i] = lead_[pacing_.actors_in_order[i].index()];
  }
  for (const std::size_t pos : dirty) {
    analysis_.total_capacity =
        checked_add(analysis_.total_capacity,
                    pairs_[pos].capacity - analysis_.pairs[pos].capacity);
    analysis_.pairs[pos] = pairs_[pos];
  }
}

void IncrementalAnalysis::render_() {
  // Reproduces the three result shapes of compute_buffer_capacities
  // exactly: pacing-failed (diagnostics only), ρ-blocked (headers and
  // pacing, no pairs), and sized (everything, feedback diagnostics in
  // pair order).
  analysis_sized_ = pacing_.ok && rho_ok_;
  analysis_ = GraphAnalysis{};
  analysis_.rounding = options_.rounding;
  analysis_.diagnostics = pacing_.diagnostics;
  if (!pacing_.ok) {
    return;
  }
  analysis_.side = pacing_.side;
  analysis_.constraints = pacing_.constraints;
  analysis_.constraint_is_sink_kind = pacing_.constraint_is_sink_kind;
  analysis_.constraint_is_source_kind = pacing_.constraint_is_source_kind;
  analysis_.is_chain = pacing_.is_chain;
  analysis_.is_cyclic = pacing_.is_cyclic;
  analysis_.actors_in_order = pacing_.actors_in_order;
  analysis_.pacing = pacing_.pacing;
  if (!rho_ok_) {
    for (const std::string& d : rho_diags_) {
      analysis_.diagnostics.push_back(d);
    }
    return;
  }
  analysis_.leads.reserve(pacing_.actors_in_order.size());
  for (const dataflow::ActorId v : pacing_.actors_in_order) {
    analysis_.leads.push_back(lead_[v.index()]);
  }
  analysis_.pairs = pairs_;
  bool admissible = true;
  for (std::size_t pos = 0; pos < pairs_.size(); ++pos) {
    if (pair_diag_[pos].has_value()) {
      analysis_.diagnostics.push_back(*pair_diag_[pos]);
      admissible = false;
    }
    analysis_.total_capacity =
        checked_add(analysis_.total_capacity, pairs_[pos].capacity);
  }
  analysis_.admissible = admissible;
}

}  // namespace vrdf::analysis
