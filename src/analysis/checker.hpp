// Independent certificate checker — the validation half of the
// translation-validation pair (see analysis/certificate.hpp).
//
// Independence rules (enforced by tools/lint_determinism.py and the
// mutation suite in tests/test_certificate.cpp):
//  * checker.cpp shares NO code with the analyzer: it must not include
//    analysis/pacing.hpp, analysis/buffer_sizing.hpp,
//    analysis/sizing_core.hpp, analysis/incremental.hpp or
//    analysis/period.hpp.  It re-implements its own topological-order
//    verification, anchor reachability, undirected-bridge finding and
//    constraint-coupling scan from the graph structure alone.
//  * Exact Rational arithmetic only — no floating point anywhere.
//  * Every clause is a local (in)equality over the certificate's
//    witnesses, so the whole check is O(E) graph work plus O(C·E) for
//    the per-constraint coverage cones — no fixed-point iteration.
//
// On failure the checker names the violated clause kind, the subject
// (edge or actor), and the two sides of the (in)equality, so a bad
// certificate is a diagnosis, not a boolean.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/certificate.hpp"
#include "dataflow/vrdf_graph.hpp"

namespace vrdf::analysis {

/// The six clause families of a certificate.
enum class ClauseKind {
  /// Pacing witnesses: φ > 0, ρ ≤ φ, φ(constrained) = τ, the per-edge
  /// demand equalities, zero-quantum guards and back-edge flow balance.
  Phi,
  /// Schedule-alignment leads: the anchor zeros and the per-actor
  /// longest-path fixed-point equations over the recorded ω witnesses.
  Omega,
  /// Per-pair capacity terms: Δ producer/consumer, raw token count,
  /// tight-rounding adjacency, the rounded capacity and the total.
  Zeta,
  /// Back-edge cycle bounds: the max-cycle-ratio δ requirement and the
  /// skeleton pairs' zero requirement.
  Delta,
  /// Structure and coverage facts: actor/pair bijections, topological
  /// order, anchor kinds, per-edge pacing sides, variable-rate
  /// placement, constraint coupling and parameter binding.
  Coverage,
  /// Platform clause of deployed analyses: each recorded κ re-derived
  /// from its arbiter terms (slot, wheel, WCET, ceil term / Σ-WCET) in
  /// exact Rationals, and linked to the ρ the capacity clauses ran with.
  Kappa,
};

[[nodiscard]] const char* clause_kind_name(ClauseKind kind);

/// One failed clause: which family, at which edge or actor, and the two
/// sides of the (in)equality that did not hold.
struct ClauseViolation {
  ClauseKind kind = ClauseKind::Coverage;
  /// "buffer 'a -> b'" or "actor 'x'" (or "certificate" for global facts).
  std::string subject;
  /// Exact rendered values of the two sides (empty for structural facts).
  std::string lhs;
  std::string rhs;
  /// Full sentence naming the violated clause.
  std::string message;
};

/// One-line rendering: kind, subject, message and both sides.
[[nodiscard]] std::string describe(const ClauseViolation& violation);

struct CheckerOptions {
  /// Additionally verify that the certificate's recorded ρ/δ parameters
  /// equal the graph's own values.  True for certificates of plain
  /// analyses; the incremental engine disables it because its parameters
  /// live in a ParameterOverlay, not in the graph.
  bool bind_parameters_to_graph = true;
};

struct CertificateCheck {
  bool ok = false;
  /// Individual facts verified (for coverage accounting in reports).
  std::uint64_t clauses_checked = 0;
  /// Every violated clause, in check order (empty when ok).
  std::vector<ClauseViolation> violations;

  /// describe() of the first violation, empty when ok.
  [[nodiscard]] std::string first_violation() const;
};

/// Re-validates every clause of `cert` against `graph` in exact Rational
/// arithmetic.  Never throws on a bad certificate — malformed structure
/// is reported as Coverage violations.
[[nodiscard]] CertificateCheck check_certificate(
    const dataflow::VrdfGraph& graph, const Certificate& cert,
    const CheckerOptions& options = {});

}  // namespace vrdf::analysis
