#include "analysis/certificate.hpp"

#include "util/error.hpp"

namespace vrdf::analysis {

const char* service_policy_name(ServicePolicy policy) {
  switch (policy) {
    case ServicePolicy::TdmSlotGranular: return "tdm-slot-granular";
    case ServicePolicy::TdmLatencyRate: return "tdm-latency-rate";
    case ServicePolicy::RoundRobin: return "round-robin";
    case ServicePolicy::RoundRobinLatencyRate: return "round-robin-latency-rate";
  }
  return "unknown";
}

Certificate make_certificate(const dataflow::VrdfGraph& graph,
                             const GraphAnalysis& analysis,
                             const ParameterOverlay& overlay) {
  VRDF_REQUIRE(analysis.admissible,
               "cannot emit a certificate for an inadmissible analysis");
  VRDF_REQUIRE(analysis.leads.size() == analysis.actors_in_order.size(),
               "analysis carries no alignment leads; certificates require "
               "the sized result shape");
  VRDF_REQUIRE(analysis.pacing.size() == analysis.actors_in_order.size(),
               "analysis pacing vector does not match its actor order");

  Certificate cert;
  cert.constraints = analysis.constraints;
  cert.constraint_is_sink_kind = analysis.constraint_is_sink_kind;
  cert.constraint_is_source_kind = analysis.constraint_is_source_kind;
  cert.rounding = analysis.rounding;
  cert.total_capacity = analysis.total_capacity;

  cert.actors.reserve(analysis.actors_in_order.size());
  for (std::size_t i = 0; i < analysis.actors_in_order.size(); ++i) {
    const dataflow::ActorId v = analysis.actors_in_order[i];
    ActorFact fact;
    fact.actor = v;
    fact.phi = analysis.pacing[i];
    fact.lead = analysis.leads[i];
    fact.rho = overlay.response_time_of(graph, v);
    cert.actors.push_back(fact);
  }

  // Constraint index by actor, for the tight-rounding adjacency claim.
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> constraint_of(graph.actor_count(), kNone);
  for (std::size_t c = 0; c < cert.constraints.size(); ++c) {
    constraint_of[cert.constraints[c].actor.index()] = c;
  }

  cert.pairs.reserve(analysis.pairs.size());
  for (const PairAnalysis& pair : analysis.pairs) {
    PairFact fact;
    fact.buffer = pair.buffer;
    fact.producer = pair.producer;
    fact.consumer = pair.consumer;
    fact.side = pair.determined_by;
    fact.is_static = pair.is_static;
    fact.is_feedback = pair.is_feedback;
    fact.delta_producer = pair.delta_producer;
    fact.delta_consumer = pair.delta_consumer;
    fact.raw_tokens = pair.raw_tokens;
    fact.initial_tokens = pair.initial_tokens;
    fact.required_initial_tokens = pair.required_initial_tokens;
    fact.capacity = pair.capacity;
    // The tight-rounding predicate of analyse_pair, transcribed from the
    // analysis' own side/kind assignments: a static pair directly
    // adjacent to its constrained anchor on the rate-determining side,
    // and never a back-edge.
    const dataflow::ActorId anchor =
        fact.side == ConstraintSide::Sink ? fact.consumer : fact.producer;
    const std::size_t c = constraint_of[anchor.index()];
    const bool adjacent =
        c != kNone && (fact.side == ConstraintSide::Sink
                           ? cert.constraint_is_sink_kind[c]
                           : cert.constraint_is_source_kind[c]);
    fact.tight_rounding = fact.is_static && adjacent && !fact.is_feedback;
    cert.pairs.push_back(fact);
  }
  return cert;
}

}  // namespace vrdf::analysis
