// Deployment analysis: binds a TaskGraph to a shared Platform and sizes
// buffers from *derived* response times — the paper's Sec 3.1 → 3.3 → 4
// story end-to-end.
//
// The paper assumes every task's worst-case response time κ(w) is handed
// down by a run-time arbiter.  This module closes that loop: each task's
// binding on the platform yields a uniform sched::ServiceModel, κ is
// derived from it (the policy-exact slot-granular TDM bound, the
// round-robin sum, or the conservative latency-rate abstraction), the
// task graph is instantiated as a VRDF model with ρ(v) = κ(w) via the
// existing Sec 3.3 construction, and the capacity analysis runs
// unchanged on top.
//
// Allocation changes are *parameter* changes: a TDM slot retune moves
// only κ of the retuned task, so the DeploymentController routes it
// through IncrementalAnalysis::retune — the cached pacing is reused
// verbatim and only the ω cone re-derives — with the platform state and
// the analysis overlay rolled back together when the candidate is
// rejected.  Rejections name what was binding: the TDM wheel (platform
// slack) or the violated throughput constraint (analysis diagnostic).
//
// Certified deployments additionally carry a platform clause
// (PlatformFact per actor: the κ-derivation terms) that the independent
// checker re-validates in exact Rationals (ClauseKind::Kappa).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/admission.hpp"
#include "analysis/certificate.hpp"
#include "analysis/checker.hpp"
#include "analysis/snapshot.hpp"
#include "analysis/types.hpp"
#include "sched/platform.hpp"
#include "taskgraph/task_graph.hpp"

namespace vrdf::analysis {

/// How κ is derived from each binding's service model.
enum class KappaDerivation {
  /// The policy-exact bound: slot-granular TDM or the round-robin sum.
  PolicyExact,
  /// The latency-rate abstraction of the allocation — conservative
  /// (never smaller), but composable across arbiters.
  LatencyRate,
};

[[nodiscard]] const char* kappa_derivation_name(KappaDerivation derivation);

/// A stream's throughput requirement, named on a task (resolved to the
/// constructed actor by analyze_deployment).
struct DeploymentConstraint {
  std::string task;
  Duration period;
};

/// One task's derived response time with its full derivation record.
struct DerivedKappa {
  taskgraph::TaskId task;
  std::string task_name;
  std::size_t processor = 0;
  sched::ServiceModel service;
  KappaDerivation derivation = KappaDerivation::PolicyExact;
  Duration kappa;
};

struct DeploymentOptions {
  KappaDerivation derivation = KappaDerivation::PolicyExact;
  AnalysisOptions analysis;
  /// Emit a certificate (platform clause included) for admissible
  /// results and re-validate it with the independent checker.
  bool certify = false;
};

struct DeploymentResult {
  /// False when the capacity analysis rejects (κ too large for a
  /// constraint, etc.); diagnostics carry the analysis' reasons.
  bool admissible = false;
  std::vector<std::string> diagnostics;
  /// One entry per task, in TaskId order.
  std::vector<DerivedKappa> kappas;
  /// The Sec 3.3 construction with ρ(v) = derived κ.
  taskgraph::VrdfConstruction construction;
  /// The stream constraints resolved to actors.
  ConstraintSet constraints;
  GraphAnalysis analysis;
  /// Certify mode, admissible results only: the platform-claused
  /// certificate and the independent checker's verdict.
  std::optional<Certificate> certificate;
  std::optional<CertificateCheck> certificate_check;
};

/// Derives κ for every task of `tasks` from its binding on `platform`.
/// Throws ContractError when a task is unbound (every task must be
/// mapped before deployment analysis makes sense).
[[nodiscard]] std::vector<DerivedKappa> derive_response_times(
    const taskgraph::TaskGraph& tasks, const sched::Platform& platform,
    KappaDerivation derivation = KappaDerivation::PolicyExact);

/// Converts one derived κ into its certificate platform fact.
[[nodiscard]] PlatformFact to_platform_fact(const DerivedKappa& derived,
                                            dataflow::ActorId actor);

/// Attaches the platform clause (one PlatformFact per task, in κ order)
/// to a certificate emitted for the deployment's constructed graph.
void attach_platform_clause(Certificate& cert,
                            const std::vector<DerivedKappa>& kappas,
                            const std::vector<dataflow::ActorId>& actor_of_task);

/// One-shot deployment analysis: derive κ, build the VRDF model, run the
/// capacity analysis, optionally certify with the platform clause.
/// Throws ContractError when a task is unbound or a constraint names an
/// unknown task; an *inadmissible analysis* is a result, not an error.
[[nodiscard]] DeploymentResult analyze_deployment(
    const taskgraph::TaskGraph& tasks, const sched::Platform& platform,
    const std::vector<DeploymentConstraint>& streams,
    const DeploymentOptions& options = {});

/// Decision mirror of AdmissionDecision with the platform dimension: on
/// rejection, `binding_constraint` names either the TDM wheel (the
/// platform rejected before any analysis ran — `wheel_binding` is true)
/// or the throughput diagnostic that blocked the candidate.
struct DeploymentDecision {
  bool accepted = false;
  bool wheel_binding = false;
  std::string binding_constraint;
  std::vector<std::string> diagnostics;
  /// On acceptance: Σζ(after) − Σζ(before); zero on rejection.
  std::int64_t capacity_delta = 0;
  /// Σζ of the serviced state after the decision.
  std::int64_t total_capacity = 0;
};

/// Deployment-aware admission control.  Wraps an AdmissionController so
/// every allocation change becomes a ρ retune routed through
/// ParameterOverlay / IncrementalAnalysis (cached pacing reused), with
/// the platform and the analysis rolled back *together* on rejection —
/// the serviced platform+analysis state never degrades.
class DeploymentController {
public:
  /// The initial deployment must be fully bound and admissible
  /// (ContractError otherwise, mirroring AdmissionController).
  DeploymentController(const taskgraph::TaskGraph& tasks,
                       sched::Platform platform,
                       std::vector<DeploymentConstraint> streams,
                       DeploymentOptions options = {});

  /// May `task`'s TDM slot budget move to `slot`?  Checks wheel slack
  /// first (a shortfall rejects naming the wheel, before any analysis
  /// work), then routes the re-derived κ through the incremental engine
  /// (a throughput rejection names the binding diagnostic).
  DeploymentDecision set_slot(const std::string& task, Duration slot);

  /// May a new stream pin `task` at `period`?  When `slot` is given, the
  /// task's TDM slot is retuned first (e.g. granting the stream more
  /// wheel time); both steps roll back if either rejects.
  DeploymentDecision admit(const std::string& task, Duration period,
                           std::optional<Duration> slot = std::nullopt);

  /// Stops the stream pinned at `task`.
  DeploymentDecision remove(const std::string& task);

  /// May the stream pinned at `task` move to `period`?
  DeploymentDecision set_period(const std::string& task, Duration period);

  /// Certificate gating: every accepted decision's state is transcribed
  /// into a platform-claused certificate and re-validated by the
  /// independent checker; a clause violation turns the decision into a
  /// rejection (platform and analysis rolled back) naming the clause.
  void set_require_certificate(bool require);

  /// The serviced (always admissible) analysis state.
  [[nodiscard]] const GraphAnalysis& analysis() const {
    return controller_->analysis();
  }
  [[nodiscard]] const sched::Platform& platform() const { return platform_; }
  [[nodiscard]] const dataflow::VrdfGraph& graph() const {
    return construction_.graph;
  }
  [[nodiscard]] const IncrementalAnalysis& engine() const {
    return controller_->engine();
  }
  [[nodiscard]] const AdmissionController& admission() const {
    return *controller_;
  }
  /// Derived κ of a task in the serviced state.
  [[nodiscard]] Duration kappa(const std::string& task) const;
  [[nodiscard]] dataflow::ActorId actor_of(const std::string& task) const;
  /// Platform-claused certificate of the current serviced state.
  [[nodiscard]] Certificate certificate() const;

private:
  [[nodiscard]] DeploymentDecision from_inner_(const AdmissionDecision& inner);
  /// Certificate gate on an accepted decision; returns nullopt when the
  /// certificate validates, else the violation description (caller rolls
  /// back).
  [[nodiscard]] std::optional<std::string> certificate_gate_();
  void update_kappa_(const std::string& task,
                     const sched::ServiceModel& service, Duration new_kappa);
  /// set_slot with the certificate gate suppressed — the admit() path
  /// gates once over the combined slot-grant + admission.
  [[nodiscard]] DeploymentDecision set_slot_ungated_(const std::string& task,
                                                     Duration slot);

  taskgraph::TaskGraph tasks_;
  sched::Platform platform_;
  DeploymentOptions options_;
  taskgraph::VrdfConstruction construction_;
  std::vector<DerivedKappa> kappas_;
  // Snapshot must outlive the controller; both live on the heap so the
  // controller (which holds a snapshot view) never sees a moved-from
  // snapshot.
  std::unique_ptr<TopologySnapshot> snapshot_;
  std::unique_ptr<AdmissionController> controller_;
  bool require_certificate_ = false;
};

}  // namespace vrdf::analysis
