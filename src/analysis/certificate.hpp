// Proof-carrying capacity certificates (translation validation for the
// buffer-capacity analysis).
//
// A Certificate is a compact, self-contained transcript of everything an
// admissible GraphAnalysis claims: per-actor pacing witnesses φ and
// schedule-alignment leads ω, the per-actor ρ and per-edge δ the analysis
// actually ran with (graph values or overlay overrides), per-pair capacity
// facts with their rounding/adjacency terms, and the back-edge
// cycle-ratio bounds.  Emission is a *pure transcription* — it computes
// nothing the analysis did not already compute — so a certificate is
// exactly as trustworthy as the analysis that produced it.
//
// The trust upgrade comes from analysis/checker.hpp: an independent
// validator (no code shared with pacing.cpp / buffer_sizing.cpp) that
// re-derives every clause from the graph structure and the certificate's
// witnesses in exact Rational arithmetic, in O(E).  Analysis + checker
// together give translation validation: every analysis result — full,
// incremental patch, or fleet item — can be statically verified instead
// of trusted.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/snapshot.hpp"
#include "analysis/types.hpp"
#include "dataflow/vrdf_graph.hpp"
#include "util/time.hpp"

namespace vrdf::analysis {

/// Per-actor facts: the pacing witness φ(v), the alignment lead ω(v),
/// and the response time ρ(v) the analysis ran with (overlay-resolved).
struct ActorFact {
  dataflow::ActorId actor;
  Duration phi;
  Duration lead;
  Duration rho;
};

/// Per-pair facts — the Eq (1)–(4) terms plus the claims the checker
/// re-derives (rate-determining side, staticness, tight rounding,
/// feedback δ bound).
struct PairFact {
  dataflow::BufferEdges buffer;
  dataflow::ActorId producer;
  dataflow::ActorId consumer;
  ConstraintSide side = ConstraintSide::Sink;
  bool is_static = false;
  bool is_feedback = false;
  /// Claim that the pair rounded with ⌈x⌉ instead of ⌊x⌋+1 under
  /// RoundingMode::PaperPublished (static pair adjacent to its
  /// constrained anchor on the rate-determining side, not a back-edge).
  /// The checker re-derives the predicate and rejects a mismatch.
  bool tight_rounding = false;
  Duration delta_producer;
  Duration delta_consumer;
  Rational raw_tokens;
  /// δ(data edge) the analysis ran with (overlay-resolved).
  std::int64_t initial_tokens = 0;
  /// Back-edges: the recorded max-cycle-ratio bound; 0 on skeleton edges.
  std::int64_t required_initial_tokens = 0;
  std::int64_t capacity = 0;
};

/// κ-derivation policy recorded in a platform clause.  TdmSlotGranular
/// and RoundRobin are the policy-exact bounds; the LatencyRate variants
/// are the (conservative) latency-rate abstractions of the same arbiter
/// terms.
enum class ServicePolicy {
  TdmSlotGranular,
  TdmLatencyRate,
  RoundRobin,
  RoundRobinLatencyRate,
};

[[nodiscard]] const char* service_policy_name(ServicePolicy policy);

/// Per-actor κ-derivation fact for deployed analyses: the arbiter terms
/// (slot, wheel, WCET, ceil term / Σ-WCET) and the derived κ, which must
/// equal the ρ recorded in the actor's ActorFact.  The checker re-derives
/// κ from the terms in exact Rationals (ClauseKind::Kappa) without any
/// sched includes — the platform clause is self-contained.
struct PlatformFact {
  dataflow::ActorId actor;
  ServicePolicy policy = ServicePolicy::TdmSlotGranular;
  /// The task's own worst-case execution time C.
  Duration wcet;
  /// TDM terms (zero for round-robin policies).
  Duration slot;
  Duration wheel;
  /// Round-robin term: Σ WCET over the processor's tasks (zero for TDM).
  Duration total_wcet;
  /// TDM slot-granular: the ⌈C/slot⌉ witness; 0 otherwise.
  std::int64_t ceil_term = 0;
  /// Derived κ — the ρ the analysis ran with.
  Duration kappa;
};

/// The complete certificate of one admissible analysis.
struct Certificate {
  ConstraintSet constraints;
  /// Per constraint index: anchor kinds (sink-kind / source-kind region).
  std::vector<bool> constraint_is_sink_kind;
  std::vector<bool> constraint_is_source_kind;
  RoundingMode rounding = RoundingMode::PaperPublished;
  /// One entry per actor, in the analysis' topological order.
  std::vector<ActorFact> actors;
  /// One entry per buffer, in the analysis' pair order.
  std::vector<PairFact> pairs;
  /// Platform clause: κ-derivation facts, one per deployed actor.  Empty
  /// for undeployed analyses (the clause is then vacuously valid).  Filled
  /// by analysis/deployment.cpp via attach_platform_clause().
  std::vector<PlatformFact> platform;
  std::int64_t total_capacity = 0;
};

/// Transcribes an admissible analysis into a certificate.  `overlay`
/// must be the overlay the analysis ran with (empty for the plain graph
/// entry points) — the certificate records the overlay-resolved ρ/δ so
/// the checker validates the parameters that were actually analysed.
/// Throws ContractError when the analysis is not admissible or does not
/// carry its alignment leads (pre-PR-9 result shapes).
[[nodiscard]] Certificate make_certificate(const dataflow::VrdfGraph& graph,
                                           const GraphAnalysis& analysis,
                                           const ParameterOverlay& overlay = {});

}  // namespace vrdf::analysis
