// Buffer-capacity computation (Sec 4) — the paper's main contribution,
// generalised from chains to fork-join graphs and to cyclic graphs whose
// back-edges carry initial tokens: the per-pair bound below only needs
// the pacing of the buffer's own endpoints, so it applies to every buffer
// edge once pacing has been propagated per edge (see analysis/pacing.hpp).
// A back-edge's capacity additionally covers its circulating tokens (the
// δ initial tokens come on top of the schedule slack), and the throughput
// constraint is gated by the max-cycle-ratio bound: period ≥ cycle
// latency / initial-token credit for every directed cycle.
//
// For every producer-consumer pair of the graph the algorithm:
//  1. takes the pair's bound rate s = φ/γ̂ (sink mode) or φ/π̂ (source
//     mode) from pacing propagation;
//  2. forms the minimum distance between the linear upper bound on space
//     production times and the linear lower bound on space consumption
//     times, Eq (3):
//        Δ = ρ(v_a) + ρ(v_b) + s·(π̂ − 1) + s·(γ̂ − 1)
//     (the paper writes the slack terms as τ/π̂(e_ba)·(γ̂(e_ba)−1) and
//      τ/γ̂(e_ab)·(γ̂(e_ab)−1); with γ̂(e_ba) = π̂(e_ab) and
//      π̂(e_ba) = γ̂(e_ab) both reduce to the form above);
//  3. converts the time distance into tokens, Eq (4): x = Δ/s, and rounds
//     per RoundingMode.
//
// Sufficiency rests on two model properties (Sec 3.2): monotonicity (an
// earlier start never delays anything — so the self-timed run-time
// schedule is never later than the constructed one) and linearity (a
// consumer-side delay of Δ when it produces/consumes less than its maximum
// quantum delays every other firing by at most Δ — so the periodic sink
// schedule stays feasible).
#pragma once

#include "analysis/snapshot.hpp"
#include "analysis/types.hpp"
#include "dataflow/vrdf_graph.hpp"

namespace vrdf::analysis {

/// Computes buffer capacities for a VRDF graph (chain, fork-join DAG, or
/// cyclic with tokened back-edges) so that the throughput constraint is
/// satisfied for *every* admissible sequence of production/consumption
/// quanta.  Returns an inadmissible result with diagnostics (never
/// throws) for model-level infeasibility:
///  * the graph is not a consistent network of buffers, or contains a
///    token-free directed cycle (validate_cyclic_model);
///  * the constrained actor is not the graph's unique data source or sink;
///  * a zero minimum quantum on the rate-determining side;
///  * a response time exceeding the actor's pacing, ρ(v) > φ(v)
///    (the producer/consumer schedule validity constraints of Sec 4.2);
///  * a directed cycle whose latency exceeds its initial-token credit —
///    the max-cycle-ratio bound period ≥ cycle latency / initial tokens.
[[nodiscard]] GraphAnalysis compute_buffer_capacities(
    const dataflow::VrdfGraph& graph, const ThroughputConstraint& constraint,
    const AnalysisOptions& options = {});

/// Constraint-set overload: sizes a graph with several simultaneous
/// throughput constraints (e.g. an audio and a video presenter, or a
/// pinned source *and* sink).  Every constrained actor must be a data
/// source or sink of the skeleton, every actor must be paced by some
/// constraint, and the periods must be mutually flow-consistent — the
/// pacing propagation rejects anything else with diagnostics naming the
/// binding constraint and path (see analysis/pacing.hpp).  Per pair the
/// rate-determining side is assigned individually (PairAnalysis::
/// determined_by); with exactly one constraint the result is bit-for-bit
/// the single-constraint analysis.
[[nodiscard]] GraphAnalysis compute_buffer_capacities(
    const dataflow::VrdfGraph& graph, const ConstraintSet& constraints,
    const AnalysisOptions& options = {});

/// Snapshot entry point: identical semantics and bit-identical results,
/// but the model validation and buffer-network view come from the
/// captured TopologySnapshot, and per-actor ρ / per-edge δ reads go
/// through the ParameterOverlay (empty overlay = the graph's own
/// values).  The graph overloads above are exactly
/// `compute_buffer_capacities(TopologySnapshot(graph), ...)` with an
/// empty overlay.
[[nodiscard]] GraphAnalysis compute_buffer_capacities(
    const TopologySnapshot& snapshot, const ConstraintSet& constraints,
    const AnalysisOptions& options = {}, const ParameterOverlay& overlay = {});

/// Writes the computed capacities into the graph: δ(space edge) of every
/// analysed buffer is set to the pair's capacity minus the containers the
/// buffer's initial data tokens occupy.  Requires an admissible analysis
/// of this very graph.
void apply_capacities(dataflow::VrdfGraph& graph, const GraphAnalysis& analysis);

/// Maximal admissible worst-case response times (the paper derives the MP3
/// response times 51.2/24/10/0.0227 ms this way): κ(w) may be at most
/// φ(v) for the throughput constraint to be satisfiable.  Returned in
/// topological order together with the actor ids; inadmissible graphs
/// yield an empty vector plus diagnostics.
struct ResponseTimeBudget {
  bool ok = false;
  std::vector<std::string> diagnostics;
  std::vector<dataflow::ActorId> actors_in_order;
  std::vector<Duration> max_response_times;
};
[[nodiscard]] ResponseTimeBudget max_admissible_response_times(
    const dataflow::VrdfGraph& graph, const ThroughputConstraint& constraint);

/// Constraint-set overload of the response-time budget.
[[nodiscard]] ResponseTimeBudget max_admissible_response_times(
    const dataflow::VrdfGraph& graph, const ConstraintSet& constraints);

}  // namespace vrdf::analysis
