// Immutable topology snapshot + parameter overlay — the caching substrate
// of the incremental re-analysis engine (analysis/incremental.hpp).
//
// A full capacity analysis spends a large share of its time on work that
// depends only on the graph's *structure* (connectivity validation, SCC
// condensation and feedback-edge classification, topological ordering,
// bridge finding): none of it changes when an actor is retuned, a
// constraint's period moves, or a buffer is resized.  TopologySnapshot
// captures that structural artifact once — it is exactly the separable
// part of VrdfGraph::buffer_view() plus validate_cyclic_model — and every
// analysis entry point accepts it in place of the raw graph.
//
// The *parameters* that do change between queries (per-actor ρ, per-edge
// initial tokens / installed capacities) are layered on top as a
// ParameterOverlay: a sparse set of overrides consulted by the analysis
// instead of mutating the graph.  Constraint periods are not part of the
// overlay — they are inputs of each analysis call.
//
// Staleness: a snapshot records the graph's mutation revision at capture
// time.  Using a stale snapshot would silently answer from memoized
// structure that no longer matches the graph, so every consumer calls
// require_fresh(), which throws a ContractError naming the mutation (the
// actor or edge touched) instead.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dataflow/vrdf_graph.hpp"
#include "util/error.hpp"
#include "util/time.hpp"

namespace vrdf::analysis {

class TopologySnapshot {
public:
  /// Captures the structural artifact of `graph`: connectivity/pairing
  /// validation, cycle classification and the buffer network view.  The
  /// graph must outlive the snapshot (the snapshot keeps a reference);
  /// mutations after capture are detected, not followed.
  explicit TopologySnapshot(const dataflow::VrdfGraph& graph);

  /// False when the graph is not a consistent buffer network whose cycles
  /// all break at tokened back-edges; diagnostics() then carries the
  /// validation errors (exactly the strings compute_pacing would emit).
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::vector<std::string>& diagnostics() const {
    return diagnostics_;
  }

  [[nodiscard]] const dataflow::VrdfGraph& graph() const { return *graph_; }
  /// The buffer network view (only when ok()).
  [[nodiscard]] const dataflow::VrdfGraph::BufferView& view() const {
    VRDF_REQUIRE(view_ != nullptr, "snapshot of an invalid model has no view");
    return *view_;
  }
  /// Shared ownership of the view, so PacingResult can alias it without
  /// copying the topological structure per query.
  [[nodiscard]] std::shared_ptr<const dataflow::VrdfGraph::BufferView>
  view_ptr() const {
    return view_;
  }

  /// Per actor index: positions (in view().buffers order) of every buffer
  /// the actor produces into or consumes from, *including* feedback
  /// buffers (which the view's in/out adjacency deliberately excludes).
  /// This is the pair-invalidation index of the incremental engine,
  /// built on first use so one-shot analyses never pay for it.
  [[nodiscard]] const std::vector<std::vector<std::size_t>>& incident_pairs()
      const;

  /// Graph revision at capture time.
  [[nodiscard]] std::uint64_t revision() const { return revision_; }
  /// True when the underlying graph was mutated after capture.
  [[nodiscard]] bool stale() const { return graph_->revision() != revision_; }
  /// Throws ContractError naming the offending mutation (actor/edge) when
  /// the snapshot is stale.  Every query of the incremental engine and the
  /// admission controller goes through this guard.
  void require_fresh() const;

private:
  const dataflow::VrdfGraph* graph_;
  std::uint64_t revision_;
  bool ok_ = false;
  std::vector<std::string> diagnostics_;
  std::shared_ptr<const dataflow::VrdfGraph::BufferView> view_;
  /// Lazily built by incident_pairs(); empty until the incremental engine
  /// first asks for it (analysis is single-threaded by contract).
  mutable std::vector<std::vector<std::size_t>> incident_pairs_;
  mutable bool incident_pairs_built_ = false;
};

/// Sparse per-actor / per-edge parameter overrides applied on top of a
/// snapshot.  An empty overlay reproduces the graph's own values — the
/// graph-based analysis entry points are exactly snapshot + empty overlay.
struct ParameterOverlay {
  /// ρ override by ActorId::index(); empty vector = no overrides.
  std::vector<std::optional<Duration>> response_time;
  /// δ override by EdgeId::index().  On a buffer's *data* edge this is the
  /// circulating-token count (feedback credits); on the *space* edge the
  /// installed free-container count read by min_admissible_period.
  /// Contract: an override must not change the snapshot's feedback
  /// classification — a data edge on a directed cycle must keep δ ≥ 1.
  std::vector<std::optional<std::int64_t>> initial_tokens;

  [[nodiscard]] bool empty() const;

  /// ρ(actor) with the override applied.
  [[nodiscard]] const Duration& response_time_of(
      const dataflow::VrdfGraph& graph, dataflow::ActorId actor) const;
  /// δ(edge) with the override applied.
  [[nodiscard]] std::int64_t initial_tokens_of(
      const dataflow::VrdfGraph& graph, dataflow::EdgeId edge) const;
  /// Installed total container count of a buffer (data δ + space δ), both
  /// sides override-aware — the overlay twin of VrdfGraph::buffer_capacity.
  [[nodiscard]] std::int64_t buffer_capacity_of(
      const dataflow::VrdfGraph& graph,
      const dataflow::BufferEdges& buffer) const;

  void set_response_time(dataflow::ActorId actor, Duration rho);
  void set_initial_tokens(dataflow::EdgeId edge, std::int64_t tokens);
  /// Removes the override for `actor` (reverts to the graph's ρ).
  void clear_response_time(dataflow::ActorId actor);
};

}  // namespace vrdf::analysis
