// Admission-control front end over the incremental re-analysis engine.
//
// A deployed media platform faces capacity questions at run time: may a
// new stream (a throughput constraint) start?  May a codec be moved to a
// slower core (a retune)?  May a stream change rate (a period move)?
// Each question is a what-if against the live analysis state; the
// controller answers by applying the change to the IncrementalAnalysis,
// reading admissibility off the result, and — on rejection — rolling the
// change back so the serviced state never degrades.  Every operation is
// self-inverse through the engine, so rollback is another (cheap)
// incremental step, not a state copy.
//
// Decisions carry the binding constraint on rejection (the first
// diagnostic of the rejected candidate state: the ρ-violation, starving
// back-edge, or flow-consistency conflict that blocked the change) and
// the buffer-capacity delta on acceptance (the change in the summed
// per-pair requirement Σζ — what the change costs or releases in
// containers across the graph).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/incremental.hpp"
#include "analysis/snapshot.hpp"
#include "analysis/types.hpp"
#include "dataflow/vrdf_graph.hpp"

namespace vrdf::analysis {

struct AdmissionDecision {
  /// True when the candidate state is admissible and was kept.
  bool accepted = false;
  /// On rejection: the diagnostic that blocked the change (first
  /// diagnostic of the rejected candidate analysis).  Empty on
  /// acceptance.
  std::string binding_constraint;
  /// On rejection: the candidate state's full diagnostics.
  std::vector<std::string> diagnostics;
  /// On acceptance: Σ capacity(after) − Σ capacity(before) over all
  /// pairs — the container cost (+) or release (−) of the change.  Zero
  /// on rejection (the state was rolled back).
  std::int64_t capacity_delta = 0;
  /// Σ capacity of the serviced state after the decision.
  std::int64_t total_capacity = 0;
};

/// Long-lived admission-control service over one TopologySnapshot.  The
/// serviced state is always admissible: the initial constraint set must
/// be admissible (ContractError otherwise), and rejected changes are
/// rolled back.  Mutating the underlying graph invalidates the
/// controller; the next call throws a ContractError naming the mutation.
class AdmissionController {
public:
  AdmissionController(const TopologySnapshot& snapshot,
                      ConstraintSet initial_streams,
                      AnalysisOptions options = {});

  /// May the new stream start?  (Adds its throughput constraint.)  The
  /// actor must not already carry a constraint.
  AdmissionDecision admit(const ThroughputConstraint& stream);
  /// Stops the stream pinned at `actor`.  Removal rejects (and rolls
  /// back) when the remaining constraints no longer pace the whole
  /// graph — an actor or edge outside every remaining demand cone has
  /// no derivable rate.  Removing the *last* stream is refused with
  /// ContractError: an unconstrained graph has no analysis at all.
  /// Rollback re-admits the stream at the end of the set (stream order
  /// may change across a rejected removal).
  AdmissionDecision remove(dataflow::ActorId actor);
  /// May `actor` run with worst-case response time `rho`?
  AdmissionDecision retune(dataflow::ActorId actor, Duration rho);
  /// May the stream pinned at `actor` move to period `tau`?
  AdmissionDecision set_period(dataflow::ActorId actor, Duration tau);

  /// Certificate gating: puts the engine in certify mode, so every
  /// decision's candidate analysis is transcribed into a certificate and
  /// re-validated by the independent checker (analysis/checker.hpp)
  /// before it may be committed.  An admissible candidate whose
  /// certificate fails a clause is treated as a rejection — the
  /// violation becomes the binding constraint and the change rolls
  /// back — so a checker/analyzer disagreement can never enter the
  /// serviced state.
  void set_require_certificate(bool require);
  [[nodiscard]] bool require_certificate() const {
    return require_certificate_;
  }

  /// The serviced (always admissible) analysis state.
  [[nodiscard]] const GraphAnalysis& analysis() const {
    return engine_.analysis();
  }
  [[nodiscard]] const IncrementalAnalysis& engine() const { return engine_; }
  [[nodiscard]] const ConstraintSet& streams() const {
    return engine_.constraints();
  }

private:
  AdmissionDecision decide_(std::int64_t total_before);
  IncrementalAnalysis engine_;
  bool require_certificate_ = false;
};

}  // namespace vrdf::analysis
