#include "analysis/period.hpp"

#include <sstream>

#include "analysis/buffer_sizing.hpp"
#include "analysis/pacing.hpp"

namespace vrdf::analysis {

using dataflow::Edge;
using dataflow::VrdfGraph;

namespace {

/// A lead-time value that is affine in the period: resp + rate·τ.  The
/// schedule-alignment propagation of compute_buffer_capacities only mixes
/// response times (τ-independent) and bound-rate terms (proportional to
/// τ), so tracking the two components separately turns each pair's
/// sufficiency condition into a closed-form bound on τ.
struct AffineLead {
  Rational resp;  // seconds
  Rational rate;  // seconds per unit period

  [[nodiscard]] Rational at(const Rational& tau) const {
    return resp + rate * tau;
  }

  friend bool operator==(const AffineLead& a, const AffineLead& b) {
    return a.resp == b.resp && a.rate == b.rate;
  }
};

}  // namespace

MinPeriodResult min_admissible_period(const VrdfGraph& graph,
                                      dataflow::ActorId actor,
                                      const AnalysisOptions& options) {
  return min_admissible_period(TopologySnapshot(graph), actor, options);
}

MinPeriodResult min_admissible_period(const TopologySnapshot& snapshot,
                                      dataflow::ActorId actor,
                                      const AnalysisOptions& options,
                                      const ParameterOverlay& overlay) {
  MinPeriodResult result;

  // Pacing coefficients c_v are rate-only: run the propagation with a unit
  // period and read φ(v) as c_v.
  const PacingResult unit = compute_pacing(
      snapshot, ThroughputConstraint{actor, seconds(Rational(1))});
  if (!unit.ok) {
    result.diagnostics = unit.diagnostics;
    return result;
  }
  const VrdfGraph& graph = snapshot.graph();
  const dataflow::VrdfGraph::BufferView& view = *unit.view;

  // Per-edge bound-rate coefficient: s_e = (c_near / q_e)·τ, where the
  // near endpoint is the pair's rate-determining side (per-edge since an
  // interior pin splits the graph into a sink-determined upstream cone
  // and a source-determined downstream cone; with an end constraint every
  // edge carries the constraint's global side, as before).
  const auto rate_coefficient = [&](std::size_t pos, const Edge& data) {
    return unit.determined_by[pos] == ConstraintSide::Sink
               ? unit.pacing_of(data.target).seconds() /
                     Rational(data.consumption.max())
               : unit.pacing_of(data.source).seconds() /
                     Rational(data.production.max());
  };

  // Schedule alignment ω(v) as an affine function of τ (see
  // compute_buffer_capacities): the two-pass split of the forward
  // analysis — reverse topological order over the sink-anchored region,
  // forward over the rest — with the constrained actor anchoring both
  // passes at ω = 0.  The max over a fork's edges can switch with τ, so
  // the binding structure is taken at a candidate period and iterated to
  // a fixed point below; the final answer is forward-verified.
  const auto leads_at = [&](const Rational& tau) {
    std::vector<AffineLead> lead(graph.actor_count());
    const auto consider = [&](AffineLead& longest, const AffineLead& candidate) {
      if (candidate.at(tau) > longest.at(tau)) {
        longest = candidate;
      }
    };
    // Pass A — sink-anchored region.
    for (auto it = unit.actors_in_order.rbegin();
         it != unit.actors_in_order.rend(); ++it) {
      const dataflow::ActorId v = *it;
      if (!unit.sink_anchored[v.index()] || v == actor) {
        continue;
      }
      AffineLead longest;
      for (const std::size_t pos : view.out_buffers[v.index()]) {
        if (unit.determined_by[pos] != ConstraintSide::Sink) {
          continue;
        }
        const Edge& data = graph.edge(view.buffers[pos].data);
        const AffineLead& down = lead[data.target.index()];
        consider(longest,
                 AffineLead{down.resp,
                            down.rate + rate_coefficient(pos, data) *
                                            Rational(data.production.max() - 1)});
      }
      longest.resp =
          longest.resp + overlay.response_time_of(graph, v).seconds();
      lead[v.index()] = longest;
    }
    // Pass B — the rest, forward order.
    for (const dataflow::ActorId v : unit.actors_in_order) {
      if (unit.sink_anchored[v.index()] || v == actor) {
        continue;
      }
      AffineLead longest;
      for (const std::size_t pos : view.in_buffers[v.index()]) {
        if (unit.determined_by[pos] != ConstraintSide::Source) {
          continue;
        }
        const Edge& data = graph.edge(view.buffers[pos].data);
        const AffineLead& up = lead[data.source.index()];
        consider(longest,
                 AffineLead{up.resp + overlay
                                          .response_time_of(graph, data.source)
                                          .seconds(),
                            up.rate + rate_coefficient(pos, data) *
                                          Rational(data.production.max() - 1)});
      }
      lead[v.index()] = longest;
    }
    return lead;
  };

  Rational candidate_tau(1);
  for (int iteration = 0; iteration < 8; ++iteration) {
    const std::vector<AffineLead> lead = leads_at(candidate_tau);

    Rational min_tau(0);
    Rational infimum_tau(0);
    bool infimum_attained = true;
    std::string binding = "(none)";
    const auto tighten = [&](const Rational& cand, const std::string& what) {
      if (cand > min_tau) {
        min_tau = cand;
        binding = what;
      }
    };
    const auto tighten_infimum = [&](const Rational& cand, bool attained) {
      if (cand > infimum_tau) {
        infimum_tau = cand;
        infimum_attained = attained;
      } else if (cand == infimum_tau && !attained) {
        infimum_attained = false;
      }
    };

    // Response-time constraints ρ(v) ≤ c_v·τ (closed).
    for (std::size_t i = 0; i < unit.actors_in_order.size(); ++i) {
      const dataflow::ActorId v = unit.actors_in_order[i];
      const Rational rho = overlay.response_time_of(graph, v).seconds();
      const Rational c_v = unit.pacing[i].seconds();
      tighten(rho / c_v, "actor " + graph.actor(v).name);
      tighten_infimum(rho / c_v, true);
    }


    // Capacity constraints per pair: with delta_total = R + C·τ and
    // s = (c/q)·τ, sufficiency x = delta_total/s ≤ d − adj becomes
    //   τ ≥ q·R / (c·(d − adj − q·C/c)).
    bool diagnosed = false;
    for (std::size_t i = 0; i < unit.buffers_in_order.size(); ++i) {
      const dataflow::BufferEdges buffer = unit.buffers_in_order[i];
      const Edge& data = graph.edge(buffer.data);
      const std::int64_t d = overlay.initial_tokens_of(graph, buffer.space);
      const std::int64_t pi_max = data.production.max();
      const std::int64_t gamma_max = data.consumption.max();
      const std::string label = "buffer " + graph.actor(data.source).name +
                                "->" + graph.actor(data.target).name;

      const ConstraintSide pair_side = unit.determined_by[i];
      const bool is_static =
          data.production.is_singleton() && data.consumption.is_singleton();
      const bool adjacent = pair_side == ConstraintSide::Sink
                                ? data.target == actor
                                : data.source == actor;
      // Back-edges never qualify for the tight rounding (see the forward
      // analysis), so their slack keeps the Eq (4) +1.
      const bool tight = options.rounding == RoundingMode::Ceil ||
                         (options.rounding == RoundingMode::PaperPublished &&
                          is_static && adjacent && !view.is_feedback[i]);

      // Δ_producer = max(alignment gap, chain-local ρ_a + s·(π̂−1)) — the
      // affine branch is chosen at the candidate period, like the
      // alignment max itself, and validated by forward verification.
      const AffineLead aligned =
          pair_side == ConstraintSide::Sink
              ? AffineLead{lead[data.source.index()].resp -
                               lead[data.target.index()].resp,
                           lead[data.source.index()].rate -
                               lead[data.target.index()].rate}
              : AffineLead{lead[data.target.index()].resp -
                               lead[data.source.index()].resp,
                           lead[data.target.index()].rate -
                               lead[data.source.index()].rate};
      const AffineLead chain_local{
          overlay.response_time_of(graph, data.source).seconds(),
          rate_coefficient(i, data) * Rational(pi_max - 1)};
      // Ties keep `aligned`, which on skeleton edges is always ≥ the
      // chain-local value — acyclic graphs reproduce the pre-cyclic
      // results exactly.
      const AffineLead gap =
          chain_local.at(candidate_tau) > aligned.at(candidate_tau)
              ? chain_local
              : aligned;
      const Rational c = pair_side == ConstraintSide::Sink
                             ? unit.pacing_of(data.target).seconds()
                             : unit.pacing_of(data.source).seconds();
      const std::int64_t q = pair_side == ConstraintSide::Sink ? gamma_max
                                                               : pi_max;
      // delta_total = R + C·τ with the consumer-side Eq (2) terms added.
      const Rational resp_part =
          gap.resp + overlay.response_time_of(graph, data.target).seconds();
      const Rational rate_tokens =  // (C·q/c): τ-independent token count
          (gap.rate + (c / Rational(q)) * Rational(gamma_max - 1)) *
          Rational(q) / c;
      // Sufficiency margin in tokens: x ≤ d − 1 in general (the +1 of
      // Eq (4)); x ≤ d when the rounding mode grants the tight value.
      const Rational margin =
          Rational(d) - rate_tokens - Rational(tight ? 0 : 1);
      if (!margin.is_positive()) {
        std::ostringstream os;
        os << label << ": capacity " << d
           << " cannot sustain any rate (needs more than "
           << (rate_tokens + Rational(tight ? 0 : 1)).to_string()
           << " containers)";
        result.diagnostics.push_back(os.str());
        diagnosed = true;
        break;
      }
      // R·q/(c·τ) ≤ margin  ⇔  τ ≥ q·R/(c·margin).
      tighten(Rational(q) * resp_part / (c * margin), label);
      // The forward rounding ⌊x⌋+1 ≤ d is the open condition x < d, one
      // token looser than the attained criterion: margin+1, not attained.
      // On tight pairs the forward condition ⌈x⌉ ≤ d equals x ≤ d and the
      // bound is attained.
      if (tight) {
        tighten_infimum(Rational(q) * resp_part / (c * margin), true);
      } else {
        tighten_infimum(
            Rational(q) * resp_part / (c * (margin + Rational(1))), false);
      }

      // Back-edges additionally carry the cycle bound (see the forward
      // analysis): the δ circulating tokens must cover the reversed
      // alignment gap plus the transfer slack,
      //   (rev + ρ_p)/s + (π̂−1) + (γ̂−1) ≤ δ,  s = (c/q)·τ
      // ⇔ τ ≥ q·(rev.resp + ρ_p) / (c·(δ − (π̂−1) − (γ̂−1) − q·rev.rate/c)).
      if (view.is_feedback[i]) {
        const std::int64_t delta =
            overlay.initial_tokens_of(graph, buffer.data);
        const AffineLead reverse{-aligned.resp, -aligned.rate};
        const Rational token_margin =
            Rational(delta) - Rational(pi_max - 1) -
            Rational(gamma_max - 1) - reverse.rate * Rational(q) / c;
        const Rational cycle_resp =
            reverse.resp +
            overlay.response_time_of(graph, data.source).seconds();
        const std::string cycle_label = "cycle through back-edge " +
                                        graph.actor(data.source).name + "->" +
                                        graph.actor(data.target).name;
        if (!token_margin.is_positive()) {
          std::ostringstream os;
          os << cycle_label << ": delta=" << delta
             << " initial tokens cannot sustain any rate (the cycle's "
                "transfer slack alone consumes the credit)";
          result.diagnostics.push_back(os.str());
          diagnosed = true;
          break;
        }
        tighten(Rational(q) * cycle_resp / (c * token_margin), cycle_label);
        tighten_infimum(Rational(q) * cycle_resp / (c * token_margin), true);
      }
    }
    if (diagnosed) {
      return result;
    }

    // The binding structure of the alignment max may differ at the solved
    // period; iterate until it reproduces itself (`lead` is exactly
    // leads_at(candidate_tau)).
    if (leads_at(min_tau) == lead) {
      result.ok = true;
      result.min_period = Duration(min_tau);
      result.infimum_period = Duration(infimum_tau);
      result.infimum_attained = infimum_attained;
      result.binding_constraint = binding;
      break;
    }
    candidate_tau = min_tau;
  }
  if (!result.ok) {
    result.diagnostics.push_back(
        "alignment binding structure did not converge");
    return result;
  }

  // Soundness check: the forward analysis at min_period must fit the
  // installed capacities (guards the fixed-binding closed form on
  // fork-join graphs; never triggers on chains, whose max is trivial).
  const GraphAnalysis forward = compute_buffer_capacities(
      snapshot, ConstraintSet{{actor, result.min_period}}, options, overlay);
  bool fits = forward.admissible;
  if (fits) {
    for (const PairAnalysis& pair : forward.pairs) {
      // pair.capacity is the *total* container count; compare against the
      // installed total (free containers + containers holding initial
      // tokens).
      fits = fits && pair.capacity <= overlay.buffer_capacity_of(graph,
                                                                 pair.buffer);
    }
  }
  if (!fits) {
    result.ok = false;
    result.diagnostics.push_back(
        "closed-form period failed forward verification");
  }
  return result;
}

MinPeriodResult min_admissible_period(const VrdfGraph& graph,
                                      const ConstraintSet& constraints,
                                      dataflow::ActorId designated,
                                      const AnalysisOptions& options) {
  return min_admissible_period(TopologySnapshot(graph), constraints,
                               designated, options);
}

MinPeriodResult min_admissible_period(const TopologySnapshot& snapshot,
                                      const ConstraintSet& constraints,
                                      dataflow::ActorId designated,
                                      const AnalysisOptions& options,
                                      const ParameterOverlay& overlay) {
  MinPeriodResult result;
  ConstraintSet others;
  bool found = false;
  for (const ThroughputConstraint& c : constraints) {
    if (c.actor == designated) {
      found = true;
    } else {
      others.push_back(c);
    }
  }
  if (!found) {
    result.diagnostics.push_back(
        "designated actor carries no constraint in the set");
    return result;
  }
  if (others.empty()) {
    return min_admissible_period(snapshot, designated, options, overlay);
  }
  const VrdfGraph& graph = snapshot.graph();

  // The designated constraint's demand cone with a unit period gives the
  // rate-only coefficients c_v; the fixed constraints' cone gives the φ
  // values they pin.  Flow consistency forces c_v·τ = φ_fixed(v) on every
  // overlap actor, so the overlap determines τ — and must determine it
  // consistently.
  const PartialPacing unit = compute_partial_pacing(
      snapshot, ConstraintSet{{designated, seconds(Rational(1))}});
  if (!unit.ok) {
    result.diagnostics = unit.diagnostics;
    return result;
  }
  const PartialPacing fixed = compute_partial_pacing(snapshot, others);
  if (!fixed.ok) {
    result.diagnostics = fixed.diagnostics;
    return result;
  }
  std::optional<Rational> tau;
  dataflow::ActorId pin_actor;
  for (std::size_t i = 0; i < unit.phi_by_actor.size(); ++i) {
    if (!unit.phi_by_actor[i].has_value() ||
        !fixed.phi_by_actor[i].has_value()) {
      continue;
    }
    const Rational candidate =
        fixed.phi_by_actor[i]->seconds() / unit.phi_by_actor[i]->seconds();
    if (!tau.has_value()) {
      tau = candidate;
      pin_actor = dataflow::ActorId(
          static_cast<dataflow::ActorId::underlying_type>(i));
    } else if (candidate != *tau) {
      std::ostringstream os;
      os << "the fixed constraints pin incompatible periods for '"
         << graph.actor(designated).name << "' (" << tau->to_string()
         << " s at actor '" << graph.actor(pin_actor).name << "' vs "
         << candidate.to_string() << " s at actor '"
         << graph
                .actor(dataflow::ActorId(
                    static_cast<dataflow::ActorId::underlying_type>(i)))
                .name
         << "'); the constraint set is not flow-consistent at any period";
      result.diagnostics.push_back(os.str());
      return result;
    }
  }
  if (!tau.has_value()) {
    result.diagnostics.push_back(
        "the designated constraint shares no pacing with the fixed ones; "
        "no flow coupling determines its period (analyse it with the "
        "single-constraint solver instead)");
    return result;
  }

  // Forward verification: the coupled period must be admissible for the
  // full set and fit the installed capacities.
  ConstraintSet full = others;
  full.push_back(ThroughputConstraint{designated, Duration(*tau)});
  const GraphAnalysis forward =
      compute_buffer_capacities(snapshot, full, options, overlay);
  if (!forward.admissible) {
    result.diagnostics = forward.diagnostics;
    result.diagnostics.push_back(
        "the flow-coupled period " + tau->to_string() +
        " s is not admissible for the full constraint set");
    return result;
  }
  for (const PairAnalysis& pair : forward.pairs) {
    const std::int64_t installed =
        overlay.buffer_capacity_of(graph, pair.buffer);
    if (pair.capacity > installed) {
      std::ostringstream os;
      os << "buffer " << graph.actor(pair.producer).name << "->"
         << graph.actor(pair.consumer).name << ": installed capacity "
         << installed << " cannot sustain the "
         << "flow-coupled period " << tau->to_string() << " s (needs "
         << pair.capacity << " containers)";
      result.diagnostics.push_back(os.str());
      return result;
    }
  }
  result.ok = true;
  result.min_period = Duration(*tau);
  result.infimum_period = Duration(*tau);
  result.infimum_attained = true;
  result.binding_constraint =
      "flow-coupling at actor '" + graph.actor(pin_actor).name + "'";
  return result;
}

}  // namespace vrdf::analysis
