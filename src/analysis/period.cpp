#include "analysis/period.hpp"

#include <sstream>

#include "analysis/pacing.hpp"

namespace vrdf::analysis {

using dataflow::Edge;
using dataflow::VrdfGraph;

MinPeriodResult min_admissible_period(const VrdfGraph& graph,
                                      dataflow::ActorId actor,
                                      const AnalysisOptions& options) {
  MinPeriodResult result;

  // Pacing coefficients c_v are rate-only: run the propagation with a unit
  // period and read φ(v) as c_v.
  const PacingResult unit =
      compute_pacing(graph, ThroughputConstraint{actor, seconds(Rational(1))});
  if (!unit.ok) {
    result.diagnostics = unit.diagnostics;
    return result;
  }

  Rational min_tau(0);
  Rational infimum_tau(0);
  bool infimum_attained = true;
  std::string binding = "(none)";
  const auto tighten = [&](const Rational& candidate, const std::string& what) {
    if (candidate > min_tau) {
      min_tau = candidate;
      binding = what;
    }
  };
  const auto tighten_infimum = [&](const Rational& candidate, bool attained) {
    if (candidate > infimum_tau) {
      infimum_tau = candidate;
      infimum_attained = attained;
    } else if (candidate == infimum_tau && !attained) {
      infimum_attained = false;
    }
  };

  // Response-time constraints ρ(v) ≤ c_v·τ (closed).
  for (std::size_t i = 0; i < unit.actors_in_order.size(); ++i) {
    const dataflow::Actor& a = graph.actor(unit.actors_in_order[i]);
    const Rational c_v = unit.pacing[i].seconds();
    tighten(a.response_time.seconds() / c_v, "actor " + a.name);
    tighten_infimum(a.response_time.seconds() / c_v, true);
  }

  // Capacity constraints per pair.
  for (std::size_t i = 0; i < unit.buffers_in_order.size(); ++i) {
    const dataflow::BufferEdges buffer = unit.buffers_in_order[i];
    const Edge& data = graph.edge(buffer.data);
    const Edge& space = graph.edge(buffer.space);
    const std::int64_t d = space.initial_tokens;
    const std::int64_t pi_max = data.production.max();
    const std::int64_t gamma_max = data.consumption.max();
    const std::string label = "buffer " + graph.actor(data.source).name +
                              "->" + graph.actor(data.target).name;

    const bool is_static =
        data.production.is_singleton() && data.consumption.is_singleton();
    const bool adjacent = unit.side == ConstraintSide::Sink
                              ? i + 1 == unit.buffers_in_order.size()
                              : i == 0;
    // Sufficiency margin in tokens: x ≤ d − 1 in general (the +1 of
    // Eq (4)); x ≤ d when the rounding mode grants the tight value.
    const bool tight = options.rounding == RoundingMode::Ceil ||
                       (options.rounding == RoundingMode::PaperPublished &&
                        is_static && adjacent);
    const std::int64_t margin =
        d - (pi_max - 1) - (gamma_max - 1) - (tight ? 0 : 1);
    if (margin <= 0) {
      std::ostringstream os;
      os << label << ": capacity " << d
         << " cannot sustain any rate (needs more than "
         << (pi_max + gamma_max - (tight ? 2 : 1)) << " containers)";
      result.diagnostics.push_back(os.str());
      return result;
    }
    // s = c·τ/γ̂ (sink mode) or c·τ/π̂ (source mode), with c the pacing
    // coefficient of the pair's rate-determining actor.
    const Rational c = unit.side == ConstraintSide::Sink
                           ? unit.pacing[i + 1].seconds()
                           : unit.pacing[i].seconds();
    const std::int64_t quantum_divisor =
        unit.side == ConstraintSide::Sink ? gamma_max : pi_max;
    const Rational rho_sum =
        (graph.actor(data.source).response_time +
         graph.actor(data.target).response_time)
            .seconds();
    // (ρa+ρb)/(c·τ/γ̂) ≤ margin  ⇔  τ ≥ γ̂·(ρa+ρb)/(c·margin).
    tighten(Rational(quantum_divisor) * rho_sum / (c * Rational(margin)),
            label);
    // The forward rounding ⌊x⌋+1 ≤ d is the open condition x < d, one
    // token looser than the attained criterion: margin+1, not attained.
    // On tight pairs the forward condition ⌈x⌉ ≤ d equals x ≤ d and the
    // bound is attained.
    if (tight) {
      tighten_infimum(
          Rational(quantum_divisor) * rho_sum / (c * Rational(margin)), true);
    } else {
      tighten_infimum(
          Rational(quantum_divisor) * rho_sum / (c * Rational(margin + 1)),
          false);
    }
  }

  result.ok = true;
  result.min_period = Duration(min_tau);
  result.infimum_period = Duration(infimum_tau);
  result.infimum_attained = infimum_attained;
  result.binding_constraint = binding;
  return result;
}

}  // namespace vrdf::analysis
