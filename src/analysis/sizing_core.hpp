// Internal sizing primitives shared by the full analysis
// (buffer_sizing.cpp) and the incremental re-analysis engine
// (incremental.cpp).  Both paths MUST go through these helpers: the
// incremental engine promises field-for-field identical GraphAnalysis
// results, and the only way to keep that promise cheaply is to compute
// every lead and every pair with the same code and the same evaluation
// order as the full analysis.
//
// All helpers read parameters through a ParameterOverlay (an empty
// overlay reproduces the graph's own values bit for bit, since the
// overlay merely forwards to the graph accessor).
#pragma once

#include <string>
#include <vector>

#include "analysis/pacing.hpp"
#include "analysis/snapshot.hpp"
#include "analysis/types.hpp"
#include "dataflow/vrdf_graph.hpp"

namespace vrdf::analysis::detail {

/// True when v carries a throughput constraint anchoring a region of the
/// given kind (sink-kind: data sinks and interior pins seen from
/// upstream; source-kind: data sources and interior pins seen from
/// downstream — an interior pin is both at once).
[[nodiscard]] bool constrained_kind(const PacingResult& pacing,
                                    dataflow::ActorId v, bool sink_kind);

/// Producer/consumer schedule validity (Sec 4.2): ρ(v) ≤ φ(v) for every
/// actor, in topological order.  Appends one diagnostic per violating
/// actor; returns false when any actor violates.
[[nodiscard]] bool check_schedule_validity(const dataflow::VrdfGraph& graph,
                                           const ParameterOverlay& overlay,
                                           const PacingResult& pacing,
                                           std::vector<std::string>& diagnostics);

/// ω(v) for a pass-A actor (sink-anchored, not a sink-kind constraint
/// anchor), given the leads of its sink-determined out-neighbours.
[[nodiscard]] Duration lead_pass_a_of(const dataflow::VrdfGraph& graph,
                                      const ParameterOverlay& overlay,
                                      const PacingResult& pacing,
                                      const std::vector<Duration>& lead,
                                      dataflow::ActorId v);

/// ω(v) for a pass-B actor (not sink-anchored, not a source-kind
/// constraint anchor), given the leads of its source-determined
/// in-neighbours.
[[nodiscard]] Duration lead_pass_b_of(const dataflow::VrdfGraph& graph,
                                      const ParameterOverlay& overlay,
                                      const PacingResult& pacing,
                                      const std::vector<Duration>& lead,
                                      dataflow::ActorId v);

/// Full two-pass schedule-alignment computation: pass A over the
/// sink-anchored region in reverse topological order, pass B over the
/// rest forward; constraint anchors stay pinned at ω = 0.  Indexed by
/// ActorId::index().
[[nodiscard]] std::vector<Duration> compute_alignment_leads(
    const dataflow::VrdfGraph& graph, const ParameterOverlay& overlay,
    const PacingResult& pacing);

/// Analyses the pair at position `pos` of pacing.buffers_in_order: bound
/// rate, Eq (1)–(4) capacity with the tight-adjacency rounding rule, and
/// — for back-edges — the max-cycle-ratio initial-token requirement.  A
/// violating back-edge appends its diagnostic and clears `admissible`.
[[nodiscard]] PairAnalysis analyse_pair(const dataflow::VrdfGraph& graph,
                                        const ParameterOverlay& overlay,
                                        const PacingResult& pacing,
                                        const std::vector<Duration>& lead,
                                        std::size_t pos,
                                        const AnalysisOptions& options,
                                        std::vector<std::string>& diagnostics,
                                        bool& admissible);

}  // namespace vrdf::analysis::detail
