// Shared types of the buffer-capacity analysis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataflow/vrdf_graph.hpp"
#include "util/time.hpp"

namespace vrdf::analysis {

/// "Actor `actor` must execute strictly periodically with period `period`."
/// The paper pins an end of the chain, but nothing in the theory requires
/// that: the generalised analysis accepts any skeleton actor.  A
/// constrained *end* must be the unique data sink (Sec 4.2/4.3) or unique
/// data source (Sec 4.4) of the graph; an *interior* pin — a fixed-rate
/// DSP core between a demuxer and a renderer, say — anchors its upstream
/// cone like a sink and its downstream cone like a source.  A *set* of
/// constraints may pin several actors at once, with demands propagated
/// bidirectionally and checked for flow consistency.
struct ThroughputConstraint {
  dataflow::ActorId actor;
  Duration period;
};

/// Several simultaneous throughput constraints — e.g. an A/V graph with an
/// audio presenter and a video presenter, or a feedback pipeline pinning
/// both its source and its sink.  Periods must be mutually flow-consistent
/// (the propagation rejects sets whose demands disagree anywhere, naming
/// the binding constraint and path).
using ConstraintSet = std::vector<ThroughputConstraint>;

/// Which endpoint of a producer-consumer pair determines its rate.  With a
/// single *end* constraint this is global (every pair inherits the
/// constraint's end); with a constraint set or an interior pin it is
/// assigned per pair: pairs on a path into a sink-kind anchor (a
/// constrained data sink, or an interior pin seen from upstream) pace
/// upstream (Sink — the consumer determines), pairs hanging off a
/// source-kind anchor pace downstream (Source — the producer determines).
enum class ConstraintSide {
  Sink,    // Sec 4.2/4.3: rates propagate upstream against the data flow
  Source,  // Sec 4.4: rates propagate downstream with the data flow
};

/// How the raw token count x = π̂/φ·Δ of Eq (4) is turned into an integer
/// capacity.
enum class RoundingMode {
  /// Literal Eq (4): ⌊x + 1⌋ = ⌊x⌋ + 1.  Always sufficient; over-provisions
  /// by one token when x is integral on a pair that needs no delay slack.
  PaperLiteral,
  /// ⌈x⌉ everywhere.  Matches the bound-distance derivation under the
  /// model's simultaneity semantics (a token produced at t is consumable
  /// at t) but drops the extra token the paper reserves for
  /// consumer-schedule delays on pairs away from the constrained actor;
  /// offered for experimentation and tightness studies, not as default.
  Ceil,
  /// ⌊x⌋ + 1, except ⌈x⌉ on a *static* pair directly adjacent to the
  /// constrained actor (sink mode: the pair whose consumer is the
  /// strictly periodic sink; source mode: the pair whose producer is the
  /// periodic source).  There the constrained actor's transfer times are
  /// exact — no delay can occur on its side — and the method degenerates
  /// to the data-independent technique [14], for which x is sufficient
  /// (and exactly minimal, see the baseline tests).  This reproduces the
  /// paper's published MP3 numbers {6015, 3263, 882}.  Default.
  PaperPublished,
};

/// Everything the analysis derives for one producer-consumer pair
/// (Sec 4.2, Eqs (1)-(4)).
struct PairAnalysis {
  dataflow::ActorId producer;
  dataflow::ActorId consumer;
  dataflow::BufferEdges buffer;

  /// φ basis of this pair: φ(consumer) in sink mode, φ(producer) in source
  /// mode — the minimal required difference between subsequent starts of
  /// the pair's rate-determining actor.
  Duration pacing_basis;
  /// Time per token of the pair's linear bounds (φ/γ̂ resp. φ/π̂).
  Duration bound_rate;
  /// Eq (1): minimum distance α̂p(e_ab) − α̌c(e_ba) chargeable to the
  /// producer: ρ(producer) + s·(π̂ − 1) on a chain.  On fork-join graphs
  /// this is the schedule-alignment gap ω(far endpoint) − ω(near
  /// endpoint) across the edge (see compute_buffer_capacities), which is
  /// ≥ the chain value and exceeds it exactly on the non-binding edges of
  /// a fork/join: the shared actor's firings are pinned to the slowest
  /// sibling path, so the faster path's buffer must also absorb the
  /// siblings' worst-case slack.
  Duration delta_producer;
  /// Eq (2): minimum distance α̂p(e_ba) − α̌c(e_ab) chargeable to the
  /// consumer: ρ(consumer) + s·(γ̂ − 1).
  Duration delta_consumer;
  /// Eq (3): delta_producer + delta_consumer.
  Duration delta_total;
  /// Raw token count x = Δ/s of Eq (4), before rounding.  Measures the
  /// schedule-slack part only; initial tokens are added after rounding.
  Rational raw_tokens;
  /// Computed total capacity ζ(b) = initial_tokens + rounded slack.
  std::int64_t capacity = 0;
  /// Which endpoint of this pair is rate-determining: Sink — the consumer
  /// (pacing_basis = φ(consumer), demands flow upstream); Source — the
  /// producer.  With a single constraint every pair carries the
  /// constraint's global side; with a constraint set the side is assigned
  /// per pair (see compute_pacing).
  ConstraintSide determined_by = ConstraintSide::Sink;
  /// True when all rate sets of the pair are singletons (data-independent).
  bool is_static = false;
  /// True when the buffer's data edge is a back-edge of a cyclic topology
  /// (it carries the cycle's circulating tokens and is excluded from the
  /// topological propagations).
  bool is_feedback = false;
  /// δ(data edge): tokens occupying containers at t=0.  The computed
  /// capacity always covers them.
  std::int64_t initial_tokens = 0;
  /// Back-edges only: the minimum δ the throughput constraint requires,
  /// ⌈(alignment gap + Δ slack)/s⌉ — the schedule-aligned form of the
  /// max-cycle-ratio bound period ≥ cycle latency / initial tokens.  The
  /// analysis is inadmissible when initial_tokens falls short.  Zero on
  /// skeleton edges (δ-independent, so usable to size a loop's tokens).
  std::int64_t required_initial_tokens = 0;
};

/// Result of the full graph analysis (chains, fork-join DAGs and cyclic
/// graphs whose back-edges carry initial tokens).
struct GraphAnalysis {
  /// False when the constraint cannot be satisfied for every admissible
  /// quantum sequence (diagnostics explain why).  Capacities are only
  /// meaningful when true.
  bool admissible = false;
  std::vector<std::string> diagnostics;

  /// Rate-determining side of the *primary* (first) constraint; kept for
  /// single-constraint call sites.  Per-pair sides live in
  /// PairAnalysis::determined_by.
  ConstraintSide side = ConstraintSide::Sink;
  /// The constraint set the analysis ran with (size 1 for the
  /// single-constraint entry point).
  ConstraintSet constraints;
  /// Per constraint index: whether the constrained actor anchors a
  /// sink-kind (upstream) and/or source-kind (downstream) pacing region.
  /// Exactly one holds at an end; both hold for an interior pin (see
  /// PacingResult).
  std::vector<bool> constraint_is_sink_kind;
  std::vector<bool> constraint_is_source_kind;
  /// True when the data edges form a chain (the paper's Sec 3.1 shape);
  /// actors_in_order is then exactly the chain order.
  bool is_chain = false;
  /// True when the data edges contain directed cycles (broken at tokened
  /// back-edges); pairs on a back-edge have is_feedback set.
  bool is_cyclic = false;
  /// Actors in topological order of the skeleton data edges (chain order
  /// on chains, data source first).
  std::vector<dataflow::ActorId> actors_in_order;
  /// φ(v) per position in actors_in_order: the minimal required difference
  /// between subsequent starts (also the maximal admissible response time).
  std::vector<Duration> pacing;
  /// Schedule-alignment lead ω(v) per position in actors_in_order — the
  /// longest-path witness the per-pair Δ terms are derived from (see
  /// compute_alignment_leads).  Empty unless the analysis reached the
  /// sized shape (pacing ok and every ρ(v) ≤ φ(v)); recorded so the
  /// certificate checker can re-verify every pair without re-running the
  /// longest-path propagation.
  std::vector<Duration> leads;
  /// One entry per buffer, ordered by the producer's topological position
  /// (chain order on chains).
  std::vector<PairAnalysis> pairs;
  /// Sum of all capacities (containers across all buffers).
  std::int64_t total_capacity = 0;
  /// The rounding mode the analysis ran with (AnalysisOptions::rounding),
  /// recorded so certificates and reports can re-derive the per-pair
  /// rounding without carrying the options alongside the result.
  RoundingMode rounding = RoundingMode::PaperPublished;
};

struct AnalysisOptions {
  RoundingMode rounding = RoundingMode::PaperPublished;
};

}  // namespace vrdf::analysis
