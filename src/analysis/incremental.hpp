// Incremental re-analysis engine: keeps a GraphAnalysis continuously
// up to date across parameter changes at a fraction of the cost of a
// full compute_buffer_capacities run, with field-for-field identical
// results.
//
// The cost structure of the full analysis is a pipeline of structural
// work (validation, SCC condensation, feedback classification,
// topological ordering — all captured once in a TopologySnapshot),
// pacing propagation (φ, per-edge sides), schedule-alignment leads (ω,
// two longest-path passes), and the per-pair Eq (1)–(4) capacity terms.
// Each kind of change invalidates a different suffix of that pipeline:
//
//  * retune(actor, ρ): ρ never enters pacing propagation — φ depends
//    only on rates, topology and periods — so the cached pacing is
//    reused verbatim.  Only the ω cone reachable from the actor
//    (following each edge's rate-determining side, bounded by pinned
//    constraint anchors and early-stopping where a recomputed ω comes
//    out unchanged) and the pairs touching the actor or a changed ω
//    are re-derived.  This is the hot admission-control path.
//  * set_period with a single constraint: φ is linear in τ, so the
//    cached pacing is scaled by τ_new/τ_old (Rational arithmetic
//    canonicalises, so the scaled values are bit-identical to a fresh
//    propagation); leads and pairs re-derive on top.
//  * admit / remove / multi-constraint set_period: the constraint
//    structure itself changes (sides, anchors, seed interactions), so
//    pacing re-propagates — but on the cached snapshot, skipping the
//    structural tier entirely.
//  * set_initial_tokens(edge, δ): pacing and leads are δ-independent;
//    a data-edge override re-analyses just its own pair (feedback
//    credit / capacity), a space-edge override changes nothing in the
//    sized analysis (only min_admissible_period reads installed space).
//
// Parameter changes are applied to a ParameterOverlay, never to the
// graph; mutating the graph itself invalidates the snapshot and every
// subsequent query throws a ContractError naming the mutation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/checker.hpp"
#include "analysis/pacing.hpp"
#include "analysis/snapshot.hpp"
#include "analysis/types.hpp"
#include "dataflow/vrdf_graph.hpp"

namespace vrdf::analysis {

/// Work counters for the memoization tiers — exported into the bench
/// JSON so cache behaviour is visible, not inferred.
struct InvalidationStats {
  /// Mutating queries served (retune / set_period / admit / remove /
  /// set_initial_tokens).
  std::uint64_t queries = 0;
  /// Queries that re-ran the pacing propagation (admit / remove /
  /// multi-constraint set_period).
  std::uint64_t pacing_recomputes = 0;
  /// Queries that reused the cached pacing verbatim or rescaled it.
  std::uint64_t pacing_cache_hits = 0;
  /// Actors whose alignment lead ω was re-derived / reused from cache.
  std::uint64_t leads_recomputed = 0;
  std::uint64_t leads_reused = 0;
  /// Pairs re-analysed / reused from cache.
  std::uint64_t pairs_recomputed = 0;
  std::uint64_t pairs_reused = 0;
  /// Actors in the invalidation cone of the most recent query.
  std::uint64_t last_cone_actors = 0;
  /// Pairs re-analysed by the most recent query.
  std::uint64_t last_cone_pairs = 0;
  /// Certification (set_certify): certificates emitted + checked after
  /// mutating queries, individual clauses validated, and clause
  /// violations observed (a nonzero count means the incremental cache
  /// and the independent checker disagree — a bug, not an input error).
  std::uint64_t certificates_checked = 0;
  std::uint64_t certificate_clauses = 0;
  std::uint64_t certificate_violations = 0;
};

/// Long-lived analysis state over one TopologySnapshot.  analysis() is
/// always the exact GraphAnalysis compute_buffer_capacities(snapshot,
/// constraints(), options, overlay()) would return — the differential
/// tests assert field-for-field equality after every operation.
class IncrementalAnalysis {
public:
  /// Captures the snapshot (cheap: shared view) and computes the
  /// initial analysis for `constraints`.
  IncrementalAnalysis(const TopologySnapshot& snapshot,
                      ConstraintSet constraints,
                      AnalysisOptions options = {});

  /// The current analysis result (never stale with respect to the
  /// operations applied through this engine).
  [[nodiscard]] const GraphAnalysis& analysis() const;

  /// Re-tunes one actor's worst-case response time.  Reuses the cached
  /// pacing (ρ does not enter pacing propagation) and re-derives only
  /// the affected ω cone and pairs.
  void retune(dataflow::ActorId actor, Duration rho);
  /// Reverts an actor to the graph's own response time.
  void clear_retune(dataflow::ActorId actor);

  /// Moves the period of the constraint pinned at `actor` (which must
  /// carry a constraint).  Single-constraint sets rescale the cached
  /// pacing; multi-constraint sets re-propagate on the cached snapshot.
  void set_period(dataflow::ActorId actor, Duration tau);

  /// Adds a throughput constraint (a new stream's rate contract).
  /// Re-propagates pacing on the cached snapshot.
  void admit(const ThroughputConstraint& stream);
  /// Removes the constraint pinned at `actor` (which must carry one).
  void remove(dataflow::ActorId actor);

  /// Overrides the initial-token count of an edge.  On a pair's data
  /// edge this is the circulating feedback credit (pair-local
  /// re-analysis); on a space edge it only affects min-period queries.
  /// Contract: the override must not change the snapshot's feedback
  /// classification — an on-cycle data edge must keep (δ > 0) as it
  /// was at capture.
  void set_initial_tokens(dataflow::EdgeId edge, std::int64_t tokens);

  /// Self-checking mode: after every mutating query whose result is
  /// admissible, emit a certificate of the rendered analysis and run the
  /// independent checker over it (bind_parameters_to_graph=false — the
  /// engine's ρ/δ live in its overlay).  The engine stays usable on a
  /// violation; callers inspect last_certificate_violation() and the
  /// stats counters.  Admission control uses this as its trust gate.
  void set_certify(bool enabled);
  [[nodiscard]] bool certify() const { return certify_enabled_; }
  /// The first clause violation of the most recent certified query, or
  /// nullopt when the query was uncertified, inadmissible, or valid.
  [[nodiscard]] const std::optional<ClauseViolation>&
  last_certificate_violation() const {
    return last_violation_;
  }

  [[nodiscard]] const TopologySnapshot& snapshot() const { return snapshot_; }
  [[nodiscard]] const ConstraintSet& constraints() const {
    return constraints_;
  }
  [[nodiscard]] const ParameterOverlay& overlay() const { return overlay_; }
  [[nodiscard]] const AnalysisOptions& options() const { return options_; }
  [[nodiscard]] const InvalidationStats& stats() const { return stats_; }

private:
  /// Full pipeline on the cached snapshot: pacing + ρ-check + leads +
  /// all pairs + render.
  void repropagate_();
  /// Shared retune/clear_retune tail: re-checks ρ admissibility on the
  /// cached pacing and re-derives the ω cone + dirty pairs.
  void apply_rho_change_(dataflow::ActorId actor);
  /// ρ-check + leads + all pairs + render, on the current pacing_.
  void resize_from_pacing_();
  /// Recomputes every pair from the cached pacing_ and lead_.
  void recompute_all_pairs_();
  /// Re-analyses one pair in place, updating its cached diagnostic.
  void recompute_pair_(std::size_t pos);
  /// Re-derives the ω cone after ρ(seed) changed; records which actors'
  /// leads changed in changed_lead (indexed by ActorId::index()).
  void update_lead_cone_(dataflow::ActorId seed,
                         std::vector<char>& changed_lead);
  /// Rebuilds total_capacity / admissible and renders analysis_ from the
  /// cached tiers, reproducing the exact full-analysis shape
  /// (pacing-failed, ρ-blocked, or sized).
  void render_();
  /// Patches the rendered sized shape in place: copies just the `dirty`
  /// pair positions into analysis_ and adjusts total_capacity by their
  /// deltas.  Falls back to a full render_() when the previous render was
  /// not the sized shape or a per-pair diagnostic changed (the
  /// diagnostics vector and admissibility then need rebuilding).
  void render_patch_(const std::vector<std::size_t>& dirty, bool diag_moved);
  /// Certification tail of every mutating query: resets
  /// last_violation_, and when certify mode is on and the rendered
  /// analysis is admissible, emits + checks its certificate.
  void run_certification_();

  TopologySnapshot snapshot_;
  ConstraintSet constraints_;
  AnalysisOptions options_;
  ParameterOverlay overlay_;

  PacingResult pacing_;
  bool rho_ok_ = false;
  std::vector<std::string> rho_diags_;
  /// ω by ActorId::index(); valid only when sized_valid_.
  std::vector<Duration> lead_;
  /// Per pair position: cached PairAnalysis and its feedback diagnostic
  /// (engaged only for starving back-edges); valid only when
  /// sized_valid_.
  std::vector<PairAnalysis> pairs_;
  std::vector<std::optional<std::string>> pair_diag_;
  /// True when lead_/pairs_ match (pacing_, overlay_) — false after a
  /// ρ-blocked or pacing-failed state skipped the sizing tiers.
  bool sized_valid_ = false;

  /// Edge index -> pair position for data/space edges.
  std::vector<std::size_t> pair_of_edge_;

  GraphAnalysis analysis_;
  /// True when analysis_ currently holds the sized shape (pairs present)
  /// — the precondition for render_patch_.
  bool analysis_sized_ = false;
  InvalidationStats stats_;

  bool certify_enabled_ = false;
  std::optional<ClauseViolation> last_violation_;

  /// Scratch buffers for the retune hot path, kept as members so a
  /// steady-state service loop allocates nothing per query.
  std::vector<char> scratch_changed_lead_;
  std::vector<char> scratch_dirty_pair_;
  std::vector<char> scratch_dirty_a_;
  std::vector<char> scratch_dirty_b_;
  std::vector<std::size_t> scratch_dirty_;
};

}  // namespace vrdf::analysis
