// The Sec 5 case study: MP3 playback of a variable-bit-rate stream.
//
//   vBR --2048/[0,960]--> vMP3 --1152/480--> vSRC --441/1--> vDAC
//
// vBR reads 2048-byte blocks from a compact disc; vMP3 decodes one frame
// per firing, consuming n ∈ [0, 960] bytes (48 kHz, up to 320 kbit/s →
// at most 960 bytes per 1152-sample frame) and producing 1152 samples;
// vSRC converts 48 kHz → 44.1 kHz (480 in, 441 out); vDAC consumes one
// sample per tick and must run strictly periodically at 44.1 kHz.
//
// The paper derives maximal admissible response times
//   ρ(vBR) = 51.2 ms, ρ(vMP3) = 24 ms, ρ(vSRC) = 10 ms, ρ(vDAC) = 1/44100 s
// and reports capacities d1 = 6015, d2 = 3263, d3 = 882 for the VRDF
// analysis versus d1 = 5888, d2 = 3072, d3 = 882 for the traditional
// technique with n fixed to 960.
#pragma once

#include <array>
#include <cstdint>

#include "analysis/types.hpp"
#include "dataflow/vrdf_graph.hpp"
#include "taskgraph/task_graph.hpp"

namespace vrdf::models {

struct Mp3Playback {
  dataflow::VrdfGraph graph;
  dataflow::ActorId br;    // vBR: block reader
  dataflow::ActorId mp3;   // vMP3: decoder (variable consumption)
  dataflow::ActorId src;   // vSRC: 48 kHz → 44.1 kHz sample-rate converter
  dataflow::ActorId dac;   // vDAC: throughput-constrained sink
  dataflow::BufferEdges b1;  // vBR → vMP3 (capacity d1)
  dataflow::BufferEdges b2;  // vMP3 → vSRC (capacity d2)
  dataflow::BufferEdges b3;  // vSRC → vDAC (capacity d3)
  analysis::ThroughputConstraint constraint;  // vDAC at 44.1 kHz
};

/// The VRDF model of Fig 5 with the paper's response times.
[[nodiscard]] Mp3Playback make_mp3_playback();

/// The same application as a task graph (Sec 3.1 view).
struct Mp3TaskGraph {
  taskgraph::TaskGraph graph;
  taskgraph::TaskId br, mp3, src, dac;
  taskgraph::BufferId b1, b2, b3;
};
[[nodiscard]] Mp3TaskGraph make_mp3_task_graph();

/// Published reference values (Sec 5).
struct Mp3PaperNumbers {
  static constexpr std::array<std::int64_t, 3> kVrdfCapacities{6015, 3263, 882};
  static constexpr std::array<std::int64_t, 3> kTraditionalCapacities{5888, 3072,
                                                                      882};
  static constexpr std::int64_t kMaxBytesPerFrame = 960;
};

}  // namespace vrdf::models
