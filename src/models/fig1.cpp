#include "models/fig1.hpp"

namespace vrdf::models {

using dataflow::RateSet;

Fig1Model make_fig1_task_graph(Duration rho_a, Duration rho_b) {
  Fig1Model model;
  model.wa = model.task_graph.add_task("wa", rho_a);
  model.wb = model.task_graph.add_task("wb", rho_b);
  model.buffer = model.task_graph.add_buffer(
      model.wa, model.wb, RateSet::singleton(3), RateSet::of({2, 3}));
  return model;
}

Fig1Vrdf make_fig1_vrdf(Duration tau, Duration rho_a, Duration rho_b) {
  Fig1Vrdf model;
  model.va = model.graph.add_actor("va", rho_a);
  model.vb = model.graph.add_actor("vb", rho_b);
  model.buffer = model.graph.add_buffer(model.va, model.vb,
                                        RateSet::singleton(3),
                                        RateSet::of({2, 3}));
  model.constraint = analysis::ThroughputConstraint{model.vb, tau};
  return model;
}

}  // namespace vrdf::models
