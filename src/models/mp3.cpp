#include "models/mp3.hpp"

namespace vrdf::models {

using dataflow::RateSet;

namespace {

// Exact response times (Sec 5): 51.2 ms, 24 ms, 10 ms, 1/44100 s.  The
// paper prints ρ(vDAC) as the rounded 0.0227 ms; the exact value is the
// DAC period itself (the maximal admissible response time).
Duration rho_br() { return milliseconds(Rational(512, 10)); }
Duration rho_mp3() { return milliseconds(Rational(24)); }
Duration rho_src() { return milliseconds(Rational(10)); }
Duration rho_dac() { return period_of_hz(Rational(44100)); }

}  // namespace

Mp3Playback make_mp3_playback() {
  Mp3Playback app;
  app.br = app.graph.add_actor("vBR", rho_br());
  app.mp3 = app.graph.add_actor("vMP3", rho_mp3());
  app.src = app.graph.add_actor("vSRC", rho_src());
  app.dac = app.graph.add_actor("vDAC", rho_dac());

  app.b1 = app.graph.add_buffer(
      app.br, app.mp3, RateSet::singleton(2048),
      RateSet::interval(0, Mp3PaperNumbers::kMaxBytesPerFrame));
  app.b2 = app.graph.add_buffer(app.mp3, app.src, RateSet::singleton(1152),
                                RateSet::singleton(480));
  app.b3 = app.graph.add_buffer(app.src, app.dac, RateSet::singleton(441),
                                RateSet::singleton(1));

  app.constraint =
      analysis::ThroughputConstraint{app.dac, period_of_hz(Rational(44100))};
  return app;
}

Mp3TaskGraph make_mp3_task_graph() {
  Mp3TaskGraph app;
  app.br = app.graph.add_task("vBR", rho_br());
  app.mp3 = app.graph.add_task("vMP3", rho_mp3());
  app.src = app.graph.add_task("vSRC", rho_src());
  app.dac = app.graph.add_task("vDAC", rho_dac());
  app.b1 = app.graph.add_buffer(
      app.br, app.mp3, RateSet::singleton(2048),
      RateSet::interval(0, Mp3PaperNumbers::kMaxBytesPerFrame));
  app.b2 = app.graph.add_buffer(app.mp3, app.src, RateSet::singleton(1152),
                                RateSet::singleton(480));
  app.b3 = app.graph.add_buffer(app.src, app.dac, RateSet::singleton(441),
                                RateSet::singleton(1));
  return app;
}

}  // namespace vrdf::models
