#include "models/synthetic.hpp"

#include <random>
#include <string>

#include "analysis/buffer_sizing.hpp"
#include "analysis/pacing.hpp"
#include "util/error.hpp"
#include "util/seed_stream.hpp"

namespace vrdf::models {

using analysis::ThroughputConstraint;
using dataflow::ActorId;
using dataflow::RateSet;
using dataflow::VrdfGraph;

std::optional<VrdfGraph> with_scaled_response_times(
    const VrdfGraph& graph, const ThroughputConstraint& constraint,
    Rational fraction) {
  return with_scaled_response_times(graph, analysis::ConstraintSet{constraint},
                                    fraction);
}

std::optional<VrdfGraph> with_scaled_response_times(
    const VrdfGraph& graph, const analysis::ConstraintSet& constraints,
    Rational fraction) {
  VRDF_REQUIRE(fraction.is_positive() && fraction <= Rational(1),
               "response fraction must be in (0, 1]");
  const analysis::PacingResult pacing =
      analysis::compute_pacing(graph, constraints);
  if (!pacing.ok) {
    return std::nullopt;
  }
  // φ per actor id (pacing is reported in chain order).
  std::vector<Duration> phi(graph.actor_count());
  for (std::size_t i = 0; i < pacing.actors_in_order.size(); ++i) {
    phi[pacing.actors_in_order[i].index()] = pacing.pacing[i];
  }
  VrdfGraph out;
  for (const ActorId a : graph.actors()) {
    (void)out.add_actor(graph.actor(a).name, phi[a.index()] * fraction);
  }
  for (const dataflow::BufferEdges& b : graph.buffers()) {
    const dataflow::Edge& data = graph.edge(b.data);
    const dataflow::Edge& space = graph.edge(b.space);
    // Total capacity = free containers + containers occupied by initial
    // data tokens (back-edges of cyclic models carry the latter).
    (void)out.add_buffer(data.source, data.target, data.production,
                         data.consumption,
                         space.initial_tokens + data.initial_tokens,
                         data.initial_tokens);
  }
  return out;
}

SyntheticChain make_random_chain(const RandomChainSpec& spec) {
  VRDF_REQUIRE(spec.length >= 2, "a chain needs at least two actors");
  VRDF_REQUIRE(spec.max_quantum >= 1, "max quantum must be positive");
  VRDF_REQUIRE(spec.variable_percent >= 0 && spec.variable_percent <= 100,
               "variable_percent must be a percentage");
  VRDF_REQUIRE(spec.zero_percent >= 0 && spec.zero_percent <= 100,
               "zero_percent must be a percentage");
  std::mt19937_64 rng(spec.seed);
  std::uniform_int_distribution<std::int64_t> quantum(1, spec.max_quantum);
  std::uniform_int_distribution<int> percent(0, 99);

  // A set on the side that must stay positive (the rate-determining side).
  const auto positive_set = [&]() -> RateSet {
    if (percent(rng) < spec.variable_percent) {
      std::int64_t a = quantum(rng);
      std::int64_t b = quantum(rng);
      if (a > b) {
        std::swap(a, b);
      }
      if (a == b) {
        return RateSet::singleton(a);
      }
      return RateSet::interval(a, b);
    }
    return RateSet::singleton(quantum(rng));
  };
  // A set on the tolerant side, which may include zero.
  const auto tolerant_set = [&]() -> RateSet {
    if (percent(rng) < spec.variable_percent) {
      const std::int64_t hi = quantum(rng);
      const std::int64_t lo =
          percent(rng) < spec.zero_percent
              ? 0
              : std::uniform_int_distribution<std::int64_t>(1, hi)(rng);
      if (lo == hi) {
        return RateSet::singleton(hi);
      }
      return RateSet::interval(lo, hi);
    }
    return RateSet::singleton(quantum(rng));
  };

  VrdfGraph bare;
  std::vector<ActorId> actors;
  actors.reserve(spec.length);
  const Duration dummy = seconds(Rational(1));
  for (std::size_t i = 0; i < spec.length; ++i) {
    actors.push_back(bare.add_actor("t" + std::to_string(i), dummy));
  }
  for (std::size_t i = 0; i + 1 < spec.length; ++i) {
    // Sink-constrained: production must stay positive, consumption may
    // contain zero.  Source-constrained: mirrored.
    const RateSet production =
        spec.source_constrained ? tolerant_set() : positive_set();
    const RateSet consumption =
        spec.source_constrained ? positive_set() : tolerant_set();
    (void)bare.add_buffer(actors[i], actors[i + 1], production, consumption);
  }

  const ActorId constrained =
      spec.source_constrained ? actors.front() : actors.back();
  const ThroughputConstraint constraint{constrained, spec.period};
  auto scaled =
      with_scaled_response_times(bare, constraint, spec.response_fraction);
  VRDF_REQUIRE(scaled.has_value(),
               "generated chain must be admissible by construction");
  return SyntheticChain{std::move(*scaled), constraint};
}

namespace {

/// One fork-join stage of the bare generator output: the actor the stage
/// forked from, its join, and the actors strictly inside the branches —
/// together the actor set of any feedback loop closed around the stage.
struct ForkJoinStage {
  ActorId fork_tail;
  ActorId join;
  std::vector<ActorId> branch_actors;
};

/// The bare (dummy response times, unsized buffers) fork-join graph plus
/// the structure the cyclic generator needs to close loops.
struct ForkJoinBare {
  VrdfGraph graph;
  ActorId source;
  ActorId sink;
  std::vector<ForkJoinStage> stages;
  std::vector<std::int64_t> gear;  // by actor id
};

ForkJoinBare build_random_fork_join_bare(const RandomForkJoinSpec& spec) {
  VRDF_REQUIRE(spec.stages >= 1, "need at least one fork-join stage");
  VRDF_REQUIRE(spec.max_branches >= 2, "a fork needs at least two branches");
  VRDF_REQUIRE(spec.max_branch_length >= 1, "branches need at least one actor");
  VRDF_REQUIRE(spec.max_gear >= 1, "max gear must be positive");
  VRDF_REQUIRE(spec.max_quantum >= spec.max_gear,
               "max quantum must cover the gear range");
  VRDF_REQUIRE(spec.variable_percent >= 0 && spec.variable_percent <= 100,
               "variable_percent must be a percentage");
  VRDF_REQUIRE(spec.zero_percent >= 0 && spec.zero_percent <= 100,
               "zero_percent must be a percentage");
  std::mt19937_64 rng(spec.seed);
  std::uniform_int_distribution<std::int64_t> gear_draw(1, spec.max_gear);
  std::uniform_int_distribution<int> percent(0, 99);

  ForkJoinBare out;
  VrdfGraph& bare = out.graph;
  std::vector<std::int64_t>& gear = out.gear;  // by actor id
  const Duration dummy = seconds(Rational(1));
  const auto new_actor = [&](const std::string& name) {
    const ActorId id = bare.add_actor(name, dummy);
    gear.push_back(gear_draw(rng));
    return id;
  };

  // Chain-segment edges: the rate-determining side of edge x→y is pinned
  // to the gears, the other side varies freely.  Sink mode: π̌ = g(x)
  // (tail may reach max_quantum), γ̂ = g(y) (tail may reach zero).
  // Source mode mirrored.
  const auto pinned_min = [&](std::int64_t g) -> RateSet {
    if (percent(rng) < spec.variable_percent && g < spec.max_quantum) {
      const std::int64_t hi =
          std::uniform_int_distribution<std::int64_t>(g, spec.max_quantum)(rng);
      if (hi > g) {
        return RateSet::interval(g, hi);
      }
    }
    return RateSet::singleton(g);
  };
  const auto pinned_max = [&](std::int64_t g) -> RateSet {
    if (percent(rng) < spec.variable_percent) {
      const std::int64_t lo =
          percent(rng) < spec.zero_percent
              ? 0
              : std::uniform_int_distribution<std::int64_t>(1, g)(rng);
      if (lo < g) {
        return RateSet::interval(lo, g);
      }
    }
    return RateSet::singleton(g);
  };
  const auto add_segment_buffer = [&](ActorId x, ActorId y) {
    const std::int64_t gx = gear[x.index()];
    const std::int64_t gy = gear[y.index()];
    const RateSet production =
        spec.source_constrained ? pinned_max(gx) : pinned_min(gx);
    const RateSet consumption =
        spec.source_constrained ? pinned_min(gy) : pinned_max(gy);
    (void)bare.add_buffer(x, y, production, consumption);
  };
  // Block-internal edges: exact gear singletons keep sibling-branch flows
  // proportional for every admissible sequence (see RandomForkJoinSpec).
  const auto add_block_buffer = [&](ActorId x, ActorId y) {
    (void)bare.add_buffer(x, y, RateSet::singleton(gear[x.index()]),
                          RateSet::singleton(gear[y.index()]));
  };
  std::uniform_int_distribution<std::size_t> branch_count(2, spec.max_branches);
  std::uniform_int_distribution<std::size_t> branch_length(
      1, spec.max_branch_length);
  std::uniform_int_distribution<std::size_t> segment_length(
      0, spec.max_segment_length);
  // Appends a chain segment of variable-rate actors after `tail`.
  const auto add_segment = [&](ActorId tail, const std::string& prefix) {
    const std::size_t length = segment_length(rng);
    for (std::size_t i = 0; i < length; ++i) {
      const ActorId node = new_actor(prefix + "_" + std::to_string(i));
      add_segment_buffer(tail, node);
      tail = node;
    }
    return tail;
  };

  out.source = new_actor("src");
  ActorId tail = out.source;
  for (std::size_t stage = 0; stage < spec.stages; ++stage) {
    const std::string prefix = "s" + std::to_string(stage);
    tail = add_segment(tail, prefix + "_pre");
    ForkJoinStage record;
    record.fork_tail = tail;
    const ActorId join = new_actor(prefix + "_join");
    record.join = join;
    const std::size_t branches = branch_count(rng);
    for (std::size_t b = 0; b < branches; ++b) {
      ActorId prev = tail;
      const std::size_t length = branch_length(rng);
      for (std::size_t i = 0; i < length; ++i) {
        const ActorId node = new_actor(prefix + "_b" + std::to_string(b) +
                                       "_" + std::to_string(i));
        record.branch_actors.push_back(node);
        add_block_buffer(prev, node);
        prev = node;
      }
      add_block_buffer(prev, join);
    }
    out.stages.push_back(std::move(record));
    tail = join;
  }
  tail = add_segment(tail, "post");
  out.sink = new_actor("snk");
  add_segment_buffer(tail, out.sink);
  return out;
}

}  // namespace

SyntheticChain make_random_fork_join(const RandomForkJoinSpec& spec) {
  ForkJoinBare bare = build_random_fork_join_bare(spec);
  const ActorId constrained = spec.source_constrained ? bare.source : bare.sink;
  const ThroughputConstraint constraint{constrained, spec.period};
  auto scaled =
      with_scaled_response_times(bare.graph, constraint, spec.response_fraction);
  VRDF_REQUIRE(scaled.has_value(),
               "generated fork-join graph must be admissible by construction");
  return SyntheticChain{std::move(*scaled), constraint};
}

SyntheticChain make_random_cyclic(const RandomCyclicSpec& spec) {
  VRDF_REQUIRE(spec.feedback_percent >= 0 && spec.feedback_percent <= 100,
               "feedback_percent must be a percentage");
  VRDF_REQUIRE(spec.token_slack_batches >= 0,
               "token_slack_batches must be non-negative");
  ForkJoinBare bare = build_random_fork_join_bare(spec.base);
  const ActorId constrained =
      spec.base.source_constrained ? bare.source : bare.sink;
  const ThroughputConstraint constraint{constrained, spec.base.period};

  // A dedicated stream keeps the skeleton draws identical to the acyclic
  // generator for the same base spec; decorrelate() is the published
  // PR 3 derivation, kept bit-compatible (see util/seed_stream.hpp).
  std::mt19937_64 rng(util::decorrelate(spec.base.seed));
  std::uniform_int_distribution<int> percent(0, 99);
  bool closed_any = false;
  for (std::size_t s = 0; s < bare.stages.size(); ++s) {
    const bool last = s + 1 == bare.stages.size();
    const bool close = percent(rng) < spec.feedback_percent ||
                       (last && !closed_any);
    if (!close) {
      continue;
    }
    closed_any = true;
    const ForkJoinStage& stage = bare.stages[s];
    // Gear rates keep the loop flow-consistent with the skeleton pacing;
    // a provisional single token batch marks the edge as feedback — the
    // real δ is sized below from the analysis' own requirement.
    (void)bare.graph.add_buffer(
        stage.join, stage.fork_tail,
        RateSet::singleton(bare.gear[stage.join.index()]),
        RateSet::singleton(bare.gear[stage.fork_tail.index()]),
        /*capacity=*/0,
        /*initial_tokens=*/bare.gear[stage.fork_tail.index()]);
  }

  auto scaled = with_scaled_response_times(bare.graph, constraint,
                                           spec.base.response_fraction);
  VRDF_REQUIRE(scaled.has_value(),
               "generated cyclic graph must be admissible by construction");
  VrdfGraph graph = std::move(*scaled);

  // The schedule-alignment leads (and with them each back-edge's required
  // initial tokens) are δ-independent, so one probe analysis sizes every
  // loop exactly: δ = required + slack batches of phase-2 headroom.
  const analysis::GraphAnalysis probe =
      analysis::compute_buffer_capacities(graph, constraint);
  VRDF_REQUIRE(!probe.pairs.empty(),
               "generated cyclic graph must reach the capacity stage");
  for (const analysis::PairAnalysis& pair : probe.pairs) {
    if (pair.is_feedback) {
      const std::int64_t gamma =
          graph.edge(pair.buffer.data).consumption.min();
      graph.set_initial_tokens(
          pair.buffer.data,
          pair.required_initial_tokens + spec.token_slack_batches * gamma);
    }
  }
  return SyntheticChain{std::move(graph), constraint};
}

FeedbackPipeline make_feedback_pipeline() {
  VrdfGraph bare;
  const Duration dummy = seconds(Rational(1));
  FeedbackPipeline model;
  model.src = bare.add_actor("src", dummy);
  model.dec = bare.add_actor("dec", dummy);
  model.present = bare.add_actor("present", dummy);
  model.rctl = bare.add_actor("rctl", dummy);

  // Gears src 4 / dec 2 / rctl 1 / present 1: every edge pins
  // π = g(producer), γ = g(consumer), so the loop's flow balances
  // (φ(v) = g(v)·τ) and the skeleton paces rctl through rctl→src.  The
  // back-edge dec→rctl carries δ = 12 circulating block reports: at tight
  // response times the loop's schedule-alignment credit requirement is
  // (ω(rctl) − ω(dec) + ρ(dec) + s·(π̂−1))/s = (8τ + 2τ + τ)/τ = 11
  // tokens, and δ = 12 keeps one batch of headroom.  The only variable
  // rates live on the dec→present bridge: the 25 Hz presenter may drop a
  // frame (zero quantum).
  model.src_dec = bare.add_buffer(model.src, model.dec, RateSet::singleton(4),
                                  RateSet::singleton(2));
  model.dec_present = bare.add_buffer(model.dec, model.present,
                                      RateSet::singleton(2), RateSet::of({0, 1}));
  model.dec_rctl =
      bare.add_buffer(model.dec, model.rctl, RateSet::singleton(2),
                      RateSet::singleton(1), /*capacity=*/0,
                      /*initial_tokens=*/12);
  model.rctl_src = bare.add_buffer(model.rctl, model.src, RateSet::singleton(1),
                                   RateSet::singleton(4));

  model.constraint =
      analysis::ThroughputConstraint{model.present, milliseconds(Rational(40))};
  auto scaled = with_scaled_response_times(bare, model.constraint, Rational(1));
  VRDF_REQUIRE(scaled.has_value(), "feedback pipeline must be admissible");
  model.graph = std::move(*scaled);
  return model;
}

AvSyncPipeline make_av_sync_pipeline() {
  VrdfGraph bare;
  const Duration dummy = seconds(Rational(1));
  AvSyncPipeline model;
  model.src = bare.add_actor("src", dummy);
  model.demux = bare.add_actor("demux", dummy);
  model.adec = bare.add_actor("adec", dummy);
  model.vdec = bare.add_actor("vdec", dummy);
  model.sync = bare.add_actor("sync", dummy);
  model.present = bare.add_actor("present", dummy);

  // Gears: src 4, demux 2, adec 3, vdec 8, sync 1, present 1 — every edge
  // pins π̌ = g(producer), γ̂ = g(consumer), so both decoder branches
  // demand the same pacing of the demultiplexer (φ(v) = g(v)·τ).  The
  // fork-join block demux → {adec, vdec} → sync carries exact gear
  // singletons (flow-balanced: per demux firing, 2 audio units become
  // 2 PCM blocks while 2 video units become 2 picture tiles, and sync
  // joins one of each), while the data-dependent variability lives on the
  // chain segments: the demultiplexer consumes 0-2 stream sectors per
  // firing (none while seeking), and the 25 Hz presentation actor
  // consumes at most one composed frame (zero on a dropped frame).
  model.src_demux = bare.add_buffer(model.src, model.demux,
                                    RateSet::singleton(4), RateSet::of({0, 1, 2}));
  model.demux_adec = bare.add_buffer(model.demux, model.adec,
                                     RateSet::singleton(2), RateSet::singleton(3));
  model.demux_vdec = bare.add_buffer(model.demux, model.vdec,
                                     RateSet::singleton(2), RateSet::singleton(8));
  model.adec_sync = bare.add_buffer(model.adec, model.sync,
                                    RateSet::singleton(3), RateSet::singleton(1));
  model.vdec_sync = bare.add_buffer(model.vdec, model.sync,
                                    RateSet::singleton(8), RateSet::singleton(1));
  model.sync_present = bare.add_buffer(model.sync, model.present,
                                       RateSet::singleton(1), RateSet::of({0, 1}));

  model.constraint =
      ThroughputConstraint{model.present, milliseconds(Rational(40))};
  auto scaled = with_scaled_response_times(bare, model.constraint, Rational(1));
  VRDF_REQUIRE(scaled.has_value(), "A/V pipeline must be admissible");
  model.graph = std::move(*scaled);
  return model;
}

AvDualSinkPipeline make_av_dual_sink_pipeline() {
  VrdfGraph bare;
  const Duration dummy = seconds(Rational(1));
  AvDualSinkPipeline model;
  model.src = bare.add_actor("src", dummy);
  model.demux = bare.add_actor("demux", dummy);
  model.adec = bare.add_actor("adec", dummy);
  model.vdec = bare.add_actor("vdec", dummy);
  model.apresent = bare.add_actor("apresent", dummy);
  model.vpresent = bare.add_actor("vpresent", dummy);

  // Gears src 4, demux 2, adec 3, vdec 8, apresent 3, vpresent 8; λ = 5 ms
  // gives φ(src) 20 ms, φ(demux) 10 ms, φ(adec) = τ(apresent) = 15 ms and
  // φ(vdec) = τ(vpresent) = 40 ms.  Per 10 ms the demultiplexer emits
  // 2 audio units (adec decodes 3 per 15 ms — same 200/s rate) and
  // 2 video units (vdec decodes 8 per 40 ms — 200/s again), so both
  // presenter constraints demand exactly φ(demux) = 10 ms of the shared
  // demultiplexer: flow-consistent with two different periods.  The
  // branch edges carry static rates — a presenter whose realized drain
  // could undercut its worst case (e.g. a 0-quantum "drop") would let one
  // branch fill, block the shared demultiplexer and starve the *other*
  // presenter, which is exactly what the analysis' constraint-coupling
  // rule rejects; a dropped frame is modelled as consumed-and-discarded.
  // The data-dependent variability lives on the shared chain segment:
  // the demultiplexer consumes 0-2 stream sectors per firing (none while
  // seeking) without affecting its static production.
  model.src_demux = bare.add_buffer(model.src, model.demux,
                                    RateSet::singleton(4), RateSet::of({0, 1, 2}));
  model.demux_adec = bare.add_buffer(model.demux, model.adec,
                                     RateSet::singleton(2), RateSet::singleton(3));
  model.demux_vdec = bare.add_buffer(model.demux, model.vdec,
                                     RateSet::singleton(2), RateSet::singleton(8));
  model.adec_apresent = bare.add_buffer(model.adec, model.apresent,
                                        RateSet::singleton(3), RateSet::singleton(3));
  model.vdec_vpresent = bare.add_buffer(model.vdec, model.vpresent,
                                        RateSet::singleton(8), RateSet::singleton(8));

  model.constraints = {
      ThroughputConstraint{model.apresent, milliseconds(Rational(15))},
      ThroughputConstraint{model.vpresent, milliseconds(Rational(40))}};
  auto scaled = with_scaled_response_times(bare, model.constraints, Rational(1));
  VRDF_REQUIRE(scaled.has_value(), "dual-sink A/V pipeline must be admissible");
  model.graph = std::move(*scaled);
  return model;
}

SyntheticMultiConstraint make_random_multi_sink(const RandomMultiSinkSpec& spec) {
  VRDF_REQUIRE(spec.sinks >= 2, "a multi-sink model needs at least two sinks");
  VRDF_REQUIRE(spec.max_gear >= 1, "max gear must be positive");
  VRDF_REQUIRE(spec.max_quantum >= spec.max_gear,
               "max quantum must cover the gear range");
  VRDF_REQUIRE(spec.variable_percent >= 0 && spec.variable_percent <= 100,
               "variable_percent must be a percentage");
  VRDF_REQUIRE(spec.zero_percent >= 0 && spec.zero_percent <= 100,
               "zero_percent must be a percentage");
  std::mt19937_64 rng(spec.seed);
  std::uniform_int_distribution<std::int64_t> gear_draw(1, spec.max_gear);
  std::uniform_int_distribution<int> percent(0, 99);

  VrdfGraph bare;
  std::vector<std::int64_t> gear;  // by actor id
  const Duration dummy = seconds(Rational(1));
  const auto new_actor = [&](const std::string& name) {
    const ActorId id = bare.add_actor(name, dummy);
    gear.push_back(gear_draw(rng));
    return id;
  };
  // Prefix (shared chain segment) edges x→y pin the rate-determining
  // quanta to the gears (π̌ = g(x), γ̂ = g(y)); the free ends vary like
  // in make_random_chain.  Branch edges must be static gear singletons:
  // a variable realized flow past the fork could block it and starve a
  // sibling sink (the analysis' constraint-coupling rule).
  const auto add_gear_buffer = [&](ActorId x, ActorId y) {
    const std::int64_t gx = gear[x.index()];
    const std::int64_t gy = gear[y.index()];
    RateSet production = RateSet::singleton(gx);
    if (percent(rng) < spec.variable_percent && gx < spec.max_quantum) {
      const std::int64_t hi =
          std::uniform_int_distribution<std::int64_t>(gx, spec.max_quantum)(rng);
      if (hi > gx) {
        production = RateSet::interval(gx, hi);
      }
    }
    RateSet consumption = RateSet::singleton(gy);
    if (percent(rng) < spec.variable_percent) {
      const std::int64_t lo =
          percent(rng) < spec.zero_percent
              ? 0
              : std::uniform_int_distribution<std::int64_t>(1, gy)(rng);
      if (lo < gy) {
        consumption = RateSet::interval(lo, gy);
      }
    }
    (void)bare.add_buffer(x, y, production, consumption);
  };
  const auto add_static_buffer = [&](ActorId x, ActorId y) {
    (void)bare.add_buffer(x, y, RateSet::singleton(gear[x.index()]),
                          RateSet::singleton(gear[y.index()]));
  };

  ActorId tail = new_actor("src");
  const std::size_t prefix =
      std::uniform_int_distribution<std::size_t>(0, spec.max_prefix_length)(rng);
  for (std::size_t i = 0; i < prefix; ++i) {
    const ActorId node = new_actor("pre_" + std::to_string(i));
    add_gear_buffer(tail, node);
    tail = node;
  }
  SyntheticMultiConstraint out;
  for (std::size_t k = 0; k < spec.sinks; ++k) {
    ActorId prev = tail;
    const std::size_t length = std::uniform_int_distribution<std::size_t>(
        0, spec.max_branch_length)(rng);
    for (std::size_t i = 0; i < length; ++i) {
      const ActorId node =
          new_actor("b" + std::to_string(k) + "_" + std::to_string(i));
      add_static_buffer(prev, node);
      prev = node;
    }
    const ActorId sink = new_actor("snk" + std::to_string(k));
    add_static_buffer(prev, sink);
    // τ_k = g(sink_k)·λ keeps every demand at φ(v) = g(v)·λ — the sinks
    // run at genuinely different rates yet stay flow-consistent.
    out.constraints.push_back(ThroughputConstraint{
        sink, spec.base_period * Rational(gear[sink.index()])});
  }

  auto scaled =
      with_scaled_response_times(bare, out.constraints, spec.response_fraction);
  VRDF_REQUIRE(scaled.has_value(),
               "generated multi-sink graph must be admissible by construction");
  out.graph = std::move(*scaled);
  return out;
}

InteriorPinnedPipeline make_interior_pinned_pipeline() {
  VrdfGraph bare;
  const Duration dummy = seconds(Rational(1));
  InteriorPinnedPipeline model;
  model.source = bare.add_actor("source", dummy);
  model.dec = bare.add_actor("dec", dummy);
  model.dsp = bare.add_actor("dsp", dummy);
  model.render = bare.add_actor("render", dummy);
  model.sink = bare.add_actor("sink", dummy);

  // Gears source 4 / dec 2 / dsp 1 / render 2 / sink 8, τ = 5 ms:
  // φ(source) 20 ms, φ(dec) 10 ms, φ(dsp) 5 ms, φ(render) 10 ms,
  // φ(sink) 40 ms — every bound rate is 5 ms per token.  Upstream of the
  // pin the edges are consumer-determined (the decoder may consume
  // nothing while seeking — zero quantum — and emits 2-5 coded blocks
  // per firing); downstream they are producer-determined (the renderer
  // may emit nothing for a dropped frame).  dec→dsp is static: the pin
  // consumes exactly one block per 5 ms period, so the pair degenerates
  // to the data-independent technique and takes the tight capacity.
  model.source_dec = bare.add_buffer(model.source, model.dec,
                                     RateSet::singleton(4), RateSet::of({0, 1, 2}));
  model.dec_dsp = bare.add_buffer(model.dec, model.dsp, RateSet::singleton(2),
                                  RateSet::singleton(1));
  model.dsp_render = bare.add_buffer(model.dsp, model.render,
                                     RateSet::singleton(1), RateSet::interval(2, 4));
  model.render_sink = bare.add_buffer(model.render, model.sink,
                                      RateSet::interval(0, 2), RateSet::singleton(8));

  model.constraint =
      analysis::ThroughputConstraint{model.dsp, milliseconds(Rational(5))};
  auto scaled = with_scaled_response_times(bare, model.constraint, Rational(1));
  VRDF_REQUIRE(scaled.has_value(), "interior-pinned pipeline must be admissible");
  model.graph = std::move(*scaled);
  return model;
}

SyntheticChain make_random_interior_pinned(const RandomInteriorPinSpec& spec) {
  VRDF_REQUIRE(spec.upstream_length >= 1 && spec.downstream_length >= 1,
               "an interior pin needs actors on both sides");
  VRDF_REQUIRE(spec.max_gear >= 1, "max gear must be positive");
  VRDF_REQUIRE(spec.max_quantum >= spec.max_gear,
               "max quantum must cover the gear range");
  VRDF_REQUIRE(spec.variable_percent >= 0 && spec.variable_percent <= 100,
               "variable_percent must be a percentage");
  VRDF_REQUIRE(spec.zero_percent >= 0 && spec.zero_percent <= 100,
               "zero_percent must be a percentage");
  std::mt19937_64 rng(spec.seed);
  std::uniform_int_distribution<std::int64_t> gear_draw(1, spec.max_gear);
  std::uniform_int_distribution<int> percent(0, 99);

  VrdfGraph bare;
  std::vector<std::int64_t> gear;  // by actor id
  const Duration dummy = seconds(Rational(1));
  const auto new_actor = [&](const std::string& name) {
    const ActorId id = bare.add_actor(name, dummy);
    gear.push_back(gear_draw(rng));
    return id;
  };
  // The rate-determining side of every edge is pinned to the gears; the
  // free side varies like in make_random_chain.  Upstream (sink-mode):
  // π̌ = g(x) with a free tail up to max_quantum, γ̂ = g(y) with a free
  // tail down to zero.  Downstream (source-mode): mirrored.
  const auto pinned_min = [&](std::int64_t g) -> RateSet {
    if (percent(rng) < spec.variable_percent && g < spec.max_quantum) {
      const std::int64_t hi =
          std::uniform_int_distribution<std::int64_t>(g, spec.max_quantum)(rng);
      if (hi > g) {
        return RateSet::interval(g, hi);
      }
    }
    return RateSet::singleton(g);
  };
  const auto pinned_max = [&](std::int64_t g) -> RateSet {
    if (percent(rng) < spec.variable_percent) {
      const std::int64_t lo =
          percent(rng) < spec.zero_percent
              ? 0
              : std::uniform_int_distribution<std::int64_t>(1, g)(rng);
      if (lo < g) {
        return RateSet::interval(lo, g);
      }
    }
    return RateSet::singleton(g);
  };

  std::vector<ActorId> actors;
  for (std::size_t i = 0; i < spec.upstream_length; ++i) {
    actors.push_back(new_actor("u" + std::to_string(i)));
  }
  const ActorId pin = new_actor("pin");
  actors.push_back(pin);
  for (std::size_t i = 0; i < spec.downstream_length; ++i) {
    actors.push_back(new_actor("d" + std::to_string(i)));
  }
  for (std::size_t i = 0; i + 1 < actors.size(); ++i) {
    const ActorId x = actors[i];
    const ActorId y = actors[i + 1];
    const bool upstream_of_pin = i < spec.upstream_length;
    const RateSet production = upstream_of_pin ? pinned_min(gear[x.index()])
                                               : pinned_max(gear[x.index()]);
    const RateSet consumption = upstream_of_pin ? pinned_max(gear[y.index()])
                                                : pinned_min(gear[y.index()]);
    (void)bare.add_buffer(x, y, production, consumption);
  }

  const analysis::ThroughputConstraint constraint{pin, spec.period};
  auto scaled =
      with_scaled_response_times(bare, constraint, spec.response_fraction);
  VRDF_REQUIRE(scaled.has_value(),
               "generated interior-pinned chain must be admissible by "
               "construction");
  return SyntheticChain{std::move(*scaled), constraint};
}

SyntheticChain make_video_pipeline() {
  VrdfGraph bare;
  const Duration dummy = seconds(Rational(1));
  const ActorId reader = bare.add_actor("reader", dummy);
  const ActorId demux = bare.add_actor("demux", dummy);
  const ActorId vld = bare.add_actor("vld", dummy);
  const ActorId idct = bare.add_actor("idct", dummy);
  const ActorId display = bare.add_actor("display", dummy);

  // reader: 64-byte chunks; demux: variable-size payloads; vld: variable
  // number of coded macroblock bytes per row, possibly none (skipped row);
  // idct: 4 blocks per firing; display: one frame of 6 block-groups.
  (void)bare.add_buffer(reader, demux, RateSet::singleton(64),
                        RateSet::interval(8, 32));
  (void)bare.add_buffer(demux, vld, RateSet::singleton(16),
                        RateSet::interval(0, 24));
  (void)bare.add_buffer(vld, idct, RateSet::interval(1, 6),
                        RateSet::singleton(4));
  (void)bare.add_buffer(idct, display, RateSet::singleton(1),
                        RateSet::singleton(6));

  // 25 frames per second.
  const ThroughputConstraint constraint{display, milliseconds(Rational(40))};
  auto scaled = with_scaled_response_times(bare, constraint, Rational(1));
  VRDF_REQUIRE(scaled.has_value(), "video pipeline must be admissible");
  return SyntheticChain{std::move(*scaled), constraint};
}

SyntheticChain make_sensor_acquisition() {
  VrdfGraph bare;
  const Duration dummy = seconds(Rational(1));
  const ActorId adc = bare.add_actor("adc", dummy);
  const ActorId filter = bare.add_actor("filter", dummy);
  const ActorId compressor = bare.add_actor("compressor", dummy);
  const ActorId writer = bare.add_actor("writer", dummy);

  (void)bare.add_buffer(adc, filter, RateSet::singleton(1),
                        RateSet::singleton(64));
  (void)bare.add_buffer(filter, compressor, RateSet::singleton(64),
                        RateSet::singleton(64));
  // The compressor may emit anything from nothing to a full block.
  (void)bare.add_buffer(compressor, writer, RateSet::interval(0, 64),
                        RateSet::singleton(512));

  // The ADC samples at 48 kHz and is the constrained *source* (Sec 4.4).
  const ThroughputConstraint constraint{adc, period_of_hz(Rational(48000))};
  auto scaled = with_scaled_response_times(bare, constraint, Rational(1));
  VRDF_REQUIRE(scaled.has_value(), "acquisition chain must be admissible");
  return SyntheticChain{std::move(*scaled), constraint};
}

const char* class_name(ModelClass model_class) {
  switch (model_class) {
    case ModelClass::Chain: return "chain";
    case ModelClass::ForkJoin: return "fork_join";
    case ModelClass::Cyclic: return "cyclic";
    case ModelClass::MultiConstraint: return "multi_constraint";
    case ModelClass::InteriorPinned: return "interior_pinned";
  }
  return "?";
}

std::optional<ModelClass> parse_model_class(const std::string& name) {
  if (name == "chain") return ModelClass::Chain;
  if (name == "fork_join") return ModelClass::ForkJoin;
  if (name == "cyclic") return ModelClass::Cyclic;
  if (name == "multi_constraint") return ModelClass::MultiConstraint;
  if (name == "interior_pinned") return ModelClass::InteriorPinned;
  return std::nullopt;
}

SyntheticModel make_random_model(const RandomModelSpec& spec) {
  SyntheticModel model;
  switch (spec.model_class) {
    case ModelClass::Chain: {
      RandomChainSpec chain;
      chain.seed = spec.seed;
      chain.response_fraction = spec.response_fraction;
      chain.variable_percent = spec.variable_percent;
      chain.zero_percent = spec.zero_percent;
      chain.source_constrained = spec.source_constrained;
      SyntheticChain generated = make_random_chain(chain);
      model.graph = std::move(generated.graph);
      model.constraints = {generated.constraint};
      break;
    }
    case ModelClass::ForkJoin: {
      RandomForkJoinSpec fork_join;
      fork_join.seed = spec.seed;
      fork_join.response_fraction = spec.response_fraction;
      fork_join.variable_percent = spec.variable_percent;
      fork_join.zero_percent = spec.zero_percent;
      fork_join.source_constrained = spec.source_constrained;
      SyntheticChain generated = make_random_fork_join(fork_join);
      model.graph = std::move(generated.graph);
      model.constraints = {generated.constraint};
      break;
    }
    case ModelClass::Cyclic: {
      RandomCyclicSpec cyclic;
      cyclic.base.seed = spec.seed;
      cyclic.base.response_fraction = spec.response_fraction;
      cyclic.base.variable_percent = spec.variable_percent;
      cyclic.base.zero_percent = spec.zero_percent;
      cyclic.base.source_constrained = spec.source_constrained;
      SyntheticChain generated = make_random_cyclic(cyclic);
      model.graph = std::move(generated.graph);
      model.constraints = {generated.constraint};
      break;
    }
    case ModelClass::MultiConstraint: {
      RandomMultiSinkSpec multi;
      multi.seed = spec.seed;
      multi.response_fraction = spec.response_fraction;
      multi.variable_percent = spec.variable_percent;
      multi.zero_percent = spec.zero_percent;
      SyntheticMultiConstraint generated = make_random_multi_sink(multi);
      model.graph = std::move(generated.graph);
      model.constraints = std::move(generated.constraints);
      break;
    }
    case ModelClass::InteriorPinned: {
      RandomInteriorPinSpec pin;
      pin.seed = spec.seed;
      pin.response_fraction = spec.response_fraction;
      pin.variable_percent = spec.variable_percent;
      pin.zero_percent = spec.zero_percent;
      SyntheticChain generated = make_random_interior_pinned(pin);
      model.graph = std::move(generated.graph);
      model.constraints = {generated.constraint};
      break;
    }
  }

  const analysis::GraphAnalysis analysis =
      analysis::compute_buffer_capacities(model.graph, model.constraints);
  VRDF_REQUIRE(analysis.admissible,
               "generated model must analyse admissibly by construction");
  analysis::apply_capacities(model.graph, analysis);
  if (spec.capacity_headroom > 0) {
    for (const analysis::PairAnalysis& pair : analysis.pairs) {
      const dataflow::EdgeId space = pair.buffer.space;
      model.graph.set_initial_tokens(
          space,
          model.graph.edge(space).initial_tokens + spec.capacity_headroom);
    }
  }
  return model;
}

}  // namespace vrdf::models
