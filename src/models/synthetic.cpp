#include "models/synthetic.hpp"

#include <random>
#include <string>

#include "analysis/pacing.hpp"
#include "util/error.hpp"

namespace vrdf::models {

using analysis::ThroughputConstraint;
using dataflow::ActorId;
using dataflow::RateSet;
using dataflow::VrdfGraph;

std::optional<VrdfGraph> with_scaled_response_times(
    const VrdfGraph& graph, const ThroughputConstraint& constraint,
    Rational fraction) {
  VRDF_REQUIRE(fraction.is_positive() && fraction <= Rational(1),
               "response fraction must be in (0, 1]");
  const analysis::PacingResult pacing =
      analysis::compute_pacing(graph, constraint);
  if (!pacing.ok) {
    return std::nullopt;
  }
  // φ per actor id (pacing is reported in chain order).
  std::vector<Duration> phi(graph.actor_count());
  for (std::size_t i = 0; i < pacing.actors_in_order.size(); ++i) {
    phi[pacing.actors_in_order[i].index()] = pacing.pacing[i];
  }
  VrdfGraph out;
  for (const ActorId a : graph.actors()) {
    (void)out.add_actor(graph.actor(a).name, phi[a.index()] * fraction);
  }
  for (const dataflow::BufferEdges& b : graph.buffers()) {
    const dataflow::Edge& data = graph.edge(b.data);
    const dataflow::Edge& space = graph.edge(b.space);
    (void)out.add_buffer(data.source, data.target, data.production,
                         data.consumption, space.initial_tokens);
  }
  return out;
}

SyntheticChain make_random_chain(const RandomChainSpec& spec) {
  VRDF_REQUIRE(spec.length >= 2, "a chain needs at least two actors");
  VRDF_REQUIRE(spec.max_quantum >= 1, "max quantum must be positive");
  VRDF_REQUIRE(spec.variable_percent >= 0 && spec.variable_percent <= 100,
               "variable_percent must be a percentage");
  VRDF_REQUIRE(spec.zero_percent >= 0 && spec.zero_percent <= 100,
               "zero_percent must be a percentage");
  std::mt19937_64 rng(spec.seed);
  std::uniform_int_distribution<std::int64_t> quantum(1, spec.max_quantum);
  std::uniform_int_distribution<int> percent(0, 99);

  // A set on the side that must stay positive (the rate-determining side).
  const auto positive_set = [&]() -> RateSet {
    if (percent(rng) < spec.variable_percent) {
      std::int64_t a = quantum(rng);
      std::int64_t b = quantum(rng);
      if (a > b) {
        std::swap(a, b);
      }
      if (a == b) {
        return RateSet::singleton(a);
      }
      return RateSet::interval(a, b);
    }
    return RateSet::singleton(quantum(rng));
  };
  // A set on the tolerant side, which may include zero.
  const auto tolerant_set = [&]() -> RateSet {
    if (percent(rng) < spec.variable_percent) {
      const std::int64_t hi = quantum(rng);
      const std::int64_t lo =
          percent(rng) < spec.zero_percent
              ? 0
              : std::uniform_int_distribution<std::int64_t>(1, hi)(rng);
      if (lo == hi) {
        return RateSet::singleton(hi);
      }
      return RateSet::interval(lo, hi);
    }
    return RateSet::singleton(quantum(rng));
  };

  VrdfGraph bare;
  std::vector<ActorId> actors;
  actors.reserve(spec.length);
  const Duration dummy = seconds(Rational(1));
  for (std::size_t i = 0; i < spec.length; ++i) {
    actors.push_back(bare.add_actor("t" + std::to_string(i), dummy));
  }
  for (std::size_t i = 0; i + 1 < spec.length; ++i) {
    // Sink-constrained: production must stay positive, consumption may
    // contain zero.  Source-constrained: mirrored.
    const RateSet production =
        spec.source_constrained ? tolerant_set() : positive_set();
    const RateSet consumption =
        spec.source_constrained ? positive_set() : tolerant_set();
    (void)bare.add_buffer(actors[i], actors[i + 1], production, consumption);
  }

  const ActorId constrained =
      spec.source_constrained ? actors.front() : actors.back();
  const ThroughputConstraint constraint{constrained, spec.period};
  auto scaled =
      with_scaled_response_times(bare, constraint, spec.response_fraction);
  VRDF_REQUIRE(scaled.has_value(),
               "generated chain must be admissible by construction");
  return SyntheticChain{std::move(*scaled), constraint};
}

SyntheticChain make_video_pipeline() {
  VrdfGraph bare;
  const Duration dummy = seconds(Rational(1));
  const ActorId reader = bare.add_actor("reader", dummy);
  const ActorId demux = bare.add_actor("demux", dummy);
  const ActorId vld = bare.add_actor("vld", dummy);
  const ActorId idct = bare.add_actor("idct", dummy);
  const ActorId display = bare.add_actor("display", dummy);

  // reader: 64-byte chunks; demux: variable-size payloads; vld: variable
  // number of coded macroblock bytes per row, possibly none (skipped row);
  // idct: 4 blocks per firing; display: one frame of 6 block-groups.
  (void)bare.add_buffer(reader, demux, RateSet::singleton(64),
                        RateSet::interval(8, 32));
  (void)bare.add_buffer(demux, vld, RateSet::singleton(16),
                        RateSet::interval(0, 24));
  (void)bare.add_buffer(vld, idct, RateSet::interval(1, 6),
                        RateSet::singleton(4));
  (void)bare.add_buffer(idct, display, RateSet::singleton(1),
                        RateSet::singleton(6));

  // 25 frames per second.
  const ThroughputConstraint constraint{display, milliseconds(Rational(40))};
  auto scaled = with_scaled_response_times(bare, constraint, Rational(1));
  VRDF_REQUIRE(scaled.has_value(), "video pipeline must be admissible");
  return SyntheticChain{std::move(*scaled), constraint};
}

SyntheticChain make_sensor_acquisition() {
  VrdfGraph bare;
  const Duration dummy = seconds(Rational(1));
  const ActorId adc = bare.add_actor("adc", dummy);
  const ActorId filter = bare.add_actor("filter", dummy);
  const ActorId compressor = bare.add_actor("compressor", dummy);
  const ActorId writer = bare.add_actor("writer", dummy);

  (void)bare.add_buffer(adc, filter, RateSet::singleton(1),
                        RateSet::singleton(64));
  (void)bare.add_buffer(filter, compressor, RateSet::singleton(64),
                        RateSet::singleton(64));
  // The compressor may emit anything from nothing to a full block.
  (void)bare.add_buffer(compressor, writer, RateSet::interval(0, 64),
                        RateSet::singleton(512));

  // The ADC samples at 48 kHz and is the constrained *source* (Sec 4.4).
  const ThroughputConstraint constraint{adc, period_of_hz(Rational(48000))};
  auto scaled = with_scaled_response_times(bare, constraint, Rational(1));
  VRDF_REQUIRE(scaled.has_value(), "acquisition chain must be admissible");
  return SyntheticChain{std::move(*scaled), constraint};
}

}  // namespace vrdf::models
