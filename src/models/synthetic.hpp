// Synthetic model generators for tests, property sweeps and benchmarks.
#pragma once

#include <cstdint>
#include <optional>

#include "analysis/types.hpp"
#include "dataflow/vrdf_graph.hpp"

namespace vrdf::models {

/// A generated chain together with its throughput constraint.
struct SyntheticChain {
  dataflow::VrdfGraph graph;
  analysis::ThroughputConstraint constraint;
};

struct RandomChainSpec {
  std::uint64_t seed = 1;
  /// Number of actors (>= 2).
  std::size_t length = 4;
  /// Quanta are drawn from [1, max_quantum].
  std::int64_t max_quantum = 16;
  /// Probability (percent, 0..100) that a rate set is variable (an
  /// interval or small explicit set) instead of a singleton.
  int variable_percent = 50;
  /// Probability (percent) that a variable consumption set includes zero
  /// (sink-constrained chains tolerate zero consumption quanta).
  int zero_percent = 20;
  /// Period of the constrained sink.
  Duration period = milliseconds(Rational(1));
  /// Response times are set to this fraction of the maximal admissible
  /// value φ(v) (numerator/denominator <= 1); 1/1 reproduces the
  /// paper's tight MP3 setting.
  Rational response_fraction = Rational(1);
  /// Put the constraint on the source instead of the sink (Sec 4.4);
  /// zero quanta then move to the production side.
  bool source_constrained = false;
};

/// A random, admissible, sink- or source-constrained chain: rates are
/// drawn per spec and response times are derived from pacing so that
/// compute_buffer_capacities always succeeds.
[[nodiscard]] SyntheticChain make_random_chain(const RandomChainSpec& spec);

/// A 5-stage variable-rate video decoding pipeline (sink-constrained):
///   reader -> demux -> vld -> idct -> display
/// with a variable-length-decoder stage whose consumption varies per
/// macroblock row, and a 25 Hz display.
[[nodiscard]] SyntheticChain make_video_pipeline();

/// A source-constrained acquisition chain (Sec 4.4):
///   adc -> filter -> compressor -> writer
/// where the ADC is strictly periodic and the compressor has a variable
/// production quantum that may be zero (nothing to emit for a block).
[[nodiscard]] SyntheticChain make_sensor_acquisition();

/// A copy of `graph` whose response times are replaced by
/// fraction · φ(v) for the given constraint — the generator used to
/// produce admissible test instances from bare topologies.  Returns
/// nullopt when pacing fails (not a chain, interior constraint, ...).
[[nodiscard]] std::optional<dataflow::VrdfGraph> with_scaled_response_times(
    const dataflow::VrdfGraph& graph,
    const analysis::ThroughputConstraint& constraint, Rational fraction);

}  // namespace vrdf::models
