// Synthetic model generators for tests, property sweeps and benchmarks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "analysis/types.hpp"
#include "dataflow/vrdf_graph.hpp"

namespace vrdf::models {

/// A generated chain together with its throughput constraint.
struct SyntheticChain {
  dataflow::VrdfGraph graph;
  analysis::ThroughputConstraint constraint;
};

struct RandomChainSpec {
  std::uint64_t seed = 1;
  /// Number of actors (>= 2).
  std::size_t length = 4;
  /// Quanta are drawn from [1, max_quantum].
  std::int64_t max_quantum = 16;
  /// Probability (percent, 0..100) that a rate set is variable (an
  /// interval or small explicit set) instead of a singleton.
  int variable_percent = 50;
  /// Probability (percent) that a variable consumption set includes zero
  /// (sink-constrained chains tolerate zero consumption quanta).
  int zero_percent = 20;
  /// Period of the constrained sink.
  Duration period = milliseconds(Rational(1));
  /// Response times are set to this fraction of the maximal admissible
  /// value φ(v) (numerator/denominator <= 1); 1/1 reproduces the
  /// paper's tight MP3 setting.
  Rational response_fraction = Rational(1);
  /// Put the constraint on the source instead of the sink (Sec 4.4);
  /// zero quanta then move to the production side.
  bool source_constrained = false;
};

/// A random, admissible, sink- or source-constrained chain: rates are
/// drawn per spec and response times are derived from pacing so that
/// compute_buffer_capacities always succeeds.
[[nodiscard]] SyntheticChain make_random_chain(const RandomChainSpec& spec);

/// A 5-stage variable-rate video decoding pipeline (sink-constrained):
///   reader -> demux -> vld -> idct -> display
/// with a variable-length-decoder stage whose consumption varies per
/// macroblock row, and a 25 Hz display.
[[nodiscard]] SyntheticChain make_video_pipeline();

/// A source-constrained acquisition chain (Sec 4.4):
///   adc -> filter -> compressor -> writer
/// where the ADC is strictly periodic and the compressor has a variable
/// production quantum that may be zero (nothing to emit for a block).
[[nodiscard]] SyntheticChain make_sensor_acquisition();

/// A copy of `graph` whose response times are replaced by
/// fraction · φ(v) for the given constraint — the generator used to
/// produce admissible test instances from bare topologies.  Returns
/// nullopt when pacing fails (token-free cyclic data edges, unpaced
/// actors, ...).  Works on any topology and constraint placement
/// compute_pacing accepts — chains, fork-join graphs, interior pins
/// alike.
[[nodiscard]] std::optional<dataflow::VrdfGraph> with_scaled_response_times(
    const dataflow::VrdfGraph& graph,
    const analysis::ThroughputConstraint& constraint, Rational fraction);

/// Constraint-set overload: φ(v) comes from the multi-constraint pacing
/// propagation (the set must be flow-consistent or nullopt is returned).
[[nodiscard]] std::optional<dataflow::VrdfGraph> with_scaled_response_times(
    const dataflow::VrdfGraph& graph,
    const analysis::ConstraintSet& constraints, Rational fraction);

/// Parameters of the random fork-join generator.  Rates follow a "gear"
/// scheme: each actor v gets an integer gear g(v), and every data edge
/// x→y pins its rate-determining quanta to π̌ = g(x), γ̂ = g(y) (sink
/// mode; mirrored π̂ = g(x), γ̌ = g(y) in source mode).  Then
/// φ(v) = g(v)·τ/g(constrained) uniformly, the min over a fork's
/// out-edges is attained by every edge, and the per-pair sufficiency
/// argument of Sec 4 composes across branches.
///
/// Variability placement matters: a variable quantum on an edge *inside*
/// a fork-join block makes the realized token flows of sibling branches
/// diverge (the join drains them in lockstep, so the surplus branch's
/// buffer fills without bound and back-pressure stalls the fork — no
/// finite capacity satisfies the constraint for every admissible
/// sequence).  Block-internal edges therefore carry exact gear singletons
/// {g(x)} / {g(y)}, which keeps sibling flows proportional for *every*
/// sequence; data-dependent rate sets (including zero quanta on the
/// tolerant side) live on the chain segments before the first fork,
/// between stages, and after the last join, exactly like in
/// make_random_chain.
struct RandomForkJoinSpec {
  std::uint64_t seed = 1;
  /// Fork-join stages composed in series (>= 1): each stage forks into
  /// 2..max_branches parallel branches of 1..max_branch_length actors and
  /// joins them again.
  std::size_t stages = 1;
  std::size_t max_branches = 3;
  std::size_t max_branch_length = 2;
  /// Chain actors inserted before the first fork, between stages and
  /// after the last join (0..max_segment_length each).
  std::size_t max_segment_length = 1;
  /// Gears are drawn from [1, max_gear].
  std::int64_t max_gear = 8;
  /// Upper cap for the free (non-gear) end of variable rate sets on chain
  /// segments.
  std::int64_t max_quantum = 16;
  /// Probability (percent) that a chain-segment rate set is variable
  /// around its gear.
  int variable_percent = 50;
  /// Probability (percent) that a variable tolerant-side set includes zero.
  int zero_percent = 20;
  /// Period of the constrained actor.
  Duration period = milliseconds(Rational(1));
  /// Response times are fraction · φ(v); 1/1 is the paper's tight setting.
  Rational response_fraction = Rational(1);
  /// Constrain the unique source instead of the unique sink (Sec 4.4).
  bool source_constrained = false;
};

/// A random, admissible fork-join model: a series of fork-join stages
/// between one data source and one data sink, never a plain chain.
[[nodiscard]] SyntheticChain make_random_fork_join(const RandomForkJoinSpec& spec);

/// Parameters of the random *cyclic* generator: a fork-join graph per
/// `base`, plus back-edges closing feedback loops from stage joins to the
/// actors they forked from.  A back-edge join→tail carries static gear
/// rates (π = {g(join)}, γ = {g(tail)} — flow-consistent with the
/// skeleton pacing by construction) and enough initial tokens to satisfy
/// the cycle bound period ≥ cycle latency / initial-token credit:
/// δ = PairAnalysis::required_initial_tokens (the analysis' own
/// schedule-alignment requirement, which is δ-independent) plus
/// `token_slack_batches` batches of γ tokens.  Every edge of a closed
/// loop lies inside the stage's fork-join block, where rates are static
/// gear singletons — the cyclic model rule (no variable rates on cycle
/// edges) holds by construction.
struct RandomCyclicSpec {
  RandomForkJoinSpec base;
  /// Probability (percent) that a stage closes a feedback loop from its
  /// join back to the actor it forked from.  At least one loop is always
  /// closed (forced on the last stage when the draws produce none).
  int feedback_percent = 60;
  /// Initial-token batches (of γ tokens each) granted beyond the cycle
  /// latency bound — headroom for the phase-2 periodic enforcement of the
  /// verification harness.
  std::int64_t token_slack_batches = 2;
};

/// A random, admissible cyclic model: fork-join stages with at least one
/// tokened back-edge.  The computed capacities are verified sufficient by
/// the two-phase simulation harness in the tests.
[[nodiscard]] SyntheticChain make_random_cyclic(const RandomCyclicSpec& spec);

/// A feedback (rate-control) pipeline — the canonical cyclic topology:
///
///   src ──→ dec ──→ present
///    ▲       ╎
///    │       ╎ dec→rctl: back-edge, δ = 12 initial tokens
///    └─ rctl ←╌┘
///
/// `src` emits stream blocks only against credits issued by the rate
/// controller (rctl→src), the decoder reports consumed blocks to the
/// controller through the tokened back-edge dec→rctl (δ = 12 circulating
/// reports prime the loop src→dec→rctl→src), and `present` consumes
/// composed frames strictly periodically at 25 Hz (dropping some — zero
/// quantum).  Gears src 4 / dec 2 / rctl 1 / present 1; every cycle edge
/// carries static gear rates, the only variable rates live on the
/// dec→present bridge edge.
struct FeedbackPipeline {
  dataflow::VrdfGraph graph;
  dataflow::ActorId src, dec, present, rctl;
  dataflow::BufferEdges src_dec, dec_present, dec_rctl, rctl_src;
  analysis::ThroughputConstraint constraint;  // present at 25 Hz
};
[[nodiscard]] FeedbackPipeline make_feedback_pipeline();

/// An audio/video playback fork-join (sink-constrained):
///
///            ┌─> adec ─┐
///  src → demux          sync → present
///            └─> vdec ─┘
///
/// The source feeds the demultiplexer with variable-size stream chunks,
/// the demultiplexer splits them into fixed audio and video elementary
/// units, the decoders run at their own (gear-matched) rates, `sync`
/// joins one PCM block with one picture tile per composed frame, and the
/// `present` actor consumes composed frames strictly periodically at
/// 25 Hz — dropping some (zero quantum).  Rates follow the gear scheme of
/// RandomForkJoinSpec: both decoder branches impose the same pacing on
/// the demultiplexer and carry flow-balanced static rates, while the
/// data-dependent variability lives on the chain segments around the
/// fork-join block.
struct AvSyncPipeline {
  dataflow::VrdfGraph graph;
  dataflow::ActorId src, demux, adec, vdec, sync, present;
  dataflow::BufferEdges src_demux, demux_adec, demux_vdec, adec_sync,
      vdec_sync, sync_present;
  analysis::ThroughputConstraint constraint;  // present at 25 Hz
};
[[nodiscard]] AvSyncPipeline make_av_sync_pipeline();

/// The dual-presenter variant of the A/V pipeline — the canonical
/// *multi-constraint* topology, with two strictly periodic data sinks:
///
///            ┌─> adec ──> apresent   (66⅔ Hz audio-block rate)
///  src → demux
///            └─> vdec ──> vpresent   (25 Hz video rate)
///
/// Gears src 4 / demux 2 / adec 3 / vdec 8 / apresent 3 / vpresent 8 with
/// λ = 5 ms: every edge pins π̌ = g(producer), γ̂ = g(consumer), so both
/// presenter constraints propagate the *same* demand φ(v) = g(v)·λ onto
/// every shared actor — the flow-consistency requirement of the
/// multi-constraint analysis, satisfied with two genuinely different
/// periods (15 ms audio vs 40 ms video).  The branch edges are static
/// (a dropped frame is consumed-and-discarded): a presenter whose
/// realized drain could undercut its worst case would let its branch
/// back-pressure the shared demultiplexer and starve the sibling — the
/// constraint-coupling rejection.  Variability lives on the shared chain
/// segment: the demultiplexer consumes 0-2 stream sectors per firing.
struct AvDualSinkPipeline {
  dataflow::VrdfGraph graph;
  dataflow::ActorId src, demux, adec, vdec, apresent, vpresent;
  dataflow::BufferEdges src_demux, demux_adec, demux_vdec, adec_apresent,
      vdec_vpresent;
  analysis::ConstraintSet constraints;  // {apresent 15 ms, vpresent 40 ms}
};
[[nodiscard]] AvDualSinkPipeline make_av_dual_sink_pipeline();

/// A generated graph together with its simultaneous constraint set.
struct SyntheticMultiConstraint {
  dataflow::VrdfGraph graph;
  analysis::ConstraintSet constraints;
};

/// Parameters of the random multi-sink generator: a chain prefix feeding a
/// fork whose branches end in distinct strictly periodic sinks.  Rates
/// follow the gear scheme of RandomForkJoinSpec (π̌ pinned to the
/// producer's gear, γ̂ to the consumer's), and each sink k is constrained
/// with period g(sink_k)·base_period — so every constraint propagates the
/// same demand φ(v) = g(v)·base_period onto the shared prefix and the set
/// is flow-consistent by construction while the sink periods genuinely
/// differ.  Variability placement follows the constraint-coupling rule:
/// branch edges past the fork are static gear singletons (a variable
/// realized flow there could block the fork and starve a sibling sink),
/// while the shared prefix carries data-dependent sets, including zero
/// consumption quanta.
struct RandomMultiSinkSpec {
  std::uint64_t seed = 1;
  /// Number of constrained sinks (>= 2), one branch each.
  std::size_t sinks = 2;
  /// Actors per branch between the fork and its sink (0..this many).
  std::size_t max_branch_length = 2;
  /// Chain actors before the fork actor (0..this many).
  std::size_t max_prefix_length = 2;
  /// Gears are drawn from [1, max_gear].
  std::int64_t max_gear = 8;
  /// Upper cap for the free end of variable production sets.
  std::int64_t max_quantum = 16;
  /// Probability (percent) that a prefix rate set is variable around its
  /// gear.
  int variable_percent = 50;
  /// Probability (percent) that a variable consumption set includes zero.
  int zero_percent = 20;
  /// λ: sink k runs at period gear(sink_k)·base_period.
  Duration base_period = milliseconds(Rational(1));
  /// Response times are fraction · φ(v); 1/1 is the paper's tight setting.
  Rational response_fraction = Rational(1);
};

/// A random, admissible multi-sink model whose computed capacities are
/// verified sufficient by the two-phase simulation harness in the tests
/// (every sink enforced strictly periodic at once, zero starvations).
[[nodiscard]] SyntheticMultiConstraint make_random_multi_sink(
    const RandomMultiSinkSpec& spec);

/// The canonical *interior-pin* topology (PR 5): a fixed-rate DSP core
/// strictly periodic in the middle of a media chain,
///
///   source → dec → **dsp** → render → sink
///
/// with the throughput constraint on `dsp` (5 ms).  The pin splits the
/// chain: source→dec→dsp is paced upstream exactly like a
/// sink-constrained chain (consumer-determined, zero-tolerant
/// consumption quanta), dsp→render→sink downstream like a
/// source-constrained chain (producer-determined, zero-tolerant
/// production quanta).  Gears source 4 / dec 2 / dsp 1 / render 2 /
/// sink 8 with tight response times ρ(v) = φ(v) give hand-computable
/// capacities {11, 4, 7, 19} (dec→dsp takes the tight ⌈x⌉ — the pin's
/// consumption grid is exact, the same argument as a constrained sink).
struct InteriorPinnedPipeline {
  dataflow::VrdfGraph graph;
  dataflow::ActorId source, dec, dsp, render, sink;
  dataflow::BufferEdges source_dec, dec_dsp, dsp_render, render_sink;
  analysis::ThroughputConstraint constraint;  // dsp, strictly periodic 5 ms
};
[[nodiscard]] InteriorPinnedPipeline make_interior_pinned_pipeline();

/// Parameters of the random interior-pin generator: a chain of
/// `upstream_length` actors feeding a strictly periodic pin feeding
/// `downstream_length` actors.  Rates follow the gear scheme
/// (φ(v) = g(v)·τ/g(pin)); upstream edges pin π̌/γ̂ to the gears with
/// sink-mode variability (zero-tolerant consumption), downstream edges
/// pin π̂/γ̌ with source-mode variability (zero-tolerant production) —
/// each side exercises exactly the variability its pacing direction
/// tolerates.
struct RandomInteriorPinSpec {
  std::uint64_t seed = 1;
  /// Actors strictly before / after the pin (>= 1 each).
  std::size_t upstream_length = 2;
  std::size_t downstream_length = 2;
  /// Gears are drawn from [1, max_gear].
  std::int64_t max_gear = 8;
  /// Upper cap for the free (non-gear) end of variable rate sets.
  std::int64_t max_quantum = 16;
  /// Probability (percent) that a rate set is variable around its gear.
  int variable_percent = 50;
  /// Probability (percent) that a variable tolerant-side set includes zero.
  int zero_percent = 20;
  /// Period of the pinned interior actor.
  Duration period = milliseconds(Rational(1));
  /// Response times are fraction · φ(v); 1/1 is the paper's tight setting.
  Rational response_fraction = Rational(1);
};

/// A random, admissible chain with a strictly periodic *interior* actor;
/// the computed capacities are verified sufficient by the two-phase
/// simulation harness in the tests (the pin enforced periodic, zero
/// starvations).
[[nodiscard]] SyntheticChain make_random_interior_pinned(
    const RandomInteriorPinSpec& spec);

/// The five structural classes the randomized robustness harness sweeps —
/// one per generator above.
enum class ModelClass {
  Chain,            // make_random_chain
  ForkJoin,         // make_random_fork_join
  Cyclic,           // make_random_cyclic
  MultiConstraint,  // make_random_multi_sink
  InteriorPinned,   // make_random_interior_pinned
};

/// Stable lower-snake names of the model classes, for reports, journals
/// and CLIs: "chain", "fork_join", "cyclic", "multi_constraint",
/// "interior_pinned".
[[nodiscard]] const char* class_name(ModelClass model_class);

/// Inverse of class_name; nullopt for unknown strings.
[[nodiscard]] std::optional<ModelClass> parse_model_class(
    const std::string& name);

/// Uniform front-end over the five generators for parameter sweeps that
/// only care about seed, slack and variability — every other knob stays
/// at the per-generator default.
struct RandomModelSpec {
  ModelClass model_class = ModelClass::Chain;
  std::uint64_t seed = 1;
  /// ρ(v) = fraction · φ(v); below 1 leaves per-actor robustness slack
  /// (the default halves every response time).
  Rational response_fraction = Rational(1, 2);
  int variable_percent = 50;
  int zero_percent = 20;
  /// Extra containers granted to every buffer beyond the analysed
  /// capacity — per-buffer headroom for robustness experiments.
  std::int64_t capacity_headroom = 0;
  /// Constrain the source instead of the sink (Sec 4.4) for the classes
  /// that have a source-constrained form (Chain, ForkJoin, Cyclic);
  /// MultiConstraint and InteriorPinned ignore the flag — their
  /// constraint placement is the class.
  bool source_constrained = false;
};

/// A generated graph that already carries its installed capacities,
/// together with the constraint set they were computed for.
struct SyntheticModel {
  dataflow::VrdfGraph graph;
  analysis::ConstraintSet constraints;
};

/// Generates a random admissible model of the requested class, computes
/// its buffer capacities, installs them (plus `capacity_headroom` per
/// buffer) and returns the ready-to-simulate graph.
[[nodiscard]] SyntheticModel make_random_model(const RandomModelSpec& spec);

}  // namespace vrdf::models
