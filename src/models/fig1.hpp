// The paper's running example (Fig 1 / Fig 2): task wa produces 3 data
// items per execution, task wb consumes either 2 or 3 per execution.
//
// The introduction's observation: with n ≡ 3 the minimum deadlock-free
// capacity is 3, but with n ≡ 2 it is 4 — so sizing for the maximum
// consumption quantum is *not* sufficient for other quanta, which is the
// whole motivation for the VRDF analysis.
#pragma once

#include "analysis/types.hpp"
#include "dataflow/vrdf_graph.hpp"
#include "taskgraph/task_graph.hpp"

namespace vrdf::models {

struct Fig1Model {
  taskgraph::TaskGraph task_graph;
  taskgraph::TaskId wa;
  taskgraph::TaskId wb;
  taskgraph::BufferId buffer;
};

/// The task graph of Fig 1 with configurable worst-case response times.
[[nodiscard]] Fig1Model make_fig1_task_graph(Duration rho_a, Duration rho_b);

struct Fig1Vrdf {
  dataflow::VrdfGraph graph;
  dataflow::ActorId va;
  dataflow::ActorId vb;
  dataflow::BufferEdges buffer;
  analysis::ThroughputConstraint constraint;  // vb strictly periodic
};

/// The VRDF graph of Fig 2 (m = {3}, n = {2,3}) with a throughput
/// constraint of period `tau` on the consumer vb.  Response times default
/// to the maximal admissible values (ρ(vb) = τ, ρ(va) = φ(va) = 2τ/3·...)
/// unless given explicitly.
[[nodiscard]] Fig1Vrdf make_fig1_vrdf(Duration tau, Duration rho_a, Duration rho_b);

}  // namespace vrdf::models
