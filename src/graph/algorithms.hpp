// Topology algorithms used by model validation.
//
// The paper restricts task graphs to *chains* (Sec 3.1): every task has at
// most one input and one output buffer, and the graph is weakly connected.
// chain_order() recognizes that shape and returns the tasks from source to
// sink.  The analysis pipeline itself now runs on any weakly connected
// acyclic topology (fork-join graphs) via topological_order() /
// reverse_topological_order(); chains remain the special case the paper
// treats and are detected for reporting.  The remaining algorithms support
// general-graph diagnostics and the SDF/CSDF substrate (cycle detection,
// SCCs).
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace vrdf::graph {

/// True when the underlying undirected graph is connected.  The empty graph
/// counts as connected.
[[nodiscard]] bool is_weakly_connected(const Digraph& g);

/// Nodes of a directed chain a1 -> a2 -> ... -> ak ordered from the unique
/// source to the unique sink, or nullopt when the graph is not a chain.
/// A single node with no edges is a chain of length one.  Edges are allowed
/// to come in anti-parallel pairs (forward data edge + reverse space edge);
/// `ignore_back_edges` treats an edge b->a as a back edge when a->b also
/// exists and a precedes b in the candidate order.
struct ChainOrder {
  std::vector<NodeId> nodes;                 // source first, sink last
  std::vector<EdgeId> forward_edges;         // forward_edges[i]: nodes[i]->nodes[i+1]
  std::vector<std::vector<EdgeId>> back_edges;  // back_edges[i]: nodes[i+1]->nodes[i]
};
[[nodiscard]] std::optional<ChainOrder> chain_order(const Digraph& g);

/// Topological order of a DAG, or nullopt when the graph has a directed
/// cycle.  Deterministic for a given construction order.
[[nodiscard]] std::optional<std::vector<NodeId>> topological_order(const Digraph& g);

/// topological_order() reversed: every node appears after all of its
/// successors — the traversal order of sink-anchored propagations.
[[nodiscard]] std::optional<std::vector<NodeId>> reverse_topological_order(
    const Digraph& g);

/// True when the graph contains a directed cycle.
[[nodiscard]] bool has_directed_cycle(const Digraph& g);

/// Per edge (indexed by EdgeId), true when the edge is a bridge of the
/// *undirected* multigraph: removing it disconnects its endpoints.
/// Parallel edges are never bridges; self-loops are never bridges.  In a
/// fork-join DAG the bridges are exactly the chain-segment edges — every
/// edge of a reconvergent region lies on an undirected cycle.
[[nodiscard]] std::vector<bool> undirected_bridges(const Digraph& g);

/// Strongly connected components (Tarjan); each component lists its nodes,
/// components are emitted in reverse topological order of the condensation.
[[nodiscard]] std::vector<std::vector<NodeId>> strongly_connected_components(
    const Digraph& g);

/// Edge classification against the SCC condensation: an edge lies on a
/// directed cycle exactly when it is a self-loop or its endpoints share a
/// strongly connected component.  `components` are in topological order of
/// the condensation (source components first), so cross-component edges
/// always point from a lower component index to a higher one.
struct FeedbackArcView {
  /// Condensation component per node (indexed by NodeId::index()).
  std::vector<std::size_t> component_of;
  /// Components in topological order of the condensation.
  std::vector<std::vector<NodeId>> components;
  /// Per edge (indexed by EdgeId::index()): true when the edge lies on a
  /// directed cycle (self-loop or intra-component edge).
  std::vector<bool> edge_on_cycle;
};
[[nodiscard]] FeedbackArcView feedback_arc_view(const Digraph& g);

/// Some directed cycle of the graph as a node sequence n0 -> n1 -> ... ->
/// n0 (the closing edge back to n0 is implied, n0 is not repeated), or
/// nullopt when the graph is acyclic.  A self-loop yields a one-node cycle.
[[nodiscard]] std::optional<std::vector<NodeId>> find_directed_cycle(
    const Digraph& g);

/// True when a directed path src ->* dst exists (src == dst counts as true).
[[nodiscard]] bool has_path(const Digraph& g, NodeId src, NodeId dst);

}  // namespace vrdf::graph
