#include "graph/digraph.hpp"

#include "util/error.hpp"

namespace vrdf::graph {

NodeId Digraph::add_node() {
  const auto id = NodeId(static_cast<NodeId::underlying_type>(node_count()));
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  return id;
}

EdgeId Digraph::add_edge(NodeId src, NodeId dst) {
  VRDF_REQUIRE(contains(src), "edge source node does not exist");
  VRDF_REQUIRE(contains(dst), "edge target node does not exist");
  const auto id = EdgeId(static_cast<EdgeId::underlying_type>(edge_count()));
  edges_.push_back(EdgeRecord{src, dst});
  out_edges_[src.index()].push_back(id);
  in_edges_[dst.index()].push_back(id);
  return id;
}

NodeId Digraph::edge_source(EdgeId e) const {
  VRDF_REQUIRE(contains(e), "edge id out of range");
  return edges_[e.index()].src;
}

NodeId Digraph::edge_target(EdgeId e) const {
  VRDF_REQUIRE(contains(e), "edge id out of range");
  return edges_[e.index()].dst;
}

std::span<const EdgeId> Digraph::out_edges(NodeId n) const {
  VRDF_REQUIRE(contains(n), "node id out of range");
  return out_edges_[n.index()];
}

std::span<const EdgeId> Digraph::in_edges(NodeId n) const {
  VRDF_REQUIRE(contains(n), "node id out of range");
  return in_edges_[n.index()];
}

std::vector<NodeId> Digraph::nodes() const {
  std::vector<NodeId> out;
  out.reserve(node_count());
  for (std::size_t i = 0; i < node_count(); ++i) {
    out.push_back(NodeId(static_cast<NodeId::underlying_type>(i)));
  }
  return out;
}

std::vector<EdgeId> Digraph::edges() const {
  std::vector<EdgeId> out;
  out.reserve(edge_count());
  for (std::size_t i = 0; i < edge_count(); ++i) {
    out.push_back(EdgeId(static_cast<EdgeId::underlying_type>(i)));
  }
  return out;
}

}  // namespace vrdf::graph
