// Directed multigraph container.
//
// A minimal adjacency structure shared by the task-graph and dataflow
// layers: those layers keep their payloads (rates, response times, ...) in
// parallel arrays indexed by NodeId/EdgeId.  Parallel edges and self-loops
// are representable (a VRDF buffer is a pair of anti-parallel edges).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/ids.hpp"

namespace vrdf::graph {

class Digraph {
public:
  Digraph() = default;

  /// Adds an isolated node and returns its id.
  NodeId add_node();

  /// Adds an edge src -> dst; both nodes must exist.
  EdgeId add_edge(NodeId src, NodeId dst);

  [[nodiscard]] std::size_t node_count() const { return out_edges_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  [[nodiscard]] NodeId edge_source(EdgeId e) const;
  [[nodiscard]] NodeId edge_target(EdgeId e) const;

  /// Outgoing edge ids of `n`, in insertion order.
  [[nodiscard]] std::span<const EdgeId> out_edges(NodeId n) const;
  /// Incoming edge ids of `n`, in insertion order.
  [[nodiscard]] std::span<const EdgeId> in_edges(NodeId n) const;

  [[nodiscard]] std::size_t out_degree(NodeId n) const { return out_edges(n).size(); }
  [[nodiscard]] std::size_t in_degree(NodeId n) const { return in_edges(n).size(); }

  [[nodiscard]] bool contains(NodeId n) const {
    return n.is_valid() && n.index() < node_count();
  }
  [[nodiscard]] bool contains(EdgeId e) const {
    return e.is_valid() && e.index() < edge_count();
  }

  /// Iteration helpers: node ids are dense 0..node_count-1.
  [[nodiscard]] std::vector<NodeId> nodes() const;
  [[nodiscard]] std::vector<EdgeId> edges() const;

private:
  struct EdgeRecord {
    NodeId src;
    NodeId dst;
  };

  std::vector<EdgeRecord> edges_;
  std::vector<std::vector<EdgeId>> out_edges_;
  std::vector<std::vector<EdgeId>> in_edges_;
};

}  // namespace vrdf::graph
