#include "graph/algorithms.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "util/error.hpp"

namespace vrdf::graph {

namespace {

/// Distinct undirected neighbours of every node; self-loops are reported via
/// the boolean result.
struct UndirectedView {
  std::vector<std::vector<NodeId>> neighbours;
  bool has_self_loop = false;
};

UndirectedView undirected_view(const Digraph& g) {
  UndirectedView view;
  view.neighbours.resize(g.node_count());
  std::vector<std::unordered_set<NodeId>> seen(g.node_count());
  for (const EdgeId e : g.edges()) {
    const NodeId s = g.edge_source(e);
    const NodeId t = g.edge_target(e);
    if (s == t) {
      view.has_self_loop = true;
      continue;
    }
    if (seen[s.index()].insert(t).second) {
      view.neighbours[s.index()].push_back(t);
    }
    if (seen[t.index()].insert(s).second) {
      view.neighbours[t.index()].push_back(s);
    }
  }
  return view;
}

}  // namespace

bool is_weakly_connected(const Digraph& g) {
  if (g.node_count() <= 1) {
    return true;
  }
  const UndirectedView view = undirected_view(g);
  std::vector<char> visited(g.node_count(), 0);
  std::vector<NodeId> stack{NodeId(0)};
  visited[0] = 1;
  std::size_t reached = 1;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    for (const NodeId m : view.neighbours[n.index()]) {
      if (visited[m.index()] == 0) {
        visited[m.index()] = 1;
        ++reached;
        stack.push_back(m);
      }
    }
  }
  return reached == g.node_count();
}

std::optional<ChainOrder> chain_order(const Digraph& g) {
  const std::size_t n = g.node_count();
  if (n == 0) {
    return std::nullopt;
  }
  const UndirectedView view = undirected_view(g);
  if (view.has_self_loop) {
    return std::nullopt;
  }
  if (n == 1) {
    if (g.edge_count() != 0) {
      return std::nullopt;  // only self-loops possible, already rejected
    }
    ChainOrder order;
    order.nodes = {NodeId(0)};
    return order;
  }

  // A path graph has exactly two endpoints of undirected degree one and
  // n-1 distinct undirected adjacencies; everything else has degree two.
  std::vector<NodeId> endpoints;
  std::size_t pair_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t deg = view.neighbours[i].size();
    pair_count += deg;
    if (deg == 1) {
      endpoints.push_back(NodeId(static_cast<NodeId::underlying_type>(i)));
    } else if (deg != 2) {
      return std::nullopt;
    }
  }
  pair_count /= 2;
  if (endpoints.size() != 2 || pair_count != n - 1) {
    return std::nullopt;
  }
  if (!is_weakly_connected(g)) {
    return std::nullopt;
  }

  // Walk the path from one endpoint.
  std::vector<NodeId> path;
  path.reserve(n);
  NodeId prev = NodeId::invalid();
  NodeId cur = endpoints[0];
  while (true) {
    path.push_back(cur);
    NodeId next = NodeId::invalid();
    for (const NodeId m : view.neighbours[cur.index()]) {
      if (m != prev) {
        next = m;
        break;
      }
    }
    if (!next.is_valid()) {
      break;
    }
    prev = cur;
    cur = next;
  }
  if (path.size() != n) {
    return std::nullopt;
  }

  // Orient the path so that every consecutive pair has exactly one forward
  // edge; anti-parallel edges are collected as back edges.
  const auto try_orientation = [&g](const std::vector<NodeId>& nodes)
      -> std::optional<ChainOrder> {
    ChainOrder order;
    order.nodes = nodes;
    order.forward_edges.reserve(nodes.size() - 1);
    order.back_edges.resize(nodes.size() - 1);
    for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
      const NodeId u = nodes[i];
      const NodeId w = nodes[i + 1];
      EdgeId forward = EdgeId::invalid();
      for (const EdgeId e : g.out_edges(u)) {
        if (g.edge_target(e) == w) {
          if (forward.is_valid()) {
            return std::nullopt;  // parallel forward edges: ambiguous chain
          }
          forward = e;
        }
      }
      if (!forward.is_valid()) {
        return std::nullopt;
      }
      order.forward_edges.push_back(forward);
      for (const EdgeId e : g.out_edges(w)) {
        if (g.edge_target(e) == u) {
          order.back_edges[i].push_back(e);
        }
      }
    }
    return order;
  };

  if (auto order = try_orientation(path)) {
    return order;
  }
  std::reverse(path.begin(), path.end());
  return try_orientation(path);
}

std::optional<std::vector<NodeId>> topological_order(const Digraph& g) {
  std::vector<std::size_t> in_deg(g.node_count(), 0);
  for (const EdgeId e : g.edges()) {
    ++in_deg[g.edge_target(e).index()];
  }
  std::vector<NodeId> ready;
  for (const NodeId n : g.nodes()) {
    if (in_deg[n.index()] == 0) {
      ready.push_back(n);
    }
  }
  std::vector<NodeId> order;
  order.reserve(g.node_count());
  while (!ready.empty()) {
    const NodeId n = ready.back();
    ready.pop_back();
    order.push_back(n);
    for (const EdgeId e : g.out_edges(n)) {
      const NodeId m = g.edge_target(e);
      if (--in_deg[m.index()] == 0) {
        ready.push_back(m);
      }
    }
  }
  if (order.size() != g.node_count()) {
    return std::nullopt;
  }
  return order;
}

std::optional<std::vector<NodeId>> reverse_topological_order(const Digraph& g) {
  auto order = topological_order(g);
  if (order.has_value()) {
    std::reverse(order->begin(), order->end());
  }
  return order;
}

bool has_directed_cycle(const Digraph& g) {
  return !topological_order(g).has_value();
}

std::vector<bool> undirected_bridges(const Digraph& g) {
  const std::size_t n = g.node_count();
  std::vector<bool> is_bridge(g.edge_count(), false);
  // Undirected incidence: per node, (neighbour, edge index) including both
  // directions of every edge.
  std::vector<std::vector<std::pair<NodeId, std::size_t>>> incident(n);
  for (const EdgeId e : g.edges()) {
    const NodeId s = g.edge_source(e);
    const NodeId t = g.edge_target(e);
    if (s == t) {
      continue;  // self-loops are never bridges
    }
    incident[s.index()].emplace_back(t, e.index());
    incident[t.index()].emplace_back(s, e.index());
  }
  // Iterative DFS lowlink; an edge (u, v) with v a child is a bridge iff
  // low(v) > disc(u).  The parent *edge instance* is skipped, not the
  // parent node, so parallel edges correctly form a cycle.
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  std::vector<std::size_t> disc(n, kUnvisited);
  std::vector<std::size_t> low(n, 0);
  std::size_t timer = 0;
  struct Frame {
    NodeId node;
    std::size_t parent_edge;  // edge index used to enter, or kUnvisited
    std::size_t next;         // position in incident[node]
  };
  for (const NodeId root : g.nodes()) {
    if (disc[root.index()] != kUnvisited) {
      continue;
    }
    std::vector<Frame> stack{{root, kUnvisited, 0}};
    disc[root.index()] = low[root.index()] = timer++;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto& edges = incident[f.node.index()];
      if (f.next < edges.size()) {
        const auto [m, edge_index] = edges[f.next];
        ++f.next;
        if (edge_index == f.parent_edge) {
          continue;
        }
        if (disc[m.index()] == kUnvisited) {
          disc[m.index()] = low[m.index()] = timer++;
          stack.push_back(Frame{m, edge_index, 0});
        } else {
          low[f.node.index()] = std::min(low[f.node.index()], disc[m.index()]);
        }
        continue;
      }
      const Frame done = f;
      stack.pop_back();
      if (!stack.empty()) {
        Frame& parent = stack.back();
        low[parent.node.index()] =
            std::min(low[parent.node.index()], low[done.node.index()]);
        if (low[done.node.index()] > disc[parent.node.index()]) {
          is_bridge[done.parent_edge] = true;
        }
      }
    }
  }
  return is_bridge;
}

std::vector<std::vector<NodeId>> strongly_connected_components(const Digraph& g) {
  // Iterative Tarjan.
  const std::size_t n = g.node_count();
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  std::vector<std::size_t> index(n, kUnvisited);
  std::vector<std::size_t> lowlink(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<NodeId> stack;
  std::vector<std::vector<NodeId>> components;
  std::size_t next_index = 0;

  struct Frame {
    NodeId node;
    std::size_t edge_pos;
  };

  for (const NodeId root : g.nodes()) {
    if (index[root.index()] != kUnvisited) {
      continue;
    }
    std::vector<Frame> frames{{root, 0}};
    index[root.index()] = lowlink[root.index()] = next_index++;
    stack.push_back(root);
    on_stack[root.index()] = 1;
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto out = g.out_edges(f.node);
      if (f.edge_pos < out.size()) {
        const NodeId m = g.edge_target(out[f.edge_pos]);
        ++f.edge_pos;
        if (index[m.index()] == kUnvisited) {
          index[m.index()] = lowlink[m.index()] = next_index++;
          stack.push_back(m);
          on_stack[m.index()] = 1;
          frames.push_back(Frame{m, 0});
        } else if (on_stack[m.index()] != 0) {
          lowlink[f.node.index()] =
              std::min(lowlink[f.node.index()], index[m.index()]);
        }
        continue;
      }
      // All successors processed.
      const NodeId v = f.node;
      frames.pop_back();
      if (!frames.empty()) {
        const NodeId parent = frames.back().node;
        lowlink[parent.index()] = std::min(lowlink[parent.index()], lowlink[v.index()]);
      }
      if (lowlink[v.index()] == index[v.index()]) {
        std::vector<NodeId> component;
        while (true) {
          const NodeId w = stack.back();
          stack.pop_back();
          on_stack[w.index()] = 0;
          component.push_back(w);
          if (w == v) {
            break;
          }
        }
        components.push_back(std::move(component));
      }
    }
  }
  return components;
}

FeedbackArcView feedback_arc_view(const Digraph& g) {
  FeedbackArcView view;
  view.components = strongly_connected_components(g);
  // Tarjan emits components in reverse topological order of the
  // condensation; flip once so cross-component edges point forward.
  std::reverse(view.components.begin(), view.components.end());
  view.component_of.resize(g.node_count());
  for (std::size_t c = 0; c < view.components.size(); ++c) {
    for (const NodeId n : view.components[c]) {
      view.component_of[n.index()] = c;
    }
  }
  view.edge_on_cycle.reserve(g.edge_count());
  for (const EdgeId e : g.edges()) {
    const NodeId s = g.edge_source(e);
    const NodeId t = g.edge_target(e);
    view.edge_on_cycle.push_back(
        s == t || view.component_of[s.index()] == view.component_of[t.index()]);
  }
  return view;
}

std::optional<std::vector<NodeId>> find_directed_cycle(const Digraph& g) {
  // Iterative DFS with an explicit path stack; a back edge to a node on
  // the current path closes a cycle.
  enum : char { kWhite, kGrey, kBlack };
  std::vector<char> color(g.node_count(), kWhite);
  struct Frame {
    NodeId node;
    std::size_t edge_pos;
  };
  for (const NodeId root : g.nodes()) {
    if (color[root.index()] != kWhite) {
      continue;
    }
    std::vector<Frame> path{{root, 0}};
    color[root.index()] = kGrey;
    while (!path.empty()) {
      Frame& f = path.back();
      const auto out = g.out_edges(f.node);
      if (f.edge_pos < out.size()) {
        const NodeId m = g.edge_target(out[f.edge_pos]);
        ++f.edge_pos;
        if (color[m.index()] == kGrey) {
          std::vector<NodeId> cycle;
          std::size_t start = 0;
          while (path[start].node != m) {
            ++start;
          }
          for (std::size_t i = start; i < path.size(); ++i) {
            cycle.push_back(path[i].node);
          }
          return cycle;
        }
        if (color[m.index()] == kWhite) {
          color[m.index()] = kGrey;
          path.push_back(Frame{m, 0});
        }
        continue;
      }
      color[f.node.index()] = kBlack;
      path.pop_back();
    }
  }
  return std::nullopt;
}

bool has_path(const Digraph& g, NodeId src, NodeId dst) {
  VRDF_REQUIRE(g.contains(src) && g.contains(dst), "has_path: node out of range");
  if (src == dst) {
    return true;
  }
  std::vector<char> visited(g.node_count(), 0);
  std::vector<NodeId> stack{src};
  visited[src.index()] = 1;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    for (const EdgeId e : g.out_edges(n)) {
      const NodeId m = g.edge_target(e);
      if (m == dst) {
        return true;
      }
      if (visited[m.index()] == 0) {
        visited[m.index()] = 1;
        stack.push_back(m);
      }
    }
  }
  return false;
}

}  // namespace vrdf::graph
