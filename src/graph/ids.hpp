// Strongly typed indices for graph entities.
//
// Nodes and edges are dense indices into the owning graph's arrays.  The
// phantom Tag parameter prevents an actor id from being used where a task
// id is expected even though both are "small integers".
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace vrdf::graph {

template <typename Tag>
class Id {
public:
  using underlying_type = std::uint32_t;

  constexpr Id() = default;
  constexpr explicit Id(underlying_type value) : value_(value) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr std::size_t index() const { return value_; }
  [[nodiscard]] constexpr bool is_valid() const { return value_ != kInvalid; }

  [[nodiscard]] static constexpr Id invalid() { return Id(); }

  friend constexpr bool operator==(Id, Id) = default;
  friend constexpr auto operator<=>(Id, Id) = default;

private:
  static constexpr underlying_type kInvalid =
      std::numeric_limits<underlying_type>::max();
  underlying_type value_ = kInvalid;
};

struct NodeTag {};
struct EdgeTag {};

using NodeId = Id<NodeTag>;
using EdgeId = Id<EdgeTag>;

template <typename Tag>
std::ostream& operator<<(std::ostream& os, Id<Tag> id) {
  if (!id.is_valid()) {
    return os << "#invalid";
  }
  return os << '#' << id.value();
}

}  // namespace vrdf::graph

template <typename Tag>
struct std::hash<vrdf::graph::Id<Tag>> {
  std::size_t operator()(vrdf::graph::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
