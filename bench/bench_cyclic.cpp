// Cyclic-topology benchmarks: analysis cost versus the number of feedback
// loops, the inverse min-period computation on a cyclic graph, and
// simulation throughput of the feedback (rate-control) pipeline.
//
// Compiled into the bench_perf binary (see CMakeLists.txt) so the
// `bench` target's BENCH_PR<N>.json captures these series alongside the
// chain/fork-join ones; this file intentionally has no BENCHMARK_MAIN().
#include <benchmark/benchmark.h>

#include "analysis/buffer_sizing.hpp"
#include "analysis/period.hpp"
#include "models/synthetic.hpp"
#include "sim/simulator.hpp"
#include "sim/verify.hpp"

namespace {

using namespace vrdf;

models::SyntheticChain cyclic_model(std::size_t stages) {
  // One feedback loop per stage: cycle count == stage count.
  models::RandomCyclicSpec spec;
  spec.base.seed = 17;
  spec.base.stages = stages;
  spec.base.max_branches = 2;
  spec.base.max_branch_length = 2;
  spec.base.max_segment_length = 1;
  spec.feedback_percent = 100;
  return models::make_random_cyclic(spec);
}

void BM_CyclicAnalysisVsCycleCount(benchmark::State& state) {
  const models::SyntheticChain model =
      cyclic_model(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const analysis::GraphAnalysis result =
        analysis::compute_buffer_capacities(model.graph, model.constraint);
    benchmark::DoNotOptimize(result.total_capacity);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CyclicAnalysisVsCycleCount)->RangeMultiplier(2)->Range(1, 16)
    ->Complexity(benchmark::oN);

void BM_CyclicMinPeriod(benchmark::State& state) {
  models::SyntheticChain model = cyclic_model(4);
  const analysis::GraphAnalysis sized =
      analysis::compute_buffer_capacities(model.graph, model.constraint);
  analysis::apply_capacities(model.graph, sized);
  for (auto _ : state) {
    const analysis::MinPeriodResult result =
        analysis::min_admissible_period(model.graph, model.constraint.actor);
    benchmark::DoNotOptimize(result.min_period);
  }
}
BENCHMARK(BM_CyclicMinPeriod);

void BM_FeedbackPipelineSim(benchmark::State& state) {
  // Self-timed throughput of the sized rate-control loop: firings/second
  // of the whole pipeline while the loop circulates its credit tokens.
  models::FeedbackPipeline app = models::make_feedback_pipeline();
  const analysis::GraphAnalysis sized =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  analysis::apply_capacities(app.graph, sized);
  std::int64_t fired = 0;
  for (auto _ : state) {
    sim::Simulator sim(app.graph);
    sim.set_default_sources(7);
    sim::StopCondition stop;
    stop.firing_target = sim::StopCondition::FiringTarget{app.present, 5000};
    const sim::RunResult result = sim.run(stop);
    fired += result.total_firings;
    benchmark::DoNotOptimize(result.end_time);
  }
  state.SetItemsProcessed(fired);
}
BENCHMARK(BM_FeedbackPipelineSim);

void BM_FeedbackPipelineVerify(benchmark::State& state) {
  // Full two-phase sufficiency check of the cyclic pipeline — the cost of
  // the verification step the analysis results are gated on.
  models::FeedbackPipeline app = models::make_feedback_pipeline();
  const analysis::GraphAnalysis sized =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  analysis::apply_capacities(app.graph, sized);
  for (auto _ : state) {
    sim::VerifyOptions options;
    options.observe_firings = 500;
    const sim::VerifyResult verdict =
        sim::verify_throughput(app.graph, app.constraint, {}, options);
    benchmark::DoNotOptimize(verdict.ok);
  }
}
BENCHMARK(BM_FeedbackPipelineVerify);

}  // namespace
