// Incremental-analysis / admission-control performance (PR 7).  Compiled
// into bench_perf (no own main) so the `bench` target's BENCH_PR<N>.json
// captures the series:
//  - BM_RetuneFullRecompute: one response-time change answered by a full
//    compute_buffer_capacities run over the snapshot — the baseline an
//    admission controller would pay without memoization;
//  - BM_RetuneIncremental: the same change through IncrementalAnalysis
//    (cached pacing, ω-cone re-derivation, pair-local resizing).  The
//    acceptance bar is ≥10× over the full recompute at 16+ actors; the
//    cache counters (pacing hits, pairs reused vs recomputed, cone sizes)
//    ride along in the JSON so the speedup is attributable, not inferred;
//  - BM_AdmissionServiceLoop: sustained queries/sec of a long-lived
//    AdmissionController serving a retune / admit / remove / period-move
//    mix, every decision checked and rolled back on rejection.
#include <benchmark/benchmark.h>

#include "analysis/admission.hpp"
#include "analysis/buffer_sizing.hpp"
#include "analysis/incremental.hpp"
#include "analysis/snapshot.hpp"
#include "models/synthetic.hpp"

namespace {

using namespace vrdf;

models::SyntheticChain make_service_chain(std::size_t length) {
  models::RandomChainSpec spec;
  spec.seed = 7;
  spec.length = length;
  // Small quanta keep the exact-rational ω accumulation inside int64 on
  // long chains (the rates, not the length, drive the denominators).
  spec.max_quantum = 4;
  // Halved response times leave pacing slack, so the benchmarked retunes
  // are accepted (the hot path) rather than rejected-and-rolled-back.
  spec.response_fraction = Rational(1, 2);
  return models::make_random_chain(spec);
}

void export_engine_counters(benchmark::State& state,
                            const analysis::InvalidationStats& stats) {
  state.counters["pacing_recomputes"] =
      static_cast<double>(stats.pacing_recomputes);
  state.counters["pacing_cache_hits"] =
      static_cast<double>(stats.pacing_cache_hits);
  state.counters["pairs_recomputed"] =
      static_cast<double>(stats.pairs_recomputed);
  state.counters["pairs_reused"] = static_cast<double>(stats.pairs_reused);
  state.counters["last_cone_actors"] =
      static_cast<double>(stats.last_cone_actors);
  state.counters["last_cone_pairs"] =
      static_cast<double>(stats.last_cone_pairs);
}

void BM_RetuneFullRecompute(benchmark::State& state) {
  const models::SyntheticChain chain =
      make_service_chain(static_cast<std::size_t>(state.range(0)));
  const analysis::TopologySnapshot snapshot(chain.graph);
  const analysis::ConstraintSet constraints{chain.constraint};
  const analysis::AnalysisOptions options;
  analysis::ParameterOverlay overlay;
  const dataflow::ActorId victim = snapshot.view().actors.front();
  const Rational rho = chain.graph.actor(victim).response_time.seconds();
  bool flip = false;
  for (auto _ : state) {
    flip = !flip;
    overlay.set_response_time(
        victim, Duration(rho * (flip ? Rational(1, 2) : Rational(2, 3))));
    const analysis::GraphAnalysis full = analysis::compute_buffer_capacities(
        snapshot, constraints, options, overlay);
    benchmark::DoNotOptimize(full.total_capacity);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RetuneFullRecompute)->Arg(16)->Arg(64)->Arg(256);

void run_retune_incremental(benchmark::State& state, bool mid_chain) {
  const models::SyntheticChain chain =
      make_service_chain(static_cast<std::size_t>(state.range(0)));
  const analysis::TopologySnapshot snapshot(chain.graph);
  analysis::IncrementalAnalysis engine(snapshot,
                                       analysis::ConstraintSet{chain.constraint});
  const std::vector<dataflow::ActorId>& order = snapshot.view().actors;
  // A near-source retune has an O(1) invalidation cone on a
  // sink-constrained chain (ω flows downstream-to-upstream and stops at
  // the changed actor's producers); a mid-chain retune invalidates the
  // whole upstream half — the honest worst case, with the cone size in
  // the counters.
  const dataflow::ActorId victim = mid_chain ? order[order.size() / 2]
                                             : order.front();
  const Rational rho = chain.graph.actor(victim).response_time.seconds();
  bool flip = false;
  for (auto _ : state) {
    flip = !flip;
    engine.retune(victim,
                  Duration(rho * (flip ? Rational(1, 2) : Rational(2, 3))));
    benchmark::DoNotOptimize(engine.analysis().total_capacity);
  }
  state.SetItemsProcessed(state.iterations());
  export_engine_counters(state, engine.stats());
}

void BM_RetuneIncremental(benchmark::State& state) {
  run_retune_incremental(state, /*mid_chain=*/false);
}
BENCHMARK(BM_RetuneIncremental)->Arg(16)->Arg(64)->Arg(256);

void BM_RetuneIncrementalMidChain(benchmark::State& state) {
  run_retune_incremental(state, /*mid_chain=*/true);
}
BENCHMARK(BM_RetuneIncrementalMidChain)->Arg(16)->Arg(64)->Arg(256);

void BM_AdmissionServiceLoop(benchmark::State& state) {
  // Sustained decision rate of a live controller on a 16-actor chain:
  // retune a mid-chain codec down and back, admit a second stream at an
  // interior actor's own rate, stop it again — every fourth decision
  // re-propagates pacing (admit/remove), the rest ride the caches.
  // Static rates: a second constraint on a variable-rate chain is
  // rejected by the multi-constraint flow-coupling rule, and this loop
  // measures the accepted path.
  models::RandomChainSpec loop_spec;
  loop_spec.seed = 7;
  loop_spec.length = 16;
  loop_spec.max_quantum = 4;
  loop_spec.variable_percent = 0;
  loop_spec.response_fraction = Rational(1, 2);
  const models::SyntheticChain chain = models::make_random_chain(loop_spec);
  const analysis::TopologySnapshot snapshot(chain.graph);
  analysis::AdmissionController controller(
      snapshot, analysis::ConstraintSet{chain.constraint});
  const std::vector<dataflow::ActorId>& order = snapshot.view().actors;
  const dataflow::ActorId codec = order[order.size() / 2];
  const dataflow::ActorId stream_actor = order[order.size() / 4];
  const Rational rho = chain.graph.actor(codec).response_time.seconds();
  // The interior actor's pacing φ: a flow-consistent admission rate.
  Duration stream_period;
  const analysis::GraphAnalysis& initial = controller.analysis();
  for (std::size_t i = 0; i < initial.actors_in_order.size(); ++i) {
    if (initial.actors_in_order[i] == stream_actor) {
      stream_period = initial.pacing[i];
    }
  }
  std::uint64_t accepted = 0;
  std::uint64_t step = 0;
  for (auto _ : state) {
    analysis::AdmissionDecision decision;
    switch (step++ % 4) {
      case 0:
        decision = controller.retune(codec, Duration(rho * Rational(1, 2)));
        break;
      case 1:
        decision = controller.retune(codec, Duration(rho));
        break;
      case 2:
        decision = controller.admit(
            analysis::ThroughputConstraint{stream_actor, stream_period});
        break;
      default:
        decision = controller.remove(stream_actor);
        break;
    }
    accepted += decision.accepted ? 1 : 0;
    benchmark::DoNotOptimize(decision.total_capacity);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["accepted"] = static_cast<double>(accepted);
  export_engine_counters(state, controller.engine().stats());
}
BENCHMARK(BM_AdmissionServiceLoop);

}  // namespace
