// Fleet-scale parallel verification performance (PR 8).  Compiled into
// bench_perf (no own main) so the `bench` target's BENCH_PR<N>.json
// captures the series:
//  - BM_FleetSweepAggregate: aggregate verification throughput of one
//    fixed 1000-model sweep (five classes, both constraint placements)
//    at 1, 2, 4 and 8 pool workers.  The acceptance shape is linear
//    scaling up to the core count; the JSON context's num_cpus records
//    the cores the run actually had, so single-core CI numbers are
//    attributable rather than mistaken for a scaling defect.
//  - BM_FleetRunItem vs BM_DirectVerifyPipeline: per-item overhead of
//    the fleet pipeline (stateless seed derivation, re-analysis,
//    headroom install, verdict assembly) over a bare
//    make_random_model + verify_throughput of the same item.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "models/synthetic.hpp"
#include "sim/fleet.hpp"
#include "sim/verify.hpp"
#include "util/seed_stream.hpp"

namespace {

using namespace vrdf;

// 8 cells (chain/fork_join/cyclic x {sink,source} + multi_constraint +
// interior_pinned x {sink}) x 125 seeds = exactly 1000 items.
sim::SweepSpec make_kilomodel_spec() {
  sim::SweepSpec spec;
  spec.seeds_per_class = 125;
  spec.modes = {sim::ConstraintMode::Sink, sim::ConstraintMode::Source};
  spec.observe_firings = 120;
  return spec;
}

void BM_FleetSweepAggregate(benchmark::State& state) {
  const sim::FleetSweep sweep(make_kilomodel_spec());
  const auto threads = static_cast<std::size_t>(state.range(0));
  double fleet_firings_per_second = 0.0;
  std::int64_t items = 0;
  for (auto _ : state) {
    const sim::FleetReport report = sweep.run(threads);
    benchmark::DoNotOptimize(report.passed);
    fleet_firings_per_second = report.firings_per_second;
    items = report.total_items;
  }
  state.counters["items"] = static_cast<double>(items);
  state.counters["sim_firings_per_s"] = fleet_firings_per_second;
  state.counters["items_per_s"] = benchmark::Counter(
      static_cast<double>(items) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FleetSweepAggregate)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

void BM_FleetRunItem(benchmark::State& state) {
  const sim::FleetSweep sweep(make_kilomodel_spec());
  const sim::FleetItem item = sweep.items().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sweep.run_item(item).pass);
  }
}
BENCHMARK(BM_FleetRunItem)->Unit(benchmark::kMicrosecond);

void BM_DirectVerifyPipeline(benchmark::State& state) {
  const sim::SweepSpec spec = make_kilomodel_spec();
  const sim::FleetSweep sweep(spec);
  const sim::FleetItem item = sweep.items().front();
  for (auto _ : state) {
    models::RandomModelSpec random;
    random.model_class = item.model_class;
    random.seed = item.rng_seed;
    random.response_fraction = spec.response_fraction;
    random.variable_percent = spec.variable_percent;
    random.zero_percent = spec.zero_percent;
    random.source_constrained = item.mode == sim::ConstraintMode::Source;
    models::SyntheticModel model = models::make_random_model(random);
    sim::VerifyOptions options;
    options.observe_firings = spec.observe_firings;
    options.default_seed = util::derive_seed(item.rng_seed, 1);
    const sim::VerifyResult verdict =
        sim::verify_throughput(model.graph, model.constraints, {}, options);
    benchmark::DoNotOptimize(verdict.ok);
  }
}
BENCHMARK(BM_DirectVerifyPipeline)->Unit(benchmark::kMicrosecond);

}  // namespace
