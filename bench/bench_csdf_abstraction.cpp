// E10 — CSDF-to-VRDF abstraction (the [15] connection).
//
// A cyclo-static actor cycles deterministically through phases with known
// rates.  Abstracting the phase sequence to the *set* of its values turns
// the CSDF graph into a VRDF graph whose capacities are sufficient for
// every phase order — in particular the actual cyclic one.  This bench
// sizes a CSDF chain through the VRDF abstraction, verifies it in
// simulation with the true cyclic sequences, and compares against the
// cycle-aggregated SDF view (which is blind to intra-cycle burstiness and
// sizes at the coarser granularity).
#include <iostream>

#include "analysis/buffer_sizing.hpp"
#include "baseline/traditional.hpp"
#include "dataflow/csdf_graph.hpp"
#include "dataflow/sdf_graph.hpp"
#include "io/table.hpp"
#include "sim/verify.hpp"

namespace {

using namespace vrdf;

}  // namespace

int main() {
  std::cout << "E10 — CSDF phase abstraction into VRDF\n\n";

  const Duration ms = milliseconds(Rational(1));

  // First, a deliberately rejected case: a producer with a zero-production
  // phase (4,0).  True CSDF knows the zero phase is always followed by a
  // full one; the set abstraction {0,4} loses that order, so under a sink
  // constraint the producer "may produce nothing forever" and the
  // analysis must refuse — losing the phase order costs expressiveness.
  {
    dataflow::CsdfGraph bursty;
    const auto p0 = bursty.add_actor("producer", {ms, ms});
    const auto f0 = bursty.add_actor("filter", {ms});
    (void)bursty.add_edge(p0, f0, {4, 0}, {2});
    dataflow::VrdfGraph abstracted;
    const auto a0 = abstracted.add_actor("producer", ms);
    const auto b0 = abstracted.add_actor("filter", ms);
    const auto& e = bursty.to_vrdf().edge(graph::EdgeId(0));
    (void)abstracted.add_buffer(a0, b0, e.production, e.consumption);
    const auto rejected = analysis::compute_buffer_capacities(
        abstracted, analysis::ThroughputConstraint{b0, ms});
    std::cout << "zero-production phase {4,0} under a sink constraint: "
              << (rejected.admissible ? "UNEXPECTEDLY ACCEPTED"
                                      : "rejected (as it must be)")
              << "\n  diagnostic: "
              << (rejected.diagnostics.empty() ? "-" : rejected.diagnostics[0])
              << "\n\n";
    if (rejected.admissible) {
      return 1;
    }
  }

  // Now the sized case: a bursty but never-idle producer (phases 4,2), a
  // two-phase filter, and a steady sink.
  dataflow::CsdfGraph csdf;
  const auto producer = csdf.add_actor("producer", {ms, ms});
  const auto filter = csdf.add_actor("filter", {ms, ms});
  const auto sink = csdf.add_actor("sink", {ms});
  (void)csdf.add_edge(producer, filter, {4, 2}, {1, 3});
  (void)csdf.add_edge(filter, sink, {2, 2}, {2});

  const auto reps = csdf.repetition_vector();
  std::cout << "CSDF repetition vector (firings): ";
  for (const auto r : *reps) {
    std::cout << r << ' ';
  }
  std::cout << "\n\n";

  // VRDF abstraction: per-edge value sets, worst-case phase response.
  dataflow::VrdfGraph vrdf_bare = csdf.to_vrdf();
  // Rebuild as buffers (the conversion yields bare edges; buffer pairing
  // is the task-level notion the capacity question needs).
  dataflow::VrdfGraph graph;
  std::vector<dataflow::ActorId> actors;
  for (const auto a : vrdf_bare.actors()) {
    actors.push_back(graph.add_actor(vrdf_bare.actor(a).name,
                                     vrdf_bare.actor(a).response_time));
  }
  std::vector<dataflow::BufferEdges> buffers;
  for (const auto e : vrdf_bare.edges()) {
    const auto& edge = vrdf_bare.edge(e);
    buffers.push_back(graph.add_buffer(edge.source, edge.target,
                                       edge.production, edge.consumption));
  }

  const Duration tau = milliseconds(Rational(2));
  const analysis::ThroughputConstraint constraint{actors.back(), tau};
  const analysis::GraphAnalysis sized =
      analysis::compute_buffer_capacities(graph, constraint);
  if (!sized.admissible) {
    std::cerr << "VRDF abstraction inadmissible:\n";
    for (const auto& d : sized.diagnostics) {
      std::cerr << "  " << d << '\n';
    }
    return 1;
  }

  // Cycle-aggregated SDF comparison (coarser containers: one per cycle).
  const dataflow::SdfGraph aggregated = csdf.to_sdf();
  io::Table table({"buffer", "VRDF sets", "VRDF capacity",
                   "cycle-aggregated rates", "2(p+c-gcd) at cycle grain"});
  for (std::size_t i = 0; i < sized.pairs.size(); ++i) {
    const auto& data = graph.edge(sized.pairs[i].buffer.data);
    const auto& agg = aggregated.edge(graph::EdgeId(
        static_cast<graph::EdgeId::underlying_type>(i)));
    table.add_row({graph.actor(sized.pairs[i].producer).name + "->" +
                       graph.actor(sized.pairs[i].consumer).name,
                   data.production.to_string() + " / " +
                       data.consumption.to_string(),
                   std::to_string(sized.pairs[i].capacity),
                   std::to_string(agg.production) + " / " +
                       std::to_string(agg.consumption),
                   std::to_string(baseline::sriram_pair_capacity(
                       agg.production, agg.consumption))});
  }
  std::cout << table.to_string() << '\n';

  // Verify the VRDF capacities against the *true* cyclic phase sequences.
  analysis::apply_capacities(graph, sized);
  const sim::VerifyResult verdict = sim::verify_throughput(
      graph, constraint,
      [&](sim::Simulator& s) {
        s.set_quantum_source(actors[0], buffers[0].data,
                             sim::cyclic_source({4, 2}));
        s.set_quantum_source(actors[1], buffers[0].data,
                             sim::cyclic_source({1, 3}));
        s.set_quantum_source(actors[1], buffers[1].data,
                             sim::cyclic_source({2, 2}));
        s.set_quantum_source(actors[2], buffers[1].data,
                             sim::cyclic_source({2}));
      },
      {.observe_firings = 5000, .default_seed = 1});
  std::cout << "verify [true cyclic phase order]: "
            << (verdict.ok ? "OK" : "FAILED") << " — " << verdict.detail
            << '\n';
  std::cout << "\nTakeaway: the set abstraction pays for order-independence"
               " with extra tokens,\nbut needs no phase-aligned schedule"
               " and covers phase drift/reordering for free.\n";
  return verdict.ok ? 0 : 1;
}
