// E5 — ablation: what the data dependence costs.
//
// Sweeps the MP3 decoder's bytes-per-frame interval [n_min, 960] and
// reports d1/d2 from the VRDF analysis against the constant-rate lower
// bound.  Narrowing the interval to the single point 960 recovers the
// data-independent setting; widening it shows where the extra capacity of
// the paper's technique goes (the pacing of vBR is driven by the *maximum*
// consumption rate while its schedule must survive the *minimum*).
//
// Second sweep: capacity versus the maximum bit-rate (n_max) with
// n_min = 0, showing the linear growth of both d1 and the pacing slack.
#include <iostream>

#include "analysis/buffer_sizing.hpp"
#include "baseline/traditional.hpp"
#include "io/table.hpp"
#include "models/mp3.hpp"
#include "models/synthetic.hpp"

namespace {

using namespace vrdf;

/// Builds the MP3 chain with the decoder interval [n_min, n_max]; response
/// times are re-derived per sweep point as the maximal admissible values
/// (like the paper does for its single point), because a faster decoder
/// maximum tightens the upstream pacing.
analysis::GraphAnalysis analyse_with_decoder_interval(std::int64_t n_min,
                                                      std::int64_t n_max) {
  dataflow::VrdfGraph bare;
  const auto br = bare.add_actor("vBR", seconds(Rational(1)));
  const auto mp3 = bare.add_actor("vMP3", seconds(Rational(1)));
  const auto src = bare.add_actor("vSRC", seconds(Rational(1)));
  const auto dac = bare.add_actor("vDAC", seconds(Rational(1)));
  (void)bare.add_buffer(br, mp3, dataflow::RateSet::singleton(2048),
                        dataflow::RateSet::interval(n_min, n_max));
  (void)bare.add_buffer(mp3, src, dataflow::RateSet::singleton(1152),
                        dataflow::RateSet::singleton(480));
  (void)bare.add_buffer(src, dac, dataflow::RateSet::singleton(441),
                        dataflow::RateSet::singleton(1));
  const analysis::ThroughputConstraint constraint{
      dac, period_of_hz(Rational(44100))};
  const auto graph =
      models::with_scaled_response_times(bare, constraint, Rational(1));
  return analysis::compute_buffer_capacities(*graph, constraint);
}

}  // namespace

int main() {
  std::cout << "E5 — capacity versus decoder-rate variability\n\n"
            << "Sweep 1: n in [n_min, 960] (paper point: n_min = 0)\n";
  io::Table t1({"n_min", "d1 (VRDF)", "d2 (VRDF)", "d1 traditional n=960",
                "d1 overhead"});
  const std::int64_t trad_d1 = baseline::sriram_pair_capacity(2048, 960);
  for (const std::int64_t n_min : {960LL, 720LL, 480LL, 240LL, 96LL, 0LL}) {
    const analysis::GraphAnalysis a =
        analyse_with_decoder_interval(n_min, 960);
    if (!a.admissible) {
      std::cerr << "unexpected inadmissible sweep point\n";
      return 1;
    }
    const double overhead =
        100.0 * (static_cast<double>(a.pairs[0].capacity) /
                     static_cast<double>(trad_d1) -
                 1.0);
    t1.add_row({std::to_string(n_min), std::to_string(a.pairs[0].capacity),
                std::to_string(a.pairs[1].capacity), std::to_string(trad_d1),
                std::to_string(overhead).substr(0, 5) + " %"});
  }
  std::cout << t1.to_string() << '\n';
  std::cout << "Note: d1 is flat in n_min — the sink-constrained analysis\n"
               "only reads the consumption *maximum* (Sec 4.3); the minimum\n"
               "matters for admissibility (0 is allowed for consumption) and\n"
               "at run time, where smaller quanta throttle vBR via\n"
               "back-pressure without violating the constraint.\n\n";

  std::cout << "Sweep 2: n in [0, n_max] (decoder max bit-rate)\n";
  io::Table t2({"n_max", "bytes/s at 48kHz", "d1 (VRDF)",
                "traditional 2(p+c-gcd)", "phi(vBR) ms"});
  for (const std::int64_t n_max : {240LL, 480LL, 720LL, 960LL, 1440LL}) {
    const analysis::GraphAnalysis a = analyse_with_decoder_interval(0, n_max);
    if (!a.admissible) {
      std::cerr << "unexpected inadmissible sweep point\n";
      return 1;
    }
    t2.add_row({std::to_string(n_max),
                std::to_string(n_max * 48000 / 1152),
                std::to_string(a.pairs[0].capacity),
                std::to_string(baseline::sriram_pair_capacity(2048, n_max)),
                std::to_string(a.pacing[0].to_millis_double())});
  }
  std::cout << t2.to_string() << '\n';
  std::cout << "Higher max bit-rate shrinks phi(vBR) (the reader must keep\n"
               "up with a faster decoder) while d1 grows with the worst-case\n"
               "in-flight window.\n";
  return 0;
}
