// Interior-pin performance: analysis and two-phase verification cost of
// strictly periodic *interior* actors (PR 5).  Compiled into bench_perf
// (no own main) so the `bench` target's BENCH_PR<N>.json captures the
// interior series alongside the single- and multi-constraint ones.
#include <benchmark/benchmark.h>

#include "analysis/buffer_sizing.hpp"
#include "analysis/period.hpp"
#include "models/synthetic.hpp"
#include "sim/verify.hpp"

namespace {

using namespace vrdf;

void BM_InteriorPipelineAnalysis(benchmark::State& state) {
  const models::InteriorPinnedPipeline app =
      models::make_interior_pinned_pipeline();
  for (auto _ : state) {
    const analysis::GraphAnalysis result =
        analysis::compute_buffer_capacities(app.graph, app.constraint);
    benchmark::DoNotOptimize(result.total_capacity);
  }
}
BENCHMARK(BM_InteriorPipelineAnalysis);

void BM_InteriorAnalysisVsLength(benchmark::State& state) {
  // The pin sits mid-chain with range(0) actors on each side; the
  // bidirectional propagation stays O(actors).
  models::RandomInteriorPinSpec spec;
  spec.seed = 17;
  spec.upstream_length = static_cast<std::size_t>(state.range(0));
  spec.downstream_length = static_cast<std::size_t>(state.range(0));
  const models::SyntheticChain model = models::make_random_interior_pinned(spec);
  for (auto _ : state) {
    const analysis::GraphAnalysis result =
        analysis::compute_buffer_capacities(model.graph, model.constraint);
    benchmark::DoNotOptimize(result.total_capacity);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_InteriorAnalysisVsLength)->RangeMultiplier(2)->Range(2, 64)
    ->Complexity(benchmark::oN);

void BM_InteriorMinPeriod(benchmark::State& state) {
  models::InteriorPinnedPipeline app = models::make_interior_pinned_pipeline();
  const analysis::GraphAnalysis sized =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  analysis::apply_capacities(app.graph, sized);
  for (auto _ : state) {
    const analysis::MinPeriodResult headroom =
        analysis::min_admissible_period(app.graph, app.dsp);
    benchmark::DoNotOptimize(headroom.ok);
  }
}
BENCHMARK(BM_InteriorMinPeriod);

void BM_InteriorVerify(benchmark::State& state) {
  // The two-phase harness with the interior pin enforced (100 observed
  // firings — the verification cost scales with the horizon).
  models::InteriorPinnedPipeline app = models::make_interior_pinned_pipeline();
  const analysis::GraphAnalysis sized =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  analysis::apply_capacities(app.graph, sized);
  sim::VerifyOptions options;
  options.observe_firings = 100;
  for (auto _ : state) {
    const sim::VerifyResult verdict =
        sim::verify_throughput(app.graph, app.constraint, {}, options);
    benchmark::DoNotOptimize(verdict.ok);
  }
}
BENCHMARK(BM_InteriorVerify);

}  // namespace
