// Fork-join benchmarks: the per-edge analysis pipeline (pacing +
// schedule-alignment + capacities) versus graph size, and simulator
// throughput on fork-join topologies (the join actors exercise the
// multi-input enabling path that chains never hit).
#include <benchmark/benchmark.h>

#include "analysis/buffer_sizing.hpp"
#include "models/synthetic.hpp"
#include "sim/simulator.hpp"
#include "sim/verify.hpp"

namespace {

using namespace vrdf;

models::SyntheticChain make_model(std::size_t stages) {
  models::RandomForkJoinSpec spec;
  spec.seed = 13;
  spec.stages = stages;
  spec.max_branches = 3;
  spec.max_branch_length = 2;
  spec.max_segment_length = 1;
  spec.variable_percent = 50;
  return models::make_random_fork_join(spec);
}

void BM_ForkJoinCapacityVsStages(benchmark::State& state) {
  const models::SyntheticChain model =
      make_model(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const analysis::GraphAnalysis result =
        analysis::compute_buffer_capacities(model.graph, model.constraint);
    benchmark::DoNotOptimize(result.total_capacity);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ForkJoinCapacityVsStages)->RangeMultiplier(2)->Range(1, 16)
    ->Complexity(benchmark::oN);

void BM_AvPipelineCapacityComputation(benchmark::State& state) {
  const models::AvSyncPipeline app = models::make_av_sync_pipeline();
  for (auto _ : state) {
    const analysis::GraphAnalysis result =
        analysis::compute_buffer_capacities(app.graph, app.constraint);
    benchmark::DoNotOptimize(result.total_capacity);
  }
}
BENCHMARK(BM_AvPipelineCapacityComputation);

void BM_SimulatorForkJoinFirings(benchmark::State& state) {
  models::SyntheticChain model = make_model(2);
  const analysis::GraphAnalysis sized =
      analysis::compute_buffer_capacities(model.graph, model.constraint);
  analysis::apply_capacities(model.graph, sized);
  std::int64_t fired = 0;
  for (auto _ : state) {
    sim::Simulator sim(model.graph);
    sim.set_default_sources(42);
    sim::StopCondition stop;
    stop.firing_target =
        sim::StopCondition::FiringTarget{model.constraint.actor, 2000};
    const sim::RunResult result = sim.run(stop);
    fired += result.total_firings;
    benchmark::DoNotOptimize(result.end_time);
  }
  state.SetItemsProcessed(fired);
}
BENCHMARK(BM_SimulatorForkJoinFirings);

void BM_VerifyAvPipeline(benchmark::State& state) {
  // The full two-phase sufficiency check on the A/V model — the cost of
  // one entry of the ForkJoinSufficiency test sweep.
  models::AvSyncPipeline app = models::make_av_sync_pipeline();
  const analysis::GraphAnalysis sized =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  analysis::apply_capacities(app.graph, sized);
  sim::VerifyOptions options;
  options.observe_firings = 500;
  for (auto _ : state) {
    const sim::VerifyResult verdict =
        sim::verify_throughput(app.graph, app.constraint, {}, options);
    benchmark::DoNotOptimize(verdict.ok);
  }
}
BENCHMARK(BM_VerifyAvPipeline);

}  // namespace

BENCHMARK_MAIN();
