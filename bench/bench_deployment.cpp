// Shared-platform deployment performance (PR 10).  Compiled into
// bench_perf (no own main) so the `bench` target's BENCH_PR<N>.json
// captures the series:
//  - BM_DeploymentAnalysis: one-shot analyze_deployment throughput —
//    κ derivation for every binding, the Sec 3.3 construction and the
//    full capacity analysis, swept over deployment size;
//  - BM_SlotRetuneIncremental: a DeploymentController slot retune
//    (wheel check + κ re-derivation + IncrementalAnalysis::retune on
//    cached pacing), the deployment analogue of the PR 7 retune path;
//  - BM_FrontierSweep: the full capacity-vs-allocation frontier
//    (slot budgets × stream counts × seeds, verification included) at
//    1 and 4 threads.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "analysis/deployment.hpp"
#include "sim/deployment_frontier.hpp"

namespace {

using namespace vrdf;

struct BenchDeployment {
  taskgraph::TaskGraph tasks;
  sched::Platform platform;
  std::vector<analysis::DeploymentConstraint> streams;
  std::vector<std::string> names;
};

// `streams` fork chains of 3 tasks off a shared root, bound round-robin
// across two 1 ms TDM wheels at slots sized to the densest wheel.
BenchDeployment make_bench_deployment(std::int64_t streams) {
  BenchDeployment d;
  const Duration wheel = milliseconds(Rational(1));
  (void)d.platform.add_processor("cpu0", wheel);
  (void)d.platform.add_processor("cpu1", wheel);
  const std::int64_t total = 1 + streams * 3;
  const std::int64_t per_wheel = (total + 1) / 2;
  const std::int64_t slot_sixteenths =
      16 / per_wheel > 0 ? 16 / per_wheel : 1;
  std::int64_t index = 0;
  const auto add = [&](const std::string& name) {
    const taskgraph::TaskId id = d.tasks.add_task(name, wheel);
    d.platform.bind_task(
        name, static_cast<std::size_t>(index % 2),
        Duration(wheel.seconds() * Rational(slot_sixteenths, 16)),
        Duration(wheel.seconds() * Rational(3 + index % 5, 64)));
    d.names.push_back(name);
    ++index;
    return id;
  };
  const taskgraph::TaskId root = add("root");
  for (std::int64_t s = 0; s < streams; ++s) {
    taskgraph::TaskId previous = root;
    for (std::int64_t t = 0; t < 3; ++t) {
      const taskgraph::TaskId id =
          add("s" + std::to_string(s) + "t" + std::to_string(t));
      (void)d.tasks.add_buffer(previous, id,
                               dataflow::RateSet::singleton(1),
                               dataflow::RateSet::singleton(1));
      previous = id;
    }
    d.streams.push_back(analysis::DeploymentConstraint{
        "s" + std::to_string(s) + "t2", milliseconds(Rational(8))});
  }
  return d;
}

void BM_DeploymentAnalysis(benchmark::State& state) {
  const BenchDeployment d = make_bench_deployment(state.range(0));
  std::int64_t total_capacity = 0;
  for (auto _ : state) {
    const analysis::DeploymentResult result =
        analysis::analyze_deployment(d.tasks, d.platform, d.streams);
    benchmark::DoNotOptimize(result.analysis.total_capacity);
    total_capacity = result.analysis.total_capacity;
  }
  state.counters["tasks"] = static_cast<double>(d.names.size());
  state.counters["total_capacity"] = static_cast<double>(total_capacity);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeploymentAnalysis)->Arg(2)->Arg(4);

void BM_SlotRetuneIncremental(benchmark::State& state) {
  const BenchDeployment d = make_bench_deployment(state.range(0));
  analysis::DeploymentController controller(d.tasks, d.platform, d.streams);
  const Duration wheel = milliseconds(Rational(1));
  const Duration narrow(wheel.seconds() * Rational(1, 16));
  const Duration wide(wheel.seconds() * Rational(2, 16));
  bool flip = false;
  for (auto _ : state) {
    const analysis::DeploymentDecision decision =
        controller.set_slot(d.names.back(), flip ? narrow : wide);
    benchmark::DoNotOptimize(decision.accepted);
    flip = !flip;
  }
  const analysis::InvalidationStats& stats = controller.engine().stats();
  state.counters["pacing_cache_hits"] =
      static_cast<double>(stats.pacing_cache_hits);
  state.counters["pairs_reused"] = static_cast<double>(stats.pairs_reused);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlotRetuneIncremental)->Arg(2)->Arg(4);

void BM_FrontierSweep(benchmark::State& state) {
  sim::FrontierSpec spec;
  spec.stream_counts = {1, 2};
  spec.slot_sixteenths = {1, 2, 4};
  spec.seeds_per_cell = 2;
  spec.observe_firings = 60;
  const sim::FrontierSweep sweep(spec);
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  std::int64_t admitted = 0;
  for (auto _ : state) {
    const sim::FrontierReport report = sweep.run(threads);
    benchmark::DoNotOptimize(report.total_items);
    admitted = report.admitted;
  }
  state.counters["items"] = static_cast<double>(sweep.items().size());
  state.counters["admitted"] = static_cast<double>(admitted);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sweep.items().size()));
}
BENCHMARK(BM_FrontierSweep)->Arg(1)->Arg(4);

}  // namespace
