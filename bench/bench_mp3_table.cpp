// E3 + E4 — the Sec 5 evaluation: the MP3 playback capacity table and the
// derived response-time budget, paper versus measured, with simulation
// verification (the paper's own validation step).
#include <iostream>

#include "analysis/buffer_sizing.hpp"
#include "baseline/traditional.hpp"
#include "io/table.hpp"
#include "models/mp3.hpp"
#include "sim/verify.hpp"

int main() {
  using namespace vrdf;

  std::cout << "E3/E4 — Sec 5: MP3 playback at 44.1 kHz, VBR stream\n\n";
  models::Mp3Playback app = models::make_mp3_playback();

  // E4: response times that just allow the constraint.
  const auto budget =
      analysis::max_admissible_response_times(app.graph, app.constraint);
  io::Table rho_table({"actor", "derived (ms)", "paper (ms)"});
  const char* const paper_rho[] = {"51.2", "24", "10", "0.0227 (=1/44100 s)"};
  for (std::size_t i = 0; i < budget.actors_in_order.size(); ++i) {
    rho_table.add_row(
        {app.graph.actor(budget.actors_in_order[i]).name,
         std::to_string(budget.max_response_times[i].to_millis_double()),
         paper_rho[i]});
  }
  std::cout << rho_table.to_string() << '\n';

  // E3: the capacity table.
  const analysis::GraphAnalysis ours =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  const baseline::TraditionalResult trad =
      baseline::traditional_chain_capacities(app.graph);
  io::Table cap_table({"buffer", "VRDF measured", "VRDF paper",
                       "traditional measured", "traditional paper", "match"});
  bool all_match = true;
  for (std::size_t i = 0; i < ours.pairs.size(); ++i) {
    const std::int64_t paper_v = models::Mp3PaperNumbers::kVrdfCapacities[i];
    const std::int64_t paper_t =
        models::Mp3PaperNumbers::kTraditionalCapacities[i];
    const bool match = ours.pairs[i].capacity == paper_v &&
                       trad.pairs[i].capacity == paper_t;
    all_match = all_match && match;
    cap_table.add_row({"d" + std::to_string(i + 1),
                       std::to_string(ours.pairs[i].capacity),
                       std::to_string(paper_v),
                       std::to_string(trad.pairs[i].capacity),
                       std::to_string(paper_t), match ? "yes" : "NO"});
  }
  std::cout << cap_table.to_string() << '\n';

  // The paper: "With our dataflow simulator we have verified that these
  // buffer capacities are indeed sufficient to satisfy the throughput
  // constraint."
  analysis::apply_capacities(app.graph, ours);
  sim::VerifyOptions options;
  options.observe_firings = 200000;
  const sim::VerifyResult verdict =
      sim::verify_throughput(app.graph, app.constraint, {}, options);
  std::cout << "simulator verification (" << options.observe_firings
            << " DAC ticks, random VBR): " << (verdict.ok ? "OK" : "FAILED")
            << " — " << verdict.detail << '\n';
  std::cout << "\nreproduction status: "
            << (all_match && verdict.ok ? "EXACT MATCH" : "MISMATCH") << '\n';
  return all_match && verdict.ok ? 0 : 1;
}
