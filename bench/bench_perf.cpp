// E8 — performance of the analysis and the simulator (google-benchmark).
//
// The buffer-capacity computation is a linear pass over the chain; the
// plot of time versus chain length should be a straight line.  The
// simulator's events/second bound how long the verification step of large
// models takes.
#include <benchmark/benchmark.h>

#include "analysis/buffer_sizing.hpp"
#include "models/mp3.hpp"
#include "models/synthetic.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace vrdf;

void BM_Mp3CapacityComputation(benchmark::State& state) {
  const models::Mp3Playback app = models::make_mp3_playback();
  for (auto _ : state) {
    const analysis::GraphAnalysis result =
        analysis::compute_buffer_capacities(app.graph, app.constraint);
    benchmark::DoNotOptimize(result.total_capacity);
  }
}
BENCHMARK(BM_Mp3CapacityComputation);

void BM_ChainCapacityVsLength(benchmark::State& state) {
  models::RandomChainSpec spec;
  spec.seed = 7;
  spec.length = static_cast<std::size_t>(state.range(0));
  spec.max_quantum = 8;
  const models::SyntheticChain chain = models::make_random_chain(spec);
  for (auto _ : state) {
    const analysis::GraphAnalysis result =
        analysis::compute_buffer_capacities(chain.graph, chain.constraint);
    benchmark::DoNotOptimize(result.total_capacity);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ChainCapacityVsLength)->RangeMultiplier(2)->Range(2, 64)
    ->Complexity(benchmark::oN);

void BM_PacingOnly(benchmark::State& state) {
  models::RandomChainSpec spec;
  spec.seed = 11;
  spec.length = static_cast<std::size_t>(state.range(0));
  const models::SyntheticChain chain = models::make_random_chain(spec);
  for (auto _ : state) {
    const auto budget = analysis::max_admissible_response_times(
        chain.graph, chain.constraint);
    benchmark::DoNotOptimize(budget.max_response_times.size());
  }
}
BENCHMARK(BM_PacingOnly)->Arg(8)->Arg(32);

void RunSimulatorFirings(benchmark::State& state, sim::ClockMode mode) {
  // Firings per second on the Fig 1 pair with random quanta.
  dataflow::VrdfGraph g;
  const auto a = g.add_actor("a", milliseconds(Rational(1)));
  const auto b = g.add_actor("b", milliseconds(Rational(1)));
  (void)g.add_buffer(a, b, dataflow::RateSet::singleton(3),
                     dataflow::RateSet::of({2, 3}), 11);
  std::int64_t fired = 0;
  for (auto _ : state) {
    sim::Simulator sim(g);
    sim.set_clock_mode(mode);
    sim.set_default_sources(42);
    sim::StopCondition stop;
    stop.firing_target = sim::StopCondition::FiringTarget{b, 10000};
    const sim::RunResult result = sim.run(stop);
    fired += result.total_firings;
    benchmark::DoNotOptimize(result.end_time);
  }
  state.SetItemsProcessed(fired);
}

void BM_SimulatorFirings(benchmark::State& state) {
  RunSimulatorFirings(state, sim::ClockMode::Auto);
}
BENCHMARK(BM_SimulatorFirings);

void BM_SimulatorFiringsExactRational(benchmark::State& state) {
  // The exact-Rational fallback path, for comparison with the tick clock.
  RunSimulatorFirings(state, sim::ClockMode::ForceExactRational);
}
BENCHMARK(BM_SimulatorFiringsExactRational);

void BM_SimulatorMp3Second(benchmark::State& state) {
  // One second of MP3 playback (44100 DAC ticks) per iteration.
  models::Mp3Playback app = models::make_mp3_playback();
  const analysis::GraphAnalysis result =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  analysis::apply_capacities(app.graph, result);
  std::int64_t fired = 0;
  for (auto _ : state) {
    sim::Simulator sim(app.graph);
    sim.set_default_sources(1);
    sim::StopCondition stop;
    stop.firing_target = sim::StopCondition::FiringTarget{app.dac, 44100};
    fired += sim.run(stop).total_firings;
  }
  state.SetItemsProcessed(fired);
}
BENCHMARK(BM_SimulatorMp3Second);

}  // namespace

BENCHMARK_MAIN();
