// E7 — Sec 4.4: the source-constrained variant.
//
// Sizes the sensor-acquisition chain (strictly periodic ADC at 48 kHz,
// variable-production compressor that may emit nothing) and checks the
// mirror property: reversing a chain and swapping production/consumption
// sets yields identical capacities under the opposite constraint side.
#include <iostream>

#include "analysis/buffer_sizing.hpp"
#include "io/table.hpp"
#include "models/synthetic.hpp"
#include "sim/verify.hpp"

namespace {

using namespace vrdf;

/// Reverses a chain: actor order flipped, each buffer's rate sets swapped.
dataflow::VrdfGraph reversed(const dataflow::VrdfGraph& g) {
  const auto view = g.chain_view();
  dataflow::VrdfGraph out;
  std::vector<dataflow::ActorId> ids(view->actors.size());
  for (std::size_t i = 0; i < view->actors.size(); ++i) {
    const auto& actor = g.actor(view->actors[view->actors.size() - 1 - i]);
    ids[i] = out.add_actor(actor.name, actor.response_time);
  }
  for (std::size_t i = 0; i < view->buffers.size(); ++i) {
    const auto& data =
        g.edge(view->buffers[view->buffers.size() - 1 - i].data);
    (void)out.add_buffer(ids[i], ids[i + 1], data.consumption, data.production);
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "E7 — source-constrained chain (Sec 4.4)\n\n";
  models::SyntheticChain chain = models::make_sensor_acquisition();
  const analysis::GraphAnalysis source_side =
      analysis::compute_buffer_capacities(chain.graph, chain.constraint);
  if (!source_side.admissible) {
    std::cerr << "analysis failed\n";
    return 1;
  }

  io::Table table({"buffer", "pi / gamma", "phi(consumer) ms", "capacity"});
  for (std::size_t i = 0; i < source_side.pairs.size(); ++i) {
    const auto& pair = source_side.pairs[i];
    const auto& data = chain.graph.edge(pair.buffer.data);
    table.add_row({chain.graph.actor(pair.producer).name + "->" +
                       chain.graph.actor(pair.consumer).name,
                   data.production.to_string() + " / " +
                       data.consumption.to_string(),
                   std::to_string(source_side.pacing[i + 1].to_millis_double()),
                   std::to_string(pair.capacity)});
  }
  std::cout << table.to_string() << '\n';

  // Verification.
  analysis::apply_capacities(chain.graph, source_side);
  sim::VerifyOptions options;
  options.observe_firings = 48000;
  const sim::VerifyResult verdict =
      sim::verify_throughput(chain.graph, chain.constraint, {}, options);
  std::cout << "verify [periodic ADC, random compressor]: "
            << (verdict.ok ? "OK" : "FAILED") << " — " << verdict.detail
            << "\n\n";

  // Mirror check: the reversed chain under a *sink* constraint must get
  // the same capacities (Sec 4.4 is the exact mirror of Sec 4.2/4.3).
  const dataflow::VrdfGraph mirror = reversed(chain.graph);
  const auto mirror_view = mirror.chain_view();
  const analysis::GraphAnalysis sink_side = analysis::compute_buffer_capacities(
      mirror, analysis::ThroughputConstraint{mirror_view->actors.back(),
                                             chain.constraint.period});
  bool mirror_ok = sink_side.admissible &&
                   sink_side.pairs.size() == source_side.pairs.size();
  if (mirror_ok) {
    for (std::size_t i = 0; i < source_side.pairs.size(); ++i) {
      mirror_ok =
          mirror_ok &&
          source_side.pairs[i].capacity ==
              sink_side.pairs[sink_side.pairs.size() - 1 - i].capacity;
    }
  }
  std::cout << "mirror property (reversed chain, sink constraint): "
            << (mirror_ok ? "capacities identical" : "MISMATCH") << '\n';
  return verdict.ok && mirror_ok ? 0 : 1;
}
