// Multi-constraint analysis performance: the dual-sink A/V pipeline and
// random multi-sink graphs of growing width.  Compiled into bench_perf
// (no own main) so the `bench` target's BENCH_PR<N>.json captures the
// multi-constraint series alongside the single-constraint ones.
#include <benchmark/benchmark.h>

#include "analysis/buffer_sizing.hpp"
#include "analysis/period.hpp"
#include "models/synthetic.hpp"
#include "sim/verify.hpp"

namespace {

using namespace vrdf;

void BM_DualSinkAvAnalysis(benchmark::State& state) {
  const models::AvDualSinkPipeline app = models::make_av_dual_sink_pipeline();
  for (auto _ : state) {
    const analysis::GraphAnalysis result =
        analysis::compute_buffer_capacities(app.graph, app.constraints);
    benchmark::DoNotOptimize(result.total_capacity);
  }
}
BENCHMARK(BM_DualSinkAvAnalysis);

void BM_MultiSinkAnalysisVsSinks(benchmark::State& state) {
  models::RandomMultiSinkSpec spec;
  spec.seed = 13;
  spec.sinks = static_cast<std::size_t>(state.range(0));
  spec.max_branch_length = 3;
  spec.max_prefix_length = 2;
  const models::SyntheticMultiConstraint model =
      models::make_random_multi_sink(spec);
  for (auto _ : state) {
    const analysis::GraphAnalysis result =
        analysis::compute_buffer_capacities(model.graph, model.constraints);
    benchmark::DoNotOptimize(result.total_capacity);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MultiSinkAnalysisVsSinks)->RangeMultiplier(2)->Range(2, 16)
    ->Complexity(benchmark::oN);

void BM_MultiConstraintMinPeriod(benchmark::State& state) {
  models::AvDualSinkPipeline app = models::make_av_dual_sink_pipeline();
  const analysis::GraphAnalysis sized =
      analysis::compute_buffer_capacities(app.graph, app.constraints);
  analysis::apply_capacities(app.graph, sized);
  for (auto _ : state) {
    const analysis::MinPeriodResult headroom = analysis::min_admissible_period(
        app.graph, app.constraints, app.vpresent);
    benchmark::DoNotOptimize(headroom.ok);
  }
}
BENCHMARK(BM_MultiConstraintMinPeriod);

void BM_DualSinkVerify(benchmark::State& state) {
  // The two-phase harness with both presenters enforced (100 observed
  // firings — the verification cost scales with the horizon).
  models::AvDualSinkPipeline app = models::make_av_dual_sink_pipeline();
  const analysis::GraphAnalysis sized =
      analysis::compute_buffer_capacities(app.graph, app.constraints);
  analysis::apply_capacities(app.graph, sized);
  sim::VerifyOptions options;
  options.observe_firings = 100;
  for (auto _ : state) {
    const sim::VerifyResult verdict =
        sim::verify_throughput(app.graph, app.constraints, {}, options);
    benchmark::DoNotOptimize(verdict.ok);
  }
}
BENCHMARK(BM_DualSinkVerify);

}  // namespace
