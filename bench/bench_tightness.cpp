// E6 — ablation: how tight is Eq (4)?
//
// Compares the three rounding policies on the paper's models, then probes
// near-minimality by simulation on the Fig 1 pair: for each of several
// quantum sequences, the exact per-sequence minimum capacity (binary
// search with the two-phase oracle) against the one-size-fits-all
// analysis capacity.  The analysis bound must dominate every per-sequence
// minimum; the gap is the price of covering *all* sequences with a single
// static capacity.
#include <iostream>

#include "analysis/buffer_sizing.hpp"
#include "baseline/exact_minimal.hpp"
#include "io/table.hpp"
#include "models/fig1.hpp"
#include "models/mp3.hpp"

namespace {

using namespace vrdf;

std::string mode_name(analysis::RoundingMode mode) {
  switch (mode) {
    case analysis::RoundingMode::PaperLiteral: return "PaperLiteral (x+1)";
    case analysis::RoundingMode::Ceil: return "Ceil (x)";
    case analysis::RoundingMode::PaperPublished: return "PaperPublished";
  }
  return "?";
}

}  // namespace

int main() {
  std::cout << "E6 — rounding-mode comparison and near-minimality probe\n\n";

  // Part 1: rounding modes on the MP3 chain.
  std::cout << "MP3 chain capacities per rounding mode:\n";
  const models::Mp3Playback app = models::make_mp3_playback();
  io::Table modes({"mode", "d1", "d2", "d3", "total"});
  for (const auto mode :
       {analysis::RoundingMode::PaperPublished,
        analysis::RoundingMode::PaperLiteral, analysis::RoundingMode::Ceil}) {
    analysis::AnalysisOptions options;
    options.rounding = mode;
    const analysis::GraphAnalysis a =
        analysis::compute_buffer_capacities(app.graph, app.constraint, options);
    modes.add_row({mode_name(mode), std::to_string(a.pairs[0].capacity),
                   std::to_string(a.pairs[1].capacity),
                   std::to_string(a.pairs[2].capacity),
                   std::to_string(a.total_capacity)});
  }
  std::cout << modes.to_string() << '\n';

  // Part 2: per-sequence exact minima on the Fig 1 pair.
  const Duration tau = milliseconds(Rational(3));
  const models::Fig1Vrdf fig1 = models::make_fig1_vrdf(tau, tau, tau);
  const analysis::GraphAnalysis fig1_analysis =
      analysis::compute_buffer_capacities(fig1.graph, fig1.constraint);
  const std::int64_t analysis_capacity = fig1_analysis.pairs[0].capacity;

  struct Sequence {
    const char* name;
    std::function<std::unique_ptr<sim::QuantumSource>()> make;
  };
  const Sequence sequences[] = {
      {"constant 3", [] { return sim::constant_source(3); }},
      {"constant 2", [] { return sim::constant_source(2); }},
      {"alternating 2,3", [] { return sim::cyclic_source({2, 3}); }},
      {"alternating 3,2", [] { return sim::cyclic_source({3, 2}); }},
      {"bursty 2,2,2,3,3,3", [] { return sim::cyclic_source({2, 2, 2, 3, 3, 3}); }},
      {"random(seed 5)",
       [] { return sim::uniform_random_source(dataflow::RateSet::of({2, 3}), 5); }},
  };
  std::cout << "Fig 1 pair, analysis capacity " << analysis_capacity
            << " (covers all sequences):\n";
  io::Table probe({"consumer sequence", "exact per-sequence minimum",
                   "analysis bound", "slack"});
  bool sound = true;
  for (const Sequence& seq : sequences) {
    baseline::PairSearchSpec spec;
    spec.production = dataflow::RateSet::singleton(3);
    spec.consumption = dataflow::RateSet::of({2, 3});
    spec.producer_response = tau;
    spec.consumer_response = tau;
    spec.consumer_period = tau;
    spec.consumer_sequence = seq.make;
    spec.observe_firings = 2048;
    const auto minimum =
        baseline::exact_minimal_pair_capacity(spec, analysis_capacity);
    if (!minimum.has_value()) {
      sound = false;
      probe.add_row({seq.name, "INFEASIBLE AT BOUND", "-", "-"});
      continue;
    }
    probe.add_row({seq.name, std::to_string(*minimum),
                   std::to_string(analysis_capacity),
                   std::to_string(analysis_capacity - *minimum)});
  }
  std::cout << probe.to_string() << '\n';
  std::cout << (sound ? "soundness: the analysis bound dominated every "
                        "per-sequence minimum\n"
                      : "SOUNDNESS VIOLATION\n");
  return sound ? 0 : 1;
}
