// E9 — buffer occupancy and token residency of the sized MP3 chain.
//
// Not a paper table; a deployment-facing view of the Sec 5 result.  With
// the computed capacities installed and the DAC strictly periodic, the
// trace answers two practical questions:
//  * how full do the buffers actually get (peak occupancy vs capacity)?
//  * how long does a token sit in each buffer (residency = the per-hop
//    contribution to end-to-end latency)?
// Low-bit-rate streams occupy d1 less (fewer bytes in flight) but keep
// tokens longer (the reader is throttled by back-pressure).
#include <iostream>

#include "analysis/buffer_sizing.hpp"
#include "io/table.hpp"
#include "models/mp3.hpp"
#include "sim/stats.hpp"
#include "sim/verify.hpp"

namespace {

using namespace vrdf;

struct Profile {
  const char* name;
  std::function<std::unique_ptr<sim::QuantumSource>()> make;
};

}  // namespace

int main() {
  std::cout << "E9 — occupancy and residency of the sized MP3 chain\n\n";
  models::Mp3Playback app = models::make_mp3_playback();
  const analysis::GraphAnalysis sized =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  analysis::apply_capacities(app.graph, sized);

  const Profile profiles[] = {
      {"n = 960 (max bit-rate)", [] { return sim::constant_source(960); }},
      {"n = 96 (low bit-rate)", [] { return sim::constant_source(96); }},
      {"uniform random [0,960]",
       [&] {
         return sim::uniform_random_source(
             app.graph.edge(app.b1.data).consumption, 7);
       }},
  };

  bool ok = true;
  for (const Profile& profile : profiles) {
    // Phase 1 to find the DAC offset, then a recorded periodic run.
    const sim::VerifyResult verdict = sim::verify_throughput(
        app.graph, app.constraint,
        [&](sim::Simulator& s) {
          s.set_quantum_source(app.mp3, app.b1.data, profile.make());
        },
        {.observe_firings = 50000, .default_seed = 1});
    if (!verdict.ok) {
      std::cerr << "verification failed for " << profile.name << '\n';
      ok = false;
      continue;
    }
    sim::Simulator recorded(app.graph);
    recorded.set_quantum_source(app.mp3, app.b1.data, profile.make());
    recorded.set_default_sources(1);
    recorded.set_actor_mode(app.dac,
                            sim::ActorMode::strictly_periodic(
                                verdict.offset_used, app.constraint.period));
    for (const auto& buffer : {app.b1, app.b2, app.b3}) {
      recorded.record_transfers(buffer.data, 1 << 22);
    }
    sim::StopCondition stop;
    stop.firing_target = sim::StopCondition::FiringTarget{app.dac, 50000};
    (void)recorded.run(stop);

    std::cout << "profile: " << profile.name << '\n';
    io::Table table({"buffer", "capacity", "peak occupancy", "utilization",
                     "max residency (ms)", "mean residency (ms)"});
    const dataflow::BufferEdges buffers[] = {app.b1, app.b2, app.b3};
    const std::int64_t capacities[] = {sized.pairs[0].capacity,
                                       sized.pairs[1].capacity,
                                       sized.pairs[2].capacity};
    for (std::size_t i = 0; i < 3; ++i) {
      const std::int64_t peak =
          sim::peak_occupancy(recorded, app.graph, buffers[i].data);
      const auto residency =
          sim::token_residency(recorded, app.graph, buffers[i].data);
      table.add_row(
          {"d" + std::to_string(i + 1), std::to_string(capacities[i]),
           std::to_string(peak),
           std::to_string(100.0 * static_cast<double>(peak) /
                          static_cast<double>(capacities[i]))
                   .substr(0, 5) +
               " %",
           residency ? std::to_string(
                           residency->max_residency.to_millis_double())
                     : "-",
           residency
               ? std::to_string(residency->mean_seconds.to_double() * 1e3)
               : "-"});
      ok = ok && peak <= capacities[i];
    }
    std::cout << table.to_string() << '\n';
  }
  std::cout << (ok ? "peak occupancy never exceeded any capacity\n"
                   : "OCCUPANCY VIOLATION\n");
  return ok ? 0 : 1;
}
