// E1 — Fig 1 / Sec 1 example: "maximising the consumption quantum does not
// lead to buffer capacities that are sufficient for other consumption
// quanta."
//
// Regenerates the intro's numbers by exhaustive simulation: the minimum
// deadlock-free capacity is 3 when wb always consumes 3, but 4 when it
// always consumes 2.  Also reports the throughput-sustaining minima and
// the VRDF analysis capacity that covers every sequence.
#include <iostream>

#include "analysis/buffer_sizing.hpp"
#include "baseline/exact_minimal.hpp"
#include "io/table.hpp"
#include "models/fig1.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace vrdf;

/// Minimum capacity for sustained *progress* (deadlock-freedom) with a
/// fixed consumption quantum, found by direct search.
std::int64_t min_deadlock_free_capacity(std::int64_t consumption) {
  for (std::int64_t capacity = 1;; ++capacity) {
    dataflow::VrdfGraph g;
    const auto a = g.add_actor("wa", milliseconds(Rational(1)));
    const auto b = g.add_actor("wb", milliseconds(Rational(1)));
    const auto buf = g.add_buffer(a, b, dataflow::RateSet::singleton(3),
                                  dataflow::RateSet::of({2, 3}), capacity);
    sim::Simulator s(g);
    s.set_quantum_source(b, buf.data, sim::constant_source(consumption));
    s.set_default_sources(1);
    sim::StopCondition stop;
    stop.firing_target = sim::StopCondition::FiringTarget{b, 100};
    if (s.run(stop).reason == sim::StopReason::ReachedFiringTarget) {
      return capacity;
    }
  }
}

std::int64_t min_throughput_capacity(std::int64_t consumption, Duration tau) {
  baseline::PairSearchSpec spec;
  spec.production = dataflow::RateSet::singleton(3);
  spec.consumption = dataflow::RateSet::of({2, 3});
  spec.producer_response = tau;
  spec.consumer_response = tau;
  spec.consumer_period = tau;
  spec.consumer_sequence = [consumption] {
    return sim::constant_source(consumption);
  };
  return baseline::exact_minimal_pair_capacity(spec, 32).value_or(-1);
}

}  // namespace

int main() {
  std::cout << "E1 — Fig 1 example (wa produces 3, wb consumes {2,3})\n\n";

  const Duration tau = milliseconds(Rational(3));
  const models::Fig1Vrdf model = models::make_fig1_vrdf(tau, tau, tau);
  const analysis::GraphAnalysis analysis =
      analysis::compute_buffer_capacities(model.graph, model.constraint);

  io::Table table({"consumption quantum", "min capacity (deadlock-free)",
                   "paper says", "min capacity (throughput, rho=tau)",
                   "VRDF analysis (all sequences)"});
  table.add_row({"n = 3 every firing",
                 std::to_string(min_deadlock_free_capacity(3)), "3",
                 std::to_string(min_throughput_capacity(3, tau)),
                 std::to_string(analysis.pairs[0].capacity)});
  table.add_row({"n = 2 every firing",
                 std::to_string(min_deadlock_free_capacity(2)), "4",
                 std::to_string(min_throughput_capacity(2, tau)),
                 std::to_string(analysis.pairs[0].capacity)});
  std::cout << table.to_string();
  std::cout << "\nTakeaway: sizing for the maximum quantum (3) deadlocks when"
               " the stream settles on 2 — the VRDF capacity covers both.\n";
  return 0;
}
