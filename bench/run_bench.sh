#!/bin/sh
# Runs the perf benchmark suite and writes machine-readable results to
# BENCH_PR1.json, seeding the perf trajectory across PRs.
#
# Usage: run_bench.sh [output-dir]
#   BENCH_BIN   path to the bench_perf binary (default: ./bench_perf)
#   BENCH_OUT   output file name (default: BENCH_PR1.json)
set -eu

out_dir="${1:-.}"
bin="${BENCH_BIN:-./bench_perf}"
out="${BENCH_OUT:-BENCH_PR1.json}"

if [ ! -x "$bin" ]; then
  echo "run_bench.sh: bench binary not found at $bin" >&2
  echo "build it first: cmake --build <build-dir> --target bench_perf" >&2
  exit 1
fi

"$bin" --benchmark_format=json --benchmark_out="$out_dir/$out" \
       --benchmark_out_format=json
echo "wrote $out_dir/$out"
