#!/bin/sh
# Runs the perf benchmark suite and writes machine-readable results to
# BENCH_PR<N>.json, seeding the perf trajectory across PRs.
#
# Usage: run_bench.sh [output-dir]
#   BENCH_BIN   path to the bench_perf binary (default: ./bench_perf)
#   BENCH_PR    PR number used in the default output name; when unset it
#               is derived from git as <last "PR <n>:" commit> + 1, i.e.
#               the number of the PR currently in development
#   BENCH_OUT   output file name (default: BENCH_PR${BENCH_PR}.json)
#
# The script refuses to guess: when BENCH_OUT is unset and neither
# BENCH_PR nor a "PR <n>:" commit subject determines the PR number, it
# exits non-zero instead of writing a misnamed JSON.
set -eu

out_dir="${1:-.}"
bin="${BENCH_BIN:-./bench_perf}"

if [ -z "${BENCH_OUT:-}" ] && [ -z "${BENCH_PR:-}" ]; then
  repo_root="$(cd "$(dirname "$0")/.." && pwd)"
  last_pr="$(git -C "$repo_root" log --pretty=%s 2>/dev/null |
             sed -n 's/^PR \([0-9][0-9]*\):.*/\1/p' | head -n 1 || true)"
  if [ -z "$last_pr" ]; then
    echo "run_bench.sh: cannot determine the output name: BENCH_PR is" >&2
    echo "unset and no 'PR <n>:' commit subject was found in the git" >&2
    echo "history of $repo_root." >&2
    echo "Set BENCH_PR=<n> or BENCH_OUT=<file> explicitly." >&2
    exit 1
  fi
  BENCH_PR=$(( last_pr + 1 ))
fi
out="${BENCH_OUT:-BENCH_PR${BENCH_PR}.json}"

if [ ! -x "$bin" ]; then
  echo "run_bench.sh: bench binary not found at $bin" >&2
  echo "build it first: cmake --build <build-dir> --target bench_perf" >&2
  exit 1
fi

"$bin" --benchmark_format=json --benchmark_out="$out_dir/$out" \
       --benchmark_out_format=json
echo "wrote $out_dir/$out"
