// E2 — Figures 3 and 4: linear bounds on token transfer times and the
// "just conservative" witness schedules.
//
// Prints the cumulative-transfer series of Fig 3 (a consumer alternating
// quanta 2 and 3 against its lower consumption bound α̌c and upper
// production bound α̂p) and the Fig 4 construction (producer witness with
// the bound distance of Eq (1)), then machine-checks conservativeness for
// several random sequences.
#include <iostream>
#include <random>

#include "analysis/buffer_sizing.hpp"
#include "analysis/linear_bounds.hpp"
#include "io/table.hpp"
#include "models/fig1.hpp"

namespace {

using namespace vrdf;

std::string ms(const TimePoint& t) {
  return std::to_string(t.seconds().to_double() * 1e3) + " ms";
}

}  // namespace

int main() {
  const Duration tau = milliseconds(Rational(3));
  const models::Fig1Vrdf model = models::make_fig1_vrdf(tau, tau, tau);
  const analysis::GraphAnalysis chain =
      analysis::compute_buffer_capacities(model.graph, model.constraint);
  const analysis::PairAnalysis& pair = chain.pairs[0];
  const analysis::PairBounds bounds =
      analysis::derive_pair_bounds(pair, TimePoint());

  std::cout << "E2 — Fig 3/4: linear bounds for the pair (va, vb), tau = 3 ms\n"
            << "  bound rate s           = "
            << pair.bound_rate.to_millis_double() << " ms/token\n"
            << "  Eq (1)  Delta_producer = "
            << pair.delta_producer.to_millis_double() << " ms\n"
            << "  Eq (2)  Delta_consumer = "
            << pair.delta_consumer.to_millis_double() << " ms\n"
            << "  Eq (3)  Delta_total    = "
            << pair.delta_total.to_millis_double() << " ms\n"
            << "  Eq (4)  raw tokens     = " << pair.raw_tokens.to_string()
            << "  -> capacity " << pair.capacity << "\n\n";

  // Fig 3: consumer consuming 2, 3, 2, 3, ... — each firing's transfer
  // time against the lower bound at its last token.
  std::cout << "Fig 3 series (consumer, quanta 2,3,2,3,...):\n";
  const std::vector<std::int64_t> fig3_quanta{2, 3, 2, 3, 2, 3};
  const auto fig3 = analysis::just_conservative_consumer_schedule(
      bounds.data_consumption_lower, fig3_quanta);
  io::Table fig3_table(
      {"firing", "quantum", "cumulative", "consumption time", "bound at token"});
  for (std::size_t i = 0; i < fig3.size(); ++i) {
    fig3_table.add_row(
        {std::to_string(i), std::to_string(fig3[i].count),
         std::to_string(fig3[i].cumulative), ms(fig3[i].time),
         ms(bounds.data_consumption_lower.at(fig3[i].cumulative))});
  }
  std::cout << fig3_table.to_string() << '\n';

  // Fig 4: producer witness producing 3 per firing; each firing's first
  // token sits exactly on the upper bound.
  std::cout << "Fig 4 series (producer witness, quantum 3):\n";
  const std::vector<std::int64_t> fig4_quanta{3, 3, 3, 3};
  const auto fig4 = analysis::just_conservative_producer_schedule(
      bounds.data_production_upper, fig4_quanta);
  io::Table fig4_table(
      {"firing", "tokens", "production time", "bound at first token"});
  for (std::size_t i = 0; i < fig4.size(); ++i) {
    const std::int64_t first = fig4[i].cumulative - fig4[i].count + 1;
    fig4_table.add_row({std::to_string(i),
                        std::to_string(first) + ".." +
                            std::to_string(fig4[i].cumulative),
                        ms(fig4[i].time),
                        ms(bounds.data_production_upper.at(first))});
  }
  std::cout << fig4_table.to_string() << '\n';

  // Machine check: conservativeness for random admissible sequences.
  std::mt19937_64 rng(2024);
  std::uniform_int_distribution<int> pick(0, 1);
  int checked = 0;
  bool all_ok = true;
  for (int round = 0; round < 1000; ++round) {
    std::vector<std::int64_t> quanta;
    for (int i = 0; i < 32; ++i) {
      quanta.push_back(pick(rng) == 0 ? 2 : 3);
    }
    const auto consumer = analysis::just_conservative_consumer_schedule(
        bounds.data_consumption_lower, quanta);
    const auto producer = analysis::just_conservative_producer_schedule(
        bounds.data_production_upper, std::vector<std::int64_t>(32, 3));
    all_ok = all_ok &&
             analysis::consumption_conservative(bounds.data_consumption_lower,
                                                consumer) &&
             analysis::production_conservative(bounds.data_production_upper,
                                               producer);
    ++checked;
  }
  std::cout << "conservativeness check over " << checked
            << " random sequences: " << (all_ok ? "OK" : "FAILED") << '\n';
  return all_ok ? 0 : 1;
}
