// Robustness-layer performance (PR 6).  Compiled into bench_perf (no own
// main) so the `bench` target's BENCH_PR<N>.json captures the series:
//  - BM_RobustnessMargins: per-actor margin + headroom search cost;
//  - BM_SimulatorFiringsFaulted: the hot loop with a fault plan attached,
//    for comparison with BM_SimulatorFirings (the guard on the unfaulted
//    path is a single branch, so the two must stay within noise of each
//    other when no plan is attached);
//  - BM_MonitoredVerify: the two-phase harness with the conformance
//    monitor recording every firing.
#include <benchmark/benchmark.h>

#include "analysis/buffer_sizing.hpp"
#include "analysis/robustness.hpp"
#include "models/synthetic.hpp"
#include "sim/fault_injection.hpp"
#include "sim/simulator.hpp"
#include "sim/verify.hpp"

namespace {

using namespace vrdf;

void BM_RobustnessMargins(benchmark::State& state) {
  models::RandomChainSpec spec;
  spec.seed = 7;
  spec.length = static_cast<std::size_t>(state.range(0));
  const models::SyntheticChain chain = models::make_random_chain(spec);
  for (auto _ : state) {
    const analysis::RobustnessReport report =
        analysis::robustness_margins(chain.graph, chain.constraint);
    benchmark::DoNotOptimize(report.ok);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RobustnessMargins)->RangeMultiplier(2)->Range(2, 16);

void BM_SimulatorFiringsFaulted(benchmark::State& state) {
  // The BM_SimulatorFirings fixture with a bursty-jitter plan on both
  // actors: every start draws a hashed perturbation, the worst case for
  // the fault branch in the scheduler.
  dataflow::VrdfGraph g;
  const auto a = g.add_actor("a", milliseconds(Rational(1)));
  const auto b = g.add_actor("b", milliseconds(Rational(1)));
  (void)g.add_buffer(a, b, dataflow::RateSet::singleton(3),
                     dataflow::RateSet::of({2, 3}), 11);
  sim::FaultPlan plan(9);
  plan.bursty_jitter(a, microseconds(Rational(50)), 1, 1);
  plan.bursty_jitter(b, microseconds(Rational(50)), 1, 1);
  std::int64_t fired = 0;
  for (auto _ : state) {
    sim::Simulator sim(g);
    sim.set_default_sources(42);
    plan.apply(sim);
    sim::StopCondition stop;
    stop.firing_target = sim::StopCondition::FiringTarget{b, 10000};
    const sim::RunResult result = sim.run(stop);
    fired += result.total_firings;
    benchmark::DoNotOptimize(result.end_time);
  }
  state.SetItemsProcessed(fired);
}
BENCHMARK(BM_SimulatorFiringsFaulted);

void BM_MonitoredVerify(benchmark::State& state) {
  models::InteriorPinnedPipeline app = models::make_interior_pinned_pipeline();
  const analysis::GraphAnalysis sized =
      analysis::compute_buffer_capacities(app.graph, app.constraint);
  analysis::apply_capacities(app.graph, sized);
  sim::VerifyOptions options;
  options.observe_firings = 100;
  options.monitor = true;
  for (auto _ : state) {
    const sim::VerifyResult verdict =
        sim::verify_throughput(app.graph, app.constraint, {}, options);
    benchmark::DoNotOptimize(verdict.ok);
  }
}
BENCHMARK(BM_MonitoredVerify);

}  // namespace
