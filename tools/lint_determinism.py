#!/usr/bin/env python3
"""Determinism and independence lint for the vrdf sources.

The fleet report's canonical serialization is bit-identical across
thread counts and across interrupt+resume (see src/sim/fleet.hpp), and
the certificate checker's value rests on sharing no code with the
analyzer (see src/analysis/checker.hpp).  Both properties are easy to
break with one innocuous-looking edit, so this linter rejects the
known footguns:

  R1  Unordered containers in canonical-serialization files.
      Iteration order of std::unordered_{map,set} is
      implementation-defined; a canonical byte stream must never be
      assembled from one.  Files on the canonical path may not mention
      unordered containers at all unless the line carries an explicit
      `// det-lint: ok(<reason>)` annotation.

  R2  Ambient nondeterminism anywhere in src/.
      std::rand / srand / std::random_device draw from process-global
      or OS entropy; time(...) seeding ties results to the wall clock.
      All randomness must come from util/seed_stream.hpp's splitmix64
      streams, derived statelessly from (base_seed, item index).

  R3  Float formatting in canonical-serialization files.
      to_double / setprecision / printf-style %f/%g/%e render
      locale- and platform-sensitive bytes; canonical text carries
      exact Rational strings only.  Wall-clock summaries (explicitly
      excluded from canonical_text) live outside these files.

  R4  Checker independence.
      src/analysis/checker.cpp must not include the analyzer it
      validates: analysis/pacing.hpp, analysis/buffer_sizing.hpp,
      analysis/sizing_core.hpp, analysis/incremental.hpp,
      analysis/period.hpp.  A checker that leans on the code under
      test certifies nothing.

Exit status: 0 clean, 1 violations (listed one per line), 2 usage.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Files whose output participates in a canonical (bit-stable) byte
# stream: the fleet report/codec, the deployment frontier report, the
# resumable journal, and the graph text format.
CANONICAL_FILES = (
    "src/sim/fleet.cpp",
    "src/sim/fleet.hpp",
    "src/sim/deployment_frontier.cpp",
    "src/sim/deployment_frontier.hpp",
    "src/io/fleet_journal.cpp",
    "src/io/fleet_journal.hpp",
    "src/io/text_format.cpp",
    "src/io/text_format.hpp",
)

ANNOTATION = re.compile(r"//\s*det-lint:\s*ok\([^)]+\)")

UNORDERED = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")
AMBIENT = re.compile(
    r"std::rand\b|\bsrand\s*\(|std::random_device\b"
    r"|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"
)
FLOAT_FORMAT = re.compile(
    r"\bto_double\s*\(|\bsetprecision\s*\(|%[-+ #0-9.*]*[fFeEgG]\b"
)

CHECKER_FILE = "src/analysis/checker.cpp"
ANALYZER_HEADERS = (
    "analysis/pacing.hpp",
    "analysis/buffer_sizing.hpp",
    "analysis/sizing_core.hpp",
    "analysis/incremental.hpp",
    "analysis/period.hpp",
)


def strip_line_comment(line: str) -> str:
    """Code part of a line (before //), so commented mentions don't trip."""
    pos = line.find("//")
    return line if pos < 0 else line[:pos]


def lint_file(root: Path, rel: str, violations: list[str]) -> None:
    path = root / rel
    if not path.is_file():
        return
    canonical = rel in CANONICAL_FILES
    for number, raw in enumerate(path.read_text().splitlines(), start=1):
        annotated = ANNOTATION.search(raw) is not None
        code = strip_line_comment(raw)

        if canonical and UNORDERED.search(code) and not annotated:
            violations.append(
                f"{rel}:{number}: R1 unordered container in a "
                f"canonical-serialization file (iteration order is not "
                f"deterministic); annotate `// det-lint: ok(<reason>)` "
                f"only if it provably never feeds the byte stream"
            )
        if AMBIENT.search(code) and not annotated:
            violations.append(
                f"{rel}:{number}: R2 ambient nondeterminism (rand/"
                f"random_device/wall-clock seed); derive streams via "
                f"util/seed_stream.hpp instead"
            )
        if canonical and FLOAT_FORMAT.search(code) and not annotated:
            violations.append(
                f"{rel}:{number}: R3 float formatting in a "
                f"canonical-serialization file; canonical text carries "
                f"exact Rational strings only"
            )
        if rel == CHECKER_FILE:
            for header in ANALYZER_HEADERS:
                if re.search(
                    rf'#\s*include\s*"{re.escape(header)}"', code
                ):
                    violations.append(
                        f"{rel}:{number}: R4 checker includes the "
                        f"analyzer it validates ({header}); the "
                        f"certificate checker must stay independent"
                    )


def main(argv: list[str]) -> int:
    if len(argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    root = Path(argv[1]) if len(argv) == 2 else Path(__file__).parent.parent
    src = root / "src"
    if not src.is_dir():
        print(f"lint_determinism: no src/ under {root}", file=sys.stderr)
        return 2

    violations: list[str] = []
    for path in sorted(src.rglob("*")):
        if path.suffix in (".cpp", ".hpp"):
            lint_file(root, str(path.relative_to(root)), violations)

    if violations:
        for violation in violations:
            print(violation)
        print(f"lint_determinism: {len(violations)} violation(s)")
        return 1
    print("lint_determinism: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
