// Tests for the TDM platform layer, token-residency statistics, and trace
// export (CSV + VCD).
#include <gtest/gtest.h>

#include "analysis/buffer_sizing.hpp"
#include "io/trace.hpp"
#include "models/fig1.hpp"
#include "sched/platform.hpp"
#include "sim/stats.hpp"
#include "sim/verify.hpp"
#include "util/error.hpp"

namespace vrdf {
namespace {

using dataflow::RateSet;

TEST(Platform, BindingAndResponseTimes) {
  sched::Platform platform;
  const std::size_t p0 =
      platform.add_processor("dsp0", milliseconds(Rational(4)));
  platform.bind_task("decode", p0, milliseconds(Rational(1)),
                     milliseconds(Rational(2)));
  // κ = ceil(2/1)·(4−1) + 2 = 8 ms.
  EXPECT_EQ(platform.response_time("decode"), milliseconds(Rational(8)));
  EXPECT_EQ(platform.utilization(p0), Rational(1, 4));
  EXPECT_EQ(platform.slack(p0), milliseconds(Rational(3)));
}

TEST(Platform, RejectsOversubscription) {
  sched::Platform platform;
  const std::size_t p0 =
      platform.add_processor("dsp0", milliseconds(Rational(4)));
  platform.bind_task("t1", p0, milliseconds(Rational(3)),
                     milliseconds(Rational(1)));
  EXPECT_THROW(platform.bind_task("t2", p0, milliseconds(Rational(2)),
                                  milliseconds(Rational(1))),
               ContractError);
  // Exactly filling the wheel is fine.
  platform.bind_task("t3", p0, milliseconds(Rational(1)),
                     milliseconds(Rational(1)));
  EXPECT_EQ(platform.utilization(p0), Rational(1));
}

TEST(Platform, RejectsDuplicateBindingsAndUnknownLookups) {
  sched::Platform platform;
  const std::size_t p0 =
      platform.add_processor("dsp0", milliseconds(Rational(4)));
  platform.bind_task("t", p0, milliseconds(Rational(1)),
                     milliseconds(Rational(1)));
  EXPECT_THROW(platform.bind_task("t", p0, milliseconds(Rational(1)),
                                  milliseconds(Rational(1))),
               ContractError);
  EXPECT_THROW((void)platform.response_time("nope"), ContractError);
  EXPECT_THROW((void)platform.add_processor("dsp0", milliseconds(Rational(1))),
               ContractError);
}

TEST(Platform, DrivesChainAdmissibility) {
  // Two tasks on one processor: generous slots keep the chain admissible,
  // starving a task's slot breaks it.
  const auto build_and_check = [](Duration slot_a, Duration slot_b) {
    sched::Platform platform;
    const std::size_t dsp =
        platform.add_processor("dsp", milliseconds(Rational(2)));
    platform.bind_task("wa", dsp, slot_a, milliseconds(Rational(1)));
    platform.bind_task("wb", dsp, slot_b, milliseconds(Rational(1)));
    const models::Fig1Vrdf model = models::make_fig1_vrdf(
        milliseconds(Rational(8)), platform.response_time("wa"),
        platform.response_time("wb"));
    return analysis::compute_buffer_capacities(model.graph, model.constraint)
        .admissible;
  };
  EXPECT_TRUE(build_and_check(milliseconds(Rational(1)),
                              milliseconds(Rational(1))));
  // A tiny slot blows up κ(wa) beyond φ(wa) = 8 ms:
  // ceil(1/(1/5))·(2−1/5)+1 = 10 ms.
  EXPECT_FALSE(build_and_check(milliseconds(Rational(1, 5)),
                               milliseconds(Rational(1))));
}

TEST(Platform, FullDesignFlowOnMp3) {
  // The complete deployment story: WCETs and TDM slots produce the kappa
  // values; the analysis then accepts the mapping iff every kappa fits its
  // pacing budget (51.2 / 24 / 10 ms, 1/44100 s).
  sched::Platform platform;
  const std::size_t io_proc =
      platform.add_processor("io", milliseconds(Rational(10)));
  const std::size_t dsp =
      platform.add_processor("dsp", milliseconds(Rational(2)));
  // vBR: C = 10 ms, 2 ms slot of a 10 ms wheel:
  //   kappa = ceil(5)*8 + 10 = 50 ms <= 51.2 ms.
  platform.bind_task("vBR", io_proc, milliseconds(Rational(2)),
                     milliseconds(Rational(10)));
  // vMP3: C = 6 ms, 1 ms slot of a 2 ms wheel: kappa = 6*1 + 6 = 12 <= 24.
  platform.bind_task("vMP3", dsp, milliseconds(Rational(1)),
                     milliseconds(Rational(6)));
  // vSRC: C = 2 ms, 1/2 ms slot: kappa = 4*(3/2) + 2 = 8 ms <= 10 ms.
  platform.bind_task("vSRC", dsp, milliseconds(Rational(1, 2)),
                     milliseconds(Rational(2)));
  // vDAC is dedicated hardware: kappa = 1/44100 s (no arbitration).

  dataflow::VrdfGraph graph;
  const auto br = graph.add_actor("vBR", platform.response_time("vBR"));
  const auto mp3 = graph.add_actor("vMP3", platform.response_time("vMP3"));
  const auto src = graph.add_actor("vSRC", platform.response_time("vSRC"));
  const auto dac = graph.add_actor("vDAC", period_of_hz(Rational(44100)));
  (void)graph.add_buffer(br, mp3, RateSet::singleton(2048),
                         RateSet::interval(0, 960));
  (void)graph.add_buffer(mp3, src, RateSet::singleton(1152),
                         RateSet::singleton(480));
  (void)graph.add_buffer(src, dac, RateSet::singleton(441),
                         RateSet::singleton(1));
  const analysis::ThroughputConstraint constraint{
      dac, period_of_hz(Rational(44100))};
  const analysis::GraphAnalysis sized =
      analysis::compute_buffer_capacities(graph, constraint);
  ASSERT_TRUE(sized.admissible);
  // Smaller kappas than the paper's maxima shrink the capacities.
  EXPECT_LT(sized.pairs[0].capacity, 6015);
  EXPECT_LT(sized.pairs[1].capacity, 3263);
  EXPECT_LE(sized.pairs[2].capacity, 882);

  // Oversubscribing vSRC's slot breaks admissibility through kappa alone:
  // 1/8 ms slot -> kappa = 16*(15/8) + 2 = 32 ms > 10 ms.
  sched::Platform bad;
  const std::size_t dsp2 = bad.add_processor("dsp", milliseconds(Rational(2)));
  bad.bind_task("vSRC", dsp2, milliseconds(Rational(1, 8)),
                milliseconds(Rational(2)));
  dataflow::VrdfGraph slow;
  const auto br2 = slow.add_actor("vBR", milliseconds(Rational(512, 10)));
  const auto mp32 = slow.add_actor("vMP3", milliseconds(Rational(24)));
  const auto src2 = slow.add_actor("vSRC", bad.response_time("vSRC"));
  const auto dac2 = slow.add_actor("vDAC", period_of_hz(Rational(44100)));
  (void)slow.add_buffer(br2, mp32, RateSet::singleton(2048),
                        RateSet::interval(0, 960));
  (void)slow.add_buffer(mp32, src2, RateSet::singleton(1152),
                        RateSet::singleton(480));
  (void)slow.add_buffer(src2, dac2, RateSet::singleton(441),
                        RateSet::singleton(1));
  EXPECT_FALSE(analysis::compute_buffer_capacities(
                   slow, analysis::ThroughputConstraint{
                             dac2, period_of_hz(Rational(44100))})
                   .admissible);
}

struct TracedRun {
  dataflow::VrdfGraph graph;
  dataflow::ActorId a;
  dataflow::ActorId b;
  dataflow::BufferEdges buffer;
  std::unique_ptr<sim::Simulator> sim;
};

TracedRun traced_run() {
  TracedRun run;
  run.a = run.graph.add_actor("a", milliseconds(Rational(1)));
  run.b = run.graph.add_actor("b", milliseconds(Rational(2)));
  run.buffer = run.graph.add_buffer(run.a, run.b, RateSet::singleton(2),
                                    RateSet::singleton(2), 6);
  run.sim = std::make_unique<sim::Simulator>(run.graph);
  run.sim->set_default_sources(1);
  run.sim->record_firings(run.a);
  run.sim->record_firings(run.b);
  run.sim->record_transfers(run.buffer.data);
  run.sim->record_transfers(run.buffer.space);
  sim::StopCondition stop;
  stop.firing_target = sim::StopCondition::FiringTarget{run.b, 20};
  (void)run.sim->run(stop);
  return run;
}

TEST(Stats, ResidencyIsPositiveAndBounded) {
  const TracedRun run = traced_run();
  const auto stats =
      sim::token_residency(*run.sim, run.graph, run.buffer.data);
  ASSERT_TRUE(stats.has_value());
  EXPECT_GT(stats->tokens, 0);
  EXPECT_GE(stats->min_residency, Duration());
  EXPECT_GE(stats->max_residency, stats->min_residency);
  EXPECT_GE(stats->mean_seconds, stats->min_residency.seconds());
  EXPECT_LE(stats->mean_seconds, stats->max_residency.seconds());
}

TEST(Stats, ResidencyCountsInitialTokensFromTimeZero) {
  // Space edge: the first 6 tokens are initial; their residency equals the
  // consumer... producer's first consumption time.
  const TracedRun run = traced_run();
  const auto stats =
      sim::token_residency(*run.sim, run.graph, run.buffer.space);
  ASSERT_TRUE(stats.has_value());
  // Producer consumes 2 space tokens at t = 0: zero residency observed.
  EXPECT_EQ(stats->min_residency, Duration());
}

TEST(Stats, NulloptWithoutConsumptions) {
  dataflow::VrdfGraph g;
  const auto a = g.add_actor("a", milliseconds(Rational(1)));
  const auto b = g.add_actor("b", milliseconds(Rational(1)));
  const auto buf =
      g.add_buffer(a, b, RateSet::singleton(3), RateSet::singleton(3), 1);
  sim::Simulator s(g);
  s.set_default_sources(1);
  s.record_transfers(buf.data);
  sim::StopCondition stop;
  stop.until_time = TimePoint(Rational(1));
  (void)s.run(stop);  // deadlocks immediately
  EXPECT_FALSE(sim::token_residency(s, g, buf.data).has_value());
}

TEST(Stats, PeakOccupancyNeverExceedsCapacity) {
  const TracedRun run = traced_run();
  const std::int64_t peak =
      sim::peak_occupancy(*run.sim, run.graph, run.buffer.data);
  EXPECT_GT(peak, 0);
  EXPECT_LE(peak, 6);  // capacity
  EXPECT_EQ(peak, run.sim->edge_metrics(run.buffer.data).max_tokens);
}

TEST(Trace, FiringsCsvShape) {
  const TracedRun run = traced_run();
  const std::string csv =
      io::firings_to_csv(*run.sim, run.graph, {run.a, run.b});
  EXPECT_EQ(csv.rfind("actor,firing,start_s,finish_s\n", 0), 0u);
  EXPECT_NE(csv.find("\na,0,0,1/1000\n"), std::string::npos);
  // One line per recorded firing plus the header.
  const auto lines = static_cast<std::size_t>(
      std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, 1 + run.sim->firings(run.a).size() +
                       run.sim->firings(run.b).size());
}

TEST(Trace, OccupancyCsvTracksTokens) {
  const TracedRun run = traced_run();
  const std::string csv =
      io::occupancy_to_csv(*run.sim, run.graph, {run.buffer.data});
  EXPECT_EQ(csv.rfind("time_s,edge,tokens\n", 0), 0u);
  EXPECT_NE(csv.find("0,a->b,0\n"), std::string::npos);  // starts empty
  EXPECT_NE(csv.find(",a->b,2"), std::string::npos);     // fills to 2
}

TEST(Trace, VcdIsWellFormed) {
  const TracedRun run = traced_run();
  const std::string vcd = io::occupancy_to_vcd(
      *run.sim, run.graph, {run.buffer.data, run.buffer.space});
  EXPECT_NE(vcd.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var integer 64 ! a_to_b $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var integer 64 \" a_to_b_space $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(vcd.find("#0\n"), std::string::npos);
  // Timestamps are non-decreasing.
  std::int64_t last = -1;
  std::istringstream is(vcd);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] == '#') {
      const std::int64_t t = std::stoll(line.substr(1));
      EXPECT_GE(t, last);
      last = t;
    }
  }
  EXPECT_GE(last, 0);
}

TEST(Trace, VcdRejectsBadInputs) {
  const TracedRun run = traced_run();
  EXPECT_THROW((void)io::occupancy_to_vcd(*run.sim, run.graph, {}),
               ContractError);
}

}  // namespace
}  // namespace vrdf
