// Unit tests for exact rational arithmetic — the numeric foundation every
// capacity number rests on.
#include <gtest/gtest.h>

#include <random>

#include "util/error.hpp"
#include "util/rational.hpp"

namespace vrdf {
namespace {

using rational_literals::operator""_r;

TEST(Rational, DefaultIsZero) {
  const Rational r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, NormalizesOnConstruction) {
  const Rational r(6, 8);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
}

TEST(Rational, NormalizesNegativeDenominator) {
  const Rational r(3, -9);
  EXPECT_EQ(r.num(), -1);
  EXPECT_EQ(r.den(), 3);
  EXPECT_TRUE(r.is_negative());
}

TEST(Rational, ZeroNumeratorCollapsesDenominator) {
  const Rational r(0, -7);
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, RejectsZeroDenominator) {
  EXPECT_THROW((void)Rational(1, 0), ContractError);
}

TEST(Rational, EqualityIsStructuralAfterNormalization) {
  EXPECT_EQ(Rational(1, 2), Rational(2, 4));
  EXPECT_EQ(Rational(-1, 2), Rational(1, -2));
  EXPECT_NE(Rational(1, 2), Rational(1, 3));
}

TEST(Rational, Ordering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_GT(Rational(7, 2), Rational(10, 3));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
}

TEST(Rational, AdditionAndSubtraction) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 2), Rational(0));
  EXPECT_EQ(Rational(-1, 4) + Rational(1, 4), Rational(0));
}

TEST(Rational, MultiplicationAndDivision) {
  EXPECT_EQ(Rational(2, 3) * Rational(9, 4), Rational(3, 2));
  EXPECT_EQ(Rational(2, 3) / Rational(4, 3), Rational(1, 2));
  EXPECT_EQ(Rational(5) * Rational(0), Rational(0));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW((void)(Rational(1) / Rational(0)), ContractError);
  EXPECT_THROW((void)Rational(0).reciprocal(), ContractError);
}

TEST(Rational, FloorCeilTrunc) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(7, 2).trunc(), 3);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(-7, 2).trunc(), -3);
  EXPECT_EQ(Rational(6).floor(), 6);
  EXPECT_EQ(Rational(6).ceil(), 6);
}

TEST(Rational, IsIntegerDetection) {
  EXPECT_TRUE(Rational(8, 4).is_integer());
  EXPECT_FALSE(Rational(8, 3).is_integer());
}

TEST(Rational, ReciprocalAndAbs) {
  EXPECT_EQ(Rational(3, 4).reciprocal(), Rational(4, 3));
  EXPECT_EQ(Rational(-3, 4).reciprocal(), Rational(-4, 3));
  EXPECT_EQ(Rational(-3, 4).abs(), Rational(3, 4));
  EXPECT_EQ(Rational(3, 4).abs(), Rational(3, 4));
}

TEST(Rational, ToStringFormats) {
  EXPECT_EQ(Rational(5).to_string(), "5");
  EXPECT_EQ(Rational(-5, 3).to_string(), "-5/3");
  EXPECT_EQ(Rational(0).to_string(), "0");
}

TEST(Rational, FromStringInteger) {
  EXPECT_EQ(Rational::from_string("42"), Rational(42));
  EXPECT_EQ(Rational::from_string("-17"), Rational(-17));
}

TEST(Rational, FromStringFraction) {
  EXPECT_EQ(Rational::from_string("22/7"), Rational(22, 7));
  EXPECT_EQ(Rational::from_string("-6/8"), Rational(-3, 4));
}

TEST(Rational, FromStringDecimal) {
  EXPECT_EQ(Rational::from_string("51.2"), Rational(512, 10));
  EXPECT_EQ(Rational::from_string("0.0227"), Rational(227, 10000));
  EXPECT_EQ(Rational::from_string("-1.5"), Rational(-3, 2));
}

TEST(Rational, FromStringRejectsGarbage) {
  EXPECT_THROW((void)Rational::from_string(""), ContractError);
  EXPECT_THROW((void)Rational::from_string("abc"), ContractError);
  EXPECT_THROW((void)Rational::from_string("1.2.3"), ContractError);
  EXPECT_THROW((void)Rational::from_string("1.x"), ContractError);
}

TEST(Rational, OverflowDetectedInAddition) {
  const Rational big(std::numeric_limits<std::int64_t>::max() / 2, 1);
  EXPECT_THROW((void)(big + big + big), OverflowError);
}

TEST(Rational, OverflowDetectedInMultiplication) {
  const Rational big(std::numeric_limits<std::int64_t>::max() / 2, 1);
  EXPECT_THROW((void)(big * big), OverflowError);
}

TEST(Rational, LargeIntermediatesThatCancelDoNotOverflow) {
  // (a/b) * (b/a) = 1 even when a*b would overflow int64 only after
  // normalization — 128-bit intermediates must absorb it.
  const std::int64_t a = 3'037'000'499;  // ~sqrt(INT64_MAX)
  const Rational r(a, a - 2);
  EXPECT_EQ(r * r.reciprocal(), Rational(1));
}

TEST(Rational, MinMaxHelpers) {
  EXPECT_EQ(min(Rational(1, 3), Rational(1, 2)), Rational(1, 3));
  EXPECT_EQ(max(Rational(1, 3), Rational(1, 2)), Rational(1, 2));
}

TEST(Rational, UserLiteral) {
  EXPECT_EQ(3_r, Rational(3));
}

// Property sweep: field axioms on random small rationals (exact, so the
// identities must hold bit-for-bit).
class RationalAxioms : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RationalAxioms, FieldIdentitiesHoldExactly) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<std::int64_t> num(-1000, 1000);
  std::uniform_int_distribution<std::int64_t> den(1, 1000);
  for (int i = 0; i < 200; ++i) {
    const Rational a(num(rng), den(rng));
    const Rational b(num(rng), den(rng));
    const Rational c(num(rng), den(rng));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ((a + b) - b, a);
    if (!b.is_zero()) {
      EXPECT_EQ((a / b) * b, a);
    }
    EXPECT_EQ(a + Rational(0), a);
    EXPECT_EQ(a * Rational(1), a);
    EXPECT_EQ(a - a, Rational(0));
    // floor/ceil consistency.
    EXPECT_LE(Rational(a.floor()), a);
    EXPECT_GE(Rational(a.ceil()), a);
    EXPECT_LE(a.ceil() - a.floor(), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalAxioms,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace vrdf
