// Unit tests for exact rational arithmetic — the numeric foundation every
// capacity number rests on.
#include <gtest/gtest.h>

#include <random>

#include "util/error.hpp"
#include "util/rational.hpp"

namespace vrdf {
namespace {

using rational_literals::operator""_r;

TEST(Rational, DefaultIsZero) {
  const Rational r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, NormalizesOnConstruction) {
  const Rational r(6, 8);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
}

TEST(Rational, NormalizesNegativeDenominator) {
  const Rational r(3, -9);
  EXPECT_EQ(r.num(), -1);
  EXPECT_EQ(r.den(), 3);
  EXPECT_TRUE(r.is_negative());
}

TEST(Rational, ZeroNumeratorCollapsesDenominator) {
  const Rational r(0, -7);
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, RejectsZeroDenominator) {
  EXPECT_THROW((void)Rational(1, 0), ContractError);
}

TEST(Rational, EqualityIsStructuralAfterNormalization) {
  EXPECT_EQ(Rational(1, 2), Rational(2, 4));
  EXPECT_EQ(Rational(-1, 2), Rational(1, -2));
  EXPECT_NE(Rational(1, 2), Rational(1, 3));
}

TEST(Rational, Ordering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_GT(Rational(7, 2), Rational(10, 3));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
}

TEST(Rational, AdditionAndSubtraction) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 2), Rational(0));
  EXPECT_EQ(Rational(-1, 4) + Rational(1, 4), Rational(0));
}

TEST(Rational, MultiplicationAndDivision) {
  EXPECT_EQ(Rational(2, 3) * Rational(9, 4), Rational(3, 2));
  EXPECT_EQ(Rational(2, 3) / Rational(4, 3), Rational(1, 2));
  EXPECT_EQ(Rational(5) * Rational(0), Rational(0));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW((void)(Rational(1) / Rational(0)), ContractError);
  EXPECT_THROW((void)Rational(0).reciprocal(), ContractError);
}

TEST(Rational, FloorCeilTrunc) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(7, 2).trunc(), 3);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(-7, 2).trunc(), -3);
  EXPECT_EQ(Rational(6).floor(), 6);
  EXPECT_EQ(Rational(6).ceil(), 6);
}

TEST(Rational, IsIntegerDetection) {
  EXPECT_TRUE(Rational(8, 4).is_integer());
  EXPECT_FALSE(Rational(8, 3).is_integer());
}

TEST(Rational, ReciprocalAndAbs) {
  EXPECT_EQ(Rational(3, 4).reciprocal(), Rational(4, 3));
  EXPECT_EQ(Rational(-3, 4).reciprocal(), Rational(-4, 3));
  EXPECT_EQ(Rational(-3, 4).abs(), Rational(3, 4));
  EXPECT_EQ(Rational(3, 4).abs(), Rational(3, 4));
}

TEST(Rational, ToStringFormats) {
  EXPECT_EQ(Rational(5).to_string(), "5");
  EXPECT_EQ(Rational(-5, 3).to_string(), "-5/3");
  EXPECT_EQ(Rational(0).to_string(), "0");
}

TEST(Rational, FromStringInteger) {
  EXPECT_EQ(Rational::from_string("42"), Rational(42));
  EXPECT_EQ(Rational::from_string("-17"), Rational(-17));
}

TEST(Rational, FromStringFraction) {
  EXPECT_EQ(Rational::from_string("22/7"), Rational(22, 7));
  EXPECT_EQ(Rational::from_string("-6/8"), Rational(-3, 4));
}

TEST(Rational, FromStringDecimal) {
  EXPECT_EQ(Rational::from_string("51.2"), Rational(512, 10));
  EXPECT_EQ(Rational::from_string("0.0227"), Rational(227, 10000));
  EXPECT_EQ(Rational::from_string("-1.5"), Rational(-3, 2));
}

TEST(Rational, FromStringRejectsGarbage) {
  EXPECT_THROW((void)Rational::from_string(""), ContractError);
  EXPECT_THROW((void)Rational::from_string("abc"), ContractError);
  EXPECT_THROW((void)Rational::from_string("1.2.3"), ContractError);
  EXPECT_THROW((void)Rational::from_string("1.x"), ContractError);
}

TEST(Rational, FromStringRejectsTrailingGarbagePerComponent) {
  // std::stoll stops at the first non-digit, so these used to parse
  // *silently wrong*: "3/4x" as 3/4, "1e3" as 1, "3/4/5" as 3/4.  Every
  // component must now consume its whole substring.
  EXPECT_THROW((void)Rational::from_string("3/4x"), ContractError);
  EXPECT_THROW((void)Rational::from_string("1e3"), ContractError);
  EXPECT_THROW((void)Rational::from_string("3/4/5"), ContractError);
  EXPECT_THROW((void)Rational::from_string("3x/4"), ContractError);
  EXPECT_THROW((void)Rational::from_string("1 2"), ContractError);
  EXPECT_THROW((void)Rational::from_string("12 "), ContractError);
  EXPECT_THROW((void)Rational::from_string("1.5e3"), ContractError);
  EXPECT_THROW((void)Rational::from_string("1x.5"), ContractError);
  EXPECT_THROW((void)Rational::from_string("3/"), ContractError);
  EXPECT_THROW((void)Rational::from_string("/4"), ContractError);
  EXPECT_THROW((void)Rational::from_string("--3"), ContractError);
}

TEST(Rational, FromStringSignAndComponentForms) {
  // Slash, decimal, integer and sign-only-whole forms still parse.
  EXPECT_EQ(Rational::from_string("+3/4"), Rational(3, 4));
  EXPECT_EQ(Rational::from_string("3/-4"), Rational(-3, 4));
  EXPECT_EQ(Rational::from_string(".5"), Rational(1, 2));
  EXPECT_EQ(Rational::from_string("-.5"), Rational(-1, 2));
  EXPECT_EQ(Rational::from_string("+.5"), Rational(1, 2));
  EXPECT_EQ(Rational::from_string("+7"), Rational(7));
  EXPECT_THROW((void)Rational::from_string("-"), ContractError);
  EXPECT_THROW((void)Rational::from_string("+"), ContractError);
  EXPECT_THROW((void)Rational::from_string("."), ContractError);
}

TEST(Rational, OverflowDetectedInAddition) {
  const Rational big(std::numeric_limits<std::int64_t>::max() / 2, 1);
  EXPECT_THROW((void)(big + big + big), OverflowError);
}

TEST(Rational, OverflowDetectedInMultiplication) {
  const Rational big(std::numeric_limits<std::int64_t>::max() / 2, 1);
  EXPECT_THROW((void)(big * big), OverflowError);
}

TEST(Rational, LargeIntermediatesThatCancelDoNotOverflow) {
  // (a/b) * (b/a) = 1 even when a*b would overflow int64 only after
  // normalization — 128-bit intermediates must absorb it.
  const std::int64_t a = 3'037'000'499;  // ~sqrt(INT64_MAX)
  const Rational r(a, a - 2);
  EXPECT_EQ(r * r.reciprocal(), Rational(1));
}

TEST(Rational, EqualDenominatorFastPathStaysNormalized) {
  // Equal denominators take the no-cross-multiply fast path; the result
  // must still be fully reduced.
  EXPECT_EQ(Rational(1, 6) + Rational(1, 6), Rational(1, 3));
  EXPECT_EQ(Rational(5, 8) - Rational(1, 8), Rational(1, 2));
  EXPECT_EQ(Rational(1, 4) + Rational(-1, 4), Rational(0));
  EXPECT_EQ(Rational(7) + Rational(-3), Rational(4));
  EXPECT_EQ(Rational(-5, 12) - Rational(7, 12), Rational(-1));
}

TEST(Rational, EqualDenominatorOverflowFallsToGeneralPath) {
  // The raw numerator sum 2·(3k−1) overflows int64, but 3k−1 with k = 2^61
  // is divisible by 5, so the normalized sum 2·(3k−1)/5 fits: the fast
  // path must hand over to the 128-bit path instead of wrapping.
  const std::int64_t k = std::int64_t{1} << 61;
  const Rational big(3 * k - 1, 5);
  EXPECT_EQ(big + big, Rational(2 * ((3 * k - 1) / 5)));
  // A sum whose normalized value does not fit must still throw.
  const Rational seven_k(7 * (k / 2) + 1, 5);
  EXPECT_THROW((void)(seven_k + seven_k), OverflowError);
  // And cancellation back into range must succeed exactly.
  const Rational half_max(std::numeric_limits<std::int64_t>::max() / 2, 7);
  EXPECT_EQ(half_max - half_max, Rational(0));
}

TEST(Rational, IntegerOperandMultiplicationFastPath) {
  // Integer operands cross-reduce against the other side's denominator.
  EXPECT_EQ(Rational(5, 6) * Rational(4), Rational(10, 3));
  EXPECT_EQ(Rational(4) * Rational(5, 6), Rational(10, 3));
  EXPECT_EQ(Rational(-9) * Rational(2, 3), Rational(-6));
  EXPECT_EQ(Rational(5, 6) / Rational(10), Rational(1, 12));
  EXPECT_EQ(Rational(10) / Rational(5, 6), Rational(12));
  EXPECT_EQ(Rational(7, 4) / Rational(-7), Rational(-1, 4));
  // Cross-reduction keeps in-range products exact even when the naive
  // num*num product would overflow.
  const std::int64_t a = 3'037'000'499;  // ~sqrt(INT64_MAX)
  EXPECT_EQ(Rational(a, 3) * Rational(6, a), Rational(2));
  EXPECT_EQ(Rational(a, 3) / Rational(a, 6), Rational(2));
}

// Differential check: the fast paths must agree bit-for-bit with the
// reference 128-bit normalize-after-the-fact implementation.
namespace reference {
__extension__ typedef __int128 Int128;

Int128 gcd128(Int128 a, Int128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const Int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

Rational normalized(Int128 n, Int128 d) {
  if (d < 0) {
    n = -n;
    d = -d;
  }
  const Int128 g = n == 0 ? d : gcd128(n, d);
  return Rational(static_cast<std::int64_t>(n / g),
                  static_cast<std::int64_t>(d / g));
}
}  // namespace reference

TEST(Rational, FastPathsMatchReferenceArithmetic) {
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<std::int64_t> num(-100000, 100000);
  std::uniform_int_distribution<std::int64_t> den(1, 100000);
  std::uniform_int_distribution<int> pick(0, 3);
  for (int i = 0; i < 5000; ++i) {
    // Bias towards the fast-path shapes: equal denominators and integers.
    std::int64_t db = den(rng);
    const std::int64_t da = pick(rng) == 0 ? db : den(rng);
    if (pick(rng) == 1) {
      db = 1;
    }
    const Rational a(num(rng), da);
    const Rational b(num(rng), db);
    using reference::Int128;
    EXPECT_EQ(a + b, reference::normalized(
                         static_cast<Int128>(a.num()) * b.den() +
                             static_cast<Int128>(b.num()) * a.den(),
                         static_cast<Int128>(a.den()) * b.den()));
    EXPECT_EQ(a - b, reference::normalized(
                         static_cast<Int128>(a.num()) * b.den() -
                             static_cast<Int128>(b.num()) * a.den(),
                         static_cast<Int128>(a.den()) * b.den()));
    EXPECT_EQ(a * b, reference::normalized(
                         static_cast<Int128>(a.num()) * b.num(),
                         static_cast<Int128>(a.den()) * b.den()));
    if (!b.is_zero()) {
      EXPECT_EQ(a / b, reference::normalized(
                           static_cast<Int128>(a.num()) * b.den(),
                           static_cast<Int128>(a.den()) * b.num()));
    }
  }
}

TEST(Rational, MinMaxHelpers) {
  EXPECT_EQ(min(Rational(1, 3), Rational(1, 2)), Rational(1, 3));
  EXPECT_EQ(max(Rational(1, 3), Rational(1, 2)), Rational(1, 2));
}

TEST(Rational, UserLiteral) {
  EXPECT_EQ(3_r, Rational(3));
}

// Property sweep: field axioms on random small rationals (exact, so the
// identities must hold bit-for-bit).
class RationalAxioms : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RationalAxioms, FieldIdentitiesHoldExactly) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<std::int64_t> num(-1000, 1000);
  std::uniform_int_distribution<std::int64_t> den(1, 1000);
  for (int i = 0; i < 200; ++i) {
    const Rational a(num(rng), den(rng));
    const Rational b(num(rng), den(rng));
    const Rational c(num(rng), den(rng));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ((a + b) - b, a);
    if (!b.is_zero()) {
      EXPECT_EQ((a / b) * b, a);
    }
    EXPECT_EQ(a + Rational(0), a);
    EXPECT_EQ(a * Rational(1), a);
    EXPECT_EQ(a - a, Rational(0));
    // floor/ceil consistency.
    EXPECT_LE(Rational(a.floor()), a);
    EXPECT_GE(Rational(a.ceil()), a);
    EXPECT_LE(a.ceil() - a.floor(), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalAxioms,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace vrdf
