// Tests for the exact steady-state throughput detector.
#include <gtest/gtest.h>

#include "analysis/buffer_sizing.hpp"
#include "dataflow/vrdf_graph.hpp"
#include "models/mp3.hpp"
#include "sim/steady_state.hpp"
#include "util/error.hpp"

namespace vrdf::sim {
namespace {

using dataflow::ActorId;
using dataflow::RateSet;
using dataflow::VrdfGraph;

const Duration kTau = milliseconds(Rational(3));

struct Pair {
  VrdfGraph graph;
  ActorId producer;
  ActorId consumer;
};

Pair make_static_pair(std::int64_t capacity) {
  Pair p;
  p.producer = p.graph.add_actor("p", kTau);
  p.consumer = p.graph.add_actor("c", kTau);
  (void)p.graph.add_buffer(p.producer, p.consumer, RateSet::singleton(3),
                           RateSet::singleton(3), capacity);
  return p;
}

TEST(SteadyState, SingleBufferSerializesAtCapacityThree) {
  // Capacity 3 forces strict alternation: the consumer fires every 2τ.
  const Pair p = make_static_pair(3);
  const SteadyStateResult steady =
      detect_steady_state(p.graph, p.consumer);
  ASSERT_TRUE(steady.found);
  EXPECT_EQ(steady.throughput,
            (kTau * Rational(2)).seconds().reciprocal());
}

TEST(SteadyState, DoubleBufferReachesFullRate) {
  // Capacity 6 pipelines producer and consumer: period τ.
  const Pair p = make_static_pair(6);
  const SteadyStateResult steady =
      detect_steady_state(p.graph, p.consumer);
  ASSERT_TRUE(steady.found);
  EXPECT_EQ(steady.throughput, kTau.seconds().reciprocal());
}

TEST(SteadyState, ExtraCapacityBeyondDoubleBufferDoesNotHelp) {
  // The consumer's own response time is the bottleneck from 6 upwards.
  for (const std::int64_t capacity : {6LL, 7LL, 9LL, 50LL}) {
    const Pair p = make_static_pair(capacity);
    const SteadyStateResult steady =
        detect_steady_state(p.graph, p.consumer);
    ASSERT_TRUE(steady.found) << capacity;
    EXPECT_EQ(steady.throughput, kTau.seconds().reciprocal()) << capacity;
  }
}

TEST(SteadyState, IntermediateCapacityGivesFractionalRate) {
  // Capacity 4 with quanta 3/3: the producer needs 3 free, the consumer
  // returns 3 per firing — effectively still serialized (4 < 6), but the
  // detector must report the *exact* rational rate, whatever it is.
  const Pair p = make_static_pair(4);
  const SteadyStateResult steady = detect_steady_state(p.graph, p.consumer);
  ASSERT_TRUE(steady.found);
  EXPECT_GE(steady.throughput, (kTau * Rational(2)).seconds().reciprocal());
  EXPECT_LE(steady.throughput, kTau.seconds().reciprocal());
  // Rate times cycle length reproduces the firings per cycle exactly.
  EXPECT_EQ(steady.throughput * steady.cycle_length.seconds(),
            Rational(steady.cycle_firings));
}

TEST(SteadyState, DeadlockReported) {
  const Pair p = make_static_pair(2);
  const SteadyStateResult steady = detect_steady_state(p.graph, p.consumer);
  EXPECT_FALSE(steady.found);
  EXPECT_TRUE(steady.deadlocked);
}

TEST(SteadyState, RejectsVariableRates) {
  VrdfGraph g;
  const ActorId a = g.add_actor("a", kTau);
  const ActorId b = g.add_actor("b", kTau);
  (void)g.add_buffer(a, b, RateSet::singleton(3), RateSet::of({2, 3}), 8);
  EXPECT_THROW((void)detect_steady_state(g, b), ContractError);
}

TEST(SteadyState, Mp3AtMaxBitrateRunsAtExactly44100Hz) {
  // Fix the decoder to n = 960 and install the paper's capacities: the
  // self-timed DAC rate is exactly 44100/s (supply- and ρ-limited alike),
  // observed at the SRC (384 firings per hyperperiod instead of 169344).
  dataflow::VrdfGraph g;
  const auto br = g.add_actor("vBR", milliseconds(Rational(512, 10)));
  const auto mp3 = g.add_actor("vMP3", milliseconds(Rational(24)));
  const auto src = g.add_actor("vSRC", milliseconds(Rational(10)));
  const auto dac = g.add_actor("vDAC", period_of_hz(Rational(44100)));
  (void)g.add_buffer(br, mp3, RateSet::singleton(2048),
                     RateSet::singleton(960), 6015);
  (void)g.add_buffer(mp3, src, RateSet::singleton(1152),
                     RateSet::singleton(480), 3263);
  (void)g.add_buffer(src, dac, RateSet::singleton(441), RateSet::singleton(1),
                     882);
  const SteadyStateResult steady = detect_steady_state(g, src, 4096);
  ASSERT_TRUE(steady.found);
  // SRC converts 480-sample blocks at 48 kHz: exactly 100 firings/s.
  EXPECT_EQ(steady.throughput, Rational(100));
}

TEST(SteadyState, ConclusiveSufficiencyForConstantRates) {
  // The throughput criterion makes horizon-free sufficiency checks: a
  // sized pair sustains 1/τ iff throughput ≥ 1/τ.
  for (const std::int64_t capacity : {3LL, 4LL, 5LL, 6LL, 8LL}) {
    const Pair p = make_static_pair(capacity);
    const SteadyStateResult steady =
        detect_steady_state(p.graph, p.consumer);
    ASSERT_TRUE(steady.found);
    const bool sustains = steady.throughput >= kTau.seconds().reciprocal();
    EXPECT_EQ(sustains, capacity >= 6) << capacity;
  }
}

}  // namespace
}  // namespace vrdf::sim
