// Fault injection, conformance monitoring and robustness margins:
//  * FaultPlan semantics (overruns, stalls, bursts, drop-outs) and
//    seeded replayability;
//  * ConformanceMonitor ρ-contract events, lateness grading and the
//    stall watchdog's blocked-cycle diagnosis;
//  * analysis::robustness_margins against installed capacities;
//  * the randomized validation harness: within-margin faults never
//    starve phase 2, beyond-margin faults are always detected and named,
//    lateness is monotone and linear in a single-firing stall delta —
//    across all five random model classes.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/buffer_sizing.hpp"
#include "analysis/robustness.hpp"
#include "dataflow/vrdf_graph.hpp"
#include "io/report.hpp"
#include "io/trace.hpp"
#include "models/synthetic.hpp"
#include "sim/fault_injection.hpp"
#include "sim/fleet.hpp"
#include "sim/monitor.hpp"
#include "sim/property_checks.hpp"
#include "sim/simulator.hpp"
#include "sim/verify.hpp"

namespace vrdf {
namespace {

using analysis::RobustnessReport;
using dataflow::ActorId;
using dataflow::RateSet;
using dataflow::VrdfGraph;
using models::make_random_model;
using models::ModelClass;
using models::RandomModelSpec;
using models::SyntheticModel;
using sim::ConformanceMonitor;
using sim::FaultPlan;
using sim::RunResult;
using sim::Simulator;
using sim::StopCondition;

const Duration kMs = milliseconds(Rational(1));

struct Pipeline {
  VrdfGraph graph;
  ActorId producer;
  ActorId consumer;
  dataflow::BufferEdges buffer;
};

/// 1-in-1-out pipeline with enough capacity that the producer free-runs.
Pipeline make_pipeline(std::int64_t capacity = 64) {
  Pipeline p;
  p.producer = p.graph.add_actor("p", kMs);
  p.consumer = p.graph.add_actor("c", kMs);
  p.buffer = p.graph.add_buffer(p.producer, p.consumer, RateSet::singleton(1),
                                RateSet::singleton(1), capacity);
  return p;
}

std::vector<TimePoint> starts_under(const Pipeline& p, const FaultPlan& plan,
                                    ActorId actor, Duration horizon) {
  Simulator sim(p.graph);
  sim.set_default_sources(1);
  sim.record_firings(p.producer);
  sim.record_firings(p.consumer);
  plan.apply(sim);
  StopCondition stop;
  stop.until_time = TimePoint() + horizon;
  (void)sim.run(stop);
  std::vector<TimePoint> starts;
  for (const auto& record : sim.firings(actor)) {
    starts.push_back(record.start);
  }
  return starts;
}

const ModelClass kAllClasses[] = {
    ModelClass::Chain, ModelClass::ForkJoin, ModelClass::Cyclic,
    ModelClass::MultiConstraint, ModelClass::InteriorPinned};

using models::class_name;

/// The first actor not bound by any throughput constraint (every random
/// model has one: the classes pin only sources/sinks/one interior actor).
const analysis::ActorMargin& first_unconstrained_actor(
    const RobustnessReport& report) {
  for (const analysis::ActorMargin& m : report.actors) {
    bool constrained = false;
    for (const analysis::ThroughputConstraint& c : report.constraints) {
      constrained = constrained || c.actor == m.actor;
    }
    if (!constrained) {
      return m;
    }
  }
  return report.actors.front();
}

bool names_actor(const std::vector<sim::RhoViolation>& violations,
                 ActorId actor) {
  for (const sim::RhoViolation& v : violations) {
    if (v.actor == actor) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------- FaultPlan

TEST(FaultInjection, RhoOverrunStretchesEveryAffectedFiring) {
  Pipeline p = make_pipeline();
  FaultPlan plan;
  plan.rho_overrun(p.producer, kMs / Rational(2));
  Simulator sim(p.graph);
  sim.set_default_sources(1);
  sim.record_firings(p.producer);
  plan.apply(sim);
  StopCondition stop;
  stop.until_time = TimePoint() + kMs * Rational(20);
  (void)sim.run(stop);
  const auto& records = sim.firings(p.producer);
  ASSERT_GE(records.size(), 4u);
  for (const auto& record : records) {
    EXPECT_EQ(record.finish - record.start, kMs * Rational(3, 2));
  }
}

TEST(FaultInjection, FactorScalesTheResponseTime) {
  Pipeline p = make_pipeline();
  FaultPlan plan;
  plan.rho_overrun(p.producer, Duration(), Rational(3));
  Simulator sim(p.graph);
  sim.set_default_sources(1);
  sim.record_firings(p.producer);
  plan.apply(sim);
  StopCondition stop;
  stop.until_time = TimePoint() + kMs * Rational(20);
  (void)sim.run(stop);
  const auto& records = sim.firings(p.producer);
  ASSERT_GE(records.size(), 2u);
  EXPECT_EQ(records[0].finish - records[0].start, kMs * Rational(3));
}

TEST(FaultInjection, TransientStallDelaysExactlyOneFiring) {
  Pipeline p = make_pipeline();
  FaultPlan faulted;
  faulted.transient_stall(p.producer, 3, kMs * Rational(4));
  const auto baseline =
      starts_under(p, FaultPlan{}, p.producer, kMs * Rational(30));
  const auto stalled =
      starts_under(p, faulted, p.producer, kMs * Rational(30));
  ASSERT_GE(baseline.size(), 6u);
  ASSERT_GE(stalled.size(), 6u);
  // Firings 0..3 start on time (the stall lengthens firing 3 itself);
  // every later firing is pushed back by exactly the outage.
  for (std::size_t k = 0; k <= 3; ++k) {
    EXPECT_EQ(stalled[k], baseline[k]) << "firing " << k;
  }
  for (std::size_t k = 4; k < std::min(baseline.size(), stalled.size()); ++k) {
    EXPECT_EQ(stalled[k] - baseline[k], kMs * Rational(4)) << "firing " << k;
  }
}

TEST(FaultInjection, ComposedFaultsAddUpPerFiring) {
  Pipeline p = make_pipeline();
  FaultPlan plan;
  plan.rho_overrun(p.producer, kMs).rho_overrun(p.producer, kMs * Rational(2));
  Simulator sim(p.graph);
  sim.set_default_sources(1);
  sim.record_firings(p.producer);
  plan.apply(sim);
  StopCondition stop;
  stop.until_time = TimePoint() + kMs * Rational(20);
  (void)sim.run(stop);
  const auto& records = sim.firings(p.producer);
  ASSERT_GE(records.size(), 2u);
  EXPECT_EQ(records[0].finish - records[0].start, kMs * Rational(4));
}

TEST(FaultInjection, SourceDropoutHitsPeriodicFirings) {
  Pipeline p = make_pipeline();
  FaultPlan plan;
  plan.source_dropout(p.producer, kMs * Rational(5), 4);
  Simulator sim(p.graph);
  sim.set_default_sources(1);
  sim.record_firings(p.producer);
  plan.apply(sim);
  StopCondition stop;
  stop.until_time = TimePoint() + kMs * Rational(60);
  (void)sim.run(stop);
  const auto& records = sim.firings(p.producer);
  ASSERT_GE(records.size(), 9u);
  for (std::size_t k = 0; k < 9; ++k) {
    const Duration expected =
        (k % 4 == 0) ? kMs * Rational(6) : kMs;  // every 4th firing drops out
    EXPECT_EQ(records[k].finish - records[k].start, expected) << "firing " << k;
  }
}

TEST(FaultInjection, BurstyJitterReplaysBitForBitFromItsSeed) {
  Pipeline p = make_pipeline();
  FaultPlan plan(7);
  plan.bursty_jitter(p.producer, kMs, 2, 5);
  const auto first = starts_under(p, plan, p.consumer, kMs * Rational(40));
  const auto second = starts_under(p, plan, p.consumer, kMs * Rational(40));
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);

  // The extras stay within [0, max] and hit only burst positions.
  Simulator sim(p.graph);
  sim.set_default_sources(1);
  sim.record_firings(p.producer);
  plan.apply(sim);
  StopCondition stop;
  stop.until_time = TimePoint() + kMs * Rational(40);
  (void)sim.run(stop);
  bool any_jitter = false;
  const auto& records = sim.firings(p.producer);
  ASSERT_GE(records.size(), 10u);
  for (const auto& record : records) {
    const Duration extra = record.finish - record.start - kMs;
    EXPECT_FALSE(extra.is_negative());
    EXPECT_LE(extra, kMs);
    const std::int64_t pos = record.index % 5;
    if (pos >= 2) {
      EXPECT_TRUE(extra.is_zero()) << "firing " << record.index;
    }
    any_jitter = any_jitter || extra.is_positive();
  }
  EXPECT_TRUE(any_jitter);
}

TEST(FaultInjection, DescribeNamesActorsAndKinds) {
  Pipeline p = make_pipeline();
  FaultPlan plan(3);
  plan.rho_overrun(p.producer, kMs).transient_stall(p.consumer, 2, kMs);
  const std::string text = plan.describe(p.graph);
  EXPECT_NE(text.find("seed 3"), std::string::npos);
  EXPECT_NE(text.find("rho_overrun on 'p'"), std::string::npos);
  EXPECT_NE(text.find("transient_stall on 'c'"), std::string::npos);
}

// ------------------------------------------------------------------ Monitor

TEST(Monitor, CleanRunIsConformant) {
  Pipeline p = make_pipeline();
  analysis::ConstraintSet constraints;  // none: pure ρ/watchdog monitoring
  ConformanceMonitor monitor(p.graph, constraints);
  Simulator sim(p.graph);
  sim.set_default_sources(1);
  monitor.attach(sim);
  StopCondition stop;
  stop.until_time = TimePoint() + kMs * Rational(50);
  const RunResult run = sim.run(stop);
  monitor.observe(sim, run);
  EXPECT_TRUE(monitor.report().rho_conformant);
  EXPECT_EQ(monitor.report().rho_violation_total, 0);
  EXPECT_FALSE(monitor.report().blockage.blocked);
}

TEST(Monitor, RhoViolationsNameTheOffendingActor) {
  Pipeline p = make_pipeline();
  FaultPlan plan;
  plan.rho_overrun(p.producer, kMs / Rational(2), Rational(1), 2, 3);
  ConformanceMonitor monitor(p.graph, {});
  Simulator sim(p.graph);
  sim.set_default_sources(1);
  monitor.attach(sim);
  plan.apply(sim);
  StopCondition stop;
  stop.until_time = TimePoint() + kMs * Rational(50);
  const RunResult run = sim.run(stop);
  monitor.observe(sim, run);

  const sim::MonitorReport& report = monitor.report();
  EXPECT_FALSE(report.rho_conformant);
  EXPECT_EQ(report.rho_violation_total, 3);  // firings 2, 3, 4
  ASSERT_EQ(report.rho_violations.size(), 3u);
  for (const sim::RhoViolation& v : report.rho_violations) {
    EXPECT_EQ(v.actor, p.producer);
    EXPECT_GE(v.firing, 2);
    EXPECT_LE(v.firing, 4);
    EXPECT_EQ(v.declared, kMs);
    EXPECT_EQ(v.observed, kMs * Rational(3, 2));
  }
  EXPECT_NE(report.summary.find("'p'"), std::string::npos);
}

TEST(Monitor, WatchdogNamesTheBlockedCycle) {
  // Capacity 2 < quantum 3: producer waits for space held by the
  // consumer, consumer waits for data held by the producer — a 2-cycle.
  VrdfGraph graph;
  const ActorId p = graph.add_actor("p", kMs);
  const ActorId c = graph.add_actor("c", kMs);
  (void)graph.add_buffer(p, c, RateSet::singleton(3), RateSet::singleton(3), 2);
  ConformanceMonitor monitor(graph, {});
  Simulator sim(graph);
  sim.set_default_sources(1);
  monitor.attach(sim);
  StopCondition stop;
  stop.until_time = TimePoint() + kMs;
  const RunResult run = sim.run(stop);
  monitor.observe(sim, run);

  const sim::BlockageReport& blockage = monitor.report().blockage;
  ASSERT_TRUE(blockage.blocked);
  EXPECT_EQ(blockage.waits.size(), 2u);
  EXPECT_EQ(blockage.cycle.size(), 2u);
  EXPECT_NE(blockage.message.find("blocked cycle"), std::string::npos);
  EXPECT_NE(blockage.message.find("'p' waits for 3 free containers"),
            std::string::npos);
  EXPECT_NE(blockage.message.find("'c' waits for 3 tokens"),
            std::string::npos);
  EXPECT_EQ(monitor.report().summary, blockage.message);
}

TEST(Monitor, VerifyEmbedsTheWatchdogDiagnosisOnDeadlock) {
  VrdfGraph graph;
  const ActorId p = graph.add_actor("p", kMs);
  const ActorId c = graph.add_actor("c", kMs);
  (void)graph.add_buffer(p, c, RateSet::singleton(3), RateSet::singleton(3), 2);
  const analysis::ThroughputConstraint constraint{c, kMs};
  const sim::VerifyResult result = sim::verify_throughput(graph, constraint);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("deadlock"), std::string::npos);
  EXPECT_NE(result.detail.find("'p' waits for 3 free containers"),
            std::string::npos);
}

TEST(Monitor, CsvEmittersAreStructured) {
  Pipeline p = make_pipeline();
  FaultPlan plan;
  plan.rho_overrun(p.producer, kMs, Rational(1), 0, 1);
  ConformanceMonitor monitor(
      p.graph, {analysis::ThroughputConstraint{p.consumer, kMs}});
  Simulator sim(p.graph);
  sim.set_default_sources(1);
  monitor.attach(sim);
  plan.apply(sim);
  StopCondition stop;
  stop.until_time = TimePoint() + kMs * Rational(20);
  const RunResult run = sim.run(stop);
  monitor.observe(sim, run);

  const std::string violations =
      io::rho_violations_to_csv(monitor.report(), p.graph);
  EXPECT_NE(violations.find("actor,firing,declared_s,observed_s"),
            std::string::npos);
  EXPECT_NE(violations.find("p,0,"), std::string::npos);
  const std::string conformance =
      io::conformance_to_csv(monitor.report(), p.graph);
  EXPECT_NE(conformance.find("actor,period_s,firings,late_firings"),
            std::string::npos);
  EXPECT_NE(conformance.find("\nc,"), std::string::npos);
}

// --------------------------------------------------------------- Robustness

TEST(Robustness, HeadroomAndMarginsOnASlackedModel) {
  RandomModelSpec spec;
  spec.model_class = ModelClass::Chain;
  spec.seed = 5;
  spec.capacity_headroom = 2;
  const SyntheticModel model = make_random_model(spec);
  const RobustnessReport report =
      analysis::robustness_margins(model.graph, model.constraints);
  ASSERT_TRUE(report.ok);
  ASSERT_FALSE(report.actors.empty());
  ASSERT_FALSE(report.buffers.empty());
  for (const analysis::BufferHeadroom& b : report.buffers) {
    EXPECT_EQ(b.headroom, 2);
    EXPECT_EQ(b.installed, b.required + 2);
  }
  bool any_positive = false;
  for (const analysis::ActorMargin& m : report.actors) {
    EXPECT_FALSE(m.margin.is_negative());
    EXPECT_LE(m.response_time + m.margin, m.max_response_time);
    any_positive = any_positive || m.margin.is_positive();
  }
  EXPECT_TRUE(any_positive);
  EXPECT_FALSE(report.joint_safe_fraction.is_negative());
  EXPECT_LE(report.joint_safe_fraction, Rational(1));
}

TEST(Robustness, TightModelHasZeroMargins) {
  RandomModelSpec spec;
  spec.model_class = ModelClass::Chain;
  spec.seed = 3;
  spec.response_fraction = Rational(1);  // ρ = φ: no slack anywhere
  const SyntheticModel model = make_random_model(spec);
  const RobustnessReport report =
      analysis::robustness_margins(model.graph, model.constraints);
  ASSERT_TRUE(report.ok);
  for (const analysis::ActorMargin& m : report.actors) {
    EXPECT_TRUE(m.margin.is_zero());
    EXPECT_EQ(m.response_time, m.max_response_time);
  }
}

TEST(Robustness, UndersizedCapacitiesAreRejected) {
  RandomModelSpec spec;
  spec.model_class = ModelClass::Chain;
  spec.seed = 9;
  SyntheticModel model = make_random_model(spec);
  const analysis::GraphAnalysis analysis =
      analysis::compute_buffer_capacities(model.graph, model.constraints);
  ASSERT_TRUE(analysis.admissible);
  // Steal one container from the first buffer's space edge.
  const dataflow::EdgeId space = analysis.pairs.front().buffer.space;
  const std::int64_t installed = model.graph.edge(space).initial_tokens;
  ASSERT_GT(installed, 0);
  model.graph.set_initial_tokens(space, installed - 1);
  const RobustnessReport report =
      analysis::robustness_margins(model.graph, model.constraints);
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.diagnostics.empty());
  EXPECT_NE(report.diagnostics.front().find("below the analysed requirement"),
            std::string::npos);
}

TEST(Robustness, ReportContainsTheMarginsSection) {
  RandomModelSpec spec;
  spec.model_class = ModelClass::InteriorPinned;
  spec.seed = 2;
  spec.capacity_headroom = 1;
  const SyntheticModel model = make_random_model(spec);
  const analysis::GraphAnalysis analysis =
      analysis::compute_buffer_capacities(model.graph, model.constraints);
  ASSERT_TRUE(analysis.admissible);
  const std::string report =
      io::analysis_report(model.graph, model.constraints, analysis);
  EXPECT_NE(report.find("## Robustness margins"), std::string::npos);
  EXPECT_NE(report.find("tolerable overrun"), std::string::npos);
  EXPECT_NE(report.find("headroom"), std::string::npos);

  const RobustnessReport margins =
      analysis::robustness_margins(model.graph, model.constraints);
  ASSERT_TRUE(margins.ok);
  const std::string csv = io::margins_to_csv(margins, model.graph);
  EXPECT_NE(csv.find("actor,rho_s,phi_s,margin_s"), std::string::npos);
  EXPECT_NE(csv.find("buffer,required,installed,headroom"), std::string::npos);
}

// ---------------------------------------------------------- Randomized sweep

constexpr std::uint64_t kSweepSeeds = 40;

TEST(RandomizedSweep, WithinMarginFaultsNeverStarvePhase2) {
  // The faulted fleet sweep (PR 8): every item computes its robustness
  // margins, injects the entire tolerable overrun of the largest-margin
  // actor on every firing — the exact margin boundary, the strongest
  // within-margin stress — and verifies under the monitor.  All five
  // classes, headroom levels 0 and 2, 40 seeds each: 400 graphs, double
  // the old single-threaded loop.  The constraint must hold everywhere
  // (zero phase-2 starvations) while the monitor names every positive-
  // margin breach.
  sim::SweepSpec spec;
  spec.seeds_per_class = static_cast<std::int64_t>(kSweepSeeds);
  spec.headroom_levels = {0, 2};
  spec.observe_firings = 200;
  spec.faulted = true;
  const sim::FleetReport report = sim::FleetSweep(spec).run(4);
  EXPECT_EQ(report.total_items, 400);
  ASSERT_EQ(report.passed, report.total_items) << sim::canonical_text(report);
  EXPECT_EQ(report.starvations, 0);

  // The monitor still names the contract breach even though the
  // constraint held — for every item whose injected margin was positive.
  EXPECT_GT(report.faults_expected, 0);
  EXPECT_EQ(report.faults_named, report.faults_expected)
      << sim::canonical_text(report);
}

TEST(RandomizedSweep, BeyondMarginFaultsAreDetectedAndNamed) {
  for (const ModelClass model_class : kAllClasses) {
    for (std::uint64_t seed = 1; seed <= kSweepSeeds; ++seed) {
      SCOPED_TRACE(std::string(class_name(model_class)) + " seed " +
                   std::to_string(seed));
      RandomModelSpec spec;
      spec.model_class = model_class;
      spec.seed = seed;
      spec.capacity_headroom = static_cast<std::int64_t>(seed % 3);
      // With zero-token consumptions excluded, every constrained firing
      // demands at least one token from its feed buffer, so the demand
      // rate is bounded below by one token per period.
      spec.zero_percent = 0;
      const SyntheticModel model = make_random_model(spec);
      const RobustnessReport margins =
          analysis::robustness_margins(model.graph, model.constraints);
      ASSERT_TRUE(margins.ok);

      // An overrun on an arbitrary actor need not break the constraint —
      // the analysis is conservative and headroom or pipelining can absorb
      // even multiples of phi.  Token conservation gives a bound no amount
      // of buffering can evade: a buffer's long-run supply rate is at most
      // installed / rho'.  Slow the constrained actor's feeding producer
      // until that bound sits strictly below one token per period.
      const analysis::ThroughputConstraint& constraint =
          model.constraints.front();
      const analysis::BufferHeadroom* feed = nullptr;
      for (const analysis::BufferHeadroom& buffer : margins.buffers) {
        if (buffer.consumer != constraint.actor) {
          continue;
        }
        const bool producer_constrained = std::any_of(
            model.constraints.begin(), model.constraints.end(),
            [&](const analysis::ThroughputConstraint& c) {
              return c.actor == buffer.producer;
            });
        if (!producer_constrained) {
          feed = &buffer;
          break;
        }
      }
      ASSERT_NE(feed, nullptr);
      const Duration beyond =
          constraint.period * Rational(4 * (feed->installed + 1));
      FaultPlan plan(seed);
      plan.rho_overrun(feed->producer, beyond);
      sim::VerifyOptions options;
      options.observe_firings = 200;
      options.monitor = true;
      const sim::VerifyResult result = sim::verify_throughput(
          model.graph, model.constraints,
          [&](Simulator& sim) { plan.apply(sim); }, options);

      // Detected: never a silently passing run, never a bare hang.
      ASSERT_FALSE(result.ok);
      EXPECT_FALSE(result.detail.empty());
      ASSERT_TRUE(result.monitor.has_value());
      const sim::MonitorReport& report = *result.monitor;
      // Named: the ρ-contract events point at the injected actor, and the
      // constraint grading or the watchdog reports the consequence.
      EXPECT_FALSE(report.rho_conformant);
      EXPECT_TRUE(names_actor(report.rho_violations, feed->producer));
      EXPECT_TRUE(result.starvation_count > 0 || report.blockage.blocked)
          << result.detail;
      EXPECT_NE(report.summary, "all constraints conformant");
    }
  }
}

TEST(RandomizedSweep, LatenessMonotoneAndLinearInStallDelta) {
  for (const ModelClass model_class : kAllClasses) {
    SCOPED_TRACE(class_name(model_class));
    RandomModelSpec spec;
    spec.model_class = model_class;
    spec.seed = 11;
    const SyntheticModel model = make_random_model(spec);
    const RobustnessReport margins =
        analysis::robustness_margins(model.graph, model.constraints);
    ASSERT_TRUE(margins.ok);
    const ActorId actor = first_unconstrained_actor(margins).actor;
    const Duration delta = model.constraints.front().period;
    const TimePoint horizon =
        TimePoint() + model.constraints.front().period * Rational(100);

    // A *single-firing* stall keeps lateness linear in Δ (a per-firing
    // overrun would accumulate): baseline ≤ Δ ≤ 2Δ, pointwise within Δ.
    FaultPlan none;
    FaultPlan light;
    light.transient_stall(actor, 3, delta);
    FaultPlan heavy;
    heavy.transient_stall(actor, 3, delta * Rational(2));

    const auto vs_baseline =
        sim::check_fault_monotonic_linear(model.graph, none, light, delta,
                                          horizon);
    EXPECT_TRUE(vs_baseline.monotonic) << vs_baseline.detail;
    EXPECT_TRUE(vs_baseline.linear) << vs_baseline.detail;
    const auto vs_light =
        sim::check_fault_monotonic_linear(model.graph, light, heavy, delta,
                                          horizon);
    EXPECT_TRUE(vs_light.monotonic) << vs_light.detail;
    EXPECT_TRUE(vs_light.linear) << vs_light.detail;
  }
}

}  // namespace
}  // namespace vrdf
